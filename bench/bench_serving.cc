/**
 * @file
 * Multi-tenant serving benchmark: modeled p50/p99 request latency of
 * the hardened ExecutionService under open-loop mixed-tenant load, and
 * the steady-state speedup of the coprocessor-resident ciphertext
 * cache over re-uploading hot operands per request.
 *
 * Two parts:
 *
 *  1. Residency ablation (single coprocessor, deterministic): a
 *     PIR-style circuit — K database shard ciphertexts masked with
 *     plaintext selectors, aggregated, and blinded with the request
 *     ciphertext — executed (a) with the shards re-uploaded on every
 *     request (the plain compiled path) and (b) warm from the pinned
 *     memory-file prefix (runCompiledCircuitWarm). The per-request
 *     modeled-time ratio is the `resident_vs_upload_speedup` record the
 *     CI perf gate asserts to be >= 1.2x.
 *
 *  2. Open-loop serving load: three tenant sessions with independent
 *     key sets submit 10k+ requests (adds, mults, resident PIR
 *     circuits) with exponential inter-arrival times targeting ~80%
 *     modeled utilization. The service's modeled latency distribution
 *     (completion minus arrival on the worker clocks) is reported as
 *     p50/p99.
 *
 * A small ring (n = 256, 3 q-primes) keeps the functional simulation
 * fast; the modeled clocks still use the paper's hardware model, so
 * latency ratios are meaningful.
 */

#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "compiler/circuit.h"
#include "compiler/compiler.h"
#include "fv/encryptor.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "service/service.h"

using namespace heat;

namespace {

struct Tenant
{
    fv::SecretKey sk;
    fv::PublicKey pk;
    fv::RelinKeys rlk;
    std::unique_ptr<fv::Encryptor> encryptor;
    service::TenantId id = service::kDefaultTenant;
    std::vector<service::PinnedHandle> handles;
};

/** PIR-style request circuit: K resident database shards, each masked
 *  with a plaintext selector, aggregated, then blinded with the
 *  request ciphertext. Input 0..K-1 are the shards, input K the
 *  request. */
compiler::Circuit
pirCircuit(size_t shards, const fv::FvParams &params, Xoshiro256 &rng)
{
    compiler::CircuitBuilder b;
    std::vector<compiler::ValueId> db;
    for (size_t k = 0; k < shards; ++k)
        db.push_back(b.input());
    const compiler::ValueId query = b.input();
    compiler::ValueId acc = compiler::kNoValue;
    for (size_t k = 0; k < shards; ++k) {
        fv::Plaintext mask;
        mask.coeffs.resize(params.degree());
        for (auto &c : mask.coeffs)
            c = rng.uniformBelow(params.plainModulus());
        const compiler::ValueId sel = b.multPlain(db[k], mask);
        acc = (k == 0) ? sel : b.add(acc, sel);
    }
    b.output(b.add(acc, query));
    return b.build();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter reporter("bench_serving", argc, argv);

    fv::FvConfig cfg;
    cfg.degree = 256;
    cfg.plain_modulus = 257;
    cfg.sigma = 3.2;
    cfg.q_prime_count = 3;
    auto params = fv::FvParams::create(cfg);
    // Keep the paper's full 7-RPAU memory file: the pinned database
    // prefix (16 slots at 8 shards) must coexist with the circuit's
    // working set.
    const hw::HwConfig hw = hw::HwConfig::paper();

    Xoshiro256 rng(1234);
    const size_t kShards = 8;
    const compiler::Circuit pir = pirCircuit(kShards, *params, rng);

    // --- Part 1: residency ablation -------------------------------------
    compiler::CompilerOptions copts;
    copts.hw = hw;
    auto uploaded = std::make_shared<const compiler::CompiledCircuit>(
        compiler::compileCircuit(params, pir, copts));
    for (uint32_t k = 0; k < kShards; ++k)
        copts.resident_inputs.push_back(k);
    auto resident = std::make_shared<const compiler::CompiledCircuit>(
        compiler::compileCircuit(params, pir, copts));

    fv::KeyGenerator keygen0(params, 42);
    fv::SecretKey sk0 = keygen0.generateSecretKey();
    fv::PublicKey pk0 = keygen0.generatePublicKey(sk0);
    fv::RelinKeys rlk0 = keygen0.generateRelinKeys(sk0);
    fv::Encryptor enc0(params, pk0, 43);

    std::vector<fv::Ciphertext> full_inputs;
    for (size_t k = 0; k <= kShards; ++k) {
        fv::Plaintext m;
        m.coeffs.resize(params->degree());
        for (auto &c : m.coeffs)
            c = rng.uniformBelow(params->plainModulus());
        full_inputs.push_back(enc0.encrypt(m));
    }
    const std::vector<fv::Ciphertext> request = {full_inputs.back()};

    hw::Coprocessor cp(params, hw, &rlk0);
    compiler::CircuitRunStats upload_stats;
    const std::vector<fv::Ciphertext> via_upload =
        compiler::runCompiledCircuit(cp, *uploaded, full_inputs,
                                     &upload_stats);
    compiler::CircuitRunStats cold_stats;
    const std::vector<fv::Ciphertext> via_cold =
        compiler::runCompiledCircuit(cp, *resident, full_inputs,
                                     &cold_stats);
    compiler::CircuitRunStats warm_stats;
    const std::vector<fv::Ciphertext> via_warm =
        compiler::runCompiledCircuitWarm(cp, *resident, request,
                                         &warm_stats);
    if (via_upload != via_cold || via_cold != via_warm) {
        std::fprintf(stderr, "FAIL: residency changed the result\n");
        return 1;
    }

    const double upload_us = upload_stats.modeledUs(hw);
    const double warm_us = warm_stats.modeledUs(hw);
    const double speedup = upload_us / warm_us;

    bench::printHeader("resident ciphertext cache (PIR, 8 shards)");
    bench::printInfo("per-request modeled us, re-upload path",
                     upload_us, "us");
    bench::printInfo("per-request modeled us, resident warm path",
                     warm_us, "us");
    bench::printInfo("steady-state residency speedup", speedup, "x");
    reporter.record("resident_upload_us", upload_us, "us",
                    params->degree(), params->qBase()->size());
    reporter.record("resident_warm_us", warm_us, "us",
                    params->degree(), params->qBase()->size());
    reporter.record("resident_vs_upload_speedup", speedup, "x",
                    params->degree(), params->qBase()->size());

    // --- Part 2: open-loop mixed-tenant load ----------------------------
    const size_t kTenants = 3;
    const size_t kRequests = 10000;
    const size_t kWorkers = 4;

    service::ServiceConfig scfg;
    scfg.workers = kWorkers;
    scfg.max_batch = 8;
    scfg.hw = hw;
    scfg.admission = compiler::NoiseCheck::kReject;

    std::vector<Tenant> tenants(kTenants);
    std::unique_ptr<service::ExecutionService> svc;
    for (size_t t = 0; t < kTenants; ++t) {
        fv::KeyGenerator keygen(params, 100 + t);
        tenants[t].sk = keygen.generateSecretKey();
        tenants[t].pk = keygen.generatePublicKey(tenants[t].sk);
        tenants[t].rlk = keygen.generateRelinKeys(tenants[t].sk);
        tenants[t].encryptor = std::make_unique<fv::Encryptor>(
            params, tenants[t].pk, 200 + t);
        if (t == 0) {
            svc = std::make_unique<service::ExecutionService>(
                params, tenants[t].rlk, scfg);
        } else {
            char name[16];
            std::snprintf(name, sizeof name, "tenant-%zu", t);
            tenants[t].id = svc->registerTenant(name, tenants[t].rlk);
        }
    }

    // Pin each tenant's database shards once.
    for (Tenant &t : tenants) {
        for (size_t k = 0; k < kShards; ++k) {
            fv::Plaintext m;
            m.coeffs.resize(params->degree());
            for (auto &c : m.coeffs)
                c = rng.uniformBelow(params->plainModulus());
            t.handles.push_back(
                svc->pinInput(t.id, t.encryptor->encrypt(m)));
        }
    }

    // Operand pool per tenant (cloned per request; encryption wall time
    // would otherwise dominate the functional simulation).
    std::vector<std::vector<fv::Ciphertext>> pools(kTenants);
    for (size_t t = 0; t < kTenants; ++t) {
        for (size_t i = 0; i < 8; ++i) {
            fv::Plaintext m;
            m.coeffs.resize(params->degree());
            for (auto &c : m.coeffs)
                c = rng.uniformBelow(params->plainModulus());
            pools[t].push_back(tenants[t].encryptor->encrypt(m));
        }
    }

    // Calibrate the mean modeled service time with a short closed-loop
    // warmup, then target ~80% utilization of the worker pool.
    {
        std::vector<std::future<fv::Ciphertext>> warmup;
        for (size_t i = 0; i < 64; ++i) {
            const size_t t = i % kTenants;
            warmup.push_back(svc->submit(
                tenants[t].id,
                i % 4 == 0 ? service::Op::kMult : service::Op::kAdd,
                pools[t][i % pools[t].size()],
                pools[t][(i + 3) % pools[t].size()]));
        }
        for (auto &f : warmup)
            f.get();
        svc->drain();
    }
    const double mean_cost_us = svc->stats().makespan_us *
                                static_cast<double>(kWorkers) / 64.0;
    const double inter_arrival_us =
        mean_cost_us / (0.8 * static_cast<double>(kWorkers));

    std::vector<std::future<fv::Ciphertext>> op_futures;
    std::vector<std::future<std::vector<fv::Ciphertext>>> pir_futures;
    double arrival = 0.0;
    for (size_t i = 0; i < kRequests; ++i) {
        arrival += -std::log(1.0 - rng.uniformDouble()) *
                   inter_arrival_us;
        const size_t t = rng.uniformBelow(kTenants);
        const uint64_t kind = rng.uniformBelow(100);
        const std::vector<fv::Ciphertext> &pool = pools[t];
        if (kind < 70) {
            op_futures.push_back(svc->submit(
                tenants[t].id, service::Op::kAdd,
                pool[rng.uniformBelow(pool.size())],
                pool[rng.uniformBelow(pool.size())], arrival));
        } else if (kind < 85) {
            op_futures.push_back(svc->submit(
                tenants[t].id, service::Op::kMult,
                pool[rng.uniformBelow(pool.size())],
                pool[rng.uniformBelow(pool.size())], arrival));
        } else {
            pir_futures.push_back(svc->submitCompiledResident(
                tenants[t].id, resident, tenants[t].handles,
                {pool[rng.uniformBelow(pool.size())]}, arrival));
        }
    }
    for (auto &f : op_futures)
        f.get();
    for (auto &f : pir_futures)
        f.get();
    svc->drain();

    const service::ServiceSnapshot snap = svc->snapshot();
    const service::ServiceStats &stats = snap.stats;
    const service::LatencySnapshot &lat = snap.latency;

    bench::printHeader("open-loop serving load (3 tenants, 10k reqs)");
    bench::printInfo("requests completed",
                     static_cast<double>(stats.ops_completed +
                                         stats.circuits_completed),
                     "req");
    bench::printInfo("modeled p50 latency", lat.p50_us, "us");
    bench::printInfo("modeled p99 latency", lat.p99_us, "us");
    bench::printInfo("modeled mean latency", lat.mean_us, "us");
    bench::printInfo("resident warm-run fraction",
                     stats.resident_warm_runs /
                         static_cast<double>(stats.resident_cold_runs +
                                             stats.resident_warm_runs),
                     "");
    bench::printInfo("worker key swaps",
                     static_cast<double>(stats.key_swaps), "");

    reporter.record("serving_p50_us", lat.p50_us, "us",
                    params->degree(), params->qBase()->size());
    reporter.record("serving_p99_us", lat.p99_us, "us",
                    params->degree(), params->qBase()->size());
    reporter.record("serving_mean_us", lat.mean_us, "us",
                    params->degree(), params->qBase()->size());
    reporter.record("serving_key_swaps",
                    static_cast<double>(stats.key_swaps), "",
                    params->degree(), params->qBase()->size());
    // The service's whole metrics registry (queue gauge, per-tenant
    // counters, the latency histogram's summary samples) rides along
    // in the same JSON-lines trajectory.
    reporter.recordMetrics(svc->metrics(), params->degree(),
                           params->qBase()->size());

    if (stats.ops_failed != 0 || stats.ops_rejected != 0) {
        std::fprintf(stderr, "FAIL: %llu failed, %llu rejected\n",
                     static_cast<unsigned long long>(stats.ops_failed),
                     static_cast<unsigned long long>(stats.ops_rejected));
        return 1;
    }
    if (lat.samples < kRequests + 64) {
        std::fprintf(stderr, "FAIL: latency samples %zu < requests\n",
                     lat.samples);
        return 1;
    }
    if (speedup < 1.2) {
        std::fprintf(stderr,
                     "FAIL: residency speedup %.3fx below the 1.2x "
                     "steady-state floor\n",
                     speedup);
        return 1;
    }
    std::printf("\nserving benchmark OK\n");
    return 0;
}
