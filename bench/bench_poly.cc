/**
 * @file
 * Depth-aware encrypted polynomial evaluation: a random dense
 * degree-15 polynomial on an encrypted batched input at the paper's
 * Table V row-1 parameter set, lowered two ways:
 *
 *  - Paterson-Stockmeyer (heat::poly's baby-step/giant-step plan):
 *    7 non-scalar mults at multiplicative depth 4, compiled under
 *    NoiseCheck::kReject — the noise pass proves the budget holds —
 *    and run fused plus op-by-op;
 *  - Horner: 14 non-scalar mults at depth 14, compiled with the noise
 *    check off (the pass rejects it — that IS the feature) and run
 *    fused anyway to price the naive plan honestly; its result
 *    decrypts to garbage, which the measured-budget row records.
 *
 * Exit status is the CI gate: Paterson-Stockmeyer must beat Horner on
 * BOTH non-scalar multiplication count and modeled fused time, and
 * must decrypt to the exact plaintext polynomial evaluation.
 */

#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "compiler/compiler.h"
#include "fv/batch_encoder.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "poly/poly.h"

using namespace heat;

int
main(int argc, char **argv)
{
    bench::JsonReporter reporter("bench_poly", argc, argv);

    auto params = fv::FvParams::tableV(1, /*t=*/65537);
    fv::KeyGenerator keygen(params, 52);
    const fv::SecretKey sk = keygen.generateSecretKey();
    const fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 53);
    fv::Decryptor decryptor(params, fv::SecretKey{sk.s_ntt});
    fv::BatchEncoder encoder(params);

    Xoshiro256 rng(54);
    std::vector<uint64_t> coeffs(16);
    for (auto &c : coeffs)
        c = 1 + rng.uniformBelow(params->plainModulus() - 1);
    poly::PolynomialEvaluator pe(params, coeffs);

    const poly::PlanInfo ps_plan =
        pe.plan(poly::EvalStrategy::kPatersonStockmeyer);
    const poly::PlanInfo horner_plan =
        pe.plan(poly::EvalStrategy::kHorner);

    compiler::CompilerOptions ps_opts;
    ps_opts.noise_check = compiler::NoiseCheck::kReject;
    ps_opts.hw.n_rpaus = params->fullBase()->size();
    compiler::CompilerOptions horner_opts = ps_opts;
    horner_opts.noise_check = compiler::NoiseCheck::kOff;

    const compiler::CompiledCircuit ps = compiler::compileCircuit(
        params, pe.circuit(poly::EvalStrategy::kPatersonStockmeyer),
        ps_opts);
    const compiler::CompiledCircuit horner = compiler::compileCircuit(
        params, pe.circuit(poly::EvalStrategy::kHorner), horner_opts);

    std::vector<uint64_t> slots(encoder.slotCount());
    for (auto &s : slots)
        s = rng.uniformBelow(params->plainModulus());
    const std::vector<fv::Ciphertext> inputs = {
        encryptor.encrypt(encoder.encode(slots))};

    hw::Coprocessor cp(params, ps_opts.hw, &rlk);
    compiler::CircuitRunStats ps_stats;
    const std::vector<fv::Ciphertext> ps_out =
        compiler::runCompiledCircuit(cp, ps, inputs, &ps_stats);
    compiler::CircuitRunStats horner_stats;
    const std::vector<fv::Ciphertext> horner_out =
        compiler::runCompiledCircuit(cp, horner, inputs, &horner_stats);
    compiler::CircuitRunStats op_stats;
    compiler::runCircuitOpByOp(
        cp, params, pe.circuit(poly::EvalStrategy::kPatersonStockmeyer),
        inputs, &op_stats);

    const bool ps_correct =
        encoder.decode(decryptor.decrypt(ps_out[0])) ==
        pe.reference(slots);
    const double ps_budget = decryptor.invariantNoiseBudget(ps_out[0]);
    const double horner_budget =
        decryptor.invariantNoiseBudget(horner_out[0]);

    const double ps_us = ps_stats.modeledUs(ps_opts.hw);
    const double horner_us = horner_stats.modeledUs(ps_opts.hw);
    const double op_us = op_stats.modeledUs(ps_opts.hw);

    bench::printHeader("heat::poly degree-15 evaluation "
                       "(Table V row 1, t = 65537)");
    bench::printInfo("PS non-scalar mults",
                     static_cast<double>(ps_plan.non_scalar_mults), "");
    bench::printInfo("Horner non-scalar mults",
                     static_cast<double>(horner_plan.non_scalar_mults),
                     "");
    bench::printInfo("PS multiplicative depth",
                     static_cast<double>(ps_plan.mult_depth), "");
    bench::printInfo("Horner multiplicative depth",
                     static_cast<double>(horner_plan.mult_depth), "");
    bench::printInfo("PS fused modeled time", ps_us, "us");
    bench::printInfo("Horner fused modeled time", horner_us, "us");
    bench::printInfo("PS op-by-op modeled time", op_us, "us");
    bench::printInfo("PS predicted budget",
                     ps.min_output_noise_budget_bits, "bits");
    bench::printInfo("PS measured budget", ps_budget, "bits");
    bench::printInfo("Horner measured budget", horner_budget, "bits");

    const size_t n = params->degree();
    const size_t moduli = params->qBase()->size();
    reporter.record("ps_nonscalar_mults",
                    static_cast<double>(ps_plan.non_scalar_mults), "",
                    n, moduli);
    reporter.record("horner_nonscalar_mults",
                    static_cast<double>(horner_plan.non_scalar_mults),
                    "", n, moduli);
    reporter.record("ps_mult_depth",
                    static_cast<double>(ps_plan.mult_depth), "", n,
                    moduli);
    reporter.record("ps_modeled_us", ps_us, "us", n, moduli);
    reporter.record("horner_modeled_us", horner_us, "us", n, moduli);
    reporter.record("ps_opbyop_modeled_us", op_us, "us", n, moduli);
    reporter.record("ps_vs_horner_speedup", horner_us / ps_us, "x", n,
                    moduli);
    reporter.record("ps_fusion_speedup", op_us / ps_us, "x", n, moduli);
    reporter.record("ps_predicted_budget_bits",
                    ps.min_output_noise_budget_bits, "bits", n, moduli);
    reporter.record("ps_measured_budget_bits", ps_budget, "bits", n,
                    moduli);

    const bool gate =
        ps_correct &&
        ps_plan.non_scalar_mults < horner_plan.non_scalar_mults &&
        ps_us < horner_us;
    std::printf("\nPS vs Horner: %zu vs %zu non-scalar mults, "
                "%.2fx modeled time, correctness %s (%s)\n",
                ps_plan.non_scalar_mults, horner_plan.non_scalar_mults,
                horner_us / ps_us, ps_correct ? "ok" : "WRONG",
                gate ? "PS wins" : "REGRESSION");
    return gate ? 0 : 1;
}
