/**
 * @file
 * Reproduces Table V: estimated resources and Mult latency for larger
 * parameter sets under the Sec. VI-D scaling rule, seeded with this
 * repository's own measured base row (and the paper's base row for
 * comparison).
 */

#include <cstdio>

#include "bench_util.h"
#include "fv/params.h"
#include "hw/arm_host.h"
#include "hw/coprocessor.h"
#include "hw/program_builder.h"
#include "hw/resource_model.h"
#include "hw/scaling_estimator.h"

using namespace heat;
using namespace heat::hw;

namespace {

void
printTable(const char *title, const std::vector<ScalingRow> &rows)
{
    std::printf("\n%s\n", title);
    std::printf("%-14s %8s %8s %8s %8s | %9s %9s %9s\n", "(n, log q)",
                "LUT", "Reg", "BRAM", "DSP", "comp(ms)", "comm(ms)",
                "total(ms)");
    for (const auto &r : rows) {
        char name[32];
        std::snprintf(name, sizeof(name), "(2^%zu, %zu)", r.log2_degree,
                      r.log_q);
        std::printf("%-14s %7.0fK %7.0fK %7.1fK %7.1fK | %9.2f %9.2f "
                    "%9.1f\n",
                    name, r.lut / 1e3, r.ff / 1e3, r.bram36 / 1e3,
                    r.dsp / 1e3, r.compute_ms, r.comm_ms, r.total_ms);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json("table5", argc, argv);
    // Paper's own base row: 64K/25K/0.4K/0.2K, 4.46 + 0.54 ms.
    ScalingEstimator paper_base(64e3, 25e3, 0.4e3, 0.2e3, 4.46, 0.54);
    printTable("Table V (paper base row):", paper_base.estimate(4));

    // Our measured base row: model the single coprocessor and its Mult.
    auto params = fv::FvParams::paper();
    HwConfig config = HwConfig::paper();
    ResourceModel rm(*params, config);
    Resources one = rm.coprocessor();

    Coprocessor cp(params, config);
    ntt::RnsPoly zero(params->qBase(), params->degree());
    std::array<PolyId, 2> a{cp.uploadPoly(zero), cp.uploadPoly(zero)};
    std::array<PolyId, 2> b{cp.uploadPoly(zero), cp.uploadPoly(zero)};
    ProgramBuilder builder(cp);
    Program mult = builder.buildMult(a, b);
    double comp_us = 0.0, key_dma_us = 0.0;
    for (const auto &i : mult.instrs) {
        comp_us += config.cyclesToUs(cp.instructionCycles(i));
        key_dma_us += cp.instructionDmaUs(i);
    }
    ArmHostModel host(params, config);
    // Paper accounting: "Comp." includes the relin-key DMA (it is part
    // of Table I's Mult); "Comm." is the operand/result movement.
    const double comm_us =
        host.sendCiphertextsUs(2) + host.receiveCiphertextUs();

    ScalingEstimator ours(one.lut, one.ff, one.bram36, one.dsp,
                          (comp_us + key_dma_us) / 1e3, comm_us / 1e3);
    const std::vector<ScalingRow> our_rows = ours.estimate(4);
    printTable("Table V (this repo's measured base row):", our_rows);

    for (const auto &r : our_rows) {
        char kernel[48];
        std::snprintf(kernel, sizeof(kernel), "scaled_mult_logq%zu",
                      r.log_q);
        json.record(kernel, r.total_ms * 1e6, "ns",
                    size_t(1) << r.log2_degree, 0);
    }

    std::printf("\nPaper row 4 check: (2^15, 1440) -> 45.6 / 34.6 / 80.2 "
                "ms; growth factors: compute x%.2f, comm x%.0f per "
                "doubling.\n",
                ScalingEstimator::kComputeGrowth,
                ScalingEstimator::kCommGrowth);
    return 0;
}
