/**
 * @file
 * Reproduces Table I: performance of the high-level operations on one
 * coprocessor — Mult in HW, Add in HW, Add in SW, and the ciphertext
 * send/receive costs. Paper numbers are Arm cycle counts at 1.2 GHz;
 * both cycle counts and milliseconds are printed.
 */

#include <cstdio>

#include "bench_util.h"
#include "fv/params.h"
#include "hw/arm_host.h"
#include "hw/coprocessor.h"
#include "hw/program_builder.h"

using namespace heat;
using namespace heat::hw;

int
main(int argc, char **argv)
{
    bench::JsonReporter json("table1", argc, argv);
    auto params = fv::FvParams::paper();
    HwConfig config = HwConfig::paper();
    Coprocessor cp(params, config);
    ArmHostModel host(params, config);

    // Build the Mult program and price it.
    ntt::RnsPoly zero(params->qBase(), params->degree());
    std::array<PolyId, 2> a{cp.uploadPoly(zero), cp.uploadPoly(zero)};
    std::array<PolyId, 2> b{cp.uploadPoly(zero), cp.uploadPoly(zero)};
    ProgramBuilder builder(cp);
    Program mult = builder.buildMult(a, b);

    double mult_us = 0.0;
    for (const auto &i : mult.instrs) {
        mult_us += config.cyclesToUs(cp.instructionCycles(i));
        mult_us += cp.instructionDmaUs(i);
    }

    Instruction add_instr;
    add_instr.op = Opcode::kCoeffAdd;
    const double add_hw_us =
        2.0 * config.cyclesToUs(cp.instructionCycles(add_instr));
    const double add_sw_us = host.softwareAddUs();
    const double send_us = host.sendCiphertextsUs(2);
    const double recv_us = host.receiveCiphertextUs();

    bench::printHeader(
        "Table I: high-level operations, one coprocessor (ms)");
    bench::printRow("Mult in HW", 4.458, mult_us / 1e3, "ms");
    bench::printRow("Add in HW", 0.026, add_hw_us / 1e3, "ms");
    bench::printRow("Add in SW", 45.567, add_sw_us / 1e3, "ms");
    bench::printRow("Send two ciphertexts to HW", 0.362, send_us / 1e3,
                    "ms");
    bench::printRow("Receive result ciphertext", 0.180, recv_us / 1e3,
                    "ms");

    bench::printHeader(
        "Table I in Arm cycle counts (1.2 GHz, the paper's unit)");
    bench::printRow("Mult in HW", 5349567,
                    static_cast<double>(config.usToArmCycles(mult_us)),
                    "cy");
    bench::printRow("Add in HW", 31339,
                    static_cast<double>(config.usToArmCycles(add_hw_us)),
                    "cy");
    bench::printRow("Add in SW", 54680467,
                    static_cast<double>(config.usToArmCycles(add_sw_us)),
                    "cy");
    bench::printRow("Send two ciphertexts to HW", 434013,
                    static_cast<double>(config.usToArmCycles(send_us)),
                    "cy");
    bench::printRow("Receive result ciphertext", 215697,
                    static_cast<double>(config.usToArmCycles(recv_us)),
                    "cy");

    std::printf("\nAdd in SW / Add in HW (incl. transfers): %.0fx "
                "(paper: ~80x)\n",
                add_sw_us / (add_hw_us + send_us + recv_us));

    const size_t n = params->degree();
    const size_t k = params->qBase()->size();
    json.record("hw_mult", mult_us * 1e3, "ns", n, k);
    json.record("hw_add", add_hw_us * 1e3, "ns", n, k);
    json.record("sw_add", add_sw_us * 1e3, "ns", n, k);
    json.record("send_two_ciphertexts", send_us * 1e3, "ns", n, k);
    json.record("receive_ciphertext", recv_us * 1e3, "ns", n, k);
    return 0;
}
