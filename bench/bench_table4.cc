/**
 * @file
 * Reproduces Table IV: FPGA resource utilization of one coprocessor and
 * of the full two-coprocessor system (with DMA and interfacing) on the
 * Zynq UltraScale+ ZU9EG, including the utilization percentages and the
 * per-block breakdown behind them.
 */

#include <cstdio>

#include "bench_util.h"
#include "fv/params.h"
#include "hw/resource_model.h"

using namespace heat;
using namespace heat::hw;

namespace {

void
printResources(const char *name, const Resources &r)
{
    std::printf("%-34s %9.0f %9.0f %7.0f %7.0f\n", name, r.lut, r.ff,
                r.bram36, r.dsp);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json("table4", argc, argv);
    auto params = fv::FvParams::paper();
    HwConfig config = HwConfig::paper();
    ResourceModel model(*params, config);

    const Resources one = model.coprocessor();
    const Resources two = model.system(2);

    bench::printHeader("Table IV: resource utilization");
    bench::printRow("Two coprocessors+interface: LUTs", 133692, two.lut,
                    "  ");
    bench::printRow("Two coprocessors+interface: Registers", 60312, two.ff,
                    "  ");
    bench::printRow("Two coprocessors+interface: BRAMs", 815, two.bram36,
                    "  ");
    bench::printRow("Two coprocessors+interface: DSPs", 416, two.dsp,
                    "  ");
    bench::printRow("Single coprocessor: LUTs", 63522, one.lut, "  ");
    bench::printRow("Single coprocessor: Registers", 25622, one.ff, "  ");
    bench::printRow("Single coprocessor: BRAMs", 388, one.bram36, "  ");
    bench::printRow("Single coprocessor: DSPs", 208, one.dsp, "  ");

    DeviceCapacity dev;
    std::printf("\nUtilization on ZU9EG (paper: 49%% / 11%% / 89%% / "
                "16%%):\n");
    std::printf("  LUT %.0f%%  FF %.0f%%  BRAM %.0f%%  DSP %.0f%%\n",
                ResourceModel::utilizationPct(two.lut, dev.lut),
                ResourceModel::utilizationPct(two.ff, dev.ff),
                ResourceModel::utilizationPct(two.bram36, dev.bram36),
                ResourceModel::utilizationPct(two.dsp, dev.dsp));

    std::printf("\nPer-block breakdown (one coprocessor):\n");
    std::printf("%-34s %9s %9s %7s %7s\n", "block", "LUT", "FF", "BRAM",
                "DSP");
    printResources("butterfly core (x14)", model.butterflyCore());
    printResources("RPAU incl. twiddle ROM (x7)", model.rpau());
    printResources("Lift/Scale core (x2)", model.liftScaleCore());
    printResources("memory file (84 slots)", model.memoryFile());
    printResources("control + ISA", model.controlOverhead());
    printResources("total coprocessor", one);

    const size_t n = params->degree();
    const size_t k = params->qBase()->size();
    json.record("system2_lut", two.lut, "lut", n, k);
    json.record("system2_ff", two.ff, "ff", n, k);
    json.record("system2_bram36", two.bram36, "bram", n, k);
    json.record("system2_dsp", two.dsp, "dsp", n, k);
    json.record("coproc_lut", one.lut, "lut", n, k);
    json.record("coproc_dsp", one.dsp, "dsp", n, k);
    return 0;
}
