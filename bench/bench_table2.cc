/**
 * @file
 * Reproduces Table II: performance of the individual instructions of
 * the coprocessor ISA and how many times FV.Mult calls each.
 */

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "hw/program_builder.h"

using namespace heat;
using namespace heat::hw;

int
main(int argc, char **argv)
{
    bench::JsonReporter json("table2", argc, argv);
    auto params = fv::FvParams::paper();
    HwConfig config = HwConfig::paper();
    Coprocessor cp(params, config);

    ntt::RnsPoly zero(params->qBase(), params->degree());
    std::array<PolyId, 2> a{cp.uploadPoly(zero), cp.uploadPoly(zero)};
    std::array<PolyId, 2> b{cp.uploadPoly(zero), cp.uploadPoly(zero)};
    ProgramBuilder builder(cp);
    Program mult = builder.buildMult(a, b);

    std::map<Opcode, int> calls;
    for (const auto &i : mult.instrs)
        ++calls[i.op];

    struct PaperRow
    {
        Opcode op;
        int paper_calls;
        double paper_us;
    };
    const PaperRow rows[] = {
        {Opcode::kNtt, 14, 73.0},
        {Opcode::kIntt, 8, 85.0},
        {Opcode::kCoeffMul, 20, 13.1},
        {Opcode::kCoeffAdd, 26, 13.6},
        {Opcode::kRearrange, 22, 20.8},
        {Opcode::kLift, 4, 82.6},
        {Opcode::kScale, 3, 82.7},
    };

    bench::printHeader("Table II: per-instruction time (us per call)");
    for (const auto &row : rows) {
        Instruction instr;
        instr.op = row.op;
        const double us =
            config.cyclesToUs(cp.instructionCycles(instr));
        bench::printRow(opcodeName(row.op), row.paper_us, us, "us");
        json.record(std::string("instr_") + opcodeName(row.op), us * 1e3,
                    "ns", params->degree(), params->qBase()->size());
    }

    std::printf("\n%-32s %10s %10s\n", "instruction", "#calls/Mult",
                "paper");
    for (const auto &row : rows) {
        std::printf("%-32s %10d %10d%s\n", opcodeName(row.op),
                    calls[row.op], row.paper_calls,
                    calls[row.op] == row.paper_calls ? "" : "  (*)");
    }
    std::printf("  (*) CoeffAdd: our schedule needs 14 additions for the "
                "tensor + SoP + final\n      accumulation; the paper "
                "reports 26 (see EXPERIMENTS.md).\n");

    // Arm cycle counts like the paper's table.
    bench::printHeader("Table II in Arm cycles (1.2 GHz)");
    const double paper_cycles[] = {87582, 102043, 15662, 16292, 25006,
                                   99137, 99274};
    int idx = 0;
    for (const auto &row : rows) {
        Instruction instr;
        instr.op = row.op;
        const double us = config.cyclesToUs(cp.instructionCycles(instr));
        bench::printRow(opcodeName(row.op), paper_cycles[idx++],
                        static_cast<double>(config.usToArmCycles(us)),
                        "cy");
    }
    return 0;
}
