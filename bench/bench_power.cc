/**
 * @file
 * Reproduces the Sec. VI-C power measurements and the Sec. VI-E
 * comparison against CPU/GPU power envelopes.
 */

#include <cstdio>

#include "bench_util.h"
#include "fv/params.h"
#include "hw/power_model.h"
#include "hw/system.h"

using namespace heat;
using namespace heat::hw;

int
main(int argc, char **argv)
{
    bench::JsonReporter json("power", argc, argv);
    PowerModel power;

    bench::printHeader("Sec. VI-C: power (W)");
    bench::printRow("Static power", 5.3, power.staticW(), "W ");
    bench::printRow("Dynamic, single-core Mult", 2.2, power.dynamicW(1),
                    "W ");
    bench::printRow("Dynamic, dual-core Mult", 3.4, power.dynamicW(2),
                    "W ");
    bench::printRow("Peak total", 8.7, power.totalW(2), "W ");

    // Energy per multiplication at the simulated throughput.
    auto params = fv::FvParams::paper();
    HeatSystem system(params, HwConfig::paper(), 2);
    const double mps = system.simulate(200).mults_per_second;
    std::printf("\nEnergy per Mult at %.0f Mult/s (2 coprocessors): "
                "%.1f mJ\n",
                mps, power.energyPerMultMj(mps, 2));
    std::printf("Intel i5 under heavy load (~40 W) at the paper's 30.3 "
                "Mult/s: %.0f mJ per Mult (~%.0fx more energy)\n",
                40.0 / 30.3 * 1e3,
                (40.0 / 30.3 * 1e3) / power.energyPerMultMj(mps, 2));

    json.record("power_static", power.staticW(), "W", params->degree(),
                params->qBase()->size());
    json.record("power_peak_total", power.totalW(2), "W",
                params->degree(), params->qBase()->size());
    json.record("energy_per_mult", power.energyPerMultMj(mps, 2), "mJ",
                params->degree(), params->qBase()->size());
    return 0;
}
