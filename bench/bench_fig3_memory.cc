/**
 * @file
 * Reproduces Figure 3: the memory access pattern of the two-core NTT.
 * Prints the read sequences of both butterfly cores for the three
 * scheduling regimes (m <= n/4, m = n/2, m = n), replays the full
 * transform against the BRAM port model, and reports the conflict count
 * (the paper's claim: zero) together with the cost of the naive
 * unpaired schedule the paper's scheme avoids.
 */

#include <cstdio>

#include "bench_util.h"
#include "hw/bram.h"
#include "hw/ntt_engine.h"

using namespace heat;
using namespace heat::hw;

namespace {

void
printRegime(const NttEngine &engine, int stage, const char *label,
            size_t words)
{
    std::printf("\n%s\n", label);
    std::printf("  cycle:      ");
    for (int c = 0; c < 8; ++c)
        std::printf("%6d", c);
    std::printf("  ...\n");
    auto sched = engine.stageReadSchedule(stage);
    for (int core = 0; core < 2; ++core) {
        std::printf("  core %d reads:", core);
        int printed = 0;
        for (const auto &a : sched) {
            if (a.core == core && a.cycle < 8) {
                std::printf("%6u", a.word);
                ++printed;
            }
        }
        std::printf("  ...   (%s block first)\n",
                    sched[core == 0 ? 0 : 1].word < words / 2 ? "lower"
                                                              : "upper");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json("fig3_memory", argc, argv);
    const size_t n = 4096;
    HwConfig config = HwConfig::paper();
    NttEngine engine(config, n);
    const size_t words = n / 2;

    std::printf("=== Figure 3: two-core NTT memory access (n = %zu, "
                "%zu words of two coefficients) ===\n",
                n, words);
    printRegime(engine, 0, "Iteration m = 2 .. 1024 (index gap <= 512): "
                           "cores own disjoint banks",
                words);
    printRegime(engine, engine.stageCount() - 2,
                "Iteration m = 2048 (index gap 1024): interleaved, core 1 "
                "order inverted",
                words);
    printRegime(engine, engine.stageCount() - 1,
                "Iteration m = 4096: one memory word at a time", words);

    uint64_t conflicts = 0;
    Cycle cycles = engine.simulate(conflicts);
    std::printf("\nFull transform replayed against the BRAM port model:\n");
    std::printf("  stages: %d, cycles: %llu (%.1f us at 200 MHz)\n",
                engine.stageCount(),
                static_cast<unsigned long long>(cycles),
                config.cyclesToUs(cycles));
    std::printf("  port conflicts: %llu (paper's claim: 0)\n",
                static_cast<unsigned long long>(conflicts));

    // Counterfactual: a naive schedule in which both cores walk the
    // same bank conflicts on every cycle, halving throughput.
    BramBank lower(0, static_cast<uint32_t>(words / 2));
    uint64_t naive_conflicts = 0;
    for (uint32_t i = 0; i < words / 2; ++i) {
        lower.recordRead(i, i);
        lower.recordRead(i, (i + 1) % static_cast<uint32_t>(words / 2));
    }
    naive_conflicts = lower.conflicts();
    std::printf("  naive same-bank schedule conflicts per stage: %llu "
                "(=> serialized reads, ~2x stage time)\n",
                static_cast<unsigned long long>(naive_conflicts));

    json.record("ntt_transform", config.cyclesToUs(cycles) * 1e3, "ns",
                n, 1);
    json.record("ntt_port_conflicts", static_cast<double>(conflicts),
                "count", n, 1);
    return 0;
}
