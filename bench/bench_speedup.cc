/**
 * @file
 * Reproduces the headline result (Sec. VI-E): the two-coprocessor
 * accelerator sustains ~400 homomorphic multiplications per second at a
 * 200 MHz FPGA clock — >13x the optimized FV-NFLlib software baseline
 * (33 ms per Mult, 0.1 ms per Add on an Intel i5-3427U @ 1.8 GHz) and
 * ahead of the Tesla V100 implementation of Badawi et al. (~388 Mult/s
 * for the same n = 4096, 180-bit q operating point).
 *
 * Our substitution for the authors' testbed: the cycle-calibrated
 * system model provides the accelerator side; this host's measured
 * performance of our own optimized software evaluator (same algorithms
 * as NFLlib: RNS + Shoup-multiplication NTT + HPS) provides a modern
 * software reference. Absolute software numbers differ from a 2012 i5 —
 * EXPERIMENTS.md discusses both ratios.
 */

#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "common/parallel.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/power_model.h"
#include "hw/system.h"

using namespace heat;
using Clock = std::chrono::steady_clock;

namespace {

double
measureUs(int iters, const std::function<void()> &fn)
{
    fn(); // warm up
    auto start = Clock::now();
    for (int i = 0; i < iters; ++i)
        fn();
    auto stop = Clock::now();
    return std::chrono::duration<double, std::micro>(stop - start)
               .count() /
           iters;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json("speedup", argc, argv);
    auto params = fv::FvParams::paper();

    // --- accelerator side (simulated) -----------------------------------
    hw::HeatSystem system(params, hw::HwConfig::paper(), 2);
    hw::ThroughputResult hw2 = system.simulate(400);
    hw::HeatSystem single(params, hw::HwConfig::paper(), 1);
    hw::ThroughputResult hw1 = single.simulate(200);

    // --- software side (measured on this host) ---------------------------
    fv::KeyGenerator keygen(params, 11);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 12);
    fv::Evaluator evaluator(params, fv::ArithPath::kHps);

    fv::Plaintext m;
    m.coeffs.assign(params->degree(), 1);
    fv::Ciphertext a = encryptor.encrypt(m);
    fv::Ciphertext b = encryptor.encrypt(m);

    const size_t n = params->degree();
    const size_t k = params->qBase()->size();
    const double sw_mult_us = measureUs(
        5, [&] { fv::Ciphertext c = evaluator.multiply(a, b, rlk); });
    const double sw_add_us =
        measureUs(50, [&] { fv::Ciphertext c = evaluator.add(a, b); });
    json.record("sw_mult", sw_mult_us * 1e3, "ns", n, k);
    json.record("sw_add", sw_add_us * 1e3, "ns", n, k);
    setThreadCount(4); // best on this host; more threads thrash
    const double sw_mult_mt_us = measureUs(
        5, [&] { fv::Ciphertext c = evaluator.multiply(a, b, rlk); });
    // Recorded before the thread count resets so the record carries
    // threads=4.
    json.record("sw_mult", sw_mult_mt_us * 1e3, "ns", n, k);
    setThreadCount(1);

    bench::printHeader("Sec. VI-E: throughput and speedup");
    bench::printRow("HW Mult/s, two coprocessors", 400.0,
                    hw2.mults_per_second, "/s");
    bench::printRow("HW Mult/s, one coprocessor", 224.0,
                    hw1.mults_per_second, "/s");
    bench::printRow("NFLlib SW Mult on i5 (paper)", 33.0, 33.0, "ms");
    bench::printRow("Tesla V100 Mult/s (Badawi et al.)", 388.0, 388.0,
                    "/s");

    std::printf("\nSoftware measured on this host (our evaluator):\n");
    std::printf("  Mult: %.2f ms (1 thread), %.2f ms (4 threads)   "
                "Add: %.3f ms\n",
                sw_mult_us / 1e3, sw_mult_mt_us / 1e3, sw_add_us / 1e3);

    const double paper_speedup = 400.0 / (1000.0 / 33.0);
    const double vs_paper_sw = hw2.mults_per_second / (1e6 / 33000.0);
    const double vs_this_host = hw2.mults_per_second / (1e6 / sw_mult_us);
    std::printf("\nSpeedup of the accelerator:\n");
    std::printf("  paper:           400 Mult/s vs 30.3 Mult/s  -> %.1fx "
                "(reported >13x)\n",
                paper_speedup);
    std::printf("  this repo:     %.0f Mult/s vs the paper's software "
                "baseline -> %.1fx\n",
                hw2.mults_per_second, vs_paper_sw);
    std::printf("  this repo:     %.0f Mult/s vs this host's software "
                "(%.1f ms)  -> %.1fx\n",
                hw2.mults_per_second, sw_mult_us / 1e3, vs_this_host);
    std::printf("  (a 2026 CPU is far faster than the paper's 2012-era "
                "i5; the 13x claim is\n   reproduced against the "
                "paper-contemporary baseline, see EXPERIMENTS.md)\n");

    hw::PowerModel power;
    std::printf("\nPower: accelerator peak %.1f W vs i5 under load ~40 W "
                "(paper Sec. VI-E)\n",
                power.totalW(2));
    std::printf("DMA utilization at steady state: %.0f%%; per-coprocessor "
                "compute utilization: %.0f%%\n",
                hw2.dma_utilization * 100.0,
                hw2.coproc_utilization[0] * 100.0);

    json.record("hw_mults_per_s_2coproc", hw2.mults_per_second, "ops/s",
                n, k);
    json.record("hw_mults_per_s_1coproc", hw1.mults_per_second, "ops/s",
                n, k);
    return 0;
}
