/**
 * @file
 * Serving-layer throughput: ops/sec through the ExecutionService at
 * worker counts {1, 2, 4, 8}.
 *
 * Two numbers per worker count:
 *  - modeled ops/s: the simulated hardware's throughput (per-worker
 *    modeled clocks incl. transfers, key DMA and the batch-amortised
 *    dispatch overhead) — deterministic, and the scaling criterion:
 *    it must grow monotonically from 1 to 4 workers;
 *  - wall ops/s: host wall-clock throughput of the functional
 *    simulation itself (bounded by the machine's cores, reported for
 *    context).
 *
 * The DMA-arbitrated HeatSystem throughput at the same coprocessor
 * count is printed alongside as the contention-aware reference.
 */

#include <chrono>
#include <future>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "fv/encryptor.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/system.h"
#include "service/service.h"

using namespace heat;

int
main(int argc, char **argv)
{
    bench::JsonReporter reporter("bench_service", argc, argv);

    auto params = fv::FvParams::paper(/*t=*/2);
    fv::KeyGenerator keygen(params, 42);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 43);

    const size_t ops = 32;
    Xoshiro256 rng(7);

    // Pre-encrypt one operand pool; submission clones from it.
    std::vector<fv::Ciphertext> pool;
    for (size_t i = 0; i < 8; ++i) {
        fv::Plaintext m;
        m.coeffs = {rng.uniformBelow(2), rng.uniformBelow(2)};
        pool.push_back(encryptor.encrypt(m));
    }

    // Shared per-Mult profile: cheap HeatSystem construction per row.
    const hw::MultJobProfile profile =
        hw::profileMultJob(params, hw::HwConfig::paper());

    bench::printHeader("serving layer: ops/sec vs worker count "
                       "(32 Mults each)");
    double prev_modeled = 0.0;
    bool monotonic = true;
    for (size_t workers : {1u, 2u, 4u, 8u}) {
        service::ServiceConfig cfg;
        cfg.workers = workers;
        cfg.max_batch = 8;
        service::ExecutionService svc(params, rlk, cfg);

        std::vector<std::future<fv::Ciphertext>> futures;
        const auto t0 = std::chrono::steady_clock::now();
        for (size_t i = 0; i < ops; ++i) {
            futures.push_back(svc.submit(service::Op::kMult,
                                         pool[i % pool.size()],
                                         pool[(i + 3) % pool.size()]));
        }
        for (auto &f : futures)
            f.get();
        const auto t1 = std::chrono::steady_clock::now();
        svc.drain();

        const double wall_s =
            std::chrono::duration<double>(t1 - t0).count();
        const service::ServiceStats stats = svc.stats();
        const double modeled = stats.modeledOpsPerSecond();
        const double wall =
            static_cast<double>(stats.ops_completed) / wall_s;

        hw::HeatSystem system(params, cfg.hw, workers, profile);
        const double arbitrated =
            system.simulate(200).mults_per_second;

        char label[64];
        std::snprintf(label, sizeof label,
                      "workers=%zu modeled ops/s", workers);
        bench::printInfo(label, modeled, "op/s");
        std::snprintf(label, sizeof label,
                      "workers=%zu wall ops/s", workers);
        bench::printInfo(label, wall, "op/s");
        std::snprintf(label, sizeof label,
                      "workers=%zu DMA-arbitrated Mult/s", workers);
        bench::printInfo(label, arbitrated, "op/s");

        std::snprintf(label, sizeof label, "modeled_ops_per_sec_w%zu",
                      workers);
        reporter.record(label, modeled, "op/s", params->degree(),
                        params->qBase()->size());
        std::snprintf(label, sizeof label, "wall_ops_per_sec_w%zu",
                      workers);
        reporter.record(label, wall, "op/s", params->degree(),
                        params->qBase()->size());
        std::snprintf(label, sizeof label,
                      "dma_arbitrated_mult_per_sec_w%zu", workers);
        reporter.record(label, arbitrated, "op/s", params->degree(),
                        params->qBase()->size());

        if (workers <= 4) {
            if (modeled < prev_modeled)
                monotonic = false;
            prev_modeled = modeled;
        }
    }
    std::printf("\nmodeled scaling 1 -> 4 workers: %s\n",
                monotonic ? "monotonic" : "NOT monotonic");
    return monotonic ? 0 : 1;
}
