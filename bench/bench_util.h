/**
 * @file
 * Shared helpers for the reproduction benchmarks: paper-vs-measured
 * table printing.
 */

#ifndef HEAT_BENCH_BENCH_UTIL_H
#define HEAT_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

namespace heat::bench {

/** Print a table header. */
inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("%-42s %14s %14s %9s\n", "metric", "paper", "this repo",
                "ratio");
    std::printf("%.*s\n", 82,
                "-----------------------------------------------------------"
                "-----------------------");
}

/** Print one paper-vs-measured row. */
inline void
printRow(const std::string &metric, double paper, double ours,
         const char *unit)
{
    std::printf("%-42s %11.3f %s %11.3f %s %8.2fx\n", metric.c_str(), paper,
                unit, ours, unit, ours / paper);
}

/** Print a row without a paper reference. */
inline void
printInfo(const std::string &metric, double value, const char *unit)
{
    std::printf("%-42s %14s %11.3f %s\n", metric.c_str(), "-", value, unit);
}

} // namespace heat::bench

#endif // HEAT_BENCH_BENCH_UTIL_H
