/**
 * @file
 * Shared helpers for the reproduction benchmarks: paper-vs-measured
 * table printing and the `--json <path>` structured reporter that
 * feeds the repo's performance trajectory (BENCH_*.json).
 */

#ifndef HEAT_BENCH_BENCH_UTIL_H
#define HEAT_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <string_view>
#include <utility>

#include "common/parallel.h"
#include "obs/metrics.h"

namespace heat::bench {

/** Print a table header. */
inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("%-42s %14s %14s %9s\n", "metric", "paper", "this repo",
                "ratio");
    std::printf("%.*s\n", 82,
                "-----------------------------------------------------------"
                "-----------------------");
}

/** Print one paper-vs-measured row. */
inline void
printRow(const std::string &metric, double paper, double ours,
         const char *unit)
{
    std::printf("%-42s %11.3f %s %11.3f %s %8.2fx\n", metric.c_str(), paper,
                unit, ours, unit, ours / paper);
}

/** Print a row without a paper reference. */
inline void
printInfo(const std::string &metric, double value, const char *unit)
{
    std::printf("%-42s %14s %11.3f %s\n", metric.c_str(), "-", value, unit);
}

/** One structured measurement for the JSON-lines trajectory. */
struct JsonRecord
{
    std::string kernel; ///< measurement name
    double value = 0.0; ///< measured value in @ref unit
    std::string unit = "ns";
    size_t n = 0;      ///< polynomial degree (0 when not applicable)
    size_t moduli = 0; ///< RNS moduli count (0 when not applicable)
};

/**
 * Appends one JSON object per record to the file named by the
 * `--json <path>` command-line option (JSON-lines format). Without the
 * option every record() is a no-op, so benchmarks stay pure console
 * tools by default. The thread count is sampled at record() time via
 * heat::threadCount() so multi-threaded measurements tag themselves.
 */
class JsonReporter
{
  public:
    JsonReporter(std::string suite, int argc, char **argv)
        : suite_(std::move(suite))
    {
        for (int i = 1; i < argc; ++i) {
            if (std::string_view(argv[i]) != "--json")
                continue;
            // A following flag is not a path; don't swallow it.
            if (i + 1 < argc &&
                !std::string_view(argv[i + 1]).starts_with("--")) {
                path_ = argv[i + 1];
            } else {
                std::fprintf(stderr, "bench: --json needs a path; no "
                                     "records will be written\n");
            }
        }
    }

    /** @return true iff `--json <path>` was passed. */
    bool enabled() const { return !path_.empty(); }

    /** Append one record; no-op when not enabled(). */
    void
    record(const JsonRecord &r) const
    {
        if (!enabled())
            return;
        // Duplicate guard: two records with the same (kernel, unit, n,
        // moduli) key silently shadow each other in the trajectory
        // consumers (last-write-wins joins). Warn loudly but still
        // write — the duplicate is a bench bug to fix, not data to
        // drop.
        const std::string key = r.kernel + "|" + r.unit + "|" +
                                std::to_string(r.n) + "|" +
                                std::to_string(r.moduli);
        if (!seen_.insert(key).second)
            std::fprintf(stderr,
                         "bench: warning: duplicate record key "
                         "kernel=%s unit=%s n=%zu moduli=%zu\n",
                         r.kernel.c_str(), r.unit.c_str(), r.n,
                         r.moduli);
        std::FILE *f = std::fopen(path_.c_str(), "a");
        if (f == nullptr) {
            std::fprintf(stderr, "bench: cannot open %s for append\n",
                         path_.c_str());
            return;
        }
        // %.9g would print non-finite doubles as bare `inf`/`nan`
        // tokens, which are not JSON — emit null so the JSON-lines
        // consumers keep parsing (and gates on the record fail loudly
        // on the null instead of crashing on a syntax error).
        char value[40];
        if (std::isfinite(r.value))
            std::snprintf(value, sizeof value, "%.9g", r.value);
        else
            std::snprintf(value, sizeof value, "null");
        std::fprintf(f,
                     "{\"suite\":\"%s\",\"kernel\":\"%s\",\"value\":%s,"
                     "\"unit\":\"%s\",\"n\":%zu,\"moduli\":%zu,"
                     "\"threads\":%u}\n",
                     escape(suite_).c_str(), escape(r.kernel).c_str(),
                     value, escape(r.unit).c_str(), r.n, r.moduli,
                     threadCount());
        std::fclose(f);
    }

    /** Convenience overload mirroring printRow-style call sites. */
    void
    record(const std::string &kernel, double value, const char *unit,
           size_t n = 0, size_t moduli = 0) const
    {
        record(JsonRecord{kernel, value, unit, n, moduli});
    }

    /**
     * Append every sample of @p registry as one record: kernel is the
     * metric id (histograms expand to _count/_sum/_mean/_p50/_p99/_max
     * per obs::Registry::samples()), unit is the metric kind. Lets a
     * bench dump a service's whole metrics registry into the same
     * JSON-lines trajectory its latency numbers go to.
     */
    void
    recordMetrics(const obs::Registry &registry, size_t n = 0,
                  size_t moduli = 0) const
    {
        if (!enabled())
            return;
        for (const obs::MetricSample &s : registry.samples())
            record(JsonRecord{s.name, s.value, s.kind, n, moduli});
    }

  private:
    static std::string
    escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            out.push_back(c);
        }
        return out;
    }

    std::string suite_;
    std::string path_;
    /** Duplicate-record keys seen so far (record() is const on the
     *  reporting path; the guard is bookkeeping, not state). */
    mutable std::set<std::string> seen_;
};

} // namespace heat::bench

#endif // HEAT_BENCH_BENCH_UTIL_H
