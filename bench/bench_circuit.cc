/**
 * @file
 * Circuit fusion: fused whole-circuit submission vs per-op round
 * trips, on the depth-4 mixed demo circuit (Add/Sub/MultPlain/Mult/
 * Square + relinearizations) over the paper parameter set.
 *
 * Three numbers:
 *  - fused modeled op/s: circuits submitted through
 *    ExecutionService::submitCircuit at workers=1; intermediates stay
 *    coprocessor-resident, inputs upload once, each on-chip segment
 *    costs one Arm dispatch;
 *  - unfused modeled op/s: the same circuit through
 *    compiler::runCircuitOpByOp — one host round trip and
 *    per-instruction dispatch for every node (the single-op serving
 *    model);
 *  - fused wall op/s: host wall clock of the functional simulation.
 *
 * Exit status is the CI gate: fused modeled throughput must be
 * strictly above unfused.
 */

#include <chrono>
#include <future>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "compiler/circuit.h"
#include "compiler/compiler.h"
#include "fv/encryptor.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "service/service.h"
#include "verify/verify.h"

using namespace heat;

namespace {

fv::Plaintext
randomPlain(const fv::FvParams &params, uint64_t seed)
{
    Xoshiro256 rng(seed);
    fv::Plaintext p;
    p.coeffs.resize(params.degree());
    for (auto &c : p.coeffs)
        c = rng.uniformBelow(params.plainModulus());
    return p;
}

/** The depth-4 mixed circuit of the acceptance criteria. */
compiler::Circuit
demoCircuit(const fv::FvParams &params)
{
    compiler::CircuitBuilder b;
    const compiler::ValueId x = b.input();
    const compiler::ValueId y = b.input();
    const compiler::ValueId v1 = b.mult(x, y);
    const compiler::ValueId v2 = b.square(v1);
    const compiler::ValueId v3 = b.multPlain(v2, randomPlain(params, 31));
    const compiler::ValueId v4 = b.sub(v3, x);
    const compiler::ValueId v5 =
        b.addPlain(b.add(v4, y), randomPlain(params, 37));
    b.output(v5);
    return b.build();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter reporter("bench_circuit", argc, argv);

    auto params = fv::FvParams::paper(/*t=*/65537);
    fv::KeyGenerator keygen(params, 42);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 43);

    const compiler::Circuit circuit = demoCircuit(*params);
    const size_t nodes = circuit.opCount();
    std::vector<fv::Ciphertext> inputs = {
        encryptor.encrypt(randomPlain(*params, 1)),
        encryptor.encrypt(randomPlain(*params, 2))};

    // --- fused: through the serving layer at workers=1 ------------------
    const size_t circuits = 4;
    service::ServiceConfig cfg;
    cfg.workers = 1;
    service::ExecutionService svc(params, rlk, cfg);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<std::vector<fv::Ciphertext>>> futures;
    for (size_t i = 0; i < circuits; ++i)
        futures.push_back(svc.submitCircuit(circuit, inputs));
    for (auto &f : futures)
        f.get();
    const auto t1 = std::chrono::steady_clock::now();
    svc.drain();

    const service::ServiceStats stats = svc.stats();
    const double wall_s = std::chrono::duration<double>(t1 - t0).count();
    const double fused_modeled =
        static_cast<double>(stats.circuit_nodes_completed) /
        stats.makespan_us * 1e6;
    const double fused_wall =
        static_cast<double>(stats.circuit_nodes_completed) / wall_s;

    // --- unfused: per-op round trips on one coprocessor -----------------
    hw::Coprocessor cp(params, cfg.hw, &rlk);
    compiler::CircuitRunStats unfused_stats;
    compiler::runCircuitOpByOp(cp, params, circuit, inputs,
                               &unfused_stats);
    const double unfused_modeled =
        static_cast<double>(nodes) /
        unfused_stats.modeledUs(cfg.hw) * 1e6;

    // Per-circuit detail from a direct compiled run.
    compiler::CompilerOptions options;
    options.hw = cfg.hw;
    const compiler::CompiledCircuit compiled =
        compiler::compileCircuit(params, circuit, options);
    compiler::CircuitRunStats fused_stats;
    compiler::runCompiledCircuit(cp, compiled, inputs, &fused_stats);

    // --- static-verifier overhead ---------------------------------------
    // The abstract interpreter runs on every compile (kWarn/kReject)
    // and every service admission; it must stay a small fraction of
    // the compile it guards.
    const size_t reps = 10;
    compiler::CompilerOptions unverified = options;
    unverified.verify = compiler::VerifyCheck::kOff;
    const auto c0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < reps; ++i)
        compiler::compileCircuit(params, circuit, unverified);
    const auto c1 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < reps; ++i) {
        const verify::VerifyResult vr =
            verify::verifyCompiledCircuit(compiled);
        if (!vr.ok()) {
            std::fprintf(stderr, "bench circuit failed verification:\n%s\n",
                         vr.report().c_str());
            return 1;
        }
    }
    const auto c2 = std::chrono::steady_clock::now();
    const double compile_us =
        std::chrono::duration<double, std::micro>(c1 - c0).count() /
        static_cast<double>(reps);
    const double verify_us =
        std::chrono::duration<double, std::micro>(c2 - c1).count() /
        static_cast<double>(reps);
    const double verify_overhead_pct = 100.0 * verify_us / compile_us;

    bench::printHeader("circuit fusion: depth-4 demo circuit "
                       "(8 ops, paper parameters)");
    bench::printInfo("fused modeled op/s", fused_modeled, "op/s");
    bench::printInfo("unfused modeled op/s", unfused_modeled, "op/s");
    bench::printInfo("fused wall op/s", fused_wall, "op/s");
    bench::printInfo("fused segments",
                     static_cast<double>(compiled.segments.size()), "");
    bench::printInfo("fused Arm dispatches",
                     static_cast<double>(fused_stats.dispatches), "");
    bench::printInfo("unfused Arm dispatches",
                     static_cast<double>(unfused_stats.dispatches), "");
    bench::printInfo("memory-file peak",
                     static_cast<double>(compiled.peak_slots), "slots");
    bench::printInfo("host polys fused up/down",
                     static_cast<double>(fused_stats.uploaded_polys +
                                         fused_stats.downloaded_polys),
                     "");
    bench::printInfo("host polys unfused up/down",
                     static_cast<double>(unfused_stats.uploaded_polys +
                                         unfused_stats.downloaded_polys),
                     "");
    bench::printInfo("compile time", compile_us, "us");
    bench::printInfo("verify time", verify_us, "us");
    bench::printInfo("verify overhead", verify_overhead_pct, "%");

    reporter.record("fused_modeled_ops_per_sec", fused_modeled, "op/s",
                    params->degree(), params->qBase()->size());
    reporter.record("unfused_modeled_ops_per_sec", unfused_modeled,
                    "op/s", params->degree(), params->qBase()->size());
    reporter.record("fused_wall_ops_per_sec", fused_wall, "op/s",
                    params->degree(), params->qBase()->size());
    reporter.record("fused_speedup", fused_modeled / unfused_modeled,
                    "x", params->degree(), params->qBase()->size());
    reporter.record("compile_us", compile_us, "us", params->degree(),
                    params->qBase()->size());
    reporter.record("verify_us", verify_us, "us", params->degree(),
                    params->qBase()->size());
    reporter.record("verify_overhead_pct", verify_overhead_pct, "%",
                    params->degree(), params->qBase()->size());

    const bool gate = fused_modeled > unfused_modeled;
    std::printf("\nfused vs unfused modeled throughput: %.2fx (%s)\n",
                fused_modeled / unfused_modeled,
                gate ? "fused wins" : "FUSION REGRESSION");
    return gate ? 0 : 1;
}
