/**
 * @file
 * Leveled vs flat execution of the paper-set depth-8 squaring chain
 * (t = 17): the noise pass's level assignment inserts mod-switches
 * after relinearizations, so every instruction past a drop runs on a
 * shrunken RNS basis — fewer relin digits, shorter Lift/Scale input
 * chains, less DMA. The chain is compiled two ways:
 *
 *  - leveled: CompilerOptions::auto_mod_switch under
 *    NoiseCheck::kReject — the level assignment must PROVE the budget
 *    survives all eight squarings (the flat circuit is rejected at
 *    this depth, which is the point of the pass);
 *  - flat: every ciphertext pinned at level 0, noise check off (the
 *    pass would reject it), run fused anyway to price the naive
 *    lowering honestly.
 *
 * Exit status is the CI gate: the leveled program must decrypt the
 * chain exactly (a constant plaintext {3} squares to 3^256 mod 17),
 * stay bit-identical across the fused and op-by-op paths, and beat
 * the flat program on modeled fused time.
 */

#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "compiler/compiler.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/coprocessor.h"

using namespace heat;

int
main(int argc, char **argv)
{
    bench::JsonReporter reporter("bench_modswitch", argc, argv);

    auto params = fv::FvParams::paper(17);
    fv::KeyGenerator keygen(params, 42);
    const fv::SecretKey sk = keygen.generateSecretKey();
    const fv::PublicKey pk = keygen.generatePublicKey(sk);
    const fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 7);
    fv::Decryptor decryptor(params, fv::SecretKey{sk.s_ntt});
    fv::Evaluator evaluator(params, fv::ArithPath::kHps);

    compiler::CircuitBuilder b;
    compiler::ValueId v = b.input();
    for (int i = 0; i < 8; ++i)
        v = b.square(v);
    b.output(v);
    const compiler::Circuit chain = b.build();

    compiler::CompilerOptions leveled_opts;
    leveled_opts.noise_check = compiler::NoiseCheck::kReject;
    leveled_opts.auto_mod_switch = true;
    compiler::CompilerOptions flat_opts = leveled_opts;
    flat_opts.auto_mod_switch = false;
    flat_opts.noise_check = compiler::NoiseCheck::kOff;

    const compiler::CompiledCircuit leveled =
        compiler::compileCircuit(params, chain, leveled_opts);
    const compiler::CompiledCircuit flat =
        compiler::compileCircuit(params, chain, flat_opts);

    size_t drops = 0;
    for (const compiler::CircuitNode &node : leveled.circuit.nodes)
        drops += node.kind == compiler::NodeKind::kModSwitch;
    const size_t out_level =
        leveled.value_levels[leveled.circuit.outputs[0]];

    // t = 17 does not batch at n = 4096, so exactness rides on a
    // constant polynomial: the chain computes 3^(2^8) mod 17.
    fv::Plaintext plain;
    plain.coeffs.assign(params->degree(), 0);
    plain.coeffs[0] = 3;
    const std::vector<fv::Ciphertext> inputs = {encryptor.encrypt(plain)};

    hw::Coprocessor cp(params, leveled_opts.hw, &rlk);
    compiler::CircuitRunStats leveled_stats;
    const std::vector<fv::Ciphertext> fused =
        compiler::runCompiledCircuit(cp, leveled, inputs, &leveled_stats);
    hw::Coprocessor cp_op(params, leveled_opts.hw, &rlk);
    compiler::CircuitRunStats op_stats;
    const std::vector<fv::Ciphertext> opbyop = compiler::runCircuitOpByOp(
        cp_op, params, leveled.circuit, inputs, &op_stats);
    const std::vector<fv::Ciphertext> sw =
        compiler::evaluateCircuit(evaluator, &rlk, leveled.circuit, inputs);

    hw::Coprocessor cp_flat(params, flat_opts.hw, &rlk);
    compiler::CircuitRunStats flat_stats;
    compiler::runCompiledCircuit(cp_flat, flat, inputs, &flat_stats);

    const bool bit_identical = fused[0] == sw[0] && opbyop[0] == sw[0];
    const fv::Plaintext got = decryptor.decrypt(fused[0]);
    uint64_t want = 3;
    for (int i = 0; i < 8; ++i)
        want = want * want % 17;
    bool exact = got.coeffs[0] == want;
    for (size_t i = 1; i < got.coeffs.size(); ++i)
        exact = exact && got.coeffs[i] == 0;
    const double measured = decryptor.invariantNoiseBudget(fused[0]);

    const double leveled_us = leveled_stats.modeledUs(leveled_opts.hw);
    const double op_us = op_stats.modeledUs(leveled_opts.hw);
    const double flat_us = flat_stats.modeledUs(flat_opts.hw);

    bench::printHeader("Depth-8 squaring chain, leveled vs flat "
                       "(paper set, t = 17)");
    bench::printInfo("mod-switches inserted",
                     static_cast<double>(drops), "");
    bench::printInfo("output level", static_cast<double>(out_level), "");
    bench::printInfo("leveled instructions",
                     static_cast<double>(leveled.instructionCount()), "");
    bench::printInfo("flat instructions",
                     static_cast<double>(flat.instructionCount()), "");
    bench::printInfo("leveled fused modeled time", leveled_us, "us");
    bench::printInfo("leveled op-by-op modeled time", op_us, "us");
    bench::printInfo("flat fused modeled time", flat_us, "us");
    bench::printInfo("predicted budget",
                     leveled.min_output_noise_budget_bits, "bits");
    bench::printInfo("measured budget", measured, "bits");

    const size_t n = params->degree();
    const size_t moduli = params->qBase()->size();
    reporter.record("modswitch_drops", static_cast<double>(drops), "", n,
                    moduli);
    reporter.record("output_level", static_cast<double>(out_level), "",
                    n, moduli);
    reporter.record("leveled_instructions",
                    static_cast<double>(leveled.instructionCount()), "",
                    n, moduli);
    reporter.record("flat_instructions",
                    static_cast<double>(flat.instructionCount()), "", n,
                    moduli);
    reporter.record("leveled_modeled_us", leveled_us, "us", n, moduli);
    reporter.record("leveled_opbyop_modeled_us", op_us, "us", n, moduli);
    reporter.record("flat_modeled_us", flat_us, "us", n, moduli);
    reporter.record("leveled_vs_flat_speedup", flat_us / leveled_us, "x",
                    n, moduli);
    reporter.record("predicted_budget_bits",
                    leveled.min_output_noise_budget_bits, "bits", n,
                    moduli);
    reporter.record("measured_budget_bits", measured, "bits", n, moduli);

    const bool gate = exact && bit_identical && measured > 0.0 &&
                      leveled_us < flat_us;
    std::printf("\nleveled vs flat: %.2fx modeled time, %zu drops, "
                "output level %zu, decrypt %s, paths %s (%s)\n",
                flat_us / leveled_us, drops, out_level,
                exact ? "exact" : "WRONG",
                bit_identical ? "bit-identical" : "DIVERGED",
                gate ? "leveled wins" : "REGRESSION");
    return gate ? 0 : 1;
}
