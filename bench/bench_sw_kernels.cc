/**
 * @file
 * google-benchmark micro suite for the software kernels underpinning
 * both the evaluator and the hardware model: modular reduction variants
 * (Barrett vs Shoup vs the paper's sliding window), NTT transforms
 * across degrees, HPS Lift/Scale per-coefficient kernels, and the
 * high-level evaluator operations on the paper's parameter set.
 */

#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "ntt/ntt.h"
#include "rns/base_convert.h"
#include "rns/prime_gen.h"
#include "rns/scale_round.h"

using namespace heat;

namespace {

rns::Modulus
prime30()
{
    static const uint64_t p = rns::generateNttPrimes(30, 4096, 1)[0];
    return rns::Modulus(p);
}

void
BM_ReduceBarrett(benchmark::State &state)
{
    rns::Modulus q = prime30();
    Xoshiro256 rng(1);
    uint64_t x = rng.next() >> 4;
    for (auto _ : state) {
        x = q.reduce128(mulWide64(x | 1, x | 3));
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_ReduceBarrett);

void
BM_ReduceSlidingWindow(benchmark::State &state)
{
    rns::Modulus q = prime30();
    Xoshiro256 rng(2);
    uint64_t a = rng.uniformBelow(q.value());
    for (auto _ : state) {
        a = q.slidingWindowReduce(a * (a | 1));
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_ReduceSlidingWindow);

void
BM_MulShoup(benchmark::State &state)
{
    rns::Modulus q = prime30();
    Xoshiro256 rng(3);
    const uint64_t w = rng.uniformBelow(q.value());
    const uint64_t w_shoup = q.shoupPrecompute(w);
    uint64_t a = rng.uniformBelow(q.value());
    for (auto _ : state) {
        a = q.mulShoup(a | 1, w, w_shoup);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_MulShoup);

void
BM_ForwardNtt(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    rns::Modulus q(rns::generateNttPrimes(30, n, 1)[0]);
    ntt::NttTables tables(q, n);
    Xoshiro256 rng(4);
    std::vector<uint64_t> a(n);
    for (auto &x : a)
        x = rng.uniformBelow(q.value());
    for (auto _ : state) {
        ntt::forwardNtt(a, tables);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ForwardNtt)->Arg(1024)->Arg(4096)->Arg(16384);

void
BM_InverseNtt(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    rns::Modulus q(rns::generateNttPrimes(30, n, 1)[0]);
    ntt::NttTables tables(q, n);
    Xoshiro256 rng(5);
    std::vector<uint64_t> a(n);
    for (auto &x : a)
        x = rng.uniformBelow(q.value());
    for (auto _ : state) {
        ntt::inverseNtt(a, tables);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_InverseNtt)->Arg(4096);

void
BM_LiftCoefficient(benchmark::State &state)
{
    auto params = fv::FvParams::paper();
    const auto &conv = params->liftConverter();
    Xoshiro256 rng(6);
    std::vector<uint64_t> in(params->qBase()->size());
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = rng.uniformBelow(params->qBase()->modulus(i).value());
    std::vector<uint64_t> out(params->pBase()->size());
    for (auto _ : state) {
        conv.convert(in, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_LiftCoefficient);

void
BM_ScaleCoefficient(benchmark::State &state)
{
    auto params = fv::FvParams::paper();
    const auto &scaler = params->scaler();
    Xoshiro256 rng(7);
    std::vector<uint64_t> in(params->fullBase()->size());
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = rng.uniformBelow(params->fullBase()->modulus(i).value());
    std::vector<uint64_t> out(params->pBase()->size());
    for (auto _ : state) {
        scaler.scale(in, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_ScaleCoefficient);

/** Shared fixture for the paper-parameter evaluator benchmarks. */
struct EvalFixture
{
    EvalFixture()
        : params(fv::FvParams::paper()),
          keygen(params, 8),
          sk(keygen.generateSecretKey()),
          pk(keygen.generatePublicKey(sk)),
          rlk(keygen.generateRelinKeys(sk)),
          encryptor(params, pk, 9),
          evaluator(params, fv::ArithPath::kHps),
          exact_evaluator(params, fv::ArithPath::kExactCrt)
    {
        fv::Plaintext m;
        m.coeffs.assign(params->degree(), 1);
        a = encryptor.encrypt(m);
        b = encryptor.encrypt(m);
    }

    static EvalFixture &
    instance()
    {
        static EvalFixture fixture;
        return fixture;
    }

    std::shared_ptr<const fv::FvParams> params;
    fv::KeyGenerator keygen;
    fv::SecretKey sk;
    fv::PublicKey pk;
    fv::RelinKeys rlk;
    fv::Encryptor encryptor;
    fv::Evaluator evaluator;
    fv::Evaluator exact_evaluator;
    fv::Ciphertext a, b;
};

void
BM_EvaluatorAdd(benchmark::State &state)
{
    auto &f = EvalFixture::instance();
    for (auto _ : state) {
        fv::Ciphertext c = f.evaluator.add(f.a, f.b);
        benchmark::DoNotOptimize(c.polys.data());
    }
}
BENCHMARK(BM_EvaluatorAdd)->Unit(benchmark::kMillisecond);

void
BM_EvaluatorMultHps(benchmark::State &state)
{
    auto &f = EvalFixture::instance();
    for (auto _ : state) {
        fv::Ciphertext c = f.evaluator.multiply(f.a, f.b, f.rlk);
        benchmark::DoNotOptimize(c.polys.data());
    }
}
BENCHMARK(BM_EvaluatorMultHps)->Unit(benchmark::kMillisecond);

void
BM_EvaluatorMultExactCrt(benchmark::State &state)
{
    auto &f = EvalFixture::instance();
    for (auto _ : state) {
        fv::Ciphertext c = f.exact_evaluator.multiply(f.a, f.b, f.rlk);
        benchmark::DoNotOptimize(c.polys.data());
    }
}
BENCHMARK(BM_EvaluatorMultExactCrt)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/**
 * Console output as usual, plus one JSON-lines record per benchmark
 * (ns per iteration) through the shared reporter when --json is given.
 */
class JsonLinesReporter : public benchmark::ConsoleReporter
{
  public:
    explicit JsonLinesReporter(const heat::bench::JsonReporter &json)
        : json_(json)
    {
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        ConsoleReporter::ReportRuns(runs);
        for (const auto &run : runs) {
            if (run.run_type != Run::RT_Iteration || run.iterations == 0)
                continue;
            const double ns = run.real_accumulated_time /
                              static_cast<double>(run.iterations) * 1e9;
            json_.record(run.benchmark_name(), ns, "ns");
        }
    }

  private:
    const heat::bench::JsonReporter &json_;
};

} // namespace

int
main(int argc, char **argv)
{
    heat::bench::JsonReporter json("sw_kernels", argc, argv);

    // Strip --json <path> before google-benchmark sees the arguments;
    // it rejects flags it does not know.
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--json") {
            if (i + 1 < argc &&
                !std::string_view(argv[i + 1]).starts_with("--"))
                ++i;
            continue;
        }
        args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;

    JsonLinesReporter reporter(json);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return 0;
}
