/**
 * @file
 * google-benchmark micro suite for the software kernels underpinning
 * both the evaluator and the hardware model: modular reduction variants
 * (Barrett vs Shoup vs the paper's sliding window), NTT transforms
 * across degrees, HPS Lift/Scale per-coefficient kernels, and the
 * high-level evaluator operations on the paper's parameter set.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "ntt/ntt.h"
#include "ntt/rns_poly.h"
#include "rns/base_convert.h"
#include "rns/prime_gen.h"
#include "rns/scale_round.h"
#include "simd/simd.h"

using namespace heat;

namespace {

rns::Modulus
prime30()
{
    static const uint64_t p = rns::generateNttPrimes(30, 4096, 1)[0];
    return rns::Modulus(p);
}

void
BM_ReduceBarrett(benchmark::State &state)
{
    rns::Modulus q = prime30();
    Xoshiro256 rng(1);
    uint64_t x = rng.next() >> 4;
    for (auto _ : state) {
        x = q.reduce128(mulWide64(x | 1, x | 3));
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_ReduceBarrett);

void
BM_ReduceSlidingWindow(benchmark::State &state)
{
    rns::Modulus q = prime30();
    Xoshiro256 rng(2);
    uint64_t a = rng.uniformBelow(q.value());
    for (auto _ : state) {
        a = q.slidingWindowReduce(a * (a | 1));
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_ReduceSlidingWindow);

void
BM_MulShoup(benchmark::State &state)
{
    rns::Modulus q = prime30();
    Xoshiro256 rng(3);
    const uint64_t w = rng.uniformBelow(q.value());
    const uint64_t w_shoup = q.shoupPrecompute(w);
    uint64_t a = rng.uniformBelow(q.value());
    for (auto _ : state) {
        a = q.mulShoup(a | 1, w, w_shoup);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_MulShoup);

void
BM_ForwardNtt(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    rns::Modulus q(rns::generateNttPrimes(30, n, 1)[0]);
    ntt::NttTables tables(q, n);
    Xoshiro256 rng(4);
    std::vector<uint64_t> a(n);
    for (auto &x : a)
        x = rng.uniformBelow(q.value());
    for (auto _ : state) {
        ntt::forwardNtt(a, tables);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ForwardNtt)->Arg(1024)->Arg(4096)->Arg(16384);

void
BM_InverseNtt(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    rns::Modulus q(rns::generateNttPrimes(30, n, 1)[0]);
    ntt::NttTables tables(q, n);
    Xoshiro256 rng(5);
    std::vector<uint64_t> a(n);
    for (auto &x : a)
        x = rng.uniformBelow(q.value());
    for (auto _ : state) {
        ntt::inverseNtt(a, tables);
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_InverseNtt)->Arg(4096);

/**
 * Forward NTT pinned to one kernel table (registered per supported
 * level from main, so `BM_ForwardNttLevel/avx2/4096` only exists on
 * hosts that can run it). The unpinned BM_ForwardNtt above measures
 * whatever the dispatcher picked.
 */
void
BM_ForwardNttLevel(benchmark::State &state, simd::Level level)
{
    const size_t n = static_cast<size_t>(state.range(0));
    rns::Modulus q(rns::generateNttPrimes(30, n, 1)[0]);
    ntt::NttTables tables(q, n);
    const simd::Kernels &kernels = simd::kernelsFor(level);
    Xoshiro256 rng(14);
    std::vector<uint64_t> a(n);
    for (auto &x : a)
        x = rng.uniformBelow(q.value());
    for (auto _ : state) {
        kernels.ntt_forward(a.data(), tables);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

/** RnsPoly fixture shared by the dyadic and transform benchmarks. */
struct DyadicFixture
{
    DyadicFixture(size_t n, size_t moduli, bool ntt_form)
        : base(std::make_shared<const rns::RnsBase>(
              rns::generateNttPrimes(30, n, moduli))),
          context(*base, n),
          a(base, n),
          b(base, n)
    {
        Xoshiro256 rng(15);
        for (size_t i = 0; i < a.residueCount(); ++i) {
            const uint64_t q_i = base->modulus(i).value();
            for (size_t j = 0; j < n; ++j) {
                a.residue(i)[j] = rng.uniformBelow(q_i);
                b.residue(i)[j] = rng.uniformBelow(q_i);
            }
        }
        if (ntt_form) {
            a.toNtt(context);
            b.toNtt(context);
        }
    }

    std::shared_ptr<const rns::RnsBase> base;
    ntt::NttContext context;
    ntt::RnsPoly a, b;
};

/** Restores the process-wide thread count on scope exit. */
struct ThreadGuard
{
    unsigned saved = threadCount();
    ~ThreadGuard() { setThreadCount(saved); }
};

constexpr size_t kDyadicModuli = 3;

/** Full RnsPoly forward+inverse transform pair across residues. */
void
BM_PolyNttRoundTrip(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    ThreadGuard guard;
    setThreadCount(static_cast<unsigned>(state.range(1)));
    DyadicFixture f(n, kDyadicModuli, /*ntt_form=*/false);
    for (auto _ : state) {
        f.a.toNtt(f.context);
        f.a.toCoeff(f.context);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(2 * kDyadicModuli * n));
}
BENCHMARK(BM_PolyNttRoundTrip)
    ->ArgNames({"n", "threads"})
    ->Args({4096, 1})
    ->Args({4096, 4})
    ->Args({8192, 1})
    ->Args({8192, 4});

/** Dyadic ciphertext kernel: residue-wise pointwise multiply. */
void
BM_DyadicMulPointwise(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    ThreadGuard guard;
    setThreadCount(static_cast<unsigned>(state.range(1)));
    DyadicFixture f(n, kDyadicModuli, /*ntt_form=*/true);
    for (auto _ : state) {
        f.a.mulPointwiseInPlace(f.b);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(kDyadicModuli * n));
}
BENCHMARK(BM_DyadicMulPointwise)
    ->ArgNames({"n", "threads"})
    ->Args({4096, 1})
    ->Args({4096, 4})
    ->Args({8192, 1})
    ->Args({8192, 4});

/** Dyadic ciphertext kernel: residue-wise addition. */
void
BM_DyadicAdd(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    ThreadGuard guard;
    setThreadCount(static_cast<unsigned>(state.range(1)));
    DyadicFixture f(n, kDyadicModuli, /*ntt_form=*/true);
    for (auto _ : state) {
        f.a.addInPlace(f.b);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(kDyadicModuli * n));
}
BENCHMARK(BM_DyadicAdd)
    ->ArgNames({"n", "threads"})
    ->Args({4096, 1})
    ->Args({4096, 4})
    ->Args({8192, 1})
    ->Args({8192, 4});

void
BM_LiftCoefficient(benchmark::State &state)
{
    auto params = fv::FvParams::paper();
    const auto &conv = params->liftConverter();
    Xoshiro256 rng(6);
    std::vector<uint64_t> in(params->qBase()->size());
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = rng.uniformBelow(params->qBase()->modulus(i).value());
    std::vector<uint64_t> out(params->pBase()->size());
    for (auto _ : state) {
        conv.convert(in, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_LiftCoefficient);

void
BM_ScaleCoefficient(benchmark::State &state)
{
    auto params = fv::FvParams::paper();
    const auto &scaler = params->scaler();
    Xoshiro256 rng(7);
    std::vector<uint64_t> in(params->fullBase()->size());
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = rng.uniformBelow(params->fullBase()->modulus(i).value());
    std::vector<uint64_t> out(params->pBase()->size());
    for (auto _ : state) {
        scaler.scale(in, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_ScaleCoefficient);

/** Shared fixture for the paper-parameter evaluator benchmarks. */
struct EvalFixture
{
    EvalFixture()
        : params(fv::FvParams::paper()),
          keygen(params, 8),
          sk(keygen.generateSecretKey()),
          pk(keygen.generatePublicKey(sk)),
          rlk(keygen.generateRelinKeys(sk)),
          encryptor(params, pk, 9),
          evaluator(params, fv::ArithPath::kHps),
          exact_evaluator(params, fv::ArithPath::kExactCrt)
    {
        fv::Plaintext m;
        m.coeffs.assign(params->degree(), 1);
        a = encryptor.encrypt(m);
        b = encryptor.encrypt(m);
    }

    static EvalFixture &
    instance()
    {
        static EvalFixture fixture;
        return fixture;
    }

    std::shared_ptr<const fv::FvParams> params;
    fv::KeyGenerator keygen;
    fv::SecretKey sk;
    fv::PublicKey pk;
    fv::RelinKeys rlk;
    fv::Encryptor encryptor;
    fv::Evaluator evaluator;
    fv::Evaluator exact_evaluator;
    fv::Ciphertext a, b;
};

void
BM_EvaluatorAdd(benchmark::State &state)
{
    auto &f = EvalFixture::instance();
    for (auto _ : state) {
        fv::Ciphertext c = f.evaluator.add(f.a, f.b);
        benchmark::DoNotOptimize(c.polys.data());
    }
}
BENCHMARK(BM_EvaluatorAdd)->Unit(benchmark::kMillisecond);

void
BM_EvaluatorMultHps(benchmark::State &state)
{
    auto &f = EvalFixture::instance();
    for (auto _ : state) {
        fv::Ciphertext c = f.evaluator.multiply(f.a, f.b, f.rlk);
        benchmark::DoNotOptimize(c.polys.data());
    }
}
BENCHMARK(BM_EvaluatorMultHps)->Unit(benchmark::kMillisecond);

void
BM_EvaluatorMultExactCrt(benchmark::State &state)
{
    auto &f = EvalFixture::instance();
    for (auto _ : state) {
        fv::Ciphertext c = f.exact_evaluator.multiply(f.a, f.b, f.rlk);
        benchmark::DoNotOptimize(c.polys.data());
    }
}
BENCHMARK(BM_EvaluatorMultExactCrt)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/**
 * Console output as usual, plus one JSON-lines record per benchmark
 * (ns per iteration) through the shared reporter when --json is given.
 */
class JsonLinesReporter : public benchmark::ConsoleReporter
{
  public:
    explicit JsonLinesReporter(const heat::bench::JsonReporter &json)
        : json_(json)
    {
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        ConsoleReporter::ReportRuns(runs);
        for (const auto &run : runs) {
            if (run.run_type != Run::RT_Iteration || run.iterations == 0)
                continue;
            const double ns = run.real_accumulated_time /
                              static_cast<double>(run.iterations) * 1e9;
            json_.record(run.benchmark_name(), ns, "ns");
        }
    }

  private:
    const heat::bench::JsonReporter &json_;
};

/**
 * Median-of-reps forward-NTT time for one kernel table, measured with
 * a plain steady_clock loop so the scalar-vs-dispatched ratio can be
 * emitted as a single JSON record for the CI speedup gate.
 */
double
forwardNttSecondsPerTransform(const simd::Kernels &kernels, size_t n)
{
    rns::Modulus q(rns::generateNttPrimes(30, n, 1)[0]);
    ntt::NttTables tables(q, n);
    Xoshiro256 rng(16);
    std::vector<uint64_t> a(n);
    for (auto &x : a)
        x = rng.uniformBelow(q.value());

    constexpr int kWarmup = 20;
    constexpr int kIters = 200;
    constexpr int kReps = 5;
    for (int i = 0; i < kWarmup; ++i)
        kernels.ntt_forward(a.data(), tables);
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < kIters; ++i)
            kernels.ntt_forward(a.data(), tables);
        const auto stop = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(stop - start).count() / kIters;
        best = std::min(best, secs);
    }
    benchmark::DoNotOptimize(a.data());
    return best;
}

/**
 * Same measurement through the instrumented ntt::forwardNtt dispatcher
 * (which carries an OBS_SPAN). With no tracer installed the span must
 * be one relaxed atomic load + branch — the delta against the raw
 * kernel-table loop above is the disabled-instrumentation overhead the
 * CI gates at < 2%.
 */
double
forwardNttDispatcherSecondsPerTransform(size_t n)
{
    rns::Modulus q(rns::generateNttPrimes(30, n, 1)[0]);
    ntt::NttTables tables(q, n);
    Xoshiro256 rng(16);
    std::vector<uint64_t> a(n);
    for (auto &x : a)
        x = rng.uniformBelow(q.value());

    constexpr int kWarmup = 20;
    constexpr int kIters = 200;
    constexpr int kReps = 5;
    for (int i = 0; i < kWarmup; ++i)
        ntt::forwardNtt(a, tables);
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < kIters; ++i)
            ntt::forwardNtt(a, tables);
        const auto stop = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(stop - start).count() / kIters;
        best = std::min(best, secs);
    }
    benchmark::DoNotOptimize(a.data());
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    heat::bench::JsonReporter json("sw_kernels", argc, argv);

    // Level-pinned NTT benches for every table this host can run.
    for (simd::Level level : {simd::Level::kScalar, simd::Level::kAvx2,
                              simd::Level::kAvx512}) {
        if (level > simd::detectedLevel())
            break;
        const std::string name =
            std::string("BM_ForwardNttLevel/") + simd::levelName(level);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [level](benchmark::State &state) {
                BM_ForwardNttLevel(state, level);
            })
            ->Arg(4096)
            ->Arg(8192);
    }

    // Strip --json <path> before google-benchmark sees the arguments;
    // it rejects flags it does not know.
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--json") {
            if (i + 1 < argc &&
                !std::string_view(argv[i + 1]).starts_with("--"))
                ++i;
            continue;
        }
        args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;

    JsonLinesReporter reporter(json);
    benchmark::RunSpecifiedBenchmarks(&reporter);

    // Dispatched-vs-scalar forward-NTT ratio for the CI gate. The
    // dispatched table is whatever CPUID + HEAT_SIMD selected, so on a
    // forced-scalar run (or a host without AVX2) the ratio is ~1.
    {
        constexpr size_t kSpeedupDegree = 8192;
        const double scalar_secs = forwardNttSecondsPerTransform(
            simd::kernelsFor(simd::Level::kScalar), kSpeedupDegree);
        const double active_secs = forwardNttSecondsPerTransform(
            simd::active(), kSpeedupDegree);
        const double speedup = scalar_secs / active_secs;
        heat::bench::printHeader("SIMD dispatch");
        heat::bench::printInfo(
            std::string("active level: ") +
                simd::levelName(simd::activeLevel()),
            static_cast<double>(simd::activeLevel()), "");
        heat::bench::printInfo("forward NTT scalar (n=8192)",
                               scalar_secs * 1e6, "us");
        heat::bench::printInfo("forward NTT dispatched (n=8192)",
                               active_secs * 1e6, "us");
        heat::bench::printInfo("ntt_simd_vs_scalar_speedup", speedup, "x");
        json.record("cpu_simd_level",
                    static_cast<double>(simd::detectedLevel()), "level");
        json.record("active_simd_level",
                    static_cast<double>(simd::activeLevel()), "level");
        json.record("ntt_simd_vs_scalar_speedup", speedup, "x",
                    kSpeedupDegree, 1);
    }

    // Disabled-instrumentation overhead of the OBS_SPAN macro on the
    // forward-NTT dispatcher, for the CI < 2% gate. Best-of-reps on
    // both sides so scheduler noise cancels; the result can go
    // slightly negative on a quiet machine.
    {
        constexpr size_t kOverheadDegree = 8192;
        const double raw_secs = forwardNttSecondsPerTransform(
            simd::active(), kOverheadDegree);
        const double instrumented_secs =
            forwardNttDispatcherSecondsPerTransform(kOverheadDegree);
        const double overhead_pct =
            (instrumented_secs / raw_secs - 1.0) * 100.0;
        heat::bench::printHeader("observability overhead");
        heat::bench::printInfo("forward NTT raw table (n=8192)",
                               raw_secs * 1e6, "us");
        heat::bench::printInfo("forward NTT instrumented (n=8192)",
                               instrumented_secs * 1e6, "us");
        heat::bench::printInfo("obs_span_disabled_overhead_pct",
                               overhead_pct, "%");
        json.record("obs_span_disabled_overhead_pct", overhead_pct, "%",
                    kOverheadDegree, 1);
    }

    benchmark::Shutdown();
    return 0;
}
