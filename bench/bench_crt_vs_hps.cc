/**
 * @file
 * Reproduces the Sec. VI-C comparison between the two coprocessor
 * architectures: traditional multi-precision CRT Lift/Scale (225 MHz,
 * four cores, 2-element relinearization keys) versus the HPS
 * small-integer datapath (200 MHz, two cores, 6-element keys).
 */

#include <cstdio>

#include "bench_util.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/system.h"
#include "hw/trad_lift_scale.h"

using namespace heat;
using namespace heat::hw;

int
main(int argc, char **argv)
{
    bench::JsonReporter json("crt_vs_hps", argc, argv);
    auto params = fv::FvParams::paper();

    // --- single-core Lift/Scale of the traditional architecture -------
    HwConfig trad = HwConfig::paperTraditional();
    TradLiftScaleModel model(params, trad);

    bench::printHeader("Sec. VI-C: traditional CRT architecture");
    bench::printRow("Lift q->Q, single core (ms)", 1.68,
                    model.singleCoreLiftUs() / 1e3, "ms");
    bench::printRow("Scale Q->q, single core (ms)", 4.3,
                    model.singleCoreScaleUs() / 1e3, "ms");
    std::printf("\nBlock beats (cycles/coefficient): lift %zu "
                "(sop %zu, div %zu, residues %zu), scale %zu "
                "(division-bound, %.1fx the lift division)\n",
                model.liftBeat(), model.liftSopCycles(),
                model.liftDivisionCycles(), model.liftResidueCycles(),
                model.scaleBeat(),
                static_cast<double>(model.scaleDivisionCycles()) /
                    static_cast<double>(model.liftDivisionCycles()));

    // --- full Mult on both architectures --------------------------------
    HeatSystem fast_sys(params, HwConfig::paper(), 1);
    HeatSystem slow_sys(params, trad, 1);
    auto mult_ms = [](const MultJobProfile &p) {
        return (p.compute_us +
                p.key_dma_us * static_cast<double>(p.key_segments)) /
               1e3;
    };
    const double fast_ms = mult_ms(fast_sys.profile());
    const double slow_ms = mult_ms(slow_sys.profile());

    bench::printHeader("Mult on the two architectures");
    bench::printRow("HPS coprocessor Mult (ms)", 4.458, fast_ms, "ms");
    bench::printRow("Traditional coprocessor Mult (ms)", 8.3, slow_ms,
                    "ms");
    std::printf("\nSlowdown of the traditional architecture: %.2fx "
                "(paper: <2x thanks to the 3x smaller relin key)\n",
                slow_ms / fast_ms);

    const size_t n = params->degree();
    const size_t k = params->qBase()->size();
    json.record("trad_lift_single_core", model.singleCoreLiftUs() * 1e3,
                "ns", n, k);
    json.record("trad_scale_single_core", model.singleCoreScaleUs() * 1e3,
                "ns", n, k);
    json.record("hps_mult", fast_ms * 1e6, "ns", n, k);
    json.record("trad_mult", slow_ms * 1e6, "ns", n, k);

    // --- relinearization key sizes ----------------------------------------
    fv::KeyGenerator keygen(params, 1);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::RelinKeys rns_keys = keygen.generateRelinKeys(sk);
    fv::RelinKeys pos_keys = keygen.generatePositionalRelinKeys(sk, 90);

    bench::printHeader("Relinearization keys");
    bench::printRow("HPS architecture: key polynomials", 6,
                    static_cast<double>(rns_keys.digitCount()), "  ");
    bench::printRow("Traditional architecture: key polynomials", 2,
                    static_cast<double>(pos_keys.digitCount()), "  ");
    std::printf("\nKey bytes: HPS %zu, traditional %zu (%.1fx smaller "
                "-> paper: would be another 30%% slower with equal-size "
                "keys)\n",
                rns_keys.byteSize(), pos_keys.byteSize(),
                static_cast<double>(rns_keys.byteSize()) /
                    static_cast<double>(pos_keys.byteSize()));
    return 0;
}
