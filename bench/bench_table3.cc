/**
 * @file
 * Reproduces Table III: comparison of DMA data-transfer techniques for
 * one 98304-byte residue polynomial (single burst vs 16 KiB vs 1 KiB
 * chunks), plus a sweep over chunk sizes showing where the knee sits.
 */

#include <cstdio>

#include "bench_util.h"
#include "hw/dma.h"

using namespace heat;
using namespace heat::hw;

int
main(int argc, char **argv)
{
    bench::JsonReporter json("table3", argc, argv);
    HwConfig config = HwConfig::paper();
    DmaModel dma(config);
    const size_t bytes = 98304; // one R_q polynomial: 6 * 4096 * 4 bytes

    bench::printHeader("Table III: data transfer techniques (us)");
    bench::printRow("Single transfer of 98304 bytes", 76.0,
                    dma.transferUs(bytes, bytes), "us");
    bench::printRow("Transfers with 16384-byte chunks", 109.0,
                    dma.transferUs(bytes, 16384), "us");
    bench::printRow("Transfers with 1024-byte chunks", 202.0,
                    dma.transferUs(bytes, 1024), "us");

    bench::printHeader("Table III in Arm cycles (1.2 GHz)");
    bench::printRow("Single transfer of 98304 bytes", 90708,
                    static_cast<double>(config.usToArmCycles(
                        dma.transferUs(bytes, bytes))),
                    "cy");
    bench::printRow("Transfers with 16384-byte chunks", 130686,
                    static_cast<double>(config.usToArmCycles(
                        dma.transferUs(bytes, 16384))),
                    "cy");
    bench::printRow("Transfers with 1024-byte chunks", 242771,
                    static_cast<double>(config.usToArmCycles(
                        dma.transferUs(bytes, 1024))),
                    "cy");

    std::printf("\nChunk-size sweep (98304 bytes):\n");
    std::printf("%12s %12s %14s\n", "chunk (B)", "time (us)",
                "eff. BW (MB/s)");
    for (size_t chunk = 512; chunk <= bytes; chunk *= 2) {
        const double us = dma.transferUs(bytes, std::min(chunk, bytes));
        std::printf("%12zu %12.1f %14.0f\n", std::min(chunk, bytes), us,
                    static_cast<double>(bytes) / us);
    }
    std::printf("\nRaw stream time (no driver overhead): %.1f us "
                "(2 GB/s bus)\n",
                dma.streamUs(bytes));

    json.record("dma_single_burst", dma.transferUs(bytes, bytes) * 1e3,
                "ns", 4096, 6);
    json.record("dma_16384B_chunks", dma.transferUs(bytes, 16384) * 1e3,
                "ns", 4096, 6);
    json.record("dma_1024B_chunks", dma.transferUs(bytes, 1024) * 1e3,
                "ns", 4096, 6);
    return 0;
}
