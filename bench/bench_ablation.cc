/**
 * @file
 * Ablations of the paper's design decisions (Sec. V "Discussions"
 * invites exactly this: "design decisions can be tweaked to meet
 * different requirements"):
 *
 *   1. butterfly cores per RPAU  — why two is the sweet spot
 *      (BRAM ports feed at most four coefficients per cycle);
 *   2. Lift/Scale core count     — latency vs DSP cost;
 *   3. RPAU count                — 7 (resource-shared) vs 13 (fully
 *      parallel, idle half the time) vs 4;
 *   4. relinearization digit width — key size vs noise (measured on the
 *      real scheme, not modeled);
 *   5. sliding-window vs Barrett reduction — hardware cost and measured
 *      software latency;
 *   6. twiddle ROM vs on-the-fly twiddles — the paper's 20%-bubble
 *      argument.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "hw/program_builder.h"
#include "hw/resource_model.h"

using namespace heat;
using namespace heat::hw;

namespace {

double
multUs(const HwConfig &config)
{
    auto params = fv::FvParams::paper();
    Coprocessor cp(params, config);
    ntt::RnsPoly zero(params->qBase(), params->degree());
    std::array<PolyId, 2> a{cp.uploadPoly(zero), cp.uploadPoly(zero)};
    std::array<PolyId, 2> b{cp.uploadPoly(zero), cp.uploadPoly(zero)};
    ProgramBuilder builder(cp);
    Program p = builder.buildMult(a, b);
    double us = 0;
    for (const auto &i : p.instrs) {
        us += config.cyclesToUs(cp.instructionCycles(i));
        us += cp.instructionDmaUs(i);
    }
    return us;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json("ablation", argc, argv);
    auto params = fv::FvParams::paper();
    const size_t n = params->degree();

    // --- 1. butterfly cores ------------------------------------------------
    std::printf("=== Ablation 1: butterfly cores per RPAU ===\n");
    std::printf("%8s %16s %16s %12s\n", "cores", "fed by BRAM", "NTT "
                "stage (cy)", "DSP/RPAU");
    for (size_t cores : {size_t(1), size_t(2), size_t(4)}) {
        // Two 60-bit words/cycle = 4 coefficients = 2 butterflies is the
        // memory ceiling (Sec. V-A2): extra cores starve.
        const size_t fed = std::min<size_t>(cores, 2);
        const size_t stage_cycles = n / 2 / fed;
        std::printf("%8zu %16zu %16zu %12zu\n", cores, fed, stage_cycles,
                    cores * 4);
    }
    std::printf("-> 2 cores saturate the two BRAM banks; 4 cores double "
                "DSP cost for zero speedup (the paper's choice).\n\n");

    // --- 2. Lift/Scale cores -----------------------------------------------
    std::printf("=== Ablation 2: Lift/Scale core count (HPS, 200 MHz) "
                "===\n");
    std::printf("%8s %14s %14s %14s\n", "cores", "Lift (us)", "Mult (ms)",
                "DSP/coproc");
    for (size_t cores : {size_t(1), size_t(2), size_t(4)}) {
        HwConfig config = HwConfig::paper();
        config.lift_scale_cores = cores;
        auto p = fv::FvParams::paper();
        LiftUnit lift(p, config);
        ResourceModel rm(*p, config);
        const double mult_us = multUs(config);
        std::printf("%8zu %14.1f %14.2f %14.0f\n", cores,
                    config.cyclesToUs(lift.cycles()), mult_us / 1e3,
                    rm.coprocessor().dsp);
        char kernel[48];
        std::snprintf(kernel, sizeof(kernel), "mult_lift_cores%zu",
                      cores);
        json.record(kernel, mult_us * 1e3, "ns", n,
                    p->qBase()->size());
    }
    std::printf("-> the paper's 2 cores balance the Lift/Scale time "
                "against the NTT-dominated remainder.\n\n");

    // --- 3. RPAU count ----------------------------------------------------
    std::printf("=== Ablation 3: RPAU count (batching of the 13-prime "
                "base) ===\n");
    std::printf("%8s %10s %18s %14s\n", "RPAUs", "batches",
                "full-base NTT (us)", "DSP for NTT");
    {
        HwConfig config = HwConfig::paper();
        NttEngine engine(config, n);
        const double one_batch = config.cyclesToUs(
            engine.forwardCycles() + config.dispatch_overhead);
        for (size_t rpaus : {size_t(4), size_t(7), size_t(13)}) {
            const size_t batches = (13 + rpaus - 1) / rpaus;
            std::printf("%8zu %10zu %18.1f %14zu\n", rpaus, batches,
                        one_batch * static_cast<double>(batches),
                        rpaus * 2 * 4);
        }
    }
    std::printf("-> 7 RPAUs halve the area of 13 at the cost of one "
                "extra batch pass; computation spends most time in the "
                "q base where 6 of 7 units are busy (Sec. V-A1).\n\n");

    // --- 4. relinearization digit width (measured) -----------------------
    std::printf("=== Ablation 4: positional relin digit width (measured "
                "on n=256 scheme) ===\n");
    fv::FvConfig small;
    small.degree = 256;
    small.plain_modulus = 4;
    small.sigma = 3.2;
    small.q_prime_count = 3;
    auto sp = fv::FvParams::create(small);
    fv::KeyGenerator keygen(sp, 42);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::Encryptor encryptor(sp, pk, 1);
    fv::Decryptor decryptor(sp, sk);
    fv::Evaluator evaluator(sp);
    fv::Plaintext m;
    m.coeffs = {1, 1, 0, 1};

    std::printf("%12s %8s %12s %18s\n", "digit bits", "digits",
                "key bytes", "budget after mult");
    for (int bits : {15, 30, 45, 90}) {
        fv::RelinKeys rlk = keygen.generatePositionalRelinKeys(sk, bits);
        fv::Ciphertext ct = evaluator.multiply(encryptor.encrypt(m),
                                               encryptor.encrypt(m), rlk);
        std::printf("%12d %8zu %12zu %18.1f\n", bits, rlk.digitCount(),
                    rlk.byteSize(),
                    decryptor.invariantNoiseBudget(ct));
    }
    {
        fv::RelinKeys rns_rlk = keygen.generateRelinKeys(sk);
        fv::Ciphertext ct = evaluator.multiply(
            encryptor.encrypt(m), encryptor.encrypt(m), rns_rlk);
        std::printf("%12s %8zu %12zu %18.1f\n", "RNS(30)",
                    rns_rlk.digitCount(), rns_rlk.byteSize(),
                    decryptor.invariantNoiseBudget(ct));
    }
    std::printf("-> wider digits shrink the key but cost noise budget; "
                "the RNS decomposition matches 30-bit digits with zero "
                "decomposition cost (the HPS architecture's choice).\n\n");

    // --- 5. sliding window vs Barrett ------------------------------------
    std::printf("=== Ablation 5: modular reduction circuit ===\n");
    {
        auto p = fv::FvParams::paper();
        HwConfig config = HwConfig::paper();
        ResourceModel rm(*p, config);
        Resources sw = rm.slidingWindowReducer();
        // A Barrett reducer needs two extra wide multipliers.
        Resources barrett = rm.mult30x30() + rm.mult30x30();
        barrett += {500, 400, 0, 0};
        std::printf("  sliding window: %4.0f LUT, %2.0f DSP per reducer "
                    "(x14 cores: %3.0f DSP)\n",
                    sw.lut, sw.dsp, 14 * sw.dsp);
        std::printf("  Barrett:        %4.0f LUT, %2.0f DSP per reducer "
                    "(x14 cores: %3.0f DSP)\n",
                    barrett.lut, barrett.dsp, 14 * barrett.dsp);

        // Measured software latency of both reductions.
        rns::Modulus q = p->qBase()->modulus(0);
        Xoshiro256 rng(3);
        volatile uint64_t sink = 0;
        const int iters = 2000000;
        uint64_t x = rng.uniformBelow(q.value());
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i)
            x = q.slidingWindowReduce(x * (x | 1));
        sink = x;
        auto t1 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i)
            x = q.reduce128(uint128_t(x) * (x | 1));
        sink = x;
        auto t2 = std::chrono::steady_clock::now();
        (void)sink;
        const double ns_sw =
            std::chrono::duration<double, std::nano>(t1 - t0).count() /
            iters;
        const double ns_b =
            std::chrono::duration<double, std::nano>(t2 - t1).count() /
            iters;
        std::printf("  software: sliding window %.1f ns, Barrett %.1f ns "
                    "per reduction\n",
                    ns_sw, ns_b);
        json.record("reduce_sliding_window", ns_sw, "ns", 0, 1);
        json.record("reduce_barrett", ns_b, "ns", 0, 1);
    }
    std::printf("-> in hardware the sliding window trades DSPs (the "
                "scarce multiplier resource) for LUT-based tables; in "
                "software Barrett wins, which is why the library uses it "
                "and the HW model uses the window.\n\n");

    // --- 6. twiddle storage ------------------------------------------------
    std::printf("=== Ablation 6: twiddle factors in ROM vs on the fly "
                "===\n");
    {
        HwConfig config = HwConfig::paper();
        NttEngine engine(config, n);
        const double stored = config.cyclesToUs(engine.forwardCycles());
        // Prior work [20] loses ~20% of NTT cycles to twiddle-dependency
        // bubbles when computing twiddles on the fly (Sec. V-A4).
        std::printf("  stored twiddles (this design): %.1f us/NTT, "
                    "7 BRAM36/RPAU\n",
                    stored);
        std::printf("  on-the-fly twiddles [20]:      %.1f us/NTT "
                    "(+20%% bubbles), 0 BRAM but +1 multiplier/core\n",
                    stored * 1.2);
    }
    return 0;
}
