/**
 * @file
 * Rotation-heavy linalg workload: a 16x16 diagonal-method encrypted
 * matrix-vector product (15 rotations of one ciphertext + 16 plaintext
 * diagonal multiplies) at the paper parameter set, in three lowerings:
 *
 *  - hoisted fused: compileCircuit with rotation hoisting — all 15
 *    rotations share one key-switch decompose (WordDecomp broadcast +
 *    digit NTTs paid once), intermediates coprocessor-resident;
 *  - unhoisted fused: the same fused compilation with hoisting
 *    disabled — bit-identical results, but every rotation pays its own
 *    decompose (the honest cost of skipping HEAX-style hoisting);
 *  - op-by-op: runCircuitOpByOp — one host round trip and
 *    per-instruction Arm dispatch per node, the single-op serving
 *    model.
 *
 * Exit status is the CI gate: hoisted fused modeled throughput must be
 * strictly above both the unhoisted schedule and op-by-op submission.
 */

#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "compiler/circuit.h"
#include "compiler/compiler.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "linalg/linalg.h"

using namespace heat;

int
main(int argc, char **argv)
{
    bench::JsonReporter reporter("bench_linalg", argc, argv);

    auto params = fv::FvParams::paper(/*t=*/65537);
    fv::KeyGenerator keygen(params, 42);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 43);
    fv::Decryptor decryptor(params, sk);

    const size_t d = 16;
    Xoshiro256 rng(7);
    std::vector<std::vector<uint64_t>> matrix(d);
    for (auto &row : matrix) {
        row.resize(d);
        for (auto &x : row)
            x = rng.uniformBelow(params->plainModulus());
    }
    linalg::MatVec mv(params, matrix);
    const fv::GaloisKeys gkeys =
        keygen.generateGaloisKeys(sk, mv.requiredGaloisElements());

    std::vector<uint64_t> v(d);
    for (auto &x : v)
        x = rng.uniformBelow(params->plainModulus());
    std::vector<fv::Ciphertext> inputs = {
        encryptor.encrypt(mv.encodeVector(v))};

    const size_t nodes = mv.circuit().opCount();
    compiler::CompilerOptions hoisted_opts;
    compiler::CompilerOptions unhoisted_opts;
    unhoisted_opts.hoist_rotations = false;

    const compiler::CompiledCircuit hoisted = compiler::compileCircuit(
        params, mv.circuit(), hoisted_opts);
    const compiler::CompiledCircuit unhoisted =
        compiler::compileCircuit(params, mv.circuit(), unhoisted_opts);

    hw::Coprocessor cp(params, hoisted_opts.hw, &rlk, &gkeys);
    compiler::CircuitRunStats hoisted_stats;
    const std::vector<fv::Ciphertext> out = compiler::runCompiledCircuit(
        cp, hoisted, inputs, &hoisted_stats);
    compiler::CircuitRunStats unhoisted_stats;
    const std::vector<fv::Ciphertext> out_unhoisted =
        compiler::runCompiledCircuit(cp, unhoisted, inputs,
                                     &unhoisted_stats);
    compiler::CircuitRunStats op_stats;
    const std::vector<fv::Ciphertext> out_op_by_op =
        compiler::runCircuitOpByOp(cp, params, mv.circuit(), inputs,
                                   &op_stats);

    // Correctness backstop: all three lowerings are bit-identical and
    // decrypt to the plaintext reference.
    if (!(out == out_unhoisted && out == out_op_by_op)) {
        std::printf("FAILED: lowerings disagree\n");
        return 1;
    }
    if (mv.decodeResult(decryptor.decrypt(out[0])) != mv.reference(v)) {
        std::printf("FAILED: matvec result is wrong\n");
        return 1;
    }

    const auto ops_per_sec = [&](const compiler::CircuitRunStats &s) {
        return static_cast<double>(nodes) /
               s.modeledUs(hoisted_opts.hw) * 1e6;
    };
    const double hoisted_ops = ops_per_sec(hoisted_stats);
    const double unhoisted_ops = ops_per_sec(unhoisted_stats);
    const double op_by_op_ops = ops_per_sec(op_stats);

    bench::printHeader("heat::linalg 16x16 diagonal matvec "
                       "(15 hoistable rotations, paper parameters)");
    bench::printInfo("hoisted fused modeled op/s", hoisted_ops, "op/s");
    bench::printInfo("unhoisted fused modeled op/s", unhoisted_ops,
                     "op/s");
    bench::printInfo("op-by-op modeled op/s", op_by_op_ops, "op/s");
    bench::printInfo("hoisted instructions",
                     static_cast<double>(hoisted.instructionCount()),
                     "");
    bench::printInfo("unhoisted instructions",
                     static_cast<double>(unhoisted.instructionCount()),
                     "");
    bench::printInfo("hoisted memory-file peak",
                     static_cast<double>(hoisted.peak_slots), "slots");

    const size_t n = params->degree();
    const size_t moduli = params->qBase()->size();
    reporter.record("hoisted_modeled_ops_per_sec", hoisted_ops, "op/s",
                    n, moduli);
    reporter.record("unhoisted_modeled_ops_per_sec", unhoisted_ops,
                    "op/s", n, moduli);
    reporter.record("opbyop_modeled_ops_per_sec", op_by_op_ops, "op/s",
                    n, moduli);
    reporter.record("hoisting_speedup", hoisted_ops / unhoisted_ops,
                    "x", n, moduli);
    reporter.record("fused_vs_opbyop_speedup",
                    hoisted_ops / op_by_op_ops, "x", n, moduli);

    const bool gate =
        hoisted_ops > op_by_op_ops && hoisted_ops > unhoisted_ops;
    std::printf("\nhoisted fused vs op-by-op: %.2fx, vs unhoisted "
                "fused: %.2fx (%s)\n",
                hoisted_ops / op_by_op_ops,
                hoisted_ops / unhoisted_ops,
                gate ? "hoisted wins" : "HOISTING REGRESSION");
    return gate ? 0 : 1;
}
