/**
 * @file
 * heat_cli — command-line front end for the FV library, wired through
 * the binary serialization format. Mirrors the workflow of the paper's
 * cloud service: a client generates keys and encrypts locally, ships
 * ciphertexts and evaluation keys to a server, the server computes
 * blindly, the client decrypts.
 *
 *   heat_cli keygen  --dir keys [--t 65537] [--seed 1]
 *   heat_cli encrypt --dir keys --value 1234 --out a.ct
 *   heat_cli eval    --dir keys --op add|mul|sub a.ct b.ct --out c.ct
 *   heat_cli decrypt --dir keys c.ct
 *   heat_cli info    c.ct
 *
 * All commands default to the paper's parameter set (n = 4096, 180-bit
 * q, sigma = 102) with t = 65537; pass --t to change the plaintext
 * modulus (it must match across keygen/encrypt/eval/decrypt — the
 * fingerprint in every file enforces this).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "common/panic.h"
#include "common/random.h"
#include "compiler/attribution.h"
#include "compiler/circuit.h"
#include "compiler/compiler.h"
#include "fv/decryptor.h"
#include "fv/encoder.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "fv/serialize.h"
#include "hw/coprocessor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"
#include "verify/verify.h"

using namespace heat;

namespace {

struct Args
{
    std::string command;
    std::map<std::string, std::string> options;
    std::vector<std::string> positional;
};

Args
parseArgs(int argc, char **argv)
{
    Args args;
    if (argc < 2)
        return args;
    args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--", 0) == 0) {
            std::string key = a.substr(2);
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)) {
                args.options[key] = argv[++i];
            } else {
                args.options[key] = "";
            }
        } else {
            args.positional.push_back(a);
        }
    }
    return args;
}

std::string
option(const Args &args, const std::string &key, const std::string &dflt)
{
    auto it = args.options.find(key);
    return it == args.options.end() ? dflt : it->second;
}

std::shared_ptr<const fv::FvParams>
paramsFor(const Args &args)
{
    const uint64_t t = std::stoull(option(args, "t", "65537"));
    return fv::FvParams::paper(t);
}

std::ifstream
openIn(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open ", path);
    return in;
}

std::ofstream
openOut(const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    fatalIf(!out, "cannot create ", path);
    return out;
}

int
cmdKeygen(const Args &args)
{
    auto params = paramsFor(args);
    const std::string dir = option(args, "dir", "keys");
    const uint64_t seed = std::stoull(option(args, "seed", "1"));

    fv::KeyGenerator keygen(params, seed);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);

    {
        auto out = openOut(dir + "/secret.key");
        fv::saveSecretKey(*params, sk, out);
    }
    {
        auto out = openOut(dir + "/public.key");
        fv::savePublicKey(*params, pk, out);
    }
    {
        auto out = openOut(dir + "/relin.key");
        fv::saveRelinKeys(*params, rlk, out);
    }
    std::printf("wrote %s/{secret,public,relin}.key  (n=%zu, log q=%d, "
                "t=%llu, fingerprint %016llx)\n",
                dir.c_str(), params->degree(), params->qBits(),
                static_cast<unsigned long long>(params->plainModulus()),
                static_cast<unsigned long long>(
                    fv::paramsFingerprint(*params)));
    return 0;
}

int
cmdEncrypt(const Args &args)
{
    auto params = paramsFor(args);
    const std::string dir = option(args, "dir", "keys");
    const std::string out_path = option(args, "out", "out.ct");
    fatalIf(args.options.count("value") == 0, "need --value N");
    const int64_t value = std::stoll(args.options.at("value"));

    auto pk_in = openIn(dir + "/public.key");
    fv::PublicKey pk = fv::loadPublicKey(params, pk_in);

    fv::Encryptor encryptor(
        params, std::move(pk),
        std::stoull(option(args, "seed", "99")));
    fv::IntegerEncoder encoder(params, 2);
    fv::Ciphertext ct = encryptor.encrypt(encoder.encode(value));

    auto out = openOut(out_path);
    fv::saveCiphertext(*params, ct, out);
    std::printf("encrypted %lld -> %s (%zu bytes)\n",
                static_cast<long long>(value), out_path.c_str(),
                fv::ciphertextByteSize(*params, ct));
    return 0;
}

int
cmdEval(const Args &args)
{
    auto params = paramsFor(args);
    const std::string dir = option(args, "dir", "keys");
    const std::string op = option(args, "op", "add");
    const std::string out_path = option(args, "out", "out.ct");
    fatalIf(args.positional.size() != 2,
            "eval needs two ciphertext files");

    auto a_in = openIn(args.positional[0]);
    auto b_in = openIn(args.positional[1]);
    fv::Ciphertext a = fv::loadCiphertext(params, a_in);
    fv::Ciphertext b = fv::loadCiphertext(params, b_in);

    fv::Evaluator evaluator(params);
    fv::Ciphertext c;
    if (op == "add") {
        c = evaluator.add(a, b);
    } else if (op == "sub") {
        c = evaluator.sub(a, b);
    } else if (op == "mul") {
        auto rlk_in = openIn(dir + "/relin.key");
        fv::RelinKeys rlk = fv::loadRelinKeys(params, rlk_in);
        c = evaluator.multiply(a, b, rlk);
    } else {
        fatal("unknown --op '", op, "' (add|sub|mul)");
    }

    auto out = openOut(out_path);
    fv::saveCiphertext(*params, c, out);
    std::printf("%s(%s, %s) -> %s\n", op.c_str(),
                args.positional[0].c_str(), args.positional[1].c_str(),
                out_path.c_str());
    return 0;
}

int
cmdDecrypt(const Args &args)
{
    auto params = paramsFor(args);
    const std::string dir = option(args, "dir", "keys");
    fatalIf(args.positional.size() != 1,
            "decrypt needs one ciphertext file");

    auto sk_in = openIn(dir + "/secret.key");
    fv::SecretKey sk = fv::loadSecretKey(params, sk_in);
    auto ct_in = openIn(args.positional[0]);
    fv::Ciphertext ct = fv::loadCiphertext(params, ct_in);

    fv::Decryptor decryptor(params, std::move(sk));
    fv::IntegerEncoder encoder(params, 2);
    const double budget = decryptor.invariantNoiseBudget(ct);
    fv::Plaintext plain = decryptor.decrypt(ct);
    std::printf("value: %s\nnoise budget: %.0f bits%s\n",
                encoder.decode(plain).toString().c_str(), budget,
                budget <= 0 ? "  (EXHAUSTED - result unreliable)" : "");
    return 0;
}

int
cmdInfo(const Args &args)
{
    fatalIf(args.positional.size() != 1, "info needs one file");
    auto params = paramsFor(args);
    auto in = openIn(args.positional[0]);
    fv::Ciphertext ct = fv::loadCiphertext(params, in);
    std::printf("%s: %zu-element ciphertext, %zu residues x %zu "
                "coefficients, %zu bytes\n",
                args.positional[0].c_str(), ct.size(),
                ct[0].residueCount(), ct[0].degree(),
                fv::ciphertextByteSize(*params, ct));
    return 0;
}

/**
 * Encrypted dot product demo through the circuit compiler and the
 * serving layer: <a, b> of two --len element integer vectors, each
 * element its own ciphertext, computed as one fused multi-op circuit
 * (len Mult+Relin, len-1 Add) with coprocessor-resident intermediates.
 */
int
cmdCircuit(const Args &args)
{
    auto params = paramsFor(args);
    const size_t len = std::stoull(option(args, "len", "4"));
    const size_t workers = std::stoull(option(args, "workers", "2"));
    const uint64_t seed = std::stoull(option(args, "seed", "1"));
    fatalIf(len == 0, "need --len >= 1");
    const uint64_t t = params->plainModulus();

    fv::KeyGenerator keygen(params, seed);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, seed ^ 0x5EED);
    fv::Decryptor decryptor(params, fv::SecretKey{sk.s_ntt});

    // Two small integer vectors, one ciphertext per element.
    std::vector<uint64_t> a(len), b(len);
    uint64_t expected = 0;
    std::vector<fv::Ciphertext> inputs;
    for (size_t i = 0; i < len; ++i) {
        a[i] = (3 * i + 2 + seed) % 50;
        b[i] = (7 * i + 5 + seed) % 50;
        expected = (expected + a[i] * b[i]) % t;
    }
    for (size_t i = 0; i < len; ++i)
        inputs.push_back(encryptor.encrypt(
            fv::Plaintext{std::vector<uint64_t>{a[i]}}));
    for (size_t i = 0; i < len; ++i)
        inputs.push_back(encryptor.encrypt(
            fv::Plaintext{std::vector<uint64_t>{b[i]}}));

    // dot = sum_i a_i * b_i as one expression DAG.
    compiler::CircuitBuilder builder;
    std::vector<compiler::ValueId> xa(len), xb(len);
    for (size_t i = 0; i < len; ++i)
        xa[i] = builder.input();
    for (size_t i = 0; i < len; ++i)
        xb[i] = builder.input();
    compiler::ValueId acc = builder.mult(xa[0], xb[0]);
    for (size_t i = 1; i < len; ++i)
        acc = builder.add(acc, builder.mult(xa[i], xb[i]));
    builder.output(acc);
    const compiler::Circuit circuit = builder.build();

    service::ServiceConfig cfg;
    cfg.workers = workers;
    compiler::CompilerOptions options;
    options.hw = cfg.hw;
    auto compiled = std::make_shared<const compiler::CompiledCircuit>(
        compiler::compileCircuit(params, circuit, options));
    std::printf("circuit: %zu ops (%zu Mult+Relin, %zu Add) -> %zu "
                "instructions in %zu fused segment%s, peak %zu/%zu "
                "memory-file slots, %zu spilled polys\n",
                circuit.opCount(), len, len - 1,
                compiled->instructionCount(), compiled->segments.size(),
                compiled->segments.size() == 1 ? "" : "s",
                compiled->peak_slots,
                options.hw.n_rpaus * options.hw.slots_per_rpau,
                compiled->spilled_polys);

    // Fused execution through the serving layer.
    service::ExecutionService svc(params, rlk, cfg);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<fv::Ciphertext> outs =
        svc.submitCompiled(compiled, inputs).get();
    const auto t1 = std::chrono::steady_clock::now();
    svc.drain();
    const double wall_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    const double modeled_us = svc.stats().makespan_us;

    // Per-op round-trip model for comparison.
    hw::Coprocessor cp(params, cfg.hw, &rlk);
    compiler::CircuitRunStats unfused;
    compiler::runCircuitOpByOp(cp, params, circuit, inputs, &unfused);
    const double unfused_us = unfused.modeledUs(cfg.hw);

    const fv::Plaintext plain = decryptor.decrypt(outs[0]);
    const uint64_t got = plain.coeffs.empty() ? 0 : plain.coeffs[0];
    const double budget = decryptor.invariantNoiseBudget(outs[0]);
    std::printf("<a, b> = %llu (expected %llu mod t)%s, noise budget "
                "%.0f bits\n",
                static_cast<unsigned long long>(got),
                static_cast<unsigned long long>(expected),
                got == expected ? "" : "  MISMATCH", budget);
    std::printf("modeled accelerator time: fused %.1f us vs per-op "
                "%.1f us (%.2fx); simulation wall time %.1f us\n",
                modeled_us, unfused_us, unfused_us / modeled_us,
                wall_us);
    return got == expected ? 0 : 1;
}

/**
 * Observability demo and acceptance gate: run a workload through the
 * serving layer with the span tracer installed, cross-check the three
 * independent cycle accountings — compile-time attribution
 * (compiler::attributeCompiledCircuit), a reference fused run on a
 * standalone coprocessor, and the service's per-unit profile — for
 * EXACT agreement (integer equality, no tolerance), then write a
 * Chrome trace_event JSON (Perfetto-loadable) plus an optional
 * Prometheus metrics dump. Any accounting mismatch exits 1.
 *
 * Workloads:
 *   pir    8-shard PIR circuit on the small serving ring (n = 256,
 *          3 q-primes): shards pinned coprocessor-resident, requests
 *          run cold-then-warm through submitCompiledResident.
 *   mult4  depth-4 multiply chain at the paper parameter set — the
 *          per-unit table EXPERIMENTS.md quotes.
 */
int
cmdTrace(const Args &args)
{
    const std::string workload = option(args, "workload", "pir");
    const std::string out_path = option(args, "out", "trace.json");
    const std::string metrics_path = option(args, "metrics", "");
    const size_t workers = std::stoull(option(args, "workers", "2"));
    const size_t requests = std::stoull(option(args, "requests", "4"));
    const uint64_t seed = std::stoull(option(args, "seed", "1"));
    fatalIf(workload != "pir" && workload != "mult4",
            "unknown --workload '", workload, "' (pir|mult4)");
    fatalIf(requests == 0, "need --requests >= 1");

    // Parameter set: PIR uses the small serving ring (fast functional
    // simulation; the timing model is the paper's either way), mult4
    // the paper parameters so its table is quotable.
    std::shared_ptr<const fv::FvParams> params;
    if (workload == "pir") {
        fv::FvConfig fvc;
        fvc.degree = 256;
        fvc.plain_modulus = 257;
        fvc.sigma = 3.2;
        fvc.q_prime_count = 3;
        params = fv::FvParams::create(fvc);
    } else {
        params = paramsFor(args);
    }
    const uint64_t t = params->plainModulus();

    fv::KeyGenerator keygen(params, seed);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, seed ^ 0x7ACE);
    Xoshiro256 rng(seed * 977 + 13);

    auto randomPlain = [&] {
        fv::Plaintext p;
        p.coeffs.resize(params->degree());
        for (auto &c : p.coeffs)
            c = rng.uniformBelow(t);
        return p;
    };

    service::ServiceConfig cfg;
    cfg.workers = workers;
    compiler::CompilerOptions copts;
    copts.hw = cfg.hw;

    constexpr size_t kShards = 8;
    compiler::CircuitBuilder b;
    std::vector<fv::Ciphertext> resident_cts; // pir: pinned shards
    std::vector<fv::Ciphertext> request_inputs;
    if (workload == "pir") {
        std::vector<compiler::ValueId> db;
        for (size_t k = 0; k < kShards; ++k)
            db.push_back(b.input());
        const compiler::ValueId query = b.input();
        compiler::ValueId acc = compiler::kNoValue;
        for (size_t k = 0; k < kShards; ++k) {
            const compiler::ValueId sel =
                b.multPlain(db[k], randomPlain());
            acc = (k == 0) ? sel : b.add(acc, sel);
        }
        b.output(b.add(acc, query));
        for (uint32_t k = 0; k < kShards; ++k)
            copts.resident_inputs.push_back(k);
        for (size_t k = 0; k < kShards; ++k)
            resident_cts.push_back(encryptor.encrypt(randomPlain()));
        request_inputs.push_back(encryptor.encrypt(randomPlain()));
    } else {
        const compiler::ValueId xa = b.input();
        const compiler::ValueId xc = b.input();
        compiler::ValueId acc = b.mult(xa, xc);
        for (int d = 1; d < 4; ++d)
            acc = b.mult(acc, acc);
        b.output(acc);
        request_inputs.push_back(encryptor.encrypt(
            fv::Plaintext{std::vector<uint64_t>{3}}));
        request_inputs.push_back(encryptor.encrypt(
            fv::Plaintext{std::vector<uint64_t>{5}}));
    }
    const compiler::Circuit circuit = b.build();
    auto compiled = std::make_shared<const compiler::CompiledCircuit>(
        compiler::compileCircuit(params, circuit, copts));

    bool ok = true;
    auto check = [&ok](bool cond, const char *what) {
        if (!cond) {
            std::fprintf(stderr, "trace: FAIL: %s\n", what);
            ok = false;
        }
    };
    auto unitSum = [](const std::array<hw::Cycle, hw::kUnitCount> &u) {
        hw::Cycle s = 0;
        for (hw::Cycle c : u)
            s += c;
        return s;
    };

    // Accounting 1 vs 2: compile-time attribution against one
    // reference fused run on a standalone coprocessor. Done before the
    // tracer is installed so the trace holds serving spans only.
    const compiler::CircuitAttribution attr =
        compiler::attributeCompiledCircuit(*compiled);
    std::vector<fv::Ciphertext> all_inputs = resident_cts;
    for (const auto &ct : request_inputs)
        all_inputs.push_back(ct);
    hw::Coprocessor ref_cp(params, cfg.hw, &rlk);
    compiler::CircuitRunStats ref;
    compiler::runCompiledCircuit(ref_cp, *compiled, all_inputs, &ref);
    check(unitSum(ref.unit_cycles) == ref.fpga_cycles,
          "reference run: unit cycles do not sum to fpga_cycles");
    check(unitSum(attr.unit_cycles) == attr.total_cycles,
          "attribution: unit cycles do not sum to total_cycles");
    check(attr.total_cycles == ref.fpga_cycles,
          "attribution total_cycles != reference run fpga_cycles");

    // Accounting 3: the serving layer, with the tracer installed
    // before the workers spawn.
    obs::Tracer tracer;
    obs::Tracer *const prev = obs::setActiveTracer(&tracer);
    service::ServiceSnapshot snap;
    {
        service::ExecutionService svc(params, rlk, cfg);
        if (workload == "pir") {
            std::vector<service::PinnedHandle> handles;
            for (const auto &ct : resident_cts)
                handles.push_back(
                    svc.pinInput(service::kDefaultTenant, ct));
            for (size_t r = 0; r < requests; ++r)
                svc.submitCompiledResident(service::kDefaultTenant,
                                           compiled, handles,
                                           request_inputs)
                    .get();
        } else {
            for (size_t r = 0; r < requests; ++r)
                svc.submitCompiled(compiled, request_inputs).get();
        }
        svc.drain();
        snap = svc.snapshot();
        if (!metrics_path.empty()) {
            auto mout = openOut(metrics_path);
            mout << svc.metrics().renderText();
        }
        svc.shutdown();
    }
    obs::setActiveTracer(prev);

    check(unitSum(snap.stats.unit_cycles) == snap.stats.fpga_cycles,
          "service: unit cycles do not sum to fpga_cycles");
    check(snap.stats.fpga_cycles ==
              ref.fpga_cycles * static_cast<hw::Cycle>(requests),
          "service fpga_cycles != requests * reference fpga_cycles");
    check(snap.stats.ops_failed == 0 && snap.stats.ops_rejected == 0,
          "service reported failed or rejected jobs");

    // The Chrome trace, with the accounting summary in otherData so
    // the CI checker (and a human in Perfetto's info panel) can read
    // the attribution without re-running.
    std::vector<std::pair<std::string, std::string>> other;
    other.emplace_back("workload", workload);
    other.emplace_back("requests", std::to_string(requests));
    other.emplace_back("total_cycles",
                       std::to_string(snap.stats.fpga_cycles));
    for (size_t u = 0; u < hw::kUnitCount; ++u)
        other.emplace_back(
            std::string("unit_cycles_") +
                hw::unitName(static_cast<hw::Unit>(u)),
            std::to_string(snap.stats.unit_cycles[u]));
    {
        auto out = openOut(out_path);
        tracer.writeChromeTrace(out, other);
    }

    std::printf("trace: %s, %zu request%s, %zu worker%s -> %s (%zu "
                "spans%s)%s\n",
                workload.c_str(), requests, requests == 1 ? "" : "s",
                workers, workers == 1 ? "" : "s", out_path.c_str(),
                tracer.spans().size(),
                tracer.droppedSpans() > 0 ? ", some dropped" : "",
                metrics_path.empty()
                    ? ""
                    : (", metrics -> " + metrics_path).c_str());
    std::printf("%-12s %18s %18s %7s\n", "unit", "cycles/request",
                "service cycles", "share");
    for (size_t u = 0; u < hw::kUnitCount; ++u) {
        const hw::Cycle svc_cycles = snap.stats.unit_cycles[u];
        std::printf("%-12s %18llu %18llu %6.2f%%\n",
                    hw::unitName(static_cast<hw::Unit>(u)),
                    static_cast<unsigned long long>(attr.unit_cycles[u]),
                    static_cast<unsigned long long>(svc_cycles),
                    snap.stats.fpga_cycles > 0
                        ? 100.0 * static_cast<double>(svc_cycles) /
                              static_cast<double>(snap.stats.fpga_cycles)
                        : 0.0);
    }
    std::printf("%-12s %18llu %18llu %6.2f%%\n", "total",
                static_cast<unsigned long long>(attr.total_cycles),
                static_cast<unsigned long long>(snap.stats.fpga_cycles),
                100.0);
    std::printf("attribution check: %s (attribution == reference run "
                "== service, per-unit sums exact)\n",
                ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}

/**
 * Static verification front end: compile the named workload's circuit
 * and run the heat::verify abstract interpreter over the artifact,
 * printing the structured diagnostic table. Verification is pure
 * static analysis — no keys, no ciphertexts, no simulated cycles — so
 * this is the fastest way to vet a circuit shape before serving it.
 *
 * Workloads (--workload, default "all"):
 *   pir    8-shard resident-prefix PIR selection on the small serving
 *          ring — exercises pinned records and plaintext constants.
 *   mult4  depth-4 multiply chain at the paper parameter set —
 *          exercises Lift/Scale tensor lowering and relinearization.
 *   dot    --len element encrypted dot product — exercises slot reuse
 *          across a wide DAG (spills when --len is large).
 */
int
cmdVerify(const Args &args)
{
    const std::string workload = option(args, "workload", "all");
    const size_t len = std::stoull(option(args, "len", "4"));
    const uint64_t seed = std::stoull(option(args, "seed", "1"));
    fatalIf(workload != "all" && workload != "pir" &&
                workload != "mult4" && workload != "dot",
            "unknown --workload '", workload, "' (pir|mult4|dot|all)");
    fatalIf(len == 0, "need --len >= 1");
    Xoshiro256 rng(seed * 977 + 13);

    struct Case
    {
        std::string name;
        std::shared_ptr<const fv::FvParams> params;
        compiler::Circuit circuit;
        compiler::CompilerOptions options;
    };
    std::vector<Case> cases;

    if (workload == "all" || workload == "pir") {
        fv::FvConfig fvc;
        fvc.degree = 256;
        fvc.plain_modulus = 257;
        fvc.sigma = 3.2;
        fvc.q_prime_count = 3;
        auto params = fv::FvParams::create(fvc);
        auto randomPlain = [&] {
            fv::Plaintext p;
            p.coeffs.resize(params->degree());
            for (auto &c : p.coeffs)
                c = rng.uniformBelow(params->plainModulus());
            return p;
        };
        constexpr size_t kShards = 8;
        compiler::CircuitBuilder b;
        std::vector<compiler::ValueId> db;
        for (size_t k = 0; k < kShards; ++k)
            db.push_back(b.input());
        const compiler::ValueId query = b.input();
        compiler::ValueId acc = compiler::kNoValue;
        for (size_t k = 0; k < kShards; ++k) {
            const compiler::ValueId sel =
                b.multPlain(db[k], randomPlain());
            acc = (k == 0) ? sel : b.add(acc, sel);
        }
        b.output(b.add(acc, query));
        Case c{"pir", params, b.build(), {}};
        for (uint32_t k = 0; k < kShards; ++k)
            c.options.resident_inputs.push_back(k);
        cases.push_back(std::move(c));
    }
    if (workload == "all" || workload == "mult4") {
        compiler::CircuitBuilder b;
        const compiler::ValueId xa = b.input();
        const compiler::ValueId xc = b.input();
        compiler::ValueId acc = b.mult(xa, xc);
        for (int d = 1; d < 4; ++d)
            acc = b.mult(acc, acc);
        b.output(acc);
        cases.push_back(Case{"mult4", paramsFor(args), b.build(), {}});
    }
    if (workload == "all" || workload == "dot") {
        compiler::CircuitBuilder b;
        std::vector<compiler::ValueId> xa(len), xb(len);
        for (size_t i = 0; i < len; ++i)
            xa[i] = b.input();
        for (size_t i = 0; i < len; ++i)
            xb[i] = b.input();
        compiler::ValueId acc = b.mult(xa[0], xb[0]);
        for (size_t i = 1; i < len; ++i)
            acc = b.add(acc, b.mult(xa[i], xb[i]));
        b.output(acc);
        cases.push_back(Case{"dot", paramsFor(args), b.build(), {}});
    }

    bool all_ok = true;
    for (Case &c : cases) {
        // The compile-time hook would already reject; run the pass
        // explicitly so the table below is this command's output.
        c.options.verify = compiler::VerifyCheck::kOff;
        const compiler::CompiledCircuit compiled =
            compiler::compileCircuit(c.params, c.circuit, c.options);
        const verify::VerifyResult result =
            verify::verifyCompiledCircuit(compiled);
        const std::string verdict =
            result.ok() ? "clean"
                        : std::to_string(result.diagnostics.size()) +
                              " violation(s)";
        std::printf("%-6s %5zu instructions %4zu records %2zu segments "
                    "-> %s\n",
                    c.name.c_str(), result.instructions, result.records,
                    compiled.segments.size(), verdict.c_str());
        for (const verify::Diagnostic &d : result.diagnostics)
            std::printf("    %s\n", d.str().c_str());
        all_ok = all_ok && result.ok();
    }
    std::printf("verify: %s\n", all_ok ? "all circuits clean"
                                       : "violations found");
    return all_ok ? 0 : 1;
}

void
usage()
{
    std::printf(
        "heat_cli — FV homomorphic encryption tool (HEAT reproduction)\n"
        "  heat_cli keygen  --dir keys [--t 65537] [--seed 1]\n"
        "  heat_cli encrypt --dir keys --value 1234 --out a.ct\n"
        "  heat_cli eval    --dir keys --op add|sub|mul a.ct b.ct "
        "--out c.ct\n"
        "  heat_cli decrypt --dir keys c.ct\n"
        "  heat_cli info    c.ct\n"
        "  heat_cli circuit [--len 4] [--workers 2] [--t 65537] "
        "[--seed 1]\n"
        "                   encrypted dot-product demo through the "
        "circuit compiler\n"
        "  heat_cli trace   [--workload pir|mult4] [--out trace.json]\n"
        "                   [--metrics metrics.txt] [--workers 2] "
        "[--requests 4] [--seed 1]\n"
        "                   serve a workload with the span tracer on, "
        "cross-check cycle\n"
        "                   attribution exactly, write a Perfetto-"
        "loadable Chrome trace\n"
        "  heat_cli verify  [--workload pir|mult4|dot|all] [--len 4] "
        "[--t 65537] [--seed 1]\n"
        "                   compile the workload's circuits and run the "
        "static program\n"
        "                   verifier, printing the diagnostic table "
        "(exit 1 on violations)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parseArgs(argc, argv);
    try {
        if (args.command == "keygen")
            return cmdKeygen(args);
        if (args.command == "encrypt")
            return cmdEncrypt(args);
        if (args.command == "eval")
            return cmdEval(args);
        if (args.command == "decrypt")
            return cmdDecrypt(args);
        if (args.command == "info")
            return cmdInfo(args);
        if (args.command == "circuit")
            return cmdCircuit(args);
        if (args.command == "trace")
            return cmdTrace(args);
        if (args.command == "verify")
            return cmdVerify(args);
        usage();
        return args.command.empty() ? 1 : 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
