/**
 * @file
 * Mutation-testing suite for the static program verifier
 * (verify/verify.h). Every unmutated compiled circuit must verify
 * clean (zero false positives — the whole repo's compile paths run
 * under verify=kReject via verify_support.h), and each systematic
 * corruption class applied to a known-good CompiledCircuit must be
 * caught with a Diagnostic of the right invariant family: the verifier
 * has to bite, not just run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/random.h"
#include "compiler/circuit.h"
#include "compiler/compiler.h"
#include "fv/encryptor.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/isa.h"
#include "service/service.h"
#include "verify/verify.h"
#include "verify_support.h"

namespace heat {
namespace {

using compiler::CompiledCircuit;
using compiler::CompilerOptions;
using compiler::Transfer;
using hw::Instruction;
using hw::Opcode;
using hw::SlotAction;
using verify::Diagnostic;
using verify::Invariant;
using verify::VerifyResult;

std::shared_ptr<const fv::FvParams>
smallParams()
{
    fv::FvConfig cfg;
    cfg.degree = 256;
    cfg.plain_modulus = 257;
    cfg.sigma = 3.2;
    cfg.q_prime_count = 3;
    return fv::FvParams::create(cfg);
}

hw::HwConfig
smallHw(const fv::FvParams &params)
{
    hw::HwConfig config = hw::HwConfig::paper();
    config.n_rpaus = (params.fullBase()->size() + 1) / 2;
    return config;
}

fv::Plaintext
randomPlain(const fv::FvParams &params, uint64_t seed)
{
    Xoshiro256 rng(seed);
    fv::Plaintext p;
    p.coeffs.resize(params.degree());
    for (auto &c : p.coeffs)
        c = rng.uniformBelow(params.plainModulus());
    return p;
}

/** Depth-2 mult tree: relin key loads, Lift/Scale tensor lowering. */
CompiledCircuit
multCircuit()
{
    auto params = smallParams();
    compiler::CircuitBuilder b;
    const compiler::ValueId x = b.input();
    const compiler::ValueId y = b.input();
    b.output(b.mult(b.mult(x, y), y));
    CompilerOptions options;
    options.hw = smallHw(*params);
    return compiler::compileCircuit(params, b.build(), options);
}

/** Rotation pair: Galois key loads, hoisted automorphism digits. */
CompiledCircuit
rotateCircuit()
{
    auto params = smallParams();
    compiler::CircuitBuilder b;
    const compiler::ValueId x = b.input();
    b.output(b.add(b.rotate(x, 1), b.rotate(x, 2)));
    CompilerOptions options;
    options.hw = smallHw(*params);
    return compiler::compileCircuit(params, b.build(), options);
}

/** Wide additive fan on a shrunken memory file: every leaf stays live
 *  across the build-up, forcing spills, reloads, and multiple
 *  segments. */
CompiledCircuit
spillCircuit()
{
    auto params = smallParams();
    compiler::CircuitBuilder b;
    const compiler::ValueId x = b.input();
    const compiler::ValueId y = b.input();
    compiler::ValueId rolling = b.add(x, y);
    std::vector<compiler::ValueId> leaves;
    for (int i = 0; i < 4; ++i) {
        rolling = b.add(rolling, i % 2 == 0 ? x : y);
        leaves.push_back(rolling);
    }
    compiler::ValueId acc = b.negate(leaves.back());
    for (int i = 3; i >= 0; --i)
        acc = b.add(acc, leaves[static_cast<size_t>(i)]);
    b.output(acc);
    CompilerOptions options;
    options.hw = smallHw(*params);
    options.hw.slots_per_rpau = 6;
    return compiler::compileCircuit(params, b.build(), options);
}

/** PIR selection with a pinned resident shard prefix and plaintext
 *  constants. */
CompiledCircuit
residentCircuit()
{
    auto params = smallParams();
    compiler::CircuitBuilder b;
    constexpr size_t kShards = 4;
    std::vector<compiler::ValueId> db(kShards);
    for (auto &v : db)
        v = b.input();
    const compiler::ValueId query = b.input();
    compiler::ValueId acc = compiler::kNoValue;
    for (size_t k = 0; k < kShards; ++k) {
        const compiler::ValueId sel =
            b.multPlain(db[k], randomPlain(*params, 31 + k));
        acc = (k == 0) ? sel : b.add(acc, sel);
    }
    b.output(b.add(acc, query));
    CompilerOptions options;
    options.hw = smallHw(*params);
    for (uint32_t k = 0; k < kShards; ++k)
        options.resident_inputs.push_back(k);
    return compiler::compileCircuit(params, b.build(), options);
}

/** @return a mutable pointer to the first instruction matching @p pred
 *  across all segments, or nullptr. */
template <typename Pred>
Instruction *
findInstr(CompiledCircuit &compiled, Pred pred)
{
    for (compiler::Segment &seg : compiled.segments)
        for (Instruction &in : seg.program.instrs)
            if (pred(in))
                return &in;
    return nullptr;
}

/** Assert the verifier flags @p compiled with at least one diagnostic
 *  of @p invariant, and return that diagnostic. */
Diagnostic
expectViolation(const CompiledCircuit &compiled, Invariant invariant)
{
    const VerifyResult result = verify::verifyCompiledCircuit(compiled);
    EXPECT_FALSE(result.ok())
        << "mutation expected a " << verify::invariantName(invariant)
        << " violation, but the program verified clean";
    for (const Diagnostic &d : result.diagnostics)
        if (d.invariant == invariant)
            return d;
    ADD_FAILURE() << "no " << verify::invariantName(invariant)
                  << " diagnostic; got:\n"
                  << result.report();
    return {};
}

// --- zero false positives ------------------------------------------------

TEST(Verify, UnmutatedCircuitsVerifyClean)
{
    heat::testing::expectVerifiesClean(multCircuit(), "mult tree");
    heat::testing::expectVerifiesClean(rotateCircuit(), "rotations");
    heat::testing::expectVerifiesClean(spillCircuit(), "spilling dot");
    heat::testing::expectVerifiesClean(residentCircuit(),
                                       "resident PIR");
}

TEST(Verify, ReportNamesCleanPrograms)
{
    const VerifyResult result =
        verify::verifyCompiledCircuit(multCircuit());
    EXPECT_TRUE(result.ok());
    EXPECT_GT(result.instructions, 0u);
    EXPECT_GT(result.records, 0u);
    EXPECT_NE(result.report().find("verified clean"),
              std::string::npos);
}

// --- mutation classes ----------------------------------------------------

// 1. Drop an input upload: the operand is consumed but never arrives.
TEST(Verify, CatchesDroppedUpload)
{
    CompiledCircuit c = multCircuit();
    auto &uploads = c.segments.front().uploads;
    const auto it = std::find_if(
        uploads.begin(), uploads.end(), [](const Transfer &t) {
            return t.source == Transfer::Source::kValue;
        });
    ASSERT_NE(it, uploads.end());
    uploads.erase(it);
    expectViolation(c, Invariant::kDefBeforeUse);
}

// 2. Forward transform of data still in coefficient order (an NTT
//    where the schedule needs an INTT).
TEST(Verify, CatchesTransformDomainSwap)
{
    CompiledCircuit c = multCircuit();
    Instruction *in = findInstr(c, [](const Instruction &i) {
        return i.op == Opcode::kIntt;
    });
    ASSERT_NE(in, nullptr);
    in->op = Opcode::kNtt; // input is NTT-domain, kNtt wants paired
    const Diagnostic d = expectViolation(c, Invariant::kLayout);
    EXPECT_TRUE(d.has_op);
    EXPECT_EQ(d.op, Opcode::kNtt);
    EXPECT_NE(d.instr, verify::kNoIndex);
}

// 3. The inverse swap: an INTT pointed at paired (pre-NTT) data.
TEST(Verify, CatchesInverseTransformDomainSwap)
{
    CompiledCircuit c = multCircuit();
    Instruction *in = findInstr(c, [](const Instruction &i) {
        return i.op == Opcode::kNtt;
    });
    ASSERT_NE(in, nullptr);
    in->op = Opcode::kIntt;
    expectViolation(c, Invariant::kLayout);
}

// 4. Rearrange of NTT-domain data (layout typestate violation on the
//    permutation path).
TEST(Verify, CatchesRearrangeOfNttDomainData)
{
    CompiledCircuit c = multCircuit();
    // The tensor CoeffMuls read NTT-domain records; retargeting a
    //  later rearrange at one of them must trip the typestate.
    const Instruction *mul = findInstr(c, [](const Instruction &i) {
        return i.op == Opcode::kCoeffMul;
    });
    ASSERT_NE(mul, nullptr);
    const hw::PolyId ntt_record = mul->src0;
    Instruction *re = findInstr(c, [&](const Instruction &i) {
        return i.op == Opcode::kRearrange && i.dst != ntt_record;
    });
    ASSERT_NE(re, nullptr);
    re->dst = ntt_record;
    expectViolation(c, Invariant::kLayout);
}

// 5. Shrink a WordDecomp digit-broadcast lane count (kq - l digit
//    shape through the Scale writeback).
TEST(Verify, CatchesShrunkDigitBroadcast)
{
    CompiledCircuit c = multCircuit();
    Instruction *in = findInstr(c, [](const Instruction &i) {
        return i.op == Opcode::kScale && !i.extra.empty();
    });
    ASSERT_NE(in, nullptr);
    in->extra.pop_back();
    const Diagnostic d = expectViolation(c, Invariant::kShape);
    EXPECT_TRUE(d.has_op);
    EXPECT_EQ(d.op, Opcode::kScale);
}

// 6. Feed a never-written record into a multiplicative coeff op (the
//    zero slot is additive-only by contract).
TEST(Verify, CatchesZeroRecordInMultiplicativeOp)
{
    CompiledCircuit c = multCircuit();
    // The shared zero record is read by a CoeffSub/CoeffAdd whose
    // source batch-0 residues were never written.
    const Instruction *add = findInstr(c, [](const Instruction &i) {
        return (i.op == Opcode::kCoeffAdd || i.op == Opcode::kCoeffSub) &&
               i.src1 != hw::kNoPoly;
    });
    ASSERT_NE(add, nullptr);
    const hw::PolyId zero_like = add->src1;
    Instruction *mul = findInstr(c, [&](const Instruction &i) {
        return i.op == Opcode::kCoeffMul && i.src1 != zero_like;
    });
    ASSERT_NE(mul, nullptr);
    mul->src1 = zero_like;
    const VerifyResult result = verify::verifyCompiledCircuit(c);
    EXPECT_FALSE(result.ok()) << "retargeted CoeffMul must not verify";
}

// 7. Oversubscribe the memory file: extra allocations beyond BRAM
//    capacity.
TEST(Verify, CatchesSlotOversubscription)
{
    CompiledCircuit c = multCircuit();
    hw::PolyId id = 0;
    for (const SlotAction &a : c.slot_actions)
        if (a.kind == SlotAction::Kind::kAllocate)
            id = std::max(id, a.id);
    for (uint32_t k = 1; k <= 16; ++k) {
        SlotAction extra;
        extra.kind = SlotAction::Kind::kAllocate;
        extra.id = id + k;
        extra.base = hw::BaseTag::kFull;
        c.slot_actions.push_back(extra);
    }
    expectViolation(c, Invariant::kSlotCapacity);
}

// 8. Tampered peak accounting: the recorded high-water mark disagrees
//    with the log.
TEST(Verify, CatchesPeakSlotMismatch)
{
    CompiledCircuit c = multCircuit();
    c.peak_slots += 1;
    expectViolation(c, Invariant::kSlotCapacity);
}

// 9. Double release in the slot-action log.
TEST(Verify, CatchesDoubleRelease)
{
    CompiledCircuit c = multCircuit();
    const auto it = std::find_if(
        c.slot_actions.begin(), c.slot_actions.end(),
        [](const SlotAction &a) {
            return a.kind == SlotAction::Kind::kRelease;
        });
    ASSERT_NE(it, c.slot_actions.end());
    c.slot_actions.push_back(*it);
    expectViolation(c, Invariant::kSlotLog);
}

// 10. Out-of-sequence allocation id (a fresh memory-file replay would
//     assign a different id and the program would address the wrong
//     slots).
TEST(Verify, CatchesOutOfSequenceAllocation)
{
    CompiledCircuit c = multCircuit();
    SlotAction rogue;
    rogue.kind = SlotAction::Kind::kAllocate;
    rogue.id = 999;
    c.slot_actions.push_back(rogue);
    expectViolation(c, Invariant::kSlotLog);
}

// 11. Use after consume: a released record's slots are reclaimed while
//     an appended instruction still reads it.
TEST(Verify, CatchesUseAfterConsume)
{
    CompiledCircuit c = spillCircuit();
    ASSERT_GT(c.segments.size(), 1u);
    const auto it = std::find_if(
        c.slot_actions.begin(), c.slot_actions.end(),
        [](const SlotAction &a) {
            return a.kind == SlotAction::Kind::kRelease;
        });
    ASSERT_NE(it, c.slot_actions.end());
    const hw::PolyId released = it->id;
    // Keep reading the released record at the very end of the program:
    // every allocation that reused its slots in between now aliases.
    Instruction late;
    late.op = Opcode::kCoeffAdd;
    late.dst = released;
    late.src0 = released;
    late.src1 = released;
    c.segments.back().program.instrs.push_back(late);
    c.instr_nodes.back().push_back(compiler::kNoValue);
    const Diagnostic d =
        expectViolation(c, Invariant::kUseAfterConsume);
    EXPECT_NE(d.action, verify::kNoIndex);
}

// 12. Undeclared Galois element on an automorphism.
TEST(Verify, CatchesUndeclaredGaloisElement)
{
    CompiledCircuit c = rotateCircuit();
    ASSERT_FALSE(c.galois_elements.empty());
    Instruction *in = findInstr(c, [](const Instruction &i) {
        return i.op == Opcode::kAutomorph && i.aux != 1;
    });
    ASSERT_NE(in, nullptr);
    uint32_t rogue = 3;
    while (std::binary_search(c.galois_elements.begin(),
                              c.galois_elements.end(), rogue))
        rogue += 2;
    in->aux = rogue;
    const Diagnostic d = expectViolation(c, Invariant::kKey);
    EXPECT_TRUE(d.has_op);
    EXPECT_EQ(d.op, Opcode::kAutomorph);
}

// 13. Key load for a key set the circuit never registered: a relin
//     load in a circuit that never relinearizes.
TEST(Verify, CatchesRelinKeyLoadWithoutRelin)
{
    CompiledCircuit c = rotateCircuit();
    Instruction *in = findInstr(c, [](const Instruction &i) {
        return i.op == Opcode::kKeyLoad;
    });
    ASSERT_NE(in, nullptr);
    in->aux = hw::keyLoadAux(0, hw::keyLoadDigit(in->aux));
    expectViolation(c, Invariant::kKey);
}

// 14. Key digit index beyond the parameter set's digit count.
TEST(Verify, CatchesKeyDigitOutOfRange)
{
    CompiledCircuit c = multCircuit();
    Instruction *in = findInstr(c, [](const Instruction &i) {
        return i.op == Opcode::kKeyLoad;
    });
    ASSERT_NE(in, nullptr);
    in->aux = hw::keyLoadAux(hw::keyLoadSelector(in->aux), 200);
    expectViolation(c, Invariant::kKey);
}

// 15. Spill (release) of a pinned resident-prefix record.
TEST(Verify, CatchesPinnedRecordSpill)
{
    CompiledCircuit c = residentCircuit();
    ASSERT_GT(c.resident_action_count, 0u);
    SlotAction spill;
    spill.kind = SlotAction::Kind::kRelease;
    spill.id = 0; // first pinned slot
    c.slot_actions.push_back(spill);
    expectViolation(c, Invariant::kPinned);
}

// 16. Instruction overwrites a pinned operand (a warm rerun would see
//     corrupted resident data).
TEST(Verify, CatchesPinnedRecordWrite)
{
    CompiledCircuit c = residentCircuit();
    ASSERT_GT(c.resident_action_count, 0u);
    Instruction *in = findInstr(c, [](const Instruction &i) {
        return i.op == Opcode::kCoeffMul && i.dst != 0;
    });
    ASSERT_NE(in, nullptr);
    in->dst = 0; // first pinned slot
    expectViolation(c, Invariant::kPinned);
}

// 17. Constant upload pointing outside the constant pool.
TEST(Verify, CatchesConstantIndexOutOfRange)
{
    CompiledCircuit c = residentCircuit();
    ASSERT_FALSE(c.constants.empty());
    Transfer *bad = nullptr;
    for (compiler::Segment &seg : c.segments)
        for (Transfer &t : seg.uploads)
            if (t.source == Transfer::Source::kConstant)
                bad = &t;
    ASSERT_NE(bad, nullptr);
    bad->index = static_cast<uint32_t>(c.constants.size()) + 5;
    expectViolation(c, Invariant::kShape);
}

// 18. Dead declared output: the download that returns it is dropped.
TEST(Verify, CatchesDroppedOutputDownload)
{
    CompiledCircuit c = multCircuit();
    auto &downloads = c.segments.back().downloads;
    ASSERT_FALSE(downloads.empty());
    downloads.pop_back();
    expectViolation(c, Invariant::kOutput);
}

// 19. Reordered dependent pair: swap an instruction past a consumer
//     of its destination, so the consumer runs on stale state. At
//     least one adjacent dependent pair must trip the verifier.
TEST(Verify, CatchesReorderedDependentPair)
{
    CompiledCircuit c = multCircuit();
    size_t dependent_pairs = 0;
    for (compiler::Segment &seg : c.segments) {
        auto &instrs = seg.program.instrs;
        for (size_t i = 0; i + 1 < instrs.size(); ++i) {
            const Instruction &def = instrs[i];
            const Instruction &use = instrs[i + 1];
            if (def.dst == hw::kNoPoly ||
                (use.src0 != def.dst && use.src1 != def.dst &&
                 use.dst != def.dst))
                continue;
            ++dependent_pairs;
            std::swap(instrs[i], instrs[i + 1]);
            const VerifyResult result =
                verify::verifyCompiledCircuit(c);
            if (!result.ok()) {
                SUCCEED();
                return;
            }
            std::swap(instrs[i], instrs[i + 1]); // restore, keep looking
        }
    }
    ASSERT_GT(dependent_pairs, 0u);
    FAIL() << "no dependent-pair swap was caught ("
           << dependent_pairs << " pairs tried)";
}

// 20. Upload whose staged record sits at the wrong level.
TEST(Verify, CatchesUploadLevelMismatch)
{
    CompiledCircuit c = multCircuit();
    Transfer *t = nullptr;
    for (compiler::Segment &seg : c.segments)
        for (Transfer &u : seg.uploads)
            if (u.source == Transfer::Source::kValue && t == nullptr)
                t = &u;
    ASSERT_NE(t, nullptr);
    ASSERT_LT(t->index, c.value_levels.size());
    c.value_levels[t->index] += 1;
    const VerifyResult result = verify::verifyCompiledCircuit(c);
    EXPECT_FALSE(result.ok()) << "level-shifted input must not verify";
}

// --- diagnostics carry their coordinates ---------------------------------

TEST(Verify, DiagnosticRendersLocation)
{
    CompiledCircuit c = multCircuit();
    Instruction *in = findInstr(c, [](const Instruction &i) {
        return i.op == Opcode::kIntt;
    });
    ASSERT_NE(in, nullptr);
    in->op = Opcode::kNtt;
    const Diagnostic d = expectViolation(c, Invariant::kLayout);
    const std::string line = d.str();
    EXPECT_NE(line.find("[layout]"), std::string::npos) << line;
    EXPECT_NE(line.find("instr"), std::string::npos) << line;
    EXPECT_NE(line.find("NTT"), std::string::npos) << line;
    EXPECT_NE(line.find("expected"), std::string::npos) << line;
}

// --- wiring --------------------------------------------------------------

TEST(Verify, CompilerRejectModeThrowsOnViolation)
{
    // compileCircuit itself never produces a violating artifact, so
    // exercise the policy through the service admission path below and
    // the option default here: under this suite's environment
    // (verify_support.h) the default is kReject.
    CompilerOptions options;
    EXPECT_EQ(options.verify, compiler::VerifyCheck::kReject);
}

TEST(Verify, ServiceRejectsMutatedSubmission)
{
    auto params = smallParams();
    fv::KeyGenerator keygen(params, 7);
    const fv::SecretKey sk = keygen.generateSecretKey();
    const fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 0xFEED);

    service::ServiceConfig cfg;
    cfg.workers = 1;
    cfg.hw = smallHw(*params);
    cfg.verify = compiler::VerifyCheck::kReject;
    service::ExecutionService svc(params, std::move(rlk), cfg);

    compiler::CircuitBuilder b;
    const compiler::ValueId x = b.input();
    const compiler::ValueId y = b.input();
    b.output(b.mult(x, y));
    CompilerOptions options;
    options.hw = cfg.hw;
    auto mutated = std::make_shared<compiler::CompiledCircuit>(
        compiler::compileCircuit(params, b.build(), options));
    mutated->peak_slots += 1; // the tamper
    std::vector<fv::Ciphertext> inputs;
    inputs.push_back(
        encryptor.encrypt(randomPlain(*params, 1)));
    inputs.push_back(
        encryptor.encrypt(randomPlain(*params, 2)));

    EXPECT_THROW(
        svc.submitCompiled(
            std::shared_ptr<const compiler::CompiledCircuit>(mutated),
            std::move(inputs)),
        service::AdmissionRejectedError);
    EXPECT_EQ(svc.stats().verify_rejected, 1u);
}

TEST(Verify, ServiceCachesVerificationVerdict)
{
    auto params = smallParams();
    fv::KeyGenerator keygen(params, 9);
    const fv::SecretKey sk = keygen.generateSecretKey();
    const fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 0xFACE);

    service::ServiceConfig cfg;
    cfg.workers = 1;
    cfg.hw = smallHw(*params);
    cfg.verify = compiler::VerifyCheck::kReject;
    service::ExecutionService svc(params, std::move(rlk), cfg);

    compiler::CircuitBuilder b;
    const compiler::ValueId x = b.input();
    const compiler::ValueId y = b.input();
    b.output(b.add(x, y));
    CompilerOptions options;
    options.hw = cfg.hw;
    auto compiled = std::make_shared<const compiler::CompiledCircuit>(
        compiler::compileCircuit(params, b.build(), options));

    for (int r = 0; r < 3; ++r) {
        std::vector<fv::Ciphertext> inputs;
        inputs.push_back(encryptor.encrypt(randomPlain(*params, 3)));
        inputs.push_back(encryptor.encrypt(randomPlain(*params, 4)));
        svc.submitCompiled(compiled, std::move(inputs)).get();
    }
    svc.drain();
    // One verification pass despite three submissions of the object.
    EXPECT_EQ(svc.stats().circuits_verified, 1u);
    EXPECT_EQ(svc.stats().verify_rejected, 0u);
}

} // namespace
} // namespace heat
