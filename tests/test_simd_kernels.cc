/**
 * @file
 * Differential tests for the SIMD kernel layer: every vector kernel
 * must be bit-identical to the scalar table on random inputs, on
 * lazy-range edge values, and on moduli too wide for the 32-bit lane
 * paths (where the kernels must fall back to scalar internally). The
 * suite enumerates every level the host and build support, so on an
 * AVX-512 machine it exercises scalar vs AVX2 vs AVX-512.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "ntt/ntt.h"
#include "ntt/ntt_tables.h"
#include "rns/base_convert.h"
#include "rns/modulus.h"
#include "rns/prime_gen.h"
#include "rns/rns_base.h"
#include "rns/scale_round.h"
#include "simd/simd.h"

namespace heat {
namespace {

using rns::Modulus;
using simd::Kernels;
using simd::Level;

std::vector<Level>
availableLevels()
{
    std::vector<Level> levels{Level::kScalar};
    if (simd::detectedLevel() >= Level::kAvx2)
        levels.push_back(Level::kAvx2);
    if (simd::detectedLevel() >= Level::kAvx512)
        levels.push_back(Level::kAvx512);
    return levels;
}

/** Restores the process-wide dispatch level on scope exit. */
struct LevelGuard
{
    Level saved = simd::activeLevel();
    ~LevelGuard() { simd::setLevel(saved); }
};

/** Fixed odd moduli per required width; primality is irrelevant for
 * the elementwise kernels (Barrett handles any modulus). */
const uint64_t kWidthModuli[] = {
    (uint64_t(1) << 20) - 3,  // 20-bit — vector path
    (uint64_t(1) << 30) - 35, // 30-bit boundary — scalar fallback
    (uint64_t(1) << 50) - 27, // 50-bit — scalar fallback
    (uint64_t(1) << 60) - 93, // 60-bit — scalar fallback
    (uint64_t(1) << 62) - 57, // 62-bit, Modulus's ceiling
};

const size_t kVectorLengths[] = {0,  1,  3,   7,    8,    9,   15,
                                 16, 31, 100, 1000, 4099, 8192};

TEST(SimdDispatch, LevelsRoundTripAndClamp)
{
    LevelGuard guard;
    for (Level level : availableLevels()) {
        simd::setLevel(level);
        EXPECT_EQ(simd::activeLevel(), level) << simd::levelName(level);
        EXPECT_EQ(simd::active().level, level);
        EXPECT_EQ(simd::kernelsFor(level).level, level);
    }
    // Requests above the detected level clamp down instead of failing.
    simd::setLevel(Level::kAvx512);
    EXPECT_LE(simd::activeLevel(), simd::detectedLevel());
}

TEST(SimdDispatch, EligibilityBound)
{
    EXPECT_TRUE(simd::eligibleModulus(simd::kLaneModulusBound - 1));
    EXPECT_FALSE(simd::eligibleModulus(simd::kLaneModulusBound));
}

TEST(SimdKernels, ElementwiseMatchScalarEverywhere)
{
    Xoshiro256 rng(7);
    const Kernels &scalar = simd::kernelsFor(Level::kScalar);
    for (Level level : availableLevels()) {
        const Kernels &vec = simd::kernelsFor(level);
        for (uint64_t qv : kWidthModuli) {
            const Modulus q(qv);
            const uint64_t w = rng.uniformBelow(qv);
            const uint64_t w_shoup = q.shoupPrecompute(w);
            for (size_t n : kVectorLengths) {
                std::vector<uint64_t> a(n), b(n), src32(n);
                for (size_t i = 0; i < n; ++i) {
                    a[i] = rng.uniformBelow(qv);
                    b[i] = rng.uniformBelow(qv);
                    src32[i] = rng.uniformBelow(uint64_t(1) << 32);
                }
                // Edge values: both operands at q-1 in the first lanes.
                if (n >= 2) {
                    a[0] = qv - 1;
                    b[0] = qv - 1;
                    a[1] = 0;
                    b[1] = 0;
                }

                auto diff = [&](auto &&run) {
                    auto x = a;
                    auto y = a;
                    run(scalar, x.data());
                    run(vec, y.data());
                    EXPECT_EQ(x, y) << simd::levelName(level)
                                    << " q=" << qv << " n=" << n;
                };
                diff([&](const Kernels &k, uint64_t *p) {
                    k.add_mod(p, b.data(), n, qv);
                });
                diff([&](const Kernels &k, uint64_t *p) {
                    k.sub_mod(p, b.data(), n, qv);
                });
                diff([&](const Kernels &k, uint64_t *p) {
                    k.negate_mod(p, n, qv);
                });
                diff([&](const Kernels &k, uint64_t *p) {
                    k.mul_shoup(p, n, q, w, w_shoup);
                });
                diff([&](const Kernels &k, uint64_t *p) {
                    k.mul_mod(p, b.data(), n, q);
                });
                diff([&](const Kernels &k, uint64_t *p) {
                    k.mac_mod(p, b.data(), b.data(), n, q);
                });
                diff([&](const Kernels &k, uint64_t *p) {
                    k.mul_shoup_out(p, b.data(), n, q, w, w_shoup);
                });
                diff([&](const Kernels &k, uint64_t *p) {
                    k.reduce_u32(p, src32.data(), n, q);
                });
            }
        }
    }
}

TEST(SimdKernels, WidePrecisionPrimitivesMatchScalar)
{
    Xoshiro256 rng(11);
    const Kernels &scalar = simd::kernelsFor(Level::kScalar);
    for (Level level : availableLevels()) {
        const Kernels &vec = simd::kernelsFor(level);
        for (size_t count : {size_t(13), size_t(256), size_t(1000)}) {
            for (size_t terms : {size_t(1), size_t(5), simd::kSopMaxTerms}) {
                // sop128 contract: values < 2^30, weights <= 2^60.
                std::vector<std::vector<uint64_t>> data(terms);
                std::vector<const uint64_t *> rows(terms);
                std::vector<uint64_t> weights(terms);
                for (size_t i = 0; i < terms; ++i) {
                    data[i].resize(count);
                    for (auto &x : data[i])
                        x = rng.uniformBelow(uint64_t(1) << 30);
                    rows[i] = data[i].data();
                    weights[i] =
                        rng.uniformBelow((uint64_t(1) << 60) + 1);
                }
                if (!data.empty() && count > 0) {
                    data[0][0] = (uint64_t(1) << 30) - 1; // edge lane
                    weights[0] = uint64_t(1) << 60;
                }
                std::vector<uint64_t> lo_s(count), hi_s(count);
                std::vector<uint64_t> lo_v(count), hi_v(count);
                scalar.sop128(rows.data(), weights.data(), terms, count,
                              lo_s.data(), hi_s.data());
                vec.sop128(rows.data(), weights.data(), terms, count,
                           lo_v.data(), hi_v.data());
                EXPECT_EQ(lo_s, lo_v) << simd::levelName(level);
                EXPECT_EQ(hi_s, hi_v) << simd::levelName(level);

                // add128_64 on the sop outputs.
                std::vector<uint64_t> add(count);
                for (auto &x : add)
                    x = rng.next();
                auto lo2 = lo_s, hi2 = hi_s;
                scalar.add128_64(lo_s.data(), hi_s.data(), add.data(),
                                 count);
                vec.add128_64(lo2.data(), hi2.data(), add.data(), count);
                EXPECT_EQ(lo_s, lo2);
                EXPECT_EQ(hi_s, hi2);

                // round_shift128 across representative shifts; keep hi
                // small enough that the shifted result fits 64 bits.
                for (int shift : {1, 59, 60, 61, 64, 89, 127}) {
                    std::vector<uint64_t> lo(count), hi(count);
                    std::vector<uint64_t> out_s(count), out_v(count);
                    const int hi_bits = std::min(shift - 1, 32);
                    for (size_t c = 0; c < count; ++c) {
                        lo[c] = rng.next();
                        hi[c] = hi_bits == 0
                                    ? 0
                                    : rng.uniformBelow(uint64_t(1)
                                                       << hi_bits);
                    }
                    scalar.round_shift128(lo.data(), hi.data(), count,
                                          shift, out_s.data());
                    vec.round_shift128(lo.data(), hi.data(), count,
                                       shift, out_v.data());
                    EXPECT_EQ(out_s, out_v) << "shift=" << shift;
                }

                // reduce128_mod (hi < 2^32 contract) at narrow and wide
                // moduli — wide must fall back to scalar internally.
                for (uint64_t qv : kWidthModuli) {
                    const Modulus q(qv);
                    std::vector<uint64_t> lo(count), hi(count);
                    std::vector<uint64_t> out_s(count), out_v(count);
                    for (size_t c = 0; c < count; ++c) {
                        lo[c] = rng.next();
                        hi[c] = rng.uniformBelow(uint64_t(1) << 32);
                    }
                    scalar.reduce128_mod(lo.data(), hi.data(),
                                         out_s.data(), count, q);
                    vec.reduce128_mod(lo.data(), hi.data(), out_v.data(),
                                      count, q);
                    EXPECT_EQ(out_s, out_v) << "q=" << qv;
                }
            }
        }
    }
}

TEST(SimdKernels, ForwardNttMatchesScalarOracle)
{
    Xoshiro256 rng(23);
    for (size_t degree : {16, 64, 256, 1024, 4096, 8192}) {
        for (int bits : {20, 30, 50, 60}) {
            const uint64_t qv =
                rns::generateNttPrimes(bits, degree, 1)[0];
            const Modulus q(qv);
            const ntt::NttTables tables(q, degree);
            // Forward accepts Harvey-lazy inputs: exercise the full
            // [0, 4q) range plus the exact boundary values.
            std::vector<uint64_t> input(degree);
            for (auto &x : input)
                x = rng.uniformBelow(4 * qv);
            input[0] = 4 * qv - 1;
            input[1] = 2 * qv;
            input[2] = 2 * qv - 1;
            input[3] = qv;
            input[4] = qv - 1;
            input[5] = 0;

            auto expect = input;
            ntt::forwardNttScalar(expect, tables);
            for (Level level : availableLevels()) {
                auto got = input;
                simd::kernelsFor(level).ntt_forward(got.data(), tables);
                EXPECT_EQ(expect, got)
                    << simd::levelName(level) << " n=" << degree
                    << " q=" << qv;
            }
        }
    }
}

TEST(SimdKernels, InverseNttMatchesScalarOracle)
{
    Xoshiro256 rng(29);
    for (size_t degree : {16, 64, 256, 1024, 4096, 8192}) {
        for (int bits : {20, 30, 50, 60}) {
            const uint64_t qv =
                rns::generateNttPrimes(bits, degree, 1)[0];
            const Modulus q(qv);
            const ntt::NttTables tables(q, degree);
            // Inverse contract: inputs in [0, 2q).
            std::vector<uint64_t> input(degree);
            for (auto &x : input)
                x = rng.uniformBelow(2 * qv);
            input[0] = 2 * qv - 1;
            input[1] = qv;
            input[2] = qv - 1;
            input[3] = 0;

            auto expect = input;
            ntt::inverseNttScalar(expect, tables);
            for (Level level : availableLevels()) {
                auto got = input;
                simd::kernelsFor(level).ntt_inverse(got.data(), tables);
                EXPECT_EQ(expect, got)
                    << simd::levelName(level) << " n=" << degree
                    << " q=" << qv;
            }
        }
    }
}

TEST(SimdKernels, NttRoundTripThroughDispatch)
{
    LevelGuard guard;
    Xoshiro256 rng(31);
    const size_t degree = 1024;
    const uint64_t qv = rns::generateNttPrimes(30, degree, 1)[0];
    const ntt::NttTables tables(Modulus(qv), degree);
    std::vector<uint64_t> input(degree);
    for (auto &x : input)
        x = rng.uniformBelow(qv);
    for (Level level : availableLevels()) {
        simd::setLevel(level);
        auto a = input;
        ntt::forwardNtt(a, tables);
        ntt::inverseNtt(a, tables);
        EXPECT_EQ(a, input) << simd::levelName(level);
    }
}

TEST(SimdBatch, ScaleBatchMatchesPerCoefficientScale)
{
    Xoshiro256 rng(37);
    const size_t degree = 4096;
    auto primes = rns::generateNttPrimes(30, degree, 7);
    const rns::RnsBase q_base(
        std::vector<uint64_t>(primes.begin(), primes.begin() + 3));
    const rns::RnsBase p_base(
        std::vector<uint64_t>(primes.begin() + 3, primes.end()));
    const rns::ScaleRounder rounder(q_base, p_base, 65537);

    const size_t kq = q_base.size();
    const size_t kp = p_base.size();
    const size_t count = 777; // odd length exercises the lane tails
    std::vector<std::vector<uint64_t>> in(kq + kp);
    std::vector<const uint64_t *> in_rows(kq + kp);
    for (size_t i = 0; i < kq + kp; ++i) {
        in[i].resize(count);
        const uint64_t qi = i < kq ? q_base.modulus(i).value()
                                   : p_base.modulus(i - kq).value();
        for (auto &x : in[i])
            x = rng.uniformBelow(qi);
        in_rows[i] = in[i].data();
    }

    std::vector<uint64_t> expect_in(kq + kp), expect_out(kp);
    std::vector<std::vector<uint64_t>> expect(kp,
                                              std::vector<uint64_t>(count));
    for (size_t c = 0; c < count; ++c) {
        for (size_t i = 0; i < kq + kp; ++i)
            expect_in[i] = in[i][c];
        rounder.scale(expect_in, expect_out);
        for (size_t j = 0; j < kp; ++j)
            expect[j][c] = expect_out[j];
    }

    LevelGuard guard;
    for (Level level : availableLevels()) {
        simd::setLevel(level);
        std::vector<std::vector<uint64_t>> got(
            kp, std::vector<uint64_t>(count));
        std::vector<uint64_t *> out_rows(kp);
        for (size_t j = 0; j < kp; ++j)
            out_rows[j] = got[j].data();
        rounder.scaleBatch(in_rows.data(), out_rows.data(), count);
        for (size_t j = 0; j < kp; ++j)
            EXPECT_EQ(expect[j], got[j])
                << simd::levelName(level) << " j=" << j;
    }
}

TEST(SimdBatch, ConvertBatchMatchesPerCoefficientConvert)
{
    Xoshiro256 rng(41);
    const size_t degree = 4096;
    auto primes = rns::generateNttPrimes(30, degree, 6);
    const rns::RnsBase from(
        std::vector<uint64_t>(primes.begin(), primes.begin() + 3));
    const rns::RnsBase to(
        std::vector<uint64_t>(primes.begin() + 3, primes.end()));
    const rns::FastBaseConverter conv(from, to);

    const size_t kq = from.size();
    const size_t kb = to.size();
    const size_t count = 513;
    std::vector<std::vector<uint64_t>> in(kq);
    std::vector<const uint64_t *> in_rows(kq);
    for (size_t i = 0; i < kq; ++i) {
        in[i].resize(count);
        for (auto &x : in[i])
            x = rng.uniformBelow(from.modulus(i).value());
        in_rows[i] = in[i].data();
    }

    std::vector<uint64_t> expect_in(kq), expect_out(kb);
    std::vector<std::vector<uint64_t>> expect(kb,
                                              std::vector<uint64_t>(count));
    for (size_t c = 0; c < count; ++c) {
        for (size_t i = 0; i < kq; ++i)
            expect_in[i] = in[i][c];
        conv.convert(expect_in, expect_out);
        for (size_t j = 0; j < kb; ++j)
            expect[j][c] = expect_out[j];
    }

    LevelGuard guard;
    for (Level level : availableLevels()) {
        simd::setLevel(level);
        std::vector<std::vector<uint64_t>> got(
            kb, std::vector<uint64_t>(count));
        std::vector<uint64_t *> out_rows(kb);
        for (size_t j = 0; j < kb; ++j)
            out_rows[j] = got[j].data();
        conv.convertBatch(in_rows.data(), out_rows.data(), count);
        for (size_t j = 0; j < kb; ++j)
            EXPECT_EQ(expect[j], got[j])
                << simd::levelName(level) << " j=" << j;
    }
}

} // namespace
} // namespace heat
