/**
 * @file
 * Unit and property tests for the multi-precision integer substrate.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "mp/bigint.h"
#include "mp/primality.h"

namespace heat::mp {
namespace {

TEST(BigInt, DefaultIsZero)
{
    BigInt z;
    EXPECT_TRUE(z.isZero());
    EXPECT_FALSE(z.isNegative());
    EXPECT_EQ(z.toString(), "0");
    EXPECT_EQ(z.bitLength(), 0);
}

TEST(BigInt, Int64RoundTrip)
{
    for (int64_t v : {int64_t(0), int64_t(1), int64_t(-1), int64_t(42),
                      int64_t(-123456789), INT64_MAX, INT64_MIN + 1}) {
        EXPECT_EQ(BigInt(v).toInt64(), v) << v;
    }
}

TEST(BigInt, Int64MinRoundTrip)
{
    EXPECT_EQ(BigInt(INT64_MIN).toInt64(), INT64_MIN);
}

TEST(BigInt, Uint64RoundTrip)
{
    for (uint64_t v : {uint64_t(0), uint64_t(1), UINT64_MAX,
                       uint64_t(0x123456789ABCDEF0)}) {
        EXPECT_EQ(BigInt::fromUint64(v).toUint64(), v) << v;
    }
}

TEST(BigInt, DecimalStringRoundTrip)
{
    for (const char *s : {"0", "1", "-1", "123456789012345678901234567890",
                          "-98765432109876543210"}) {
        EXPECT_EQ(BigInt::fromString(s).toString(), s) << s;
    }
}

TEST(BigInt, HexParsing)
{
    EXPECT_EQ(BigInt::fromString("0xff").toUint64(), 255u);
    EXPECT_EQ(BigInt::fromString("0x123456789abcdef").toUint64(),
              0x123456789abcdefull);
    EXPECT_EQ(BigInt::fromString("-0x10").toInt64(), -16);
    EXPECT_EQ(BigInt::fromString("0xff").toHexString(), "0xff");
}

TEST(BigInt, PowerOfTwo)
{
    EXPECT_EQ(BigInt::powerOfTwo(0).toUint64(), 1u);
    EXPECT_EQ(BigInt::powerOfTwo(63).toUint64(), uint64_t(1) << 63);
    EXPECT_EQ(BigInt::powerOfTwo(200).bitLength(), 201);
}

TEST(BigInt, CompareOrdering)
{
    BigInt a(-5), b(0), c(7);
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
    EXPECT_LT(a, c);
    EXPECT_GT(c, a);
    EXPECT_EQ(BigInt(3), BigInt(3));
    EXPECT_NE(BigInt(3), BigInt(-3));
    EXPECT_LT(BigInt(-7), BigInt(-5));
}

TEST(BigInt, AdditionMatchesInt128)
{
    Xoshiro256 rng(1);
    for (int iter = 0; iter < 2000; ++iter) {
        int64_t a = static_cast<int64_t>(rng.next() >> 2) *
                    (rng.next() & 1 ? 1 : -1);
        int64_t b = static_cast<int64_t>(rng.next() >> 2) *
                    (rng.next() & 1 ? 1 : -1);
        __int128 expect = static_cast<__int128>(a) + b;
        BigInt got = BigInt(a) + BigInt(b);
        EXPECT_EQ(got.toString(),
                  (BigInt(a) + BigInt(b)).toString());
        // Verify against 128-bit arithmetic via subtraction.
        BigInt back = got - BigInt(b);
        EXPECT_EQ(back.toInt64(), a);
        (void)expect;
    }
}

TEST(BigInt, MultiplicationMatchesUint128)
{
    Xoshiro256 rng(2);
    for (int iter = 0; iter < 2000; ++iter) {
        uint64_t a = rng.next();
        uint64_t b = rng.next();
        unsigned __int128 p = static_cast<unsigned __int128>(a) * b;
        BigInt got = BigInt::fromUint64(a) * BigInt::fromUint64(b);
        BigInt expect = (BigInt::fromUint64(static_cast<uint64_t>(p >> 64))
                         << 64) +
                        BigInt::fromUint64(static_cast<uint64_t>(p));
        EXPECT_EQ(got, expect);
    }
}

TEST(BigInt, MulSignRules)
{
    EXPECT_EQ((BigInt(-3) * BigInt(4)).toInt64(), -12);
    EXPECT_EQ((BigInt(-3) * BigInt(-4)).toInt64(), 12);
    EXPECT_EQ((BigInt(3) * BigInt(-4)).toInt64(), -12);
    EXPECT_TRUE((BigInt(0) * BigInt(-4)).isZero());
}

TEST(BigInt, ShiftRoundTrip)
{
    Xoshiro256 rng(3);
    for (int iter = 0; iter < 500; ++iter) {
        BigInt v = BigInt::fromUint64(rng.next());
        int s = static_cast<int>(rng.uniformBelow(200));
        EXPECT_EQ((v << s) >> s, v) << s;
    }
}

TEST(BigInt, ShiftMatchesMultiplication)
{
    BigInt v = BigInt::fromString("123456789123456789123456789");
    EXPECT_EQ(v << 5, v * BigInt(32));
    EXPECT_EQ(v << 100, v * BigInt::powerOfTwo(100));
}

TEST(BigInt, DivisionInvariantRandom)
{
    // For random multi-limb a, b: a == (a/b)*b + (a%b) with |a%b| < |b|.
    Xoshiro256 rng(4);
    for (int iter = 0; iter < 2000; ++iter) {
        BigInt a = (BigInt::fromUint64(rng.next()) << 64) +
                   BigInt::fromUint64(rng.next());
        BigInt b = BigInt::fromUint64(rng.next() >> (rng.next() % 40));
        if (b.isZero())
            continue;
        if (rng.next() & 1)
            a = -a;
        if (rng.next() & 1)
            b = -b;
        BigInt r;
        BigInt q = a.divMod(b, r);
        EXPECT_EQ(q * b + r, a);
        EXPECT_LT(r.abs(), b.abs());
        // Truncated semantics: remainder carries the dividend's sign.
        if (!r.isZero()) {
            EXPECT_EQ(r.isNegative(), a.isNegative());
        }
    }
}

TEST(BigInt, KnuthDAddBackCase)
{
    // Divisor with high limb 0xFFFFFFFF triggers the rare add-back
    // branch of Algorithm D.
    BigInt a = BigInt::fromString("0x7fffffff800000010000000000000000");
    BigInt b = BigInt::fromString("0x800000008000000200000005");
    BigInt r;
    BigInt q = a.divMod(b, r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.abs(), b.abs());
}

TEST(BigInt, DivisionBySingleLimb)
{
    BigInt a = BigInt::fromString("340282366920938463463374607431768211455");
    BigInt q = a / BigInt(3);
    EXPECT_EQ(q * BigInt(3) + a % BigInt(3), a);
}

TEST(BigInt, ModAlwaysNonNegative)
{
    EXPECT_EQ(BigInt(-7).mod(BigInt(5)).toUint64(), 3u);
    EXPECT_EQ(BigInt(7).mod(BigInt(5)).toUint64(), 2u);
    EXPECT_EQ(BigInt(-10).mod(BigInt(5)).toUint64(), 0u);
}

TEST(BigInt, ModUint64MatchesBigMod)
{
    Xoshiro256 rng(5);
    for (int iter = 0; iter < 500; ++iter) {
        BigInt a = (BigInt::fromUint64(rng.next()) << 70) +
                   BigInt::fromUint64(rng.next());
        uint64_t m = (rng.next() | 1) >> 20;
        if (m == 0)
            continue;
        EXPECT_EQ(a.modUint64(m),
                  (a % BigInt::fromUint64(m)).toUint64());
    }
}

TEST(BigInt, ModPowSmallCases)
{
    EXPECT_EQ(BigInt(2).modPow(BigInt(10), BigInt(1000)).toUint64(), 24u);
    EXPECT_EQ(BigInt(3).modPow(BigInt(0), BigInt(7)).toUint64(), 1u);
    // Fermat: a^(p-1) = 1 mod p.
    BigInt p(1000003);
    EXPECT_EQ(BigInt(12345).modPow(p - BigInt(1), p).toUint64(), 1u);
}

TEST(BigInt, ModInverseProperty)
{
    Xoshiro256 rng(6);
    BigInt m = BigInt::fromString("1000000000000000003"); // prime
    for (int iter = 0; iter < 200; ++iter) {
        BigInt a = BigInt::fromUint64(rng.next() % 999999999999999999ull + 1);
        BigInt inv = a.modInverse(m);
        EXPECT_EQ((a * inv).mod(m).toUint64(), 1u);
    }
}

TEST(BigInt, GcdProperties)
{
    EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).toUint64(), 6u);
    EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).toUint64(), 6u);
    EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).toUint64(), 5u);
    EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)).toUint64(), 1u);
}

TEST(BigInt, ToDoubleApproximation)
{
    EXPECT_DOUBLE_EQ(BigInt(1000000).toDouble(), 1e6);
    EXPECT_DOUBLE_EQ(BigInt(-1000000).toDouble(), -1e6);
    double big = BigInt::powerOfTwo(100).toDouble();
    EXPECT_NEAR(big, std::pow(2.0, 100), big * 1e-10);
}

TEST(BigInt, BitAccess)
{
    BigInt v(0b101101);
    EXPECT_TRUE(v.bit(0));
    EXPECT_FALSE(v.bit(1));
    EXPECT_TRUE(v.bit(2));
    EXPECT_TRUE(v.bit(3));
    EXPECT_FALSE(v.bit(4));
    EXPECT_TRUE(v.bit(5));
    EXPECT_FALSE(v.bit(6));
    EXPECT_FALSE(v.bit(1000));
}

TEST(Primality, KnownPrimes)
{
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_TRUE(isPrime(1073741789)); // 30-bit prime
    EXPECT_TRUE(isPrime(0xFFFFFFFFFFFFFFC5ull)); // largest 64-bit prime
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(1));
    EXPECT_FALSE(isPrime(1073741790));
}

TEST(Primality, CarmichaelNumbersRejected)
{
    for (uint64_t c : {561ull, 1105ull, 1729ull, 2465ull, 2821ull,
                       6601ull, 8911ull, 825265ull}) {
        EXPECT_FALSE(isPrime(c)) << c;
    }
}

TEST(Primality, MatchesTrialDivisionSweep)
{
    auto trial = [](uint64_t n) {
        if (n < 2)
            return false;
        for (uint64_t d = 2; d * d <= n; ++d) {
            if (n % d == 0)
                return false;
        }
        return true;
    };
    for (uint64_t n = 0; n < 2000; ++n)
        EXPECT_EQ(isPrime(n), trial(n)) << n;
}

TEST(Primality, PowMod64Matches)
{
    Xoshiro256 rng(7);
    for (int iter = 0; iter < 200; ++iter) {
        uint64_t b = rng.next() >> 34;
        uint64_t e = rng.next() >> 50;
        uint64_t m = (rng.next() >> 34) | 1;
        if (m < 2)
            continue;
        BigInt expect = BigInt::fromUint64(b).modPow(
            BigInt::fromUint64(e), BigInt::fromUint64(m));
        EXPECT_EQ(powMod64(b, e, m), expect.toUint64());
    }
}

} // namespace
} // namespace heat::mp
