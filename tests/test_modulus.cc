/**
 * @file
 * Tests for word-sized modular arithmetic: Barrett reduction, Shoup
 * multiplication and the paper's sliding-window reduction, checked
 * against each other and against plain % over large random sweeps.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "rns/modulus.h"
#include "rns/prime_gen.h"

namespace heat::rns {
namespace {

class ModulusParamTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ModulusParamTest, ReduceMatchesPercent)
{
    Modulus m(GetParam());
    Xoshiro256 rng(GetParam());
    for (int iter = 0; iter < 5000; ++iter) {
        uint64_t x = rng.next();
        EXPECT_EQ(m.reduce(x), x % m.value());
    }
}

TEST_P(ModulusParamTest, Reduce128MatchesReference)
{
    Modulus m(GetParam());
    Xoshiro256 rng(GetParam() + 1);
    for (int iter = 0; iter < 5000; ++iter) {
        uint128_t x = (uint128_t(rng.next()) << 64) | rng.next();
        uint64_t expect = static_cast<uint64_t>(x % m.value());
        EXPECT_EQ(m.reduce128(x), expect);
    }
}

TEST_P(ModulusParamTest, MulMatchesInt128)
{
    Modulus m(GetParam());
    Xoshiro256 rng(GetParam() + 2);
    for (int iter = 0; iter < 5000; ++iter) {
        uint64_t a = rng.uniformBelow(m.value());
        uint64_t b = rng.uniformBelow(m.value());
        uint64_t expect =
            static_cast<uint64_t>(uint128_t(a) * b % m.value());
        EXPECT_EQ(m.mul(a, b), expect);
    }
}

TEST_P(ModulusParamTest, ShoupMatchesMul)
{
    Modulus m(GetParam());
    Xoshiro256 rng(GetParam() + 3);
    for (int iter = 0; iter < 2000; ++iter) {
        uint64_t w = rng.uniformBelow(m.value());
        uint64_t w_shoup = m.shoupPrecompute(w);
        for (int k = 0; k < 5; ++k) {
            uint64_t a = rng.uniformBelow(m.value());
            EXPECT_EQ(m.mulShoup(a, w, w_shoup), m.mul(a, w));
        }
    }
}

TEST_P(ModulusParamTest, AddSubNegate)
{
    Modulus m(GetParam());
    Xoshiro256 rng(GetParam() + 4);
    for (int iter = 0; iter < 2000; ++iter) {
        uint64_t a = rng.uniformBelow(m.value());
        uint64_t b = rng.uniformBelow(m.value());
        EXPECT_EQ(m.add(a, b), (a + b) % m.value());
        EXPECT_EQ(m.sub(a, b), (a + m.value() - b) % m.value());
        EXPECT_EQ(m.add(m.sub(a, b), b), a);
        EXPECT_EQ(m.add(a, m.negate(a)), 0u);
    }
}

TEST_P(ModulusParamTest, PowAndInverse)
{
    Modulus m(GetParam());
    Xoshiro256 rng(GetParam() + 5);
    EXPECT_EQ(m.pow(0, 0), 1u);
    for (int iter = 0; iter < 200; ++iter) {
        uint64_t a = rng.uniformBelow(m.value() - 1) + 1;
        uint64_t inv = m.inverse(a);
        EXPECT_EQ(m.mul(a, inv), 1u);
        // Fermat's little theorem for prime modulus.
        EXPECT_EQ(m.pow(a, m.value() - 1), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Primes, ModulusParamTest,
    ::testing::Values(
        // 30-bit NTT-friendly primes (the paper's size).
        uint64_t(1073479681), uint64_t(1072496641),
        // small primes
        uint64_t(17), uint64_t(257), uint64_t(65537),
        // larger primes up to the supported 62-bit bound
        uint64_t(4611686018427387847ull)));

class SlidingWindowTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SlidingWindowTest, MatchesBarrettOnProducts)
{
    Modulus m(GetParam());
    Xoshiro256 rng(99);
    for (int iter = 0; iter < 20000; ++iter) {
        uint64_t a = rng.uniformBelow(m.value());
        uint64_t b = rng.uniformBelow(m.value());
        uint64_t x = a * b; // < 2^60
        EXPECT_EQ(m.slidingWindowReduce(x), x % m.value());
    }
}

TEST_P(SlidingWindowTest, EdgeValues)
{
    Modulus m(GetParam());
    for (uint64_t x : {uint64_t(0), uint64_t(1), m.value() - 1, m.value(),
                       m.value() + 1, 2 * m.value(),
                       (uint64_t(1) << 60) - 1}) {
        EXPECT_EQ(m.slidingWindowReduce(x), x % m.value()) << x;
    }
}

TEST_P(SlidingWindowTest, TableContents)
{
    Modulus m(GetParam());
    const auto &table = m.reductionTable();
    for (uint64_t w = 0; w < 64; ++w)
        EXPECT_EQ(table[w], (w << 30) % m.value());
}

INSTANTIATE_TEST_SUITE_P(
    ThirtyBitPrimes, SlidingWindowTest,
    ::testing::Values(uint64_t(1073479681), uint64_t(1072496641),
                      uint64_t(1071513601), uint64_t(536903681),
                      uint64_t(557057)));

TEST(PrimeGen, GeneratesNttFriendlyPrimes)
{
    auto primes = generateNttPrimes(30, 4096, 13);
    ASSERT_EQ(primes.size(), 13u);
    for (uint64_t p : primes) {
        EXPECT_EQ(bitLength(p), 30);
        EXPECT_EQ((p - 1) % 8192, 0u) << p;
    }
    // Decreasing and distinct.
    for (size_t i = 1; i < primes.size(); ++i)
        EXPECT_LT(primes[i], primes[i - 1]);
}

TEST(PrimeGen, PrimitiveRootProperties)
{
    for (size_t n : {size_t(256), size_t(4096)}) {
        auto primes = generateNttPrimes(30, n, 2);
        for (uint64_t p : primes) {
            uint64_t psi = findPrimitiveRoot(p, n);
            Modulus m(p);
            // psi^n = -1 and psi^2n = 1.
            EXPECT_EQ(m.pow(psi, n), p - 1);
            EXPECT_EQ(m.pow(psi, 2 * n), 1u);
        }
    }
}

TEST(PrimeGen, EnoughPrimesForTableV)
{
    // The largest Table V row needs 48 + 49 thirty-bit primes congruent
    // to 1 mod 2^16.
    auto primes = generateNttPrimes(30, 32768, 97);
    EXPECT_EQ(primes.size(), 97u);
}

} // namespace
} // namespace heat::rns
