/**
 * @file
 * Shared static-verification support for the test suites.
 *
 * Including this header does two things:
 *
 *  1. At static-initialization time (before any test runs) it pins the
 *     process default verification policy to kReject unless the caller
 *     already set HEAT_VERIFY. Every compiler::compileCircuit in the
 *     including binary — and every ExecutionService admission — then
 *     runs the heat::verify abstract interpreter and throws on any
 *     invariant violation, so a compiler change that breaks an
 *     invariant fails the existing suites loudly instead of decrypting
 *     to garbage somewhere downstream.
 *
 *  2. It provides expectVerifiesClean() for suites that hold a
 *     CompiledCircuit and want the structured diagnostic table in the
 *     gtest failure message.
 */

#ifndef HEAT_TESTS_VERIFY_SUPPORT_H
#define HEAT_TESTS_VERIFY_SUPPORT_H

#include <gtest/gtest.h>

#include <cstdlib>

#include "compiler/compiler.h"
#include "verify/verify.h"

namespace heat::testing {

/** Runs before main(): default this binary to verify-and-reject. The
 *  explicit environment still wins (HEAT_VERIFY=off|warn|reject), so
 *  CI legs can override per process. */
inline const bool kVerifyRejectInstalled = [] {
    ::setenv("HEAT_VERIFY", "reject", /*overwrite=*/0);
    return true;
}();

/** Run the static verifier over @p compiled and fail the current test
 *  with the full diagnostic table if any invariant is violated. */
inline void
expectVerifiesClean(const compiler::CompiledCircuit &compiled,
                    const char *what = "compiled circuit")
{
    const verify::VerifyResult result =
        verify::verifyCompiledCircuit(compiled);
    EXPECT_TRUE(result.ok()) << what << ": " << result.report();
}

} // namespace heat::testing

#endif // HEAT_TESTS_VERIFY_SUPPORT_H
