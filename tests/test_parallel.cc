/**
 * @file
 * Tests for heat::parallelFor and the determinism of the code paths
 * that use it: every index must run exactly once at any thread count,
 * and the RNS-residue loops in RnsPoly and the coefficient-chunked
 * loops in the FV evaluator must produce bit-identical results at
 * thread counts {1, 2, 8}.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "ntt/ntt_tables.h"
#include "ntt/rns_poly.h"
#include "rns/prime_gen.h"

namespace heat {
namespace {

/** Restores the process-wide thread count on scope exit. */
class ThreadCountGuard
{
  public:
    ThreadCountGuard() : saved_(threadCount()) {}
    ~ThreadCountGuard() { setThreadCount(saved_); }

  private:
    unsigned saved_;
};

class ParallelForTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ParallelForTest, CoversEveryIndexExactlyOnce)
{
    ThreadCountGuard guard;
    setThreadCount(GetParam());

    constexpr size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    parallelFor(kCount, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ParallelForTest, PropagatesBodyExceptionToCaller)
{
    // Regression: the multi-threaded branch used to let a throwing body
    // terminate a pool thread instead of surfacing the exception on the
    // calling thread (the single-threaded branch always propagated).
    ThreadCountGuard guard;
    setThreadCount(GetParam());

    EXPECT_THROW(parallelFor(64,
                             [](size_t i) {
                                 if (i == 17)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);

    // After a failed run the remaining indices were abandoned but the
    // pool must stay fully usable.
    std::atomic<size_t> ran{0};
    parallelFor(64, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 64u);
}

TEST_P(ParallelForTest, ChunkedCoversEveryIndexExactlyOnce)
{
    ThreadCountGuard guard;
    setThreadCount(GetParam());

    constexpr size_t kCount = 1000;
    for (size_t grain : {size_t(1), size_t(64), size_t(512),
                         size_t(1000), size_t(5000)}) {
        std::vector<std::atomic<int>> hits(kCount);
        parallelFor(kCount, grain, [&](size_t begin, size_t end) {
            ASSERT_LE(begin, end);
            ASSERT_LE(end, kCount);
            for (size_t i = begin; i < end; ++i)
                hits[i].fetch_add(1);
        });
        for (size_t i = 0; i < kCount; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "grain=" << grain << " i=" << i;
    }

    // Empty range: the body must not run at all.
    parallelFor(0, 16, [](size_t, size_t) { FAIL() << "body ran"; });
}

TEST_P(ParallelForTest, ChunkedPropagatesBodyExceptionToCaller)
{
    ThreadCountGuard guard;
    setThreadCount(GetParam());

    EXPECT_THROW(parallelFor(1000, 8,
                             [](size_t begin, size_t end) {
                                 if (begin <= 500 && 500 < end)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);

    // The pool must stay fully usable after a failed chunked run.
    std::atomic<size_t> ran{0};
    parallelFor(1000, 8, [&](size_t begin, size_t end) {
        ran.fetch_add(end - begin);
    });
    EXPECT_EQ(ran.load(), 1000u);
}

TEST_P(ParallelForTest, RnsPolyNttMatchesSingleThread)
{
    ThreadCountGuard guard;

    constexpr size_t kN = 256;
    auto primes = rns::generateNttPrimes(30, kN, 3);
    auto base = std::make_shared<const rns::RnsBase>(primes);
    ntt::NttContext context(*base, kN);

    Xoshiro256 rng(77);
    ntt::RnsPoly input(base, kN);
    for (size_t i = 0; i < input.residueCount(); ++i) {
        for (size_t j = 0; j < kN; ++j)
            input.residue(i)[j] =
                rng.uniformBelow(base->modulus(i).value());
    }

    setThreadCount(1);
    ntt::RnsPoly reference = input;
    reference.toNtt(context);

    setThreadCount(GetParam());
    ntt::RnsPoly parallel_ntt = input;
    parallel_ntt.toNtt(context);
    EXPECT_EQ(parallel_ntt, reference);

    parallel_ntt.toCoeff(context);
    EXPECT_EQ(parallel_ntt, input);
}

TEST_P(ParallelForTest, EvaluatorMultiplyMatchesSingleThread)
{
    ThreadCountGuard guard;

    // Small parameter set so the lift/scale chunk loops run quickly.
    fv::FvConfig config;
    config.degree = 256;
    config.plain_modulus = 4;
    config.sigma = 3.2;
    config.q_prime_count = 3;
    auto params = fv::FvParams::create(config);

    fv::KeyGenerator keygen(params, 4242);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 7);
    fv::Decryptor decryptor(params, sk);
    fv::Evaluator evaluator(params);

    fv::Plaintext m;
    m.coeffs = {1, 2, 0, 3};
    fv::Ciphertext a = encryptor.encrypt(m);
    fv::Ciphertext b = encryptor.encrypt(m);

    setThreadCount(1);
    fv::Ciphertext reference = evaluator.multiply(a, b, rlk);

    setThreadCount(GetParam());
    fv::Ciphertext parallel_ct = evaluator.multiply(a, b, rlk);

    ASSERT_EQ(parallel_ct.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i)
        EXPECT_EQ(parallel_ct[i], reference[i]) << "poly " << i;

    // Both decrypt to the true product:
    // (1 + 2x + 3x^3)^2 = 1 + 4x + 4x^2 + 6x^3 + 12x^4 + 9x^6, mod t=4.
    setThreadCount(1);
    const std::vector<uint64_t> expect = {1, 0, 0, 2, 0, 0, 1};
    fv::Plaintext plain = decryptor.decrypt(parallel_ct);
    EXPECT_EQ(decryptor.decrypt(reference), plain);
    const size_t len = std::max(expect.size(), plain.coeffs.size());
    for (size_t i = 0; i < len; ++i) {
        const uint64_t got =
            i < plain.coeffs.size() ? plain.coeffs[i] % 4 : 0;
        EXPECT_EQ(got, i < expect.size() ? expect[i] : 0) << "coeff " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelForTest,
                         ::testing::Values(1u, 2u, 8u));

} // namespace
} // namespace heat
