/**
 * @file
 * Round-trip and failure-injection tests for the binary wire format:
 * plaintexts, ciphertexts, all key types, fingerprint and corruption
 * checks, and an end-to-end client/server exchange.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/panic.h"
#include "common/random.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "fv/serialize.h"

namespace heat::fv {
namespace {

std::shared_ptr<const FvParams>
smallParams(uint64_t t = 65537)
{
    FvConfig config;
    config.degree = 256;
    config.plain_modulus = t;
    config.sigma = 3.2;
    config.q_prime_count = 3;
    return FvParams::create(config);
}

TEST(Serialize, FingerprintIsStableAndDiscriminating)
{
    auto p1 = smallParams();
    auto p2 = smallParams();
    EXPECT_EQ(paramsFingerprint(*p1), paramsFingerprint(*p2));
    auto p3 = smallParams(257);
    EXPECT_NE(paramsFingerprint(*p1), paramsFingerprint(*p3));
    EXPECT_NE(paramsFingerprint(*p1),
              paramsFingerprint(*FvParams::paper()));
}

TEST(Serialize, PlaintextRoundTrip)
{
    Plaintext plain;
    plain.coeffs = {1, 0, 65536, 42, 0, 7};
    std::stringstream ss;
    savePlaintext(plain, ss);
    EXPECT_EQ(loadPlaintext(ss), plain);
}

TEST(Serialize, CiphertextRoundTrip)
{
    auto params = smallParams();
    KeyGenerator keygen(params, 1);
    SecretKey sk = keygen.generateSecretKey();
    PublicKey pk = keygen.generatePublicKey(sk);
    Encryptor encryptor(params, pk, 2);

    Plaintext m;
    m.coeffs = {1, 2, 3, 4, 5};
    Ciphertext ct = encryptor.encrypt(m);

    std::stringstream ss;
    saveCiphertext(*params, ct, ss);
    EXPECT_EQ(static_cast<size_t>(ss.tellp()),
              ciphertextByteSize(*params, ct));
    Ciphertext back = loadCiphertext(params, ss);
    ASSERT_EQ(back.size(), ct.size());
    for (size_t i = 0; i < ct.size(); ++i)
        EXPECT_EQ(back[i], ct[i]);

    // The reloaded ciphertext still decrypts.
    Decryptor decryptor(params, std::move(sk));
    EXPECT_EQ(decryptor.decrypt(back).coeffs[2], 3u);
}

TEST(Serialize, ThreeElementCiphertextRoundTrip)
{
    auto params = smallParams(4);
    KeyGenerator keygen(params, 3);
    SecretKey sk = keygen.generateSecretKey();
    PublicKey pk = keygen.generatePublicKey(sk);
    Encryptor encryptor(params, pk, 4);
    Evaluator evaluator(params);

    Plaintext m;
    m.coeffs = {1, 1};
    Ciphertext ct3 =
        evaluator.multiplyNoRelin(encryptor.encrypt(m), encryptor.encrypt(m));
    ASSERT_EQ(ct3.size(), 3u);

    std::stringstream ss;
    saveCiphertext(*params, ct3, ss);
    Ciphertext back = loadCiphertext(params, ss);
    ASSERT_EQ(back.size(), 3u);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(back[i], ct3[i]);
}

TEST(Serialize, KeyRoundTrips)
{
    auto params = smallParams();
    KeyGenerator keygen(params, 5);
    SecretKey sk = keygen.generateSecretKey();
    PublicKey pk = keygen.generatePublicKey(sk);
    RelinKeys rlk = keygen.generateRelinKeys(sk);
    GaloisKeys gkeys = keygen.generateGaloisKeys(
        sk, {3u, static_cast<uint32_t>(2 * params->degree() - 1)});

    std::stringstream ss;
    saveSecretKey(*params, sk, ss);
    savePublicKey(*params, pk, ss);
    saveRelinKeys(*params, rlk, ss);
    saveGaloisKeys(*params, gkeys, ss);

    SecretKey sk2 = loadSecretKey(params, ss);
    PublicKey pk2 = loadPublicKey(params, ss);
    RelinKeys rlk2 = loadRelinKeys(params, ss);
    GaloisKeys gkeys2 = loadGaloisKeys(params, ss);

    EXPECT_EQ(sk2.s_ntt, sk.s_ntt);
    EXPECT_EQ(pk2.p0_ntt, pk.p0_ntt);
    EXPECT_EQ(pk2.p1_ntt, pk.p1_ntt);
    ASSERT_EQ(rlk2.digitCount(), rlk.digitCount());
    for (size_t i = 0; i < rlk.digitCount(); ++i) {
        EXPECT_EQ(rlk2.keys[i][0], rlk.keys[i][0]);
        EXPECT_EQ(rlk2.keys[i][1], rlk.keys[i][1]);
    }
    ASSERT_EQ(gkeys2.keys.size(), gkeys.keys.size());
    EXPECT_TRUE(gkeys2.has(3u));
}

TEST(Serialize, PositionalRelinKeysKeepKind)
{
    auto params = smallParams();
    KeyGenerator keygen(params, 6);
    SecretKey sk = keygen.generateSecretKey();
    RelinKeys rlk = keygen.generatePositionalRelinKeys(sk, 45);

    std::stringstream ss;
    saveRelinKeys(*params, rlk, ss);
    RelinKeys back = loadRelinKeys(params, ss);
    EXPECT_EQ(back.kind, DecompKind::kPositional);
    EXPECT_EQ(back.digit_bits, 45);
    EXPECT_EQ(back.digitCount(), rlk.digitCount());
}

TEST(Serialize, WrongParamsRejected)
{
    auto params = smallParams();
    auto other = smallParams(257);
    KeyGenerator keygen(params, 7);
    SecretKey sk = keygen.generateSecretKey();
    PublicKey pk = keygen.generatePublicKey(sk);
    Encryptor encryptor(params, pk, 8);
    Plaintext m;
    m.coeffs = {1};
    Ciphertext ct = encryptor.encrypt(m);

    std::stringstream ss;
    saveCiphertext(*params, ct, ss);
    EXPECT_THROW(loadCiphertext(other, ss), FatalError);
}

TEST(Serialize, CorruptMagicRejected)
{
    std::stringstream ss;
    savePlaintext(Plaintext({1, 2, 3}), ss);
    std::string bytes = ss.str();
    bytes[0] = 'X';
    std::stringstream bad(bytes);
    EXPECT_THROW(loadPlaintext(bad), FatalError);
}

TEST(Serialize, TruncatedStreamRejected)
{
    auto params = smallParams();
    KeyGenerator keygen(params, 9);
    SecretKey sk = keygen.generateSecretKey();
    PublicKey pk = keygen.generatePublicKey(sk);
    Encryptor encryptor(params, pk, 10);
    Plaintext m;
    m.coeffs = {1};
    std::stringstream ss;
    saveCiphertext(*params, encryptor.encrypt(m), ss);
    std::string bytes = ss.str().substr(0, ss.str().size() / 2);
    std::stringstream bad(bytes);
    EXPECT_THROW(loadCiphertext(params, bad), FatalError);
}

TEST(Serialize, WrongPayloadKindRejected)
{
    auto params = smallParams();
    KeyGenerator keygen(params, 11);
    SecretKey sk = keygen.generateSecretKey();
    std::stringstream ss;
    saveSecretKey(*params, sk, ss);
    EXPECT_THROW(loadCiphertext(params, ss), FatalError);
}

TEST(Serialize, RandomizedCiphertextRoundTripProperty)
{
    // Property: for randomized keys and plaintexts, serialize ->
    // deserialize is the identity on ciphertexts, and the reloaded
    // ciphertext decrypts to the same plaintext as the original.
    for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        auto params = smallParams(seed % 2 == 0 ? 65537 : 4);
        KeyGenerator keygen(params, seed);
        SecretKey sk = keygen.generateSecretKey();
        PublicKey pk = keygen.generatePublicKey(sk);
        Encryptor encryptor(params, pk, seed ^ 0xF00D);
        Decryptor decryptor(params, SecretKey{sk.s_ntt});

        Xoshiro256 rng(seed * 31);
        Plaintext m;
        m.coeffs.resize(params->degree());
        for (auto &c : m.coeffs)
            c = rng.uniformBelow(params->plainModulus());
        Ciphertext ct = encryptor.encrypt(m);

        std::stringstream ss;
        saveCiphertext(*params, ct, ss);
        Ciphertext back = loadCiphertext(params, ss);
        EXPECT_EQ(back, ct) << "seed " << seed;
        EXPECT_EQ(decryptor.decrypt(back), decryptor.decrypt(ct));
    }
}

TEST(Serialize, RandomizedKeyRoundTripProperty)
{
    for (uint64_t seed : {7u, 8u, 9u}) {
        auto params = smallParams();
        KeyGenerator keygen(params, seed);
        SecretKey sk = keygen.generateSecretKey();
        PublicKey pk = keygen.generatePublicKey(sk);
        RelinKeys rlk = keygen.generateRelinKeys(sk);

        std::stringstream ss;
        saveSecretKey(*params, sk, ss);
        savePublicKey(*params, pk, ss);
        saveRelinKeys(*params, rlk, ss);

        EXPECT_EQ(loadSecretKey(params, ss).s_ntt, sk.s_ntt);
        PublicKey pk2 = loadPublicKey(params, ss);
        EXPECT_EQ(pk2.p0_ntt, pk.p0_ntt);
        EXPECT_EQ(pk2.p1_ntt, pk.p1_ntt);
        RelinKeys rlk2 = loadRelinKeys(params, ss);
        ASSERT_EQ(rlk2.digitCount(), rlk.digitCount());
        for (size_t i = 0; i < rlk.digitCount(); ++i) {
            EXPECT_EQ(rlk2.keys[i][0], rlk.keys[i][0]);
            EXPECT_EQ(rlk2.keys[i][1], rlk.keys[i][1]);
        }
    }
}

TEST(Serialize, TruncationAtEveryRegionRejected)
{
    // Sweep cut points across every region of the wire format — inside
    // the magic, the header, and the payload, and one byte short of the
    // end. Every truncation must fail loudly with FatalError, never
    // return a partial object or hang.
    auto params = smallParams();
    KeyGenerator keygen(params, 21);
    SecretKey sk = keygen.generateSecretKey();
    PublicKey pk = keygen.generatePublicKey(sk);
    Encryptor encryptor(params, pk, 22);
    Plaintext m;
    m.coeffs = {1, 2, 3};
    std::stringstream ss;
    saveCiphertext(*params, encryptor.encrypt(m), ss);
    const std::string bytes = ss.str();
    ASSERT_GT(bytes.size(), 32u);

    const size_t cuts[] = {0,
                           2,                    // inside the magic
                           6,                    // inside the version
                           14,                   // inside the fingerprint
                           bytes.size() / 4,
                           bytes.size() / 2,
                           bytes.size() - 5,
                           bytes.size() - 1};
    for (size_t cut : cuts) {
        std::stringstream bad(bytes.substr(0, cut));
        EXPECT_THROW(loadCiphertext(params, bad), FatalError)
            << "cut at " << cut << " of " << bytes.size();
    }
    // The untruncated buffer still loads (the sweep is the only thing
    // failing, not the format).
    std::stringstream good(bytes);
    EXPECT_NO_THROW(loadCiphertext(params, good));
}

TEST(Serialize, TruncatedRelinKeysRejected)
{
    auto params = smallParams();
    KeyGenerator keygen(params, 23);
    RelinKeys rlk = keygen.generateRelinKeys(keygen.generateSecretKey());
    std::stringstream ss;
    saveRelinKeys(*params, rlk, ss);
    const std::string bytes = ss.str();
    for (size_t denom : {8u, 3u, 2u}) {
        std::stringstream bad(bytes.substr(0, bytes.size() / denom));
        EXPECT_THROW(loadRelinKeys(params, bad), FatalError)
            << "kept 1/" << denom;
    }
}

TEST(Serialize, LevelRoundTripsAtEveryLevel)
{
    // The v2 wire format carries the modulus-switching level; the
    // polynomials of a deep ciphertext live over the truncated basis,
    // so the blob also shrinks with every level.
    auto params = smallParams();
    KeyGenerator keygen(params, 31);
    SecretKey sk = keygen.generateSecretKey();
    PublicKey pk = keygen.generatePublicKey(sk);
    Encryptor encryptor(params, pk, 32);
    Decryptor decryptor(params, SecretKey{sk.s_ntt});
    Evaluator evaluator(params);

    Plaintext m;
    m.coeffs = {9, 8, 7};
    const Ciphertext fresh = encryptor.encrypt(m);
    ASSERT_GE(params->maxLevel(), 2u);
    size_t prev_bytes = 0;
    for (size_t level = 0; level <= params->maxLevel(); ++level) {
        const Ciphertext ct = evaluator.modSwitchTo(fresh, level);
        ASSERT_EQ(ct.level, level);
        std::stringstream ss;
        saveCiphertext(*params, ct, ss);
        EXPECT_EQ(static_cast<size_t>(ss.tellp()),
                  ciphertextByteSize(*params, ct));
        const Ciphertext back = loadCiphertext(params, ss);
        EXPECT_EQ(back, ct) << "level " << level;
        EXPECT_EQ(back.level, level);
        EXPECT_EQ(decryptor.decrypt(back).coeffs[2], 7u)
            << "level " << level;
        if (level > 0) {
            EXPECT_LT(ss.str().size(), prev_bytes) << "level " << level;
        }
        prev_bytes = ss.str().size();
    }
}

TEST(Serialize, ThreeElementDeepCiphertextRoundTrip)
{
    // An unrelinearized tensor at a deep level: three polynomials over
    // the truncated basis, level preserved bit for bit.
    auto params = smallParams(257);
    KeyGenerator keygen(params, 33);
    SecretKey sk = keygen.generateSecretKey();
    PublicKey pk = keygen.generatePublicKey(sk);
    Encryptor encryptor(params, pk, 34);
    Evaluator evaluator(params);

    Plaintext m;
    m.coeffs = {1, 1};
    Ciphertext a = evaluator.modSwitch(encryptor.encrypt(m));
    Ciphertext b = evaluator.modSwitch(encryptor.encrypt(m));
    Ciphertext ct3 = evaluator.multiplyNoRelin(a, b);
    ASSERT_EQ(ct3.size(), 3u);
    ASSERT_EQ(ct3.level, 1u);

    std::stringstream ss;
    saveCiphertext(*params, ct3, ss);
    EXPECT_EQ(loadCiphertext(params, ss), ct3);
}

TEST(Serialize, LegacyLevelFreeStreamLoadsAtLevelZero)
{
    // Version-1 blobs predate the level field entirely: forge one by
    // patching the version word down to 1 and cutting the level u32
    // (offset 20, right after the 20-byte header). It must load as a
    // level-0 ciphertext identical to the original.
    auto params = smallParams();
    KeyGenerator keygen(params, 35);
    SecretKey sk = keygen.generateSecretKey();
    PublicKey pk = keygen.generatePublicKey(sk);
    Encryptor encryptor(params, pk, 36);
    Decryptor decryptor(params, SecretKey{sk.s_ntt});

    Plaintext m;
    m.coeffs = {4, 0, 2};
    const Ciphertext ct = encryptor.encrypt(m);
    std::stringstream ss;
    saveCiphertext(*params, ct, ss);
    std::string bytes = ss.str();
    ASSERT_EQ(bytes[4], 2); // little-endian version word
    bytes[4] = 1;
    bytes.erase(20, 4);

    std::stringstream legacy(bytes);
    const Ciphertext back = loadCiphertext(params, legacy);
    EXPECT_EQ(back.level, 0u);
    EXPECT_EQ(back, ct);
    EXPECT_EQ(decryptor.decrypt(back).coeffs[0], 4u);
}

TEST(Serialize, OutOfRangeLevelRejected)
{
    // A stream claiming a level past the parameter set's chain must be
    // refused before any polynomial data is interpreted.
    auto params = smallParams();
    KeyGenerator keygen(params, 37);
    SecretKey sk = keygen.generateSecretKey();
    PublicKey pk = keygen.generatePublicKey(sk);
    Encryptor encryptor(params, pk, 38);

    Plaintext m;
    m.coeffs = {1};
    std::stringstream ss;
    saveCiphertext(*params, encryptor.encrypt(m), ss);
    std::string bytes = ss.str();
    bytes[20] = static_cast<char>(params->maxLevel() + 1);
    std::stringstream bad(bytes);
    EXPECT_THROW(loadCiphertext(params, bad), FatalError);
}

TEST(Serialize, EndToEndClientServerExchange)
{
    // Client encrypts and serializes; server deserializes, computes,
    // serializes the result; client decrypts.
    auto params = smallParams(4);
    KeyGenerator keygen(params, 12);
    SecretKey sk = keygen.generateSecretKey();
    PublicKey pk = keygen.generatePublicKey(sk);
    RelinKeys rlk = keygen.generateRelinKeys(sk);
    Encryptor encryptor(params, pk, 13);

    Plaintext m0, m1;
    m0.coeffs = {1, 2, 3};
    m1.coeffs = {2, 0, 1};
    std::stringstream wire;
    saveCiphertext(*params, encryptor.encrypt(m0), wire);
    saveCiphertext(*params, encryptor.encrypt(m1), wire);
    saveRelinKeys(*params, rlk, wire);

    // Server side.
    Ciphertext a = loadCiphertext(params, wire);
    Ciphertext b = loadCiphertext(params, wire);
    RelinKeys server_rlk = loadRelinKeys(params, wire);
    Evaluator evaluator(params);
    Ciphertext product = evaluator.multiply(a, b, server_rlk);
    std::stringstream reply;
    saveCiphertext(*params, product, reply);

    // Client side.
    Decryptor decryptor(params, std::move(sk));
    Plaintext result = decryptor.decrypt(loadCiphertext(params, reply));
    // (1 + 2x + 3x^2)(2 + x^2) mod 4 = 2 + 4x + 7x^2 + 2x^3 + 3x^4.
    EXPECT_EQ(result.coeffs[0], 2u);
    EXPECT_EQ(result.coeffs[1], 0u);
    EXPECT_EQ(result.coeffs[2], 3u);
    EXPECT_EQ(result.coeffs[3], 2u);
    EXPECT_EQ(result.coeffs[4], 3u);
}

} // namespace
} // namespace heat::fv
