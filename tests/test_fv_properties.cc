/**
 * @file
 * Property-based tests of the FV scheme's algebra, noise-threshold
 * failure behaviour, the paper's depth-4 sizing claim on the full
 * parameter set, and end-to-end operation of a Table V row-1 (n = 8192)
 * configuration.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/parallel.h"
#include "common/random.h"
#include "fv/decryptor.h"
#include "fv/encoder.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/noise.h"
#include "fv/params.h"

namespace heat::fv {
namespace {

struct Rig
{
    explicit Rig(std::shared_ptr<const FvParams> p, uint64_t seed = 77)
        : params(p),
          keygen(p, seed),
          sk(keygen.generateSecretKey()),
          pk(keygen.generatePublicKey(sk)),
          rlk(keygen.generateRelinKeys(sk)),
          encryptor(p, pk, seed + 1),
          decryptor(p, sk),
          evaluator(p)
    {
    }

    Plaintext
    randomPlain(uint64_t seed) const
    {
        Xoshiro256 rng(seed);
        Plaintext m;
        m.coeffs.resize(params->degree());
        for (auto &c : m.coeffs)
            c = rng.uniformBelow(params->plainModulus());
        return m;
    }

    Plaintext
    decrypted(const Ciphertext &ct) const
    {
        return decryptor.decrypt(ct);
    }

    std::shared_ptr<const FvParams> params;
    KeyGenerator keygen;
    SecretKey sk;
    PublicKey pk;
    RelinKeys rlk;
    Encryptor encryptor;
    Decryptor decryptor;
    Evaluator evaluator;
};

std::shared_ptr<const FvParams>
smallParams(uint64_t t = 16, size_t primes = 3)
{
    FvConfig config;
    config.degree = 256;
    config.plain_modulus = t;
    config.sigma = 3.2;
    config.q_prime_count = primes;
    return FvParams::create(config);
}

void
expectSamePlain(const Plaintext &a, const Plaintext &b, uint64_t t)
{
    const size_t n = std::max(a.coeffs.size(), b.coeffs.size());
    for (size_t i = 0; i < n; ++i) {
        uint64_t av = i < a.coeffs.size() ? a.coeffs[i] % t : 0;
        uint64_t bv = i < b.coeffs.size() ? b.coeffs[i] % t : 0;
        ASSERT_EQ(av, bv) << "coeff " << i;
    }
}

TEST(FvAlgebra, AdditionIsCommutative)
{
    Rig rig(smallParams());
    Ciphertext a = rig.encryptor.encrypt(rig.randomPlain(1));
    Ciphertext b = rig.encryptor.encrypt(rig.randomPlain(2));
    // Addition is coefficient arithmetic: the ciphertexts are equal,
    // not merely decryption-equal.
    Ciphertext ab = rig.evaluator.add(a, b);
    Ciphertext ba = rig.evaluator.add(b, a);
    EXPECT_EQ(ab[0], ba[0]);
    EXPECT_EQ(ab[1], ba[1]);
}

TEST(FvAlgebra, AdditionIsAssociative)
{
    Rig rig(smallParams());
    Ciphertext a = rig.encryptor.encrypt(rig.randomPlain(3));
    Ciphertext b = rig.encryptor.encrypt(rig.randomPlain(4));
    Ciphertext c = rig.encryptor.encrypt(rig.randomPlain(5));
    Ciphertext left = rig.evaluator.add(rig.evaluator.add(a, b), c);
    Ciphertext right = rig.evaluator.add(a, rig.evaluator.add(b, c));
    EXPECT_EQ(left[0], right[0]);
    EXPECT_EQ(left[1], right[1]);
}

TEST(FvAlgebra, MultiplicationIsCommutative)
{
    Rig rig(smallParams(4));
    Plaintext ma = rig.randomPlain(6);
    Plaintext mb = rig.randomPlain(7);
    Ciphertext a = rig.encryptor.encrypt(ma);
    Ciphertext b = rig.encryptor.encrypt(mb);
    Plaintext ab = rig.decrypted(rig.evaluator.multiply(a, b, rig.rlk));
    Plaintext ba = rig.decrypted(rig.evaluator.multiply(b, a, rig.rlk));
    expectSamePlain(ab, ba, 4);
}

TEST(FvAlgebra, MultiplicationDistributesOverAddition)
{
    Rig rig(smallParams(4, 4));
    Ciphertext a = rig.encryptor.encrypt(rig.randomPlain(8));
    Ciphertext b = rig.encryptor.encrypt(rig.randomPlain(9));
    Ciphertext c = rig.encryptor.encrypt(rig.randomPlain(10));

    Plaintext lhs = rig.decrypted(
        rig.evaluator.multiply(a, rig.evaluator.add(b, c), rig.rlk));
    Plaintext rhs = rig.decrypted(
        rig.evaluator.add(rig.evaluator.multiply(a, b, rig.rlk),
                          rig.evaluator.multiply(a, c, rig.rlk)));
    expectSamePlain(lhs, rhs, 4);
}

TEST(FvAlgebra, MultiplicationAssociationOrdersAgree)
{
    Rig rig(smallParams(2, 4));
    Ciphertext a = rig.encryptor.encrypt(rig.randomPlain(11));
    Ciphertext b = rig.encryptor.encrypt(rig.randomPlain(12));
    Ciphertext c = rig.encryptor.encrypt(rig.randomPlain(13));

    Plaintext lhs = rig.decrypted(rig.evaluator.multiply(
        rig.evaluator.multiply(a, b, rig.rlk), c, rig.rlk));
    Plaintext rhs = rig.decrypted(rig.evaluator.multiply(
        a, rig.evaluator.multiply(b, c, rig.rlk), rig.rlk));
    expectSamePlain(lhs, rhs, 2);
}

TEST(FvAlgebra, SubtractionOfSelfIsZero)
{
    Rig rig(smallParams());
    Ciphertext a = rig.encryptor.encrypt(rig.randomPlain(14));
    Plaintext zero = rig.decrypted(rig.evaluator.sub(a, a));
    for (uint64_t c : zero.coeffs)
        EXPECT_EQ(c % 16, 0u);
}

TEST(FvAlgebra, MultiplicativeIdentity)
{
    Rig rig(smallParams(16));
    Plaintext m = rig.randomPlain(15);
    Plaintext one;
    one.coeffs = {1};
    Ciphertext a = rig.encryptor.encrypt(m);
    Ciphertext e1 = rig.encryptor.encrypt(one);
    expectSamePlain(rig.decrypted(rig.evaluator.multiply(a, e1, rig.rlk)),
                    m, 16);
}

TEST(FvAlgebra, PlainOpsAgreeWithEncryptedOps)
{
    Rig rig(smallParams(16));
    Plaintext ma = rig.randomPlain(16);
    Plaintext mb = rig.randomPlain(17);
    Ciphertext a = rig.encryptor.encrypt(ma);

    // addPlain == add(encrypt)
    Ciphertext via_plain = a;
    rig.evaluator.addPlainInPlace(via_plain, mb);
    Ciphertext via_enc =
        rig.evaluator.add(a, rig.encryptor.encrypt(mb));
    expectSamePlain(rig.decrypted(via_plain), rig.decrypted(via_enc), 16);

    // multiplyPlain == multiply(encrypt)
    Plaintext prod_plain =
        rig.decrypted(rig.evaluator.multiplyPlain(a, mb));
    Plaintext prod_enc = rig.decrypted(rig.evaluator.multiply(
        a, rig.encryptor.encrypt(mb), rig.rlk));
    expectSamePlain(prod_plain, prod_enc, 16);
}

TEST(FvAlgebra, EncryptionIsRandomized)
{
    Rig rig(smallParams());
    Plaintext m = rig.randomPlain(18);
    Ciphertext a = rig.encryptor.encrypt(m);
    Ciphertext b = rig.encryptor.encrypt(m);
    EXPECT_NE(a[0], b[0]); // fresh randomness per encryption
    expectSamePlain(rig.decrypted(a), rig.decrypted(b), 16);
}

TEST(FvAlgebra, EncryptZeroDecryptsToZero)
{
    Rig rig(smallParams());
    Plaintext zero = rig.decrypted(rig.encryptor.encryptZero());
    for (uint64_t c : zero.coeffs)
        EXPECT_EQ(c % 16, 0u);
}

TEST(FvNoiseFailure, BudgetExhaustionBreaksDecryption)
{
    // One-prime q: a couple of squarings must exhaust the 30-bit budget
    // — the "noise threshold" / depth concept of Sec. II-A, observed.
    FvConfig config;
    config.degree = 256;
    config.plain_modulus = 2;
    config.sigma = 3.2;
    config.q_prime_count = 1;
    Rig rig(FvParams::create(config));

    Plaintext m;
    m.coeffs = {1, 1};
    Ciphertext ct = rig.encryptor.encrypt(m);
    EXPECT_GT(rig.decryptor.invariantNoiseBudget(ct), 0.0);

    // Reference squarings mod (x^n + 1, 2).
    auto square_plain = [](const Plaintext &p, size_t n) {
        Plaintext out;
        out.coeffs.assign(n, 0);
        for (size_t i = 0; i < p.coeffs.size(); ++i) {
            for (size_t j = 0; j < p.coeffs.size(); ++j) {
                if (!(p.coeffs[i] & p.coeffs[j] & 1))
                    continue;
                out.coeffs[(i + j) % n] ^= 1;
            }
        }
        return out;
    };

    Plaintext expect = m;
    bool failed = false;
    double last_budget = 64.0;
    for (int depth = 0; depth < 6 && !failed; ++depth) {
        ct = rig.evaluator.square(ct, rig.rlk);
        expect = square_plain(expect, 256);
        const double budget = rig.decryptor.invariantNoiseBudget(ct);
        Plaintext got = rig.decryptor.decrypt(ct);
        bool mismatch = false;
        for (size_t i = 0; i < 256; ++i) {
            uint64_t g = i < got.coeffs.size() ? got.coeffs[i] % 2 : 0;
            if (g != expect.coeffs[i])
                mismatch = true;
        }
        if (mismatch) {
            // Once decryption breaks, the remaining budget must be
            // (essentially) gone — the Sec. II-A noise threshold.
            EXPECT_LT(budget, 3.0);
            failed = true;
        } else {
            EXPECT_LT(budget, last_budget + 1e-9);
        }
        last_budget = budget;
    }
    EXPECT_TRUE(failed)
        << "decryption should fail within a few squarings at 30-bit q";
}

TEST(FvNoiseFailure, ModelAgreesBudgetShrinksWithSmallerQ)
{
    NoiseModel big(FvParams::create(smallParams(2, 4)->config()));
    NoiseModel small(FvParams::create(smallParams(2, 2)->config()));
    EXPECT_GT(big.freshBudgetBits(), small.freshBudgetBits());
    EXPECT_GE(big.supportedDepth(), small.supportedDepth());
}

TEST(FvPaperClaims, DepthFourAtPaperParameters)
{
    // Sec. III-A: the parameter set supports multiplicative depth 4.
    auto params = FvParams::paper(2);
    EXPECT_GE(NoiseModel(params).supportedDepth(), 4);

    Rig rig(params, 2027);
    Plaintext m;
    m.coeffs = {1, 1, 0, 1}; // sparse binary message
    Ciphertext ct = rig.encryptor.encrypt(m);
    // Reference plaintext squarings mod (x^n + 1, 2).
    auto square_plain = [&](const Plaintext &p) {
        const size_t n = params->degree();
        Plaintext out;
        out.coeffs.assign(n, 0);
        for (size_t i = 0; i < p.coeffs.size(); ++i) {
            for (size_t j = 0; j < p.coeffs.size(); ++j) {
                if (!(p.coeffs[i] & p.coeffs[j] & 1))
                    continue;
                size_t k = i + j;
                if (k < n)
                    out.coeffs[k] ^= 1;
                else
                    out.coeffs[k - n] ^= 1; // -1 == 1 mod 2
            }
        }
        return out;
    };

    Plaintext expect = m;
    for (int depth = 1; depth <= 4; ++depth) {
        ct = rig.evaluator.square(ct, rig.rlk);
        expect = square_plain(expect);
        const double budget = rig.decryptor.invariantNoiseBudget(ct);
        ASSERT_GT(budget, 0.0) << "depth " << depth;
        expectSamePlain(rig.decrypted(ct), expect, 2);
    }
}

TEST(FvParallel, MultithreadedEvaluatorIsBitIdentical)
{
    auto params = smallParams(4, 4);
    Rig rig(params, 91);
    Ciphertext a = rig.encryptor.encrypt(rig.randomPlain(50));
    Ciphertext b = rig.encryptor.encrypt(rig.randomPlain(51));

    Ciphertext serial = rig.evaluator.multiply(a, b, rig.rlk);
    setThreadCount(8);
    Ciphertext parallel = rig.evaluator.multiply(a, b, rig.rlk);
    setThreadCount(1);
    EXPECT_EQ(serial[0], parallel[0]);
    EXPECT_EQ(serial[1], parallel[1]);
}

TEST(FvParallel, ParallelForCoversAllIndices)
{
    setThreadCount(5);
    std::vector<std::atomic<int>> hits(103);
    parallelFor(103, [&](size_t i) { ++hits[i]; });
    setThreadCount(1);
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(FvTableV, Row1ParameterSetWorksEndToEnd)
{
    // Table V row 2: (n, log q) = (2^13, 360) — built and exercised,
    // not just estimated.
    auto params = FvParams::tableV(1, 2);
    EXPECT_EQ(params->degree(), 8192u);
    EXPECT_EQ(params->qBits(), 360);

    Rig rig(params, 31);
    Plaintext m0, m1;
    m0.coeffs = {1, 0, 1};
    m1.coeffs = {1, 1};
    Ciphertext prod = rig.evaluator.multiply(rig.encryptor.encrypt(m0),
                                             rig.encryptor.encrypt(m1),
                                             rig.rlk);
    // (1 + x^2)(1 + x) = 1 + x + x^2 + x^3 mod 2.
    Plaintext expect;
    expect.coeffs = {1, 1, 1, 1};
    expectSamePlain(rig.decrypted(prod), expect, 2);
    EXPECT_GT(rig.decryptor.invariantNoiseBudget(prod), 0.0);
}

} // namespace
} // namespace heat::fv
