/**
 * @file
 * Tests for the RNS substrate: CRT compose/decompose, the HPS fast base
 * converter (Lift q->Q) and the HPS scale-and-round (Scale Q->q), each
 * validated against exact BigInt references on random and adversarial
 * inputs.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "mp/bigint.h"
#include "rns/base_convert.h"
#include "rns/prime_gen.h"
#include "rns/rns_base.h"
#include "rns/scale_round.h"

namespace heat::rns {
namespace {

RnsBase
makeBase(size_t count, size_t degree = 4096, size_t skip = 0)
{
    auto primes = generateNttPrimes(30, degree, count + skip);
    primes.erase(primes.begin(), primes.begin() + skip);
    return RnsBase(primes);
}

mp::BigInt
randomBelow(Xoshiro256 &rng, const mp::BigInt &bound)
{
    const int bits = bound.bitLength();
    while (true) {
        std::vector<uint32_t> limbs((bits + 31) / 32);
        for (auto &l : limbs)
            l = static_cast<uint32_t>(rng.next());
        mp::BigInt v = mp::BigInt::fromLimbs(std::move(limbs)) %
                       mp::BigInt::powerOfTwo(bits);
        if (v < bound)
            return v;
    }
}

TEST(RnsBase, ComposeDecomposeRoundTrip)
{
    RnsBase base = makeBase(6);
    Xoshiro256 rng(11);
    for (int iter = 0; iter < 200; ++iter) {
        mp::BigInt x = randomBelow(rng, base.product());
        auto residues = base.decompose(x);
        EXPECT_EQ(base.compose(residues), x);
    }
}

TEST(RnsBase, ComposeEdgeValues)
{
    RnsBase base = makeBase(4);
    for (const mp::BigInt &x :
         {mp::BigInt(0), mp::BigInt(1), base.product() - mp::BigInt(1),
          base.product() / mp::BigInt(2)}) {
        EXPECT_EQ(base.compose(base.decompose(x)), x);
    }
}

TEST(RnsBase, CenteredComposeSign)
{
    RnsBase base = makeBase(3);
    mp::BigInt half = base.product() / mp::BigInt(2);
    // Small positive stays positive; q-1 becomes -1.
    EXPECT_EQ(base.composeCentered(base.decompose(mp::BigInt(5))),
              mp::BigInt(5));
    EXPECT_EQ(
        base.composeCentered(base.decompose(base.product() - mp::BigInt(7))),
        mp::BigInt(-7));
    // Values just above q/2 are negative.
    mp::BigInt x = half + mp::BigInt(1);
    EXPECT_TRUE(base.composeCentered(base.decompose(x)).isNegative());
}

TEST(RnsBase, CrtConstantsAreInverses)
{
    RnsBase base = makeBase(6);
    for (size_t i = 0; i < base.size(); ++i) {
        const Modulus &q_i = base.modulus(i);
        uint64_t qstar_mod =
            base.puncturedProduct(i).modUint64(q_i.value());
        EXPECT_EQ(q_i.mul(qstar_mod, base.crtInverse(i)), 1u);
    }
}

TEST(RnsBase, UniformResiduesAreConsistent)
{
    // CRT bijection: any residue combination corresponds to exactly one
    // x in [0, q); compose then decompose is the identity.
    RnsBase base = makeBase(5);
    Xoshiro256 rng(12);
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<uint64_t> residues(base.size());
        for (size_t i = 0; i < base.size(); ++i)
            residues[i] = rng.uniformBelow(base.modulus(i).value());
        auto round_trip = base.decompose(base.compose(residues));
        EXPECT_EQ(round_trip, residues);
    }
}

class BaseConvertTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{
};

TEST_P(BaseConvertTest, MatchesExactOnRandomInputs)
{
    const auto [kq, kp] = GetParam();
    RnsBase q = makeBase(kq);
    RnsBase p = makeBase(kp, 4096, kq);
    FastBaseConverter conv(q, p);

    Xoshiro256 rng(13);
    std::vector<uint64_t> out_fast(p.size()), out_exact(p.size());
    for (int iter = 0; iter < 500; ++iter) {
        mp::BigInt x = randomBelow(rng, q.product());
        auto in = q.decompose(x);
        conv.convert(in, out_fast);
        conv.convertExact(in, out_exact);
        EXPECT_EQ(out_fast, out_exact) << "x = " << x.toString();
    }
}

TEST_P(BaseConvertTest, CenteredSemantics)
{
    const auto [kq, kp] = GetParam();
    RnsBase q = makeBase(kq);
    RnsBase p = makeBase(kp, 4096, kq);
    FastBaseConverter conv(q, p);

    // Small x maps to x; q - s maps to -s.
    std::vector<uint64_t> out(p.size());
    for (uint64_t s : {uint64_t(1), uint64_t(12345), uint64_t(1) << 28}) {
        auto in = q.decompose(mp::BigInt::fromUint64(s));
        conv.convert(in, out);
        for (size_t j = 0; j < p.size(); ++j)
            EXPECT_EQ(out[j], s % p.modulus(j).value());

        auto in_neg = q.decompose(q.product() - mp::BigInt::fromUint64(s));
        conv.convert(in_neg, out);
        for (size_t j = 0; j < p.size(); ++j) {
            EXPECT_EQ(out[j],
                      p.modulus(j).negate(s % p.modulus(j).value()));
        }
    }
}

TEST_P(BaseConvertTest, BoundaryNeighborhood)
{
    // Near q/2 the centered representative flips sign; both choices are
    // valid lifts of x mod q, so accept either, but require the result
    // to represent x or x - q exactly.
    const auto [kq, kp] = GetParam();
    RnsBase q = makeBase(kq);
    RnsBase p = makeBase(kp, 4096, kq);
    FastBaseConverter conv(q, p);

    mp::BigInt half = q.product() / mp::BigInt(2);
    std::vector<uint64_t> out(p.size());
    for (int d = -3; d <= 3; ++d) {
        mp::BigInt x = half + mp::BigInt(d);
        auto in = q.decompose(x);
        conv.convert(in, out);
        bool matches_pos = true, matches_neg = true;
        for (size_t j = 0; j < p.size(); ++j) {
            mp::BigInt pj(static_cast<int64_t>(p.modulus(j).value()));
            if (out[j] != x.mod(pj).toUint64())
                matches_pos = false;
            if (out[j] != (x - q.product()).mod(pj).toUint64())
                matches_neg = false;
        }
        EXPECT_TRUE(matches_pos || matches_neg) << d;
    }
}

INSTANTIATE_TEST_SUITE_P(
    BaseSizes, BaseConvertTest,
    ::testing::Values(std::make_pair(size_t(6), size_t(7)), // paper set
                      std::make_pair(size_t(1), size_t(2)),
                      std::make_pair(size_t(3), size_t(4)),
                      std::make_pair(size_t(12), size_t(13))));

TEST(ScaleRound, MatchesExactOnRandomInputs)
{
    RnsBase q = makeBase(6);
    RnsBase p = makeBase(7, 4096, 6);
    RnsBase full = RnsBase::concat(q, p);
    for (uint64_t t : {uint64_t(2), uint64_t(256), uint64_t(65537)}) {
        ScaleRounder scaler(q, p, t);
        Xoshiro256 rng(14 + t);
        std::vector<uint64_t> out_fast(p.size()), out_exact(p.size());
        int mismatches = 0;
        for (int iter = 0; iter < 300; ++iter) {
            // Tensor-sized inputs: |x| <= n * (q/2)^2.
            mp::BigInt bound =
                (q.product() * q.product() >> 2) * mp::BigInt(4096);
            mp::BigInt x = randomBelow(rng, bound * mp::BigInt(2)) - bound;
            auto in = full.decompose(x.mod(full.product()));
            scaler.scale(in, out_fast);
            scaler.scaleExact(in, out_exact);
            if (out_fast != out_exact)
                ++mismatches;
        }
        // The 60-bit fixed point can differ from exact rounding only
        // within ~2^-30 of a rounding boundary: essentially never.
        EXPECT_LE(mismatches, 1) << "t = " << t;
    }
}

TEST(ScaleRound, ExactScalingOfKnownValues)
{
    RnsBase q = makeBase(3);
    RnsBase p = makeBase(4, 4096, 3);
    RnsBase full = RnsBase::concat(q, p);
    const uint64_t t = 2;
    ScaleRounder scaler(q, p, t);

    // x = q * m / t  =>  round(t x / q) = m exactly.
    std::vector<uint64_t> out(p.size());
    for (uint64_t m : {uint64_t(0), uint64_t(1), uint64_t(999)}) {
        mp::BigInt x = q.product() * mp::BigInt::fromUint64(m) /
                       mp::BigInt::fromUint64(t);
        auto in = full.decompose(x);
        scaler.scale(in, out);
        // t * x / q = m - (m mod t)/t-ish; with t | m exact.
        scaler.scaleExact(in, out);
        std::vector<uint64_t> fast(p.size());
        scaler.scale(in, fast);
        EXPECT_EQ(fast, out);
    }
}

TEST(ScaleRound, NegativeValuesScaleCorrectly)
{
    RnsBase q = makeBase(4);
    RnsBase p = makeBase(5, 4096, 4);
    RnsBase full = RnsBase::concat(q, p);
    ScaleRounder scaler(q, p, 2);

    // For x = -k*q/2 (t=2): round(t*x/q) = -k.
    std::vector<uint64_t> out(p.size());
    for (int64_t k = 1; k < 20; ++k) {
        mp::BigInt x = full.product() -
                       q.product() * mp::BigInt(k) / mp::BigInt(2);
        auto in = full.decompose(x);
        scaler.scale(in, out);
        for (size_t j = 0; j < p.size(); ++j) {
            mp::BigInt pj(static_cast<int64_t>(p.modulus(j).value()));
            EXPECT_EQ(out[j], mp::BigInt(-k).mod(pj).toUint64());
        }
    }
}

TEST(ScaleRound, RoundingIsHalfUp)
{
    RnsBase q = makeBase(2);
    RnsBase p = makeBase(3, 4096, 2);
    RnsBase full = RnsBase::concat(q, p);
    ScaleRounder scaler(q, p, 2);

    // x = floor(q/4)+1 (t=2): t*x/q is just above 1/2 -> rounds to 1.
    mp::BigInt x = q.product() / mp::BigInt(4) + mp::BigInt(1);
    auto in = full.decompose(x);
    std::vector<uint64_t> out(p.size());
    scaler.scaleExact(in, out);
    for (size_t j = 0; j < p.size(); ++j)
        EXPECT_EQ(out[j], 1u);
}

TEST(FastBaseConverter, ReciprocalPrecisionMatchesPaper)
{
    // For 30-bit primes the fixed point is 89 fractional bits and each
    // reciprocal has at most 60 significant bits (top 29 are zero).
    RnsBase q = makeBase(6);
    RnsBase p = makeBase(7, 4096, 6);
    FastBaseConverter conv(q, p);
    EXPECT_EQ(conv.reciprocalFracBits(), 89);
    for (size_t i = 0; i < q.size(); ++i)
        EXPECT_LE(bitLength(conv.reciprocal(i)), 61);
}

} // namespace
} // namespace heat::rns
