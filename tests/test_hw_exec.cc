/**
 * @file
 * Instruction-level tests of the coprocessor's functional execution:
 * each opcode is checked in isolation against the software kernels, and
 * the layout/batch discipline (the REARRANGE contract of the paired
 * memory scheme) is verified to reject malformed programs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/panic.h"
#include "common/random.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "hw/program_builder.h"
#include "ntt/ntt.h"

namespace heat::hw {
namespace {

struct ExecRig
{
    ExecRig()
    {
        fv::FvConfig cfg;
        cfg.degree = 256;
        cfg.plain_modulus = 4;
        cfg.sigma = 3.2;
        cfg.q_prime_count = 3;
        params = fv::FvParams::create(cfg);
        config = HwConfig::paper();
        config.n_rpaus = 4;
        cp = std::make_unique<Coprocessor>(params, config);
    }

    ntt::RnsPoly
    randomQPoly(uint64_t seed) const
    {
        Xoshiro256 rng(seed);
        ntt::RnsPoly poly(params->qBase(), params->degree());
        for (size_t i = 0; i < poly.residueCount(); ++i) {
            for (auto &x : poly.residue(i))
                x = rng.uniformBelow(params->qBase()->modulus(i).value());
        }
        return poly;
    }

    static Instruction
    instr(Opcode op, PolyId dst, PolyId s0 = kNoPoly, PolyId s1 = kNoPoly,
          uint8_t batch = 0)
    {
        Instruction i;
        i.op = op;
        i.dst = dst;
        i.src0 = s0;
        i.src1 = s1;
        i.batch = batch;
        return i;
    }

    void
    run(std::initializer_list<Instruction> instrs)
    {
        Program p;
        p.instrs = instrs;
        cp->execute(p);
    }

    std::shared_ptr<const fv::FvParams> params;
    HwConfig config;
    std::unique_ptr<Coprocessor> cp;
};

TEST(HwExec, NttInstructionMatchesSoftwareNtt)
{
    ExecRig rig;
    ntt::RnsPoly poly = rig.randomQPoly(1);
    PolyId id = rig.cp->uploadPoly(poly);
    rig.run({ExecRig::instr(Opcode::kRearrange, id),
             ExecRig::instr(Opcode::kNtt, id)});

    ntt::RnsPoly expect = poly;
    expect.toNtt(rig.params->qContext());
    EXPECT_EQ(rig.cp->memory().record(id).data, expect.data());
}

TEST(HwExec, InttUndoesNtt)
{
    ExecRig rig;
    ntt::RnsPoly poly = rig.randomQPoly(2);
    PolyId id = rig.cp->uploadPoly(poly);
    rig.run({ExecRig::instr(Opcode::kRearrange, id),
             ExecRig::instr(Opcode::kNtt, id),
             ExecRig::instr(Opcode::kIntt, id),
             ExecRig::instr(Opcode::kRearrange, id)});
    EXPECT_EQ(rig.cp->memory().record(id).data, poly.data());
    EXPECT_EQ(rig.cp->memory().record(id).layout[0], Layout::kNatural);
}

TEST(HwExec, CoeffOpsMatchSoftware)
{
    ExecRig rig;
    ntt::RnsPoly a = rig.randomQPoly(3);
    ntt::RnsPoly b = rig.randomQPoly(4);
    PolyId ia = rig.cp->uploadPoly(a);
    PolyId ib = rig.cp->uploadPoly(b);
    PolyId sum = rig.cp->memory().allocate(BaseTag::kQ);
    PolyId diff = rig.cp->memory().allocate(BaseTag::kQ);
    PolyId prod = rig.cp->memory().allocate(BaseTag::kQ);

    rig.run({ExecRig::instr(Opcode::kCoeffAdd, sum, ia, ib),
             ExecRig::instr(Opcode::kCoeffSub, diff, ia, ib),
             ExecRig::instr(Opcode::kCoeffMul, prod, ia, ib)});

    ntt::RnsPoly expect_sum = a;
    expect_sum.addInPlace(b);
    ntt::RnsPoly expect_diff = a;
    expect_diff.subInPlace(b);
    EXPECT_EQ(rig.cp->memory().record(sum).data, expect_sum.data());
    EXPECT_EQ(rig.cp->memory().record(diff).data, expect_diff.data());
    // Coefficient-domain pointwise product against direct modmul.
    for (size_t k = 0; k < a.residueCount(); ++k) {
        const rns::Modulus &q = rig.params->qBase()->modulus(k);
        auto got = rig.cp->memory().record(prod).data;
        for (size_t j = 0; j < rig.params->degree(); ++j) {
            EXPECT_EQ(got[k * rig.params->degree() + j],
                      q.mul(a.residue(k)[j], b.residue(k)[j]));
        }
    }
}

TEST(HwExec, LiftInstructionMatchesConverter)
{
    ExecRig rig;
    ntt::RnsPoly poly = rig.randomQPoly(5);
    PolyId id = rig.cp->uploadPoly(poly);
    rig.run({ExecRig::instr(Opcode::kLift, id)});

    const auto &conv = rig.params->liftConverter();
    const size_t n = rig.params->degree();
    const size_t kq = rig.params->qBase()->size();
    const size_t kp = rig.params->pBase()->size();
    const auto &rec = rig.cp->memory().record(id);
    ASSERT_EQ(rec.base, BaseTag::kFull);

    std::vector<uint64_t> in(kq), out(kp);
    for (size_t j = 0; j < n; j += 37) { // sample coefficients
        poly.gatherCoefficient(j, in);
        conv.convert(in, out);
        for (size_t i = 0; i < kp; ++i)
            EXPECT_EQ(rec.data[(kq + i) * n + j], out[i]) << j;
    }
}

TEST(HwExec, ScaleDigitsBroadcastResidues)
{
    ExecRig rig;
    // Build a full-base polynomial via lift, then scale with digits.
    ntt::RnsPoly poly = rig.randomQPoly(6);
    PolyId src = rig.cp->uploadPoly(poly);
    PolyId dst = rig.cp->memory().allocate(BaseTag::kQ);
    const size_t kq = rig.params->qBase()->size();
    std::vector<PolyId> digits;
    for (size_t i = 0; i < kq; ++i)
        digits.push_back(rig.cp->memory().allocate(BaseTag::kQ));

    Instruction scale = ExecRig::instr(Opcode::kScale, dst, src);
    scale.extra = digits;
    Program p;
    p.instrs = {ExecRig::instr(Opcode::kLift, src), scale};
    rig.cp->execute(p);

    // Digit i must equal residue i of dst reduced mod every channel.
    const size_t n = rig.params->degree();
    const auto &dst_rec = rig.cp->memory().record(dst);
    for (size_t i = 0; i < kq; ++i) {
        const auto &dig = rig.cp->memory().record(digits[i]);
        for (size_t c = 0; c < kq; ++c) {
            const rns::Modulus &qc = rig.params->qBase()->modulus(c);
            for (size_t j = 0; j < n; j += 41) {
                EXPECT_EQ(dig.data[c * n + j],
                          qc.reduce(dst_rec.data[i * n + j]));
            }
        }
    }
}

TEST(HwExec, NttWithoutRearrangePanics)
{
    ExecRig rig;
    PolyId id = rig.cp->uploadPoly(rig.randomQPoly(7));
    Program p;
    p.instrs = {ExecRig::instr(Opcode::kNtt, id)};
    EXPECT_THROW(rig.cp->execute(p), PanicError);
}

TEST(HwExec, RearrangeOnNttDomainPanics)
{
    ExecRig rig;
    PolyId id = rig.cp->uploadPoly(rig.randomQPoly(8));
    Program good;
    good.instrs = {ExecRig::instr(Opcode::kRearrange, id),
                   ExecRig::instr(Opcode::kNtt, id)};
    rig.cp->execute(good);
    Program bad;
    bad.instrs = {ExecRig::instr(Opcode::kRearrange, id)};
    EXPECT_THROW(rig.cp->execute(bad), PanicError);
}

TEST(HwExec, CoeffOpLayoutMismatchPanics)
{
    ExecRig rig;
    PolyId a = rig.cp->uploadPoly(rig.randomQPoly(9));
    PolyId b = rig.cp->uploadPoly(rig.randomQPoly(10));
    PolyId c = rig.cp->memory().allocate(BaseTag::kQ);
    // Transform only a: layouts now differ.
    Program prep;
    prep.instrs = {ExecRig::instr(Opcode::kRearrange, a),
                   ExecRig::instr(Opcode::kNtt, a)};
    rig.cp->execute(prep);
    Program bad;
    bad.instrs = {ExecRig::instr(Opcode::kCoeffAdd, c, a, b)};
    EXPECT_THROW(rig.cp->execute(bad), PanicError);
}

TEST(HwExec, ScaleRequiresNaturalOrder)
{
    ExecRig rig;
    PolyId src = rig.cp->uploadPoly(rig.randomQPoly(11));
    PolyId dst = rig.cp->memory().allocate(BaseTag::kQ);
    Program prep;
    prep.instrs = {ExecRig::instr(Opcode::kLift, src),
                   ExecRig::instr(Opcode::kRearrange, src, kNoPoly,
                                  kNoPoly, 0)};
    rig.cp->execute(prep);
    Program bad;
    bad.instrs = {ExecRig::instr(Opcode::kScale, dst, src)};
    EXPECT_THROW(rig.cp->execute(bad), PanicError);
}

TEST(HwExec, KeyLoadWithoutKeysPanics)
{
    ExecRig rig; // no RelinKeys attached
    PolyId k0 = rig.cp->memory().allocate(BaseTag::kQ);
    PolyId k1 = rig.cp->memory().allocate(BaseTag::kQ);
    Instruction load = ExecRig::instr(Opcode::kKeyLoad, kNoPoly);
    load.extra = {k0, k1};
    Program p;
    p.instrs = {load};
    EXPECT_THROW(rig.cp->execute(p), PanicError);
}

TEST(HwExec, BatchOneTouchesOnlyExtensionResidues)
{
    ExecRig rig;
    ntt::RnsPoly poly = rig.randomQPoly(12);
    PolyId id = rig.cp->uploadPoly(poly);
    Program p;
    p.instrs = {ExecRig::instr(Opcode::kLift, id),
                ExecRig::instr(Opcode::kRearrange, id, kNoPoly, kNoPoly, 1),
                ExecRig::instr(Opcode::kNtt, id, kNoPoly, kNoPoly, 1)};
    rig.cp->execute(p);
    const auto &rec = rig.cp->memory().record(id);
    const size_t kq = rig.params->qBase()->size();
    for (size_t k = 0; k < rec.layout.size(); ++k) {
        EXPECT_EQ(rec.layout[k],
                  k < kq ? Layout::kNatural : Layout::kNttDomain)
            << k;
    }
    // The q residues' data is untouched.
    for (size_t k = 0; k < kq; ++k) {
        for (size_t j = 0; j < rig.params->degree(); ++j) {
            ASSERT_EQ(rec.data[k * rig.params->degree() + j],
                      poly.residue(k)[j]);
        }
    }
}

TEST(HwExec, ExecStatsAccumulateCorrectly)
{
    ExecRig rig;
    PolyId a = rig.cp->uploadPoly(rig.randomQPoly(13));
    PolyId b = rig.cp->uploadPoly(rig.randomQPoly(14));
    PolyId c = rig.cp->memory().allocate(BaseTag::kQ);
    Program p;
    p.instrs = {ExecRig::instr(Opcode::kCoeffAdd, c, a, b),
                ExecRig::instr(Opcode::kCoeffAdd, c, c, b),
                ExecRig::instr(Opcode::kRearrange, c)};
    ExecStats stats = rig.cp->execute(p);
    EXPECT_EQ(stats.per_op[Opcode::kCoeffAdd].calls, 2u);
    EXPECT_EQ(stats.per_op[Opcode::kRearrange].calls, 1u);
    EXPECT_EQ(stats.fpga_cycles,
              stats.per_op[Opcode::kCoeffAdd].fpga_cycles +
                  stats.per_op[Opcode::kRearrange].fpga_cycles);
    EXPECT_DOUBLE_EQ(stats.dma_us, 0.0);
}

TEST(HwExec, DisassemblerRendersInstructions)
{
    Instruction ntt = ExecRig::instr(Opcode::kNtt, 3, kNoPoly, kNoPoly, 1);
    EXPECT_EQ(disassemble(ntt), "ntt p3 b1");
    Instruction mul = ExecRig::instr(Opcode::kCoeffMul, 5, 1, 2);
    EXPECT_EQ(disassemble(mul), "cmul p5 p1 p2 b0");
    Instruction load = ExecRig::instr(Opcode::kKeyLoad, kNoPoly);
    load.aux = 4;
    load.extra = {7, 8};
    EXPECT_EQ(disassemble(load), "kload digit=4 -> p7 p8");
}

TEST(HwExec, ProgramListingCoversAllInstructions)
{
    ExecRig rig;
    ntt::RnsPoly zero(rig.params->qBase(), rig.params->degree());
    std::array<PolyId, 2> a{rig.cp->uploadPoly(zero),
                            rig.cp->uploadPoly(zero)};
    std::array<PolyId, 2> b{rig.cp->uploadPoly(zero),
                            rig.cp->uploadPoly(zero)};
    ProgramBuilder builder(*rig.cp);
    Program p = builder.buildMult(a, b);
    std::string listing = p.listing();
    // One line per instruction plus the outputs line.
    size_t lines = std::count(listing.begin(), listing.end(), '\n');
    EXPECT_EQ(lines, p.instrs.size() + 1);
    EXPECT_NE(listing.find("lift"), std::string::npos);
    EXPECT_NE(listing.find("scale"), std::string::npos);
    EXPECT_NE(listing.find("kload digit=0"), std::string::npos);
    EXPECT_NE(listing.find("outputs: p"), std::string::npos);
}

TEST(HwExec, TraditionalArchIsFunctionallyEquivalent)
{
    // The traditional-CRT coprocessor must produce valid lifts too
    // (exact arithmetic path).
    ExecRig rig;
    HwConfig trad = rig.config;
    trad.lift_scale_arch = LiftScaleArch::kTraditional;
    Coprocessor cp_trad(rig.params, trad);

    ntt::RnsPoly poly = rig.randomQPoly(15);
    PolyId id = cp_trad.uploadPoly(poly);
    Program p;
    p.instrs = {ExecRig::instr(Opcode::kLift, id)};
    cp_trad.execute(p);

    const auto &conv = rig.params->liftConverter();
    const size_t n = rig.params->degree();
    const size_t kq = rig.params->qBase()->size();
    const size_t kp = rig.params->pBase()->size();
    std::vector<uint64_t> in(kq), out(kp);
    const auto &rec = cp_trad.memory().record(id);
    for (size_t j = 0; j < n; j += 29) {
        poly.gatherCoefficient(j, in);
        conv.convertExact(in, out);
        for (size_t i = 0; i < kp; ++i)
            EXPECT_EQ(rec.data[(kq + i) * n + j], out[i]) << j;
    }
}

} // namespace
} // namespace heat::hw
