/**
 * @file
 * Tests for the negacyclic NTT and the RnsPoly container: transform
 * round-trips, convolution against the schoolbook reference, linearity,
 * and element-wise polynomial operations.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/panic.h"

#include "common/random.h"
#include "ntt/ntt.h"
#include "ntt/rns_poly.h"
#include "rns/prime_gen.h"

namespace heat::ntt {
namespace {

class NttDegreeTest : public ::testing::TestWithParam<size_t>
{
  protected:
    rns::Modulus
    modulusFor(size_t n)
    {
        auto primes = rns::generateNttPrimes(30, n, 1);
        return rns::Modulus(primes[0]);
    }
};

TEST_P(NttDegreeTest, ForwardInverseRoundTrip)
{
    const size_t n = GetParam();
    rns::Modulus q = modulusFor(n);
    NttTables tables(q, n);
    Xoshiro256 rng(n);

    std::vector<uint64_t> a(n), orig(n);
    for (size_t i = 0; i < n; ++i)
        a[i] = orig[i] = rng.uniformBelow(q.value());
    forwardNtt(a, tables);
    inverseNtt(a, tables);
    EXPECT_EQ(a, orig);
}

TEST_P(NttDegreeTest, InverseForwardRoundTrip)
{
    const size_t n = GetParam();
    rns::Modulus q = modulusFor(n);
    NttTables tables(q, n);
    Xoshiro256 rng(n + 1);

    std::vector<uint64_t> a(n), orig(n);
    for (size_t i = 0; i < n; ++i)
        a[i] = orig[i] = rng.uniformBelow(q.value());
    inverseNtt(a, tables);
    forwardNtt(a, tables);
    EXPECT_EQ(a, orig);
}

TEST_P(NttDegreeTest, ConvolutionMatchesSchoolbook)
{
    const size_t n = GetParam();
    if (n > 512)
        GTEST_SKIP() << "schoolbook reference too slow beyond n=512";
    rns::Modulus q = modulusFor(n);
    NttTables tables(q, n);
    Xoshiro256 rng(n + 2);

    std::vector<uint64_t> a(n), b(n), expect(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = rng.uniformBelow(q.value());
        b[i] = rng.uniformBelow(q.value());
    }
    negacyclicMulReference(a, b, expect, q);

    forwardNtt(a, tables);
    forwardNtt(b, tables);
    for (size_t i = 0; i < n; ++i)
        a[i] = q.mul(a[i], b[i]);
    inverseNtt(a, tables);
    EXPECT_EQ(a, expect);
}

TEST_P(NttDegreeTest, NegacyclicWraparound)
{
    // x^(n/2) * x^(n/2) = x^n = -1.
    const size_t n = GetParam();
    rns::Modulus q = modulusFor(n);
    NttTables tables(q, n);

    std::vector<uint64_t> a(n, 0), b(n, 0);
    a[n / 2] = 1;
    b[n / 2] = 1;
    forwardNtt(a, tables);
    forwardNtt(b, tables);
    for (size_t i = 0; i < n; ++i)
        a[i] = q.mul(a[i], b[i]);
    inverseNtt(a, tables);
    EXPECT_EQ(a[0], q.value() - 1);
    for (size_t i = 1; i < n; ++i)
        EXPECT_EQ(a[i], 0u) << i;
}

TEST_P(NttDegreeTest, Linearity)
{
    const size_t n = GetParam();
    rns::Modulus q = modulusFor(n);
    NttTables tables(q, n);
    Xoshiro256 rng(n + 3);

    std::vector<uint64_t> a(n), b(n), sum(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = rng.uniformBelow(q.value());
        b[i] = rng.uniformBelow(q.value());
        sum[i] = q.add(a[i], b[i]);
    }
    forwardNtt(a, tables);
    forwardNtt(b, tables);
    forwardNtt(sum, tables);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(sum[i], q.add(a[i], b[i]));
}

TEST_P(NttDegreeTest, ConstantPolynomialIsFixedPoint)
{
    // NTT of the constant c is c in every slot.
    const size_t n = GetParam();
    rns::Modulus q = modulusFor(n);
    NttTables tables(q, n);

    std::vector<uint64_t> a(n, 0);
    a[0] = 12345 % q.value();
    forwardNtt(a, tables);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(a[i], 12345 % q.value());
}

INSTANTIATE_TEST_SUITE_P(Degrees, NttDegreeTest,
                         ::testing::Values(size_t(8), size_t(16),
                                           size_t(64), size_t(256),
                                           size_t(1024), size_t(4096)));

class RnsPolyTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto primes = rns::generateNttPrimes(30, kN, 3);
        base_ = std::make_shared<const rns::RnsBase>(primes);
        context_ = NttContext(*base_, kN);
    }

    static constexpr size_t kN = 256;
    std::shared_ptr<const rns::RnsBase> base_;
    NttContext context_;
};

TEST_F(RnsPolyTest, ZeroInitialized)
{
    RnsPoly p(base_, kN);
    for (size_t i = 0; i < p.residueCount(); ++i) {
        for (uint64_t x : p.residue(i))
            EXPECT_EQ(x, 0u);
    }
}

TEST_F(RnsPolyTest, AddSubInverse)
{
    Xoshiro256 rng(21);
    RnsPoly a(base_, kN), b(base_, kN);
    for (size_t i = 0; i < a.residueCount(); ++i) {
        for (size_t j = 0; j < kN; ++j) {
            a.residue(i)[j] = rng.uniformBelow(base_->modulus(i).value());
            b.residue(i)[j] = rng.uniformBelow(base_->modulus(i).value());
        }
    }
    RnsPoly c = a;
    c.addInPlace(b);
    c.subInPlace(b);
    EXPECT_EQ(c, a);
}

TEST_F(RnsPolyTest, NegateTwiceIsIdentity)
{
    Xoshiro256 rng(22);
    RnsPoly a(base_, kN);
    for (size_t i = 0; i < a.residueCount(); ++i) {
        for (size_t j = 0; j < kN; ++j)
            a.residue(i)[j] = rng.uniformBelow(base_->modulus(i).value());
    }
    RnsPoly b = a;
    b.negateInPlace();
    b.negateInPlace();
    EXPECT_EQ(b, a);
}

TEST_F(RnsPolyTest, NttMulMatchesSchoolbookPerResidue)
{
    Xoshiro256 rng(23);
    RnsPoly a(base_, kN), b(base_, kN);
    for (size_t i = 0; i < a.residueCount(); ++i) {
        for (size_t j = 0; j < kN; ++j) {
            a.residue(i)[j] = rng.uniformBelow(base_->modulus(i).value());
            b.residue(i)[j] = rng.uniformBelow(base_->modulus(i).value());
        }
    }
    // Schoolbook per residue.
    RnsPoly expect(base_, kN);
    for (size_t i = 0; i < a.residueCount(); ++i) {
        std::vector<uint64_t> out(kN);
        negacyclicMulReference(a.residue(i), b.residue(i), out,
                               base_->modulus(i));
        std::copy(out.begin(), out.end(), expect.residue(i).begin());
    }

    a.toNtt(context_);
    b.toNtt(context_);
    a.mulPointwiseInPlace(b);
    a.toCoeff(context_);
    EXPECT_EQ(a.data(), expect.data());
}

TEST_F(RnsPolyTest, GatherScatterRoundTrip)
{
    Xoshiro256 rng(24);
    RnsPoly a(base_, kN);
    for (size_t i = 0; i < a.residueCount(); ++i) {
        for (size_t j = 0; j < kN; ++j)
            a.residue(i)[j] = rng.uniformBelow(base_->modulus(i).value());
    }
    RnsPoly b(base_, kN);
    std::vector<uint64_t> buf(a.residueCount());
    for (size_t j = 0; j < kN; ++j) {
        a.gatherCoefficient(j, buf);
        b.scatterCoefficient(j, buf);
    }
    EXPECT_EQ(a, b);
}

TEST_F(RnsPolyTest, FromBigCoefficientsNegative)
{
    std::vector<mp::BigInt> coeffs = {mp::BigInt(-1), mp::BigInt(5),
                                      mp::BigInt(-100)};
    RnsPoly p = RnsPoly::fromBigCoefficients(base_, kN, coeffs);
    for (size_t i = 0; i < p.residueCount(); ++i) {
        const uint64_t q_i = base_->modulus(i).value();
        EXPECT_EQ(p.residue(i)[0], q_i - 1);
        EXPECT_EQ(p.residue(i)[1], 5u);
        EXPECT_EQ(p.residue(i)[2], q_i - 100);
    }
    EXPECT_EQ(p.coefficientCentered(0), mp::BigInt(-1));
    EXPECT_EQ(p.coefficientCentered(2), mp::BigInt(-100));
}

TEST_F(RnsPolyTest, MulScalarInPlace)
{
    Xoshiro256 rng(25);
    RnsPoly a(base_, kN);
    for (size_t i = 0; i < a.residueCount(); ++i) {
        for (size_t j = 0; j < kN; ++j)
            a.residue(i)[j] = rng.uniformBelow(base_->modulus(i).value());
    }
    // Scalar 1 leaves the polynomial unchanged; unit-vector scalar zeroes
    // all but one channel.
    RnsPoly b = a;
    std::vector<uint64_t> ones(a.residueCount(), 1);
    b.mulScalarInPlace(ones);
    EXPECT_EQ(b, a);

    std::vector<uint64_t> unit(a.residueCount(), 0);
    unit[1] = 1;
    b.mulScalarInPlace(unit);
    for (size_t i = 0; i < b.residueCount(); ++i) {
        for (size_t j = 0; j < kN; ++j) {
            EXPECT_EQ(b.residue(i)[j], i == 1 ? a.residue(i)[j] : 0u);
        }
    }
}

TEST_F(RnsPolyTest, FormMismatchPanics)
{
    RnsPoly a(base_, kN), b(base_, kN);
    a.toNtt(context_);
    EXPECT_THROW(a.addInPlace(b), PanicError);
    EXPECT_THROW(b.mulPointwiseInPlace(a), PanicError);
    EXPECT_THROW(a.toNtt(context_), PanicError);
}

} // namespace
} // namespace heat::ntt
