/**
 * @file
 * Tests for the negacyclic NTT and the RnsPoly container: transform
 * round-trips, convolution against the schoolbook reference, linearity,
 * and element-wise polynomial operations.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/panic.h"

#include "common/random.h"
#include "ntt/ntt.h"
#include "ntt/rns_poly.h"
#include "rns/prime_gen.h"

namespace heat::ntt {
namespace {

// --- Independent O(n log n) negacyclic reference ------------------------
//
// Used so ConvolutionMatchesSchoolbook can run at every parameterized
// degree (the schoolbook is quadratic and was skipped beyond n = 512).
// Shares nothing with the library's transform: recursive textbook
// Cooley-Tukey, plain 128-bit modular arithmetic, no tables, and its
// own primitive-root search. Cross-checked against the schoolbook at
// small degrees below.

uint64_t
mulMod(uint64_t a, uint64_t b, uint64_t q)
{
    return static_cast<uint64_t>(static_cast<unsigned __int128>(a) * b %
                                 q);
}

uint64_t
powMod(uint64_t base, uint64_t exp, uint64_t q)
{
    uint64_t r = 1;
    base %= q;
    for (; exp != 0; exp >>= 1) {
        if (exp & 1)
            r = mulMod(r, base, q);
        base = mulMod(base, base, q);
    }
    return r;
}

/** Smallest psi of order exactly 2n mod q (q prime, q = 1 mod 2n). */
uint64_t
findPsi(uint64_t q, size_t n)
{
    for (uint64_t g = 2;; ++g) {
        const uint64_t cand = powMod(g, (q - 1) / (2 * n), q);
        // psi^n == -1 forces order exactly 2n (n is a power of two).
        if (powMod(cand, n, q) == q - 1)
            return cand;
    }
}

/** Recursive radix-2 DFT mod q; omega is a primitive a.size()-th root. */
void
recursiveNtt(std::vector<uint64_t> &a, uint64_t omega, uint64_t q)
{
    const size_t n = a.size();
    if (n == 1)
        return;
    std::vector<uint64_t> even(n / 2), odd(n / 2);
    for (size_t i = 0; i < n / 2; ++i) {
        even[i] = a[2 * i];
        odd[i] = a[2 * i + 1];
    }
    const uint64_t omega2 = mulMod(omega, omega, q);
    recursiveNtt(even, omega2, q);
    recursiveNtt(odd, omega2, q);
    uint64_t w = 1;
    for (size_t i = 0; i < n / 2; ++i) {
        const uint64_t t = mulMod(w, odd[i], q);
        a[i] = (even[i] + t) % q;
        a[i + n / 2] = (even[i] + q - t) % q;
        w = mulMod(w, omega, q);
    }
}

/** Negacyclic a*b mod (x^n + 1, q) via the psi-weighted cyclic DFT. */
std::vector<uint64_t>
negacyclicMulFast(const std::vector<uint64_t> &a,
                  const std::vector<uint64_t> &b, uint64_t q)
{
    const size_t n = a.size();
    const uint64_t psi = findPsi(q, n);
    const uint64_t omega = mulMod(psi, psi, q);

    std::vector<uint64_t> fa(n), fb(n);
    uint64_t w = 1;
    for (size_t i = 0; i < n; ++i) {
        fa[i] = mulMod(a[i], w, q);
        fb[i] = mulMod(b[i], w, q);
        w = mulMod(w, psi, q);
    }
    recursiveNtt(fa, omega, q);
    recursiveNtt(fb, omega, q);
    for (size_t i = 0; i < n; ++i)
        fa[i] = mulMod(fa[i], fb[i], q);
    recursiveNtt(fa, powMod(omega, q - 2, q), q);

    const uint64_t inv_psi = powMod(psi, q - 2, q);
    w = powMod(n % q, q - 2, q); // 1/n, then 1/(n psi^i)
    for (size_t i = 0; i < n; ++i) {
        fa[i] = mulMod(fa[i], w, q);
        w = mulMod(w, inv_psi, q);
    }
    return fa;
}

class NttDegreeTest : public ::testing::TestWithParam<size_t>
{
  protected:
    rns::Modulus
    modulusFor(size_t n)
    {
        auto primes = rns::generateNttPrimes(30, n, 1);
        return rns::Modulus(primes[0]);
    }
};

TEST_P(NttDegreeTest, ForwardInverseRoundTrip)
{
    const size_t n = GetParam();
    rns::Modulus q = modulusFor(n);
    NttTables tables(q, n);
    Xoshiro256 rng(n);

    std::vector<uint64_t> a(n), orig(n);
    for (size_t i = 0; i < n; ++i)
        a[i] = orig[i] = rng.uniformBelow(q.value());
    forwardNtt(a, tables);
    inverseNtt(a, tables);
    EXPECT_EQ(a, orig);
}

TEST_P(NttDegreeTest, InverseForwardRoundTrip)
{
    const size_t n = GetParam();
    rns::Modulus q = modulusFor(n);
    NttTables tables(q, n);
    Xoshiro256 rng(n + 1);

    std::vector<uint64_t> a(n), orig(n);
    for (size_t i = 0; i < n; ++i)
        a[i] = orig[i] = rng.uniformBelow(q.value());
    inverseNtt(a, tables);
    forwardNtt(a, tables);
    EXPECT_EQ(a, orig);
}

TEST_P(NttDegreeTest, ConvolutionMatchesSchoolbook)
{
    const size_t n = GetParam();
    rns::Modulus q = modulusFor(n);
    NttTables tables(q, n);
    Xoshiro256 rng(n + 2);

    std::vector<uint64_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = rng.uniformBelow(q.value());
        b[i] = rng.uniformBelow(q.value());
    }
    const std::vector<uint64_t> expect =
        negacyclicMulFast(a, b, q.value());
    if (n <= 512) {
        // Validate the fast reference itself against the schoolbook
        // where the quadratic cost is affordable.
        std::vector<uint64_t> school(n);
        negacyclicMulReference(a, b, school, q);
        ASSERT_EQ(expect, school);
    }

    forwardNtt(a, tables);
    forwardNtt(b, tables);
    for (size_t i = 0; i < n; ++i)
        a[i] = q.mul(a[i], b[i]);
    inverseNtt(a, tables);
    EXPECT_EQ(a, expect);
}

TEST_P(NttDegreeTest, NegacyclicWraparound)
{
    // x^(n/2) * x^(n/2) = x^n = -1.
    const size_t n = GetParam();
    rns::Modulus q = modulusFor(n);
    NttTables tables(q, n);

    std::vector<uint64_t> a(n, 0), b(n, 0);
    a[n / 2] = 1;
    b[n / 2] = 1;
    forwardNtt(a, tables);
    forwardNtt(b, tables);
    for (size_t i = 0; i < n; ++i)
        a[i] = q.mul(a[i], b[i]);
    inverseNtt(a, tables);
    EXPECT_EQ(a[0], q.value() - 1);
    for (size_t i = 1; i < n; ++i)
        EXPECT_EQ(a[i], 0u) << i;
}

TEST_P(NttDegreeTest, Linearity)
{
    const size_t n = GetParam();
    rns::Modulus q = modulusFor(n);
    NttTables tables(q, n);
    Xoshiro256 rng(n + 3);

    std::vector<uint64_t> a(n), b(n), sum(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = rng.uniformBelow(q.value());
        b[i] = rng.uniformBelow(q.value());
        sum[i] = q.add(a[i], b[i]);
    }
    forwardNtt(a, tables);
    forwardNtt(b, tables);
    forwardNtt(sum, tables);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(sum[i], q.add(a[i], b[i]));
}

TEST_P(NttDegreeTest, ConstantPolynomialIsFixedPoint)
{
    // NTT of the constant c is c in every slot.
    const size_t n = GetParam();
    rns::Modulus q = modulusFor(n);
    NttTables tables(q, n);

    std::vector<uint64_t> a(n, 0);
    a[0] = 12345 % q.value();
    forwardNtt(a, tables);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(a[i], 12345 % q.value());
}

INSTANTIATE_TEST_SUITE_P(Degrees, NttDegreeTest,
                         ::testing::Values(size_t(8), size_t(16),
                                           size_t(64), size_t(256),
                                           size_t(1024), size_t(4096)));

class RnsPolyTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto primes = rns::generateNttPrimes(30, kN, 3);
        base_ = std::make_shared<const rns::RnsBase>(primes);
        context_ = NttContext(*base_, kN);
    }

    static constexpr size_t kN = 256;
    std::shared_ptr<const rns::RnsBase> base_;
    NttContext context_;
};

TEST_F(RnsPolyTest, ZeroInitialized)
{
    RnsPoly p(base_, kN);
    for (size_t i = 0; i < p.residueCount(); ++i) {
        for (uint64_t x : p.residue(i))
            EXPECT_EQ(x, 0u);
    }
}

TEST_F(RnsPolyTest, AddSubInverse)
{
    Xoshiro256 rng(21);
    RnsPoly a(base_, kN), b(base_, kN);
    for (size_t i = 0; i < a.residueCount(); ++i) {
        for (size_t j = 0; j < kN; ++j) {
            a.residue(i)[j] = rng.uniformBelow(base_->modulus(i).value());
            b.residue(i)[j] = rng.uniformBelow(base_->modulus(i).value());
        }
    }
    RnsPoly c = a;
    c.addInPlace(b);
    c.subInPlace(b);
    EXPECT_EQ(c, a);
}

TEST_F(RnsPolyTest, NegateTwiceIsIdentity)
{
    Xoshiro256 rng(22);
    RnsPoly a(base_, kN);
    for (size_t i = 0; i < a.residueCount(); ++i) {
        for (size_t j = 0; j < kN; ++j)
            a.residue(i)[j] = rng.uniformBelow(base_->modulus(i).value());
    }
    RnsPoly b = a;
    b.negateInPlace();
    b.negateInPlace();
    EXPECT_EQ(b, a);
}

TEST_F(RnsPolyTest, NttMulMatchesSchoolbookPerResidue)
{
    Xoshiro256 rng(23);
    RnsPoly a(base_, kN), b(base_, kN);
    for (size_t i = 0; i < a.residueCount(); ++i) {
        for (size_t j = 0; j < kN; ++j) {
            a.residue(i)[j] = rng.uniformBelow(base_->modulus(i).value());
            b.residue(i)[j] = rng.uniformBelow(base_->modulus(i).value());
        }
    }
    // Schoolbook per residue.
    RnsPoly expect(base_, kN);
    for (size_t i = 0; i < a.residueCount(); ++i) {
        std::vector<uint64_t> out(kN);
        negacyclicMulReference(a.residue(i), b.residue(i), out,
                               base_->modulus(i));
        std::copy(out.begin(), out.end(), expect.residue(i).begin());
    }

    a.toNtt(context_);
    b.toNtt(context_);
    a.mulPointwiseInPlace(b);
    a.toCoeff(context_);
    EXPECT_EQ(a.data(), expect.data());
}

TEST_F(RnsPolyTest, GatherScatterRoundTrip)
{
    Xoshiro256 rng(24);
    RnsPoly a(base_, kN);
    for (size_t i = 0; i < a.residueCount(); ++i) {
        for (size_t j = 0; j < kN; ++j)
            a.residue(i)[j] = rng.uniformBelow(base_->modulus(i).value());
    }
    RnsPoly b(base_, kN);
    std::vector<uint64_t> buf(a.residueCount());
    for (size_t j = 0; j < kN; ++j) {
        a.gatherCoefficient(j, buf);
        b.scatterCoefficient(j, buf);
    }
    EXPECT_EQ(a, b);
}

TEST_F(RnsPolyTest, FromBigCoefficientsNegative)
{
    std::vector<mp::BigInt> coeffs = {mp::BigInt(-1), mp::BigInt(5),
                                      mp::BigInt(-100)};
    RnsPoly p = RnsPoly::fromBigCoefficients(base_, kN, coeffs);
    for (size_t i = 0; i < p.residueCount(); ++i) {
        const uint64_t q_i = base_->modulus(i).value();
        EXPECT_EQ(p.residue(i)[0], q_i - 1);
        EXPECT_EQ(p.residue(i)[1], 5u);
        EXPECT_EQ(p.residue(i)[2], q_i - 100);
    }
    EXPECT_EQ(p.coefficientCentered(0), mp::BigInt(-1));
    EXPECT_EQ(p.coefficientCentered(2), mp::BigInt(-100));
}

TEST_F(RnsPolyTest, MulScalarInPlace)
{
    Xoshiro256 rng(25);
    RnsPoly a(base_, kN);
    for (size_t i = 0; i < a.residueCount(); ++i) {
        for (size_t j = 0; j < kN; ++j)
            a.residue(i)[j] = rng.uniformBelow(base_->modulus(i).value());
    }
    // Scalar 1 leaves the polynomial unchanged; unit-vector scalar zeroes
    // all but one channel.
    RnsPoly b = a;
    std::vector<uint64_t> ones(a.residueCount(), 1);
    b.mulScalarInPlace(ones);
    EXPECT_EQ(b, a);

    std::vector<uint64_t> unit(a.residueCount(), 0);
    unit[1] = 1;
    b.mulScalarInPlace(unit);
    for (size_t i = 0; i < b.residueCount(); ++i) {
        for (size_t j = 0; j < kN; ++j) {
            EXPECT_EQ(b.residue(i)[j], i == 1 ? a.residue(i)[j] : 0u);
        }
    }
}

TEST_F(RnsPolyTest, FormMismatchPanics)
{
    RnsPoly a(base_, kN), b(base_, kN);
    a.toNtt(context_);
    EXPECT_THROW(a.addInPlace(b), PanicError);
    EXPECT_THROW(b.mulPointwiseInPlace(a), PanicError);
    EXPECT_THROW(a.toNtt(context_), PanicError);
}

} // namespace
} // namespace heat::ntt
