/**
 * @file
 * heat::linalg — batched encrypted linear algebra on the hardware
 * automorphism datapath: replicated slot packing, rotation round
 * trips, total sums, diagonal-method matrix-vector products through
 * the serving layer, and the hoisting guarantee (multiple rotations of
 * one ciphertext share a single key-switch decompose).
 */

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "common/random.h"
#include "compiler/circuit.h"
#include "compiler/compiler.h"
#include "fv/batch_encoder.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "linalg/linalg.h"
#include "service/service.h"
#include "verify_support.h"

namespace heat {
namespace {

using compiler::Circuit;
using compiler::CircuitBuilder;
using fv::Ciphertext;
using fv::Plaintext;

/** Batching-capable universe over a small ring. */
struct Universe
{
    explicit Universe(uint64_t seed, size_t degree = 256)
    {
        fv::FvConfig cfg;
        cfg.degree = degree;
        cfg.plain_modulus = 65537; // 1 mod 2n for every n <= 2^15
        cfg.sigma = 3.2;
        cfg.q_prime_count = 3;
        params = fv::FvParams::create(cfg);
        keygen = std::make_unique<fv::KeyGenerator>(params, seed);
        sk = keygen->generateSecretKey();
        pk = keygen->generatePublicKey(sk);
        rlk = keygen->generateRelinKeys(sk);
        encryptor =
            std::make_unique<fv::Encryptor>(params, pk, seed ^ 0xBEEF);
        decryptor = std::make_unique<fv::Decryptor>(
            params, fv::SecretKey{sk.s_ntt});
        encoder = std::make_unique<fv::BatchEncoder>(params);
        config = hw::HwConfig::paper();
        config.n_rpaus = (params->fullBase()->size() + 1) / 2;
    }

    fv::GaloisKeys
    keysFor(const std::vector<uint32_t> &elements) const
    {
        return keygen->generateGaloisKeys(sk, elements);
    }

    std::vector<uint64_t>
    randomSlots(uint64_t seed, size_t count) const
    {
        Xoshiro256 rng(seed);
        std::vector<uint64_t> v(count);
        for (auto &x : v)
            x = rng.uniformBelow(params->plainModulus());
        return v;
    }

    service::ServiceConfig
    serviceConfig(size_t workers) const
    {
        service::ServiceConfig cfg;
        cfg.workers = workers;
        cfg.hw = config;
        return cfg;
    }

    std::shared_ptr<const fv::FvParams> params;
    std::unique_ptr<fv::KeyGenerator> keygen;
    fv::SecretKey sk;
    fv::PublicKey pk;
    fv::RelinKeys rlk;
    std::unique_ptr<fv::Encryptor> encryptor;
    std::unique_ptr<fv::Decryptor> decryptor;
    std::unique_ptr<fv::BatchEncoder> encoder;
    hw::HwConfig config;
};

TEST(LinalgEncoding, RotationLayoutIsConsistentWithRotateByOne)
{
    // col(perm_1[s]) == col(s) + 1: a rotation by one advances every
    // slot's column coordinate by exactly one within its row.
    Universe u(3);
    const linalg::RotationLayout layout(*u.encoder);
    const size_t n = u.encoder->slotCount();
    ASSERT_EQ(layout.columns(), n / 2);
    const std::vector<size_t> perm = u.encoder->slotPermutation(
        fv::galoisElementForStep(1, n));
    for (size_t s = 0; s < n; ++s)
        EXPECT_EQ(layout.column(perm[s]),
                  (layout.column(s) + 1) % layout.columns());
    for (size_t c = 0; c < layout.columns(); ++c)
        EXPECT_EQ(layout.column(layout.slotAt(c)), c);
}

TEST(LinalgEncoding, ReplicatedPackingRoundTrips)
{
    Universe u(5);
    const linalg::RotationLayout layout(*u.encoder);
    const std::vector<uint64_t> v = u.randomSlots(7, 8);
    const std::vector<uint64_t> slots = layout.replicate(v);
    ASSERT_EQ(slots.size(), u.encoder->slotCount());
    for (size_t s = 0; s < slots.size(); ++s)
        EXPECT_EQ(slots[s], v[layout.column(s) % v.size()])
            << "slot " << s;
}

TEST(LinalgEncoding, ReplicateRejectsNonDivisorLengths)
{
    // Regression: replicate() used to wrap any short vector with
    // values[col % size], silently producing an uneven seam for
    // lengths that do not divide the row — exactly the caller size
    // mismatch the diagonal method's alignment property cannot absorb.
    Universe u(6);
    const linalg::RotationLayout layout(*u.encoder);
    ASSERT_NE(layout.columns() % 3, 0u);
    ASSERT_NE(layout.columns() % 24, 0u);
    EXPECT_THROW(layout.replicate(u.randomSlots(9, 3)), FatalError);
    EXPECT_THROW(layout.replicate(u.randomSlots(9, 24)), FatalError);
    EXPECT_THROW(layout.replicate(std::vector<uint64_t>{}), FatalError);
    EXPECT_NO_THROW(layout.replicate(u.randomSlots(9, 4)));
    EXPECT_NO_THROW(layout.replicate(u.randomSlots(9, 128)));
}

TEST(LinalgRotate, RotateThenInverseIsIdentityOnHardware)
{
    Universe u(11);
    for (int steps : {1, 3, 7}) {
        CircuitBuilder b;
        const auto in = b.input();
        b.output(b.rotate(b.rotate(in, steps), -steps));
        const Circuit circuit = b.build();

        const fv::GaloisKeys gkeys = u.keysFor(
            compiler::requiredGaloisElements(circuit,
                                             u.params->degree()));
        compiler::CompilerOptions options;
        options.hw = u.config;
        const compiler::CompiledCircuit compiled =
            compiler::compileCircuit(u.params, circuit, options);

        const std::vector<uint64_t> v =
            u.randomSlots(100 + steps, u.encoder->slotCount());
        std::vector<Ciphertext> inputs = {
            u.encryptor->encrypt(u.encoder->encode(v))};
        hw::Coprocessor cp(u.params, u.config, &u.rlk, &gkeys);
        const std::vector<Ciphertext> out =
            compiler::runCompiledCircuit(cp, compiled, inputs);
        ASSERT_EQ(out.size(), 1u);
        EXPECT_EQ(u.encoder->decode(u.decryptor->decrypt(out[0])), v)
            << "steps " << steps;
    }
}

TEST(LinalgTotalSum, EverySlotHoldsTheSum)
{
    Universe u(17);
    const Circuit circuit = linalg::totalSumCircuit();
    const fv::GaloisKeys gkeys = u.keysFor(
        compiler::requiredGaloisElements(circuit, u.params->degree()));

    const std::vector<uint64_t> v =
        u.randomSlots(23, u.encoder->slotCount());
    uint64_t expected = 0;
    for (uint64_t x : v)
        expected = (expected + x) % u.params->plainModulus();

    service::ExecutionService svc(u.params, u.rlk, gkeys,
                                  u.serviceConfig(1));
    auto future = svc.submitCircuit(
        circuit, {u.encryptor->encrypt(u.encoder->encode(v))});
    const std::vector<uint64_t> slots =
        u.encoder->decode(u.decryptor->decrypt(future.get()[0]));
    for (size_t s = 0; s < slots.size(); s += 37)
        EXPECT_EQ(slots[s], expected) << "slot " << s;
    EXPECT_EQ(slots.back(), expected);
}

TEST(LinalgInnerProduct, MatchesPlaintextReference)
{
    Universe u(29);
    linalg::InnerProduct ip(u.params);
    const fv::GaloisKeys gkeys =
        u.keysFor(ip.requiredGaloisElements());
    service::ExecutionService svc(u.params, u.rlk, gkeys,
                                  u.serviceConfig(2));

    for (uint64_t draw = 0; draw < 2; ++draw) {
        const std::vector<uint64_t> a = u.randomSlots(40 + draw, 50);
        const std::vector<uint64_t> b = u.randomSlots(60 + draw, 50);
        auto future = svc.submitCompiled(
            ip.compile([&] {
                compiler::CompilerOptions o;
                o.hw = u.config;
                return o;
            }()),
            {u.encryptor->encrypt(ip.encodeVector(a)),
             u.encryptor->encrypt(ip.encodeVector(b))});
        const uint64_t got =
            ip.decodeResult(u.decryptor->decrypt(future.get()[0]));
        EXPECT_EQ(got, ip.reference(a, b)) << "draw " << draw;
    }
}

TEST(LinalgMatVec, DiagonalMethodMatchesReferenceThroughService)
{
    Universe u(31);
    const size_t d = 8;
    std::vector<std::vector<uint64_t>> m(d);
    for (size_t r = 0; r < d; ++r)
        m[r] = u.randomSlots(70 + r, d);
    linalg::MatVec mv(u.params, m);
    const fv::GaloisKeys gkeys =
        u.keysFor(mv.requiredGaloisElements());
    service::ExecutionService svc(u.params, u.rlk, gkeys,
                                  u.serviceConfig(2));

    // Compile once, submit many.
    for (uint64_t draw = 0; draw < 3; ++draw) {
        const std::vector<uint64_t> v = u.randomSlots(90 + draw, d);
        auto future = svc.submitCompiled(
            mv.compile([&] {
                compiler::CompilerOptions o;
                o.hw = u.config;
                return o;
            }()),
            {u.encryptor->encrypt(mv.encodeVector(v))});
        const std::vector<uint64_t> got =
            mv.decodeResult(u.decryptor->decrypt(future.get()[0]));
        EXPECT_EQ(got, mv.reference(v)) << "draw " << draw;
    }
}

TEST(LinalgMatVec, SixteenBySixteen)
{
    Universe u(37);
    const size_t d = 16;
    std::vector<std::vector<uint64_t>> m(d);
    for (size_t r = 0; r < d; ++r)
        m[r] = u.randomSlots(200 + r, d);
    linalg::MatVec mv(u.params, m);
    const fv::GaloisKeys gkeys =
        u.keysFor(mv.requiredGaloisElements());

    compiler::CompilerOptions options;
    options.hw = u.config;
    const std::vector<uint64_t> v = u.randomSlots(333, d);
    hw::Coprocessor cp(u.params, u.config, &u.rlk, &gkeys);
    std::vector<Ciphertext> inputs = {
        u.encryptor->encrypt(mv.encodeVector(v))};
    const std::vector<Ciphertext> out = compiler::runCompiledCircuit(
        cp, *mv.compile(options), inputs);
    EXPECT_EQ(mv.decodeResult(u.decryptor->decrypt(out[0])),
              mv.reference(v));
}

/** Count instructions of @p op across all segments. */
size_t
countOps(const compiler::CompiledCircuit &compiled, hw::Opcode op,
         bool with_digits)
{
    size_t count = 0;
    for (const auto &seg : compiled.segments) {
        for (const auto &instr : seg.program.instrs) {
            if (instr.op == op &&
                (!with_digits || !instr.extra.empty()))
                ++count;
        }
    }
    return count;
}

TEST(LinalgHoisting, RotationsOfOneCiphertextShareTheDecompose)
{
    Universe u(41);
    const size_t d = 8;
    std::vector<std::vector<uint64_t>> m(d);
    for (size_t r = 0; r < d; ++r)
        m[r] = u.randomSlots(300 + r, d);
    linalg::MatVec mv(u.params, m);

    compiler::CompilerOptions hoisted;
    hoisted.hw = u.config;
    compiler::CompilerOptions unhoisted;
    unhoisted.hw = u.config;
    unhoisted.hoist_rotations = false;

    const compiler::CompiledCircuit with =
        compiler::compileCircuit(u.params, mv.circuit(), hoisted);
    const compiler::CompiledCircuit without =
        compiler::compileCircuit(u.params, mv.circuit(), unhoisted);

    // One shared decompose (an automorph with digit broadcasts) for
    // all d-1 rotations, against one per rotation without hoisting —
    // and correspondingly fewer forward NTTs.
    EXPECT_EQ(countOps(with, hw::Opcode::kAutomorph, true), 1u);
    EXPECT_EQ(countOps(without, hw::Opcode::kAutomorph, true), d - 1);
    EXPECT_LT(countOps(with, hw::Opcode::kNtt, false),
              countOps(without, hw::Opcode::kNtt, false));
    EXPECT_LT(with.instructionCount(), without.instructionCount());

    // Scheduling only: the two lowerings are bit-identical.
    const fv::GaloisKeys gkeys =
        u.keysFor(mv.requiredGaloisElements());
    const std::vector<uint64_t> v = u.randomSlots(555, d);
    std::vector<Ciphertext> inputs = {
        u.encryptor->encrypt(mv.encodeVector(v))};
    hw::Coprocessor cp(u.params, u.config, &u.rlk, &gkeys);
    const std::vector<Ciphertext> a =
        compiler::runCompiledCircuit(cp, with, inputs);
    const std::vector<Ciphertext> b =
        compiler::runCompiledCircuit(cp, without, inputs);
    EXPECT_EQ(a, b);
    EXPECT_EQ(mv.decodeResult(u.decryptor->decrypt(a[0])),
              mv.reference(v));
}

TEST(LinalgService, DeterministicAcrossWorkerCounts)
{
    Universe u(43);
    const size_t d = 8;
    std::vector<std::vector<uint64_t>> m(d);
    for (size_t r = 0; r < d; ++r)
        m[r] = u.randomSlots(400 + r, d);
    linalg::MatVec mv(u.params, m);
    const fv::GaloisKeys gkeys =
        u.keysFor(mv.requiredGaloisElements());

    compiler::CompilerOptions options;
    options.hw = u.config;
    const auto compiled = mv.compile(options);

    std::vector<Ciphertext> jobs;
    for (uint64_t i = 0; i < 6; ++i)
        jobs.push_back(u.encryptor->encrypt(
            mv.encodeVector(u.randomSlots(600 + i, d))));

    std::vector<std::vector<Ciphertext>> per_worker_count;
    for (size_t workers : {1u, 2u, 4u}) {
        service::ExecutionService svc(u.params, u.rlk, gkeys,
                                      u.serviceConfig(workers));
        std::vector<std::future<std::vector<Ciphertext>>> futures;
        for (const Ciphertext &job : jobs)
            futures.push_back(svc.submitCompiled(compiled, {job}));
        std::vector<Ciphertext> results;
        for (auto &f : futures)
            results.push_back(f.get()[0]);
        per_worker_count.push_back(std::move(results));
    }
    EXPECT_EQ(per_worker_count[0], per_worker_count[1]);
    EXPECT_EQ(per_worker_count[0], per_worker_count[2]);
}

TEST(LinalgService, MissingGaloisKeysAreRejectedSynchronously)
{
    Universe u(47);
    const Circuit circuit = linalg::totalSumCircuit();
    // No Galois keys at all: the legacy two-key constructor.
    service::ExecutionService svc(u.params, u.rlk,
                                  u.serviceConfig(1));
    const std::vector<uint64_t> v = u.randomSlots(1, 4);
    EXPECT_THROW(
        svc.submitCircuit(
            circuit, {u.encryptor->encrypt(u.encoder->encode(v))}),
        FatalError);
}

} // namespace
} // namespace heat
