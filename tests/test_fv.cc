/**
 * @file
 * End-to-end tests of the FV scheme: encryption round-trips, homomorphic
 * Add/Mult with both relinearization flavours, both arithmetic paths
 * (HPS vs exact CRT), depth chains, noise-budget behaviour and encoders.
 *
 * Most tests run on a scaled-down ring (n = 256) for speed; a smoke test
 * exercises the paper's full (n = 4096, 6+7 prime) parameter set.
 */

#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "common/panic.h"
#include "fv/batch_encoder.h"
#include "fv/decryptor.h"
#include "fv/encoder.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/noise.h"
#include "fv/params.h"

namespace heat::fv {
namespace {

FvConfig
smallConfig(uint64_t t = 4)
{
    FvConfig config;
    config.degree = 256;
    config.plain_modulus = t;
    config.sigma = 3.2;
    config.q_prime_count = 3;
    config.p_prime_count = 0;
    return config;
}

/** Bundle of everything a test needs. */
struct Scheme
{
    explicit Scheme(std::shared_ptr<const FvParams> p, uint64_t seed = 42,
                    ArithPath path = ArithPath::kHps)
        : params(p),
          keygen(p, seed),
          sk(keygen.generateSecretKey()),
          pk(keygen.generatePublicKey(sk)),
          rlk(keygen.generateRelinKeys(sk)),
          encryptor(p, pk, seed + 1),
          decryptor(p, sk),
          evaluator(p, path)
    {
    }

    std::shared_ptr<const FvParams> params;
    KeyGenerator keygen;
    SecretKey sk;
    PublicKey pk;
    RelinKeys rlk;
    Encryptor encryptor;
    Decryptor decryptor;
    Evaluator evaluator;
};

Plaintext
somePlain(uint64_t t, size_t n, uint64_t seed)
{
    Xoshiro256 rng(seed);
    Plaintext p;
    p.coeffs.resize(n);
    for (auto &c : p.coeffs)
        c = rng.uniformBelow(t);
    return p;
}

/** Compare plaintexts ignoring trailing zeros. */
void
expectPlainEq(const Plaintext &a, const Plaintext &b, uint64_t t)
{
    const size_t n = std::max(a.coeffs.size(), b.coeffs.size());
    for (size_t i = 0; i < n; ++i) {
        uint64_t av = i < a.coeffs.size() ? a.coeffs[i] % t : 0;
        uint64_t bv = i < b.coeffs.size() ? b.coeffs[i] % t : 0;
        ASSERT_EQ(av, bv) << "coefficient " << i;
    }
}

TEST(FvParams, PaperParameterSet)
{
    auto params = FvParams::paper();
    EXPECT_EQ(params->degree(), 4096u);
    EXPECT_EQ(params->qBase()->size(), 6u);
    EXPECT_EQ(params->pBase()->size(), 7u);
    EXPECT_EQ(params->fullBase()->size(), 13u);
    // q is 180-bit, Q is 390-bit (thirteen 30-bit primes).
    EXPECT_EQ(params->qBits(), 180);
    EXPECT_EQ(params->fullBase()->product().bitLength(), 390);
    EXPECT_DOUBLE_EQ(params->sigma(), 102.0);
    // Paper claims >= 80-bit security for this set.
    EXPECT_GE(params->estimatedSecurityBits(), 50.0);
}

TEST(FvParams, DeltaTimesT)
{
    auto params = FvParams::create(smallConfig(7));
    // q - t*Delta = q mod t < t.
    mp::BigInt r = params->qBase()->product() -
                   params->delta() * mp::BigInt(7);
    EXPECT_LT(r, mp::BigInt(7));
    EXPECT_FALSE(r.isNegative());
}

TEST(FvParams, TableVRowsScale)
{
    for (int row = 0; row < 2; ++row) {
        auto params = FvParams::tableV(row);
        EXPECT_EQ(params->degree(), size_t(4096) << row);
        EXPECT_EQ(params->qBase()->size(), size_t(6) << row);
    }
}

TEST(Sampler, TernaryCoefficientsAreSigned)
{
    auto params = FvParams::create(smallConfig());
    Sampler sampler(params, 7);
    ntt::RnsPoly s = sampler.ternaryQ();
    for (size_t j = 0; j < params->degree(); ++j) {
        mp::BigInt c = s.coefficientCentered(j);
        EXPECT_LE(c.abs(), mp::BigInt(1)) << j;
    }
}

TEST(Sampler, GaussianMomentsRoughlyMatch)
{
    auto params = FvParams::create(smallConfig());
    Sampler sampler(params, 8);
    const int kSamples = 20000;
    double sum = 0, sum_sq = 0;
    for (int i = 0; i < kSamples; ++i) {
        double x = static_cast<double>(sampler.gaussianScalar());
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / kSamples;
    const double stddev = std::sqrt(sum_sq / kSamples - mean * mean);
    EXPECT_NEAR(mean, 0.0, 0.1);
    EXPECT_NEAR(stddev, params->sigma(), params->sigma() * 0.05);
}

TEST(Sampler, GaussianTailBounded)
{
    auto params = FvParams::create(smallConfig());
    Sampler sampler(params, 9);
    for (int i = 0; i < 20000; ++i)
        EXPECT_LE(std::abs(sampler.gaussianScalar()), sampler.tailBound());
}

TEST(FvScheme, EncryptDecryptRoundTrip)
{
    auto params = FvParams::create(smallConfig());
    Scheme s(params);
    Plaintext m = somePlain(4, 256, 1);
    Ciphertext ct = s.encryptor.encrypt(m);
    expectPlainEq(s.decryptor.decrypt(ct), m, 4);
}

TEST(FvScheme, FreshNoiseBudgetPositive)
{
    auto params = FvParams::create(smallConfig());
    Scheme s(params);
    Ciphertext ct = s.encryptor.encrypt(somePlain(4, 256, 2));
    EXPECT_GT(s.decryptor.invariantNoiseBudget(ct), 20.0);
}

TEST(FvScheme, HomomorphicAdd)
{
    const uint64_t t = 16;
    auto params = FvParams::create(smallConfig(t));
    Scheme s(params);
    Plaintext m0 = somePlain(t, 256, 3);
    Plaintext m1 = somePlain(t, 256, 4);
    Ciphertext ct = s.evaluator.add(s.encryptor.encrypt(m0),
                                    s.encryptor.encrypt(m1));
    Plaintext expect;
    expect.coeffs.resize(256);
    for (size_t i = 0; i < 256; ++i)
        expect.coeffs[i] = (m0.coeffs[i] + m1.coeffs[i]) % t;
    expectPlainEq(s.decryptor.decrypt(ct), expect, t);
}

TEST(FvScheme, HomomorphicSubAndNegate)
{
    const uint64_t t = 16;
    auto params = FvParams::create(smallConfig(t));
    Scheme s(params);
    Plaintext m0 = somePlain(t, 256, 5);
    Plaintext m1 = somePlain(t, 256, 6);
    Ciphertext ct = s.evaluator.sub(s.encryptor.encrypt(m0),
                                    s.encryptor.encrypt(m1));
    Plaintext expect;
    expect.coeffs.resize(256);
    for (size_t i = 0; i < 256; ++i)
        expect.coeffs[i] = (m0.coeffs[i] + t - m1.coeffs[i]) % t;
    expectPlainEq(s.decryptor.decrypt(ct), expect, t);

    Ciphertext neg = s.encryptor.encrypt(m0);
    s.evaluator.negateInPlace(neg);
    Plaintext expect_neg;
    expect_neg.coeffs.resize(256);
    for (size_t i = 0; i < 256; ++i)
        expect_neg.coeffs[i] = (t - m0.coeffs[i]) % t;
    expectPlainEq(s.decryptor.decrypt(neg), expect_neg, t);
}

/** Schoolbook negacyclic product of plaintexts mod t. */
Plaintext
plainMul(const Plaintext &a, const Plaintext &b, uint64_t t, size_t n)
{
    Plaintext c;
    c.coeffs.assign(n, 0);
    for (size_t i = 0; i < a.coeffs.size(); ++i) {
        for (size_t j = 0; j < b.coeffs.size(); ++j) {
            uint64_t p = a.coeffs[i] * b.coeffs[j] % t;
            size_t k = i + j;
            if (k < n) {
                c.coeffs[k] = (c.coeffs[k] + p) % t;
            } else {
                c.coeffs[k - n] = (c.coeffs[k - n] + t - p) % t;
            }
        }
    }
    return c;
}

class FvMultTest : public ::testing::TestWithParam<ArithPath>
{
};

TEST_P(FvMultTest, MultiplyNoRelinDecrypts)
{
    const uint64_t t = 4;
    auto params = FvParams::create(smallConfig(t));
    Scheme s(params, 42, GetParam());
    Plaintext m0 = somePlain(t, 256, 7);
    Plaintext m1 = somePlain(t, 256, 8);
    Ciphertext ct = s.evaluator.multiplyNoRelin(s.encryptor.encrypt(m0),
                                                s.encryptor.encrypt(m1));
    ASSERT_EQ(ct.size(), 3u);
    expectPlainEq(s.decryptor.decrypt(ct), plainMul(m0, m1, t, 256), t);
}

TEST_P(FvMultTest, MultiplyWithRnsRelinDecrypts)
{
    const uint64_t t = 4;
    auto params = FvParams::create(smallConfig(t));
    Scheme s(params, 43, GetParam());
    Plaintext m0 = somePlain(t, 256, 9);
    Plaintext m1 = somePlain(t, 256, 10);
    Ciphertext ct = s.evaluator.multiply(s.encryptor.encrypt(m0),
                                         s.encryptor.encrypt(m1), s.rlk);
    ASSERT_EQ(ct.size(), 2u);
    expectPlainEq(s.decryptor.decrypt(ct), plainMul(m0, m1, t, 256), t);
}

TEST_P(FvMultTest, MultiplyWithPositionalRelinDecrypts)
{
    const uint64_t t = 4;
    auto params = FvParams::create(smallConfig(t));
    Scheme s(params, 44, GetParam());
    RelinKeys rlk2 = s.keygen.generatePositionalRelinKeys(s.sk, 45);
    EXPECT_EQ(rlk2.digitCount(), 2u); // 90-bit q -> two 45-bit digits
    Plaintext m0 = somePlain(t, 256, 11);
    Plaintext m1 = somePlain(t, 256, 12);
    Ciphertext ct = s.evaluator.multiply(s.encryptor.encrypt(m0),
                                         s.encryptor.encrypt(m1), rlk2);
    expectPlainEq(s.decryptor.decrypt(ct), plainMul(m0, m1, t, 256), t);
}

TEST_P(FvMultTest, DepthChainOfSquarings)
{
    // t = 2, message x^3 + 1; squaring keeps coefficients binary.
    const uint64_t t = 2;
    FvConfig config = smallConfig(t);
    config.q_prime_count = 5; // extra depth room
    auto params = FvParams::create(config);
    Scheme s(params, 46, GetParam());

    Plaintext m;
    m.coeffs = {1, 0, 0, 1};
    Ciphertext ct = s.encryptor.encrypt(m);
    Plaintext expect = m;
    for (int depth = 1; depth <= 3; ++depth) {
        ct = s.evaluator.square(ct, s.rlk);
        expect = plainMul(expect, expect, t, 256);
        ASSERT_GT(s.decryptor.invariantNoiseBudget(ct), 0.0)
            << "depth " << depth;
        expectPlainEq(s.decryptor.decrypt(ct), expect, t);
    }
}

INSTANTIATE_TEST_SUITE_P(Paths, FvMultTest,
                         ::testing::Values(ArithPath::kHps,
                                           ArithPath::kExactCrt));

TEST(FvScheme, HpsAndExactPathsAgreeOnPlaintext)
{
    const uint64_t t = 4;
    auto params = FvParams::create(smallConfig(t));
    Scheme hps(params, 47, ArithPath::kHps);
    Evaluator exact(params, ArithPath::kExactCrt);

    Plaintext m0 = somePlain(t, 256, 13);
    Plaintext m1 = somePlain(t, 256, 14);
    Ciphertext a = hps.encryptor.encrypt(m0);
    Ciphertext b = hps.encryptor.encrypt(m1);
    Ciphertext c_hps = hps.evaluator.multiply(a, b, hps.rlk);
    Ciphertext c_exact = exact.multiply(a, b, hps.rlk);
    // The two paths may differ by tiny rounding noise but must decrypt
    // identically.
    expectPlainEq(hps.decryptor.decrypt(c_hps),
                  hps.decryptor.decrypt(c_exact), t);
}

TEST(FvScheme, NoiseBudgetDecreasesMonotonically)
{
    const uint64_t t = 2;
    auto params = FvParams::create(smallConfig(t));
    Scheme s(params, 48);
    Plaintext m;
    m.coeffs = {1, 1};
    Ciphertext ct = s.encryptor.encrypt(m);
    double budget = s.decryptor.invariantNoiseBudget(ct);
    for (int i = 0; i < 2; ++i) {
        ct = s.evaluator.square(ct, s.rlk);
        double next = s.decryptor.invariantNoiseBudget(ct);
        EXPECT_LT(next, budget);
        budget = next;
    }
}

TEST(FvScheme, AddPlainAndMultiplyPlain)
{
    const uint64_t t = 16;
    auto params = FvParams::create(smallConfig(t));
    Scheme s(params, 49);
    Plaintext m0 = somePlain(t, 256, 15);
    Plaintext m1 = somePlain(t, 256, 16);

    Ciphertext ct = s.encryptor.encrypt(m0);
    s.evaluator.addPlainInPlace(ct, m1);
    Plaintext expect;
    expect.coeffs.resize(256);
    for (size_t i = 0; i < 256; ++i)
        expect.coeffs[i] = (m0.coeffs[i] + m1.coeffs[i]) % t;
    expectPlainEq(s.decryptor.decrypt(ct), expect, t);

    Ciphertext ct2 = s.evaluator.multiplyPlain(s.encryptor.encrypt(m0), m1);
    expectPlainEq(s.decryptor.decrypt(ct2), plainMul(m0, m1, t, 256), t);
}

TEST(FvScheme, DeterministicWithSeed)
{
    auto params = FvParams::create(smallConfig());
    Scheme s1(params, 50), s2(params, 50);
    Plaintext m = somePlain(4, 256, 17);
    Ciphertext c1 = s1.encryptor.encrypt(m);
    Ciphertext c2 = s2.encryptor.encrypt(m);
    EXPECT_EQ(c1[0], c2[0]);
    EXPECT_EQ(c1[1], c2[1]);
}

TEST(IntegerEncoder, EncodeDecodeRoundTrip)
{
    auto params = FvParams::create(smallConfig(16));
    IntegerEncoder encoder(params);
    for (int64_t v : {int64_t(0), int64_t(1), int64_t(-1), int64_t(255),
                      int64_t(-255), int64_t(123456789)}) {
        EXPECT_EQ(encoder.decode(encoder.encode(v)), mp::BigInt(v)) << v;
    }
}

TEST(IntegerEncoder, SmallBaseRoundTrip)
{
    auto params = FvParams::create(smallConfig(65537));
    IntegerEncoder encoder(params, 3);
    EXPECT_EQ(encoder.base(), 3u);
    for (int64_t v : {int64_t(0), int64_t(7), int64_t(-19),
                      int64_t(1000000)}) {
        EXPECT_EQ(encoder.decode(encoder.encode(v)), mp::BigInt(v)) << v;
    }
}

TEST(IntegerEncoder, HomomorphicIntegerArithmetic)
{
    // Base-2 digits in a large plain modulus leave room for the digit
    // growth of sums and products.
    const uint64_t t = 65537;
    auto params = FvParams::create(smallConfig(t));
    Scheme s(params, 51);
    IntegerEncoder encoder(params, 2);

    Ciphertext a = s.encryptor.encrypt(encoder.encode(37));
    Ciphertext b = s.encryptor.encrypt(encoder.encode(95));
    Ciphertext sum = s.evaluator.add(a, b);
    EXPECT_EQ(encoder.decodeInt64(s.decryptor.decrypt(sum)), 37 + 95);

    Ciphertext prod = s.evaluator.multiply(a, b, s.rlk);
    EXPECT_EQ(encoder.decodeInt64(s.decryptor.decrypt(prod)), 37 * 95);
}

TEST(BatchEncoder, EncodeDecodeRoundTrip)
{
    FvConfig config = smallConfig(65537); // 65537 = 1 mod 512
    auto params = FvParams::create(config);
    BatchEncoder encoder(params);
    std::vector<uint64_t> slots(encoder.slotCount());
    Xoshiro256 rng(52);
    for (auto &v : slots)
        v = rng.uniformBelow(65537);
    EXPECT_EQ(encoder.decode(encoder.encode(slots)), slots);
}

TEST(BatchEncoder, SlotwiseHomomorphicOps)
{
    FvConfig config = smallConfig(65537);
    config.q_prime_count = 4;
    auto params = FvParams::create(config);
    Scheme s(params, 53);
    BatchEncoder encoder(params);

    std::vector<uint64_t> va(encoder.slotCount()), vb(encoder.slotCount());
    Xoshiro256 rng(54);
    for (size_t i = 0; i < va.size(); ++i) {
        va[i] = rng.uniformBelow(65537);
        vb[i] = rng.uniformBelow(65537);
    }
    Ciphertext a = s.encryptor.encrypt(encoder.encode(va));
    Ciphertext b = s.encryptor.encrypt(encoder.encode(vb));

    auto sum = encoder.decode(s.decryptor.decrypt(s.evaluator.add(a, b)));
    auto prod = encoder.decode(
        s.decryptor.decrypt(s.evaluator.multiply(a, b, s.rlk)));
    for (size_t i = 0; i < va.size(); ++i) {
        EXPECT_EQ(sum[i], (va[i] + vb[i]) % 65537) << i;
        EXPECT_EQ(prod[i], va[i] * vb[i] % 65537) << i;
    }
}

TEST(BatchEncoder, RejectsUnsuitableModulus)
{
    auto params = FvParams::create(smallConfig(4));
    EXPECT_THROW(BatchEncoder{params}, FatalError);
}

TEST(NoiseModel, PredictsPaperDepth)
{
    // The paper sizes (4096, 180-bit q, sigma 102) for depth up to 4.
    NoiseModel model(FvParams::paper(2));
    EXPECT_GE(model.supportedDepth(), 3);
    EXPECT_LE(model.supportedDepth(), 12);
    EXPECT_GT(model.freshBudgetBits(), 0.0);
    EXPECT_GT(model.budgetAfterDepth(1), model.budgetAfterDepth(2));
}

TEST(NoiseModel, RoughlyMatchesMeasuredFreshBudget)
{
    auto params = FvParams::create(smallConfig(2));
    Scheme s(params, 55);
    NoiseModel model(params);
    Ciphertext ct = s.encryptor.encrypt(somePlain(2, 256, 18));
    double measured = s.decryptor.invariantNoiseBudget(ct);
    EXPECT_NEAR(model.freshBudgetBits(), measured, 12.0);
}

TEST(FvSchemePaper, FullParameterSetSmoke)
{
    // End-to-end on the paper's real parameter set: one Add, one Mult.
    const uint64_t t = 2;
    auto params = FvParams::paper(t);
    Scheme s(params, 56);
    Plaintext m0 = somePlain(t, 4096, 19);
    Plaintext m1 = somePlain(t, 4096, 20);

    Ciphertext a = s.encryptor.encrypt(m0);
    Ciphertext b = s.encryptor.encrypt(m1);

    Plaintext expect_sum;
    expect_sum.coeffs.resize(4096);
    for (size_t i = 0; i < 4096; ++i)
        expect_sum.coeffs[i] = (m0.coeffs[i] + m1.coeffs[i]) % t;
    expectPlainEq(s.decryptor.decrypt(s.evaluator.add(a, b)), expect_sum,
                  t);

    Ciphertext prod = s.evaluator.multiply(a, b, s.rlk);
    expectPlainEq(s.decryptor.decrypt(prod), plainMul(m0, m1, t, 4096), t);
    EXPECT_GT(s.decryptor.invariantNoiseBudget(prod), 0.0);
}

} // namespace
} // namespace heat::fv
