/**
 * @file
 * Measured-vs-modeled noise: the extended fv::NoiseModel per-op steps
 * (add, addPlain, multiplyPlain, mult+relin) tracked alongside real
 * homomorphic evaluations and compared against
 * fv::Decryptor::invariantNoiseBudget with slack, plus the compiler's
 * budget-propagation pass: annotations on every node, warn-but-compile
 * semantics, and the paper-set rejection of a depth-5 squaring chain
 * (the parameter set is sized for depth 4, Sec. III-A).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/panic.h"
#include "common/random.h"
#include "compiler/circuit.h"
#include "compiler/compiler.h"
#include "compiler/noise_pass.h"
#include "fv/batch_encoder.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/noise.h"
#include "fv/params.h"

namespace heat {
namespace {

using compiler::Circuit;
using compiler::CircuitBuilder;
using compiler::CompilerOptions;
using compiler::NoiseCheck;
using compiler::NoiseEstimate;
using compiler::ValueId;
using fv::Ciphertext;
using fv::NoiseModel;
using fv::Plaintext;

/** Scheme fixture over a mid-size ring with depth-3 headroom. */
struct Rig
{
    explicit Rig(uint64_t seed, uint64_t t = 257, size_t q_primes = 4)
    {
        fv::FvConfig cfg;
        cfg.degree = 256;
        cfg.plain_modulus = t;
        cfg.sigma = 3.2;
        cfg.q_prime_count = q_primes;
        params = fv::FvParams::create(cfg);
        fv::KeyGenerator keygen(params, seed);
        sk = keygen.generateSecretKey();
        pk = keygen.generatePublicKey(sk);
        rlk = keygen.generateRelinKeys(sk);
        encryptor =
            std::make_unique<fv::Encryptor>(params, pk, seed ^ 0xACE);
        decryptor = std::make_unique<fv::Decryptor>(
            params, fv::SecretKey{sk.s_ntt});
        evaluator = std::make_unique<fv::Evaluator>(params);
        model = std::make_unique<NoiseModel>(params);
    }

    Plaintext
    randomPlain(uint64_t seed) const
    {
        Xoshiro256 rng(seed);
        Plaintext p;
        p.coeffs.resize(params->degree());
        for (auto &c : p.coeffs)
            c = rng.uniformBelow(params->plainModulus());
        return p;
    }

    std::shared_ptr<const fv::FvParams> params;
    fv::SecretKey sk;
    fv::PublicKey pk;
    fv::RelinKeys rlk;
    std::unique_ptr<fv::Encryptor> encryptor;
    std::unique_ptr<fv::Decryptor> decryptor;
    std::unique_ptr<fv::Evaluator> evaluator;
    std::unique_ptr<NoiseModel> model;
};

/** A ciphertext paired with the model's predicted log2 noise. */
struct Tracked
{
    Ciphertext ct;
    double log_v = 0.0;
};

/** Predicted budget must never promise more than ~measured (the model
 *  is a conservative bound; the fresh-encryption estimate itself is
 *  only accurate to a few bits, hence the tolerance), and must stay
 *  within shouting distance so it remains useful for sizing. */
void
expectConservative(const Rig &rig, const Tracked &value,
                   const char *what)
{
    const double measured =
        rig.decryptor->invariantNoiseBudget(value.ct);
    const double predicted = rig.model->budgetBits(value.log_v);
    EXPECT_LE(predicted, measured + 15.0) << what;
    EXPECT_GE(predicted, measured - 60.0) << what;
}

TEST(NoiseSteps, RandomizedMixedCircuitsStayConservative)
{
    for (uint64_t seed : {11u, 12u, 13u}) {
        Rig rig(seed);
        Xoshiro256 rng(seed * 977);

        std::vector<Tracked> pool;
        for (int i = 0; i < 3; ++i) {
            pool.push_back(
                {rig.encryptor->encrypt(rig.randomPlain(seed + i)),
                 rig.model->freshLogNoise()});
            expectConservative(rig, pool.back(), "fresh");
        }

        // Random walk over the per-op steps, depth capped at 3 by
        // construction (each product feeds later ops, so track the
        // deepest value and stop multiplying it once the model's
        // prediction would clamp to zero).
        for (int op = 0; op < 10; ++op) {
            const size_t a = rng.uniformBelow(pool.size());
            const size_t b = rng.uniformBelow(pool.size());
            Tracked next;
            switch (rng.uniformBelow(4)) {
              case 0:
                next.ct = rig.evaluator->add(pool[a].ct, pool[b].ct);
                next.log_v = rig.model->addStep(pool[a].log_v,
                                                pool[b].log_v);
                break;
              case 1: {
                const Plaintext plain = rig.randomPlain(seed + 40 + op);
                next.ct = pool[a].ct;
                rig.evaluator->addPlainInPlace(next.ct, plain);
                next.log_v = rig.model->addPlainStep(pool[a].log_v);
                break;
              }
              case 2: {
                const Plaintext plain = rig.randomPlain(seed + 80 + op);
                next.ct = rig.evaluator->multiplyPlain(pool[a].ct, plain);
                next.log_v =
                    rig.model->multiplyPlainStep(pool[a].log_v);
                break;
              }
              default: {
                const double predicted = rig.model->keySwitchStep(
                    rig.model->multiplyStep(pool[a].log_v,
                                            pool[b].log_v));
                if (rig.model->budgetBits(predicted) <= 0.0)
                    continue; // would clamp; nothing to compare
                next.ct = rig.evaluator->multiply(pool[a].ct,
                                                  pool[b].ct, rig.rlk);
                next.log_v = predicted;
                break;
              }
            }
            expectConservative(rig, next, "mixed op");
            pool.push_back(std::move(next));
        }
    }
}

TEST(NoiseSteps, TensorThenRelinDecomposesTheDepthChain)
{
    // budgetAfterDepth must equal iterating the exposed per-op steps —
    // the decomposition the compiler's pass relies on.
    Rig rig(21);
    const NoiseModel &m = *rig.model;
    double log_v = -(m.freshBudgetBits() + 1.0);
    for (int depth = 1; depth <= 4; ++depth) {
        log_v = m.keySwitchStep(m.multiplyStep(log_v, log_v));
        EXPECT_NEAR(m.budgetAfterDepth(depth), m.budgetBits(log_v),
                    1e-9)
            << "depth " << depth;
    }
}

TEST(NoisePass, AnnotatesEveryNode)
{
    Rig rig(31);
    CircuitBuilder b;
    const ValueId x = b.input();
    const ValueId y = b.input();
    const ValueId sum = b.add(x, y);
    const ValueId prod = b.mult(sum, x);
    b.output(prod);
    const Circuit circuit = b.build();

    const NoiseEstimate est =
        compiler::estimateCircuitNoise(rig.params, circuit);
    ASSERT_EQ(est.budget_bits.size(), circuit.nodes.size());
    EXPECT_NEAR(est.budget_bits[x], rig.model->freshBudgetBits(), 1e-9);
    // Budgets only shrink along the chain.
    EXPECT_LE(est.budget_bits[sum], est.budget_bits[x]);
    EXPECT_LT(est.budget_bits[prod], est.budget_bits[sum]);
    EXPECT_TRUE(est.ok());
    EXPECT_EQ(est.min_output_budget_bits, est.budget_bits[prod]);
}

/** @return a chain of @p depth relinearized squarings of one input. */
Circuit
squaringChain(int depth)
{
    CircuitBuilder b;
    ValueId v = b.input();
    for (int i = 0; i < depth; ++i)
        v = b.square(v);
    b.output(v);
    return b.build();
}

TEST(NoisePass, PaperSetRejectsDepthFiveChain)
{
    // The paper sizes (n, log q) = (4096, 180) for multiplicative
    // depth 4 at the batching modulus: depth 4 compiles under
    // kReject, a fifth squaring does not.
    auto params = fv::FvParams::paper(65537);
    EXPECT_EQ(NoiseModel(params).supportedDepth(), 4);

    CompilerOptions reject;
    reject.noise_check = NoiseCheck::kReject;
    const compiler::CompiledCircuit ok =
        compiler::compileCircuit(params, squaringChain(4), reject);
    EXPECT_GT(ok.min_output_noise_budget_bits, 0.0);
    // Budgets decrease monotonically along the squaring chain (the
    // relinearization term can be negligible next to a deep tensor's
    // noise, so adjacent nodes may tie — but never grow).
    for (size_t i = 2; i < ok.noise_budget_bits.size(); ++i)
        EXPECT_LE(ok.noise_budget_bits[i], ok.noise_budget_bits[i - 1])
            << "node " << i;
    EXPECT_LT(ok.noise_budget_bits.back(), ok.noise_budget_bits[0]);

    try {
        compiler::compileCircuit(params, squaringChain(5), reject);
        FAIL() << "depth 5 must exhaust the paper set's budget";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("predicted noise budget exhausted at node"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("multiplicative depth 5"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("supported depth of 4"), std::string::npos)
            << msg;
    }
}

TEST(NoisePass, WarnAndOffStillCompileExhaustedCircuits)
{
    auto params = fv::FvParams::paper(65537);
    CompilerOptions off;
    off.noise_check = NoiseCheck::kOff;
    const compiler::CompiledCircuit compiled =
        compiler::compileCircuit(params, squaringChain(5), off);
    EXPECT_NE(compiled.noise_exhausted_node, compiler::kNoValue);
    EXPECT_EQ(compiled.min_output_noise_budget_bits, 0.0);

    CompilerOptions warn; // default
    EXPECT_EQ(warn.noise_check, NoiseCheck::kWarn);
    EXPECT_NO_THROW(
        compiler::compileCircuit(params, squaringChain(5), warn));
}

TEST(NoisePass, MeasuredBudgetConfirmsTheDepthFourSizing)
{
    // End to end on a small ring: the pass's per-node prediction for a
    // real mixed circuit stays below the measured budget of the value
    // the circuit computes.
    Rig rig(41);
    CircuitBuilder b;
    const ValueId x = b.input();
    const ValueId y = b.input();
    const ValueId prod = b.mult(x, y);
    const ValueId biased =
        b.addPlain(b.multPlain(prod, rig.randomPlain(1001)),
                   rig.randomPlain(1002));
    b.output(biased);
    const Circuit circuit = b.build();

    const NoiseEstimate est =
        compiler::estimateCircuitNoise(rig.params, circuit);

    const Ciphertext cx = rig.encryptor->encrypt(rig.randomPlain(51));
    const Ciphertext cy = rig.encryptor->encrypt(rig.randomPlain(52));
    const std::vector<Ciphertext> out = compiler::evaluateCircuit(
        *rig.evaluator, &rig.rlk, circuit,
        std::vector<Ciphertext>{cx, cy});
    const double measured =
        rig.decryptor->invariantNoiseBudget(out[0]);
    EXPECT_LE(est.min_output_budget_bits, measured + 15.0);
    EXPECT_GE(est.min_output_budget_bits, measured - 60.0);
}

} // namespace
} // namespace heat
