/**
 * @file
 * Measured-vs-modeled noise: the extended fv::NoiseModel per-op steps
 * (add, addPlain, multiplyPlain, mult+relin) tracked alongside real
 * homomorphic evaluations and compared against
 * fv::Decryptor::invariantNoiseBudget with slack, plus the compiler's
 * budget-propagation pass: annotations on every node, warn-but-compile
 * semantics, and the paper-set rejection of a depth-5 squaring chain
 * (the parameter set is sized for depth 4, Sec. III-A).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/panic.h"
#include "common/random.h"
#include "compiler/circuit.h"
#include "compiler/compiler.h"
#include "compiler/noise_pass.h"
#include "fv/batch_encoder.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/noise.h"
#include "fv/params.h"
#include "mp/primality.h"

namespace heat {
namespace {

using compiler::Circuit;
using compiler::CircuitBuilder;
using compiler::CompilerOptions;
using compiler::NoiseCheck;
using compiler::NoiseEstimate;
using compiler::ValueId;
using fv::Ciphertext;
using fv::NoiseModel;
using fv::Plaintext;

/** Scheme fixture over a mid-size ring with depth-3 headroom. */
struct Rig
{
    explicit Rig(uint64_t seed, uint64_t t = 257, size_t q_primes = 4)
    {
        fv::FvConfig cfg;
        cfg.degree = 256;
        cfg.plain_modulus = t;
        cfg.sigma = 3.2;
        cfg.q_prime_count = q_primes;
        params = fv::FvParams::create(cfg);
        fv::KeyGenerator keygen(params, seed);
        sk = keygen.generateSecretKey();
        pk = keygen.generatePublicKey(sk);
        rlk = keygen.generateRelinKeys(sk);
        encryptor =
            std::make_unique<fv::Encryptor>(params, pk, seed ^ 0xACE);
        decryptor = std::make_unique<fv::Decryptor>(
            params, fv::SecretKey{sk.s_ntt});
        evaluator = std::make_unique<fv::Evaluator>(params);
        model = std::make_unique<NoiseModel>(params);
    }

    Plaintext
    randomPlain(uint64_t seed) const
    {
        Xoshiro256 rng(seed);
        Plaintext p;
        p.coeffs.resize(params->degree());
        for (auto &c : p.coeffs)
            c = rng.uniformBelow(params->plainModulus());
        return p;
    }

    std::shared_ptr<const fv::FvParams> params;
    fv::SecretKey sk;
    fv::PublicKey pk;
    fv::RelinKeys rlk;
    std::unique_ptr<fv::Encryptor> encryptor;
    std::unique_ptr<fv::Decryptor> decryptor;
    std::unique_ptr<fv::Evaluator> evaluator;
    std::unique_ptr<NoiseModel> model;
};

/** A ciphertext paired with the model's predicted log2 noise. */
struct Tracked
{
    Ciphertext ct;
    double log_v = 0.0;
};

/** Predicted budget must never promise more than ~measured (the model
 *  is a conservative bound; the fresh-encryption estimate itself is
 *  only accurate to a few bits, hence the tolerance), and must stay
 *  within shouting distance so it remains useful for sizing. */
void
expectConservative(const Rig &rig, const Tracked &value,
                   const char *what)
{
    const double measured =
        rig.decryptor->invariantNoiseBudget(value.ct);
    const double predicted = rig.model->budgetBits(value.log_v);
    EXPECT_LE(predicted, measured + 15.0) << what;
    EXPECT_GE(predicted, measured - 60.0) << what;
}

TEST(NoiseSteps, RandomizedMixedCircuitsStayConservative)
{
    for (uint64_t seed : {11u, 12u, 13u}) {
        Rig rig(seed);
        Xoshiro256 rng(seed * 977);

        std::vector<Tracked> pool;
        for (int i = 0; i < 3; ++i) {
            pool.push_back(
                {rig.encryptor->encrypt(rig.randomPlain(seed + i)),
                 rig.model->freshLogNoise()});
            expectConservative(rig, pool.back(), "fresh");
        }

        // Random walk over the per-op steps, depth capped at 3 by
        // construction (each product feeds later ops, so track the
        // deepest value and stop multiplying it once the model's
        // prediction would clamp to zero).
        for (int op = 0; op < 10; ++op) {
            const size_t a = rng.uniformBelow(pool.size());
            const size_t b = rng.uniformBelow(pool.size());
            Tracked next;
            switch (rng.uniformBelow(4)) {
              case 0:
                next.ct = rig.evaluator->add(pool[a].ct, pool[b].ct);
                next.log_v = rig.model->addStep(pool[a].log_v,
                                                pool[b].log_v);
                break;
              case 1: {
                const Plaintext plain = rig.randomPlain(seed + 40 + op);
                next.ct = pool[a].ct;
                rig.evaluator->addPlainInPlace(next.ct, plain);
                next.log_v = rig.model->addPlainStep(pool[a].log_v);
                break;
              }
              case 2: {
                const Plaintext plain = rig.randomPlain(seed + 80 + op);
                next.ct = rig.evaluator->multiplyPlain(pool[a].ct, plain);
                next.log_v =
                    rig.model->multiplyPlainStep(pool[a].log_v);
                break;
              }
              default: {
                const double predicted = rig.model->keySwitchStep(
                    rig.model->multiplyStep(pool[a].log_v,
                                            pool[b].log_v));
                if (rig.model->budgetBits(predicted) <= 0.0)
                    continue; // would clamp; nothing to compare
                next.ct = rig.evaluator->multiply(pool[a].ct,
                                                  pool[b].ct, rig.rlk);
                next.log_v = predicted;
                break;
              }
            }
            expectConservative(rig, next, "mixed op");
            pool.push_back(std::move(next));
        }
    }
}

TEST(NoiseSteps, TensorThenRelinDecomposesTheDepthChain)
{
    // budgetAfterDepth must equal iterating the exposed per-op steps —
    // the decomposition the compiler's pass relies on.
    Rig rig(21);
    const NoiseModel &m = *rig.model;
    double log_v = -(m.freshBudgetBits() + 1.0);
    for (int depth = 1; depth <= 4; ++depth) {
        log_v = m.keySwitchStep(m.multiplyStep(log_v, log_v));
        EXPECT_NEAR(m.budgetAfterDepth(depth), m.budgetBits(log_v),
                    1e-9)
            << "depth " << depth;
    }
}

TEST(NoisePass, AnnotatesEveryNode)
{
    Rig rig(31);
    CircuitBuilder b;
    const ValueId x = b.input();
    const ValueId y = b.input();
    const ValueId sum = b.add(x, y);
    const ValueId prod = b.mult(sum, x);
    b.output(prod);
    const Circuit circuit = b.build();

    const NoiseEstimate est =
        compiler::estimateCircuitNoise(rig.params, circuit);
    ASSERT_EQ(est.budget_bits.size(), circuit.nodes.size());
    EXPECT_NEAR(est.budget_bits[x], rig.model->freshBudgetBits(), 1e-9);
    // Budgets only shrink along the chain.
    EXPECT_LE(est.budget_bits[sum], est.budget_bits[x]);
    EXPECT_LT(est.budget_bits[prod], est.budget_bits[sum]);
    EXPECT_TRUE(est.ok());
    EXPECT_EQ(est.min_output_budget_bits, est.budget_bits[prod]);
}

/** @return a chain of @p depth relinearized squarings of one input. */
Circuit
squaringChain(int depth)
{
    CircuitBuilder b;
    ValueId v = b.input();
    for (int i = 0; i < depth; ++i)
        v = b.square(v);
    b.output(v);
    return b.build();
}

TEST(NoisePass, PaperSetRejectsDepthFiveChain)
{
    // The paper sizes (n, log q) = (4096, 180) for multiplicative
    // depth 4 at the batching modulus: depth 4 compiles under
    // kReject, a fifth squaring does not.
    auto params = fv::FvParams::paper(65537);
    EXPECT_EQ(NoiseModel(params).supportedDepth(), 4);

    CompilerOptions reject;
    reject.noise_check = NoiseCheck::kReject;
    const compiler::CompiledCircuit ok =
        compiler::compileCircuit(params, squaringChain(4), reject);
    EXPECT_GT(ok.min_output_noise_budget_bits, 0.0);
    // Budgets decrease monotonically along the squaring chain (the
    // relinearization term can be negligible next to a deep tensor's
    // noise, so adjacent nodes may tie — but never grow).
    for (size_t i = 2; i < ok.noise_budget_bits.size(); ++i)
        EXPECT_LE(ok.noise_budget_bits[i], ok.noise_budget_bits[i - 1])
            << "node " << i;
    EXPECT_LT(ok.noise_budget_bits.back(), ok.noise_budget_bits[0]);

    try {
        compiler::compileCircuit(params, squaringChain(5), reject);
        FAIL() << "depth 5 must exhaust the paper set's budget";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("predicted noise budget exhausted at node"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("multiplicative depth 5"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("supported depth of 4"), std::string::npos)
            << msg;
    }
}

TEST(NoisePass, WarnAndOffStillCompileExhaustedCircuits)
{
    auto params = fv::FvParams::paper(65537);
    CompilerOptions off;
    off.noise_check = NoiseCheck::kOff;
    const compiler::CompiledCircuit compiled =
        compiler::compileCircuit(params, squaringChain(5), off);
    EXPECT_NE(compiled.noise_exhausted_node, compiler::kNoValue);
    EXPECT_EQ(compiled.min_output_noise_budget_bits, 0.0);

    CompilerOptions warn; // default
    EXPECT_EQ(warn.noise_check, NoiseCheck::kWarn);
    EXPECT_NO_THROW(
        compiler::compileCircuit(params, squaringChain(5), warn));
}

TEST(NoiseSteps, ModSwitchStepConservativeAtEveryLevel)
{
    // Walk the whole modulus chain of the small ring: after every drop
    // the model's modSwitchStep must stay conservative against the
    // measured budget. (The budget can fall sharply on the last drops
    // — the t*n/q' rounding floor dominates once q' is a single prime
    // — and the model must track exactly that.)
    for (uint64_t seed : {61u, 62u}) {
        Rig rig(seed);
        Tracked v{rig.encryptor->encrypt(rig.randomPlain(seed)),
                  rig.model->freshLogNoise()};
        expectConservative(rig, v, "fresh");
        for (size_t level = 0; level < rig.params->maxLevel(); ++level) {
            rig.evaluator->modSwitchInPlace(v.ct);
            v.log_v = rig.model->modSwitchStep(v.log_v, level);
            EXPECT_EQ(v.ct.level, level + 1);
            expectConservative(rig, v, "after drop");
        }
    }
}

TEST(NoiseSteps, DeepLevelMultiplyStaysConservative)
{
    // multiplyStep/keySwitchStep take the level where the work runs:
    // a square executed at level 1 must stay conservative against the
    // truncated-basis measurement.
    Rig rig(63);
    Tracked v{rig.encryptor->encrypt(rig.randomPlain(63)),
              rig.model->freshLogNoise()};
    rig.evaluator->modSwitchInPlace(v.ct);
    v.log_v = rig.model->modSwitchStep(v.log_v, 0);
    const double predicted = rig.model->keySwitchStep(
        rig.model->multiplyStep(v.log_v, v.log_v, 1), 1);
    ASSERT_GT(rig.model->budgetBits(predicted), 0.0);
    v.ct = rig.evaluator->square(v.ct, rig.rlk);
    v.log_v = predicted;
    EXPECT_EQ(v.ct.level, 1u);
    expectConservative(rig, v, "level-1 square");
}

TEST(NoiseModelLevels, AverageCaseIsConservativePerDepthOnPaperSet)
{
    // The calibrated average-case model (CLT expansion plus empirical
    // multiply headroom) is the bound the level-assignment pass plans
    // with, so it must be conservative — predicted <= measured — at
    // EVERY depth of a squaring chain on the paper ring, while staying
    // within a few bits so the assignment is not hopelessly timid. The
    // worst-case model is stricter than the average-case one
    // throughout. t = 17 keeps per-depth losses small enough that the
    // chain reaches depth 8 with measured budget to spare (constant
    // plaintexts: t = 17 does not batch at n = 4096).
    auto params = fv::FvParams::paper(17);
    const NoiseModel avg(params, fv::NoiseBound::kAverageCase);
    const NoiseModel worst(params);
    fv::KeyGenerator keygen(params, 81);
    const fv::SecretKey sk = keygen.generateSecretKey();
    const fv::PublicKey pk = keygen.generatePublicKey(sk);
    const fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 82);
    fv::Decryptor decryptor(params, fv::SecretKey{sk.s_ntt});
    fv::Evaluator evaluator(params);

    Plaintext m;
    m.coeffs = {2};
    Ciphertext ct = encryptor.encrypt(m);
    for (int depth = 0; depth <= 8; ++depth) {
        if (depth > 0)
            ct = evaluator.square(ct, rlk);
        const double measured = decryptor.invariantNoiseBudget(ct);
        const double predicted = avg.budgetAfterDepth(depth);
        EXPECT_LE(predicted, measured) << "depth " << depth;
        EXPECT_GE(predicted, measured - 8.0) << "depth " << depth;
        EXPECT_LE(worst.budgetAfterDepth(depth), predicted)
            << "depth " << depth;
    }
    // Depth 8 still decrypts exactly: 2^(2^8) mod 17.
    EXPECT_EQ(decryptor.decrypt(ct).coeffs[0],
              mp::powMod64(2, 256, 17));
}

TEST(NoiseModelLevels, ModSwitchTrajectoryStaysConservativePerLevel)
{
    // Drop a depth-2 ciphertext down the whole paper chain: the
    // average-case trajectory (two multiply steps, then one
    // modSwitchStep per level) stays conservative against the measured
    // budget at every level, and the value still decrypts at the
    // bottom.
    auto params = fv::FvParams::paper(17);
    const NoiseModel avg(params, fv::NoiseBound::kAverageCase);
    fv::KeyGenerator keygen(params, 83);
    const fv::SecretKey sk = keygen.generateSecretKey();
    const fv::PublicKey pk = keygen.generatePublicKey(sk);
    const fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 84);
    fv::Decryptor decryptor(params, fv::SecretKey{sk.s_ntt});
    fv::Evaluator evaluator(params);

    Plaintext m;
    m.coeffs = {3};
    Ciphertext ct = encryptor.encrypt(m);
    double log_v = avg.freshLogNoise();
    for (int d = 0; d < 2; ++d) {
        ct = evaluator.square(ct, rlk);
        log_v = avg.keySwitchStep(avg.multiplyStep(log_v, log_v, 0), 0);
    }
    for (size_t level = 0; level < params->maxLevel(); ++level) {
        evaluator.modSwitchInPlace(ct);
        log_v = avg.modSwitchStep(log_v, level);
        EXPECT_EQ(ct.level, level + 1);
        const double measured = decryptor.invariantNoiseBudget(ct);
        const double predicted = avg.budgetBits(log_v);
        EXPECT_LE(predicted, measured) << "level " << level;
        EXPECT_GE(predicted, measured - 10.0) << "level " << level;
    }
    EXPECT_EQ(decryptor.decrypt(ct).coeffs[0],
              mp::powMod64(3, 4, 17));
}

TEST(NoisePass, LevelAssignmentAcceptsThePaperDepthEightChain)
{
    // The headline of the level-assignment pass: the depth-8 squaring
    // chain the depth-4 sizing rejects compiles under kReject once
    // auto_mod_switch may insert drops, and the output lands deep in
    // the chain with budget left.
    auto params = fv::FvParams::paper(17);
    CompilerOptions reject;
    reject.noise_check = NoiseCheck::kReject;
    EXPECT_THROW(
        compiler::compileCircuit(params, squaringChain(8), reject),
        FatalError);

    reject.auto_mod_switch = true;
    const compiler::CompiledCircuit compiled =
        compiler::compileCircuit(params, squaringChain(8), reject);
    EXPECT_GT(compiled.min_output_noise_budget_bits, 0.0);
    size_t drops = 0;
    for (const auto &node : compiled.circuit.nodes)
        drops += node.kind == compiler::NodeKind::kModSwitch ? 1 : 0;
    EXPECT_GE(drops, 3u);
    const ValueId out = compiled.circuit.outputs[0];
    ASSERT_LT(out, compiled.value_levels.size());
    EXPECT_GT(compiled.value_levels[out], 0u);
}

TEST(NoisePass, LevelAssignmentRejectionNamesTheLevel)
{
    // When even the level assignment cannot save a circuit (depth 12
    // at t = 17 outruns the whole chain), kReject still throws — and
    // the diagnostic names the ciphertext level where the budget died.
    auto params = fv::FvParams::paper(17);
    CompilerOptions reject;
    reject.noise_check = NoiseCheck::kReject;
    reject.auto_mod_switch = true;
    try {
        compiler::compileCircuit(params, squaringChain(12), reject);
        FAIL() << "depth 12 must exhaust even the lowered chain";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("predicted noise budget exhausted at node"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("ciphertext level"), std::string::npos)
            << msg;
    }

    // A circuit that already contains drops gets the honest verdict:
    // more drops would not help. A hand-written drop after the first
    // square shrinks the working modulus early, so the depth-5 chain
    // dies at a nonzero level and the diagnostic says which.
    auto batching = fv::FvParams::paper(65537);
    CircuitBuilder b;
    ValueId v = b.modSwitch(b.square(b.input()));
    for (int i = 0; i < 4; ++i)
        v = b.square(v);
    b.output(v);
    CompilerOptions reject_manual;
    reject_manual.noise_check = NoiseCheck::kReject;
    try {
        compiler::compileCircuit(batching, b.build(), reject_manual);
        FAIL() << "the early-dropped depth-5 chain must be rejected";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("the level assignment could not save"),
                  std::string::npos)
            << msg;
        EXPECT_EQ(msg.find("ciphertext level 0 "), std::string::npos)
            << msg;
    }
}

TEST(NoisePass, MeasuredBudgetConfirmsTheDepthFourSizing)
{
    // End to end on a small ring: the pass's per-node prediction for a
    // real mixed circuit stays below the measured budget of the value
    // the circuit computes.
    Rig rig(41);
    CircuitBuilder b;
    const ValueId x = b.input();
    const ValueId y = b.input();
    const ValueId prod = b.mult(x, y);
    const ValueId biased =
        b.addPlain(b.multPlain(prod, rig.randomPlain(1001)),
                   rig.randomPlain(1002));
    b.output(biased);
    const Circuit circuit = b.build();

    const NoiseEstimate est =
        compiler::estimateCircuitNoise(rig.params, circuit);

    const Ciphertext cx = rig.encryptor->encrypt(rig.randomPlain(51));
    const Ciphertext cy = rig.encryptor->encrypt(rig.randomPlain(52));
    const std::vector<Ciphertext> out = compiler::evaluateCircuit(
        *rig.evaluator, &rig.rlk, circuit,
        std::vector<Ciphertext>{cx, cy});
    const double measured =
        rig.decryptor->invariantNoiseBudget(out[0]);
    EXPECT_LE(est.min_output_budget_bits, measured + 15.0);
    EXPECT_GE(est.min_output_budget_bits, measured - 60.0);
}

} // namespace
} // namespace heat
