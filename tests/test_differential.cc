/**
 * @file
 * Hardware-vs-software differential suite: for randomized plaintexts
 * and keys, every operation the serving layer dispatches to the
 * simulated coprocessors (Add, Mult, relinearization) must agree with
 * the pure-software fv::Evaluator — bit-identical ciphertext data on
 * the shared HPS path and bit-identical decryptions everywhere. This
 * is the conformance oracle behind heat::service: if the two paths
 * ever diverge, the serving layer is silently corrupting results.
 */

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <span>
#include <vector>

#include "common/random.h"
#include "compiler/circuit.h"
#include "compiler/compiler.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "hw/program_builder.h"
#include "service/service.h"

namespace heat {
namespace {

using fv::ArithPath;
using fv::Ciphertext;
using fv::Plaintext;

/** One randomized key/encryptor universe over a small ring. */
struct Universe
{
    Universe(uint64_t seed, uint64_t t = 4, size_t degree = 256,
             size_t q_primes = 3)
    {
        fv::FvConfig cfg;
        cfg.degree = degree;
        cfg.plain_modulus = t;
        cfg.sigma = 3.2;
        cfg.q_prime_count = q_primes;
        params = fv::FvParams::create(cfg);
        fv::KeyGenerator keygen(params, seed);
        sk = keygen.generateSecretKey();
        pk = keygen.generatePublicKey(sk);
        rlk = keygen.generateRelinKeys(sk);
        gkeys = keygen.generateGaloisKeys(
            sk, {fv::galoisElementForStep(1, degree),
                 fv::galoisElementForStep(-1, degree),
                 fv::galoisElementForStep(2, degree),
                 fv::galoisElementForStep(3, degree),
                 static_cast<uint32_t>(2 * degree - 1)});
        encryptor =
            std::make_unique<fv::Encryptor>(params, pk, seed ^ 0xABCD);
        decryptor = std::make_unique<fv::Decryptor>(
            params, fv::SecretKey{sk.s_ntt});
        evaluator =
            std::make_unique<fv::Evaluator>(params, ArithPath::kHps);
        config = hw::HwConfig::paper();
        config.n_rpaus = (params->fullBase()->size() + 1) / 2;
    }

    Plaintext
    randomPlain(uint64_t seed) const
    {
        Xoshiro256 rng(seed);
        Plaintext p;
        p.coeffs.resize(params->degree());
        for (auto &c : p.coeffs)
            c = rng.uniformBelow(params->plainModulus());
        return p;
    }

    /** Run one op through a fresh coprocessor (the hardware path). */
    Ciphertext
    runHw(hw::OpPlan::Kind kind, const Ciphertext &x,
          const Ciphertext &y) const
    {
        hw::Coprocessor cp(params, config, &rlk);
        hw::OpPlan plan = kind == hw::OpPlan::Kind::kAdd
                              ? hw::makeAddPlan(cp)
                              : hw::makeMultPlan(cp);
        hw::uploadPlanInputs(cp, plan, {&x[0], &x[1]}, {&y[0], &y[1]});
        cp.execute(plan.program);
        Ciphertext out;
        out.polys.push_back(cp.downloadPoly(plan.program.outputs[0]));
        out.polys.push_back(cp.downloadPoly(plan.program.outputs[1]));
        return out;
    }

    /**
     * Run one single-node circuit through the hardware compiler path
     * (the only hw lowering of Sub/Negate/AddPlain/MultPlain/Square).
     */
    std::vector<Ciphertext>
    runHwCircuit(const compiler::Circuit &circuit,
                 std::span<const Ciphertext> inputs,
                 const fv::GaloisKeys *galois_override = nullptr) const
    {
        compiler::CompilerOptions options;
        options.hw = config;
        const compiler::CompiledCircuit compiled =
            compiler::compileCircuit(params, circuit, options);
        hw::Coprocessor cp(params, config, &rlk,
                           galois_override != nullptr ? galois_override
                                                      : &gkeys);
        return compiler::runCompiledCircuit(cp, compiled, inputs);
    }

    std::shared_ptr<const fv::FvParams> params;
    fv::SecretKey sk;
    fv::PublicKey pk;
    fv::RelinKeys rlk;
    fv::GaloisKeys gkeys;
    std::unique_ptr<fv::Encryptor> encryptor;
    std::unique_ptr<fv::Decryptor> decryptor;
    std::unique_ptr<fv::Evaluator> evaluator;
    hw::HwConfig config;
};

TEST(Differential, AddBitExactAcrossRandomKeys)
{
    for (uint64_t key_seed : {11u, 22u, 33u}) {
        Universe u(key_seed);
        for (uint64_t i = 0; i < 3; ++i) {
            Ciphertext x =
                u.encryptor->encrypt(u.randomPlain(100 * key_seed + i));
            Ciphertext y =
                u.encryptor->encrypt(u.randomPlain(200 * key_seed + i));
            Ciphertext hw = u.runHw(hw::OpPlan::Kind::kAdd, x, y);
            Ciphertext sw = u.evaluator->add(x, y);
            EXPECT_EQ(hw, sw) << "key seed " << key_seed << " draw " << i;
            EXPECT_EQ(u.decryptor->decrypt(hw), u.decryptor->decrypt(sw));
        }
    }
}

TEST(Differential, MultBitExactAcrossRandomKeys)
{
    for (uint64_t key_seed : {5u, 17u}) {
        Universe u(key_seed);
        for (uint64_t i = 0; i < 2; ++i) {
            Ciphertext x =
                u.encryptor->encrypt(u.randomPlain(300 * key_seed + i));
            Ciphertext y =
                u.encryptor->encrypt(u.randomPlain(400 * key_seed + i));
            Ciphertext hw = u.runHw(hw::OpPlan::Kind::kMult, x, y);
            Ciphertext sw = u.evaluator->multiply(x, y, u.rlk);
            EXPECT_EQ(hw, sw) << "key seed " << key_seed << " draw " << i;
            EXPECT_EQ(u.decryptor->decrypt(hw), u.decryptor->decrypt(sw));
        }
    }
}

TEST(Differential, RelinearizationMatchesSoftwarePath)
{
    // The hardware Mult fuses tensor + relin; pin the relin half by
    // comparing against the software pipeline spelled out in two steps,
    // and check relinearization preserved the plaintext.
    Universe u(29);
    Ciphertext x = u.encryptor->encrypt(u.randomPlain(1));
    Ciphertext y = u.encryptor->encrypt(u.randomPlain(2));

    Ciphertext staged = u.evaluator->multiplyNoRelin(x, y);
    Plaintext before_relin = u.decryptor->decrypt(staged);
    u.evaluator->relinearizeInPlace(staged, u.rlk);
    ASSERT_EQ(staged.size(), 2u);

    Ciphertext hw = u.runHw(hw::OpPlan::Kind::kMult, x, y);
    EXPECT_EQ(hw, staged);
    EXPECT_EQ(u.decryptor->decrypt(hw), before_relin);
}

TEST(Differential, LargerPlainModulusStaysBitExact)
{
    Universe u(41, /*t=*/65537);
    Ciphertext x = u.encryptor->encrypt(u.randomPlain(7));
    Ciphertext y = u.encryptor->encrypt(u.randomPlain(8));
    Ciphertext hw = u.runHw(hw::OpPlan::Kind::kMult, x, y);
    EXPECT_EQ(hw, u.evaluator->multiply(x, y, u.rlk));
}

TEST(Differential, ExactCrtOracleDecryptsIdentically)
{
    // The exact-CRT evaluator is the traditional-datapath oracle: its
    // ciphertexts may differ from the HPS/hardware ones by +-1 in
    // isolated coefficients, but the decryptions must agree.
    Universe u(53);
    fv::Evaluator exact(u.params, ArithPath::kExactCrt);
    Ciphertext x = u.encryptor->encrypt(u.randomPlain(9));
    Ciphertext y = u.encryptor->encrypt(u.randomPlain(10));
    Ciphertext hw = u.runHw(hw::OpPlan::Kind::kMult, x, y);
    Ciphertext oracle = exact.multiply(x, y, u.rlk);
    EXPECT_EQ(u.decryptor->decrypt(hw), u.decryptor->decrypt(oracle));
}

TEST(Differential, SubBitExactAcrossRandomKeys)
{
    for (uint64_t key_seed : {7u, 19u}) {
        Universe u(key_seed, /*t=*/257);
        compiler::CircuitBuilder b;
        const auto x = b.input();
        const auto y = b.input();
        b.output(b.sub(x, y));
        const compiler::Circuit circuit = b.build();
        for (uint64_t i = 0; i < 3; ++i) {
            std::vector<Ciphertext> in = {
                u.encryptor->encrypt(u.randomPlain(700 * key_seed + i)),
                u.encryptor->encrypt(u.randomPlain(800 * key_seed + i))};
            Ciphertext hw = u.runHwCircuit(circuit, in)[0];
            Ciphertext sw = u.evaluator->sub(in[0], in[1]);
            EXPECT_EQ(hw, sw) << "key seed " << key_seed << " draw " << i;
            EXPECT_EQ(u.decryptor->decrypt(hw), u.decryptor->decrypt(sw));
        }
    }
}

TEST(Differential, NegateBitExactAcrossRandomKeys)
{
    for (uint64_t key_seed : {13u, 27u}) {
        Universe u(key_seed, /*t=*/257);
        compiler::CircuitBuilder b;
        b.output(b.negate(b.input()));
        const compiler::Circuit circuit = b.build();
        for (uint64_t i = 0; i < 3; ++i) {
            std::vector<Ciphertext> in = {
                u.encryptor->encrypt(u.randomPlain(910 * key_seed + i))};
            Ciphertext hw = u.runHwCircuit(circuit, in)[0];
            Ciphertext sw = in[0];
            u.evaluator->negateInPlace(sw);
            EXPECT_EQ(hw, sw) << "key seed " << key_seed << " draw " << i;
            EXPECT_EQ(u.decryptor->decrypt(hw), u.decryptor->decrypt(sw));
        }
    }
}

TEST(Differential, AddPlainBitExactAcrossRandomKeys)
{
    for (uint64_t key_seed : {15u, 35u}) {
        Universe u(key_seed, /*t=*/65537);
        for (uint64_t i = 0; i < 3; ++i) {
            const Plaintext plain = u.randomPlain(40 * key_seed + i);
            compiler::CircuitBuilder b;
            b.output(b.addPlain(b.input(), plain));
            const compiler::Circuit circuit = b.build();
            std::vector<Ciphertext> in = {
                u.encryptor->encrypt(u.randomPlain(50 * key_seed + i))};
            Ciphertext hw = u.runHwCircuit(circuit, in)[0];
            Ciphertext sw = in[0];
            u.evaluator->addPlainInPlace(sw, plain);
            EXPECT_EQ(hw, sw) << "key seed " << key_seed << " draw " << i;
            EXPECT_EQ(u.decryptor->decrypt(hw), u.decryptor->decrypt(sw));
        }
    }
}

TEST(Differential, MultPlainBitExactAcrossRandomKeys)
{
    for (uint64_t key_seed : {21u, 45u}) {
        Universe u(key_seed, /*t=*/65537);
        for (uint64_t i = 0; i < 2; ++i) {
            const Plaintext plain = u.randomPlain(60 * key_seed + i);
            compiler::CircuitBuilder b;
            b.output(b.multPlain(b.input(), plain));
            const compiler::Circuit circuit = b.build();
            std::vector<Ciphertext> in = {
                u.encryptor->encrypt(u.randomPlain(70 * key_seed + i))};
            Ciphertext hw = u.runHwCircuit(circuit, in)[0];
            Ciphertext sw = u.evaluator->multiplyPlain(in[0], plain);
            EXPECT_EQ(hw, sw) << "key seed " << key_seed << " draw " << i;
            EXPECT_EQ(u.decryptor->decrypt(hw), u.decryptor->decrypt(sw));
        }
    }
}

TEST(Differential, SquareBitExactAcrossRandomKeys)
{
    for (uint64_t key_seed : {25u, 55u}) {
        Universe u(key_seed);
        compiler::CircuitBuilder b;
        b.output(b.square(b.input()));
        const compiler::Circuit circuit = b.build();
        for (uint64_t i = 0; i < 2; ++i) {
            std::vector<Ciphertext> in = {
                u.encryptor->encrypt(u.randomPlain(80 * key_seed + i))};
            Ciphertext hw = u.runHwCircuit(circuit, in)[0];
            Ciphertext sw = u.evaluator->square(in[0], u.rlk);
            EXPECT_EQ(hw, sw) << "key seed " << key_seed << " draw " << i;
            EXPECT_EQ(u.decryptor->decrypt(hw), u.decryptor->decrypt(sw));
        }
    }
}

TEST(Differential, RotateBitExactAcrossRandomKeys)
{
    // A lone rotation (no hoist group) lowers to the unhoisted
    // automorphism + Galois key-switch schedule, which must reproduce
    // fv::Evaluator::rotateSlots bit for bit on the kAutomorph
    // datapath: permutation with WordDecomp digit broadcast, then the
    // per-element key loads through the relin machinery.
    for (uint64_t key_seed : {9u, 31u}) {
        Universe u(key_seed, /*t=*/65537);
        for (int steps : {1, -1, 3}) {
            compiler::CircuitBuilder b;
            b.output(b.rotate(b.input(), steps));
            const compiler::Circuit circuit = b.build();
            std::vector<Ciphertext> in = {u.encryptor->encrypt(
                u.randomPlain(1000 * key_seed + steps + 10))};
            Ciphertext hw = u.runHwCircuit(circuit, in)[0];
            Ciphertext sw =
                u.evaluator->rotateSlots(in[0], steps, u.gkeys);
            EXPECT_EQ(hw, sw)
                << "key seed " << key_seed << " steps " << steps;
            EXPECT_EQ(u.decryptor->decrypt(hw),
                      u.decryptor->decrypt(sw));
        }
    }
}

TEST(Differential, RotateColumnsBitExactAcrossRandomKeys)
{
    for (uint64_t key_seed : {12u, 28u}) {
        Universe u(key_seed, /*t=*/65537);
        compiler::CircuitBuilder b;
        b.output(b.rotateColumns(b.input()));
        const compiler::Circuit circuit = b.build();
        for (uint64_t i = 0; i < 2; ++i) {
            std::vector<Ciphertext> in = {u.encryptor->encrypt(
                u.randomPlain(1100 * key_seed + i))};
            Ciphertext hw = u.runHwCircuit(circuit, in)[0];
            Ciphertext sw = u.evaluator->rotateColumns(in[0], u.gkeys);
            EXPECT_EQ(hw, sw) << "key seed " << key_seed << " draw " << i;
            EXPECT_EQ(u.decryptor->decrypt(hw),
                      u.decryptor->decrypt(sw));
        }
    }
}

TEST(Differential, HoistedRotationsBitExactAcrossRandomKeys)
{
    // Two rotations of one ciphertext form a hoist group: both share
    // one key-switch decompose on the hardware and must match the
    // evaluator's hoisted reference bit for bit — and still decrypt to
    // the same plaintexts as the unhoisted rotations.
    for (uint64_t key_seed : {14u, 38u}) {
        Universe u(key_seed, /*t=*/65537);
        compiler::CircuitBuilder b;
        const auto x = b.input();
        b.output(b.rotate(x, 1));
        b.output(b.rotate(x, 2));
        const compiler::Circuit circuit = b.build();
        const size_t n = u.params->degree();
        std::vector<Ciphertext> in = {
            u.encryptor->encrypt(u.randomPlain(1200 * key_seed))};
        const std::vector<Ciphertext> hw =
            u.runHwCircuit(circuit, in);
        ASSERT_EQ(hw.size(), 2u);
        for (int steps : {1, 2}) {
            const Ciphertext sw = u.evaluator->applyGaloisHoisted(
                in[0], fv::galoisElementForStep(steps, n), u.gkeys);
            EXPECT_EQ(hw[steps - 1], sw)
                << "key seed " << key_seed << " steps " << steps;
            const Ciphertext unhoisted =
                u.evaluator->rotateSlots(in[0], steps, u.gkeys);
            EXPECT_EQ(u.decryptor->decrypt(hw[steps - 1]),
                      u.decryptor->decrypt(unhoisted));
        }
    }
}

TEST(Differential, RotateSumBitExactAcrossRandomKeys)
{
    for (uint64_t key_seed : {16u, 44u}) {
        Universe u(key_seed, /*t=*/65537);
        // A fresh generator (any sampler state) producing rotation
        // keys for the universe's secret: both paths use these keys.
        fv::KeyGenerator keygen(u.params, key_seed * 77 + 5);
        const fv::GaloisKeys rot_keys =
            keygen.generateRotationKeys(u.sk);
        compiler::CircuitBuilder b;
        b.output(b.rotateSum(b.input()));
        const compiler::Circuit circuit = b.build();
        std::vector<Ciphertext> in = {
            u.encryptor->encrypt(u.randomPlain(1300 * key_seed))};
        Ciphertext hw = u.runHwCircuit(circuit, in, &rot_keys)[0];
        Ciphertext sw = u.evaluator->sumAllSlots(in[0], rot_keys);
        EXPECT_EQ(hw, sw) << "key seed " << key_seed;
        EXPECT_EQ(u.decryptor->decrypt(hw), u.decryptor->decrypt(sw));
    }
}

TEST(Differential, EvaluateCircuitMatchesCompiledRotationCircuit)
{
    // The three execution paths of a mixed rotation workload — fused
    // compiled, per-op round trips, evaluateCircuit — agree bit for
    // bit (the hoist-numerics rule is shared by all of them).
    Universe u(52, /*t=*/65537);
    compiler::CircuitBuilder b;
    const auto x = b.input();
    const auto y = b.input();
    const auto r1 = b.rotate(x, 1);
    const auto r2 = b.rotate(x, 2);
    const auto s = b.add(b.mult(r1, y), r2);
    b.output(b.rotateColumns(s));
    const compiler::Circuit circuit = b.build();

    std::vector<Ciphertext> in = {
        u.encryptor->encrypt(u.randomPlain(71)),
        u.encryptor->encrypt(u.randomPlain(72))};
    const std::vector<Ciphertext> fused =
        u.runHwCircuit(circuit, in);
    const std::vector<Ciphertext> reference = compiler::evaluateCircuit(
        *u.evaluator, &u.rlk, circuit, in, &u.gkeys);
    hw::Coprocessor cp(u.params, u.config, &u.rlk, &u.gkeys);
    compiler::CircuitRunStats stats;
    const std::vector<Ciphertext> op_by_op =
        compiler::runCircuitOpByOp(cp, u.params, circuit, in, &stats);
    EXPECT_EQ(fused, reference);
    EXPECT_EQ(op_by_op, reference);
}

TEST(Differential, ModSwitchBitExactAcrossRandomKeys)
{
    // A lone modulus switch: the ScaleUnit's divide-and-round over the
    // dropped prime must reproduce fv::Evaluator::modSwitch bit for
    // bit, and the downloaded ciphertext must carry the new level.
    for (uint64_t key_seed : {18u, 36u}) {
        Universe u(key_seed, /*t=*/257);
        compiler::CircuitBuilder b;
        b.output(b.modSwitch(b.input()));
        const compiler::Circuit circuit = b.build();
        for (uint64_t i = 0; i < 3; ++i) {
            std::vector<Ciphertext> in = {
                u.encryptor->encrypt(u.randomPlain(1500 * key_seed + i))};
            Ciphertext hw = u.runHwCircuit(circuit, in)[0];
            Ciphertext sw = u.evaluator->modSwitch(in[0]);
            EXPECT_EQ(hw, sw) << "key seed " << key_seed << " draw " << i;
            EXPECT_EQ(hw.level, 1u);
            EXPECT_EQ(u.decryptor->decrypt(hw), u.decryptor->decrypt(sw));
        }
    }
}

TEST(Differential, MultModSwitchMultChainBitExact)
{
    // The level-transition composition the compiler's assignment pass
    // emits: multiply at level 0, drop, multiply again at level 1 —
    // fused, op-by-op, and the software evaluator must agree bit for
    // bit, including the output level.
    for (uint64_t key_seed : {23u, 47u}) {
        Universe u(key_seed);
        compiler::CircuitBuilder b;
        const auto x = b.input();
        const auto y = b.input();
        const auto z = b.input();
        const auto deep = b.modSwitch(b.mult(x, y));
        b.output(b.mult(deep, b.modSwitch(z)));
        const compiler::Circuit circuit = b.build();

        std::vector<Ciphertext> in = {
            u.encryptor->encrypt(u.randomPlain(1600 * key_seed)),
            u.encryptor->encrypt(u.randomPlain(1700 * key_seed)),
            u.encryptor->encrypt(u.randomPlain(1800 * key_seed))};
        const std::vector<Ciphertext> fused = u.runHwCircuit(circuit, in);
        const std::vector<Ciphertext> reference =
            compiler::evaluateCircuit(*u.evaluator, &u.rlk, circuit, in);
        hw::Coprocessor cp(u.params, u.config, &u.rlk, &u.gkeys);
        const std::vector<Ciphertext> op_by_op =
            compiler::runCircuitOpByOp(cp, u.params, circuit, in);
        EXPECT_EQ(fused, reference) << "key seed " << key_seed;
        EXPECT_EQ(op_by_op, reference) << "key seed " << key_seed;
        ASSERT_EQ(fused.size(), 1u);
        EXPECT_EQ(fused[0].level, 1u);
    }
}

TEST(Differential, ServiceModSwitchChainsAcrossWorkerCounts)
{
    // Compiled circuits carrying their own level drops, dispatched
    // through the serving layer at several worker counts: every result
    // must be bit-identical to the software evaluator on the same
    // circuit.
    Universe u(71);
    compiler::CircuitBuilder b;
    const auto x = b.input();
    const auto y = b.input();
    b.output(b.mult(b.modSwitch(b.mult(x, y)), b.modSwitch(y)));
    const compiler::Circuit circuit = b.build();

    compiler::CompilerOptions options;
    options.hw = u.config;
    const auto compiled =
        std::make_shared<const compiler::CompiledCircuit>(
            compiler::compileCircuit(u.params, circuit, options));

    for (size_t workers : {1u, 2u, 3u}) {
        service::ServiceConfig cfg;
        cfg.workers = workers;
        cfg.hw = u.config;
        service::ExecutionService svc(u.params, u.rlk, cfg);

        std::vector<std::future<std::vector<Ciphertext>>> futures;
        std::vector<std::vector<Ciphertext>> expected;
        for (uint64_t i = 0; i < 4; ++i) {
            std::vector<Ciphertext> in = {
                u.encryptor->encrypt(
                    u.randomPlain(2000 + 100 * workers + i)),
                u.encryptor->encrypt(
                    u.randomPlain(3000 + 100 * workers + i))};
            expected.push_back(compiler::evaluateCircuit(
                *u.evaluator, &u.rlk, circuit, in));
            futures.push_back(svc.submitCompiled(compiled, std::move(in)));
        }
        for (size_t i = 0; i < futures.size(); ++i) {
            const std::vector<Ciphertext> got = futures[i].get();
            EXPECT_EQ(got, expected[i])
                << "workers " << workers << " submission " << i;
            EXPECT_EQ(got[0].level, 1u);
        }
        svc.drain();
    }
}

TEST(Differential, ServiceMatchesEvaluatorUnderRandomLoad)
{
    // End-to-end through the serving layer: a mixed randomized Add/Mult
    // workload dispatched across two workers must be bit-identical to
    // the software evaluator, op by op.
    Universe u(67);
    service::ServiceConfig cfg;
    cfg.workers = 2;
    cfg.max_batch = 3;
    cfg.hw = u.config;
    service::ExecutionService svc(u.params, u.rlk, cfg);

    std::vector<std::future<Ciphertext>> futures;
    std::vector<Ciphertext> expected;
    for (uint64_t i = 0; i < 8; ++i) {
        Ciphertext x = u.encryptor->encrypt(u.randomPlain(500 + i));
        Ciphertext y = u.encryptor->encrypt(u.randomPlain(600 + i));
        if (i % 2 == 0) {
            expected.push_back(u.evaluator->multiply(x, y, u.rlk));
            futures.push_back(svc.submit(service::Op::kMult,
                                         std::move(x), std::move(y)));
        } else {
            expected.push_back(u.evaluator->add(x, y));
            futures.push_back(svc.submit(service::Op::kAdd,
                                         std::move(x), std::move(y)));
        }
    }
    for (size_t i = 0; i < futures.size(); ++i) {
        Ciphertext got = futures[i].get();
        EXPECT_EQ(got, expected[i]) << "op " << i;
        EXPECT_EQ(u.decryptor->decrypt(got),
                  u.decryptor->decrypt(expected[i]));
    }
}

} // namespace
} // namespace heat
