/**
 * @file
 * Tests of the asynchronous execution service: plan value semantics
 * (a program built on one coprocessor dispatches to any other),
 * concurrent multi-client submission across worker-pool sizes with
 * deterministic bit-exact results, operand validation, statistics
 * accounting, and the shutdown-while-queued regression (cancelled
 * futures must fail fast, never hang).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/panic.h"
#include "common/random.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "hw/program_builder.h"
#include "service/service.h"
#include "verify_support.h"

namespace heat::service {
namespace {

using fv::Ciphertext;
using fv::Plaintext;

struct ServiceRig
{
    ServiceRig()
    {
        fv::FvConfig cfg;
        cfg.degree = 256;
        cfg.plain_modulus = 4;
        cfg.sigma = 3.2;
        cfg.q_prime_count = 3;
        params = fv::FvParams::create(cfg);
        fv::KeyGenerator keygen(params, 99);
        sk = keygen.generateSecretKey();
        pk = keygen.generatePublicKey(sk);
        rlk = keygen.generateRelinKeys(sk);
        evaluator = std::make_unique<fv::Evaluator>(params);
        hw = hw::HwConfig::paper();
        hw.n_rpaus = (params->fullBase()->size() + 1) / 2;
    }

    ServiceConfig
    serviceConfig(size_t workers, size_t max_batch = 4) const
    {
        ServiceConfig cfg;
        cfg.workers = workers;
        cfg.max_batch = max_batch;
        cfg.hw = hw;
        return cfg;
    }

    Plaintext
    randomPlain(uint64_t seed) const
    {
        Xoshiro256 rng(seed);
        Plaintext p;
        p.coeffs.resize(params->degree());
        for (auto &c : p.coeffs)
            c = rng.uniformBelow(params->plainModulus());
        return p;
    }

    std::shared_ptr<const fv::FvParams> params;
    fv::SecretKey sk;
    fv::PublicKey pk;
    fv::RelinKeys rlk;
    std::unique_ptr<fv::Evaluator> evaluator;
    hw::HwConfig hw;
};

TEST(OpPlan, IsAValueDispatchableToAnyCoprocessor)
{
    ServiceRig rig;
    // Plans built on two independent fresh coprocessors are identical
    // values: allocation inside the memory file is deterministic.
    hw::Coprocessor cp1(rig.params, rig.hw, &rig.rlk);
    hw::Coprocessor cp2(rig.params, rig.hw, &rig.rlk);
    hw::OpPlan plan1 = hw::makeMultPlan(cp1);
    hw::OpPlan plan2 = hw::makeMultPlan(cp2);
    EXPECT_EQ(plan1, plan2);

    // A plan built elsewhere executes on a third coprocessor after its
    // slots are replayed there.
    fv::Encryptor encryptor(rig.params, rig.pk, 7);
    Ciphertext x = encryptor.encrypt(rig.randomPlain(1));
    Ciphertext y = encryptor.encrypt(rig.randomPlain(2));
    hw::Coprocessor cp3(rig.params, rig.hw, &rig.rlk);
    hw::preparePlanSlots(cp3, plan1);
    hw::uploadPlanInputs(cp3, plan1, {&x[0], &x[1]}, {&y[0], &y[1]});
    cp3.execute(plan1.program);
    Ciphertext out;
    out.polys.push_back(cp3.downloadPoly(plan1.program.outputs[0]));
    out.polys.push_back(cp3.downloadPoly(plan1.program.outputs[1]));
    EXPECT_EQ(out, rig.evaluator->multiply(x, y, rig.rlk));
}

TEST(OpPlan, ReplayOnDirtyCoprocessorPanics)
{
    ServiceRig rig;
    hw::Coprocessor cp(rig.params, rig.hw, &rig.rlk);
    hw::OpPlan plan = hw::makeAddPlan(cp);
    // cp already hosts the plan: replaying on the non-fresh memory
    // file must be rejected, not silently misbind slots.
    EXPECT_THROW(hw::preparePlanSlots(cp, plan), PanicError);
}

/** Client workload: submit pairs, remember the evaluator's answers. */
struct ClientRun
{
    std::vector<std::future<Ciphertext>> futures;
    std::vector<Ciphertext> expected;
};

ClientRun
submitMixedOps(ServiceRig &rig, ExecutionService &svc, uint64_t seed,
               size_t ops)
{
    fv::Encryptor encryptor(rig.params, rig.pk, seed);
    ClientRun run;
    for (size_t i = 0; i < ops; ++i) {
        Ciphertext x =
            encryptor.encrypt(rig.randomPlain(seed * 1000 + 2 * i));
        Ciphertext y =
            encryptor.encrypt(rig.randomPlain(seed * 1000 + 2 * i + 1));
        if (i % 2 == 0) {
            run.expected.push_back(
                rig.evaluator->multiply(x, y, rig.rlk));
            run.futures.push_back(
                svc.submit(Op::kMult, std::move(x), std::move(y)));
        } else {
            run.expected.push_back(rig.evaluator->add(x, y));
            run.futures.push_back(
                svc.submit(Op::kAdd, std::move(x), std::move(y)));
        }
    }
    return run;
}

class ServiceMatrix
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{
};

TEST_P(ServiceMatrix, ConcurrentClientsGetBitExactResults)
{
    const auto [n_clients, n_workers] = GetParam();
    ServiceRig rig;
    ExecutionService svc(rig.params, rig.rlk,
                         rig.serviceConfig(n_workers));

    const size_t ops_per_client = 4;
    std::vector<ClientRun> runs(n_clients);
    std::vector<std::thread> clients;
    for (size_t c = 0; c < n_clients; ++c) {
        clients.emplace_back([&, c] {
            runs[c] = submitMixedOps(rig, svc, 10 + c, ops_per_client);
        });
    }
    for (std::thread &t : clients)
        t.join();

    fv::Decryptor decryptor(rig.params, fv::SecretKey{rig.sk.s_ntt});
    for (size_t c = 0; c < n_clients; ++c) {
        for (size_t i = 0; i < runs[c].futures.size(); ++i) {
            Ciphertext got = runs[c].futures[i].get();
            // Results are deterministic — bit-exact against the
            // software evaluator — regardless of which worker ran the
            // op or how ops were batched.
            EXPECT_EQ(got, runs[c].expected[i])
                << "client " << c << " op " << i;
            EXPECT_EQ(decryptor.decrypt(got),
                      decryptor.decrypt(runs[c].expected[i]));
        }
    }
    svc.drain();
    ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.ops_completed, n_clients * ops_per_client);
    EXPECT_EQ(stats.ops_rejected, 0u);
    EXPECT_GE(stats.batches, 1u);
    EXPECT_GT(stats.makespan_us, 0.0);
    EXPECT_GT(stats.modeledOpsPerSecond(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ClientsByWorkers, ServiceMatrix,
    ::testing::Values(std::make_pair(2u, 1u), std::make_pair(2u, 4u),
                      std::make_pair(8u, 1u), std::make_pair(8u, 4u)));

TEST(Service, ResultsIdenticalAcrossWorkerCounts)
{
    ServiceRig rig;
    std::vector<std::vector<Ciphertext>> outcomes;
    for (size_t workers : {1u, 4u}) {
        ExecutionService svc(rig.params, rig.rlk,
                             rig.serviceConfig(workers, 2));
        ClientRun run = submitMixedOps(rig, svc, 5, 6);
        std::vector<Ciphertext> results;
        for (auto &f : run.futures)
            results.push_back(f.get());
        outcomes.push_back(std::move(results));
    }
    ASSERT_EQ(outcomes[0].size(), outcomes[1].size());
    for (size_t i = 0; i < outcomes[0].size(); ++i)
        EXPECT_EQ(outcomes[0][i], outcomes[1][i]) << "op " << i;
}

TEST(Service, ShutdownWhileQueuedFailsFuturesFast)
{
    // Regression: jobs still queued at shutdown must fail with
    // ServiceStoppedError — nothing may hang, and accounting must add
    // up. The service starts paused so the queue is provably deep when
    // shutdown runs.
    ServiceRig rig;
    ServiceConfig cfg = rig.serviceConfig(1, /*max_batch=*/1);
    cfg.start_paused = true;
    ExecutionService svc(rig.params, rig.rlk, cfg);

    fv::Encryptor encryptor(rig.params, rig.pk, 31);
    const size_t submitted = 24;
    std::vector<std::future<Ciphertext>> futures;
    for (size_t i = 0; i < submitted; ++i) {
        futures.push_back(svc.submit(
            Op::kMult, encryptor.encrypt(rig.randomPlain(2 * i)),
            encryptor.encrypt(rig.randomPlain(2 * i + 1))));
    }
    EXPECT_EQ(svc.queueDepth(), submitted);
    svc.shutdown();
    EXPECT_TRUE(svc.stopped());

    size_t completed = 0, rejected = 0;
    for (auto &f : futures) {
        try {
            f.get();
            ++completed;
        } catch (const ServiceStoppedError &) {
            ++rejected;
        }
    }
    EXPECT_EQ(completed + rejected, submitted);
    EXPECT_GE(rejected, 1u) << "queue should not have drained before "
                               "shutdown with a single serial worker";
    ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.ops_completed, completed);
    EXPECT_EQ(stats.ops_rejected, rejected);

    // Submitting after shutdown is refused synchronously.
    EXPECT_THROW(svc.submit(Op::kAdd,
                            encryptor.encrypt(rig.randomPlain(100)),
                            encryptor.encrypt(rig.randomPlain(101))),
                 ServiceStoppedError);
}

TEST(Service, ShutdownIsIdempotentAndDestructorSafe)
{
    ServiceRig rig;
    fv::Encryptor encryptor(rig.params, rig.pk, 37);
    std::future<Ciphertext> orphan;
    {
        ExecutionService svc(rig.params, rig.rlk,
                             rig.serviceConfig(1, 1));
        for (int i = 0; i < 6; ++i) {
            orphan = svc.submit(
                Op::kMult, encryptor.encrypt(rig.randomPlain(50 + i)),
                encryptor.encrypt(rig.randomPlain(60 + i)));
        }
        svc.shutdown();
        svc.shutdown(); // idempotent
    } // destructor runs shutdown again
    // The last-submitted future resolved one way or the other.
    EXPECT_NO_THROW({
        try {
            orphan.get();
        } catch (const ServiceStoppedError &) {
        }
    });
}

TEST(Service, DrainWaitsForQueuedWork)
{
    ServiceRig rig;
    ExecutionService svc(rig.params, rig.rlk, rig.serviceConfig(2));
    fv::Encryptor encryptor(rig.params, rig.pk, 41);
    std::vector<std::future<Ciphertext>> futures;
    for (int i = 0; i < 6; ++i) {
        futures.push_back(svc.submit(
            Op::kAdd, encryptor.encrypt(rig.randomPlain(70 + i)),
            encryptor.encrypt(rig.randomPlain(80 + i))));
    }
    svc.drain();
    EXPECT_EQ(svc.queueDepth(), 0u);
    for (auto &f : futures) {
        EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
    }
}

TEST(Service, MalformedOperandsRejectedSynchronously)
{
    ServiceRig rig;
    ExecutionService svc(rig.params, rig.rlk, rig.serviceConfig(1));
    fv::Encryptor encryptor(rig.params, rig.pk, 43);
    Ciphertext good = encryptor.encrypt(rig.randomPlain(1));

    Ciphertext three = good;
    three.polys.push_back(good[0]);
    EXPECT_THROW(svc.submit(Op::kAdd, three, good), FatalError);

    // Mismatched parameter set (different q-base size).
    fv::FvConfig other_cfg;
    other_cfg.degree = 256;
    other_cfg.plain_modulus = 4;
    other_cfg.sigma = 3.2;
    other_cfg.q_prime_count = 4;
    auto other = fv::FvParams::create(other_cfg);
    fv::KeyGenerator other_keygen(other, 1);
    fv::Encryptor other_encryptor(
        other, other_keygen.generatePublicKey(
                   other_keygen.generateSecretKey()),
        2);
    Ciphertext alien = other_encryptor.encrypt(rig.randomPlain(2));
    EXPECT_THROW(svc.submit(Op::kAdd, alien, alien), FatalError);
}

TEST(Service, RejectsMismatchedRelinKeys)
{
    ServiceRig rig;
    fv::KeyGenerator keygen(rig.params, 3);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::RelinKeys positional =
        keygen.generatePositionalRelinKeys(sk, 45);
    EXPECT_THROW(ExecutionService(rig.params, positional,
                                  rig.serviceConfig(1)),
                 FatalError);
}

TEST(Service, BatchingAmortisesModeledDispatch)
{
    // Same 8-Mult workload, batch sizes 1 vs 8: the batched service's
    // modeled makespan must be strictly smaller (back-to-back programs
    // overlap the per-instruction Arm dispatch with compute). The
    // services start paused so the whole workload is queued before the
    // worker's first dequeue — batching width is then deterministic.
    ServiceRig rig;
    double makespan[2];
    int idx = 0;
    for (size_t batch : {1u, 8u}) {
        ServiceConfig cfg = rig.serviceConfig(1, batch);
        cfg.start_paused = true;
        ExecutionService svc(rig.params, rig.rlk, cfg);
        fv::Encryptor encryptor(rig.params, rig.pk, 47);
        std::vector<std::future<Ciphertext>> futures;
        for (int i = 0; i < 8; ++i) {
            futures.push_back(svc.submit(
                Op::kMult, encryptor.encrypt(rig.randomPlain(i)),
                encryptor.encrypt(rig.randomPlain(100 + i))));
        }
        svc.start();
        for (auto &f : futures)
            f.get();
        svc.drain();
        makespan[idx++] = svc.stats().makespan_us;
    }
    EXPECT_LT(makespan[1], makespan[0]);
}

TEST(Service, MultiTenantKeySetsStayIsolated)
{
    // Two tenants with independent secret keys on one worker pool: each
    // tenant's Mults must relinearize with *its* keys (a cross-tenant
    // key would decrypt to garbage). start_paused + one worker forces
    // both tenants into one batch, so the worker provably swaps key
    // sets mid-batch.
    ServiceRig rig;
    fv::KeyGenerator keygen_b(rig.params, 777);
    fv::SecretKey sk_b = keygen_b.generateSecretKey();
    fv::PublicKey pk_b = keygen_b.generatePublicKey(sk_b);
    fv::RelinKeys rlk_b = keygen_b.generateRelinKeys(sk_b);

    ServiceConfig cfg = rig.serviceConfig(1, /*max_batch=*/16);
    cfg.start_paused = true;
    ExecutionService svc(rig.params, rig.rlk, cfg);
    const TenantId tenant_b = svc.registerTenant("tenant-b", rlk_b);
    EXPECT_EQ(svc.tenantCount(), 2u);

    fv::Encryptor enc_a(rig.params, rig.pk, 5);
    fv::Encryptor enc_b(rig.params, pk_b, 6);
    std::vector<std::future<Ciphertext>> futures;
    std::vector<Ciphertext> expected;
    for (int i = 0; i < 4; ++i) {
        Ciphertext xa = enc_a.encrypt(rig.randomPlain(100 + i));
        Ciphertext ya = enc_a.encrypt(rig.randomPlain(200 + i));
        expected.push_back(rig.evaluator->multiply(xa, ya, rig.rlk));
        futures.push_back(svc.submit(kDefaultTenant, Op::kMult,
                                     std::move(xa), std::move(ya)));
        Ciphertext xb = enc_b.encrypt(rig.randomPlain(300 + i));
        Ciphertext yb = enc_b.encrypt(rig.randomPlain(400 + i));
        expected.push_back(rig.evaluator->multiply(xb, yb, rlk_b));
        futures.push_back(svc.submit(tenant_b, Op::kMult,
                                     std::move(xb), std::move(yb)));
    }
    svc.start();
    std::vector<Ciphertext> results;
    for (size_t i = 0; i < futures.size(); ++i) {
        results.push_back(futures[i].get());
        EXPECT_EQ(results.back(), expected[i]) << "job " << i;
    }

    // Tenant B's products decrypt under B's secret key to the same
    // plaintext the software evaluator produced with B's keys — proof
    // the worker relinearized them with B's key set, not A's.
    fv::Decryptor dec_b(rig.params, fv::SecretKey{sk_b.s_ntt});
    EXPECT_EQ(dec_b.decrypt(results[1]), dec_b.decrypt(expected[1]));

    svc.drain();
    EXPECT_GE(svc.stats().key_swaps, 1u)
        << "one worker serving two tenants must have re-attached keys";
}

TEST(Service, RejectsCircuitWhoseGaloisKeysTheTenantLacks)
{
    ServiceRig rig;
    ExecutionService svc(rig.params, rig.rlk, rig.serviceConfig(1));

    compiler::CircuitBuilder b;
    const compiler::ValueId x = b.input();
    b.output(b.rotate(x, 1));
    const compiler::Circuit circuit = b.build();
    compiler::CompilerOptions copts;
    copts.hw = rig.hw;
    auto compiled = std::make_shared<const compiler::CompiledCircuit>(
        compiler::compileCircuit(rig.params, circuit, copts));
    ASSERT_FALSE(compiled->galois_elements.empty());

    fv::Encryptor encryptor(rig.params, rig.pk, 51);
    // The default session holds no Galois keys: rejected synchronously.
    EXPECT_THROW(svc.submitCompiled(
                     kDefaultTenant, compiled,
                     {encryptor.encrypt(rig.randomPlain(1))}),
                 FatalError);

    // A session registered with the circuit's keys is accepted, and the
    // result matches the software evaluator. Reseeding the rig's
    // keygen reproduces its secret key, so these Galois keys switch
    // back to the same secret the rig's ciphertexts live under.
    fv::KeyGenerator keygen(rig.params, 99);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::GaloisKeys gkeys = keygen.generateGaloisKeys(
        sk, compiler::requiredGaloisElements(circuit,
                                             rig.params->degree()));
    const TenantId rotator =
        svc.registerTenant("rotator", rig.rlk, gkeys);
    const std::vector<Ciphertext> inputs = {
        encryptor.encrypt(rig.randomPlain(2))};
    const std::vector<Ciphertext> reference = compiler::evaluateCircuit(
        *rig.evaluator, &rig.rlk, circuit, inputs, &gkeys);
    std::future<std::vector<Ciphertext>> fut =
        svc.submitCompiled(rotator, compiled, inputs);
    EXPECT_EQ(fut.get(), reference);
}

TEST(Service, BoundedTenantQueueShedsOverload)
{
    ServiceRig rig;
    ServiceConfig cfg = rig.serviceConfig(1, /*max_batch=*/1);
    cfg.start_paused = true;
    cfg.max_queue_per_tenant = 4;
    ExecutionService svc(rig.params, rig.rlk, cfg);

    fv::Encryptor encryptor(rig.params, rig.pk, 53);
    std::vector<std::future<Ciphertext>> accepted;
    for (int i = 0; i < 4; ++i) {
        accepted.push_back(svc.submit(
            Op::kAdd, encryptor.encrypt(rig.randomPlain(2 * i)),
            encryptor.encrypt(rig.randomPlain(2 * i + 1))));
    }
    EXPECT_EQ(svc.queueDepth(), 4u);

    // The bound is reached: further submissions shed synchronously.
    for (int i = 0; i < 2; ++i) {
        EXPECT_THROW(
            svc.submit(Op::kAdd, encryptor.encrypt(rig.randomPlain(90)),
                       encryptor.encrypt(rig.randomPlain(91))),
            ServiceOverloadedError);
    }
    EXPECT_EQ(svc.stats().ops_shed, 2u);

    // Shedding is per tenant: another tenant still has headroom.
    const TenantId other = svc.registerTenant("other", rig.rlk);
    std::future<Ciphertext> other_fut =
        svc.submit(other, Op::kAdd, encryptor.encrypt(rig.randomPlain(92)),
                   encryptor.encrypt(rig.randomPlain(93)));

    // Accepted work still completes once the workers run.
    svc.start();
    for (auto &f : accepted)
        EXPECT_NO_THROW(f.get());
    EXPECT_NO_THROW(other_fut.get());
    svc.drain();
    EXPECT_EQ(svc.stats().ops_completed, 5u);
}

TEST(Service, AdmissionRejectsNoiseExhaustedCircuit)
{
    // A squaring chain far beyond the 3-prime budget: no level
    // assignment can rescue it, so kReject admission must refuse it
    // synchronously with the node-level diagnostic.
    ServiceRig rig;
    compiler::CircuitBuilder b;
    const compiler::ValueId x = b.input();
    compiler::ValueId v = x;
    for (int i = 0; i < 8; ++i)
        v = b.square(v);
    b.output(v);
    const compiler::Circuit circuit = b.build();

    fv::Encryptor encryptor(rig.params, rig.pk, 59);

    ServiceConfig cfg = rig.serviceConfig(1);
    cfg.admission = compiler::NoiseCheck::kReject;
    ExecutionService svc(rig.params, rig.rlk, cfg);
    try {
        svc.submitCircuit(kDefaultTenant, circuit,
                          {encryptor.encrypt(rig.randomPlain(1))});
        FAIL() << "expected AdmissionRejectedError";
    } catch (const AdmissionRejectedError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("node"), std::string::npos) << what;
        EXPECT_NE(what.find("bits"), std::string::npos) << what;
    }
    EXPECT_EQ(svc.stats().admission_rejected, 1u);

    // The default (kWarn) policy keeps accepting the same circuit —
    // existing pipelines are unaffected by admission control.
    ExecutionService lenient(rig.params, rig.rlk, rig.serviceConfig(1));
    std::future<std::vector<fv::Ciphertext>> fut = lenient.submitCircuit(
        kDefaultTenant, circuit, {encryptor.encrypt(rig.randomPlain(2))});
    EXPECT_NO_THROW(fut.get());
    EXPECT_EQ(lenient.stats().admission_rejected, 0u);
}

TEST(Service, ResidentCacheIsBitExactAcrossWorkerCounts)
{
    // PIR-flavoured workload: a pinned "database" ciphertext multiplied
    // by fresh per-request queries. Warm runs skip the database upload;
    // results must be bit-identical to cold runs and to the software
    // evaluator at every worker count.
    ServiceRig rig;
    fv::Encryptor encryptor(rig.params, rig.pk, 61);

    compiler::CircuitBuilder b;
    const compiler::ValueId db = b.input();
    const compiler::ValueId query = b.input();
    b.output(b.mult(db, query));
    const compiler::Circuit circuit = b.build();
    compiler::CompilerOptions copts;
    copts.hw = rig.hw;
    copts.resident_inputs = {0};
    auto compiled = std::make_shared<const compiler::CompiledCircuit>(
        compiler::compileCircuit(rig.params, circuit, copts));

    const Ciphertext hot = encryptor.encrypt(rig.randomPlain(7));
    const size_t requests = 6;
    std::vector<Ciphertext> queries;
    std::vector<Ciphertext> expected;
    for (size_t i = 0; i < requests; ++i) {
        queries.push_back(encryptor.encrypt(rig.randomPlain(10 + i)));
        expected.push_back(
            rig.evaluator->multiply(hot, queries.back(), rig.rlk));
    }

    for (size_t workers : {1u, 3u}) {
        ExecutionService svc(rig.params, rig.rlk,
                             rig.serviceConfig(workers, 4));
        const PinnedHandle handle = svc.pinInput(kDefaultTenant, hot);
        const std::vector<PinnedHandle> handles = {handle};

        // An unknown handle is rejected synchronously.
        const std::vector<PinnedHandle> bogus = {handle + 7};
        EXPECT_THROW(svc.submitCompiledResident(kDefaultTenant, compiled,
                                                bogus, {queries[0]}),
                     FatalError);

        std::vector<std::future<std::vector<Ciphertext>>> futures;
        for (size_t i = 0; i < requests; ++i) {
            futures.push_back(svc.submitCompiledResident(
                kDefaultTenant, compiled, handles, {queries[i]}));
        }
        for (size_t i = 0; i < requests; ++i) {
            std::vector<Ciphertext> outs = futures[i].get();
            ASSERT_EQ(outs.size(), 1u);
            EXPECT_EQ(outs[0], expected[i])
                << "workers " << workers << " request " << i;
        }
        svc.drain();
        ServiceStats stats = svc.stats();
        EXPECT_EQ(stats.resident_cold_runs + stats.resident_warm_runs,
                  requests);
        EXPECT_GE(stats.resident_cold_runs, 1u);
        EXPECT_LE(stats.resident_cold_runs, workers);
        if (workers == 1) {
            // One serial worker: exactly one upload of the database,
            // every subsequent request runs warm.
            EXPECT_EQ(stats.resident_cold_runs, 1u);
            EXPECT_EQ(stats.resident_warm_runs, requests - 1);
        }
    }
}

TEST(Service, SnapshotIsInternallyConsistentUnderLoad)
{
    ServiceRig rig;
    ExecutionService svc(rig.params, rig.rlk, rig.serviceConfig(4));

    // An observer thread snapshots continuously while two clients
    // submit. snapshot() captures stats, latency and queue depth under
    // ONE lock acquisition, and workers observe latencies into the
    // histogram BEFORE retiring the batch under that lock — so no
    // snapshot may ever show more completed jobs than latency samples,
    // and the per-unit cycle buckets must sum exactly to fpga_cycles
    // at every instant. (The TSan CI leg runs this suite.)
    std::atomic<bool> done{false};
    std::thread observer([&] {
        while (!done.load(std::memory_order_relaxed)) {
            const ServiceSnapshot snap = svc.snapshot();
            const ServiceStats &st = snap.stats;
            EXPECT_GE(snap.latency.samples,
                      st.ops_completed + st.circuits_completed);
            EXPECT_LE(snap.latency.p50_us, snap.latency.p99_us);
            EXPECT_LE(snap.latency.p99_us, snap.latency.max_us);
            hw::Cycle unit_sum = 0;
            for (hw::Cycle c : st.unit_cycles)
                unit_sum += c;
            EXPECT_EQ(unit_sum, st.fpga_cycles);
            uint64_t tenant_completed = 0;
            uint64_t tenant_arrivals = 0;
            for (const TenantStats &t : st.tenants) {
                tenant_completed += t.completed;
                tenant_arrivals += t.arrivals;
            }
            // Tenant slices retire in the same critical section as the
            // aggregate counters.
            EXPECT_EQ(tenant_completed,
                      st.ops_completed + st.circuits_completed);
            EXPECT_GE(tenant_arrivals, tenant_completed);
            std::this_thread::yield();
        }
    });

    const size_t kClients = 2;
    const size_t kOps = 12;
    std::vector<ClientRun> runs(kClients);
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c)
        clients.emplace_back(
            [&, c] { runs[c] = submitMixedOps(rig, svc, 31 + c, kOps); });
    for (std::thread &t : clients)
        t.join();
    for (ClientRun &r : runs)
        for (auto &f : r.futures)
            f.get();
    svc.drain();
    done.store(true, std::memory_order_relaxed);
    observer.join();

    const ServiceSnapshot fin = svc.snapshot();
    EXPECT_EQ(fin.stats.ops_completed, kClients * kOps);
    EXPECT_EQ(fin.latency.samples, kClients * kOps);
    EXPECT_EQ(fin.queue_depth, 0u);
    ASSERT_EQ(fin.stats.tenants.size(), 1u);
    EXPECT_EQ(fin.stats.tenants[0].arrivals, kClients * kOps);
    EXPECT_EQ(fin.stats.tenants[0].completed, kClients * kOps);
    EXPECT_EQ(fin.stats.tenants[0].shed, 0u);
}

} // namespace
} // namespace heat::service
