/**
 * @file
 * Integration tests of the coprocessor: memory file discipline, program
 * construction (Table II instruction mix), bit-exact golden comparison
 * of the simulated FV.Mult against the software evaluator, end-to-end
 * decryption of hardware-produced ciphertexts, timing against Tables
 * I-II and the two-coprocessor system throughput (Sec. VI-A).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/panic.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "hw/arm_host.h"
#include "hw/coprocessor.h"
#include "hw/program_builder.h"
#include "hw/system.h"

namespace heat::hw {
namespace {

using fv::ArithPath;
using fv::Ciphertext;
using fv::Plaintext;

/** Small-ring fixture so functional tests run fast. */
struct SmallRig
{
    SmallRig()
    {
        fv::FvConfig cfg;
        cfg.degree = 256;
        cfg.plain_modulus = 4;
        cfg.sigma = 3.2;
        cfg.q_prime_count = 3;
        params = fv::FvParams::create(cfg);
        keygen = std::make_unique<fv::KeyGenerator>(params, 99);
        sk = keygen->generateSecretKey();
        pk = keygen->generatePublicKey(sk);
        rlk = keygen->generateRelinKeys(sk);
        encryptor = std::make_unique<fv::Encryptor>(params, pk, 100);
        decryptor = std::make_unique<fv::Decryptor>(params, sk);
        evaluator = std::make_unique<fv::Evaluator>(params, ArithPath::kHps);
        // The small base has 3+4 primes -> 4 RPAUs.
        config = HwConfig::paper();
        config.n_rpaus = 4;
    }

    Plaintext
    somePlain(uint64_t seed) const
    {
        Xoshiro256 rng(seed);
        Plaintext p;
        p.coeffs.resize(params->degree());
        for (auto &c : p.coeffs)
            c = rng.uniformBelow(params->plainModulus());
        return p;
    }

    std::shared_ptr<const fv::FvParams> params;
    std::unique_ptr<fv::KeyGenerator> keygen;
    fv::SecretKey sk;
    fv::PublicKey pk;
    fv::RelinKeys rlk;
    std::unique_ptr<fv::Encryptor> encryptor;
    std::unique_ptr<fv::Decryptor> decryptor;
    std::unique_ptr<fv::Evaluator> evaluator;
    HwConfig config;
};

TEST(MemoryFile, AllocationAccounting)
{
    auto params = fv::FvParams::paper();
    MemoryFile mem(params, HwConfig::paper());
    EXPECT_EQ(mem.capacity(), 84u);
    PolyId a = mem.allocate(BaseTag::kQ);
    EXPECT_EQ(mem.slotsInUse(), 6u);
    PolyId b = mem.allocate(BaseTag::kFull);
    EXPECT_EQ(mem.slotsInUse(), 19u);
    mem.extendToFull(a);
    EXPECT_EQ(mem.slotsInUse(), 26u);
    mem.release(b);
    EXPECT_EQ(mem.slotsInUse(), 13u);
    EXPECT_EQ(mem.peakSlots(), 26u);
    // Released records stay readable.
    EXPECT_NO_THROW(mem.record(b));
    mem.free(a);
    EXPECT_THROW(mem.record(a), PanicError);
}

TEST(MemoryFile, InvalidRecordAccessNamesTheRecord)
{
    auto params = fv::FvParams::paper();
    MemoryFile mem(params, HwConfig::paper());
    const PolyId a = mem.allocate(BaseTag::kQ);

    // Out-of-range id: the error carries the id and the record count.
    try {
        mem.record(a + 41);
        FAIL() << "out-of-range access must throw";
    } catch (const InvalidRecordError &e) {
        EXPECT_EQ(e.id(), a + 41);
        EXPECT_NE(std::string(e.what()).find("records exist"),
                  std::string::npos)
            << e.what();
    }

    // Freed record: same typed error, different cause in the message.
    mem.free(a);
    try {
        mem.record(a);
        FAIL() << "freed-record access must throw";
    } catch (const InvalidRecordError &e) {
        EXPECT_EQ(e.id(), a);
        EXPECT_NE(std::string(e.what()).find("freed"),
                  std::string::npos)
            << e.what();
    }

    // The typed error still is a PanicError, so existing broad
    // handlers keep working.
    EXPECT_THROW(mem.exportPoly(a), PanicError);
}

TEST(MemoryFile, ExhaustionIsFatal)
{
    auto params = fv::FvParams::paper();
    MemoryFile mem(params, HwConfig::paper());
    // 84 slots / 13 per full poly = 6 polys fit, the 7th does not.
    for (int i = 0; i < 6; ++i)
        mem.allocate(BaseTag::kFull);
    EXPECT_THROW(mem.allocate(BaseTag::kFull), FatalError);
}

TEST(MemoryFile, ImportExportRoundTrip)
{
    SmallRig rig;
    MemoryFile mem(rig.params, rig.config);
    ntt::RnsPoly poly(rig.params->qBase(), rig.params->degree());
    Xoshiro256 rng(7);
    for (size_t i = 0; i < poly.residueCount(); ++i) {
        for (auto &x : poly.residue(i))
            x = rng.uniformBelow(rig.params->qBase()->modulus(i).value());
    }
    PolyId id = mem.import(poly, Layout::kNatural);
    EXPECT_EQ(mem.exportPoly(id).data(), poly.data());
}

TEST(ProgramBuilder, MultMatchesTableIIInstructionMix)
{
    auto params = fv::FvParams::paper();
    Coprocessor cp(params, HwConfig::paper());
    ntt::RnsPoly zero(params->qBase(), params->degree());
    std::array<PolyId, 2> a{cp.uploadPoly(zero), cp.uploadPoly(zero)};
    std::array<PolyId, 2> b{cp.uploadPoly(zero), cp.uploadPoly(zero)};
    ProgramBuilder builder(cp);
    Program p = builder.buildMult(a, b);

    std::map<Opcode, int> counts;
    for (const auto &i : p.instrs)
        ++counts[i.op];
    // Table II call counts (CoeffAdd: we schedule 14, the paper lists 26).
    EXPECT_EQ(counts[Opcode::kNtt], 14);
    EXPECT_EQ(counts[Opcode::kIntt], 8);
    EXPECT_EQ(counts[Opcode::kCoeffMul], 20);
    EXPECT_EQ(counts[Opcode::kCoeffAdd], 14);
    EXPECT_EQ(counts[Opcode::kRearrange], 22);
    EXPECT_EQ(counts[Opcode::kLift], 4);
    EXPECT_EQ(counts[Opcode::kScale], 3);
    EXPECT_EQ(counts[Opcode::kKeyLoad], 6);
}

TEST(ProgramBuilder, MultFitsTheMemoryFile)
{
    auto params = fv::FvParams::paper();
    Coprocessor cp(params, HwConfig::paper());
    ntt::RnsPoly zero(params->qBase(), params->degree());
    std::array<PolyId, 2> a{cp.uploadPoly(zero), cp.uploadPoly(zero)};
    std::array<PolyId, 2> b{cp.uploadPoly(zero), cp.uploadPoly(zero)};
    ProgramBuilder builder(cp);
    builder.buildMult(a, b);
    // Peak pressure must fit the 84-slot budget of Table IV.
    EXPECT_LE(cp.memory().peakSlots(), cp.memory().capacity());
    EXPECT_GE(cp.memory().peakSlots(), 70u); // and genuinely tight
}

TEST(CoprocessorFunctional, AddMatchesEvaluator)
{
    SmallRig rig;
    Ciphertext x = rig.encryptor->encrypt(rig.somePlain(1));
    Ciphertext y = rig.encryptor->encrypt(rig.somePlain(2));

    Coprocessor cp(rig.params, rig.config, &rig.rlk);
    std::array<PolyId, 2> a{cp.uploadPoly(x[0]), cp.uploadPoly(x[1])};
    std::array<PolyId, 2> b{cp.uploadPoly(y[0]), cp.uploadPoly(y[1])};
    ProgramBuilder builder(cp);
    Program p = builder.buildAdd(a, b);
    cp.execute(p);

    Ciphertext expect = rig.evaluator->add(x, y);
    EXPECT_EQ(cp.downloadPoly(p.outputs[0]).data(), expect[0].data());
    EXPECT_EQ(cp.downloadPoly(p.outputs[1]).data(), expect[1].data());
}

TEST(CoprocessorFunctional, MultBitExactAgainstEvaluator)
{
    // The coprocessor and the software evaluator share every arithmetic
    // kernel, so the simulated Mult must be bit-identical to the HPS
    // evaluator path.
    SmallRig rig;
    Ciphertext x = rig.encryptor->encrypt(rig.somePlain(3));
    Ciphertext y = rig.encryptor->encrypt(rig.somePlain(4));

    Coprocessor cp(rig.params, rig.config, &rig.rlk);
    std::array<PolyId, 2> a{cp.uploadPoly(x[0]), cp.uploadPoly(x[1])};
    std::array<PolyId, 2> b{cp.uploadPoly(y[0]), cp.uploadPoly(y[1])};
    ProgramBuilder builder(cp);
    Program p = builder.buildMult(a, b);
    cp.execute(p);

    Ciphertext expect = rig.evaluator->multiply(x, y, rig.rlk);
    EXPECT_EQ(cp.downloadPoly(p.outputs[0]).data(), expect[0].data());
    EXPECT_EQ(cp.downloadPoly(p.outputs[1]).data(), expect[1].data());
}

TEST(CoprocessorFunctional, MultDecryptsToProduct)
{
    SmallRig rig;
    Plaintext m0 = rig.somePlain(5);
    Plaintext m1 = rig.somePlain(6);
    Ciphertext x = rig.encryptor->encrypt(m0);
    Ciphertext y = rig.encryptor->encrypt(m1);

    Coprocessor cp(rig.params, rig.config, &rig.rlk);
    std::array<PolyId, 2> a{cp.uploadPoly(x[0]), cp.uploadPoly(x[1])};
    std::array<PolyId, 2> b{cp.uploadPoly(y[0]), cp.uploadPoly(y[1])};
    ProgramBuilder builder(cp);
    Program p = builder.buildMult(a, b);
    cp.execute(p);

    Ciphertext hw_ct;
    hw_ct.polys.push_back(cp.downloadPoly(p.outputs[0]));
    hw_ct.polys.push_back(cp.downloadPoly(p.outputs[1]));
    Plaintext hw_plain = rig.decryptor->decrypt(hw_ct);

    // Reference product mod (x^n + 1, t).
    const uint64_t t = rig.params->plainModulus();
    const size_t n = rig.params->degree();
    std::vector<uint64_t> expect(n, 0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            uint64_t prod = m0.coeffs[i] * m1.coeffs[j] % t;
            size_t k = i + j;
            if (k < n)
                expect[k] = (expect[k] + prod) % t;
            else
                expect[k - n] = (expect[k - n] + t - prod) % t;
        }
    }
    for (size_t i = 0; i < n; ++i) {
        uint64_t got = i < hw_plain.coeffs.size() ? hw_plain.coeffs[i] : 0;
        ASSERT_EQ(got, expect[i]) << "coefficient " << i;
    }
}

TEST(CoprocessorFunctional, ProgramReusableAcrossRuns)
{
    // Throughput benches build the program once and re-upload operands.
    SmallRig rig;
    Coprocessor cp(rig.params, rig.config, &rig.rlk);
    ntt::RnsPoly zero(rig.params->qBase(), rig.params->degree());
    std::array<PolyId, 2> a{cp.uploadPoly(zero), cp.uploadPoly(zero)};
    std::array<PolyId, 2> b{cp.uploadPoly(zero), cp.uploadPoly(zero)};
    ProgramBuilder builder(cp);
    Program p = builder.buildMult(a, b);

    for (uint64_t round = 0; round < 2; ++round) {
        Ciphertext x = rig.encryptor->encrypt(rig.somePlain(10 + round));
        Ciphertext y = rig.encryptor->encrypt(rig.somePlain(20 + round));
        cp.uploadInto(a[0], x[0]);
        cp.uploadInto(a[1], x[1]);
        cp.uploadInto(b[0], y[0]);
        cp.uploadInto(b[1], y[1]);
        cp.execute(p);

        Ciphertext expect = rig.evaluator->multiply(x, y, rig.rlk);
        EXPECT_EQ(cp.downloadPoly(p.outputs[0]).data(), expect[0].data());
        EXPECT_EQ(cp.downloadPoly(p.outputs[1]).data(), expect[1].data());
    }
}

TEST(CoprocessorTiming, TableIIPerInstructionTimes)
{
    auto params = fv::FvParams::paper();
    HwConfig config = HwConfig::paper();
    Coprocessor cp(params, config);

    auto us_of = [&](Opcode op) {
        Instruction i;
        i.op = op;
        return config.cyclesToUs(cp.instructionCycles(i));
    };
    // Table II: NTT 73.0, Inverse-NTT 85.0, CMul 13.1, CAdd 13.6,
    // Rearrange 20.8, Lift 82.6, Scale 82.7 (us). Model within ~15%.
    EXPECT_NEAR(us_of(Opcode::kNtt), 73.0, 6.0);
    EXPECT_NEAR(us_of(Opcode::kIntt), 85.0, 7.0);
    EXPECT_NEAR(us_of(Opcode::kCoeffMul), 13.1, 2.0);
    EXPECT_NEAR(us_of(Opcode::kCoeffAdd), 13.6, 2.0);
    EXPECT_NEAR(us_of(Opcode::kRearrange), 20.8, 3.1);
    EXPECT_NEAR(us_of(Opcode::kLift), 82.6, 8.0);
    EXPECT_NEAR(us_of(Opcode::kScale), 82.7, 8.0);
}

TEST(CoprocessorTiming, MultMatchesTableI)
{
    // Table I: Mult in HW 5,349,567 Arm cycles = 4.458 ms.
    auto params = fv::FvParams::paper();
    HwConfig config = HwConfig::paper();
    Coprocessor cp(params, config);
    ntt::RnsPoly zero(params->qBase(), params->degree());
    std::array<PolyId, 2> a{cp.uploadPoly(zero), cp.uploadPoly(zero)};
    std::array<PolyId, 2> b{cp.uploadPoly(zero), cp.uploadPoly(zero)};
    ProgramBuilder builder(cp);
    Program p = builder.buildMult(a, b);

    double total_us = 0.0;
    for (const auto &i : p.instrs) {
        total_us += config.cyclesToUs(cp.instructionCycles(i));
        total_us += cp.instructionDmaUs(i);
    }
    EXPECT_NEAR(total_us / 1000.0, 4.458, 0.45); // within 10%
}

TEST(CoprocessorTiming, AddMatchesTableI)
{
    // Table I: Add in HW 31,339 Arm cycles = 26 us.
    auto params = fv::FvParams::paper();
    HwConfig config = HwConfig::paper();
    Coprocessor cp(params, config);
    Instruction add;
    add.op = Opcode::kCoeffAdd;
    const double us = 2.0 * config.cyclesToUs(cp.instructionCycles(add));
    EXPECT_NEAR(us, 26.0, 3.0);
}

TEST(ArmHost, TableITransferAndSwAdd)
{
    auto params = fv::FvParams::paper();
    ArmHostModel host(params, HwConfig::paper());
    // Table I: send two ciphertexts 362 us, receive one 180 us,
    // Add in SW 45.57 ms.
    EXPECT_NEAR(host.sendCiphertextsUs(2), 362.0, 15.0);
    EXPECT_NEAR(host.receiveCiphertextUs(), 180.0, 8.0);
    EXPECT_NEAR(host.softwareAddUs() / 1000.0, 45.567, 1.0);
    // The paper: SW add is ~80x slower than HW add incl. transfers.
    const double hw_add_total =
        26.0 + host.sendCiphertextsUs(2) + host.receiveCiphertextUs();
    EXPECT_NEAR(host.softwareAddUs() / hw_add_total, 80.0, 12.0);
}

TEST(HeatSystem, Throughput400MultPerSecond)
{
    // Sec. VI-A: two coprocessors give ~400 Mult/s.
    auto params = fv::FvParams::paper();
    HeatSystem system(params, HwConfig::paper(), 2);
    ThroughputResult r = system.simulate(200);
    EXPECT_NEAR(r.mults_per_second, 400.0, 45.0);
    EXPECT_LT(r.dma_utilization, 1.0);
}

TEST(HeatSystem, TwoCoprocessorsNearlyDoubleThroughput)
{
    auto params = fv::FvParams::paper();
    HeatSystem one(params, HwConfig::paper(), 1);
    HeatSystem two(params, HwConfig::paper(), 2);
    const double t1 = one.simulate(100).mults_per_second;
    const double t2 = two.simulate(100).mults_per_second;
    EXPECT_GT(t2, 1.8 * t1);
    EXPECT_LE(t2, 2.05 * t1);
}

TEST(HeatSystem, TraditionalArchitectureIsSlower)
{
    // Sec. VI-C: the traditional-CRT coprocessor needs 8.3 ms per Mult
    // (225 MHz, 4 Lift/Scale cores) versus 4.458 ms for HPS — slower,
    // but less than 2x because relin keys are 3x smaller. Our model
    // charges the same 6-digit key schedule, so expect <2.2x.
    auto params = fv::FvParams::paper();
    HeatSystem fast(params, HwConfig::paper(), 1);
    HeatSystem slow(params, HwConfig::paperTraditional(), 1);
    const double fast_ms =
        fast.profile().compute_us / 1000.0 +
        fast.profile().key_dma_us * fast.profile().key_segments / 1000.0;
    const double slow_ms =
        slow.profile().compute_us / 1000.0 +
        slow.profile().key_dma_us * slow.profile().key_segments / 1000.0;
    EXPECT_GT(slow_ms, fast_ms);
    EXPECT_LT(slow_ms, 2.2 * fast_ms);
    EXPECT_NEAR(slow_ms, 8.3, 1.2);
}

} // namespace
} // namespace heat::hw
