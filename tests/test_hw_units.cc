/**
 * @file
 * Unit tests for the hardware building-block models: BRAM port
 * accounting, the Fig. 3 conflict-free NTT access schedule, the DMA
 * model against Table III, the traditional Lift/Scale cycle model
 * against Sec. VI-C, the resource model against Table IV, the power
 * model against Sec. VI-C, and the Table V scaling estimator.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/panic.h"
#include "fv/params.h"
#include "hw/bram.h"
#include "hw/dma.h"
#include "hw/mod_reduce_unit.h"
#include "hw/ntt_engine.h"
#include "hw/power_model.h"
#include "hw/resource_model.h"
#include "hw/rpau.h"
#include "hw/scaling_estimator.h"
#include "hw/trad_lift_scale.h"

namespace heat::hw {
namespace {

TEST(BramBank, CountsAccesses)
{
    BramBank bank(0, 1024);
    bank.recordRead(0, 5);
    bank.recordRead(1, 6);
    bank.recordWrite(1, 7);
    EXPECT_EQ(bank.reads(), 2u);
    EXPECT_EQ(bank.writes(), 1u);
    EXPECT_EQ(bank.conflicts(), 0u);
}

TEST(BramBank, DetectsSameCycleConflicts)
{
    BramBank bank(0, 1024);
    bank.recordRead(3, 1);
    bank.recordRead(3, 2); // second read in cycle 3: conflict
    EXPECT_EQ(bank.conflicts(), 1u);
    // Reads and writes use separate ports: no conflict.
    bank.recordWrite(4, 1);
    bank.recordRead(4, 2);
    EXPECT_EQ(bank.conflicts(), 1u);
}

TEST(BramBank, RangeChecked)
{
    BramBank bank(1024, 1024);
    EXPECT_THROW(bank.recordRead(0, 5), PanicError);
    EXPECT_NO_THROW(bank.recordRead(0, 1030));
}

class NttEngineTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(NttEngineTest, ScheduleIsConflictFree)
{
    // The paper's Fig. 3 claim: the two-core schedule never produces a
    // same-cycle port conflict in any stage regime.
    NttEngine engine(HwConfig::paper(), GetParam());
    uint64_t conflicts = 0;
    engine.simulate(conflicts);
    EXPECT_EQ(conflicts, 0u);
}

TEST_P(NttEngineTest, EveryWordTouchedOncePerStage)
{
    NttEngine engine(HwConfig::paper(), GetParam());
    const size_t words = GetParam() / 2;
    for (int stage = 0; stage < engine.stageCount(); ++stage) {
        auto sched = engine.stageReadSchedule(stage);
        ASSERT_EQ(sched.size(), words) << "stage " << stage;
        std::set<uint32_t> seen;
        for (const auto &a : sched)
            seen.insert(a.word);
        EXPECT_EQ(seen.size(), words) << "stage " << stage;
    }
}

TEST_P(NttEngineTest, CoresShareWorkEqually)
{
    NttEngine engine(HwConfig::paper(), GetParam());
    for (int stage = 0; stage < engine.stageCount(); ++stage) {
        auto sched = engine.stageReadSchedule(stage);
        size_t core0 = 0;
        for (const auto &a : sched)
            core0 += a.core == 0 ? 1 : 0;
        EXPECT_EQ(core0, sched.size() / 2) << "stage " << stage;
    }
}

TEST_P(NttEngineTest, StageDurationIsQuarterDegree)
{
    // Two butterflies per cycle: each stage streams n/4 cycles.
    NttEngine engine(HwConfig::paper(), GetParam());
    for (int stage = 0; stage < engine.stageCount(); ++stage) {
        auto sched = engine.stageReadSchedule(stage);
        Cycle last = 0;
        for (const auto &a : sched)
            last = std::max(last, a.cycle);
        EXPECT_EQ(last + 1, GetParam() / 4) << "stage " << stage;
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, NttEngineTest,
                         ::testing::Values(size_t(16), size_t(64),
                                           size_t(1024), size_t(4096)));

TEST(NttEngine, SimulatedCyclesMatchAnalytic)
{
    NttEngine engine(HwConfig::paper(), 4096);
    uint64_t conflicts = 0;
    EXPECT_EQ(engine.simulate(conflicts), engine.forwardCycles());
}

TEST(NttEngine, PaperCycleBallpark)
{
    // Table II: NTT 73 us, Inverse-NTT 85 us at 200 MHz including the
    // ~2.5 us dispatch overhead. The engine alone should land within
    // 10% of 73 - 2.5 and 85 - 2.5 us.
    HwConfig config = HwConfig::paper();
    NttEngine engine(config, 4096);
    const double fwd_us = config.cyclesToUs(engine.forwardCycles());
    const double inv_us = config.cyclesToUs(engine.inverseCycles());
    EXPECT_NEAR(fwd_us, 70.5, 7.0);
    EXPECT_NEAR(inv_us, 82.5, 8.0);
}

TEST(ModReduceUnit, FunctionalAndLatency)
{
    rns::Modulus q(1073479681);
    ModReduceUnit unit(q);
    EXPECT_EQ(unit.reduce(uint64_t(1) << 59),
              (uint64_t(1) << 59) % q.value());
    // The configured butterfly pipeline covers the full datapath.
    EXPECT_LE(kButterflyLatency, HwConfig::paper().butterfly_pipeline_depth);
}

TEST(RpauMapping, MatchesPaperSharing)
{
    // q0..q5 -> RPAU 0..5; q6..q11 -> RPAU 0..5; q12 -> RPAU 6.
    EXPECT_EQ(rpauForResidue(0, 6), 0u);
    EXPECT_EQ(rpauForResidue(5, 6), 5u);
    EXPECT_EQ(rpauForResidue(6, 6), 0u);
    EXPECT_EQ(rpauForResidue(11, 6), 5u);
    EXPECT_EQ(rpauForResidue(12, 6), 6u);
    EXPECT_EQ(batchOfResidue(5, 6), 0);
    EXPECT_EQ(batchOfResidue(6, 6), 1);

    auto b0 = residuesOfBatch(0, 6, 13);
    auto b1 = residuesOfBatch(1, 6, 13);
    EXPECT_EQ(b0.size(), 6u);
    EXPECT_EQ(b1.size(), 7u);
    EXPECT_EQ(b1.front(), 6u);
    EXPECT_EQ(b1.back(), 12u);
}

TEST(DmaModel, ReproducesTableIII)
{
    DmaModel dma(HwConfig::paper());
    // Table III: 98304 bytes as single / 16 KiB / 1 KiB chunks.
    EXPECT_NEAR(dma.transferUs(98304, 98304), 76.0, 2.0);
    EXPECT_NEAR(dma.transferUs(98304, 16384), 109.0, 3.0);
    EXPECT_NEAR(dma.transferUs(98304, 1024), 202.0, 5.0);
}

TEST(DmaModel, SingleTransferIsFastest)
{
    DmaModel dma(HwConfig::paper());
    for (size_t bytes : {size_t(4096), size_t(98304), size_t(1 << 20)}) {
        double single = dma.transferUs(bytes, bytes);
        EXPECT_LT(single, dma.transferUs(bytes, 16384) + 1e-9);
        EXPECT_LT(single, dma.transferUs(bytes, 1024));
    }
}

TEST(TradLiftScale, ReproducesSectionVIC)
{
    // Single-core Lift 1.68 ms and Scale 4.3 ms at 225 MHz.
    auto params = fv::FvParams::paper();
    HwConfig config = HwConfig::paperTraditional();
    TradLiftScaleModel model(params, config);
    EXPECT_NEAR(model.singleCoreLiftUs() / 1000.0, 1.68, 0.09);
    EXPECT_NEAR(model.singleCoreScaleUs() / 1000.0, 4.3, 0.22);
    // The HwConfig beats must agree with the structural model.
    EXPECT_EQ(model.liftBeat(), size_t(config.trad_lift_beat));
    EXPECT_EQ(model.scaleBeat(), size_t(config.trad_scale_beat));
}

TEST(TradLiftScale, DivisionDominatesScale)
{
    auto params = fv::FvParams::paper();
    TradLiftScaleModel model(params, HwConfig::paperTraditional());
    // Sec. V-C: the Scale division is ~4x the Lift division.
    EXPECT_NEAR(static_cast<double>(model.scaleDivisionCycles()) /
                    static_cast<double>(model.liftDivisionCycles()),
                4.0, 1.1);
}

TEST(ResourceModel, ReproducesTableIV)
{
    auto params = fv::FvParams::paper();
    ResourceModel model(*params, HwConfig::paper());

    Resources one = model.coprocessor();
    EXPECT_NEAR(one.lut, 63522, 650);
    EXPECT_NEAR(one.ff, 25622, 300);
    EXPECT_NEAR(one.bram36, 388, 4);
    EXPECT_NEAR(one.dsp, 208, 2);

    Resources two = model.system(2);
    EXPECT_NEAR(two.lut, 133692, 1400);
    EXPECT_NEAR(two.ff, 60312, 700);
    EXPECT_NEAR(two.bram36, 815, 8);
    EXPECT_NEAR(two.dsp, 416, 4);
}

TEST(ResourceModel, UtilizationMatchesPaperPercentages)
{
    auto params = fv::FvParams::paper();
    ResourceModel model(*params, HwConfig::paper());
    DeviceCapacity dev;
    Resources two = model.system(2);
    // Paper: 49% LUT, 11% FF, 89% BRAM, 16% DSP for the full system.
    EXPECT_NEAR(ResourceModel::utilizationPct(two.lut, dev.lut), 49, 2);
    EXPECT_NEAR(ResourceModel::utilizationPct(two.ff, dev.ff), 11, 1.5);
    EXPECT_NEAR(ResourceModel::utilizationPct(two.bram36, dev.bram36), 89,
                3);
    EXPECT_NEAR(ResourceModel::utilizationPct(two.dsp, dev.dsp), 16, 1.5);
}

TEST(ResourceModel, DesignIsMemoryConstrained)
{
    // The paper notes the design is constrained by BRAM, not logic.
    auto params = fv::FvParams::paper();
    ResourceModel model(*params, HwConfig::paper());
    DeviceCapacity dev;
    Resources two = model.system(2);
    const double bram_pct =
        ResourceModel::utilizationPct(two.bram36, dev.bram36);
    EXPECT_GT(bram_pct, ResourceModel::utilizationPct(two.lut, dev.lut));
    EXPECT_GT(bram_pct, ResourceModel::utilizationPct(two.ff, dev.ff));
    EXPECT_GT(bram_pct, ResourceModel::utilizationPct(two.dsp, dev.dsp));
}

TEST(PowerModel, ReproducesSectionVIC)
{
    PowerModel power;
    EXPECT_DOUBLE_EQ(power.staticW(), 5.3);
    EXPECT_DOUBLE_EQ(power.dynamicW(1), 2.2);
    EXPECT_DOUBLE_EQ(power.dynamicW(2), 3.4);
    // Peak total: 8.7 W (Sec. VI-E comparison against the 40 W i5).
    EXPECT_DOUBLE_EQ(power.totalW(2), 8.7);
}

TEST(ScalingEstimator, ReproducesTableV)
{
    // Base row: 64K/25K/0.4K/0.2K resources, 4.46/0.54 ms.
    ScalingEstimator est(64e3, 25e3, 0.4e3, 0.2e3, 4.46, 0.54);
    auto rows = est.estimate(4);
    ASSERT_EQ(rows.size(), 4u);

    // Row 2 (2^13, 360): 128K/50K/1.6K/0.4K, 9.68/2.16/11.9 ms.
    EXPECT_NEAR(rows[1].lut, 128e3, 1);
    EXPECT_NEAR(rows[1].bram36, 1.6e3, 1);
    EXPECT_NEAR(rows[1].compute_ms, 9.68, 0.02);
    EXPECT_NEAR(rows[1].comm_ms, 2.16, 0.01);

    // Row 3 (2^14, 720): 21.0/8.64/29.6 ms.
    EXPECT_NEAR(rows[2].compute_ms, 21.0, 0.1);
    EXPECT_NEAR(rows[2].comm_ms, 8.64, 0.05);

    // Row 4 (2^15, 1440): 45.6/34.6/80.2 ms.
    EXPECT_NEAR(rows[3].compute_ms, 45.6, 0.3);
    EXPECT_NEAR(rows[3].comm_ms, 34.6, 0.2);
    EXPECT_NEAR(rows[3].total_ms, 80.2, 0.5);
}

} // namespace
} // namespace heat::hw
