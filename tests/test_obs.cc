/**
 * @file
 * Observability suite: the metrics registry's Prometheus rendering and
 * histogram quantile estimates, the tracer's balanced Chrome-trace
 * export and span cap, the OBS_SPAN on/off switch, compile-time cycle
 * attribution matching a real fused run EXACTLY (integer equality,
 * zero-cycle delta), and modeled-time trace determinism across serving
 * worker counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "compiler/attribution.h"
#include "compiler/circuit.h"
#include "compiler/compiler.h"
#include "fv/encryptor.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"

namespace heat {
namespace {

using compiler::Circuit;
using compiler::CircuitBuilder;
using compiler::ValueId;
using fv::Ciphertext;
using fv::Plaintext;

/** Count occurrences of @p needle in @p hay. */
size_t
countOf(const std::string &hay, const std::string &needle)
{
    size_t n = 0;
    for (size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

TEST(ObsMetrics, CounterGaugeBasics)
{
    obs::Registry reg;
    obs::Counter &c = reg.counter("heat_test_total", "help text");
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), 5u);
    // Find-or-create returns the same handle.
    EXPECT_EQ(&reg.counter("heat_test_total"), &c);

    obs::Gauge &g = reg.gauge("heat_test_depth");
    g.set(3.5);
    EXPECT_DOUBLE_EQ(g.value(), 3.5);
    g.set(1.0);
    EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(ObsMetrics, HistogramQuantileInterpolates)
{
    obs::Histogram h(std::vector<double>{1.0, 2.0, 4.0, 8.0});
    h.observe(0.5);
    h.observe(1.5);
    h.observe(3.0);
    h.observe(100.0); // overflow bucket

    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.sum(), 105.0);
    // rank 2 lands in the (1,2] bucket; interpolation reaches its
    // upper bound.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
    // rank 3 lands in (2,4].
    EXPECT_DOUBLE_EQ(h.quantile(0.75), 4.0);
    // rank 4 is the open overflow bucket: report the observed max.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(ObsMetrics, HistogramQuantileCappedAtObservedMax)
{
    obs::Histogram h(std::vector<double>{10.0});
    h.observe(3.0);
    // A sparsely filled bucket must not inflate the estimate past the
    // largest observation.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 3.0);
}

TEST(ObsMetrics, ExponentialBounds)
{
    const auto b = obs::Histogram::exponentialBounds(1.0, 2.0, 4);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_DOUBLE_EQ(b[0], 1.0);
    EXPECT_DOUBLE_EQ(b[3], 8.0);
    EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
}

TEST(ObsMetrics, RenderTextGroupsLabeledSeriesByFamily)
{
    obs::Registry reg;
    reg.counter("heat_jobs_total{tenant=\"a\"}", "jobs").add(3);
    reg.counter("heat_jobs_total{tenant=\"b\"}").add(7);
    obs::Histogram &h =
        reg.histogram("heat_lat_us{tenant=\"a\"}",
                      std::vector<double>{1.0, 2.0}, "latency");
    h.observe(1.5);

    const std::string text = reg.renderText();
    // Two series, ONE family header.
    EXPECT_EQ(countOf(text, "# TYPE heat_jobs_total counter"), 1u);
    EXPECT_EQ(countOf(text, "heat_jobs_total{tenant=\"a\"} 3"), 1u);
    EXPECT_EQ(countOf(text, "heat_jobs_total{tenant=\"b\"} 7"), 1u);
    // Histogram: le spliced into the existing label block, suffixes on
    // the family name.
    EXPECT_EQ(countOf(text, "# TYPE heat_lat_us histogram"), 1u);
    EXPECT_EQ(countOf(text, "heat_lat_us_bucket{tenant=\"a\",le=\"2\"} 1"),
              1u);
    EXPECT_EQ(countOf(text, "heat_lat_us_bucket{tenant=\"a\",le=\"+Inf\"} 1"),
              1u);
    EXPECT_EQ(countOf(text, "heat_lat_us_count{tenant=\"a\"} 1"), 1u);
    EXPECT_EQ(countOf(text, "heat_lat_us_sum{tenant=\"a\"} 1.5"), 1u);
}

TEST(ObsMetrics, SamplesExpandHistograms)
{
    obs::Registry reg;
    reg.counter("heat_c_total").add(2);
    obs::Histogram &h =
        reg.histogram("heat_h_us", std::vector<double>{1.0, 2.0});
    h.observe(0.5);
    h.observe(1.5);

    std::vector<std::string> names;
    for (const obs::MetricSample &s : reg.samples())
        names.push_back(s.name);
    const std::vector<std::string> want = {
        "heat_c_total",   "heat_h_us_count", "heat_h_us_sum",
        "heat_h_us_mean", "heat_h_us_p50",   "heat_h_us_p99",
        "heat_h_us_max"};
    EXPECT_EQ(names, want);
}

TEST(ObsTrace, ScopedSpanRecordsOnlyWhenEnabled)
{
    obs::Tracer *const prev = obs::setActiveTracer(nullptr);
    {
        OBS_SPAN("off.kernel", "test");
    }
    obs::Tracer tracer;
    obs::setActiveTracer(&tracer);
    {
        OBS_SPAN("on.kernel", "test");
    }
    obs::setActiveTracer(prev);

    const auto spans = tracer.spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "on.kernel");
    EXPECT_EQ(spans[0].pid, obs::kWallPid);
    EXPECT_GE(spans[0].dur_us, 0.0);
}

TEST(ObsTrace, SpanCapCountsDrops)
{
    obs::Tracer tracer(2);
    for (int i = 0; i < 5; ++i)
        tracer.addSpan(obs::SpanRecord{"s", "t", obs::kWallPid, 0,
                                       static_cast<double>(i), 1.0, {}});
    EXPECT_EQ(tracer.spans().size(), 2u);
    EXPECT_EQ(tracer.droppedSpans(), 3u);
}

TEST(ObsTrace, ChromeTraceIsBalancedAndNested)
{
    obs::Tracer tracer;
    // parent [0,10) with children [0,4) and [4,6), plus a second track
    // left open-ended relative to the first.
    tracer.addSpan({"child-a", "t", obs::kModeledPid, 0, 0.0, 4.0, {}});
    tracer.addSpan({"parent", "t", obs::kModeledPid, 0, 0.0, 10.0, {}});
    tracer.addSpan(
        {"child-b", "t", obs::kModeledPid, 0, 4.0, 2.0, {{"k", "v"}}});
    tracer.addSpan({"other", "t", obs::kModeledPid, 1, 1.0, 3.0, {}});

    std::ostringstream os;
    tracer.writeChromeTrace(os, {{"workload", "unit-test"}});
    const std::string json = os.str();

    // Every B has a matching E; the parent opens before its children.
    EXPECT_EQ(countOf(json, "\"ph\":\"B\""), 4u);
    EXPECT_EQ(countOf(json, "\"ph\":\"E\""), 4u);
    EXPECT_LT(json.find("\"name\":\"parent\",\"cat\":\"t\",\"ph\":\"B\""),
              json.find("\"name\":\"child-a\",\"cat\":\"t\",\"ph\":\"B\""));
    // Metadata and otherData present.
    EXPECT_GE(countOf(json, "\"ph\":\"M\""), 1u);
    EXPECT_EQ(countOf(json, "\"workload\":\"unit-test\""), 1u);
    EXPECT_EQ(countOf(json, "\"dropped_spans\":0"), 1u);
}

/** One randomized key/encryptor universe over a small ring. */
struct Universe
{
    explicit Universe(uint64_t seed)
    {
        fv::FvConfig cfg;
        cfg.degree = 256;
        cfg.plain_modulus = 257;
        cfg.sigma = 3.2;
        cfg.q_prime_count = 3;
        params = fv::FvParams::create(cfg);
        fv::KeyGenerator keygen(params, seed);
        sk = keygen.generateSecretKey();
        pk = keygen.generatePublicKey(sk);
        rlk = keygen.generateRelinKeys(sk);
        encryptor =
            std::make_unique<fv::Encryptor>(params, pk, seed ^ 0xABCD);
    }

    Plaintext
    randomPlain(uint64_t seed) const
    {
        Xoshiro256 rng(seed);
        Plaintext p;
        p.coeffs.resize(params->degree());
        for (auto &c : p.coeffs)
            c = rng.uniformBelow(params->plainModulus());
        return p;
    }

    Ciphertext
    randomCipher(uint64_t seed) const
    {
        return encryptor->encrypt(randomPlain(seed));
    }

    std::shared_ptr<const fv::FvParams> params;
    fv::SecretKey sk;
    fv::PublicKey pk;
    fv::RelinKeys rlk;
    std::unique_ptr<fv::Encryptor> encryptor;
};

/** Mixed circuit exercising NTT, Lift/Scale (mult), coeff ops and
 *  relin key loads. */
Circuit
mixedCircuit(const Universe &u)
{
    CircuitBuilder b;
    const ValueId x = b.input();
    const ValueId y = b.input();
    const ValueId v1 = b.mult(x, y);
    const ValueId v2 = b.multPlain(v1, u.randomPlain(901));
    const ValueId v3 = b.add(v2, b.sub(x, y));
    b.output(b.mult(v3, v1));
    return b.build();
}

TEST(ObsAttribution, CompileTimeAttributionMatchesFusedRunExactly)
{
    Universe u(77);
    compiler::CompilerOptions options;
    options.hw = hw::HwConfig::paper();
    const compiler::CompiledCircuit compiled =
        compiler::compileCircuit(u.params, mixedCircuit(u), options);

    const compiler::CircuitAttribution attr =
        compiler::attributeCompiledCircuit(compiled);

    hw::Coprocessor cp(u.params, options.hw, &u.rlk);
    compiler::CircuitRunStats run;
    std::vector<Ciphertext> inputs = {u.randomCipher(1), u.randomCipher(2)};
    compiler::runCompiledCircuit(cp, compiled, inputs, &run);

    // Zero-cycle delta: the static model IS the runtime model.
    EXPECT_EQ(attr.total_cycles, run.fpga_cycles);
    for (size_t i = 0; i < hw::kUnitCount; ++i)
        EXPECT_EQ(attr.unit_cycles[i], run.unit_cycles[i])
            << "unit " << hw::unitName(static_cast<hw::Unit>(i));

    // Internal consistency: unit buckets, opcode buckets and node
    // attribution each sum exactly to their totals.
    hw::Cycle unit_sum = 0;
    for (hw::Cycle c : attr.unit_cycles)
        unit_sum += c;
    EXPECT_EQ(unit_sum, attr.total_cycles);
    hw::Cycle op_sum = 0;
    for (const auto &[op, cycles] : attr.op_cycles)
        op_sum += cycles;
    EXPECT_EQ(op_sum, attr.compute_cycles);
    hw::Cycle node_sum = 0;
    for (hw::Cycle c : attr.node_cycles)
        node_sum += c;
    EXPECT_EQ(node_sum, attr.compute_cycles);
    EXPECT_EQ(attr.compute_cycles + attr.dispatch_cycles,
              attr.total_cycles);

    // The run's own unit buckets also sum exactly.
    hw::Cycle run_sum = 0;
    for (hw::Cycle c : run.unit_cycles)
        run_sum += c;
    EXPECT_EQ(run_sum, run.fpga_cycles);

    // The compiler's node annotation agrees with the fresh attribution.
    EXPECT_EQ(compiled.node_cycles, attr.node_cycles);
}

/** (name, modeled duration) multiset of a tracer's modeled spans —
 *  absolute starts differ across worker counts (each worker has its
 *  own clock), durations must not. */
std::vector<std::pair<std::string, double>>
modeledSpanShape(const obs::Tracer &tracer)
{
    std::vector<std::pair<std::string, double>> shape;
    for (const obs::SpanRecord &s : tracer.spans())
        if (s.pid == obs::kModeledPid)
            shape.emplace_back(s.name, s.dur_us);
    std::sort(shape.begin(), shape.end());
    return shape;
}

TEST(ObsTrace, ModeledSpansDeterministicAcrossWorkerCounts)
{
    Universe u(99);
    const Circuit circuit = mixedCircuit(u);
    const std::vector<Ciphertext> inputs = {u.randomCipher(11),
                                            u.randomCipher(12)};

    std::vector<std::vector<std::pair<std::string, double>>> shapes;
    hw::Cycle fpga_cycles = 0;
    for (const size_t workers : {1u, 2u, 4u}) {
        obs::Tracer tracer;
        obs::Tracer *const prev = obs::setActiveTracer(&tracer);
        {
            service::ServiceConfig cfg;
            cfg.workers = workers;
            service::ExecutionService svc(u.params, u.rlk, cfg);
            for (int r = 0; r < 3; ++r)
                svc.submitCircuit(circuit, inputs).get();
            svc.drain();
            const service::ServiceSnapshot snap = svc.snapshot();
            hw::Cycle unit_sum = 0;
            for (hw::Cycle c : snap.stats.unit_cycles)
                unit_sum += c;
            EXPECT_EQ(unit_sum, snap.stats.fpga_cycles);
            if (fpga_cycles == 0)
                fpga_cycles = snap.stats.fpga_cycles;
            EXPECT_EQ(snap.stats.fpga_cycles, fpga_cycles)
                << "total modeled cycles changed at " << workers
                << " workers";
        }
        obs::setActiveTracer(prev);
        shapes.push_back(modeledSpanShape(tracer));
    }

    ASSERT_FALSE(shapes[0].empty());
    EXPECT_EQ(shapes[0], shapes[1]);
    EXPECT_EQ(shapes[0], shapes[2]);
    // The trace reaches instruction depth: per-instruction unit spans
    // and the per-program span are both present.
    bool saw_program = false;
    for (const auto &[name, dur] : shapes[0])
        saw_program = saw_program || name == "program";
    EXPECT_TRUE(saw_program);
}

} // namespace
} // namespace heat
