/**
 * @file
 * heat::poly — depth-aware encrypted polynomial evaluation: plan
 * shapes (Paterson-Stockmeyer at ~2 sqrt(d) non-scalar mults and
 * depth ceil(log2 d) versus Horner's d-1 at depth d-1), slot-wise
 * correctness against the plaintext reference, bit-identity across
 * the evaluator / op-by-op / fused-coprocessor paths, compile-once/
 * submit-many through the serving layer, and the paper-parameter
 * noise gate: degree-15 Paterson-Stockmeyer compiles under
 * NoiseCheck::kReject while degree-15 Horner is rejected with a
 * node-level diagnostic.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <memory>
#include <vector>

#include "common/panic.h"
#include "common/random.h"
#include "compiler/circuit.h"
#include "compiler/compiler.h"
#include "fv/batch_encoder.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "mp/primality.h"
#include "poly/poly.h"
#include "service/service.h"
#include "verify_support.h"

namespace heat {
namespace {

using compiler::Circuit;
using compiler::CompiledCircuit;
using compiler::CompilerOptions;
using compiler::NoiseCheck;
using fv::Ciphertext;
using poly::EvalStrategy;
using poly::PlanInfo;
using poly::PolynomialEvaluator;

/** Batching universe over a small ring with enough q for depth 4. */
struct Universe
{
    explicit Universe(uint64_t seed, size_t q_primes = 7)
    {
        fv::FvConfig cfg;
        cfg.degree = 256;
        cfg.plain_modulus = 65537;
        cfg.sigma = 3.2;
        cfg.q_prime_count = q_primes;
        params = fv::FvParams::create(cfg);
        fv::KeyGenerator keygen(params, seed);
        sk = keygen.generateSecretKey();
        pk = keygen.generatePublicKey(sk);
        rlk = keygen.generateRelinKeys(sk);
        encryptor =
            std::make_unique<fv::Encryptor>(params, pk, seed ^ 0xF00D);
        decryptor = std::make_unique<fv::Decryptor>(
            params, fv::SecretKey{sk.s_ntt});
        evaluator = std::make_unique<fv::Evaluator>(params);
        encoder = std::make_unique<fv::BatchEncoder>(params);
        config = hw::HwConfig::paper();
        // Deep multiply chains at 7 q-primes need a memory file scaled
        // with the base (a lone Square peaks near 100 slots here; the
        // paper's 84-slot file is sized for its own 13 moduli).
        config.n_rpaus = params->fullBase()->size();
    }

    std::vector<uint64_t>
    randomSlots(uint64_t seed) const
    {
        Xoshiro256 rng(seed);
        std::vector<uint64_t> v(params->degree());
        for (auto &x : v)
            x = rng.uniformBelow(params->plainModulus());
        return v;
    }

    std::vector<uint64_t>
    randomCoeffs(uint64_t seed, int degree) const
    {
        Xoshiro256 rng(seed);
        std::vector<uint64_t> c(degree + 1);
        for (auto &x : c)
            x = rng.uniformBelow(params->plainModulus());
        if (c.back() == 0)
            c.back() = 1;
        return c;
    }

    std::shared_ptr<const fv::FvParams> params;
    fv::SecretKey sk;
    fv::PublicKey pk;
    fv::RelinKeys rlk;
    std::unique_ptr<fv::Encryptor> encryptor;
    std::unique_ptr<fv::Decryptor> decryptor;
    std::unique_ptr<fv::Evaluator> evaluator;
    std::unique_ptr<fv::BatchEncoder> encoder;
    hw::HwConfig config;
};

TEST(PolyPlan, PatersonStockmeyerShapeAtDegree15)
{
    Universe u(1);
    PolynomialEvaluator pe(u.params, u.randomCoeffs(11, 15));

    const PlanInfo ps = pe.plan(EvalStrategy::kPatersonStockmeyer);
    EXPECT_EQ(ps.degree, 15);
    EXPECT_EQ(ps.baby_step, 4u);
    EXPECT_EQ(ps.non_scalar_mults, 7u); // x^2 x^3 x^4 x^8 + 3 combines
    EXPECT_EQ(ps.mult_depth, 4);        // = ceil(log2 15)

    const PlanInfo horner = pe.plan(EvalStrategy::kHorner);
    EXPECT_EQ(horner.non_scalar_mults, 14u); // d - 1
    EXPECT_EQ(horner.mult_depth, 14);

    EXPECT_LT(ps.non_scalar_mults, horner.non_scalar_mults);
}

TEST(PolyPlan, DepthAndMultBoundsAcrossDegrees)
{
    Universe u(2);
    for (int d = 2; d <= 15; ++d) {
        PolynomialEvaluator pe(u.params, u.randomCoeffs(100 + d, d));
        const PlanInfo ps = pe.plan(EvalStrategy::kPatersonStockmeyer);
        const PlanInfo horner = pe.plan(EvalStrategy::kHorner);
        const int log2d = static_cast<int>(std::ceil(std::log2(d)));
        EXPECT_LE(ps.mult_depth, log2d) << "degree " << d;
        EXPECT_LE(static_cast<double>(ps.non_scalar_mults),
                  2.0 * std::sqrt(static_cast<double>(d)) + 1.0)
            << "degree " << d;
        EXPECT_EQ(horner.mult_depth, d - 1) << "degree " << d;
        EXPECT_LE(ps.non_scalar_mults, horner.non_scalar_mults)
            << "degree " << d;
    }
}

TEST(PolyPlan, SparseAndDegeneratePolynomials)
{
    Universe u(3);
    const uint64_t t = u.params->plainModulus();

    // x^15 alone: the power cache reaches it through shared squarings.
    std::vector<uint64_t> monomial(16, 0);
    monomial[15] = 1;
    PolynomialEvaluator mono(u.params, monomial);
    const PlanInfo plan = mono.plan(EvalStrategy::kPatersonStockmeyer);
    EXPECT_LE(plan.mult_depth, 4);
    EXPECT_LE(plan.non_scalar_mults, 7u);
    EXPECT_EQ(mono.reference(3), mp::powMod64(3, 15, t));

    // Trailing zeros trim away.
    PolynomialEvaluator trimmed(u.params,
                                std::vector<uint64_t>{5, 7, 0, 0});
    EXPECT_EQ(trimmed.degree(), 1);

    // Constants and over-degree polynomials are rejected. Degree 31 is
    // the cap now that the compiler's level assignment unlocks depth 5.
    EXPECT_THROW(PolynomialEvaluator(u.params,
                                     std::vector<uint64_t>{42}),
                 FatalError);
    EXPECT_NO_THROW(
        PolynomialEvaluator(u.params, std::vector<uint64_t>(32, 1)));
    EXPECT_THROW(
        PolynomialEvaluator(u.params, std::vector<uint64_t>(34, 1)),
        FatalError);
    // Coefficients that reduce to a constant mod t are rejected too.
    EXPECT_THROW(PolynomialEvaluator(u.params,
                                     std::vector<uint64_t>{3, t, t}),
                 FatalError);
}

TEST(PolyEval, EvaluatorMatchesPlaintextReference)
{
    Universe u(4);
    const std::vector<uint64_t> slots = u.randomSlots(21);
    const Ciphertext x = u.encryptor->encrypt(u.encoder->encode(slots));

    for (int d : {1, 2, 3, 5, 8, 12, 15}) {
        PolynomialEvaluator pe(u.params, u.randomCoeffs(200 + d, d));
        const Circuit circuit =
            pe.circuit(EvalStrategy::kPatersonStockmeyer);
        const std::vector<Ciphertext> out = compiler::evaluateCircuit(
            *u.evaluator, &u.rlk, circuit, std::vector<Ciphertext>{x});
        ASSERT_EQ(out.size(), 1u);
        EXPECT_EQ(u.encoder->decode(u.decryptor->decrypt(out[0])),
                  pe.reference(slots))
            << "degree " << d;
    }

    // Horner agrees wherever its depth still fits the measured budget.
    for (int d : {1, 2, 3, 5}) {
        PolynomialEvaluator pe(u.params, u.randomCoeffs(300 + d, d));
        const std::vector<Ciphertext> out = compiler::evaluateCircuit(
            *u.evaluator, &u.rlk, pe.circuit(EvalStrategy::kHorner),
            std::vector<Ciphertext>{x});
        EXPECT_EQ(u.encoder->decode(u.decryptor->decrypt(out[0])),
                  pe.reference(slots))
            << "degree " << d;
    }
}

TEST(PolyEval, FusedOpByOpAndEvaluatorAreBitIdentical)
{
    Universe u(5);
    PolynomialEvaluator pe(u.params, u.randomCoeffs(44, 15));
    const Circuit circuit =
        pe.circuit(EvalStrategy::kPatersonStockmeyer);

    const std::vector<uint64_t> slots = u.randomSlots(45);
    const std::vector<Ciphertext> inputs = {
        u.encryptor->encrypt(u.encoder->encode(slots))};

    const std::vector<Ciphertext> reference = compiler::evaluateCircuit(
        *u.evaluator, &u.rlk, circuit, inputs);

    CompilerOptions options;
    options.hw = u.config;
    options.noise_check = NoiseCheck::kOff; // small ring: model says no
    const CompiledCircuit compiled =
        compiler::compileCircuit(u.params, circuit, options);

    hw::Coprocessor cp(u.params, u.config, &u.rlk);
    const std::vector<Ciphertext> fused =
        compiler::runCompiledCircuit(cp, compiled, inputs);
    const std::vector<Ciphertext> op_by_op =
        compiler::runCircuitOpByOp(cp, u.params, circuit, inputs);

    EXPECT_EQ(fused, reference);
    EXPECT_EQ(op_by_op, reference);
    EXPECT_EQ(u.encoder->decode(u.decryptor->decrypt(fused[0])),
              pe.reference(slots));
}

TEST(PolyEval, ServiceCompileOnceSubmitMany)
{
    Universe u(6);
    PolynomialEvaluator pe(u.params, u.randomCoeffs(61, 15));

    CompilerOptions options;
    options.hw = u.config;
    options.noise_check = NoiseCheck::kOff;
    const auto compiled =
        std::make_shared<const CompiledCircuit>(compiler::compileCircuit(
            u.params, pe.circuit(EvalStrategy::kPatersonStockmeyer),
            options));

    service::ServiceConfig cfg;
    cfg.workers = 2;
    cfg.hw = u.config;
    service::ExecutionService service(u.params, u.rlk, cfg);

    std::vector<std::vector<uint64_t>> batches;
    std::vector<std::future<std::vector<Ciphertext>>> futures;
    for (uint64_t i = 0; i < 3; ++i) {
        batches.push_back(u.randomSlots(70 + i));
        futures.push_back(service.submitCompiled(
            compiled, {u.encryptor->encrypt(
                          u.encoder->encode(batches.back()))}));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
        const std::vector<Ciphertext> out = futures[i].get();
        ASSERT_EQ(out.size(), 1u);
        EXPECT_EQ(u.encoder->decode(u.decryptor->decrypt(out[0])),
                  pe.reference(batches[i]))
            << "submission " << i;
    }
    service.drain();
    EXPECT_EQ(service.stats().circuits_completed, 3u);
}

TEST(PolyNoise, TableVRowOneAcceptsPSAndRejectsHornerAtDegree15)
{
    // The tentpole acceptance story on the paper's Table V row-1 set
    // (the row with depth headroom at the batching modulus): the
    // depth-4 Paterson-Stockmeyer plan survives the noise pass with a
    // wide margin where depth-14 Horner is rejected with a node-level
    // diagnostic.
    auto params = fv::FvParams::tableV(1, 65537);
    Xoshiro256 rng(7);
    std::vector<uint64_t> coeffs(16);
    for (auto &c : coeffs)
        c = rng.uniformBelow(params->plainModulus());
    if (coeffs.back() == 0)
        coeffs.back() = 1;
    PolynomialEvaluator pe(params, coeffs);

    CompilerOptions reject;
    reject.noise_check = NoiseCheck::kReject;
    reject.hw.n_rpaus = params->fullBase()->size();
    const CompiledCircuit compiled = compiler::compileCircuit(
        params, pe.circuit(EvalStrategy::kPatersonStockmeyer), reject);
    EXPECT_GT(compiled.min_output_noise_budget_bits, 100.0);
    EXPECT_EQ(compiled.noise_exhausted_node, compiler::kNoValue);

    try {
        compiler::compileCircuit(
            params, pe.circuit(EvalStrategy::kHorner), reject);
        FAIL() << "degree-15 Horner must exhaust the depth budget";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("predicted noise budget exhausted at node"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("Paterson-Stockmeyer"), std::string::npos)
            << msg;
    }
}

TEST(PolyNoise, PaperSetModelIsConservativeForPSAtDegree15)
{
    // On the original paper set the measured budget of degree-15
    // Paterson-Stockmeyer stays (just) positive, but the conservative
    // model predicts exhaustion — the warn/annotate default records
    // that verdict without blocking compilation, and the reject mode
    // is the sizing signal pointing at Table V row 1.
    auto params = fv::FvParams::paper(65537);
    Xoshiro256 rng(9);
    std::vector<uint64_t> coeffs(16);
    for (auto &c : coeffs)
        c = rng.uniformBelow(params->plainModulus());
    if (coeffs.back() == 0)
        coeffs.back() = 1;
    PolynomialEvaluator pe(params, coeffs);

    CompilerOptions off;
    off.noise_check = NoiseCheck::kOff;
    const CompiledCircuit compiled = compiler::compileCircuit(
        params, pe.circuit(EvalStrategy::kPatersonStockmeyer), off);
    EXPECT_EQ(compiled.min_output_noise_budget_bits, 0.0);
    EXPECT_NE(compiled.noise_exhausted_node, compiler::kNoValue);
}

TEST(PolyNoise, Degree31PSNeedsTheCompilersLevelAssignment)
{
    // Degree 16..31 Paterson-Stockmeyer is multiplicative depth 5 —
    // one past what the 7-prime chain supports without level drops, so
    // NoiseCheck::kReject alone refuses the plan. With
    // CompilerOptions::auto_mod_switch the level-assignment pass
    // inserts mod-switches after the relinearizations, the compile
    // succeeds with budget to spare, and the lowered circuit still
    // evaluates the polynomial exactly.
    fv::FvConfig cfg;
    cfg.degree = 8192;
    cfg.plain_modulus = 65537;
    cfg.sigma = 3.2;
    cfg.q_prime_count = 7;
    auto params = fv::FvParams::create(cfg);

    Xoshiro256 rng(91);
    std::vector<uint64_t> coeffs(32);
    for (auto &c : coeffs)
        c = rng.uniformBelow(params->plainModulus());
    if (coeffs.back() == 0)
        coeffs.back() = 1;
    PolynomialEvaluator pe(params, coeffs);
    const PlanInfo plan = pe.plan(EvalStrategy::kPatersonStockmeyer);
    EXPECT_EQ(plan.degree, 31);
    EXPECT_EQ(plan.mult_depth, 5);

    const Circuit circuit =
        pe.circuit(EvalStrategy::kPatersonStockmeyer);
    CompilerOptions reject;
    reject.noise_check = NoiseCheck::kReject;
    reject.hw.n_rpaus = params->fullBase()->size();
    try {
        compiler::compileCircuit(params, circuit, reject);
        FAIL() << "depth-5 PS-31 must be rejected without level "
                  "assignment";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("auto_mod_switch"),
                  std::string::npos)
            << e.what();
    }

    reject.auto_mod_switch = true;
    const CompiledCircuit compiled =
        compiler::compileCircuit(params, circuit, reject);
    EXPECT_GT(compiled.min_output_noise_budget_bits, 0.0);
    size_t drops = 0;
    for (const auto &node : compiled.circuit.nodes)
        drops += node.kind == compiler::NodeKind::kModSwitch ? 1 : 0;
    EXPECT_GT(drops, 0u);

    fv::KeyGenerator keygen(params, 92);
    const fv::SecretKey sk = keygen.generateSecretKey();
    const fv::PublicKey pk = keygen.generatePublicKey(sk);
    const fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 93);
    fv::Decryptor decryptor(params, fv::SecretKey{sk.s_ntt});
    fv::Evaluator evaluator(params);
    fv::BatchEncoder encoder(params);

    std::vector<uint64_t> slots(encoder.slotCount());
    Xoshiro256 slot_rng(94);
    for (auto &s : slots)
        s = slot_rng.uniformBelow(params->plainModulus());
    const std::vector<Ciphertext> out = compiler::evaluateCircuit(
        evaluator, &rlk, compiled.circuit,
        std::vector<Ciphertext>{
            encryptor.encrypt(encoder.encode(slots))});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_GT(out[0].level, 0u);
    EXPECT_GT(decryptor.invariantNoiseBudget(out[0]), 0.0);
    EXPECT_EQ(encoder.decode(decryptor.decrypt(out[0])),
              pe.reference(slots));
}

TEST(PolyInterpolate, LagrangeRoundTrip)
{
    const uint64_t t = 65537;
    Xoshiro256 rng(8);
    std::vector<uint64_t> points(16);
    for (auto &p : points)
        p = rng.uniformBelow(t);

    const std::vector<uint64_t> coeffs =
        poly::interpolateOnRange(points, t);
    ASSERT_EQ(coeffs.size(), 16u);
    for (uint64_t x = 0; x < points.size(); ++x) {
        uint64_t acc = 0;
        for (size_t c = coeffs.size(); c-- > 0;)
            acc = (mp::mulMod64(acc, x, t) + coeffs[c]) % t;
        EXPECT_EQ(acc, points[x]) << "node " << x;
    }
}

} // namespace
} // namespace heat
