/**
 * @file
 * Circuit-compiler suite: fused whole-circuit programs must be
 * bit-identical to fv::Evaluator run op-by-op (and to the unfused
 * hardware baseline), slot liveness must let deep circuits reuse dead
 * slots, the spill path must stay correct under artificially tight
 * memory files, modeled fused time must beat the per-op round-trip
 * model, and results must be deterministic across service worker
 * counts.
 */

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "common/random.h"
#include "compiler/circuit.h"
#include "compiler/compiler.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "service/service.h"
#include "verify_support.h"

namespace heat {
namespace {

using compiler::Circuit;
using compiler::CircuitBuilder;
using compiler::CircuitRunStats;
using compiler::CompiledCircuit;
using compiler::CompilerOptions;
using compiler::ValueId;
using fv::Ciphertext;
using fv::Plaintext;

/** One randomized key/encryptor universe over a small ring. */
struct Universe
{
    explicit Universe(uint64_t seed, uint64_t t = 257,
                      size_t degree = 256, size_t q_primes = 3)
    {
        fv::FvConfig cfg;
        cfg.degree = degree;
        cfg.plain_modulus = t;
        cfg.sigma = 3.2;
        cfg.q_prime_count = q_primes;
        params = fv::FvParams::create(cfg);
        fv::KeyGenerator keygen(params, seed);
        sk = keygen.generateSecretKey();
        pk = keygen.generatePublicKey(sk);
        rlk = keygen.generateRelinKeys(sk);
        encryptor =
            std::make_unique<fv::Encryptor>(params, pk, seed ^ 0xABCD);
        decryptor = std::make_unique<fv::Decryptor>(
            params, fv::SecretKey{sk.s_ntt});
        evaluator = std::make_unique<fv::Evaluator>(
            params, fv::ArithPath::kHps);
        config = hw::HwConfig::paper();
        config.n_rpaus = (params->fullBase()->size() + 1) / 2;
    }

    Plaintext
    randomPlain(uint64_t seed) const
    {
        Xoshiro256 rng(seed);
        Plaintext p;
        p.coeffs.resize(params->degree());
        for (auto &c : p.coeffs)
            c = rng.uniformBelow(params->plainModulus());
        return p;
    }

    Ciphertext
    randomCipher(uint64_t seed) const
    {
        return encryptor->encrypt(randomPlain(seed));
    }

    std::shared_ptr<const fv::FvParams> params;
    fv::SecretKey sk;
    fv::PublicKey pk;
    fv::RelinKeys rlk;
    std::unique_ptr<fv::Encryptor> encryptor;
    std::unique_ptr<fv::Decryptor> decryptor;
    std::unique_ptr<fv::Evaluator> evaluator;
    hw::HwConfig config;
};

/**
 * The mixed depth-4 demo circuit of the acceptance criteria:
 * Add/Sub/MultPlain/Mult/Square plus relinearizations, two inputs.
 *
 *   v1 = relin(x * y)          depth 1
 *   v2 = relin(v1^2)           depth 2
 *   v3 = v2 * plain            depth 3
 *   v4 = v3 - x                depth 4
 *   v5 = (v4 + y) + Delta*p2   depth 4 (+plain)
 * outputs: v5, v1
 */
Circuit
demoCircuit(const Universe &u)
{
    CircuitBuilder b;
    const ValueId x = b.input();
    const ValueId y = b.input();
    const ValueId v1 = b.mult(x, y);
    const ValueId v2 = b.square(v1);
    const ValueId v3 = b.multPlain(v2, u.randomPlain(901));
    const ValueId v4 = b.sub(v3, x);
    const ValueId v5 =
        b.addPlain(b.add(v4, y), u.randomPlain(902));
    b.output(v5);
    b.output(v1);
    return b.build();
}

TEST(Compiler, FusedMatchesEvaluatorAndOpByOp)
{
    Universe u(11);
    const Circuit circuit = demoCircuit(u);
    std::vector<Ciphertext> inputs = {u.randomCipher(1),
                                      u.randomCipher(2)};

    const std::vector<Ciphertext> reference = compiler::evaluateCircuit(
        *u.evaluator, &u.rlk, circuit, inputs);

    CompilerOptions options;
    options.hw = u.config;
    const CompiledCircuit compiled =
        compiler::compileCircuit(u.params, circuit, options);
    EXPECT_LE(compiled.peak_slots, compiled.hw.n_rpaus *
                                       compiled.hw.slots_per_rpau);

    hw::Coprocessor cp(u.params, u.config, &u.rlk);
    CircuitRunStats fused_stats;
    const std::vector<Ciphertext> fused = compiler::runCompiledCircuit(
        cp, compiled, inputs, &fused_stats);

    hw::Coprocessor cp2(u.params, u.config, &u.rlk);
    CircuitRunStats unfused_stats;
    const std::vector<Ciphertext> unfused = compiler::runCircuitOpByOp(
        cp2, u.params, circuit, inputs, &unfused_stats);

    ASSERT_EQ(fused.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(fused[i], reference[i]) << "output " << i;
        EXPECT_EQ(unfused[i], reference[i]) << "output " << i;
        EXPECT_EQ(u.decryptor->decrypt(fused[i]),
                  u.decryptor->decrypt(reference[i]));
    }

    // No spills: the whole circuit fused into one segment, one Arm
    // dispatch, inputs uploaded once and only live outputs downloaded.
    EXPECT_EQ(compiled.spilled_polys, 0u);
    EXPECT_EQ(compiled.segments.size(), 1u);
    EXPECT_EQ(fused_stats.dispatches, 1u);
    EXPECT_EQ(fused_stats.uploaded_polys,
              2 * inputs.size() + compiled.constants.size() +
                  compiled.reloaded_polys);
    EXPECT_EQ(fused_stats.downloaded_polys, 2u + 2u);

    // Same kernels, one dispatch instead of one per instruction and
    // far fewer transfers: the fused model must be strictly faster
    // than per-op round trips.
    EXPECT_LT(fused_stats.modeledUs(u.config),
              unfused_stats.modeledUs(u.config));
}

TEST(Compiler, SlotReuseAllowsDeepCircuits)
{
    Universe u(23);
    // A long chain where every step allocates fresh result slots (the
    // accumulator is used twice per round, so it cannot be consumed in
    // place): without liveness-based reuse the allocation total far
    // exceeds the memory file even though only a couple of values are
    // ever live at once.
    CircuitBuilder b;
    const ValueId x = b.input();
    const ValueId y = b.input();
    ValueId acc = b.add(x, y);
    for (int i = 0; i < 20; ++i) {
        const ValueId t = b.add(acc, i % 2 == 0 ? x : y);
        acc = b.sub(t, acc);
    }
    b.output(acc);
    const Circuit circuit = b.build();

    CompilerOptions options;
    options.hw = u.config;
    const CompiledCircuit compiled =
        compiler::compileCircuit(u.params, circuit, options);

    const size_t kq = u.params->qBase()->size();
    // Total allocations across the chain dwarf the capacity…
    size_t allocated = 0;
    for (const hw::SlotAction &action : compiled.slot_actions) {
        if (action.kind == hw::SlotAction::Kind::kAllocate)
            allocated += action.base == hw::BaseTag::kQ
                             ? kq
                             : u.params->fullBase()->size();
    }
    EXPECT_GT(allocated, compiled.hw.n_rpaus *
                             compiled.hw.slots_per_rpau);
    // …but the live peak stays tiny and nothing spills.
    EXPECT_EQ(compiled.spilled_polys, 0u);
    EXPECT_EQ(compiled.segments.size(), 1u);
    EXPECT_LE(compiled.peak_slots, 8 * kq);

    std::vector<Ciphertext> inputs = {u.randomCipher(5),
                                      u.randomCipher(6)};
    hw::Coprocessor cp(u.params, u.config, &u.rlk);
    const std::vector<Ciphertext> fused =
        compiler::runCompiledCircuit(cp, compiled, inputs);
    const std::vector<Ciphertext> reference = compiler::evaluateCircuit(
        *u.evaluator, &u.rlk, circuit, inputs);
    EXPECT_EQ(fused[0], reference[0]);
}

/** A circuit holding many values live at once (forces pressure when
 *  the memory file shrinks). */
Circuit
wideCircuit(int width)
{
    CircuitBuilder b;
    std::vector<ValueId> leaves;
    const ValueId x = b.input();
    const ValueId y = b.input();
    ValueId rolling = b.add(x, y);
    for (int i = 0; i < width; ++i) {
        rolling = b.add(rolling, i % 2 == 0 ? x : y);
        leaves.push_back(rolling);
    }
    // Consume the leaves in reverse so all of them stay live across
    // the whole build-up phase.
    ValueId acc = b.negate(leaves.back());
    for (int i = width - 1; i >= 0; --i)
        acc = b.add(acc, leaves[i]);
    b.output(acc);
    return b.build();
}

TEST(Compiler, SpillPathStaysBitExact)
{
    Universe u(31);
    const Circuit circuit = wideCircuit(4);
    std::vector<Ciphertext> inputs = {u.randomCipher(7),
                                      u.randomCipher(8)};
    const std::vector<Ciphertext> reference = compiler::evaluateCircuit(
        *u.evaluator, &u.rlk, circuit, inputs);

    // Shrink the memory file until the wide phase cannot keep every
    // leaf resident (but keep room for a handful of values).
    hw::HwConfig tight = u.config;
    tight.slots_per_rpau = 6;
    CompilerOptions options;
    options.hw = tight;
    const CompiledCircuit compiled =
        compiler::compileCircuit(u.params, circuit, options);

    EXPECT_GT(compiled.spilled_polys, 0u);
    EXPECT_GT(compiled.reloaded_polys, 0u);
    EXPECT_GT(compiled.segments.size(), 1u);
    EXPECT_LE(compiled.peak_slots,
              tight.n_rpaus * tight.slots_per_rpau);

    hw::Coprocessor cp(u.params, tight, &u.rlk);
    CircuitRunStats stats;
    const std::vector<Ciphertext> fused =
        compiler::runCompiledCircuit(cp, compiled, inputs, &stats);
    EXPECT_EQ(fused[0], reference[0]);
    EXPECT_EQ(stats.segments, compiled.segments.size());
    EXPECT_GT(stats.dispatches, 1u);

    // The same circuit on the full-size memory file must not spill —
    // and must be modeled-faster than the tight fit.
    CompilerOptions roomy;
    roomy.hw = u.config;
    const CompiledCircuit unpressured =
        compiler::compileCircuit(u.params, circuit, roomy);
    EXPECT_EQ(unpressured.spilled_polys, 0u);
    hw::Coprocessor cp2(u.params, u.config, &u.rlk);
    CircuitRunStats roomy_stats;
    const std::vector<Ciphertext> fused2 = compiler::runCompiledCircuit(
        cp2, unpressured, inputs, &roomy_stats);
    EXPECT_EQ(fused2[0], reference[0]);
    EXPECT_LT(roomy_stats.modeledUs(u.config),
              stats.modeledUs(tight));
}

TEST(Compiler, AllocationFailureReportsSlotPressure)
{
    Universe u(37);
    CircuitBuilder b;
    const ValueId x = b.input();
    const ValueId y = b.input();
    b.output(b.mult(x, y));
    const Circuit circuit = b.build();

    // Too small for even one Mult schedule: compilation must fail with
    // a diagnosable slot-pressure message, not a bare panic.
    hw::HwConfig tiny = u.config;
    tiny.slots_per_rpau = 3;
    CompilerOptions options;
    options.hw = tiny;
    try {
        compiler::compileCircuit(u.params, circuit, options);
        FAIL() << "expected slot-pressure failure";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("slots"), std::string::npos) << msg;
        EXPECT_NE(msg.find("live"), std::string::npos) << msg;
        EXPECT_NE(msg.find("Mult"), std::string::npos) << msg;
    }
}

TEST(Compiler, ValidationRejectsMalformedCircuits)
{
    Universe u(41);
    // 3-element value used by a non-relin consumer.
    {
        CircuitBuilder b;
        const ValueId x = b.input();
        const ValueId t = b.multNoRelin(x, b.input());
        b.output(b.add(t, x));
        EXPECT_THROW(b.build(), FatalError);
    }
    // Relinearizing a 2-element value.
    {
        CircuitBuilder b;
        const ValueId x = b.input();
        b.output(b.relinearize(x));
        EXPECT_THROW(b.build(), FatalError);
    }
    // No outputs.
    {
        CircuitBuilder b;
        const ValueId x = b.input();
        b.add(x, x);
        EXPECT_THROW(b.build(), FatalError);
    }
    // Input count mismatch at submission.
    {
        CircuitBuilder b;
        const ValueId x = b.input();
        b.output(b.add(x, b.input()));
        const Circuit circuit = b.build();
        std::vector<Ciphertext> one = {u.randomCipher(1)};
        EXPECT_THROW(compiler::evaluateCircuit(*u.evaluator, &u.rlk,
                                               circuit, one),
                     FatalError);
        CompilerOptions options;
        options.hw = u.config;
        const CompiledCircuit compiled =
            compiler::compileCircuit(u.params, circuit, options);
        hw::Coprocessor cp(u.params, u.config, &u.rlk);
        EXPECT_THROW(compiler::runCompiledCircuit(cp, compiled, one),
                     FatalError);
    }
}

TEST(Compiler, ThreeElementOutputsAndSharedTensor)
{
    Universe u(43);
    // multNoRelin output downloaded as a 3-element ciphertext, while
    // the same tensor also feeds a relinearization.
    CircuitBuilder b;
    const ValueId x = b.input();
    const ValueId y = b.input();
    const ValueId t = b.multNoRelin(x, y);
    const ValueId r = b.relinearize(t);
    b.output(t);
    b.output(r);
    const Circuit circuit = b.build();

    std::vector<Ciphertext> inputs = {u.randomCipher(9),
                                      u.randomCipher(10)};
    const std::vector<Ciphertext> reference = compiler::evaluateCircuit(
        *u.evaluator, &u.rlk, circuit, inputs);
    ASSERT_EQ(reference[0].size(), 3u);
    ASSERT_EQ(reference[1].size(), 2u);

    CompilerOptions options;
    options.hw = u.config;
    const CompiledCircuit compiled =
        compiler::compileCircuit(u.params, circuit, options);
    hw::Coprocessor cp(u.params, u.config, &u.rlk);
    const std::vector<Ciphertext> fused =
        compiler::runCompiledCircuit(cp, compiled, inputs);
    EXPECT_EQ(fused[0], reference[0]);
    EXPECT_EQ(fused[1], reference[1]);
    EXPECT_EQ(u.decryptor->decrypt(fused[0]),
              u.decryptor->decrypt(reference[0]));
}

TEST(Compiler, ServiceCircuitDeterministicAcrossWorkerCounts)
{
    Universe u(47);
    const Circuit circuit = demoCircuit(u);
    std::vector<Ciphertext> inputs = {u.randomCipher(11),
                                      u.randomCipher(12)};
    const std::vector<Ciphertext> reference = compiler::evaluateCircuit(
        *u.evaluator, &u.rlk, circuit, inputs);

    for (size_t workers : {1u, 2u, 4u}) {
        service::ServiceConfig cfg;
        cfg.workers = workers;
        cfg.max_batch = 3;
        cfg.hw = u.config;
        service::ExecutionService svc(u.params, u.rlk, cfg);

        std::vector<std::future<std::vector<Ciphertext>>> futures;
        for (int i = 0; i < 6; ++i)
            futures.push_back(svc.submitCircuit(circuit, inputs));
        for (auto &f : futures) {
            const std::vector<Ciphertext> outs = f.get();
            ASSERT_EQ(outs.size(), reference.size());
            for (size_t k = 0; k < outs.size(); ++k)
                EXPECT_EQ(outs[k], reference[k])
                    << "workers " << workers << " output " << k;
        }
        svc.drain();
        const service::ServiceStats stats = svc.stats();
        EXPECT_EQ(stats.circuits_completed, 6u);
        EXPECT_GT(stats.circuit_nodes_completed, 0u);
    }
}

TEST(Compiler, ServiceMixesCircuitsWithSingleOps)
{
    Universe u(53, /*t=*/4);
    const Circuit circuit = demoCircuit(u);
    std::vector<Ciphertext> inputs = {u.randomCipher(13),
                                      u.randomCipher(14)};
    const std::vector<Ciphertext> circuit_ref =
        compiler::evaluateCircuit(*u.evaluator, &u.rlk, circuit, inputs);

    service::ServiceConfig cfg;
    cfg.workers = 2;
    cfg.max_batch = 4;
    cfg.hw = u.config;
    cfg.start_paused = true;
    service::ExecutionService svc(u.params, u.rlk, cfg);

    // Interleave op jobs and circuit jobs in the same queue/batches.
    Ciphertext a = u.randomCipher(15);
    Ciphertext bb = u.randomCipher(16);
    auto f_add = svc.submit(service::Op::kAdd, a, bb);
    auto f_circ1 = svc.submitCircuit(circuit, inputs);
    auto f_mul = svc.submit(service::Op::kMult, a, bb);
    auto f_circ2 = svc.submitCircuit(circuit, inputs);
    svc.start();

    EXPECT_EQ(f_add.get(), u.evaluator->add(a, bb));
    EXPECT_EQ(f_mul.get(), u.evaluator->multiply(a, bb, u.rlk));
    const std::vector<Ciphertext> c1 = f_circ1.get();
    const std::vector<Ciphertext> c2 = f_circ2.get();
    for (size_t k = 0; k < circuit_ref.size(); ++k) {
        EXPECT_EQ(c1[k], circuit_ref[k]);
        EXPECT_EQ(c2[k], circuit_ref[k]);
    }
}

TEST(Compiler, CompileOnceSubmitMany)
{
    Universe u(59);
    const Circuit circuit = demoCircuit(u);
    CompilerOptions options;
    options.hw = u.config;
    auto compiled = std::make_shared<const CompiledCircuit>(
        compiler::compileCircuit(u.params, circuit, options));

    service::ServiceConfig cfg;
    cfg.workers = 2;
    cfg.hw = u.config;
    service::ExecutionService svc(u.params, u.rlk, cfg);

    std::vector<std::vector<Ciphertext>> input_sets;
    std::vector<std::future<std::vector<Ciphertext>>> futures;
    for (int i = 0; i < 4; ++i) {
        input_sets.push_back({u.randomCipher(100 + i),
                              u.randomCipher(200 + i)});
        futures.push_back(svc.submitCompiled(compiled,
                                             input_sets.back()));
    }
    for (int i = 0; i < 4; ++i) {
        const std::vector<Ciphertext> reference =
            compiler::evaluateCircuit(*u.evaluator, &u.rlk, circuit,
                                      input_sets[i]);
        const std::vector<Ciphertext> outs = futures[i].get();
        for (size_t k = 0; k < reference.size(); ++k)
            EXPECT_EQ(outs[k], reference[k]) << "set " << i;
    }
}

TEST(Compiler, RotationStepsNormalizeAndIdentityFolds)
{
    Universe u(71);
    const size_t n = u.params->degree();
    const int period =
        static_cast<int>(fv::rotationStepPeriod(n));

    // rotate-by-0 folds away at build time: no node is added.
    {
        CircuitBuilder b;
        const ValueId x = b.input();
        EXPECT_EQ(b.rotate(x, 0), x);
        EXPECT_EQ(b.size(), 1u);
    }

    // Congruent steps resolve to one Galois element — a single key
    // covers both — and produce bit-identical values on every path.
    CircuitBuilder b;
    const ValueId x = b.input();
    const ValueId direct = b.rotate(x, 1);
    const ValueId wrapped = b.rotate(x, 1 + period);
    b.output(direct);
    b.output(wrapped);
    const Circuit circuit = b.build();

    const std::vector<uint32_t> elements =
        compiler::requiredGaloisElements(circuit, n);
    ASSERT_EQ(elements.size(), 1u);
    EXPECT_EQ(elements[0], fv::galoisElementForStep(1, n));

    fv::KeyGenerator keygen(u.params, 72);
    const fv::GaloisKeys gkeys =
        keygen.generateGaloisKeys(u.sk, elements);
    const std::vector<Ciphertext> inputs = {u.randomCipher(73)};

    const std::vector<Ciphertext> reference = compiler::evaluateCircuit(
        *u.evaluator, &u.rlk, circuit, inputs, &gkeys);
    ASSERT_EQ(reference.size(), 2u);
    EXPECT_EQ(reference[0], reference[1]);

    CompilerOptions options;
    options.hw = u.config;
    const CompiledCircuit compiled =
        compiler::compileCircuit(u.params, circuit, options);
    EXPECT_EQ(compiled.galois_elements, elements);
    hw::Coprocessor cp(u.params, u.config, &u.rlk, &gkeys);
    const std::vector<Ciphertext> fused =
        compiler::runCompiledCircuit(cp, compiled, inputs);
    EXPECT_EQ(fused, reference);
}

TEST(Compiler, FullRowRotationLowersToACopyWithoutKeys)
{
    Universe u(81);
    const size_t n = u.params->degree();
    const int period =
        static_cast<int>(fv::rotationStepPeriod(n));

    // A nonzero step that normalizes to zero is only discoverable at
    // element-resolution time; it must lower to a key-free copy on
    // the evaluator, fused and op-by-op paths alike.
    CircuitBuilder b;
    const ValueId x = b.input();
    b.output(b.rotate(x, period));
    const Circuit circuit = b.build();

    EXPECT_TRUE(
        compiler::requiredGaloisElements(circuit, n).empty());

    const std::vector<Ciphertext> inputs = {u.randomCipher(82)};
    const std::vector<Ciphertext> reference = compiler::evaluateCircuit(
        *u.evaluator, &u.rlk, circuit, inputs, /*gkeys=*/nullptr);
    EXPECT_EQ(reference[0], inputs[0]);

    CompilerOptions options;
    options.hw = u.config;
    const CompiledCircuit compiled =
        compiler::compileCircuit(u.params, circuit, options);
    EXPECT_TRUE(compiled.galois_elements.empty());

    // No Galois keys attached anywhere: a key-switch would throw.
    hw::Coprocessor cp(u.params, u.config, &u.rlk);
    EXPECT_EQ(compiler::runCompiledCircuit(cp, compiled, inputs),
              reference);
    EXPECT_EQ(
        compiler::runCircuitOpByOp(cp, u.params, circuit, inputs),
        reference);
}

TEST(Compiler, AutoModSwitchSmallRingThreePaths)
{
    // CompilerOptions::auto_mod_switch rewrites the circuit with level
    // drops before lowering; the compiled form, the op-by-op round
    // trips, and the software evaluator all run the SAME lowered
    // circuit (CompiledCircuit::circuit) and must agree bit for bit.
    Universe u(77);
    CircuitBuilder b;
    ValueId v = b.input();
    for (int i = 0; i < 4; ++i)
        v = b.square(v);
    b.output(v);
    const Circuit circuit = b.build();

    // t = 257 does not batch at n = 256; a constant plaintext keeps
    // every coefficient exact through the squaring chain.
    Plaintext m;
    m.coeffs = {2};
    std::vector<Ciphertext> inputs = {u.encryptor->encrypt(m)};

    CompilerOptions options;
    options.hw = u.config;
    options.auto_mod_switch = true;
    const CompiledCircuit compiled =
        compiler::compileCircuit(u.params, circuit, options);

    const std::vector<Ciphertext> reference = compiler::evaluateCircuit(
        *u.evaluator, &u.rlk, compiled.circuit, inputs);
    hw::Coprocessor cp(u.params, u.config, &u.rlk);
    const std::vector<Ciphertext> fused =
        compiler::runCompiledCircuit(cp, compiled, inputs);
    hw::Coprocessor cp2(u.params, u.config, &u.rlk);
    const std::vector<Ciphertext> op_by_op = compiler::runCircuitOpByOp(
        cp2, u.params, compiled.circuit, inputs);

    EXPECT_EQ(fused, reference);
    EXPECT_EQ(op_by_op, reference);
    ASSERT_EQ(fused.size(), 1u);
    EXPECT_EQ(fused[0].level,
              compiled.value_levels[compiled.circuit.outputs[0]]);
    // 2^(2^4) = 65536 = 1 (mod 257).
    EXPECT_EQ(u.decryptor->decrypt(fused[0]).coeffs[0], 1u);
}

TEST(Compiler, AutoModSwitchPaperDepthEightThreePaths)
{
    // The acceptance story of the level assignment: a depth-8 squaring
    // chain on the paper set at t = 17 — double the depth-4 sizing,
    // rejected outright without level drops — compiles under kReject
    // with auto_mod_switch, runs bit-identically on all three
    // execution paths, lands deep in the modulus chain, and decrypts
    // exactly.
    auto params = fv::FvParams::paper(17);
    fv::KeyGenerator keygen(params, 201);
    const fv::SecretKey sk = keygen.generateSecretKey();
    const fv::PublicKey pk = keygen.generatePublicKey(sk);
    const fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 202);
    fv::Decryptor decryptor(params, fv::SecretKey{sk.s_ntt});
    fv::Evaluator evaluator(params);

    CircuitBuilder b;
    ValueId v = b.input();
    for (int i = 0; i < 8; ++i)
        v = b.square(v);
    b.output(v);

    CompilerOptions options;
    options.noise_check = compiler::NoiseCheck::kReject;
    options.auto_mod_switch = true;
    const CompiledCircuit compiled =
        compiler::compileCircuit(params, b.build(), options);
    EXPECT_GT(compiled.min_output_noise_budget_bits, 0.0);

    Plaintext m;
    m.coeffs = {2};
    std::vector<Ciphertext> inputs = {encryptor.encrypt(m)};

    const std::vector<Ciphertext> reference = compiler::evaluateCircuit(
        evaluator, &rlk, compiled.circuit, inputs);
    hw::Coprocessor cp(params, compiled.hw, &rlk);
    const std::vector<Ciphertext> fused =
        compiler::runCompiledCircuit(cp, compiled, inputs);
    hw::Coprocessor cp2(params, compiled.hw, &rlk);
    const std::vector<Ciphertext> op_by_op = compiler::runCircuitOpByOp(
        cp2, params, compiled.circuit, inputs);

    EXPECT_EQ(fused, reference);
    EXPECT_EQ(op_by_op, reference);
    ASSERT_EQ(fused.size(), 1u);
    EXPECT_GT(fused[0].level, 0u);
    EXPECT_GT(decryptor.invariantNoiseBudget(fused[0]), 0.0);
    // 2^(2^8) mod 17: ord(2) = 8 divides 256, so the chain lands on 1.
    const Plaintext out = decryptor.decrypt(fused[0]);
    EXPECT_EQ(out.coeffs[0], 1u);
    for (size_t i = 1; i < out.coeffs.size(); ++i)
        ASSERT_EQ(out.coeffs[i], 0u) << "coeff " << i;
}

TEST(Compiler, ResidentInputsColdAndWarmMatchAllThreePaths)
{
    // Compile the demo circuit with its first input pinned as
    // coprocessor-resident. The cold run uploads and pins it; warm
    // reruns skip its upload entirely — and all execution paths (fused
    // cold, fused warm, op-by-op, evaluateCircuit) stay bit-identical.
    Universe u(19);
    const Circuit circuit = demoCircuit(u);

    CompilerOptions options;
    options.hw = u.config;
    // A pinned input can never be spilled, so the tight test-sized
    // memory file needs one more RPAU than the spill-free baseline.
    options.hw.n_rpaus += 1;
    options.resident_inputs = {0};
    const CompiledCircuit compiled =
        compiler::compileCircuit(u.params, circuit, options);
    ASSERT_EQ(compiled.resident_inputs, std::vector<uint32_t>{0});
    ASSERT_EQ(compiled.resident_slots.size(), 1u);
    ASSERT_GT(compiled.resident_action_count, 0u);
    // Pinned slots are the record-id prefix a warm replay resumes after.
    EXPECT_EQ(compiled.resident_slots[0][0], 0u);
    EXPECT_EQ(compiled.resident_slots[0][1], 1u);

    const Ciphertext hot = u.randomCipher(1);
    const Ciphertext y1 = u.randomCipher(2);
    const Ciphertext y2 = u.randomCipher(3);
    const std::vector<Ciphertext> inputs1 = {hot, y1};
    const std::vector<Ciphertext> inputs2 = {hot, y2};

    const std::vector<Ciphertext> ref1 = compiler::evaluateCircuit(
        *u.evaluator, &u.rlk, circuit, inputs1);
    const std::vector<Ciphertext> ref2 = compiler::evaluateCircuit(
        *u.evaluator, &u.rlk, circuit, inputs2);

    hw::Coprocessor cp(u.params, compiled.hw, &u.rlk);
    CircuitRunStats cold_stats;
    const std::vector<Ciphertext> cold =
        compiler::runCompiledCircuit(cp, compiled, inputs1, &cold_stats);
    EXPECT_EQ(cold, ref1);
    EXPECT_EQ(cp.memory().pinnedRecords(), 2u);

    // Warm rerun, same request operand: bit-identical to the cold run,
    // with exactly the two pinned polynomial uploads saved.
    CircuitRunStats warm_stats;
    const std::vector<Ciphertext> warm = compiler::runCompiledCircuitWarm(
        cp, compiled, std::vector<Ciphertext>{y1}, &warm_stats);
    EXPECT_EQ(warm, cold);
    EXPECT_EQ(warm_stats.uploaded_polys + 2, cold_stats.uploaded_polys);
    EXPECT_LT(warm_stats.modeledUs(compiled.hw),
              cold_stats.modeledUs(compiled.hw));

    // Warm rerun with a fresh request operand still computes over the
    // pinned database: matches the evaluator on {hot, y2}.
    const std::vector<Ciphertext> warm2 =
        compiler::runCompiledCircuitWarm(cp, compiled,
                                         std::vector<Ciphertext>{y2});
    EXPECT_EQ(warm2, ref2);

    // Third path: the unfused per-op baseline agrees too.
    hw::Coprocessor cp2(u.params, compiled.hw, &u.rlk);
    const std::vector<Ciphertext> op_by_op = compiler::runCircuitOpByOp(
        cp2, u.params, circuit, inputs1);
    EXPECT_EQ(op_by_op, ref1);

    // Warm execution on a coprocessor that holds no pins is refused.
    hw::Coprocessor cp3(u.params, compiled.hw, &u.rlk);
    EXPECT_THROW(compiler::runCompiledCircuitWarm(
                     cp3, compiled, std::vector<Ciphertext>{y1}),
                 FatalError);
}

} // namespace
} // namespace heat
