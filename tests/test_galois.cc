/**
 * @file
 * Tests for Galois automorphisms and batched slot rotations: the raw
 * coefficient permutation, key-switched ciphertext rotations against
 * the BatchEncoder's slot-permutation oracle, composition laws, and
 * the rotate-and-add slot summation.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/panic.h"
#include "common/random.h"
#include "fv/batch_encoder.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/galois.h"
#include "fv/keygen.h"
#include "fv/params.h"

namespace heat::fv {
namespace {

std::shared_ptr<const FvParams>
batchParams()
{
    FvConfig config;
    config.degree = 256;
    config.plain_modulus = 65537; // = 1 mod 512
    config.sigma = 3.2;
    config.q_prime_count = 3;
    return FvParams::create(config);
}

TEST(GaloisRaw, IdentityElement)
{
    rns::Modulus q(65537);
    std::vector<uint64_t> in(16), out(16);
    Xoshiro256 rng(1);
    for (auto &x : in)
        x = rng.uniformBelow(q.value());
    applyGaloisToResidue(in, out, 1, q);
    EXPECT_EQ(out, in);
}

TEST(GaloisRaw, MonomialMapping)
{
    // tau_g(x^i) = x^(i g mod 2n) with sign from x^n = -1.
    rns::Modulus q(65537);
    const size_t n = 16;
    for (uint32_t g : {3u, 5u, 31u}) {
        for (size_t i = 0; i < n; ++i) {
            std::vector<uint64_t> in(n, 0), out(n);
            in[i] = 1;
            applyGaloisToResidue(in, out, g, q);
            const size_t j = i * g % (2 * n);
            for (size_t k = 0; k < n; ++k) {
                uint64_t expect = 0;
                if (j < n && k == j)
                    expect = 1;
                else if (j >= n && k == j - n)
                    expect = q.value() - 1;
                EXPECT_EQ(out[k], expect)
                    << "g=" << g << " i=" << i << " k=" << k;
            }
        }
    }
}

TEST(GaloisRaw, Composition)
{
    rns::Modulus q(65537);
    const size_t n = 64;
    Xoshiro256 rng(2);
    std::vector<uint64_t> in(n), ab(n), tmp(n), ba(n);
    for (auto &x : in)
        x = rng.uniformBelow(q.value());
    const uint32_t g1 = 3, g2 = 5;
    // tau_{g2}(tau_{g1}(m)) = tau_{g1 g2 mod 2n}(m).
    applyGaloisToResidue(in, tmp, g1, q);
    applyGaloisToResidue(tmp, ab, g2, q);
    applyGaloisToResidue(in, ba, g1 * g2 % (2 * n), q);
    EXPECT_EQ(ab, ba);
}

TEST(GaloisElement, StepElements)
{
    EXPECT_EQ(galoisElementForStep(0, 256), 1u);
    EXPECT_EQ(galoisElementForStep(1, 256), 3u);
    EXPECT_EQ(galoisElementForStep(2, 256), 9u);
    // Inverse steps compose to identity.
    const uint64_t two_n = 512;
    uint64_t fwd = galoisElementForStep(3, 256);
    uint64_t back = galoisElementForStep(-3, 256);
    EXPECT_EQ(fwd * back % two_n, 1u);
}

TEST(GaloisElement, StepsNormalizeModuloTheRowLength)
{
    // The rotation subgroup has order n/2: steps congruent modulo the
    // slot-row length are the same permutation and must resolve to the
    // same Galois element (one key, not several).
    const size_t period = rotationStepPeriod(256);
    EXPECT_EQ(period, 128u);
    EXPECT_EQ(normalizeRotationSteps(0, 256), 0);
    EXPECT_EQ(normalizeRotationSteps(128, 256), 0);
    EXPECT_EQ(normalizeRotationSteps(129, 256), 1);
    EXPECT_EQ(normalizeRotationSteps(-1, 256), 127);
    EXPECT_EQ(normalizeRotationSteps(-128, 256), 0);

    EXPECT_EQ(galoisElementForStep(1, 256),
              galoisElementForStep(1 + 128, 256));
    EXPECT_EQ(galoisElementForStep(-1, 256),
              galoisElementForStep(127, 256));
    // A full-row rotation is the identity element.
    EXPECT_EQ(galoisElementForStep(128, 256), 1u);
    EXPECT_EQ(galoisElementForStep(-256, 256), 1u);
}

TEST(BatchEncoderPerm, PermutationIsBijective)
{
    auto params = batchParams();
    BatchEncoder encoder(params);
    for (uint32_t g : {3u, 9u, 511u}) {
        auto perm = encoder.slotPermutation(g);
        std::vector<bool> seen(perm.size(), false);
        for (size_t p : perm) {
            ASSERT_LT(p, perm.size());
            EXPECT_FALSE(seen[p]);
            seen[p] = true;
        }
    }
}

TEST(BatchEncoderPerm, MatchesPlaintextAutomorphism)
{
    // decode(tau_g(m))[j] == decode(m)[perm[j]] on plaintexts alone.
    auto params = batchParams();
    BatchEncoder encoder(params);
    rns::Modulus t(params->plainModulus());
    Xoshiro256 rng(3);
    std::vector<uint64_t> slots(encoder.slotCount());
    for (auto &v : slots)
        v = rng.uniformBelow(t.value());
    Plaintext m = encoder.encode(slots);

    for (uint32_t g : {3u, 27u, 511u}) {
        Plaintext rotated;
        rotated.coeffs.resize(params->degree());
        applyGaloisToResidue(m.coeffs, rotated.coeffs, g, t);
        auto decoded = encoder.decode(rotated);
        auto perm = encoder.slotPermutation(g);
        for (size_t j = 0; j < decoded.size(); ++j)
            ASSERT_EQ(decoded[j], slots[perm[j]]) << "g=" << g << " " << j;
    }
}

/** Full-scheme fixture with rotation keys. */
struct RotRig
{
    RotRig()
        : params(batchParams()),
          keygen(params, 1234),
          sk(keygen.generateSecretKey()),
          pk(keygen.generatePublicKey(sk)),
          gkeys(keygen.generateRotationKeys(sk)),
          encryptor(params, pk, 5),
          decryptor(params, sk),
          evaluator(params),
          encoder(params)
    {
    }

    std::shared_ptr<const FvParams> params;
    KeyGenerator keygen;
    SecretKey sk;
    PublicKey pk;
    GaloisKeys gkeys;
    Encryptor encryptor;
    Decryptor decryptor;
    Evaluator evaluator;
    BatchEncoder encoder;
};

TEST(GaloisCiphertext, RotationMatchesSlotPermutation)
{
    RotRig rig;
    Xoshiro256 rng(6);
    std::vector<uint64_t> slots(rig.encoder.slotCount());
    for (auto &v : slots)
        v = rng.uniformBelow(rig.params->plainModulus());
    Ciphertext ct = rig.encryptor.encrypt(rig.encoder.encode(slots));

    for (int steps : {1, 2, -1}) {
        const uint32_t g =
            galoisElementForStep(steps, rig.params->degree());
        Ciphertext rotated = rig.evaluator.rotateSlots(ct, steps, rig.gkeys);
        auto decoded =
            rig.encoder.decode(rig.decryptor.decrypt(rotated));
        auto perm = rig.encoder.slotPermutation(g);
        for (size_t j = 0; j < decoded.size(); ++j)
            ASSERT_EQ(decoded[j], slots[perm[j]])
                << "steps=" << steps << " slot " << j;
    }
}

TEST(GaloisCiphertext, RotateThereAndBack)
{
    RotRig rig;
    std::vector<uint64_t> slots(rig.encoder.slotCount());
    std::iota(slots.begin(), slots.end(), 7);
    Ciphertext ct = rig.encryptor.encrypt(rig.encoder.encode(slots));

    Ciphertext moved = rig.evaluator.rotateSlots(ct, 2, rig.gkeys);
    moved = rig.evaluator.rotateSlots(moved, -2, rig.gkeys);
    auto decoded = rig.encoder.decode(rig.decryptor.decrypt(moved));
    EXPECT_EQ(decoded, slots);
    EXPECT_GT(rig.decryptor.invariantNoiseBudget(moved), 0.0);
}

TEST(GaloisCiphertext, ColumnSwapIsInvolution)
{
    RotRig rig;
    Xoshiro256 rng(8);
    std::vector<uint64_t> slots(rig.encoder.slotCount());
    for (auto &v : slots)
        v = rng.uniformBelow(rig.params->plainModulus());
    Ciphertext ct = rig.encryptor.encrypt(rig.encoder.encode(slots));

    Ciphertext swapped = rig.evaluator.rotateColumns(ct, rig.gkeys);
    auto once = rig.encoder.decode(rig.decryptor.decrypt(swapped));
    EXPECT_NE(once, slots); // actually moves data
    Ciphertext back = rig.evaluator.rotateColumns(swapped, rig.gkeys);
    auto twice = rig.encoder.decode(rig.decryptor.decrypt(back));
    EXPECT_EQ(twice, slots);
}

TEST(GaloisCiphertext, SumAllSlots)
{
    RotRig rig;
    const uint64_t t = rig.params->plainModulus();
    Xoshiro256 rng(9);
    std::vector<uint64_t> slots(rig.encoder.slotCount());
    uint64_t expect = 0;
    for (auto &v : slots) {
        v = rng.uniformBelow(500);
        expect = (expect + v) % t;
    }
    Ciphertext ct = rig.encryptor.encrypt(rig.encoder.encode(slots));
    Ciphertext total = rig.evaluator.sumAllSlots(ct, rig.gkeys);
    auto decoded = rig.encoder.decode(rig.decryptor.decrypt(total));
    for (size_t j = 0; j < decoded.size(); ++j)
        ASSERT_EQ(decoded[j], expect) << "slot " << j;
    EXPECT_GT(rig.decryptor.invariantNoiseBudget(total), 0.0);
}

TEST(GaloisCiphertext, RotateByZeroIsAnIdentityCopy)
{
    // Regression: rotateSlots(ct, 0) used to resolve to Galois
    // element 1 and attempt a full key-switch (failing on the missing
    // key and burning budget with one present). It must be a plain
    // copy that needs no key at all.
    RotRig rig;
    std::vector<uint64_t> slots(rig.encoder.slotCount());
    std::iota(slots.begin(), slots.end(), 3);
    Ciphertext ct = rig.encryptor.encrypt(rig.encoder.encode(slots));

    GaloisKeys empty;
    const Ciphertext same = rig.evaluator.rotateSlots(ct, 0, empty);
    EXPECT_EQ(same, ct); // bit-exact, not merely same decryption
}

TEST(GaloisCiphertext, FullRowRotationIsAnIdentityCopy)
{
    RotRig rig;
    const int period = static_cast<int>(
        rotationStepPeriod(rig.params->degree()));
    std::vector<uint64_t> slots(rig.encoder.slotCount());
    std::iota(slots.begin(), slots.end(), 9);
    Ciphertext ct = rig.encryptor.encrypt(rig.encoder.encode(slots));

    GaloisKeys empty;
    EXPECT_EQ(rig.evaluator.rotateSlots(ct, period, empty), ct);
    EXPECT_EQ(rig.evaluator.rotateSlots(ct, -period, empty), ct);

    // Congruent steps land on the same permutation with the same key.
    const Ciphertext direct = rig.evaluator.rotateSlots(ct, 1, rig.gkeys);
    const Ciphertext wrapped =
        rig.evaluator.rotateSlots(ct, 1 + period, rig.gkeys);
    EXPECT_EQ(direct, wrapped);
}

TEST(GaloisCiphertext, MissingKeyIsFatal)
{
    RotRig rig;
    std::vector<uint64_t> slots(rig.encoder.slotCount(), 1);
    Ciphertext ct = rig.encryptor.encrypt(rig.encoder.encode(slots));
    GaloisKeys empty;
    EXPECT_THROW(rig.evaluator.rotateSlots(ct, 1, empty), FatalError);
}

} // namespace
} // namespace heat::fv
