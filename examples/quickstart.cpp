/**
 * @file
 * Quickstart: generate keys for the paper's parameter set, encrypt two
 * integers, compute (a + b) and (a * b) homomorphically, decrypt, and
 * watch the invariant noise budget.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "fv/decryptor.h"
#include "fv/encoder.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"

using namespace heat;

int
main()
{
    // The paper's parameter set: n = 4096, 180-bit q, sigma = 102.
    // t = 65537 gives integer arithmetic headroom.
    auto params = fv::FvParams::paper(/*t=*/65537);
    std::printf("FV parameters: n = %zu, log2(q) = %d, %zu+%zu RNS "
                "primes, t = %llu\n",
                params->degree(), params->qBits(),
                params->qBase()->size(), params->pBase()->size(),
                static_cast<unsigned long long>(params->plainModulus()));

    // Key material.
    fv::KeyGenerator keygen(params, /*seed=*/2024);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);

    fv::Encryptor encryptor(params, pk, /*seed=*/7);
    fv::Decryptor decryptor(params, sk);
    fv::Evaluator evaluator(params);
    fv::IntegerEncoder encoder(params, /*base=*/2);

    // Encrypt two integers.
    const int64_t x = 12345, y = 678;
    fv::Ciphertext cx = encryptor.encrypt(encoder.encode(x));
    fv::Ciphertext cy = encryptor.encrypt(encoder.encode(y));
    std::printf("\nencrypted x = %lld, y = %lld\n",
                static_cast<long long>(x), static_cast<long long>(y));
    std::printf("fresh noise budget: %.0f bits\n",
                decryptor.invariantNoiseBudget(cx));

    // Homomorphic addition.
    fv::Ciphertext csum = evaluator.add(cx, cy);
    std::printf("\nx + y = %lld (expected %lld), budget %.0f bits\n",
                static_cast<long long>(
                    encoder.decodeInt64(decryptor.decrypt(csum))),
                static_cast<long long>(x + y),
                decryptor.invariantNoiseBudget(csum));

    // Homomorphic multiplication with relinearization.
    fv::Ciphertext cprod = evaluator.multiply(cx, cy, rlk);
    std::printf("x * y = %lld (expected %lld), budget %.0f bits\n",
                static_cast<long long>(
                    encoder.decodeInt64(decryptor.decrypt(cprod))),
                static_cast<long long>(x * y),
                decryptor.invariantNoiseBudget(cprod));

    // One more level: (x * y) * (x + y).
    fv::Ciphertext deeper = evaluator.multiply(cprod, csum, rlk);
    std::printf("(x*y)*(x+y) = %lld (expected %lld), budget %.0f bits\n",
                static_cast<long long>(
                    encoder.decodeInt64(decryptor.decrypt(deeper))),
                static_cast<long long>(x * y * (x + y)),
                decryptor.invariantNoiseBudget(deeper));
    return 0;
}
