/**
 * @file
 * Homomorphic evaluation of a Rasta-like low-AND-depth cipher — one of
 * the applications the paper sizes its depth-4 parameter set for
 * (Sec. III-A cites Rasta, a cipher with "low AND-depth and few ANDs
 * per bit", as evaluable on ciphertext).
 *
 * Transciphering scenario: a constrained client encrypts its data under
 * the cheap symmetric cipher and sends the FV-encrypted *key* once. The
 * cloud homomorphically evaluates the cipher's keystream over the
 * encrypted key and XORs it with the symmetric ciphertext, converting
 * it into an FV ciphertext without the client ever performing expensive
 * FV encryptions of bulk data.
 *
 * The toy cipher here follows Rasta's structure on a small state: r
 * rounds of (affine layer A_i: bit matrix + constant) followed by a
 * chi-like nonlinear layer y_j = x_j XOR (x_{j+1} AND x_{j+2}) — one
 * AND level per round, so homomorphic depth = rounds (2 here, well
 * inside the paper's depth-4 envelope).
 */

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"

using namespace heat;

namespace {

constexpr size_t kState = 8; // state bits
constexpr int kRounds = 2;   // AND-depth = 2

/** Public per-round affine layers (derived from a nonce in real Rasta). */
struct AffineLayer
{
    std::vector<std::vector<uint64_t>> matrix; // kState x kState bits
    std::vector<uint64_t> constant;            // kState bits
};

std::vector<AffineLayer>
expandNonce(uint64_t nonce)
{
    // Deterministic pseudo-random invertible-ish layers (toy version).
    Xoshiro256 rng(nonce);
    std::vector<AffineLayer> layers(kRounds + 1);
    for (auto &layer : layers) {
        layer.matrix.assign(kState, std::vector<uint64_t>(kState));
        layer.constant.assign(kState, 0);
        for (size_t i = 0; i < kState; ++i) {
            for (size_t j = 0; j < kState; ++j)
                layer.matrix[i][j] = rng.next() & 1;
            layer.matrix[i][i] = 1; // keep some diffusion guaranteed
            layer.constant[i] = rng.next() & 1;
        }
    }
    return layers;
}

/** Reference (plaintext) keystream for verification. */
std::vector<uint64_t>
keystreamReference(const std::vector<uint64_t> &key, uint64_t nonce)
{
    auto layers = expandNonce(nonce);
    std::vector<uint64_t> state = key;
    for (int round = 0; round <= kRounds; ++round) {
        // Affine layer.
        std::vector<uint64_t> lin(kState, 0);
        for (size_t i = 0; i < kState; ++i) {
            uint64_t acc = layers[round].constant[i];
            for (size_t j = 0; j < kState; ++j)
                acc ^= layers[round].matrix[i][j] & state[j];
            lin[i] = acc;
        }
        state = lin;
        if (round == kRounds)
            break;
        // chi-like layer: x_j ^= x_{j+1} & x_{j+2}.
        std::vector<uint64_t> nl(kState);
        for (size_t j = 0; j < kState; ++j) {
            nl[j] = state[j] ^
                    (state[(j + 1) % kState] & state[(j + 2) % kState]);
        }
        state = nl;
    }
    // Feed-forward: keystream = state XOR key.
    for (size_t j = 0; j < kState; ++j)
        state[j] ^= key[j];
    return state;
}

} // namespace

int
main()
{
    auto params = fv::FvParams::paper(/*t=*/2);
    fv::KeyGenerator keygen(params, 555);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 6);
    fv::Decryptor decryptor(params, sk);
    fv::Evaluator evaluator(params);

    // The client's symmetric key, encrypted bit-by-bit under FV (sent
    // once).
    Xoshiro256 rng(1);
    std::vector<uint64_t> sym_key(kState);
    std::vector<fv::Ciphertext> enc_key;
    for (auto &bit : sym_key) {
        bit = rng.next() & 1;
        fv::Plaintext p;
        p.coeffs = {bit};
        enc_key.push_back(encryptor.encrypt(p));
    }
    std::printf("Rasta-like transciphering: %zu-bit state, %d rounds "
                "(AND-depth %d), paper depth budget 4\n",
                kState, kRounds, kRounds);

    // Cloud: evaluate the keystream homomorphically over the encrypted
    // key for nonce 42.
    const uint64_t nonce = 42;
    auto layers = expandNonce(nonce);
    std::vector<fv::Ciphertext> state = enc_key;
    for (int round = 0; round <= kRounds; ++round) {
        // Affine layer: XOR of selected bits plus constant — additions
        // only.
        std::vector<fv::Ciphertext> lin;
        for (size_t i = 0; i < kState; ++i) {
            fv::Ciphertext acc;
            bool first = true;
            for (size_t j = 0; j < kState; ++j) {
                if (!layers[round].matrix[i][j])
                    continue;
                if (first) {
                    acc = state[j];
                    first = false;
                } else {
                    evaluator.addInPlace(acc, state[j]);
                }
            }
            if (layers[round].constant[i]) {
                fv::Plaintext one;
                one.coeffs = {1};
                evaluator.addPlainInPlace(acc, one);
            }
            lin.push_back(std::move(acc));
        }
        state = std::move(lin);
        if (round == kRounds)
            break;
        // chi layer: one homomorphic multiplication per bit.
        std::vector<fv::Ciphertext> nl;
        for (size_t j = 0; j < kState; ++j) {
            fv::Ciphertext and_term = evaluator.multiply(
                state[(j + 1) % kState], state[(j + 2) % kState], rlk);
            evaluator.addInPlace(and_term, state[j]);
            nl.push_back(std::move(and_term));
        }
        state = std::move(nl);
        std::printf("  round %d done, budget %.0f bits\n", round + 1,
                    decryptor.invariantNoiseBudget(state[0]));
    }
    for (size_t j = 0; j < kState; ++j)
        evaluator.addInPlace(state[j], enc_key[j]); // feed-forward

    // Verify against the reference keystream.
    auto expect = keystreamReference(sym_key, nonce);
    bool ok = true;
    std::printf("\nkeystream bits (homomorphic vs reference):\n  ");
    for (size_t j = 0; j < kState; ++j) {
        fv::Plaintext bit = decryptor.decrypt(state[j]);
        const uint64_t got = bit.coeffs.empty() ? 0 : bit.coeffs[0] & 1;
        std::printf("%llu/%llu ", static_cast<unsigned long long>(got),
                    static_cast<unsigned long long>(expect[j]));
        ok = ok && got == expect[j];
    }
    std::printf("\n%s\n", ok ? "transciphering keystream correct."
                             : "MISMATCH!");

    // Use it: decrypt a symmetric ciphertext homomorphically.
    if (ok) {
        std::vector<uint64_t> message = {1, 0, 1, 1, 0, 0, 1, 0};
        std::printf("\nclient's symmetric ciphertext (msg XOR keystream) "
                    "homomorphically converted to FV:\n  message bits:   ");
        for (size_t j = 0; j < kState; ++j) {
            // cloud: FV(msg_j) = sym_ct_j + FV(keystream_j) over t=2.
            fv::Ciphertext fv_bit = state[j];
            fv::Plaintext sym_ct;
            sym_ct.coeffs = {message[j] ^ expect[j]};
            evaluator.addPlainInPlace(fv_bit, sym_ct);
            fv::Plaintext dec = decryptor.decrypt(fv_bit);
            std::printf("%llu", static_cast<unsigned long long>(
                                    dec.coeffs.empty() ? 0
                                                       : dec.coeffs[0]));
            ok = ok &&
                 (dec.coeffs.empty() ? 0 : dec.coeffs[0]) == message[j];
        }
        std::printf("  (%s)\n", ok ? "matches" : "MISMATCH");
    }
    return ok ? 0 : 1;
}
