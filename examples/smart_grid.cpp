/**
 * @file
 * Privacy-friendly smart-grid aggregation and forecasting — the paper's
 * motivating application [Bos-Castryck-Iliashenko-Vercauteren,
 * AFRICACRYPT 2017]. A utility aggregates encrypted consumption
 * readings from many households and evaluates a linear autoregressive
 * forecast, all without ever decrypting an individual meter.
 *
 * One ciphertext batches n = 4096 plaintext slots (t = 65537 is prime
 * and = 1 mod 2n), so 4096 households ride in a single ciphertext and
 * every homomorphic operation acts on all of them at once.
 */

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "fv/batch_encoder.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"

using namespace heat;

int
main()
{
    auto params = fv::FvParams::paper(/*t=*/65537);
    const size_t households = params->degree();
    const int hours = 6;
    const uint64_t t = params->plainModulus();

    fv::KeyGenerator keygen(params, 31337);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 5);
    fv::Decryptor decryptor(params, sk);
    fv::Evaluator evaluator(params);
    fv::BatchEncoder encoder(params);

    std::printf("Smart-grid demo: %zu households, %d hourly readings "
                "each (slot-batched)\n",
                households, hours);

    // Each hour every household submits an encrypted reading (watts,
    // bounded so sums stay below t).
    Xoshiro256 rng(99);
    std::vector<std::vector<uint64_t>> readings(hours);
    std::vector<fv::Ciphertext> encrypted;
    for (int h = 0; h < hours; ++h) {
        readings[h].resize(households);
        for (auto &w : readings[h])
            w = 100 + rng.uniformBelow(900); // 100..999 W
        encrypted.push_back(
            encryptor.encrypt(encoder.encode(readings[h])));
    }

    // --- 1. total consumption per household over the window -------------
    fv::Ciphertext total = encrypted[0];
    for (int h = 1; h < hours; ++h)
        evaluator.addInPlace(total, encrypted[h]);
    auto totals = encoder.decode(decryptor.decrypt(total));

    uint64_t expect0 = 0;
    for (int h = 0; h < hours; ++h)
        expect0 += readings[h][0];
    std::printf("\nhousehold 0 total: %llu W (expected %llu), "
                "budget %.0f bits\n",
                static_cast<unsigned long long>(totals[0]),
                static_cast<unsigned long long>(expect0),
                decryptor.invariantNoiseBudget(total));

    // --- 2. linear forecast: x(t+1) ~ 3*x(t) - 2*x(t-1) + x(t-2) --------
    // (an integer-weight autoregressive model in the spirit of the
    // group-method-of-data-handling predictor of the paper's reference)
    const int64_t w0 = 3, w1 = -2, w2 = 1;
    fv::Plaintext p_w0(std::vector<uint64_t>{static_cast<uint64_t>(w0)});
    fv::Plaintext p_w1(
        std::vector<uint64_t>{static_cast<uint64_t>(t + w1)});
    fv::Plaintext p_w2(std::vector<uint64_t>{static_cast<uint64_t>(w2)});

    fv::Ciphertext forecast =
        evaluator.multiplyPlain(encrypted[hours - 1], p_w0);
    evaluator.addInPlace(
        forecast, evaluator.multiplyPlain(encrypted[hours - 2], p_w1));
    evaluator.addInPlace(
        forecast, evaluator.multiplyPlain(encrypted[hours - 3], p_w2));
    auto forecasts = encoder.decode(decryptor.decrypt(forecast));

    for (size_t i = 0; i < 3; ++i) {
        const int64_t expect =
            w0 * static_cast<int64_t>(readings[hours - 1][i]) +
            w1 * static_cast<int64_t>(readings[hours - 2][i]) +
            w2 * static_cast<int64_t>(readings[hours - 3][i]);
        const int64_t got =
            forecasts[i] > t / 2 ? static_cast<int64_t>(forecasts[i]) -
                                       static_cast<int64_t>(t)
                                 : static_cast<int64_t>(forecasts[i]);
        std::printf("household %zu forecast: %lld W (expected %lld)\n", i,
                    static_cast<long long>(got),
                    static_cast<long long>(expect));
    }

    // --- 3. squared-consumption aggregate (for variance billing) -------
    fv::Ciphertext sq =
        evaluator.multiply(encrypted[hours - 1], encrypted[hours - 1], rlk);
    auto squares = encoder.decode(decryptor.decrypt(sq));
    std::printf("\nhousehold 0 squared reading: %llu (expected %llu), "
                "budget %.0f bits\n",
                static_cast<unsigned long long>(squares[0]),
                static_cast<unsigned long long>(
                    readings[hours - 1][0] * readings[hours - 1][0] % t),
                decryptor.invariantNoiseBudget(sq));

    std::printf("\nAll aggregates computed under encryption: the utility "
                "never saw a single reading.\n");
    return 0;
}
