/**
 * @file
 * The cloud-accelerator demo: a server (the Arm processing system of
 * Fig. 11) dispatches a batch of homomorphic multiplications to the two
 * simulated FPGA coprocessors, reports the sustained throughput, power
 * and energy (the paper's headline: ~400 Mult/s at under 9 W), and
 * verifies one hardware-produced ciphertext bit-exactly against the
 * software evaluator before decrypting it.
 */

#include <cstdio>

#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "hw/power_model.h"
#include "hw/program_builder.h"
#include "hw/system.h"

using namespace heat;

int
main()
{
    auto params = fv::FvParams::paper(/*t=*/2);
    fv::KeyGenerator keygen(params, 777);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 3);
    fv::Decryptor decryptor(params, sk);
    fv::Evaluator evaluator(params);

    // --- functional check: run one Mult through the simulated HW --------
    fv::Plaintext m0, m1;
    m0.coeffs = {1, 0, 1, 1};
    m1.coeffs = {1, 1};
    fv::Ciphertext x = encryptor.encrypt(m0);
    fv::Ciphertext y = encryptor.encrypt(m1);

    hw::HwConfig config = hw::HwConfig::paper();
    hw::Coprocessor cp(params, config, &rlk);
    std::array<hw::PolyId, 2> a{cp.uploadPoly(x[0]), cp.uploadPoly(x[1])};
    std::array<hw::PolyId, 2> b{cp.uploadPoly(y[0]), cp.uploadPoly(y[1])};
    hw::ProgramBuilder builder(cp);
    hw::Program prog = builder.buildMult(a, b);
    hw::ExecStats stats = cp.execute(prog);

    fv::Ciphertext hw_result;
    hw_result.polys.push_back(cp.downloadPoly(prog.outputs[0]));
    hw_result.polys.push_back(cp.downloadPoly(prog.outputs[1]));

    fv::Ciphertext sw_result = evaluator.multiply(x, y, rlk);
    const bool bit_exact =
        hw_result[0].data() == sw_result[0].data() &&
        hw_result[1].data() == sw_result[1].data();

    fv::Plaintext product = decryptor.decrypt(hw_result);
    std::printf("coprocessor Mult: %zu instructions, %.3f ms compute + "
                "%.3f ms key DMA\n",
                prog.instrs.size(),
                config.cyclesToUs(stats.fpga_cycles) / 1e3,
                stats.dma_us / 1e3);
    std::printf("result vs software evaluator: %s\n",
                bit_exact ? "bit-exact" : "MISMATCH");
    std::printf("decrypted product (m0*m1 mod (x^n+1, 2)): ");
    for (size_t i = 0; i < product.coeffs.size() && i < 8; ++i)
        std::printf("%llu",
                    static_cast<unsigned long long>(product.coeffs[i]));
    std::printf("...\n");
    std::printf("memory-file peak: %zu of %zu slots\n",
                cp.memory().peakSlots(), cp.memory().capacity());

    std::printf("\nMult program head (of %zu instructions):\n",
                prog.instrs.size());
    for (size_t i = 0; i < 6 && i < prog.instrs.size(); ++i)
        std::printf("  %2zu: %s\n", i,
                    hw::disassemble(prog.instrs[i]).c_str());
    std::printf("  ...\n");

    // --- throughput run on the full two-coprocessor system ---------------
    const size_t batch = 1000;
    hw::HeatSystem system(params, config, 2);
    hw::ThroughputResult run = system.simulate(batch);
    hw::PowerModel power;

    std::printf("\nserver batch: %zu multiplications on 2 coprocessors\n",
                batch);
    std::printf("  makespan: %.1f ms -> %.0f Mult/s (paper: 400)\n",
                run.makespan_us / 1e3, run.mults_per_second);
    std::printf("  DMA busy: %.0f%%, coprocessor busy: %.0f%% / %.0f%%\n",
                run.dma_utilization * 100,
                run.coproc_utilization[0] * 100,
                run.coproc_utilization[1] * 100);
    std::printf("  power: %.1f W total -> %.1f mJ per multiplication\n",
                power.totalW(2),
                power.energyPerMultMj(run.mults_per_second, 2));
    return bit_exact ? 0 : 1;
}
