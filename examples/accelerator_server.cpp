/**
 * @file
 * The cloud-accelerator demo, now on the serving layer: an
 * ExecutionService shards homomorphic operations across N simulated
 * coprocessors while a synthetic multi-client load driver (one thread
 * per client, each with its own keys-sharing encryptor seed) submits
 * interleaved Add and Mult requests and verifies every decrypted
 * result against plaintext arithmetic. One hardware Mult is also
 * checked bit-exactly against the software evaluator — the
 * conformance oracle the differential test suite runs at scale.
 */

#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "common/random.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/power_model.h"
#include "hw/system.h"
#include "service/service.h"

using namespace heat;

namespace {

struct ClientResult
{
    size_t ops = 0;
    size_t wrong = 0;
};

/** One synthetic client: encrypts random bits, submits pairs of
 *  requests, and checks the decrypted results. */
ClientResult
runClient(size_t client_id, size_t ops,
          service::ExecutionService &svc,
          const std::shared_ptr<const fv::FvParams> &params,
          const fv::PublicKey &pk, const fv::SecretKey &sk)
{
    fv::Encryptor encryptor(params, pk, /*seed=*/1000 + client_id);
    fv::Decryptor decryptor(params, fv::SecretKey{sk.s_ntt});
    Xoshiro256 rng(77 * (client_id + 1));
    const uint64_t t = params->plainModulus();

    ClientResult result;
    std::vector<std::future<fv::Ciphertext>> futures;
    std::vector<uint64_t> expected;
    for (size_t i = 0; i < ops; ++i) {
        // Degree-0 messages keep the plaintext check trivial: the
        // constant coefficient of x+y resp. x*y mod t.
        const uint64_t m0 = rng.uniformBelow(t);
        const uint64_t m1 = rng.uniformBelow(t);
        fv::Ciphertext x = encryptor.encrypt(fv::Plaintext({m0}));
        fv::Ciphertext y = encryptor.encrypt(fv::Plaintext({m1}));
        const bool mult = i % 2 == 0;
        futures.push_back(svc.submit(mult ? service::Op::kMult
                                          : service::Op::kAdd,
                                     std::move(x), std::move(y)));
        expected.push_back(mult ? m0 * m1 % t : (m0 + m1) % t);
    }
    for (size_t i = 0; i < futures.size(); ++i) {
        fv::Plaintext got = decryptor.decrypt(futures[i].get());
        const uint64_t c0 = got.coeffs.empty() ? 0 : got.coeffs[0];
        ++result.ops;
        if (c0 != expected[i])
            ++result.wrong;
    }
    return result;
}

} // namespace

int
main()
{
    auto params = fv::FvParams::paper(/*t=*/65537);
    fv::KeyGenerator keygen(params, 777);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);

    // --- conformance: one hardware Mult vs the software evaluator -------
    {
        fv::Encryptor encryptor(params, pk, 3);
        fv::Evaluator evaluator(params);
        fv::Ciphertext x = encryptor.encrypt(fv::Plaintext({3, 0, 1}));
        fv::Ciphertext y = encryptor.encrypt(fv::Plaintext({5, 2}));

        service::ServiceConfig probe_cfg;
        probe_cfg.workers = 1;
        service::ExecutionService probe(params, rlk, probe_cfg);
        fv::Ciphertext hw_result =
            probe.submit(service::Op::kMult, x, y).get();
        const bool bit_exact =
            hw_result == evaluator.multiply(x, y, rlk);
        std::printf("hardware Mult vs software evaluator: %s\n",
                    bit_exact ? "bit-exact" : "MISMATCH");
        if (!bit_exact)
            return 1;
    }

    // --- the serving run: clients x workers ------------------------------
    const size_t n_workers = 2;   // the paper's two-coprocessor system
    const size_t n_clients = 4;   // synthetic load driver threads
    const size_t ops_per_client = 6;

    service::ServiceConfig cfg;
    cfg.workers = n_workers;
    cfg.max_batch = 4;
    service::ExecutionService svc(params, rlk, cfg);

    std::vector<std::thread> clients;
    std::vector<ClientResult> results(n_clients);
    for (size_t c = 0; c < n_clients; ++c) {
        clients.emplace_back([&, c] {
            results[c] =
                runClient(c, ops_per_client, svc, params, pk, sk);
        });
    }
    for (std::thread &t : clients)
        t.join();
    svc.drain();

    service::ServiceStats stats = svc.stats();
    size_t total_ops = 0, total_wrong = 0;
    for (const ClientResult &r : results) {
        total_ops += r.ops;
        total_wrong += r.wrong;
    }
    std::printf("\nserving run: %zu clients -> %zu workers, "
                "%zu ops (%zu batches)\n",
                n_clients, svc.workerCount(),
                static_cast<size_t>(stats.ops_completed),
                static_cast<size_t>(stats.batches));
    std::printf("  decrypted results: %zu/%zu correct\n",
                total_ops - total_wrong, total_ops);
    std::printf("  modeled accelerator makespan: %.1f ms -> %.0f ops/s\n",
                stats.makespan_us / 1e3, stats.modeledOpsPerSecond());
    std::printf("  modeled host transfer time: %.1f ms, key DMA: "
                "%.1f ms\n",
                stats.host_us / 1e3, stats.dma_us / 1e3);

    // --- context: the contention-aware two-coprocessor throughput -------
    hw::HeatSystem system(params, cfg.hw, n_workers);
    hw::ThroughputResult run = system.simulate(1000);
    hw::PowerModel power;
    std::printf("\nreference batch of 1000 Mults on %zu coprocessors "
                "(DMA-arbitrated):\n", n_workers);
    std::printf("  %.0f Mult/s (paper: 400), %.1f W total -> %.1f mJ "
                "per Mult\n",
                run.mults_per_second, power.totalW(n_workers),
                power.energyPerMultMj(run.mults_per_second, n_workers));
    return total_wrong == 0 ? 0 : 1;
}
