/**
 * @file
 * Encrypted polynomial function evaluation — the canonical deep-circuit
 * workload on the fused-program coprocessor path.
 *
 * A server holds a public degree-15 polynomial; clients send encrypted
 * batched 4-bit values and receive f(v) per slot without the server
 * learning anything. Because 16 interpolation nodes pin a degree-15
 * polynomial over the prime plaintext field, f can be ANY function of
 * a 4-bit input — here a threshold comparator (v >= 8), the scaled
 * sign/step function FHE applications approximate.
 *
 * The demo contrasts the two lowerings of heat::poly:
 *   - Horner: 14 non-scalar mults at multiplicative depth 14 — the
 *     compiler's noise pass rejects it outright on this parameter set;
 *   - Paterson-Stockmeyer: 7 non-scalar mults at depth 4, compiled
 *     once under NoiseCheck::kReject and submitted many times through
 *     service::ExecutionService, then compared fused vs op-by-op on a
 *     local coprocessor for modeled cost.
 *
 * Parameters are the paper's Table V row 1 (n = 8192, ~360-bit q) at
 * the batching modulus t = 65537: row 0 — the depth-4 sizing of
 * Sec. III-A — leaves no predicted margin for depth 4 PLUS the
 * plaintext-multiply layers of a degree-15 block plan, which is
 * exactly the sizing conversation the noise pass automates.
 */

#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "common/panic.h"
#include "compiler/compiler.h"
#include "fv/batch_encoder.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "poly/poly.h"
#include "service/service.h"

using namespace heat;

int
main()
{
    // --- the public function: threshold on 4-bit values ----------------
    const uint64_t t = 65537;
    std::vector<uint64_t> table(16);
    for (uint64_t v = 0; v < 16; ++v)
        table[v] = v >= 8 ? 1 : 0;
    const std::vector<uint64_t> coeffs =
        poly::interpolateOnRange(table, t);

    auto params = fv::FvParams::tableV(1, t);
    poly::PolynomialEvaluator pe(params, coeffs);

    const poly::PlanInfo ps =
        pe.plan(poly::EvalStrategy::kPatersonStockmeyer);
    const poly::PlanInfo horner = pe.plan(poly::EvalStrategy::kHorner);
    std::printf("degree-%d threshold polynomial (t = %llu)\n", ps.degree,
                static_cast<unsigned long long>(t));
    std::printf("  %-20s %2zu non-scalar mults, depth %2d, k = %zu, "
                "%zu giant powers\n",
                "Paterson-Stockmeyer:", ps.non_scalar_mults,
                ps.mult_depth, ps.baby_step, ps.giant_count);
    std::printf("  %-20s %2zu non-scalar mults, depth %2d\n", "Horner:",
                horner.non_scalar_mults, horner.mult_depth);

    // --- depth-aware compilation ---------------------------------------
    compiler::CompilerOptions options;
    options.noise_check = compiler::NoiseCheck::kReject;
    options.hw.n_rpaus = params->fullBase()->size();

    auto compiled = std::make_shared<const compiler::CompiledCircuit>(
        compiler::compileCircuit(
            params, pe.circuit(poly::EvalStrategy::kPatersonStockmeyer),
            options));
    std::printf("\nPaterson-Stockmeyer compiles: predicted budget "
                "%.1f bits at the outputs\n",
                compiled->min_output_noise_budget_bits);

    try {
        compiler::compileCircuit(
            params, pe.circuit(poly::EvalStrategy::kHorner), options);
        std::printf("ERROR: Horner should have been rejected\n");
        return 1;
    } catch (const FatalError &e) {
        std::printf("Horner rejected by the noise pass:\n  %s\n",
                    e.what());
    }

    // --- keys, clients, serving ----------------------------------------
    fv::KeyGenerator keygen(params, 7001);
    const fv::SecretKey sk = keygen.generateSecretKey();
    const fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 7002);
    fv::Decryptor decryptor(params, fv::SecretKey{sk.s_ntt});
    fv::BatchEncoder encoder(params);

    service::ServiceConfig cfg;
    cfg.workers = 2;
    cfg.hw = options.hw;
    service::ExecutionService service(params, rlk, cfg);

    const size_t slots = encoder.slotCount();
    std::vector<std::vector<uint64_t>> batches;
    std::vector<std::future<std::vector<fv::Ciphertext>>> futures;
    for (uint64_t client = 0; client < 2; ++client) {
        std::vector<uint64_t> values(slots);
        for (size_t s = 0; s < slots; ++s)
            values[s] = (s * 7 + client * 5) % 16;
        batches.push_back(values);
        futures.push_back(service.submitCompiled(
            compiled, {encryptor.encrypt(encoder.encode(values))}));
    }

    double result_budget = 0.0;
    for (size_t client = 0; client < futures.size(); ++client) {
        const std::vector<fv::Ciphertext> out = futures[client].get();
        result_budget = decryptor.invariantNoiseBudget(out[0]);
        const std::vector<uint64_t> decoded =
            encoder.decode(decryptor.decrypt(out[0]));
        for (size_t s = 0; s < slots; ++s) {
            const uint64_t expect = batches[client][s] >= 8 ? 1 : 0;
            if (decoded[s] != expect) {
                std::printf("FAILED: client %zu slot %zu: got %llu, "
                            "want %llu\n",
                            client, s,
                            static_cast<unsigned long long>(decoded[s]),
                            static_cast<unsigned long long>(expect));
                return 1;
            }
        }
    }
    std::printf("\n%zu clients x %zu slots thresholded correctly; "
                "measured budget %.1f bits (predicted %.1f)\n",
                futures.size(), slots, result_budget,
                compiled->min_output_noise_budget_bits);

    // --- fused vs op-by-op modeled cost --------------------------------
    hw::Coprocessor cp(params, options.hw, &rlk);
    const std::vector<fv::Ciphertext> input = {
        encryptor.encrypt(encoder.encode(batches[0]))};
    compiler::CircuitRunStats fused_stats;
    compiler::runCompiledCircuit(cp, *compiled, input, &fused_stats);
    compiler::CircuitRunStats op_stats;
    compiler::runCircuitOpByOp(
        cp, params, pe.circuit(poly::EvalStrategy::kPatersonStockmeyer),
        input, &op_stats);

    const double fused_us = fused_stats.modeledUs(options.hw);
    const double op_us = op_stats.modeledUs(options.hw);
    std::printf("\nmodeled cost of one degree-15 evaluation:\n");
    std::printf("  fused:    %9.0f us (%zu segment(s), %llu dispatches)\n",
                fused_us, fused_stats.segments,
                static_cast<unsigned long long>(fused_stats.dispatches));
    std::printf("  op-by-op: %9.0f us (%llu dispatches)\n", op_us,
                static_cast<unsigned long long>(op_stats.dispatches));
    std::printf("  fusion speedup: %.2fx\n", op_us / fused_us);

    return fused_us < op_us ? 0 : 1;
}
