/**
 * @file
 * Serving under heavy traffic: an open-loop load driver for the
 * multi-tenant ExecutionService.
 *
 * Three tenant sessions with independent key sets share one worker
 * pool. The driver:
 *
 *  1. shows noise-aware admission control rejecting a depth-over-budget
 *     circuit synchronously, with the node-level diagnostic;
 *  2. shows the bounded per-tenant queue shedding load under overload;
 *  3. pins each tenant's PIR database shards in the coprocessor-
 *     resident cache, then drives 10k+ open-loop requests (adds, mults
 *     and resident PIR circuits with modeled Poisson arrivals) through
 *     the pool, spot-checking results bit-exactly against the software
 *     evaluator.
 *
 * A small ring (n = 256) keeps the functional simulation fast; the
 * modeled latency distribution still uses the paper's hardware model.
 * Exits nonzero if any spot-check or accounting invariant fails.
 */

#include <cmath>
#include <cstdlib>
#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "common/random.h"
#include "compiler/circuit.h"
#include "compiler/compiler.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "service/service.h"

using namespace heat;

namespace {

struct Tenant
{
    fv::SecretKey sk;
    fv::PublicKey pk;
    fv::RelinKeys rlk;
    std::unique_ptr<fv::Encryptor> encryptor;
    std::unique_ptr<fv::Decryptor> decryptor;
    service::TenantId id = service::kDefaultTenant;
    std::vector<fv::Ciphertext> shards;
    std::vector<service::PinnedHandle> handles;
    std::vector<fv::Ciphertext> pool;
};

fv::Plaintext
randomPlain(const fv::FvParams &params, Xoshiro256 &rng)
{
    fv::Plaintext m;
    m.coeffs.resize(params.degree());
    for (auto &c : m.coeffs)
        c = rng.uniformBelow(params.plainModulus());
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    fv::FvConfig cfg;
    cfg.degree = 256;
    cfg.plain_modulus = 257;
    cfg.sigma = 3.2;
    cfg.q_prime_count = 3;
    auto params = fv::FvParams::create(cfg);
    const hw::HwConfig hw = hw::HwConfig::paper();
    Xoshiro256 rng(2718);

    std::printf("multi-tenant serving demo: n = %zu, t = %llu, "
                "%zu q-primes\n",
                params->degree(),
                static_cast<unsigned long long>(params->plainModulus()),
                params->qBase()->size());

    // --- the worker pool and three tenant sessions ----------------------
    service::ServiceConfig scfg;
    scfg.workers = 4;
    scfg.max_batch = 8;
    scfg.hw = hw;
    scfg.admission = compiler::NoiseCheck::kReject;

    const size_t kTenants = 3;
    std::vector<Tenant> tenants(kTenants);
    std::unique_ptr<service::ExecutionService> svc;
    for (size_t t = 0; t < kTenants; ++t) {
        fv::KeyGenerator keygen(params, 1000 + t);
        tenants[t].sk = keygen.generateSecretKey();
        tenants[t].pk = keygen.generatePublicKey(tenants[t].sk);
        tenants[t].rlk = keygen.generateRelinKeys(tenants[t].sk);
        tenants[t].encryptor = std::make_unique<fv::Encryptor>(
            params, tenants[t].pk, 2000 + t);
        tenants[t].decryptor = std::make_unique<fv::Decryptor>(
            params, fv::SecretKey{tenants[t].sk.s_ntt});
        if (t == 0) {
            svc = std::make_unique<service::ExecutionService>(
                params, tenants[t].rlk, scfg);
        } else {
            char name[16];
            std::snprintf(name, sizeof name, "tenant-%zu", t);
            tenants[t].id = svc->registerTenant(
                name, tenants[t].rlk, {}, /*weight=*/t == 2 ? 2 : 1);
        }
    }
    std::printf("%zu tenants registered on %zu workers\n\n",
                svc->tenantCount(), svc->workerCount());

    // --- 1. noise-aware admission ---------------------------------------
    {
        compiler::CircuitBuilder b;
        compiler::ValueId v = b.input();
        for (int i = 0; i < 8; ++i)
            v = b.square(v);
        b.output(v);
        try {
            svc->submitCircuit(
                tenants[0].id, b.build(),
                {tenants[0].encryptor->encrypt(randomPlain(*params, rng))});
            std::fprintf(stderr, "FAIL: depth-8 chain was admitted\n");
            return 1;
        } catch (const service::AdmissionRejectedError &e) {
            std::printf("admission control rejected a depth-8 squaring "
                        "chain synchronously:\n  %s\n\n",
                        e.what());
        }
    }

    // --- 2. load shedding under overload --------------------------------
    {
        service::ServiceConfig tiny = scfg;
        tiny.workers = 1;
        tiny.start_paused = true;
        tiny.max_queue_per_tenant = 4;
        service::ExecutionService bounded(params, tenants[0].rlk, tiny);
        std::vector<std::future<fv::Ciphertext>> accepted;
        size_t shed = 0;
        for (int i = 0; i < 8; ++i) {
            fv::Ciphertext a =
                tenants[0].encryptor->encrypt(randomPlain(*params, rng));
            fv::Ciphertext b =
                tenants[0].encryptor->encrypt(randomPlain(*params, rng));
            try {
                accepted.push_back(bounded.submit(
                    service::Op::kAdd, std::move(a), std::move(b)));
            } catch (const service::ServiceOverloadedError &) {
                ++shed;
            }
        }
        bounded.start();
        for (auto &f : accepted)
            f.get();
        std::printf("bounded queue (4): of 8 burst submissions, %zu "
                    "accepted and %zu shed synchronously\n\n",
                    accepted.size(), shed);
        if (shed != 4 || bounded.stats().ops_shed != shed) {
            std::fprintf(stderr, "FAIL: expected 4 shed submissions\n");
            return 1;
        }
    }

    // --- 3. open-loop mixed-tenant load with a resident PIR cache -------
    const size_t kShards = 8;
    compiler::Circuit pir;
    {
        compiler::CircuitBuilder b;
        std::vector<compiler::ValueId> db;
        for (size_t k = 0; k < kShards; ++k)
            db.push_back(b.input());
        const compiler::ValueId query = b.input();
        compiler::ValueId acc = compiler::kNoValue;
        for (size_t k = 0; k < kShards; ++k) {
            const compiler::ValueId sel =
                b.multPlain(db[k], randomPlain(*params, rng));
            acc = (k == 0) ? sel : b.add(acc, sel);
        }
        b.output(b.add(acc, query));
        pir = b.build();
    }
    compiler::CompilerOptions copts;
    copts.hw = hw;
    for (uint32_t k = 0; k < kShards; ++k)
        copts.resident_inputs.push_back(k);
    auto compiled = std::make_shared<const compiler::CompiledCircuit>(
        compiler::compileCircuit(params, pir, copts));

    fv::Evaluator evaluator(params);
    for (Tenant &t : tenants) {
        for (size_t k = 0; k < kShards; ++k) {
            t.shards.push_back(
                t.encryptor->encrypt(randomPlain(*params, rng)));
            t.handles.push_back(svc->pinInput(t.id, t.shards.back()));
        }
        for (size_t i = 0; i < 8; ++i)
            t.pool.push_back(
                t.encryptor->encrypt(randomPlain(*params, rng)));
    }

    const size_t kRequests = 10000;
    // ~85% adds/mults, ~15% resident PIR; exponential inter-arrival
    // times sized against the modeled per-request cost for a
    // loaded-but-stable pool (override: serving_load <microseconds>).
    const double inter_arrival_us =
        argc > 1 ? std::atof(argv[1]) : 180.0;
    double arrival = 0.0;
    size_t spot_checks = 0;
    size_t mismatches = 0;

    struct PendingOp
    {
        size_t tenant;
        std::future<fv::Ciphertext> future;
        fv::Ciphertext expected; // only for spot-checked requests
        bool checked = false;
    };
    struct PendingPir
    {
        size_t tenant;
        std::future<std::vector<fv::Ciphertext>> future;
        fv::Ciphertext query;
        bool checked = false;
    };
    std::vector<PendingOp> ops;
    std::vector<PendingPir> pirs;
    ops.reserve(kRequests);

    for (size_t i = 0; i < kRequests; ++i) {
        arrival +=
            -std::log(1.0 - rng.uniformDouble()) * inter_arrival_us;
        // Offered share matches each tenant's dequeue weight (1:1:2) —
        // a tenant served faster than it submits would let workers'
        // modeled clocks run ahead of the other tenants' arrivals.
        const uint64_t pick = rng.uniformBelow(4);
        const size_t t = pick < 2 ? pick : 2;
        Tenant &tn = tenants[t];
        const uint64_t kind = rng.uniformBelow(100);
        const bool check = i % 97 == 0; // spot-check ~1% of requests
        if (kind < 85) {
            const fv::Ciphertext &a =
                tn.pool[rng.uniformBelow(tn.pool.size())];
            const fv::Ciphertext &b =
                tn.pool[rng.uniformBelow(tn.pool.size())];
            const bool mult = kind >= 70;
            PendingOp p;
            p.tenant = t;
            p.checked = check;
            if (check) {
                p.expected = mult ? evaluator.multiply(a, b, tn.rlk)
                                  : evaluator.add(a, b);
                ++spot_checks;
            }
            p.future = svc->submit(tn.id,
                                   mult ? service::Op::kMult
                                        : service::Op::kAdd,
                                   a, b, arrival);
            ops.push_back(std::move(p));
        } else {
            PendingPir p;
            p.tenant = t;
            p.checked = check;
            p.query = tn.pool[rng.uniformBelow(tn.pool.size())];
            if (check)
                ++spot_checks;
            p.future = svc->submitCompiledResident(
                tn.id, compiled, tn.handles, {p.query}, arrival);
            pirs.push_back(std::move(p));
        }
    }

    for (PendingOp &p : ops) {
        fv::Ciphertext got = p.future.get();
        if (p.checked && !(got == p.expected))
            ++mismatches;
    }
    for (PendingPir &p : pirs) {
        std::vector<fv::Ciphertext> got = p.future.get();
        if (!p.checked)
            continue;
        Tenant &tn = tenants[p.tenant];
        std::vector<fv::Ciphertext> full = tn.shards;
        full.push_back(p.query);
        const std::vector<fv::Ciphertext> expected =
            compiler::evaluateCircuit(evaluator, &tn.rlk,
                                      compiled->circuit, full);
        if (!(got == expected))
            ++mismatches;
    }
    svc->drain();

    const service::ServiceStats stats = svc->stats();
    const service::LatencySnapshot lat = svc->latency();
    std::printf("open-loop load: %zu requests across %zu tenants\n",
                kRequests, kTenants);
    std::printf("  completed: %llu ops + %llu circuits "
                "(%llu warm / %llu cold resident runs)\n",
                static_cast<unsigned long long>(stats.ops_completed),
                static_cast<unsigned long long>(stats.circuits_completed),
                static_cast<unsigned long long>(stats.resident_warm_runs),
                static_cast<unsigned long long>(stats.resident_cold_runs));
    std::printf("  key swaps: %llu, batches: %llu\n",
                static_cast<unsigned long long>(stats.key_swaps),
                static_cast<unsigned long long>(stats.batches));
    std::printf("  modeled latency: p50 %.0f us, p99 %.0f us, "
                "mean %.0f us (%zu samples)\n",
                lat.p50_us, lat.p99_us, lat.mean_us, lat.samples);
    std::printf("  spot checks: %zu, mismatches: %zu\n", spot_checks,
                mismatches);

    if (mismatches != 0 || stats.ops_failed != 0 ||
        stats.ops_rejected != 0) {
        std::fprintf(stderr, "FAIL: serving results diverged\n");
        return 1;
    }
    if (stats.resident_warm_runs == 0) {
        std::fprintf(stderr, "FAIL: resident cache never ran warm\n");
        return 1;
    }
    std::printf("\nserving load demo OK\n");
    return 0;
}
