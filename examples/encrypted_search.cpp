/**
 * @file
 * Encrypted table lookup (private information retrieval), one of the
 * depth-bounded applications the paper's parameter set targets
 * (Sec. III-A mentions encrypted search in a table of 2^16 entries).
 *
 * The client encrypts the bits of a query index; the server
 * homomorphically evaluates, for every table entry i, the equality
 * indicator prod_j (1 XOR q_j XOR i_j) — a balanced product tree of
 * multiplicative depth log2(bits) — multiplies each indicator by the
 * entry value, and sums. The client decrypts exactly table[index]
 * while the server learns nothing about the index.
 *
 * The demo uses an 8-entry table (3 index bits, depth 2) so it runs in
 * seconds at the paper's full parameter set; the machinery is identical
 * for 2^16 entries.
 */

#include <cstdio>
#include <vector>

#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/evaluator.h"
#include "fv/keygen.h"
#include "fv/params.h"

using namespace heat;

namespace {

/** Encrypt a single bit into the constant coefficient. */
fv::Ciphertext
encryptBit(fv::Encryptor &encryptor, uint64_t bit)
{
    fv::Plaintext p;
    p.coeffs = {bit & 1};
    return encryptor.encrypt(p);
}

} // namespace

int
main()
{
    // t = 2: boolean circuit evaluation, exactly the paper's binary
    // message configuration.
    auto params = fv::FvParams::paper(/*t=*/2);
    fv::KeyGenerator keygen(params, 4242);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 1);
    fv::Decryptor decryptor(params, sk);
    fv::Evaluator evaluator(params);

    const int index_bits = 3;
    const size_t table_size = size_t(1) << index_bits;
    // The server's public table: entry i holds a small bit pattern.
    std::vector<uint64_t> table = {0b101, 0b111, 0b001, 0b010,
                                   0b110, 0b011, 0b100, 0b000};

    const uint64_t secret_index = 5;
    std::printf("Client queries index %llu of a %zu-entry table "
                "(server must not learn it).\n",
                static_cast<unsigned long long>(secret_index), table_size);

    // Client: encrypt the index bits.
    std::vector<fv::Ciphertext> query;
    for (int j = 0; j < index_bits; ++j)
        query.push_back(encryptBit(encryptor, (secret_index >> j) & 1));

    // Server: for each entry, build the equality indicator and weight it
    // by the entry value (as a plaintext polynomial).
    fv::Ciphertext result;
    bool first = true;
    for (size_t i = 0; i < table_size; ++i) {
        // match_j = 1 XOR q_j XOR i_j  (over t = 2: addPlain of constants)
        std::vector<fv::Ciphertext> match;
        for (int j = 0; j < index_bits; ++j) {
            fv::Ciphertext m = query[j];
            const uint64_t bit = (i >> j) & 1;
            fv::Plaintext c;
            c.coeffs = {1 ^ bit};
            evaluator.addPlainInPlace(m, c); // m = q_j + (1 + i_j) mod 2
            match.push_back(std::move(m));
        }
        // Balanced product tree: depth ceil(log2(index_bits)).
        while (match.size() > 1) {
            std::vector<fv::Ciphertext> next;
            for (size_t k = 0; k + 1 < match.size(); k += 2)
                next.push_back(
                    evaluator.multiply(match[k], match[k + 1], rlk));
            if (match.size() % 2)
                next.push_back(std::move(match.back()));
            match = std::move(next);
        }

        // Weight by the entry value: value bits in the low coefficients.
        fv::Plaintext value;
        for (int bit = 0; bit < 3; ++bit)
            value.coeffs.push_back((table[i] >> bit) & 1);
        fv::Ciphertext contribution =
            evaluator.multiplyPlain(match[0], value);

        if (first) {
            result = contribution;
            first = false;
        } else {
            evaluator.addInPlace(result, contribution);
        }
    }

    // Client: decrypt and reassemble the value bits.
    fv::Plaintext plain = decryptor.decrypt(result);
    uint64_t value = 0;
    for (size_t bit = 0; bit < 3 && bit < plain.coeffs.size(); ++bit)
        value |= (plain.coeffs[bit] & 1) << bit;

    std::printf("retrieved value: 0b%llu%llu%llu (expected 0b%llu%llu%llu)"
                "\n",
                static_cast<unsigned long long>((value >> 2) & 1),
                static_cast<unsigned long long>((value >> 1) & 1),
                static_cast<unsigned long long>(value & 1),
                static_cast<unsigned long long>(
                    (table[secret_index] >> 2) & 1),
                static_cast<unsigned long long>(
                    (table[secret_index] >> 1) & 1),
                static_cast<unsigned long long>(table[secret_index] & 1));
    std::printf("noise budget after depth-%d selection: %.0f bits\n",
                2, decryptor.invariantNoiseBudget(result));
    std::printf("%s\n", value == table[secret_index]
                            ? "PIR lookup correct."
                            : "MISMATCH - lookup failed!");
    return value == table[secret_index] ? 0 : 1;
}
