/**
 * @file
 * Encrypted table lookup (private information retrieval) over batched
 * slots — the paper's encrypted-search application (Sec. III-A, a
 * table of 2^16 entries) expressed as a rotation-based inner product
 * on the heat::linalg datapath.
 *
 * The whole public table lives in the n batching slots of ONE
 * plaintext; the client sends ONE ciphertext holding the encrypted
 * one-hot indicator of its secret index. The server multiplies
 * slot-wise and folds with rotate-and-add (log2(n) automorphisms on
 * the coprocessor's kAutomorph datapath): every slot of the single
 * result ciphertext holds table[index], and the server never sees
 * which slot selected it.
 *
 * Contrast with the old per-element scan (one equality-indicator
 * product tree per table entry): the batched formulation needs one
 * ciphertext, one plaintext multiply and log-many rotations for the
 * whole table, instead of thousands of ciphertext multiplications.
 * The demo prints the modeled coprocessor cost of the fused compiled
 * circuit against the same circuit submitted op-by-op.
 */

#include <cstdio>
#include <vector>

#include "compiler/circuit.h"
#include "compiler/compiler.h"
#include "fv/batch_encoder.h"
#include "fv/decryptor.h"
#include "fv/encryptor.h"
#include "fv/keygen.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "linalg/linalg.h"

using namespace heat;

int
main()
{
    // t = 65537 (prime, 1 mod 2n): n slots of 16-bit table entries.
    auto params = fv::FvParams::paper(/*t=*/65537);
    fv::KeyGenerator keygen(params, 4242);
    fv::SecretKey sk = keygen.generateSecretKey();
    fv::PublicKey pk = keygen.generatePublicKey(sk);
    fv::RelinKeys rlk = keygen.generateRelinKeys(sk);
    fv::Encryptor encryptor(params, pk, 1);
    fv::Decryptor decryptor(params, sk);
    fv::BatchEncoder encoder(params);

    const size_t table_size = encoder.slotCount();
    std::vector<uint64_t> table(table_size);
    for (size_t i = 0; i < table_size; ++i)
        table[i] = (0x5DEECE66DULL * i + 11) % 65537;

    const size_t secret_index = 2718;
    std::printf("Client queries index %zu of a %zu-entry table "
                "(server must not learn it).\n",
                secret_index, table_size);

    // Client: one ciphertext, the encrypted one-hot indicator.
    std::vector<uint64_t> one_hot(table_size, 0);
    one_hot[secret_index] = 1;
    fv::Ciphertext query =
        encryptor.encrypt(encoder.encode(one_hot));

    // Server: selection = rotateSum(query * table) — a rotation-based
    // inner product with the plaintext table as the weight vector.
    compiler::CircuitBuilder b;
    b.output(b.rotateSum(b.multPlain(b.input(), encoder.encode(table))));
    const compiler::Circuit circuit = b.build();

    const fv::GaloisKeys gkeys = keygen.generateGaloisKeys(
        sk,
        compiler::requiredGaloisElements(circuit, params->degree()));

    compiler::CompilerOptions options;
    const compiler::CompiledCircuit compiled =
        compiler::compileCircuit(params, circuit, options);
    hw::Coprocessor cp(params, options.hw, &rlk, &gkeys);

    std::vector<fv::Ciphertext> inputs = {query};
    compiler::CircuitRunStats fused_stats;
    const std::vector<fv::Ciphertext> result =
        compiler::runCompiledCircuit(cp, compiled, inputs,
                                     &fused_stats);

    compiler::CircuitRunStats op_stats;
    const std::vector<fv::Ciphertext> op_by_op =
        compiler::runCircuitOpByOp(cp, params, circuit, inputs,
                                   &op_stats);

    // Client: any slot of the result decrypts to table[index].
    const uint64_t value =
        encoder.decode(decryptor.decrypt(result[0]))[0];

    const double fused_us = fused_stats.modeledUs(options.hw);
    const double op_us = op_stats.modeledUs(options.hw);
    std::printf("retrieved value: %llu (expected %llu)\n",
                static_cast<unsigned long long>(value),
                static_cast<unsigned long long>(table[secret_index]));
    std::printf("modeled fused lookup:    %8.1f us "
                "(%zu instructions, %llu Arm dispatches)\n",
                fused_us, compiled.instructionCount(),
                static_cast<unsigned long long>(
                    fused_stats.dispatches));
    std::printf("modeled op-by-op lookup: %8.1f us "
                "(%llu Arm dispatches)\n",
                op_us,
                static_cast<unsigned long long>(op_stats.dispatches));
    std::printf("fusion advantage: %.2fx\n", op_us / fused_us);
    std::printf("noise budget after lookup: %.0f bits\n",
                decryptor.invariantNoiseBudget(result[0]));

    const bool ok = value == table[secret_index] &&
                    result == op_by_op;
    std::printf("%s\n", ok ? "PIR lookup correct."
                           : "MISMATCH - lookup failed!");
    return ok ? 0 : 1;
}
