#include "common/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

#include "common/panic.h"

namespace heat {

namespace {

std::atomic<unsigned> g_threads{1};

} // namespace

void
setThreadCount(unsigned count)
{
    fatalIf(count == 0, "thread count must be at least 1");
    g_threads.store(count);
}

unsigned
threadCount()
{
    return g_threads.load();
}

void
parallelFor(size_t count, const std::function<void(size_t)> &fn)
{
    const unsigned threads =
        static_cast<unsigned>(std::min<size_t>(g_threads.load(), count));
    if (threads <= 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::vector<std::thread> workers;
    workers.reserve(threads);
    const size_t chunk = (count + threads - 1) / threads;
    for (unsigned w = 0; w < threads; ++w) {
        const size_t begin = static_cast<size_t>(w) * chunk;
        const size_t end = std::min(count, begin + chunk);
        if (begin >= end)
            break;
        workers.emplace_back([begin, end, &fn] {
            for (size_t i = begin; i < end; ++i)
                fn(i);
        });
    }
    for (auto &t : workers)
        t.join();
}

} // namespace heat
