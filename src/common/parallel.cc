#include "common/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/panic.h"

namespace heat {

namespace {

std::atomic<unsigned> g_threads{1};

} // namespace

void
setThreadCount(unsigned count)
{
    fatalIf(count == 0, "thread count must be at least 1");
    g_threads.store(count);
}

unsigned
threadCount()
{
    return g_threads.load();
}

void
parallelFor(size_t count, const std::function<void(size_t)> &fn)
{
    const unsigned threads =
        static_cast<unsigned>(std::min<size_t>(g_threads.load(), count));
    if (threads <= 1) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // A body that throws on a worker thread would std::terminate the
    // process; capture the first exception instead and rethrow it on
    // the caller once every worker has joined. Later chunks bail out
    // early — indices after a failure are allowed to go unvisited,
    // exactly as in the sequential loop above.
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mu;

    std::vector<std::thread> workers;
    workers.reserve(threads);
    const size_t chunk = (count + threads - 1) / threads;
    for (unsigned w = 0; w < threads; ++w) {
        const size_t begin = static_cast<size_t>(w) * chunk;
        const size_t end = std::min(count, begin + chunk);
        if (begin >= end)
            break;
        workers.emplace_back(
            [begin, end, &fn, &failed, &first_error, &error_mu] {
                try {
                    for (size_t i = begin; i < end; ++i) {
                        if (failed.load(std::memory_order_relaxed))
                            return;
                        fn(i);
                    }
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mu);
                    if (!failed.exchange(true))
                        first_error = std::current_exception();
                }
            });
    }
    for (auto &t : workers)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

void
parallelFor(size_t count, size_t grain,
            const std::function<void(size_t, size_t)> &fn)
{
    if (count == 0)
        return;
    fatalIf(grain == 0, "parallelFor grain must be at least 1");
    const unsigned threads = g_threads.load();
    if (threads <= 1 || count <= grain) {
        fn(0, count);
        return;
    }
    // Split into ranges of >= grain indices, oversubscribing threads
    // 4x so uneven ranges still balance; the per-index overload does
    // the thread management and error capture.
    const size_t max_chunks = static_cast<size_t>(threads) * 4;
    size_t chunks = (count + grain - 1) / grain;
    if (chunks > max_chunks)
        chunks = max_chunks;
    const size_t step = (count + chunks - 1) / chunks;
    parallelFor(chunks, [count, step, &fn](size_t c) {
        const size_t begin = c * step;
        const size_t end = std::min(count, begin + step);
        if (begin < end)
            fn(begin, end);
    });
}

} // namespace heat
