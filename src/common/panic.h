/**
 * @file
 * Error-reporting helpers in the gem5 spirit: panic() for internal
 * invariant violations (simulator bugs), fatal() for user errors
 * (bad configuration, unsupported parameters).
 */

#ifndef HEAT_COMMON_PANIC_H
#define HEAT_COMMON_PANIC_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace heat {

/** Exception thrown on unrecoverable internal errors (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown on user/configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

inline void
appendParts(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendParts(std::ostringstream &oss, const T &part, const Rest &...rest)
{
    oss << part;
    appendParts(oss, rest...);
}

} // namespace detail

/**
 * Abort with a message describing an internal invariant violation.
 * Use for conditions that should never happen regardless of user input.
 */
template <typename... Parts>
[[noreturn]] void
panic(const Parts &...parts)
{
    std::ostringstream oss;
    oss << "panic: ";
    detail::appendParts(oss, parts...);
    throw PanicError(oss.str());
}

/**
 * Abort with a message describing a user error (invalid parameters,
 * unsupported configuration).
 */
template <typename... Parts>
[[noreturn]] void
fatal(const Parts &...parts)
{
    std::ostringstream oss;
    oss << "fatal: ";
    detail::appendParts(oss, parts...);
    throw FatalError(oss.str());
}

/** Check an internal invariant; panic with a message if it fails. */
template <typename... Parts>
void
panicIf(bool condition, const Parts &...parts)
{
    if (condition)
        panic(parts...);
}

/** Check a user-facing requirement; fatal with a message if it fails. */
template <typename... Parts>
void
fatalIf(bool condition, const Parts &...parts)
{
    if (condition)
        fatal(parts...);
}

} // namespace heat

#endif // HEAT_COMMON_PANIC_H
