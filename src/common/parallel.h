/**
 * @file
 * Minimal data-parallel helper for the software library.
 *
 * The paper's CPU comparison points include multi-threaded baselines
 * (Badawi et al. use 26 threads); this helper lets the evaluator
 * parallelize across RNS residues and coefficient ranges. The global
 * thread count defaults to 1 (fully deterministic, zero overhead); it
 * is a process-wide knob intended to be set once at startup.
 */

#ifndef HEAT_COMMON_PARALLEL_H
#define HEAT_COMMON_PARALLEL_H

#include <cstddef>
#include <functional>

namespace heat {

/** Set the worker-thread count used by parallelFor (>= 1). */
void setThreadCount(unsigned count);

/** @return the current worker-thread count. */
unsigned threadCount();

/**
 * Run fn(i) for every i in [0, count). With threadCount() == 1 this is
 * a plain loop; otherwise indices are partitioned into contiguous
 * chunks across worker threads (fn must be safe to run concurrently
 * for distinct i). If fn throws, the first exception is rethrown on
 * the calling thread after all workers join; indices after the failure
 * may go unvisited.
 */
void parallelFor(size_t count, const std::function<void(size_t)> &fn);

/**
 * Chunked variant: run fn(begin, end) over half-open ranges that
 * partition [0, count), each at least @p grain indices long (except
 * possibly the last). The body pays one dispatch per range instead of
 * one std::function call per index, so tight n-coefficient loops keep
 * their vectorized inner bodies. With threadCount() == 1 the whole
 * range arrives in a single fn(0, count) call. Exception semantics
 * match the per-index overload.
 */
void parallelFor(size_t count, size_t grain,
                 const std::function<void(size_t, size_t)> &fn);

} // namespace heat

#endif // HEAT_COMMON_PARALLEL_H
