/**
 * @file
 * Bit-manipulation helpers shared by the arithmetic and hardware-model
 * layers: power-of-two predicates, bit reversal, wide multiplication.
 */

#ifndef HEAT_COMMON_BIT_UTIL_H
#define HEAT_COMMON_BIT_UTIL_H

// std::countl_zero below produces a long, confusing error cascade when
// the compiler runs in an older language mode; fail with one clear
// message instead.
#if __cplusplus < 202002L &&                                               \
    !(defined(_MSVC_LANG) && _MSVC_LANG >= 202002L)
#error "heat requires C++20 (std::countl_zero in <bit>): compile with -std=c++20 or newer"
#endif

#include <version>
#ifndef __cpp_lib_bitops
#error "heat requires a standard library with <bit> bit operations (__cpp_lib_bitops)"
#endif

#include <bit>
#include <cstdint>

namespace heat {

/** Unsigned 128-bit integer used for 64x64 products. */
using uint128_t = unsigned __int128;

/** Signed 128-bit integer. */
using int128_t = __int128;

/** @return true iff @p x is a power of two (zero returns false). */
constexpr bool
isPowerOfTwo(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** @return floor(log2(x)); @p x must be nonzero. */
constexpr int
log2Floor(uint64_t x)
{
    return 63 - std::countl_zero(x);
}

/** @return number of significant bits of @p x (0 for x == 0). */
constexpr int
bitLength(uint64_t x)
{
    return x == 0 ? 0 : 64 - std::countl_zero(x);
}

/** Reverse the lowest @p bits bits of @p x. */
constexpr uint64_t
reverseBits(uint64_t x, int bits)
{
    uint64_t r = 0;
    for (int i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

/** @return high 64 bits of the 128-bit product a*b. */
constexpr uint64_t
mulHigh64(uint64_t a, uint64_t b)
{
    return static_cast<uint64_t>((uint128_t(a) * b) >> 64);
}

/** @return full 128-bit product a*b. */
constexpr uint128_t
mulWide64(uint64_t a, uint64_t b)
{
    return uint128_t(a) * b;
}

} // namespace heat

#endif // HEAT_COMMON_BIT_UTIL_H
