/**
 * @file
 * Deterministic pseudo-random number generation used across the library.
 *
 * Cryptographic deployments would use a CSPRNG; for a reproduction whose
 * goal is performance/architecture fidelity, a fast deterministic
 * xoshiro256** generator keeps every experiment repeatable.
 */

#ifndef HEAT_COMMON_RANDOM_H
#define HEAT_COMMON_RANDOM_H

#include <array>
#include <cstdint>

namespace heat {

/**
 * xoshiro256** 1.0 by Blackman and Vigna (public domain reference
 * implementation re-expressed here). Fast, 256-bit state, passes BigCrush.
 */
class Xoshiro256
{
  public:
    /** Seed the generator; a splitmix64 ladder expands the 64-bit seed. */
    explicit Xoshiro256(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** @return next 64 uniformly random bits. */
    uint64_t next();

    /** @return uniformly random value in [0, bound) (bound > 0). */
    uint64_t uniformBelow(uint64_t bound);

    /** @return uniformly random double in [0, 1). */
    double uniformDouble();

  private:
    std::array<uint64_t, 4> state_;
};

} // namespace heat

#endif // HEAT_COMMON_RANDOM_H
