#include "common/random.h"

#include "common/panic.h"

namespace heat {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Xoshiro256::Xoshiro256(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

uint64_t
Xoshiro256::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

uint64_t
Xoshiro256::uniformBelow(uint64_t bound)
{
    panicIf(bound == 0, "uniformBelow(0)");
    // Rejection sampling to remove modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

double
Xoshiro256::uniformDouble()
{
    // 53 top bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace heat
