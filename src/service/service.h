/**
 * @file
 * Asynchronous multi-coprocessor execution service — the serving layer
 * the ROADMAP's production system needs on top of the paper's single
 * accelerator (Sec. V): a request queue, a pool of worker threads each
 * owning one simulated coprocessor, and a futures-based submit API.
 *
 * Two submission granularities coexist: single operations
 * (submit(Op, a, b) — one host round trip each) and whole circuits
 * (submitCircuit — compiled once into fused programs whose
 * intermediates stay coprocessor-resident; see compiler/compiler.h).
 *
 * Workers drain the queue in batches (up to ServiceConfig::max_batch
 * independent operations per dequeue) and execute the batch as
 * back-to-back programs on their coprocessor. Functionally every
 * operation is bit-exact against fv::Evaluator's HPS path (the
 * differential test suite pins this); for timing, the service keeps a
 * modeled clock per worker in which the per-instruction Arm dispatch
 * overhead of all but the first program of a batch overlaps with
 * compute — the amortisation a real instruction queue in front of the
 * lock-step RPAUs provides (cf. Medha's macro-instruction pipeline).
 *
 * Shutdown semantics: shutdown() (also run by the destructor) stops
 * intake, lets in-flight batches finish, joins the workers, and fails
 * every still-queued job's future with ServiceStoppedError — submitted
 * work never hangs.
 */

#ifndef HEAT_SERVICE_SERVICE_H
#define HEAT_SERVICE_SERVICE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/panic.h"
#include "compiler/compiler.h"
#include "fv/keys.h"
#include "fv/params.h"
#include "hw/config.h"
#include "hw/program_builder.h"

namespace heat::service {

/** Homomorphic operations the service executes. */
enum class Op : uint8_t
{
    kAdd, ///< FV.Add
    kMult ///< FV.Mult with relinearization
};

/** Tunables of the execution service. */
struct ServiceConfig
{
    /** Worker threads, one simulated coprocessor each. */
    size_t workers = 2;
    /** Maximum independent operations executed per dequeue. */
    size_t max_batch = 8;
    /** Per-coprocessor hardware configuration. */
    hw::HwConfig hw = hw::HwConfig::paper();
    /**
     * Start with the workers idle: submissions queue up but nothing
     * executes until start() is called. Lets a deployment (or a test)
     * pre-fill the queue so the very first dequeues run at full batch
     * width.
     */
    bool start_paused = false;
};

/** Delivered through the futures of jobs cancelled by shutdown(). */
class ServiceStoppedError : public std::runtime_error
{
  public:
    explicit ServiceStoppedError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Aggregate execution statistics (monotonic over the service life). */
struct ServiceStats
{
    uint64_t ops_completed = 0;
    /** Jobs whose execution threw; their futures carry the error. */
    uint64_t ops_failed = 0;
    /** Jobs still queued when shutdown() ran; their futures fail. */
    uint64_t ops_rejected = 0;
    uint64_t batches = 0;
    /** Fused circuit jobs completed. */
    uint64_t circuits_completed = 0;
    /** Circuit nodes executed inside completed circuit jobs. */
    uint64_t circuit_nodes_completed = 0;
    /** Summed coprocessor compute cycles (dispatch included). */
    hw::Cycle fpga_cycles = 0;
    /** Summed relinearization-key DMA time. */
    double dma_us = 0.0;
    /** Modeled Arm-side operand/result transfer time. */
    double host_us = 0.0;
    /** Modeled makespan: the busiest worker's clock (us). */
    double makespan_us = 0.0;

    /** Modeled service throughput (ops/s of the simulated hardware). */
    double
    modeledOpsPerSecond() const
    {
        return makespan_us > 0.0
                   ? static_cast<double>(ops_completed) / makespan_us * 1e6
                   : 0.0;
    }
};

/**
 * The execution service. Construction spawns the worker pool; each
 * worker builds its own hw::Coprocessor plus the shared operation
 * plans (hw::OpPlan values — identical across workers because memory-
 * file allocation is deterministic), so submission never blocks on
 * hardware setup.
 *
 * Thread safety: submit(), drain(), shutdown() and stats() may be
 * called concurrently from any number of client threads.
 */
class ExecutionService
{
  public:
    /**
     * @param params FV parameter set (shared, immutable).
     * @param rlk relinearization keys (kRnsDigits kind — what the HPS
     *        coprocessor's key-load schedule consumes).
     * @param config service tunables.
     */
    ExecutionService(std::shared_ptr<const fv::FvParams> params,
                     fv::RelinKeys rlk, ServiceConfig config = {});

    /**
     * As above, plus Galois key-switching keys resident in every
     * worker's DDR — required before any circuit with rotation nodes
     * can be submitted (submitCompiled rejects circuits whose Galois
     * elements the service does not hold).
     */
    ExecutionService(std::shared_ptr<const fv::FvParams> params,
                     fv::RelinKeys rlk, fv::GaloisKeys gkeys,
                     ServiceConfig config = {});

    /** Shuts down (failing queued jobs) and joins the workers. */
    ~ExecutionService();

    ExecutionService(const ExecutionService &) = delete;
    ExecutionService &operator=(const ExecutionService &) = delete;

    /**
     * Enqueue one operation on two size-2 ciphertexts. Shape errors
     * (wrong element count, base, or degree) throw FatalError
     * synchronously; a stopped service throws ServiceStoppedError.
     *
     * @return future resolving to the result ciphertext.
     */
    std::future<fv::Ciphertext> submit(Op op, fv::Ciphertext a,
                                       fv::Ciphertext b);

    /**
     * Enqueue a whole circuit as one fused job: the circuit is
     * compiled immediately (malformed circuits and parameter-set
     * mismatches throw synchronously), then executes on one worker's
     * coprocessor as fused programs — inputs uploaded once, one Arm
     * dispatch per on-chip segment, only live outputs downloaded.
     * Results are bit-exact with fv::Evaluator run op-by-op.
     *
     * @return future resolving to the output ciphertexts, in the
     *         circuit's output order.
     */
    std::future<std::vector<fv::Ciphertext>> submitCircuit(
        const compiler::Circuit &circuit,
        std::vector<fv::Ciphertext> inputs);

    /**
     * Enqueue an already-compiled circuit (compile once with
     * compiler::compileCircuit, submit many times). The compiled
     * program must target this service's parameter set and hardware
     * configuration.
     */
    std::future<std::vector<fv::Ciphertext>> submitCompiled(
        std::shared_ptr<const compiler::CompiledCircuit> compiled,
        std::vector<fv::Ciphertext> inputs);

    /** Release the workers of a start_paused service. Idempotent. */
    void start();

    /** Block until the queue is empty and no batch is in flight. */
    void drain();

    /**
     * Stop intake, finish in-flight batches, join the workers and fail
     * every still-queued future with ServiceStoppedError. Idempotent.
     */
    void shutdown();

    /** @return true once shutdown() has begun. */
    bool stopped() const;

    /** @return configured worker count. */
    size_t workerCount() const { return config_.workers; }

    /** @return jobs currently queued (excludes in-flight batches). */
    size_t queueDepth() const;

    /** @return a snapshot of the aggregate statistics. */
    ServiceStats stats() const;

    /** @return the service configuration. */
    const ServiceConfig &config() const { return config_; }

  private:
    struct Job
    {
        /** Single-op job (circuit == nullptr) or fused circuit job. */
        Op op = Op::kAdd;
        fv::Ciphertext a;
        fv::Ciphertext b;
        std::promise<fv::Ciphertext> promise;

        std::shared_ptr<const compiler::CompiledCircuit> circuit;
        std::vector<fv::Ciphertext> circuit_inputs;
        std::promise<std::vector<fv::Ciphertext>> circuit_promise;

        bool isCircuit() const { return circuit != nullptr; }

        /** Batch ordering key: group per-op kinds, circuits last. */
        int
        sortKey() const
        {
            return isCircuit() ? 2 : (op == Op::kAdd ? 0 : 1);
        }

        /** Fail this job's pending future with @p error. */
        void
        fail(const std::exception_ptr &error)
        {
            if (isCircuit())
                circuit_promise.set_exception(error);
            else
                promise.set_exception(error);
        }
    };

    std::future<std::vector<fv::Ciphertext>> enqueueCircuit(Job job);
    void workerLoop(size_t worker_index);
    void validateOperand(const fv::Ciphertext &ct) const;

    std::shared_ptr<const fv::FvParams> params_;
    fv::RelinKeys rlk_;
    fv::GaloisKeys gkeys_;
    ServiceConfig config_;
    /** Prototype plans, built once; workers replay their allocation. */
    hw::OpPlan add_plan_;
    hw::OpPlan mult_plan_;

    mutable std::mutex mu_;
    /** Serializes concurrent shutdown() calls (thread join phase). */
    std::mutex shutdown_mu_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    std::deque<Job> queue_;
    size_t in_flight_ = 0;
    bool started_ = true;
    bool stopping_ = false;
    ServiceStats stats_;
    /** Modeled busy time per worker (us). */
    std::vector<double> worker_clock_us_;

    /** Last member: threads must not outlive anything they touch. */
    std::vector<std::thread> threads_;
};

} // namespace heat::service

#endif // HEAT_SERVICE_SERVICE_H
