/**
 * @file
 * Asynchronous multi-coprocessor execution service — the serving layer
 * the ROADMAP's production system needs on top of the paper's single
 * accelerator (Sec. V): a request queue, a pool of worker threads each
 * owning one simulated coprocessor, and a futures-based submit API.
 *
 * Two submission granularities coexist: single operations
 * (submit(Op, a, b) — one host round trip each) and whole circuits
 * (submitCircuit — compiled once into fused programs whose
 * intermediates stay coprocessor-resident; see compiler/compiler.h).
 *
 * The service is multi-tenant: every submission runs under a tenant
 * session carrying its own relinearization and Galois key sets
 * (registerTenant). Workers re-point their coprocessor's DDR-resident
 * key pointers at the submitting session's keys before executing its
 * jobs (hw::Coprocessor::attachKeys — the kKeyLoad selector streams
 * from whatever is attached), submit-time validation is per-session,
 * and each tenant has its own FIFO queue drained by arrival-aware
 * weighted round-robin (earliest head job first, up to `weight` jobs
 * per turn) so one chatty tenant cannot starve the rest. Queues are
 * bounded (ServiceConfig::max_queue_per_tenant): submissions beyond
 * the bound shed synchronously with ServiceOverloadedError.
 *
 * Admission control: the compiler's noise pass runs (or is reused) at
 * submit time. Under ServiceConfig::admission == NoiseCheck::kReject a
 * circuit whose predicted invariant-noise budget dies before its
 * outputs is rejected synchronously with AdmissionRejectedError naming
 * the first exhausted node — after one re-leveling attempt
 * (auto_mod_switch) when admission_relevel is set and the submission
 * came through submitCircuit.
 *
 * Resident ciphertext cache: hot operands (PIR databases, matvec
 * weights) can be pinned per tenant (pinInput) and referenced by
 * handle in submitCompiledResident. The first execution on a worker
 * uploads them into the pinned memory-file prefix
 * (hw::MemoryFile::setPinnedRecords); repeat executions of the same
 * (tenant, circuit, handles) on that worker skip the operand upload
 * entirely (compiler::runCompiledCircuitWarm). Results are bit-exact
 * either way.
 *
 * Workers drain in batches (up to ServiceConfig::max_batch per
 * dequeue) and execute the batch as back-to-back programs.
 * Functionally every operation is bit-exact against fv::Evaluator's
 * HPS path; for timing, the service keeps a modeled clock per worker
 * in which the per-instruction Arm dispatch overhead of all but the
 * first program of a batch overlaps with compute. Jobs may carry a
 * modeled arrival timestamp (open-loop load generation): a worker
 * starts such a job at max(worker clock, arrival) and the recorded
 * latency is completion minus arrival — latency() reports the
 * distribution (p50/p99).
 *
 * Shutdown semantics: shutdown() (also run by the destructor) stops
 * intake, lets in-flight batches finish, joins the workers, and fails
 * every still-queued job's future with ServiceStoppedError — submitted
 * work never hangs.
 */

#ifndef HEAT_SERVICE_SERVICE_H
#define HEAT_SERVICE_SERVICE_H

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/panic.h"
#include "compiler/compiler.h"
#include "fv/keys.h"
#include "fv/params.h"
#include "hw/config.h"
#include "hw/isa.h"
#include "hw/program_builder.h"
#include "obs/metrics.h"

namespace heat::service {

/** Homomorphic operations the service executes. */
enum class Op : uint8_t
{
    kAdd, ///< FV.Add
    kMult ///< FV.Mult with relinearization
};

/** Tenant session identifier (returned by registerTenant). */
using TenantId = uint32_t;

/** The session the key-set constructor arguments register. */
constexpr TenantId kDefaultTenant = 0;

/** Handle to a tenant's pinned (coprocessor-cacheable) ciphertext. */
using PinnedHandle = uint32_t;

/** Tunables of the execution service. */
struct ServiceConfig
{
    /** Worker threads, one simulated coprocessor each. */
    size_t workers = 2;
    /** Maximum independent operations executed per dequeue. */
    size_t max_batch = 8;
    /** Per-coprocessor hardware configuration. */
    hw::HwConfig hw = hw::HwConfig::paper();
    /**
     * Start with the workers idle: submissions queue up but nothing
     * executes until start() is called. Lets a deployment (or a test)
     * pre-fill the queue so the very first dequeues run at full batch
     * width.
     */
    bool start_paused = false;
    /**
     * Compiler options used by submitCircuit (the hw field is
     * overridden with this config's hw so compiled programs always
     * target the workers' slot capacity). Deployments tune hoisting,
     * auto_mod_switch and the compile-time noise check here.
     */
    compiler::CompilerOptions compiler;
    /**
     * Noise-aware admission: what to do with a submission whose
     * compiled circuit predicts an exhausted noise budget before its
     * outputs. kWarn (default) prints the node-level diagnostic and
     * accepts; kReject throws AdmissionRejectedError synchronously;
     * kOff admits silently.
     */
    compiler::NoiseCheck admission = compiler::NoiseCheck::kWarn;
    /**
     * Under admission == kReject, submitCircuit retries a failing
     * compilation with auto_mod_switch (re-leveling) before rejecting
     * — the level assignment often rescues depth-heavy circuits at no
     * accuracy cost. Pre-compiled submissions are never rewritten.
     */
    bool admission_relevel = true;
    /**
     * Per-tenant queue bound; 0 = unbounded. A submission that would
     * push a tenant's queue beyond the bound is shed synchronously
     * with ServiceOverloadedError (counted in ServiceStats::ops_shed).
     */
    size_t max_queue_per_tenant = 0;
    /**
     * Static verification at submission admission (verify/verify.h):
     * every compiled circuit entering through submitCircuit /
     * submitCompiled / submitCompiledResident — including the warm
     * resident path's pinned-prefix suffix, which the verifier checks
     * as part of the whole program — is proven against the memory-file,
     * layout, level and key invariants before any worker executes it.
     * kWarn prints the diagnostic table and admits; kReject throws
     * AdmissionRejectedError synchronously. Verification verdicts are
     * cached per compiled-circuit object, so the compile-once
     * submit-many pattern (and every warm resident resubmit) pays the
     * pass once.
     */
    compiler::VerifyCheck verify = compiler::defaultVerifyCheck();
};

/** Delivered through the futures of jobs cancelled by shutdown(). */
class ServiceStoppedError : public std::runtime_error
{
  public:
    explicit ServiceStoppedError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Thrown synchronously when a tenant's bounded queue is full. */
class ServiceOverloadedError : public std::runtime_error
{
  public:
    explicit ServiceOverloadedError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Thrown synchronously by noise-aware admission control (see
 *  ServiceConfig::admission) with the node-level diagnostic. */
class AdmissionRejectedError : public std::runtime_error
{
  public:
    explicit AdmissionRejectedError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Per-tenant slice of the aggregate statistics (see
 *  ServiceStats::tenants; indexed by TenantId). */
struct TenantStats
{
    std::string name;
    /** Jobs enqueued (single ops and circuits). */
    uint64_t arrivals = 0;
    /** Submissions shed by this tenant's bounded queue. */
    uint64_t shed = 0;
    /** Circuits rejected by noise-aware admission control. */
    uint64_t admission_rejected = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    /** Coprocessor cycles this tenant's jobs consumed, by unit. */
    std::array<hw::Cycle, hw::kUnitCount> unit_cycles{};

    hw::Cycle
    unitCycles(hw::Unit unit) const
    {
        return unit_cycles[static_cast<size_t>(unit)];
    }
};

/** Aggregate execution statistics (monotonic over the service life). */
struct ServiceStats
{
    uint64_t ops_completed = 0;
    /** Jobs whose execution threw; their futures carry the error. */
    uint64_t ops_failed = 0;
    /** Jobs still queued when shutdown() ran; their futures fail. */
    uint64_t ops_rejected = 0;
    /** Submissions shed by the bounded per-tenant queues. */
    uint64_t ops_shed = 0;
    /** Circuits rejected by noise-aware admission control. */
    uint64_t admission_rejected = 0;
    /** Circuits admitted only after the auto_mod_switch re-level. */
    uint64_t admission_releveled = 0;
    /** Static-verifier passes actually run at admission (cache misses;
     *  resubmissions of an already-verified circuit are not re-run). */
    uint64_t circuits_verified = 0;
    /** Submissions rejected by the static verifier (verify=kReject). */
    uint64_t verify_rejected = 0;
    uint64_t batches = 0;
    /** Fused circuit jobs completed. */
    uint64_t circuits_completed = 0;
    /** Circuit nodes executed inside completed circuit jobs. */
    uint64_t circuit_nodes_completed = 0;
    /** Times a worker re-pointed its coprocessor at another tenant's
     *  key sets. */
    uint64_t key_swaps = 0;
    /** Resident-cache cold runs (pinned operands uploaded). */
    uint64_t resident_cold_runs = 0;
    /** Resident-cache warm runs (pinned operand upload skipped). */
    uint64_t resident_warm_runs = 0;
    /** Summed coprocessor compute cycles (dispatch included). */
    hw::Cycle fpga_cycles = 0;
    /** fpga_cycles bucketed by functional unit (index by hw::Unit);
     *  sums exactly to fpga_cycles for the jobs that reported unit
     *  attribution. */
    std::array<hw::Cycle, hw::kUnitCount> unit_cycles{};
    /** Summed relinearization-key DMA time. */
    double dma_us = 0.0;
    /** Modeled Arm-side operand/result transfer time. */
    double host_us = 0.0;
    /** Modeled makespan: the busiest worker's clock (us). */
    double makespan_us = 0.0;
    /** Per-tenant slices, indexed by TenantId. */
    std::vector<TenantStats> tenants;

    hw::Cycle
    unitCycles(hw::Unit unit) const
    {
        return unit_cycles[static_cast<size_t>(unit)];
    }

    /** Modeled service throughput (ops/s of the simulated hardware). */
    double
    modeledOpsPerSecond() const
    {
        return makespan_us > 0.0
                   ? static_cast<double>(ops_completed) / makespan_us * 1e6
                   : 0.0;
    }
};

/** Modeled per-job latency distribution (see latency()). Quantiles are
 *  histogram estimates (obs::Histogram::quantile over exponential
 *  buckets), not exact order statistics. */
struct LatencySnapshot
{
    size_t samples = 0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double mean_us = 0.0;
    double max_us = 0.0;
};

/** One-lock view of the service: aggregate stats, the latency
 *  distribution and the instantaneous queue depth captured under a
 *  single mutex acquisition, so the fields are mutually consistent
 *  (stats().ops_completed and latency().samples taken separately can
 *  disagree when workers retire batches in between). */
struct ServiceSnapshot
{
    ServiceStats stats;
    LatencySnapshot latency;
    size_t queue_depth = 0;
};

/**
 * The execution service. Construction spawns the worker pool; each
 * worker builds its own hw::Coprocessor plus the shared operation
 * plans (hw::OpPlan values — identical across workers because memory-
 * file allocation is deterministic), so submission never blocks on
 * hardware setup.
 *
 * Thread safety: submit*(), registerTenant(), pinInput(), drain(),
 * shutdown() and stats() may be called concurrently from any number of
 * client threads.
 */
class ExecutionService
{
  public:
    /**
     * @param params FV parameter set (shared, immutable).
     * @param rlk relinearization keys (kRnsDigits kind — what the HPS
     *        coprocessor's key-load schedule consumes). Registered as
     *        the kDefaultTenant session.
     * @param config service tunables.
     */
    ExecutionService(std::shared_ptr<const fv::FvParams> params,
                     fv::RelinKeys rlk, ServiceConfig config = {});

    /**
     * As above, plus Galois key-switching keys for the default
     * session — required before any circuit with rotation nodes can be
     * submitted under it (submitCompiled rejects circuits whose Galois
     * elements the submitting session does not hold).
     */
    ExecutionService(std::shared_ptr<const fv::FvParams> params,
                     fv::RelinKeys rlk, fv::GaloisKeys gkeys,
                     ServiceConfig config = {});

    /** Shuts down (failing queued jobs) and joins the workers. */
    ~ExecutionService();

    ExecutionService(const ExecutionService &) = delete;
    ExecutionService &operator=(const ExecutionService &) = delete;

    /**
     * Register a tenant session with its own key sets. Key-set shape
     * is validated here (kRnsDigits, digit count, per-element Galois
     * keys) so workers never see malformed keys. @p weight biases the
     * fair dequeue: a weight-2 tenant gets up to twice the jobs per
     * round-robin turn of a weight-1 tenant.
     *
     * @return the session id to pass to the tenant-qualified submits.
     */
    TenantId registerTenant(std::string name, fv::RelinKeys rlk,
                            fv::GaloisKeys gkeys = {},
                            uint32_t weight = 1);

    /**
     * Pin a ciphertext in @p tenant's resident-operand store. Pinned
     * operands are referenced by handle in submitCompiledResident and
     * cached in a worker's coprocessor memory file across requests —
     * the "hot database" half of a PIR or matvec workload. The
     * ciphertext itself stays host-side owned by the service; workers
     * upload it at most once per (circuit, handle-set) change.
     */
    PinnedHandle pinInput(TenantId tenant, fv::Ciphertext ct);

    /**
     * Enqueue one operation on two size-2 ciphertexts under the
     * default session. Shape errors (wrong element count, base, or
     * degree) throw FatalError synchronously; a stopped service throws
     * ServiceStoppedError; a full tenant queue throws
     * ServiceOverloadedError.
     *
     * @return future resolving to the result ciphertext.
     */
    std::future<fv::Ciphertext> submit(Op op, fv::Ciphertext a,
                                       fv::Ciphertext b);

    /** Tenant-qualified submit. @p arrival_us, when non-negative, is
     *  the job's modeled arrival time for open-loop load generation:
     *  the executing worker starts it no earlier than that point of
     *  its modeled clock, and the recorded latency (see latency()) is
     *  completion minus arrival. */
    std::future<fv::Ciphertext> submit(TenantId tenant, Op op,
                                       fv::Ciphertext a,
                                       fv::Ciphertext b,
                                       double arrival_us = -1.0);

    /**
     * Enqueue a whole circuit as one fused job under the default
     * session: compiled immediately with ServiceConfig::compiler
     * (malformed circuits and parameter-set mismatches throw
     * synchronously), then executes on one worker's coprocessor as
     * fused programs. Results are bit-exact with fv::Evaluator run
     * op-by-op.
     *
     * @return future resolving to the output ciphertexts, in the
     *         circuit's output order.
     */
    std::future<std::vector<fv::Ciphertext>> submitCircuit(
        const compiler::Circuit &circuit,
        std::vector<fv::Ciphertext> inputs);

    /** Tenant-qualified submitCircuit (see submit for @p arrival_us).
     *  Under admission == kReject a noise-exhausted circuit is retried
     *  with auto_mod_switch re-leveling (admission_relevel) before
     *  AdmissionRejectedError is thrown. */
    std::future<std::vector<fv::Ciphertext>> submitCircuit(
        TenantId tenant, const compiler::Circuit &circuit,
        std::vector<fv::Ciphertext> inputs, double arrival_us = -1.0);

    /**
     * Enqueue an already-compiled circuit under the default session
     * (compile once with compiler::compileCircuit, submit many times).
     * The compiled program must target this service's parameter set
     * and hardware configuration.
     */
    std::future<std::vector<fv::Ciphertext>> submitCompiled(
        std::shared_ptr<const compiler::CompiledCircuit> compiled,
        std::vector<fv::Ciphertext> inputs);

    /** Tenant-qualified submitCompiled (see submit for @p arrival_us). */
    std::future<std::vector<fv::Ciphertext>> submitCompiled(
        TenantId tenant,
        std::shared_ptr<const compiler::CompiledCircuit> compiled,
        std::vector<fv::Ciphertext> inputs, double arrival_us = -1.0);

    /**
     * Enqueue a circuit compiled with
     * compiler::CompilerOptions::resident_inputs, binding each
     * resident input position to one of @p tenant's pinned handles.
     * @p request_inputs supplies the remaining inputs in position
     * order (resident positions skipped). A worker whose coprocessor
     * already holds this exact (tenant, circuit, handles) cache runs
     * warm — the pinned operands are not re-uploaded; any other worker
     * state triggers a cold run that uploads and pins them. Results
     * are bit-identical either way.
     */
    std::future<std::vector<fv::Ciphertext>> submitCompiledResident(
        TenantId tenant,
        std::shared_ptr<const compiler::CompiledCircuit> compiled,
        std::span<const PinnedHandle> resident_handles,
        std::vector<fv::Ciphertext> request_inputs,
        double arrival_us = -1.0);

    /** Release the workers of a start_paused service. Idempotent. */
    void start();

    /** Block until the queue is empty and no batch is in flight. */
    void drain();

    /**
     * Stop intake, finish in-flight batches, join the workers and fail
     * every still-queued future with ServiceStoppedError. Idempotent.
     */
    void shutdown();

    /** @return true once shutdown() has begun. */
    bool stopped() const;

    /** @return configured worker count. */
    size_t workerCount() const { return config_.workers; }

    /** @return registered tenant count. */
    size_t tenantCount() const;

    /** @return jobs currently queued (excludes in-flight batches). */
    size_t queueDepth() const;

    /** @return a snapshot of the aggregate statistics. Equivalent to
     *  snapshot().stats — use snapshot() when stats and latency must
     *  agree with each other. */
    ServiceStats stats() const;

    /** @return the modeled per-job latency distribution so far. Jobs
     *  submitted without an arrival timestamp contribute their pure
     *  service time. Equivalent to snapshot().latency. */
    LatencySnapshot latency() const;

    /** @return stats, latency and queue depth captured under ONE lock
     *  acquisition — the mutually consistent view. */
    ServiceSnapshot snapshot() const;

    /** The service's metrics registry: queue-depth gauge, per-tenant
     *  arrival/shed/admission counters, the latency histogram.
     *  Render with obs::Registry::renderText() or feed
     *  Registry::samples() to the bench JSON reporter. */
    const obs::Registry &metrics() const { return metrics_; }
    obs::Registry &metrics() { return metrics_; }

    /** @return the service configuration. */
    const ServiceConfig &config() const { return config_; }

  private:
    struct Job;

    /** One tenant's session: immutable key sets plus the mu_-guarded
     *  queue and pinned-operand store. Stored in a deque so worker
     *  threads can hold stable pointers across registrations. */
    struct Session
    {
        TenantId id = 0;
        std::string name;
        uint32_t weight = 1;
        fv::RelinKeys rlk;
        fv::GaloisKeys gkeys;
        /** Combined content hash of both key sets (fv fingerprints). */
        uint64_t key_fingerprint = 0;
        /** Pinned resident operands, indexed by PinnedHandle (mu_). */
        std::vector<std::shared_ptr<const fv::Ciphertext>> pinned;
        /** This tenant's FIFO queue (mu_). */
        std::deque<Job> queue;

        // --- per-tenant accounting (mirrors TenantStats; mu_) ---------
        uint64_t arrivals = 0;
        uint64_t shed = 0;
        uint64_t admission_rejected = 0;
        uint64_t completed = 0;
        uint64_t failed = 0;
        std::array<hw::Cycle, hw::kUnitCount> unit_cycles{};

        // --- registry handles (stable; created at registration) -------
        obs::Counter *arrivals_ctr = nullptr;
        obs::Counter *shed_ctr = nullptr;
        obs::Counter *admission_rejected_ctr = nullptr;
        obs::Counter *completed_ctr = nullptr;
    };

    struct Job
    {
        /** Owning session (stable pointer into sessions_). */
        Session *session = nullptr;
        /** Modeled arrival time; negative = untimed submission. */
        double arrival_us = -1.0;

        /** Single-op job (circuit == nullptr) or fused circuit job. */
        Op op = Op::kAdd;
        fv::Ciphertext a;
        fv::Ciphertext b;
        std::promise<fv::Ciphertext> promise;

        std::shared_ptr<const compiler::CompiledCircuit> circuit;
        /** All inputs (plain circuit job), or only the non-resident
         *  request inputs (resident job). */
        std::vector<fv::Ciphertext> circuit_inputs;
        std::promise<std::vector<fv::Ciphertext>> circuit_promise;

        /** Resident job: pinned operands (one per
         *  circuit->resident_inputs entry) and their handles — the
         *  worker-side cache identity. */
        std::vector<std::shared_ptr<const fv::Ciphertext>>
            resident_operands;
        std::vector<PinnedHandle> resident_handles;
        bool resident = false;

        bool isCircuit() const { return circuit != nullptr; }

        /** Batch ordering key: group per-op kinds, then plain
         *  circuits, resident circuits last (so a cold run's pins
         *  survive into the next batch). */
        int
        sortKey() const
        {
            if (!isCircuit())
                return op == Op::kAdd ? 0 : 1;
            return resident ? 3 : 2;
        }

        /** Fail this job's pending future with @p error. */
        void
        fail(const std::exception_ptr &error)
        {
            if (isCircuit())
                circuit_promise.set_exception(error);
            else
                promise.set_exception(error);
        }
    };

    TenantId registerSession(std::string name, fv::RelinKeys rlk,
                             fv::GaloisKeys gkeys, uint32_t weight);
    Session &session(TenantId tenant);
    void checkCompiled(const Session &s,
                       const compiler::CompiledCircuit &compiled) const;
    /** Noise-aware admission verdict for @p compiled (may throw). */
    void admit(Session &s, const compiler::CompiledCircuit &compiled);
    /** Static-verification admission verdict (see ServiceConfig::
     *  verify; may throw AdmissionRejectedError). Cached per compiled
     *  object. */
    void verifySubmission(
        const std::shared_ptr<const compiler::CompiledCircuit> &compiled);
    /** Latency distribution from the histogram (no lock needed — the
     *  histogram is internally atomic). */
    LatencySnapshot latencyFromHistogram() const;
    std::future<std::vector<fv::Ciphertext>> enqueueCircuit(Job job);
    void enqueue(Session &s, Job job);
    void workerLoop(size_t worker_index);
    void validateOperand(const fv::Ciphertext &ct) const;

    std::shared_ptr<const fv::FvParams> params_;
    ServiceConfig config_;
    /** Prototype plans, built once; workers replay their allocation. */
    hw::OpPlan add_plan_;
    hw::OpPlan mult_plan_;

    mutable std::mutex mu_;
    /** Serializes concurrent shutdown() calls (thread join phase). */
    std::mutex shutdown_mu_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    /** Tenant sessions; deque for stable element addresses (mu_ for
     *  registration and queue access; key sets are immutable). */
    std::deque<Session> sessions_;
    /** Weighted round-robin dequeue cursor (mu_). */
    size_t rr_cursor_ = 0;
    /** Jobs queued across all sessions (mu_). */
    size_t queued_total_ = 0;
    size_t in_flight_ = 0;
    bool started_ = true;
    bool stopping_ = false;
    ServiceStats stats_;
    /** Compiled circuits the static verifier already cleared, keyed by
     *  object address with a weak_ptr witness (an address reused by a
     *  new allocation fails the witness and re-verifies; mu_). */
    std::unordered_map<const compiler::CompiledCircuit *,
                       std::weak_ptr<const compiler::CompiledCircuit>>
        verified_;
    /** Modeled busy time per worker (us). */
    std::vector<double> worker_clock_us_;

    /** Metrics registry (declared before any session registration can
     *  mint counter handles from it). Individually thread-safe. */
    obs::Registry metrics_;
    obs::Gauge *queue_depth_gauge_ = nullptr;
    /** Modeled per-job latency distribution; replaces the old
     *  retain-and-sort sample vector (unbounded memory, O(n log n)
     *  every latency() call) with fixed exponential buckets. */
    obs::Histogram *latency_hist_ = nullptr;

    /** Last member: threads must not outlive anything they touch. */
    std::vector<std::thread> threads_;
};

} // namespace heat::service

#endif // HEAT_SERVICE_SERVICE_H
