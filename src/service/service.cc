#include "service/service.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "hw/arm_host.h"
#include "hw/coprocessor.h"

namespace heat::service {

ExecutionService::ExecutionService(
    std::shared_ptr<const fv::FvParams> params, fv::RelinKeys rlk,
    ServiceConfig config)
    : ExecutionService(std::move(params), std::move(rlk),
                       fv::GaloisKeys{}, config)
{
}

ExecutionService::ExecutionService(
    std::shared_ptr<const fv::FvParams> params, fv::RelinKeys rlk,
    fv::GaloisKeys gkeys, ServiceConfig config)
    : params_(std::move(params)), rlk_(std::move(rlk)),
      gkeys_(std::move(gkeys)), config_(config)
{
    fatalIf(config_.workers == 0, "service needs at least one worker");
    fatalIf(config_.max_batch == 0, "max_batch must be at least 1");
    fatalIf(rlk_.kind != fv::DecompKind::kRnsDigits,
            "the coprocessor key-load schedule needs kRnsDigits "
            "relinearization keys");
    fatalIf(rlk_.digitCount() != params_->rnsDigitCount(),
            "relinearization keys do not match the parameter set");
    for (const auto &[g, key] : gkeys_.keys) {
        fatalIf(key.kind != fv::DecompKind::kRnsDigits ||
                    key.digitCount() != params_->rnsDigitCount(),
                "Galois key for element ", g,
                " does not match the parameter set");
    }

    // Build the prototype plans once; this also proves each program
    // fits the memory file before any worker starts. Each plan assumes
    // a freshly-reprogrammed memory file (a Mult alone peaks at 78 of
    // 84 slots, so plans are installed one at a time).
    hw::Coprocessor prototype(params_, config_.hw, &rlk_, &gkeys_);
    add_plan_ = hw::makeAddPlan(prototype);
    prototype.reset();
    mult_plan_ = hw::makeMultPlan(prototype);

    started_ = !config_.start_paused;
    worker_clock_us_.assign(config_.workers, 0.0);
    threads_.reserve(config_.workers);
    for (size_t w = 0; w < config_.workers; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

ExecutionService::~ExecutionService()
{
    shutdown();
}

void
ExecutionService::validateOperand(const fv::Ciphertext &ct) const
{
    fatalIf(ct.size() != 2, "service operands must be size-2 "
                            "ciphertexts (relinearize first)");
    fatalIf(ct.level != 0,
            "service operands enter at level 0 — compiled circuits "
            "carry their own mod-switches; got level ", ct.level);
    for (size_t i = 0; i < ct.size(); ++i) {
        fatalIf(ct[i].degree() != params_->degree() ||
                    ct[i].residueCount() != params_->qBase()->size(),
                "operand polynomial does not match the parameter set");
        fatalIf(ct[i].form() != ntt::PolyForm::kCoeff,
                "operands must be in coefficient form (what the DMA "
                "streams to the accelerator)");
    }
}

std::future<fv::Ciphertext>
ExecutionService::submit(Op op, fv::Ciphertext a, fv::Ciphertext b)
{
    validateOperand(a);
    validateOperand(b);

    Job job;
    job.op = op;
    job.a = std::move(a);
    job.b = std::move(b);
    std::future<fv::Ciphertext> future = job.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            throw ServiceStoppedError("submit after shutdown");
        queue_.push_back(std::move(job));
    }
    work_cv_.notify_one();
    return future;
}

std::future<std::vector<fv::Ciphertext>>
ExecutionService::submitCircuit(const compiler::Circuit &circuit,
                                std::vector<fv::Ciphertext> inputs)
{
    // Compile on the submitting thread: structural errors surface
    // synchronously, and workers only replay the deterministic slot
    // schedule (the compiled program is dispatchable to any of them).
    compiler::CompilerOptions options;
    options.hw = config_.hw;
    auto compiled = std::make_shared<const compiler::CompiledCircuit>(
        compiler::compileCircuit(params_, circuit, options));
    return submitCompiled(std::move(compiled), std::move(inputs));
}

std::future<std::vector<fv::Ciphertext>>
ExecutionService::submitCompiled(
    std::shared_ptr<const compiler::CompiledCircuit> compiled,
    std::vector<fv::Ciphertext> inputs)
{
    fatalIf(compiled == nullptr, "submitCompiled needs a circuit");
    const fv::FvConfig &theirs = compiled->params->config();
    const fv::FvConfig &ours = params_->config();
    fatalIf(theirs.degree != ours.degree ||
                theirs.plain_modulus != ours.plain_modulus ||
                theirs.q_prime_count != ours.q_prime_count ||
                theirs.prime_bits != ours.prime_bits,
            "compiled circuit targets a different parameter set");
    fatalIf(!(compiled->hw == config_.hw),
            "compiled circuit targets a different hardware "
            "configuration than this service's workers");
    fatalIf(inputs.size() != compiled->inputs.size(),
            "circuit expects ", compiled->inputs.size(), " inputs, got ",
            inputs.size());
    for (uint32_t g : compiled->galois_elements)
        fatalIf(!gkeys_.has(g),
                "circuit rotates with Galois element ", g,
                " but the service holds no key for it (construct the "
                "service with the circuit's Galois keys)");
    for (const fv::Ciphertext &ct : inputs)
        validateOperand(ct);

    Job job;
    job.circuit = std::move(compiled);
    job.circuit_inputs = std::move(inputs);
    return enqueueCircuit(std::move(job));
}

std::future<std::vector<fv::Ciphertext>>
ExecutionService::enqueueCircuit(Job job)
{
    std::future<std::vector<fv::Ciphertext>> future =
        job.circuit_promise.get_future();
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            throw ServiceStoppedError("submit after shutdown");
        queue_.push_back(std::move(job));
    }
    work_cv_.notify_one();
    return future;
}

void
ExecutionService::start()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        started_ = true;
    }
    work_cv_.notify_all();
}

void
ExecutionService::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] {
        return (queue_.empty() && in_flight_ == 0) || stopping_;
    });
}

void
ExecutionService::shutdown()
{
    // Serializes concurrent shutdown() callers: the join phase below
    // must run once; later callers block here until it finished.
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
    std::deque<Job> orphans;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
        orphans.swap(queue_);
    }
    work_cv_.notify_all();
    idle_cv_.notify_all();
    for (std::thread &t : threads_) {
        if (t.joinable())
            t.join();
    }
    if (!orphans.empty()) {
        auto stopped = std::make_exception_ptr(
            ServiceStoppedError("service shut down before execution"));
        for (Job &job : orphans)
            job.fail(stopped);
        std::lock_guard<std::mutex> lock(mu_);
        stats_.ops_rejected += orphans.size();
    }
}

bool
ExecutionService::stopped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stopping_;
}

size_t
ExecutionService::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

ServiceStats
ExecutionService::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    ServiceStats snapshot = stats_;
    snapshot.makespan_us = worker_clock_us_.empty()
                               ? 0.0
                               : *std::max_element(
                                     worker_clock_us_.begin(),
                                     worker_clock_us_.end());
    return snapshot;
}

void
ExecutionService::workerLoop(size_t worker_index)
{
    // Per-worker hardware instance. Exactly one plan is installed at a
    // time: switching op kinds reprograms the memory file and replays
    // the new plan's slot allocations (build-time work only — resident
    // operands are re-uploaded per job anyway).
    std::optional<hw::Coprocessor> cp;
    std::optional<hw::OpPlan::Kind> installed;
    auto rebuild = [&] {
        cp.emplace(params_, config_.hw, &rlk_, &gkeys_);
        installed.reset();
    };
    auto install = [&](const hw::OpPlan &plan) {
        if (installed == plan.kind)
            return;
        // Reprogram unconditionally: a circuit job (or a fresh build)
        // leaves the memory file in an unknown layout.
        cp->reset();
        hw::preparePlanSlots(*cp, plan);
        installed = plan.kind;
    };
    rebuild();
    const hw::ArmHostModel host(params_, config_.hw);
    const auto dispatch =
        static_cast<hw::Cycle>(config_.hw.dispatch_overhead);

    for (;;) {
        std::vector<Job> batch;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this] {
                return stopping_ || (started_ && !queue_.empty());
            });
            if (queue_.empty())
                return; // stopping, nothing left to do
            while (!queue_.empty() && batch.size() < config_.max_batch) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            in_flight_ += batch.size();
        }
        // Group by op kind (circuits last): the jobs are independent,
        // and grouping bounds memory-file reprogramming to one install
        // per kind.
        std::stable_sort(batch.begin(), batch.end(),
                         [](const Job &x, const Job &y) {
                             return x.sortKey() < y.sortKey();
                         });

        size_t batch_completed = 0;
        size_t batch_failed = 0;
        size_t op_jobs = 0;
        uint64_t batch_circuits = 0;
        uint64_t batch_circuit_nodes = 0;
        hw::Cycle batch_cycles = 0;
        hw::Cycle amortized_cycles = 0;
        double batch_dma_us = 0.0;
        double batch_host_us = 0.0;
        bool first_in_batch = true;
        for (Job &job : batch) {
            if (job.isCircuit()) {
                try {
                    compiler::CircuitRunStats cstats;
                    std::vector<fv::Ciphertext> outs =
                        compiler::runCompiledCircuit(
                            *cp, *job.circuit, job.circuit_inputs,
                            &cstats);
                    job.circuit_promise.set_value(std::move(outs));
                    batch_cycles += cstats.fpga_cycles;
                    batch_dma_us += cstats.dma_us;
                    batch_host_us += cstats.host_us;
                    ++batch_circuits;
                    batch_circuit_nodes +=
                        job.circuit->value_sizes.size() -
                        job.circuit->inputs.size();
                } catch (...) {
                    job.fail(std::current_exception());
                    ++batch_failed;
                    rebuild();
                }
                // The circuit reprogrammed the memory file; the next
                // single-op job reinstalls its plan and restarts the
                // back-to-back dispatch stream.
                installed.reset();
                first_in_batch = true;
                continue;
            }
            ++op_jobs;
            const hw::OpPlan &plan =
                job.op == Op::kAdd ? add_plan_ : mult_plan_;
            try {
                install(plan);
                hw::uploadPlanInputs(*cp, plan, {&job.a[0], &job.a[1]},
                                     {&job.b[0], &job.b[1]});
                hw::ExecStats s = cp->execute(plan.program);
                batch_cycles += s.fpga_cycles;
                batch_dma_us += s.dma_us;
                if (!first_in_batch) {
                    // Back-to-back programs stream from the queued
                    // instruction sequence: their per-instruction Arm
                    // dispatch overlaps the previous compute.
                    amortized_cycles +=
                        dispatch * plan.program.instrs.size();
                }
                first_in_batch = false;

                fv::Ciphertext out;
                out.polys.push_back(
                    cp->downloadPoly(plan.program.outputs[0]));
                out.polys.push_back(
                    cp->downloadPoly(plan.program.outputs[1]));
                job.promise.set_value(std::move(out));
                ++batch_completed;
            } catch (...) {
                job.promise.set_exception(std::current_exception());
                ++batch_failed;
                // The failed program may have left memory-file layouts
                // inconsistent; rebuild this worker's coprocessor so
                // later jobs start from a clean instance.
                rebuild();
                first_in_batch = true;
            }
        }

        batch_host_us += host.sendCiphertextsUs(2 * op_jobs) +
                         host.receiveCiphertextsUs(op_jobs);
        const double batch_accel_us =
            config_.hw.cyclesToUs(batch_cycles -
                                  std::min(batch_cycles,
                                           amortized_cycles)) +
            batch_dma_us;
        {
            std::lock_guard<std::mutex> lock(mu_);
            stats_.ops_completed += batch_completed;
            stats_.ops_failed += batch_failed;
            stats_.batches += 1;
            stats_.circuits_completed += batch_circuits;
            stats_.circuit_nodes_completed += batch_circuit_nodes;
            stats_.fpga_cycles += batch_cycles;
            stats_.dma_us += batch_dma_us;
            stats_.host_us += batch_host_us;
            worker_clock_us_[worker_index] +=
                batch_host_us + batch_accel_us;
            in_flight_ -= batch.size();
            if (queue_.empty() && in_flight_ == 0)
                idle_cv_.notify_all();
        }
    }
}

} // namespace heat::service
