#include "service/service.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <utility>

#include "hw/arm_host.h"
#include "hw/coprocessor.h"
#include "obs/trace.h"
#include "verify/verify.h"

namespace heat::service {

ExecutionService::ExecutionService(
    std::shared_ptr<const fv::FvParams> params, fv::RelinKeys rlk,
    ServiceConfig config)
    : ExecutionService(std::move(params), std::move(rlk),
                       fv::GaloisKeys{}, config)
{
}

ExecutionService::ExecutionService(
    std::shared_ptr<const fv::FvParams> params, fv::RelinKeys rlk,
    fv::GaloisKeys gkeys, ServiceConfig config)
    : params_(std::move(params)), config_(config)
{
    fatalIf(config_.workers == 0, "service needs at least one worker");
    fatalIf(config_.max_batch == 0, "max_batch must be at least 1");
    // Compiled programs must fit the workers' memory files whatever
    // the caller left in the compiler options.
    config_.compiler.hw = config_.hw;

    // Registry handles before any session registration can mint
    // per-tenant counters. 26 exponential buckets cover 1us..33.5s of
    // modeled latency.
    queue_depth_gauge_ = &metrics_.gauge(
        "heat_service_queue_depth",
        "jobs currently queued across all tenants");
    latency_hist_ = &metrics_.histogram(
        "heat_service_latency_us",
        obs::Histogram::exponentialBounds(1.0, 2.0, 26),
        "modeled per-job latency (us)");

    registerSession("default", std::move(rlk), std::move(gkeys),
                    /*weight=*/1);

    // Build the prototype plans once; this also proves each program
    // fits the memory file before any worker starts. Each plan assumes
    // a freshly-reprogrammed memory file (a Mult alone peaks at 78 of
    // 84 slots, so plans are installed one at a time). Plans are slot
    // schedules — key-set independent — so any session's keys work.
    Session &def = sessions_.front();
    hw::Coprocessor prototype(params_, config_.hw, &def.rlk, &def.gkeys);
    add_plan_ = hw::makeAddPlan(prototype);
    prototype.reset();
    mult_plan_ = hw::makeMultPlan(prototype);

    started_ = !config_.start_paused;
    worker_clock_us_.assign(config_.workers, 0.0);
    threads_.reserve(config_.workers);
    for (size_t w = 0; w < config_.workers; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

ExecutionService::~ExecutionService()
{
    shutdown();
}

TenantId
ExecutionService::registerTenant(std::string name, fv::RelinKeys rlk,
                                 fv::GaloisKeys gkeys, uint32_t weight)
{
    return registerSession(std::move(name), std::move(rlk),
                           std::move(gkeys), weight);
}

TenantId
ExecutionService::registerSession(std::string name, fv::RelinKeys rlk,
                                  fv::GaloisKeys gkeys, uint32_t weight)
{
    fatalIf(weight == 0, "tenant weight must be at least 1");
    fatalIf(rlk.kind != fv::DecompKind::kRnsDigits,
            "the coprocessor key-load schedule needs kRnsDigits "
            "relinearization keys");
    fatalIf(rlk.digitCount() != params_->rnsDigitCount(),
            "relinearization keys do not match the parameter set");
    for (const auto &[g, key] : gkeys.keys) {
        fatalIf(key.kind != fv::DecompKind::kRnsDigits ||
                    key.digitCount() != params_->rnsDigitCount(),
                "Galois key for element ", g,
                " does not match the parameter set");
    }
    const uint64_t fingerprint =
        rlk.fingerprint() ^ (gkeys.fingerprint() * 0x9e3779b97f4a7c15ull);

    // Mint the per-tenant counter handles before taking mu_ (the
    // registry has its own mutex; keeping the acquisitions disjoint
    // makes the lock order trivial). Tenants sharing a name share the
    // Prometheus series — same label, same series.
    const std::string label = "{tenant=\"" + name + "\"}";
    obs::Counter &arrivals =
        metrics_.counter("heat_service_jobs_arrived_total" + label,
                         "jobs enqueued (single ops and circuits)");
    obs::Counter &shed =
        metrics_.counter("heat_service_jobs_shed_total" + label,
                         "submissions shed by the bounded tenant queue");
    obs::Counter &rejected = metrics_.counter(
        "heat_service_admission_rejected_total" + label,
        "circuits rejected by noise-aware admission control");
    obs::Counter &completed =
        metrics_.counter("heat_service_jobs_completed_total" + label,
                         "jobs whose future resolved with a result");

    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_)
        throw ServiceStoppedError("registerTenant after shutdown");
    Session s;
    s.id = static_cast<TenantId>(sessions_.size());
    s.name = std::move(name);
    s.weight = weight;
    s.rlk = std::move(rlk);
    s.gkeys = std::move(gkeys);
    s.key_fingerprint = fingerprint;
    s.arrivals_ctr = &arrivals;
    s.shed_ctr = &shed;
    s.admission_rejected_ctr = &rejected;
    s.completed_ctr = &completed;
    sessions_.push_back(std::move(s));
    return sessions_.back().id;
}

ExecutionService::Session &
ExecutionService::session(TenantId tenant)
{
    std::lock_guard<std::mutex> lock(mu_);
    fatalIf(tenant >= sessions_.size(), "unknown tenant id ", tenant,
            " (", sessions_.size(), " sessions registered)");
    return sessions_[tenant];
}

size_t
ExecutionService::tenantCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sessions_.size();
}

void
ExecutionService::validateOperand(const fv::Ciphertext &ct) const
{
    fatalIf(ct.size() != 2, "service operands must be size-2 "
                            "ciphertexts (relinearize first)");
    fatalIf(ct.level != 0,
            "service operands enter at level 0 — compiled circuits "
            "carry their own mod-switches; got level ", ct.level);
    for (size_t i = 0; i < ct.size(); ++i) {
        fatalIf(ct[i].degree() != params_->degree() ||
                    ct[i].residueCount() != params_->qBase()->size(),
                "operand polynomial does not match the parameter set");
        fatalIf(ct[i].form() != ntt::PolyForm::kCoeff,
                "operands must be in coefficient form (what the DMA "
                "streams to the accelerator)");
    }
}

PinnedHandle
ExecutionService::pinInput(TenantId tenant, fv::Ciphertext ct)
{
    validateOperand(ct);
    Session &s = session(tenant);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_)
        throw ServiceStoppedError("pinInput after shutdown");
    s.pinned.push_back(
        std::make_shared<const fv::Ciphertext>(std::move(ct)));
    return static_cast<PinnedHandle>(s.pinned.size() - 1);
}

std::future<fv::Ciphertext>
ExecutionService::submit(Op op, fv::Ciphertext a, fv::Ciphertext b)
{
    return submit(kDefaultTenant, op, std::move(a), std::move(b));
}

std::future<fv::Ciphertext>
ExecutionService::submit(TenantId tenant, Op op, fv::Ciphertext a,
                         fv::Ciphertext b, double arrival_us)
{
    Session &s = session(tenant);
    validateOperand(a);
    validateOperand(b);

    Job job;
    job.session = &s;
    job.arrival_us = arrival_us;
    job.op = op;
    job.a = std::move(a);
    job.b = std::move(b);
    std::future<fv::Ciphertext> future = job.promise.get_future();
    enqueue(s, std::move(job));
    return future;
}

std::future<std::vector<fv::Ciphertext>>
ExecutionService::submitCircuit(const compiler::Circuit &circuit,
                                std::vector<fv::Ciphertext> inputs)
{
    return submitCircuit(kDefaultTenant, circuit, std::move(inputs));
}

std::future<std::vector<fv::Ciphertext>>
ExecutionService::submitCircuit(TenantId tenant,
                                const compiler::Circuit &circuit,
                                std::vector<fv::Ciphertext> inputs,
                                double arrival_us)
{
    // Compile on the submitting thread: structural errors surface
    // synchronously, and workers only replay the deterministic slot
    // schedule (the compiled program is dispatchable to any of them).
    // The noise verdict is the admission policy's to deliver, not the
    // compiler's — so the compile-time check is off here.
    compiler::CompilerOptions options = config_.compiler;
    options.hw = config_.hw;
    options.noise_check = compiler::NoiseCheck::kOff;
    // Same division of labor for the static verifier: admission runs
    // it (verifySubmission) with this service's policy and cache, so
    // the compile-time pass would only duplicate the work.
    options.verify = compiler::VerifyCheck::kOff;
    options.resident_inputs.clear();
    auto compiled = std::make_shared<const compiler::CompiledCircuit>(
        compiler::compileCircuit(params_, circuit, options));

    // Re-level before rejecting: the automatic level assignment often
    // rescues depth-heavy circuits (fewer live primes per deep value)
    // at no accuracy cost. Only worth a second compile when admission
    // would otherwise throw.
    if (config_.admission == compiler::NoiseCheck::kReject &&
        config_.admission_relevel && !options.auto_mod_switch &&
        compiled->noise_exhausted_node != compiler::kNoValue) {
        options.auto_mod_switch = true;
        auto releveled =
            std::make_shared<const compiler::CompiledCircuit>(
                compiler::compileCircuit(params_, circuit, options));
        if (releveled->noise_exhausted_node == compiler::kNoValue) {
            compiled = std::move(releveled);
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.admission_releveled;
        }
    }
    return submitCompiled(tenant, std::move(compiled), std::move(inputs),
                          arrival_us);
}

std::future<std::vector<fv::Ciphertext>>
ExecutionService::submitCompiled(
    std::shared_ptr<const compiler::CompiledCircuit> compiled,
    std::vector<fv::Ciphertext> inputs)
{
    return submitCompiled(kDefaultTenant, std::move(compiled),
                          std::move(inputs));
}

void
ExecutionService::checkCompiled(
    const Session &s, const compiler::CompiledCircuit &compiled) const
{
    const fv::FvConfig &theirs = compiled.params->config();
    const fv::FvConfig &ours = params_->config();
    fatalIf(theirs.degree != ours.degree ||
                theirs.plain_modulus != ours.plain_modulus ||
                theirs.q_prime_count != ours.q_prime_count ||
                theirs.prime_bits != ours.prime_bits,
            "compiled circuit targets a different parameter set");
    fatalIf(!(compiled.hw == config_.hw),
            "compiled circuit targets a different hardware "
            "configuration than this service's workers");
    for (uint32_t g : compiled.galois_elements)
        fatalIf(!s.gkeys.has(g),
                "circuit rotates with Galois element ", g,
                " but tenant '", s.name,
                "' holds no key for it (register the session with the "
                "circuit's Galois keys)");
}

void
ExecutionService::admit(Session &s,
                        const compiler::CompiledCircuit &compiled)
{
    if (config_.admission == compiler::NoiseCheck::kOff ||
        compiled.noise_exhausted_node == compiler::kNoValue)
        return;
    const compiler::ValueId node = compiled.noise_exhausted_node;
    char detail[160];
    std::snprintf(detail, sizeof detail,
                  "predicted noise budget exhausted at node %u (%s): "
                  "%.1f bits remaining there, %.1f bits at the worst "
                  "output",
                  node,
                  compiler::nodeKindName(
                      compiled.circuit.nodes[node].kind),
                  compiled.noise_budget_bits[node],
                  compiled.min_output_noise_budget_bits);
    if (config_.admission == compiler::NoiseCheck::kReject) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.admission_rejected;
            ++s.admission_rejected;
        }
        s.admission_rejected_ctr->add();
        throw AdmissionRejectedError(
            std::string("admission rejected: ") + detail +
            "; lower the circuit depth or submit through submitCircuit "
            "so re-leveling can try to rescue it");
    }
    std::fprintf(stderr, "ExecutionService: warning: %s\n", detail);
}

void
ExecutionService::verifySubmission(
    const std::shared_ptr<const compiler::CompiledCircuit> &compiled)
{
    if (config_.verify == compiler::VerifyCheck::kOff)
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = verified_.find(compiled.get());
        if (it != verified_.end() &&
            it->second.lock().get() == compiled.get())
            return; // this exact object already passed
    }
    const verify::VerifyResult result =
        verify::verifyCompiledCircuit(*compiled);
    if (!result.ok()) {
        if (config_.verify == compiler::VerifyCheck::kReject) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.verify_rejected;
            }
            throw AdmissionRejectedError(
                "admission rejected: compiled circuit failed static "
                "verification\n" +
                result.report());
        }
        std::fprintf(stderr,
                     "ExecutionService: warning: static verifier: %s",
                     result.report().c_str());
        return; // a warned circuit stays uncached: resubmits re-warn
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.circuits_verified;
    if (verified_.size() >= 256) {
        // Drop witnesses whose circuit objects are gone (their
        // addresses may be reused by unrelated allocations).
        for (auto it = verified_.begin(); it != verified_.end();)
            it = it->second.expired() ? verified_.erase(it)
                                      : std::next(it);
    }
    verified_[compiled.get()] = compiled;
}

std::future<std::vector<fv::Ciphertext>>
ExecutionService::submitCompiled(
    TenantId tenant,
    std::shared_ptr<const compiler::CompiledCircuit> compiled,
    std::vector<fv::Ciphertext> inputs, double arrival_us)
{
    fatalIf(compiled == nullptr, "submitCompiled needs a circuit");
    Session &s = session(tenant);
    checkCompiled(s, *compiled);
    verifySubmission(compiled);
    fatalIf(!compiled->resident_inputs.empty(),
            "circuit was compiled with resident inputs — submit it "
            "through submitCompiledResident with the pinned handles");
    fatalIf(inputs.size() != compiled->inputs.size(),
            "circuit expects ", compiled->inputs.size(), " inputs, got ",
            inputs.size());
    for (const fv::Ciphertext &ct : inputs)
        validateOperand(ct);
    admit(s, *compiled);

    Job job;
    job.session = &s;
    job.arrival_us = arrival_us;
    job.circuit = std::move(compiled);
    job.circuit_inputs = std::move(inputs);
    return enqueueCircuit(std::move(job));
}

std::future<std::vector<fv::Ciphertext>>
ExecutionService::submitCompiledResident(
    TenantId tenant,
    std::shared_ptr<const compiler::CompiledCircuit> compiled,
    std::span<const PinnedHandle> resident_handles,
    std::vector<fv::Ciphertext> request_inputs, double arrival_us)
{
    fatalIf(compiled == nullptr, "submitCompiledResident needs a circuit");
    Session &s = session(tenant);
    checkCompiled(s, *compiled);
    verifySubmission(compiled);
    fatalIf(compiled->resident_inputs.empty(),
            "circuit has no resident inputs — compile it with "
            "CompilerOptions::resident_inputs, or use submitCompiled");
    fatalIf(resident_handles.size() != compiled->resident_inputs.size(),
            "circuit has ", compiled->resident_inputs.size(),
            " resident inputs, got ", resident_handles.size(),
            " pinned handles");
    fatalIf(request_inputs.size() + resident_handles.size() !=
                compiled->inputs.size(),
            "circuit expects ",
            compiled->inputs.size() - resident_handles.size(),
            " request inputs, got ", request_inputs.size());
    for (const fv::Ciphertext &ct : request_inputs)
        validateOperand(ct);
    admit(s, *compiled);

    Job job;
    job.session = &s;
    job.arrival_us = arrival_us;
    job.circuit = std::move(compiled);
    job.circuit_inputs = std::move(request_inputs);
    job.resident = true;
    job.resident_handles.assign(resident_handles.begin(),
                                resident_handles.end());
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (PinnedHandle h : resident_handles) {
            fatalIf(h >= s.pinned.size(), "unknown pinned handle ", h,
                    " for tenant '", s.name, "' (", s.pinned.size(),
                    " pinned)");
            job.resident_operands.push_back(s.pinned[h]);
        }
    }
    return enqueueCircuit(std::move(job));
}

std::future<std::vector<fv::Ciphertext>>
ExecutionService::enqueueCircuit(Job job)
{
    std::future<std::vector<fv::Ciphertext>> future =
        job.circuit_promise.get_future();
    Session &s = *job.session;
    enqueue(s, std::move(job));
    return future;
}

void
ExecutionService::enqueue(Session &s, Job job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            throw ServiceStoppedError("submit after shutdown");
        if (config_.max_queue_per_tenant > 0 &&
            s.queue.size() >= config_.max_queue_per_tenant) {
            ++stats_.ops_shed;
            ++s.shed;
            s.shed_ctr->add();
            throw ServiceOverloadedError(
                "tenant '" + s.name + "' queue is full (" +
                std::to_string(s.queue.size()) + " of " +
                std::to_string(config_.max_queue_per_tenant) +
                " jobs queued) — shedding load, retry later");
        }
        s.queue.push_back(std::move(job));
        ++s.arrivals;
        s.arrivals_ctr->add();
        ++queued_total_;
        queue_depth_gauge_->set(static_cast<double>(queued_total_));
    }
    work_cv_.notify_one();
}

void
ExecutionService::start()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        started_ = true;
    }
    work_cv_.notify_all();
}

void
ExecutionService::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] {
        return (queued_total_ == 0 && in_flight_ == 0) || stopping_;
    });
}

void
ExecutionService::shutdown()
{
    // Serializes concurrent shutdown() callers: the join phase below
    // must run once; later callers block here until it finished.
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
    std::deque<Job> orphans;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
        for (Session &s : sessions_) {
            while (!s.queue.empty()) {
                orphans.push_back(std::move(s.queue.front()));
                s.queue.pop_front();
            }
        }
        queued_total_ = 0;
    }
    work_cv_.notify_all();
    idle_cv_.notify_all();
    for (std::thread &t : threads_) {
        if (t.joinable())
            t.join();
    }
    if (!orphans.empty()) {
        auto stopped = std::make_exception_ptr(
            ServiceStoppedError("service shut down before execution"));
        for (Job &job : orphans)
            job.fail(stopped);
        std::lock_guard<std::mutex> lock(mu_);
        stats_.ops_rejected += orphans.size();
    }
}

bool
ExecutionService::stopped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stopping_;
}

size_t
ExecutionService::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queued_total_;
}

ServiceStats
ExecutionService::stats() const
{
    return snapshot().stats;
}

LatencySnapshot
ExecutionService::latency() const
{
    return snapshot().latency;
}

LatencySnapshot
ExecutionService::latencyFromHistogram() const
{
    LatencySnapshot snap;
    const obs::Histogram &h = *latency_hist_;
    snap.samples = h.count();
    if (snap.samples == 0)
        return snap;
    snap.p50_us = h.quantile(0.50);
    snap.p99_us = h.quantile(0.99);
    snap.mean_us = h.mean();
    snap.max_us = h.max();
    return snap;
}

ServiceSnapshot
ExecutionService::snapshot() const
{
    ServiceSnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    snap.stats = stats_;
    snap.stats.makespan_us = worker_clock_us_.empty()
                                 ? 0.0
                                 : *std::max_element(
                                       worker_clock_us_.begin(),
                                       worker_clock_us_.end());
    snap.stats.tenants.reserve(sessions_.size());
    for (const Session &s : sessions_) {
        TenantStats t;
        t.name = s.name;
        t.arrivals = s.arrivals;
        t.shed = s.shed;
        t.admission_rejected = s.admission_rejected;
        t.completed = s.completed;
        t.failed = s.failed;
        t.unit_cycles = s.unit_cycles;
        snap.stats.tenants.push_back(std::move(t));
    }
    snap.queue_depth = queued_total_;
    // Workers observe latencies into the histogram before they take
    // mu_ to retire the batch, so under the lock samples >= the
    // completed counts — the invariant the snapshot test leans on.
    snap.latency = latencyFromHistogram();
    return snap;
}

void
ExecutionService::workerLoop(size_t worker_index)
{
    // Per-worker hardware instance. Exactly one op plan is installed
    // at a time: switching op kinds reprograms the memory file and
    // replays the new plan's slot allocations. Key sets are attached
    // per job (attachKeys re-points the kKeyLoad stream at the
    // submitting session's DDR-resident keys).
    std::optional<hw::Coprocessor> cp;
    std::optional<hw::OpPlan::Kind> installed;
    const Session *keys_attached = nullptr;
    uint64_t batch_key_swaps = 0;

    // Resident-cache state: which (circuit, session, handles) the
    // pinned memory-file prefix currently holds. The shared_ptr keeps
    // the circuit alive so pointer identity cannot alias a freed one.
    std::shared_ptr<const compiler::CompiledCircuit> cached_circuit;
    const Session *cached_session = nullptr;
    std::vector<PinnedHandle> cached_handles;

    const auto invalidate_cache = [&] {
        cached_circuit.reset();
        cached_session = nullptr;
        cached_handles.clear();
    };
    const auto rebuild = [&] {
        cp.emplace(params_, config_.hw, nullptr, nullptr);
        installed.reset();
        keys_attached = nullptr;
        invalidate_cache();
    };
    const auto attach = [&](Session *s) {
        if (keys_attached == s)
            return;
        cp->attachKeys(&s->rlk, &s->gkeys);
        if (keys_attached != nullptr)
            ++batch_key_swaps;
        keys_attached = s;
    };
    const auto install = [&](const hw::OpPlan &plan) {
        if (installed == plan.kind)
            return;
        // Reprogram unconditionally: a circuit job (or a fresh build)
        // leaves the memory file in an unknown layout. This also
        // clears any pinned resident prefix.
        cp->reset();
        invalidate_cache();
        hw::preparePlanSlots(*cp, plan);
        installed = plan.kind;
    };
    rebuild();
    const hw::ArmHostModel host(params_, config_.hw);
    const auto dispatch =
        static_cast<hw::Cycle>(config_.hw.dispatch_overhead);
    // Worker-local modeled clock; mirrored to worker_clock_us_ under
    // mu_ after every batch (only this worker writes its entry).
    double my_clock = 0.0;
    // Modeled-time spans this worker emits land on their own trace
    // track, so per-worker timelines render as separate rows.
    obs::setTraceTrack(static_cast<uint32_t>(worker_index));

    for (;;) {
        std::vector<Job> batch;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this] {
                return stopping_ || (started_ && queued_total_ > 0);
            });
            if (queued_total_ == 0)
                return; // stopping, nothing left to do
            // Arrival-aware weighted dequeue: each turn drains up to
            // `weight` jobs from the non-empty tenant whose head job
            // has the earliest modeled arrival (untimed jobs, with
            // arrival_us < 0, sort first; ties rotate round-robin
            // from rr_cursor_). Serving near global arrival order
            // matters for the modeled clock — dequeuing one tenant
            // far ahead of the others' arrival frontier drags the
            // worker clock forward and every older job processed
            // afterwards inherits the inflated completion time. A
            // weight-w tenant still contributes up to w consecutive
            // jobs per turn, which is what bounds key swaps and plan
            // reprogramming per batch, and under backlog gives it a
            // w-sized share of every batch.
            while (batch.size() < config_.max_batch &&
                   queued_total_ > 0) {
                size_t best = sessions_.size();
                double best_arrival = 0.0;
                for (size_t off = 0; off < sessions_.size(); ++off) {
                    const size_t i =
                        (rr_cursor_ + off) % sessions_.size();
                    const Session &c = sessions_[i];
                    if (c.queue.empty())
                        continue;
                    const double a = c.queue.front().arrival_us;
                    if (best == sessions_.size() || a < best_arrival) {
                        best = i;
                        best_arrival = a;
                    }
                }
                Session &s = sessions_[best];
                rr_cursor_ = (best + 1) % sessions_.size();
                const size_t take = std::min(
                    {static_cast<size_t>(s.weight),
                     config_.max_batch - batch.size(), s.queue.size()});
                for (size_t k = 0; k < take; ++k) {
                    batch.push_back(std::move(s.queue.front()));
                    s.queue.pop_front();
                    --queued_total_;
                }
            }
            in_flight_ += batch.size();
            queue_depth_gauge_->set(static_cast<double>(queued_total_));
        }
        // Group by session, then op kind (plain circuits after ops,
        // resident circuits last so a cold run's pins survive into
        // the next batch): the jobs are independent, and grouping
        // bounds memory-file reprogramming and key swaps.
        std::stable_sort(batch.begin(), batch.end(),
                         [](const Job &x, const Job &y) {
                             if (x.session->id != y.session->id)
                                 return x.session->id < y.session->id;
                             return x.sortKey() < y.sortKey();
                         });

        size_t batch_completed = 0;
        size_t batch_failed = 0;
        uint64_t batch_circuits = 0;
        uint64_t batch_circuit_nodes = 0;
        uint64_t batch_cold = 0;
        uint64_t batch_warm = 0;
        hw::Cycle batch_cycles = 0;
        std::array<hw::Cycle, hw::kUnitCount> batch_units{};
        double batch_dma_us = 0.0;
        double batch_host_us = 0.0;
        std::vector<double> batch_latencies;
        batch_latencies.reserve(batch.size());
        batch_key_swaps = 0;
        bool first_in_batch = true;

        // Per-tenant deltas, applied to the sessions under mu_ when
        // the batch retires (batches are small, linear scan is fine).
        struct TenantDelta
        {
            Session *s;
            uint64_t completed = 0;
            uint64_t failed = 0;
            std::array<hw::Cycle, hw::kUnitCount> units{};
        };
        std::vector<TenantDelta> tenant_deltas;
        const auto delta_for = [&](Session *s) -> TenantDelta & {
            for (TenantDelta &d : tenant_deltas)
                if (d.s == s)
                    return d;
            tenant_deltas.push_back(TenantDelta{s});
            return tenant_deltas.back();
        };

        obs::Tracer *const tracer = obs::activeTracer();
        // Seed the thread-local modeled clock where this job's nested
        // hardware spans should start; the coprocessor advances it per
        // instruction while a tracer is installed.
        const auto begin_job = [&](const Job &job) {
            if (tracer == nullptr)
                return;
            double start = my_clock;
            if (job.arrival_us >= 0.0 && job.arrival_us > start)
                start = job.arrival_us;
            obs::setModeledNowUs(start);
        };

        // Advance the modeled clock past one finished job: open-loop
        // jobs wait for their arrival time, and their latency is
        // completion minus arrival; untimed jobs contribute service
        // time only.
        const auto finish_job = [&](const Job &job, double cost_us) {
            double start = my_clock;
            if (job.arrival_us >= 0.0 && job.arrival_us > start)
                start = job.arrival_us;
            if (tracer != nullptr) {
                if (job.arrival_us >= 0.0 && start > job.arrival_us)
                    obs::recordModeledSpan(
                        "queue-wait", "service", job.arrival_us,
                        start - job.arrival_us,
                        {{"tenant", job.session->name}});
                obs::recordModeledSpan(
                    job.isCircuit() ? "request:circuit" : "request:op",
                    "service", start, cost_us,
                    {{"tenant", job.session->name}});
            }
            my_clock = start + cost_us;
            batch_latencies.push_back(job.arrival_us >= 0.0
                                          ? my_clock - job.arrival_us
                                          : cost_us);
        };

        for (Job &job : batch) {
            begin_job(job);
            attach(job.session);
            if (job.isCircuit()) {
                try {
                    compiler::CircuitRunStats cstats;
                    std::vector<fv::Ciphertext> outs;
                    if (!job.resident) {
                        outs = compiler::runCompiledCircuit(
                            *cp, *job.circuit, job.circuit_inputs,
                            &cstats);
                        invalidate_cache(); // the run reset the pins
                    } else if (cached_circuit.get() ==
                                   job.circuit.get() &&
                               cached_session == job.session &&
                               cached_handles == job.resident_handles) {
                        // Cache hit: pinned operands are already in
                        // the memory-file prefix — no operand upload.
                        outs = compiler::runCompiledCircuitWarm(
                            *cp, *job.circuit, job.circuit_inputs,
                            &cstats);
                        ++batch_warm;
                    } else {
                        // Cache miss: assemble the full positional
                        // input list and run cold — runCompiledCircuit
                        // uploads the pinned operands into the prefix
                        // and leaves them pinned for the next hit.
                        std::vector<fv::Ciphertext> full(
                            job.circuit->inputs.size());
                        std::vector<bool> res_pos(full.size(), false);
                        for (size_t k = 0;
                             k < job.circuit->resident_inputs.size();
                             ++k) {
                            const uint32_t pos =
                                job.circuit->resident_inputs[k];
                            full[pos] = *job.resident_operands[k];
                            res_pos[pos] = true;
                        }
                        size_t next = 0;
                        for (size_t k = 0; k < full.size(); ++k) {
                            if (!res_pos[k])
                                full[k] = std::move(
                                    job.circuit_inputs[next++]);
                        }
                        outs = compiler::runCompiledCircuit(
                            *cp, *job.circuit, full, &cstats);
                        cached_circuit = job.circuit;
                        cached_session = job.session;
                        cached_handles = job.resident_handles;
                        ++batch_cold;
                    }
                    job.circuit_promise.set_value(std::move(outs));
                    batch_cycles += cstats.fpga_cycles;
                    batch_dma_us += cstats.dma_us;
                    batch_host_us += cstats.host_us;
                    ++batch_circuits;
                    batch_circuit_nodes +=
                        job.circuit->value_sizes.size() -
                        job.circuit->inputs.size();
                    TenantDelta &d = delta_for(job.session);
                    ++d.completed;
                    for (size_t u = 0; u < hw::kUnitCount; ++u) {
                        batch_units[u] += cstats.unit_cycles[u];
                        d.units[u] += cstats.unit_cycles[u];
                    }
                    job.session->completed_ctr->add();
                    finish_job(job, cstats.modeledUs(config_.hw));
                } catch (...) {
                    job.fail(std::current_exception());
                    ++batch_failed;
                    ++delta_for(job.session).failed;
                    rebuild();
                }
                // The circuit reprogrammed the memory file; the next
                // single-op job reinstalls its plan and restarts the
                // back-to-back dispatch stream.
                installed.reset();
                first_in_batch = true;
                continue;
            }
            const hw::OpPlan &plan =
                job.op == Op::kAdd ? add_plan_ : mult_plan_;
            try {
                install(plan);
                hw::uploadPlanInputs(*cp, plan, {&job.a[0], &job.a[1]},
                                     {&job.b[0], &job.b[1]});
                hw::ExecStats s = cp->execute(plan.program);
                batch_cycles += s.fpga_cycles;
                batch_dma_us += s.dma_us;
                TenantDelta &d = delta_for(job.session);
                for (size_t u = 0; u < hw::kUnitCount; ++u) {
                    batch_units[u] += s.unit_cycles[u];
                    d.units[u] += s.unit_cycles[u];
                }
                hw::Cycle amortized = 0;
                if (!first_in_batch) {
                    // Back-to-back programs stream from the queued
                    // instruction sequence: their per-instruction Arm
                    // dispatch overlaps the previous compute.
                    amortized = dispatch * plan.program.instrs.size();
                }
                first_in_batch = false;

                fv::Ciphertext out;
                out.polys.push_back(
                    cp->downloadPoly(plan.program.outputs[0]));
                out.polys.push_back(
                    cp->downloadPoly(plan.program.outputs[1]));
                job.promise.set_value(std::move(out));
                ++batch_completed;
                ++d.completed;
                job.session->completed_ctr->add();

                const double job_host_us =
                    host.sendCiphertextsUs(2) +
                    host.receiveCiphertextsUs(1);
                batch_host_us += job_host_us;
                finish_job(
                    job,
                    config_.hw.cyclesToUs(
                        s.fpga_cycles -
                        std::min(s.fpga_cycles, amortized)) +
                        s.dma_us + job_host_us);
            } catch (...) {
                job.promise.set_exception(std::current_exception());
                ++batch_failed;
                ++delta_for(job.session).failed;
                // The failed program may have left memory-file layouts
                // inconsistent; rebuild this worker's coprocessor so
                // later jobs start from a clean instance.
                rebuild();
                first_in_batch = true;
            }
        }

        // Observe latencies BEFORE retiring the batch under mu_: a
        // concurrent snapshot() then never sees completed counts ahead
        // of the latency sample count.
        for (double v : batch_latencies)
            latency_hist_->observe(v);

        {
            std::lock_guard<std::mutex> lock(mu_);
            stats_.ops_completed += batch_completed;
            stats_.ops_failed += batch_failed;
            stats_.batches += 1;
            stats_.circuits_completed += batch_circuits;
            stats_.circuit_nodes_completed += batch_circuit_nodes;
            stats_.key_swaps += batch_key_swaps;
            stats_.resident_cold_runs += batch_cold;
            stats_.resident_warm_runs += batch_warm;
            stats_.fpga_cycles += batch_cycles;
            stats_.dma_us += batch_dma_us;
            stats_.host_us += batch_host_us;
            for (size_t u = 0; u < hw::kUnitCount; ++u)
                stats_.unit_cycles[u] += batch_units[u];
            for (const TenantDelta &d : tenant_deltas) {
                d.s->completed += d.completed;
                d.s->failed += d.failed;
                for (size_t u = 0; u < hw::kUnitCount; ++u)
                    d.s->unit_cycles[u] += d.units[u];
            }
            worker_clock_us_[worker_index] = my_clock;
            in_flight_ -= batch.size();
            if (queued_total_ == 0 && in_flight_ == 0)
                idle_cv_.notify_all();
        }
    }
}

} // namespace heat::service
