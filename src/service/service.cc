#include "service/service.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "hw/arm_host.h"
#include "hw/coprocessor.h"

namespace heat::service {

ExecutionService::ExecutionService(
    std::shared_ptr<const fv::FvParams> params, fv::RelinKeys rlk,
    ServiceConfig config)
    : params_(std::move(params)), rlk_(std::move(rlk)),
      config_(config)
{
    fatalIf(config_.workers == 0, "service needs at least one worker");
    fatalIf(config_.max_batch == 0, "max_batch must be at least 1");
    fatalIf(rlk_.kind != fv::DecompKind::kRnsDigits,
            "the coprocessor key-load schedule needs kRnsDigits "
            "relinearization keys");
    fatalIf(rlk_.digitCount() != params_->rnsDigitCount(),
            "relinearization keys do not match the parameter set");

    // Build the prototype plans once; this also proves each program
    // fits the memory file before any worker starts. Each plan assumes
    // a freshly-reprogrammed memory file (a Mult alone peaks at 78 of
    // 84 slots, so plans are installed one at a time).
    hw::Coprocessor prototype(params_, config_.hw, &rlk_);
    add_plan_ = hw::makeAddPlan(prototype);
    prototype.reset();
    mult_plan_ = hw::makeMultPlan(prototype);

    started_ = !config_.start_paused;
    worker_clock_us_.assign(config_.workers, 0.0);
    threads_.reserve(config_.workers);
    for (size_t w = 0; w < config_.workers; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

ExecutionService::~ExecutionService()
{
    shutdown();
}

void
ExecutionService::validateOperand(const fv::Ciphertext &ct) const
{
    fatalIf(ct.size() != 2, "service operands must be size-2 "
                            "ciphertexts (relinearize first)");
    for (size_t i = 0; i < ct.size(); ++i) {
        fatalIf(ct[i].degree() != params_->degree() ||
                    ct[i].residueCount() != params_->qBase()->size(),
                "operand polynomial does not match the parameter set");
        fatalIf(ct[i].form() != ntt::PolyForm::kCoeff,
                "operands must be in coefficient form (what the DMA "
                "streams to the accelerator)");
    }
}

std::future<fv::Ciphertext>
ExecutionService::submit(Op op, fv::Ciphertext a, fv::Ciphertext b)
{
    validateOperand(a);
    validateOperand(b);

    Job job;
    job.op = op;
    job.a = std::move(a);
    job.b = std::move(b);
    std::future<fv::Ciphertext> future = job.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            throw ServiceStoppedError("submit after shutdown");
        queue_.push_back(std::move(job));
    }
    work_cv_.notify_one();
    return future;
}

void
ExecutionService::start()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        started_ = true;
    }
    work_cv_.notify_all();
}

void
ExecutionService::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] {
        return (queue_.empty() && in_flight_ == 0) || stopping_;
    });
}

void
ExecutionService::shutdown()
{
    // Serializes concurrent shutdown() callers: the join phase below
    // must run once; later callers block here until it finished.
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
    std::deque<Job> orphans;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
        orphans.swap(queue_);
    }
    work_cv_.notify_all();
    idle_cv_.notify_all();
    for (std::thread &t : threads_) {
        if (t.joinable())
            t.join();
    }
    if (!orphans.empty()) {
        auto stopped = std::make_exception_ptr(
            ServiceStoppedError("service shut down before execution"));
        for (Job &job : orphans)
            job.promise.set_exception(stopped);
        std::lock_guard<std::mutex> lock(mu_);
        stats_.ops_rejected += orphans.size();
    }
}

bool
ExecutionService::stopped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stopping_;
}

size_t
ExecutionService::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

ServiceStats
ExecutionService::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    ServiceStats snapshot = stats_;
    snapshot.makespan_us = worker_clock_us_.empty()
                               ? 0.0
                               : *std::max_element(
                                     worker_clock_us_.begin(),
                                     worker_clock_us_.end());
    return snapshot;
}

void
ExecutionService::workerLoop(size_t worker_index)
{
    // Per-worker hardware instance. Exactly one plan is installed at a
    // time: switching op kinds reprograms the memory file and replays
    // the new plan's slot allocations (build-time work only — resident
    // operands are re-uploaded per job anyway).
    std::optional<hw::Coprocessor> cp;
    std::optional<hw::OpPlan::Kind> installed;
    auto rebuild = [&] {
        cp.emplace(params_, config_.hw, &rlk_);
        installed.reset();
    };
    auto install = [&](const hw::OpPlan &plan) {
        if (installed == plan.kind)
            return;
        if (installed)
            cp->reset();
        hw::preparePlanSlots(*cp, plan);
        installed = plan.kind;
    };
    rebuild();
    const hw::ArmHostModel host(params_, config_.hw);
    const auto dispatch =
        static_cast<hw::Cycle>(config_.hw.dispatch_overhead);

    for (;;) {
        std::vector<Job> batch;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this] {
                return stopping_ || (started_ && !queue_.empty());
            });
            if (queue_.empty())
                return; // stopping, nothing left to do
            while (!queue_.empty() && batch.size() < config_.max_batch) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            in_flight_ += batch.size();
        }
        // Group by op kind: the ops are independent, and grouping
        // bounds memory-file reprogramming to one install per kind.
        std::stable_sort(batch.begin(), batch.end(),
                         [](const Job &x, const Job &y) {
                             return x.op < y.op;
                         });

        size_t batch_completed = 0;
        hw::Cycle batch_cycles = 0;
        hw::Cycle amortized_cycles = 0;
        double batch_dma_us = 0.0;
        bool first_in_batch = true;
        for (Job &job : batch) {
            const hw::OpPlan &plan =
                job.op == Op::kAdd ? add_plan_ : mult_plan_;
            try {
                install(plan);
                hw::uploadPlanInputs(*cp, plan, {&job.a[0], &job.a[1]},
                                     {&job.b[0], &job.b[1]});
                hw::ExecStats s = cp->execute(plan.program);
                batch_cycles += s.fpga_cycles;
                batch_dma_us += s.dma_us;
                if (!first_in_batch) {
                    // Back-to-back programs stream from the queued
                    // instruction sequence: their per-instruction Arm
                    // dispatch overlaps the previous compute.
                    amortized_cycles +=
                        dispatch * plan.program.instrs.size();
                }
                first_in_batch = false;

                fv::Ciphertext out;
                out.polys.push_back(
                    cp->downloadPoly(plan.program.outputs[0]));
                out.polys.push_back(
                    cp->downloadPoly(plan.program.outputs[1]));
                job.promise.set_value(std::move(out));
                ++batch_completed;
            } catch (...) {
                job.promise.set_exception(std::current_exception());
                // The failed program may have left memory-file layouts
                // inconsistent; rebuild this worker's coprocessor so
                // later jobs start from a clean instance.
                rebuild();
                first_in_batch = true;
            }
        }

        const double batch_host_us =
            host.sendCiphertextsUs(2 * batch.size()) +
            host.receiveCiphertextsUs(batch.size());
        const double batch_accel_us =
            config_.hw.cyclesToUs(batch_cycles -
                                  std::min(batch_cycles,
                                           amortized_cycles)) +
            batch_dma_us;
        {
            std::lock_guard<std::mutex> lock(mu_);
            stats_.ops_completed += batch_completed;
            stats_.ops_failed += batch.size() - batch_completed;
            stats_.batches += 1;
            stats_.fpga_cycles += batch_cycles;
            stats_.dma_us += batch_dma_us;
            stats_.host_us += batch_host_us;
            worker_clock_us_[worker_index] +=
                batch_host_us + batch_accel_us;
            in_flight_ -= batch.size();
            if (queue_.empty() && in_flight_ == 0)
                idle_cv_.notify_all();
        }
    }
}

} // namespace heat::service
