/**
 * @file
 * Static program verifier for compiled coprocessor circuits.
 *
 * The circuit compiler emits large fused hw::Programs — levels, spills,
 * pinned resident prefixes, hoisted Galois digits — that the simulated
 * coprocessor executes on trust: a miscompiled program manifests as
 * silently wrong ciphertext bits, catchable only by whichever
 * differential test happens to cover the broken path. This pass is an
 * abstract interpreter over compiler::CompiledCircuit that proves,
 * instruction by instruction and before any cycle is simulated, the
 * invariants the runtime assumes:
 *
 *  - the slot-action log is well-formed (sequential ids, no double
 *    release, extend only of live q-base records) and never exceeds
 *    the BRAM slot capacity; its high-water mark matches peak_slots;
 *  - every record an instruction or transfer touches is allocated, and
 *    operand data is defined before it is read (uploads cover every
 *    used non-resident input; WordDecomp digits, key buffers and lift
 *    extensions are written before consumption);
 *  - no record is used after its slots were consumed: the action log
 *    admits a monotone placement against program order in which every
 *    release happens after its record's last use and every (re)allocation
 *    before its record's first use — the static guarantee that lets
 *    physical slot reuse never alias live data;
 *  - per-residue layout typestate (natural / paired / NTT domain) is
 *    consistent with what every ISA op consumes and produces;
 *  - level and basis shapes agree: kq - l digit counts through
 *    Lift/Scale/ModSwitch/Relin, records pre-extended by fused replay,
 *    mod-switch destinations one level deeper than their sources;
 *  - kKeyLoad selectors reference registered key sets (relin only when
 *    the circuit relinearizes, Galois only for elements the compiled
 *    circuit declares) and every kAutomorph element is declared;
 *  - pinned resident-prefix records are never spilled, consumed,
 *    extended or written — the property that makes warm reruns sound;
 *  - every declared circuit output is downloaded from a defined record.
 *
 * Violations are structured Diagnostics (instruction index, opcode,
 * record id, invariant, expected/actual), not a bool — the mutation
 * harness in tests/test_verify.cc asserts each corruption class maps to
 * the right diagnostic. Wiring: CompilerOptions::verify runs the pass
 * on every compileCircuit, the ExecutionService verifies at submission
 * admission, and `heat_cli verify` prints the diagnostic table.
 */

#ifndef HEAT_VERIFY_VERIFY_H
#define HEAT_VERIFY_VERIFY_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "hw/isa.h"
#include "hw/memory_file.h"

namespace heat::verify {

/** Invariant families the verifier proves (one per Diagnostic). */
enum class Invariant : uint8_t
{
    kSlotLog,         ///< slot-action log ill-formed
    kSlotCapacity,    ///< BRAM capacity exceeded / peak_slots mismatch
    kDefBeforeUse,    ///< operand read while undefined / not uploaded
    kUseAfterConsume, ///< released slots reused while still live
    kLayout,          ///< coefficient-vs-NTT typestate violation
    kShape,           ///< level / base / digit-count disagreement
    kKey,             ///< key selector not registered for the circuit
    kPinned,          ///< resident-prefix record mutated or released
    kOutput,          ///< declared output not live at program end
};

/** @return a printable invariant name ("layout", "pinned", ...). */
const char *invariantName(Invariant inv);

/** Sentinel for "no segment / instruction / action index". */
constexpr size_t kNoIndex = ~size_t(0);

/** One statically-proven violation. */
struct Diagnostic
{
    Invariant invariant = Invariant::kSlotLog;
    /** Segment of the offending instruction or transfer (kNoIndex for
     *  slot-log and whole-circuit diagnostics). */
    size_t segment = kNoIndex;
    /** Instruction index within the segment's program (kNoIndex for
     *  transfer, slot-log and whole-circuit diagnostics). */
    size_t instr = kNoIndex;
    /** Index into CompiledCircuit::slot_actions for log diagnostics. */
    size_t action = kNoIndex;
    /** Offending opcode; valid only when has_op is set. */
    bool has_op = false;
    hw::Opcode op = hw::Opcode::kNtt;
    /** Offending memory-file record (hw::kNoPoly when not applicable). */
    hw::PolyId record = hw::kNoPoly;
    /** What the invariant requires, e.g. "layout kPaired". */
    std::string expected;
    /** What the program actually has, e.g. "layout kNatural". */
    std::string actual;
    /** Human-readable one-line description. */
    std::string message;

    /** @return a one-line rendering ("[layout] seg 0 instr 12 ..."). */
    std::string str() const;
};

/** Outcome of one verification pass. */
struct VerifyResult
{
    std::vector<Diagnostic> diagnostics;
    /** Records the slot-action log materializes. */
    size_t records = 0;
    /** Instructions checked across all segments. */
    size_t instructions = 0;

    /** @return true when no invariant was violated. */
    bool ok() const { return diagnostics.empty(); }

    /** @return a multi-line diagnostic table (or a one-line "clean"). */
    std::string report() const;
};

/**
 * Statically verify @p compiled. Pure analysis over the compiled
 * artifact — no coprocessor, no ciphertext data, never throws on a
 * violation (callers decide whether diagnostics warn or reject). Cost
 * is linear in instructions + slot actions.
 */
VerifyResult verifyCompiledCircuit(
    const compiler::CompiledCircuit &compiled);

} // namespace heat::verify

#endif // HEAT_VERIFY_VERIFY_H
