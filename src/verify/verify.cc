#include "verify/verify.h"

#include <algorithm>
#include <array>
#include <sstream>
#include <utility>

#include "compiler/circuit.h"

namespace heat::verify {

namespace {

using compiler::CompiledCircuit;
using compiler::Transfer;
using hw::BaseTag;
using hw::Instruction;
using hw::kNoPoly;
using hw::Layout;
using hw::Opcode;
using hw::PolyId;
using hw::SlotAction;

const char *
layoutName(Layout l)
{
    switch (l) {
      case Layout::kNatural:
        return "natural";
      case Layout::kPaired:
        return "paired";
      case Layout::kNttDomain:
        return "ntt-domain";
    }
    return "?";
}

/**
 * Abstract state of one memory-file record, materialized from the
 * slot-action log exactly the way replaySlotActions() does before a
 * run: records carry their final (extend-applied) shape, and the
 * interpreter tracks per-residue layout typestate plus definedness.
 * A freshly allocated record reads back zeros (the emitters' shared
 * zero constant depends on it), so `written` distinguishes "zero by
 * allocation" from "produced by an upload or instruction".
 */
/** Residue capacity of a record's inline state. The paper's extended
 *  base spans 13 residues; structurallySound() rejects parameter sets
 *  beyond the cap before any record state is built. Inline arrays
 *  keep RecState allocation-free — the verifier runs on every compile
 *  and service admission, so its constant factor matters. */
constexpr size_t kMaxResidues = 64;

struct RecState
{
    bool exists = false;
    bool released = false;
    bool pinned = false;
    BaseTag base = BaseTag::kQ;
    size_t level = 0;
    /** Live q residues (qPrimeCount at the record's level). */
    size_t q_live = 0;
    /** Live residue count (layout/written entries 0..live-1). */
    size_t live = 0;
    std::array<Layout, kMaxResidues> layout{};
    std::array<bool, kMaxResidues> written{};

    size_t residues() const { return live; }
};

/** The verification pass: one instance per verifyCompiledCircuit. */
class Verifier
{
  public:
    explicit Verifier(const CompiledCircuit &compiled)
        : c_(compiled), params_(*compiled.params)
    {
    }

    VerifyResult
    run()
    {
        if (!structurallySound())
            return std::move(result_);
        // Pre-size the id-indexed tables: the log's allocation count
        // bounds every well-formed record id (touchSlot still grows
        // past it for out-of-range ids in broken programs).
        size_t allocs = 0;
        for (const hw::SlotAction &a : c_.slot_actions)
            if (a.kind == hw::SlotAction::Kind::kAllocate)
                ++allocs;
        recs_.reserve(allocs);
        first_touch_.resize(allocs, kNoIndex);
        last_touch_.resize(allocs, kNoIndex);
        first_ext_touch_.resize(allocs, kNoIndex);
        collectTouches();
        replayActions();
        checkResidentPrefix();
        checkConsumeHazards();
        interpretSegments();
        checkInputCoverage();
        checkOutputs();
        return std::move(result_);
    }

  private:
    // --- diagnostics -----------------------------------------------------

    Diagnostic &
    diag(Invariant inv, std::string message)
    {
        Diagnostic d;
        d.invariant = inv;
        d.message = std::move(message);
        result_.diagnostics.push_back(std::move(d));
        return result_.diagnostics.back();
    }

    Diagnostic &
    diagAt(Invariant inv, size_t segment, size_t instr, Opcode op,
           PolyId record, std::string message)
    {
        Diagnostic &d = diag(inv, std::move(message));
        d.segment = segment;
        d.instr = instr;
        d.has_op = true;
        d.op = op;
        d.record = record;
        return d;
    }

    // --- shared bookkeeping ----------------------------------------------

    RecState *
    state(PolyId id)
    {
        return id < recs_.size() && recs_[id].exists ? &recs_[id]
                                                     : nullptr;
    }

    /** Level-capped q-prime count (what qPrimeCount(level) returns). */
    size_t
    qPrimes(size_t level) const
    {
        return params_.qPrimeCount(level);
    }

    /**
     * Residues one instruction batch addresses on @p rec: batch 0 the
     * q primes, batch 1 the extension primes — mirroring
     * hw::residuesOfBatch over the record's live residue count.
     */
    static std::pair<size_t, size_t>
    batchRange(const RecState &rec, uint8_t batch)
    {
        if (batch == 0)
            return {0, std::min(rec.q_live, rec.residues())};
        return {std::min(rec.q_live, rec.residues()), rec.residues()};
    }

    bool
    galoisDeclared(uint32_t g) const
    {
        return std::binary_search(c_.galois_elements.begin(),
                                  c_.galois_elements.end(), g);
    }

    bool
    circuitRelinearizes() const
    {
        for (const compiler::CircuitNode &node : c_.circuit.nodes) {
            if (node.kind == compiler::NodeKind::kRelin)
                return true;
        }
        return false;
    }

    // --- phase 0: structural sanity --------------------------------------

    bool
    structurallySound()
    {
        if (c_.params == nullptr) {
            diag(Invariant::kShape, "compiled circuit has no parameter "
                                    "set");
            return false;
        }
        const size_t values = c_.circuit.nodes.size();
        if (c_.value_sizes.size() != values ||
            c_.value_levels.size() != values) {
            Diagnostic &d =
                diag(Invariant::kShape,
                     "value_sizes/value_levels do not cover the circuit");
            d.expected = std::to_string(values) + " entries";
            d.actual = std::to_string(c_.value_sizes.size()) + "/" +
                       std::to_string(c_.value_levels.size());
            return false;
        }
        if (c_.instr_nodes.size() > c_.segments.size()) {
            diag(Invariant::kShape,
                 "instr_nodes names more segments than exist");
            return false;
        }
        if (c_.params->fullBase()->size() > kMaxResidues) {
            Diagnostic &d =
                diag(Invariant::kShape,
                     "parameter set exceeds the verifier's inline "
                     "residue capacity");
            d.expected = "<= " + std::to_string(kMaxResidues) +
                         " residues";
            d.actual =
                std::to_string(c_.params->fullBase()->size()) +
                " residues";
            return false;
        }
        return true;
    }

    // --- phase 1: program positions --------------------------------------

    /**
     * Assign every upload and instruction a global program position
     * (downloads are excluded: the modeled DMA streams a record's data
     * as of its release point, so a spill download never conflicts
     * with later slot reuse). Records the first/last touch of every
     * record id plus the first touch of its lift-extension residues —
     * the anchors of the monotone consume-hazard check.
     */
    void
    collectTouches()
    {
        size_t pos = 0;
        for (size_t s = 0; s < c_.segments.size(); ++s) {
            const compiler::Segment &seg = c_.segments[s];
            for (const Transfer &t : seg.uploads) {
                // Uploads extend a record's lifetime but do not anchor
                // its first touch: the compiler stages constant uploads
                // at the head of a segment whose slot it allocated
                // mid-segment (after earlier releases), and the record
                // ids those uploads write are fresh by construction.
                touchLast(t.slot, pos);
                ++pos;
            }
            for (size_t i = 0; i < seg.program.instrs.size(); ++i) {
                const Instruction &in = seg.program.instrs[i];
                const size_t p = pos++;
                touch(in.dst, p);
                touch(in.src0, p);
                touch(in.src1, p);
                for (PolyId e : in.extra)
                    touch(e, p);
                // Positions grow monotonically, so try_emplace keeps
                // the FIRST touch of each record's extension residues.
                const auto ext = [&](PolyId id) {
                    if (id == kNoPoly)
                        return;
                    size_t &first = touchSlot(first_ext_touch_, id);
                    if (first == kNoIndex)
                        first = p;
                };
                if (in.op == Opcode::kLift)
                    ext(in.dst);
                if (in.op == Opcode::kScale)
                    ext(in.src0);
                if (in.batch == 1) {
                    ext(in.dst);
                    ext(in.src0);
                    ext(in.src1);
                }
            }
            result_.instructions += seg.program.instrs.size();
        }
    }

    /** Position of @p id in @p table, growing it on demand (record
     *  ids are small and dense; kNoIndex marks "never touched"). */
    static size_t &
    touchSlot(std::vector<size_t> &table, PolyId id)
    {
        if (id >= table.size())
            table.resize(id + 1, kNoIndex);
        return table[id];
    }

    void
    touch(PolyId id, size_t pos)
    {
        if (id == kNoPoly)
            return;
        size_t &first = touchSlot(first_touch_, id);
        if (first == kNoIndex) // positions are monotone
            first = pos;
        touchLast(id, pos);
    }

    void
    touchLast(PolyId id, size_t pos)
    {
        if (id == kNoPoly)
            return;
        touchSlot(last_touch_, id) = pos;
    }

    /** @return the recorded position, or kNoIndex when never touched. */
    static size_t
    touchAt(const std::vector<size_t> &table, PolyId id)
    {
        return id < table.size() ? table[id] : kNoIndex;
    }

    // --- phase 2: slot-action log replay ---------------------------------

    void
    replayActions()
    {
        const size_t capacity = c_.hw.n_rpaus * c_.hw.slots_per_rpau;
        const size_t q_residues = params_.qBase()->size();
        const size_t full_residues = params_.fullBase()->size();
        const size_t pinned_count = 2 * c_.resident_inputs.size();
        size_t in_use = 0;
        size_t peak = 0;
        PolyId next_id = 0;

        for (size_t a = 0; a < c_.slot_actions.size(); ++a) {
            const SlotAction &act = c_.slot_actions[a];
            switch (act.kind) {
              case SlotAction::Kind::kAllocate: {
                if (act.id != next_id) {
                    Diagnostic &d = diag(
                        Invariant::kSlotLog,
                        "slot log allocates out of sequence (replay "
                        "would diverge on a fresh memory file)");
                    d.action = a;
                    d.record = act.id;
                    d.expected = "id " + std::to_string(next_id);
                    d.actual = "id " + std::to_string(act.id);
                }
                if (act.level > params_.maxLevel()) {
                    Diagnostic &d =
                        diag(Invariant::kShape,
                             "allocation level beyond the last level");
                    d.action = a;
                    d.record = act.id;
                    d.expected =
                        "level <= " + std::to_string(params_.maxLevel());
                    d.actual = "level " + std::to_string(act.level);
                    break;
                }
                const size_t base_residues = act.base == BaseTag::kQ
                                                 ? q_residues
                                                 : full_residues;
                const size_t live = base_residues - act.level;
                in_use += live;
                peak = std::max(peak, in_use);
                if (in_use > capacity) {
                    Diagnostic &d = diag(
                        Invariant::kSlotCapacity,
                        "slot-action log oversubscribes the memory "
                        "file (a worker replay would abort)");
                    d.action = a;
                    d.record = act.id;
                    d.expected =
                        "<= " + std::to_string(capacity) + " slots";
                    d.actual = std::to_string(in_use) + " slots";
                }
                RecState rec;
                rec.exists = true;
                rec.base = act.base;
                rec.level = act.level;
                rec.q_live = qPrimes(act.level);
                rec.live = live;
                rec.layout.fill(act.layout);
                rec.pinned = act.id < pinned_count;
                if (rec.pinned) {
                    // The cold pass uploads pinned operands directly
                    // (outside the transfer lists) and warm reruns
                    // inherit their data; both enter in coefficient
                    // order, fully defined.
                    rec.written.fill(true);
                }
                if (act.id >= recs_.size())
                    recs_.resize(act.id + 1);
                recs_[act.id] = std::move(rec);
                next_id = std::max(next_id, act.id) + 1;
                break;
              }
              case SlotAction::Kind::kRelease: {
                RecState *rec = state(act.id);
                if (rec == nullptr) {
                    Diagnostic &d =
                        diag(Invariant::kSlotLog,
                             "release of an unallocated record");
                    d.action = a;
                    d.record = act.id;
                    break;
                }
                if (rec->released) {
                    Diagnostic &d = diag(Invariant::kSlotLog,
                                         "double release of a record");
                    d.action = a;
                    d.record = act.id;
                    break;
                }
                if (rec->pinned) {
                    Diagnostic &d = diag(
                        Invariant::kPinned,
                        "release of a pinned resident-prefix record "
                        "(its slots must survive warm reruns)");
                    d.action = a;
                    d.record = act.id;
                    break;
                }
                const size_t base_residues = rec->base == BaseTag::kQ
                                                 ? q_residues
                                                 : full_residues;
                in_use -= base_residues - rec->level;
                rec->released = true;
                break;
              }
              case SlotAction::Kind::kExtend: {
                RecState *rec = state(act.id);
                if (rec == nullptr) {
                    Diagnostic &d =
                        diag(Invariant::kSlotLog,
                             "extend of an unallocated record");
                    d.action = a;
                    d.record = act.id;
                    break;
                }
                if (rec->base != BaseTag::kQ || rec->released) {
                    Diagnostic &d = diag(
                        Invariant::kSlotLog,
                        rec->released
                            ? "extend of a released record"
                            : "extend of an already-extended record");
                    d.action = a;
                    d.record = act.id;
                    break;
                }
                if (rec->pinned) {
                    Diagnostic &d =
                        diag(Invariant::kPinned,
                             "lift extension of a pinned resident-"
                             "prefix record (demotes the warm cache)");
                    d.action = a;
                    d.record = act.id;
                    break;
                }
                in_use += full_residues - q_residues;
                peak = std::max(peak, in_use);
                if (in_use > capacity) {
                    Diagnostic &d = diag(
                        Invariant::kSlotCapacity,
                        "lift extension oversubscribes the memory file");
                    d.action = a;
                    d.record = act.id;
                    d.expected =
                        "<= " + std::to_string(capacity) + " slots";
                    d.actual = std::to_string(in_use) + " slots";
                }
                rec->base = BaseTag::kFull;
                const size_t live = full_residues - rec->level;
                for (size_t k = rec->live; k < live; ++k) {
                    rec->layout[k] = Layout::kNatural;
                    rec->written[k] = false;
                }
                rec->live = live;
                break;
              }
            }
        }
        result_.records = recs_.size();

        if (peak != c_.peak_slots) {
            Diagnostic &d = diag(
                Invariant::kSlotCapacity,
                "slot-action log disagrees with the recorded peak "
                "(the log is not the one this circuit was built with)");
            d.expected = std::to_string(c_.peak_slots) + " peak slots";
            d.actual = std::to_string(peak) + " peak slots";
        }
    }

    // --- phase 3: resident-prefix shape ----------------------------------

    void
    checkResidentPrefix()
    {
        const size_t pinned_count = 2 * c_.resident_inputs.size();
        if (pinned_count == 0) {
            if (c_.resident_action_count != 0)
                diag(Invariant::kPinned,
                     "resident_action_count nonzero without resident "
                     "inputs");
            return;
        }
        if (c_.resident_action_count > c_.slot_actions.size() ||
            c_.resident_action_count != pinned_count) {
            Diagnostic &d = diag(
                Invariant::kPinned,
                "resident action prefix does not cover exactly the "
                "pinned slot pairs (warm replay would misalign)");
            d.expected = std::to_string(pinned_count) + " actions";
            d.actual = std::to_string(c_.resident_action_count);
            return;
        }
        for (size_t a = 0; a < c_.resident_action_count; ++a) {
            const SlotAction &act = c_.slot_actions[a];
            if (act.kind != SlotAction::Kind::kAllocate ||
                act.id != a) {
                Diagnostic &d =
                    diag(Invariant::kPinned,
                         "resident prefix action is not the pinned "
                         "record's allocation");
                d.action = a;
                d.record = act.id;
                return;
            }
        }
        for (size_t k = 0; k < c_.resident_slots.size(); ++k) {
            for (PolyId slot : c_.resident_slots[k]) {
                if (slot >= pinned_count) {
                    Diagnostic &d = diag(
                        Invariant::kPinned,
                        "resident slot pair escapes the pinned prefix");
                    d.record = slot;
                }
            }
        }
    }

    // --- phase 4: consume hazards ----------------------------------------

    /**
     * The compiler's static slot accounting is sound iff the action
     * log admits a monotone placement against program order: walking
     * the log with a cursor that jumps past a released record's last
     * use, every subsequent allocation (or lift extension) must first
     * touch its slots at or after the cursor — otherwise a record is
     * read or written while slots freed for it still hold live data,
     * which on the physical memory file is silent corruption (the
     * simulator masks it by keeping released records readable).
     */
    void
    checkConsumeHazards()
    {
        size_t cursor = 0;
        PolyId freed_by = kNoPoly;
        for (size_t a = 0; a < c_.slot_actions.size(); ++a) {
            const SlotAction &act = c_.slot_actions[a];
            switch (act.kind) {
              case SlotAction::Kind::kRelease: {
                const size_t last = touchAt(last_touch_, act.id);
                if (last != kNoIndex && last + 1 > cursor) {
                    cursor = last + 1;
                    freed_by = act.id;
                }
                break;
              }
              case SlotAction::Kind::kAllocate: {
                const size_t first = touchAt(first_touch_, act.id);
                if (first != kNoIndex && first < cursor)
                    consumeHazard(a, act.id, first, freed_by);
                break;
              }
              case SlotAction::Kind::kExtend: {
                const size_t first = touchAt(first_ext_touch_, act.id);
                if (first != kNoIndex && first < cursor)
                    consumeHazard(a, act.id, first, freed_by);
                break;
              }
            }
        }
    }

    void
    consumeHazard(size_t action, PolyId id, size_t pos, PolyId freed_by)
    {
        Diagnostic &d = diag(
            Invariant::kUseAfterConsume,
            "record " + std::to_string(id) +
                " occupies slots of record " + std::to_string(freed_by) +
                " before that record's last use — released slots "
                "reused while still live");
        d.action = action;
        d.record = id;
        d.expected = "first use after record " +
                     std::to_string(freed_by) + "'s last use";
        // Resolve the clashing touch to (segment, instruction) when it
        // is an instruction (upload positions keep kNoIndex).
        size_t seen = 0;
        for (size_t s = 0; s < c_.segments.size(); ++s) {
            const compiler::Segment &seg = c_.segments[s];
            const size_t instr_base = seen + seg.uploads.size();
            const size_t seg_end =
                instr_base + seg.program.instrs.size();
            if (pos < seg_end) {
                if (pos >= instr_base) {
                    d.segment = s;
                    d.instr = pos - instr_base;
                    d.has_op = true;
                    d.op = seg.program.instrs[d.instr].op;
                }
                break;
            }
            seen = seg_end;
        }
    }

    // --- phase 5: abstract interpretation of the segments ----------------

    void
    interpretSegments()
    {
        // Values whose data the host holds when a segment opens:
        // circuit inputs arrive with the request; spill downloads of
        // segment s are host-visible from segment s+1 (the compiler
        // breaks segments exactly so reload uploads follow the DMA).
        std::vector<bool> host(c_.circuit.nodes.size(), false);
        for (compiler::ValueId v : c_.inputs)
            if (v < host.size())
                host[v] = true;

        for (size_t s = 0; s < c_.segments.size(); ++s) {
            const compiler::Segment &seg = c_.segments[s];
            for (size_t u = 0; u < seg.uploads.size(); ++u)
                applyUpload(s, seg.uploads[u], host);
            for (size_t i = 0; i < seg.program.instrs.size(); ++i)
                interpret(s, i, seg.program.instrs[i]);
            for (const Transfer &t : seg.downloads) {
                applyDownload(s, t);
                if (t.source == Transfer::Source::kValue &&
                    t.index < host.size())
                    host[t.index] = true;
            }
        }
    }

    void
    applyUpload(size_t s, const Transfer &t, const std::vector<bool> &host)
    {
        RecState *rec = state(t.slot);
        if (rec == nullptr) {
            Diagnostic &d =
                diag(Invariant::kDefBeforeUse,
                     "upload targets a record the slot log never "
                     "allocates");
            d.segment = s;
            d.record = t.slot;
            return;
        }
        if (rec->pinned) {
            Diagnostic &d = diag(
                Invariant::kPinned,
                "upload overwrites a pinned resident-prefix record");
            d.segment = s;
            d.record = t.slot;
            return;
        }
        size_t live = rec->q_live;
        if (t.source == Transfer::Source::kValue) {
            if (t.index >= c_.value_levels.size()) {
                Diagnostic &d = diag(Invariant::kShape,
                                     "upload of an unknown value id");
                d.segment = s;
                d.record = t.slot;
                return;
            }
            if (!host[t.index]) {
                Diagnostic &d = diag(
                    Invariant::kDefBeforeUse,
                    "upload of value " + std::to_string(t.index) +
                        " before the host holds its data (not an "
                        "input, no prior spill download)");
                d.segment = s;
                d.record = t.slot;
            }
            const size_t value_level = c_.value_levels[t.index];
            if (rec->level != value_level) {
                Diagnostic &d =
                    diag(Invariant::kShape,
                         "upload record level disagrees with the "
                         "value's level");
                d.segment = s;
                d.record = t.slot;
                d.expected = "level " + std::to_string(value_level);
                d.actual = "level " + std::to_string(rec->level);
            }
            live = qPrimes(value_level);
        } else {
            if (t.index >= c_.constants.size()) {
                Diagnostic &d =
                    diag(Invariant::kShape,
                         "upload references a constant outside the "
                         "pool");
                d.segment = s;
                d.record = t.slot;
                d.expected = "< " + std::to_string(c_.constants.size());
                d.actual = std::to_string(t.index);
                return;
            }
            const size_t residues =
                c_.constants[t.index].residueCount();
            if (residues != rec->q_live) {
                Diagnostic &d =
                    diag(Invariant::kShape,
                         "constant residue count disagrees with the "
                         "staged record's level");
                d.segment = s;
                d.record = t.slot;
                d.expected = std::to_string(rec->q_live) + " residues";
                d.actual = std::to_string(residues) + " residues";
            }
            live = std::min(residues, rec->residues());
        }
        // uploadInto(): operand data lands in coefficient order and
        // any lift-extension residues are cleared.
        for (size_t k = 0; k < rec->residues(); ++k) {
            rec->layout[k] = Layout::kNatural;
            rec->written[k] = k < live;
        }
    }

    void
    applyDownload(size_t s, const Transfer &t)
    {
        RecState *rec = state(t.slot);
        if (rec == nullptr) {
            Diagnostic &d =
                diag(Invariant::kDefBeforeUse,
                     "download from a record the slot log never "
                     "allocates");
            d.segment = s;
            d.record = t.slot;
            return;
        }
        for (size_t k = 0; k < std::min(rec->q_live, rec->residues());
             ++k) {
            if (!rec->written[k]) {
                Diagnostic &d = diag(
                    Invariant::kDefBeforeUse,
                    "download of a record nothing ever wrote (residue " +
                        std::to_string(k) + ")");
                d.segment = s;
                d.record = t.slot;
                return;
            }
        }
        if (t.source == Transfer::Source::kValue &&
            t.index < c_.value_levels.size() &&
            rec->level != c_.value_levels[t.index]) {
            Diagnostic &d =
                diag(Invariant::kShape,
                     "download record level disagrees with the value's "
                     "level");
            d.segment = s;
            d.record = t.slot;
            d.expected =
                "level " + std::to_string(c_.value_levels[t.index]);
            d.actual = "level " + std::to_string(rec->level);
        }
    }

    // --- per-instruction interpretation ----------------------------------

    RecState *
    operand(size_t s, size_t i, const Instruction &in, PolyId id,
            const char *role)
    {
        RecState *rec = state(id);
        if (rec == nullptr)
            diagAt(Invariant::kDefBeforeUse, s, i, in.op, id,
                   std::string(role) +
                       " names a record the slot log never allocates");
        return rec;
    }

    /** Flag a write into the pinned resident prefix. */
    bool
    guardPinnedWrite(size_t s, size_t i, const Instruction &in,
                     const RecState &rec, PolyId id)
    {
        if (!rec.pinned)
            return false;
        diagAt(Invariant::kPinned, s, i, in.op, id,
               "instruction writes a pinned resident-prefix record "
               "(warm reruns would see corrupted operands)");
        return true;
    }

    void
    interpret(size_t s, size_t i, const Instruction &in)
    {
        switch (in.op) {
          case Opcode::kNtt:
          case Opcode::kIntt:
            interpretTransform(s, i, in);
            return;
          case Opcode::kRearrange:
            interpretRearrange(s, i, in);
            return;
          case Opcode::kCoeffMul:
          case Opcode::kCoeffAdd:
          case Opcode::kCoeffSub:
            interpretCoeffOp(s, i, in);
            return;
          case Opcode::kLift:
            interpretLift(s, i, in);
            return;
          case Opcode::kScale:
            interpretScale(s, i, in);
            return;
          case Opcode::kModSwitch:
            interpretModSwitch(s, i, in);
            return;
          case Opcode::kAutomorph:
            interpretAutomorph(s, i, in);
            return;
          case Opcode::kKeyLoad:
            interpretKeyLoad(s, i, in);
            return;
        }
        diagAt(Invariant::kShape, s, i, in.op, in.dst, "unknown opcode");
    }

    void
    interpretTransform(size_t s, size_t i, const Instruction &in)
    {
        RecState *rec = operand(s, i, in, in.dst, "transform target");
        if (rec == nullptr || guardPinnedWrite(s, i, in, *rec, in.dst))
            return;
        const bool forward = in.op == Opcode::kNtt;
        const Layout need =
            forward ? Layout::kPaired : Layout::kNttDomain;
        const Layout produced =
            forward ? Layout::kNttDomain : Layout::kPaired;
        const auto [lo, hi] = batchRange(*rec, in.batch);
        for (size_t k = lo; k < hi; ++k) {
            if (!rec->written[k]) {
                diagAt(Invariant::kDefBeforeUse, s, i, in.op, in.dst,
                       "transform of residues nothing ever wrote");
                return;
            }
            if (rec->layout[k] != need) {
                Diagnostic &d = diagAt(
                    Invariant::kLayout, s, i, in.op, in.dst,
                    forward ? "NTT input must be in paired layout "
                              "(rearrange first)"
                            : "INTT input must be in the NTT domain");
                d.expected = layoutName(need);
                d.actual = layoutName(rec->layout[k]);
                return;
            }
            rec->layout[k] = produced;
        }
    }

    void
    interpretRearrange(size_t s, size_t i, const Instruction &in)
    {
        RecState *rec = operand(s, i, in, in.dst, "rearrange target");
        if (rec == nullptr || guardPinnedWrite(s, i, in, *rec, in.dst))
            return;
        const auto [lo, hi] = batchRange(*rec, in.batch);
        for (size_t k = lo; k < hi; ++k) {
            if (!rec->written[k]) {
                diagAt(Invariant::kDefBeforeUse, s, i, in.op, in.dst,
                       "rearrange of residues nothing ever wrote");
                return;
            }
            if (rec->layout[k] == Layout::kNttDomain) {
                Diagnostic &d = diagAt(
                    Invariant::kLayout, s, i, in.op, in.dst,
                    "cannot rearrange NTT-domain data; INTT first");
                d.expected = "natural or paired";
                d.actual = layoutName(rec->layout[k]);
                return;
            }
            rec->layout[k] = rec->layout[k] == Layout::kNatural
                                 ? Layout::kPaired
                                 : Layout::kNatural;
        }
    }

    void
    interpretCoeffOp(size_t s, size_t i, const Instruction &in)
    {
        RecState *dst = operand(s, i, in, in.dst, "coeff-op dst");
        RecState *a = operand(s, i, in, in.src0, "coeff-op src0");
        RecState *b = operand(s, i, in, in.src1, "coeff-op src1");
        if (dst == nullptr || a == nullptr || b == nullptr)
            return;
        if (guardPinnedWrite(s, i, in, *dst, in.dst))
            return;
        if (in.batch == 1 && dst->base != a->base) {
            Diagnostic &d =
                diagAt(Invariant::kShape, s, i, in.op, in.src0,
                       "batch-1 coeff op needs matching bases");
            d.expected = dst->base == BaseTag::kFull ? "full base"
                                                     : "q base";
            d.actual = a->base == BaseTag::kFull ? "full base"
                                                 : "q base";
            return;
        }
        // The reads may legitimately hit a never-written record: the
        // emitters' shared zero constant is a freshly-allocated (and
        // therefore zeroed) slot that only ever feeds additive ops.
        const bool zero_ok = in.op != Opcode::kCoeffMul;
        const auto [lo, hi] = batchRange(*dst, in.batch);
        for (size_t k = lo; k < hi; ++k) {
            if (k >= a->residues() || k >= b->residues()) {
                RecState *small = k >= a->residues() ? a : b;
                Diagnostic &d = diagAt(
                    Invariant::kShape, s, i, in.op,
                    k >= a->residues() ? in.src0 : in.src1,
                    "operand spans fewer residues than the "
                    "destination batch (level/base mismatch)");
                d.expected = ">= " + std::to_string(hi) + " residues";
                d.actual =
                    std::to_string(small->residues()) + " residues";
                return;
            }
            if ((!a->written[k] && !zero_ok) ||
                (!b->written[k] && !zero_ok)) {
                diagAt(Invariant::kDefBeforeUse, s, i, in.op,
                       !a->written[k] ? in.src0 : in.src1,
                       "multiplicative coeff op reads residues "
                       "nothing ever wrote");
                return;
            }
            if (a->layout[k] != b->layout[k]) {
                Diagnostic &d =
                    diagAt(Invariant::kLayout, s, i, in.op, in.src1,
                           "coeff op operand layout mismatch");
                d.expected = layoutName(a->layout[k]);
                d.actual = layoutName(b->layout[k]);
                return;
            }
            dst->layout[k] = a->layout[k];
            dst->written[k] = true;
        }
    }

    void
    interpretLift(size_t s, size_t i, const Instruction &in)
    {
        RecState *rec = operand(s, i, in, in.dst, "lift target");
        if (rec == nullptr || guardPinnedWrite(s, i, in, *rec, in.dst))
            return;
        if (rec->base != BaseTag::kFull) {
            Diagnostic &d = diagAt(
                Invariant::kShape, s, i, in.op, in.dst,
                "lift of a record the slot log never extended to the "
                "full base");
            d.expected = "full base (pre-extended)";
            d.actual = "q base";
            return;
        }
        const size_t kq = std::min(rec->q_live, rec->residues());
        for (size_t k = 0; k < kq; ++k) {
            if (!rec->written[k]) {
                diagAt(Invariant::kDefBeforeUse, s, i, in.op, in.dst,
                       "lift of q residues nothing ever wrote");
                return;
            }
            if (rec->layout[k] != Layout::kNatural) {
                Diagnostic &d =
                    diagAt(Invariant::kLayout, s, i, in.op, in.dst,
                           "lift input must be in natural order");
                d.expected = "natural";
                d.actual = layoutName(rec->layout[k]);
                return;
            }
        }
        for (size_t k = kq; k < rec->residues(); ++k) {
            rec->layout[k] = Layout::kNatural;
            rec->written[k] = true;
        }
    }

    void
    interpretScale(size_t s, size_t i, const Instruction &in)
    {
        RecState *src = operand(s, i, in, in.src0, "scale source");
        RecState *dst = operand(s, i, in, in.dst, "scale dst");
        if (src == nullptr || dst == nullptr)
            return;
        if (guardPinnedWrite(s, i, in, *dst, in.dst))
            return;
        if (in.dst == in.src0) {
            diagAt(Invariant::kShape, s, i, in.op, in.dst,
                   "scale cannot stream onto its own source record");
            return;
        }
        if (src->base != BaseTag::kFull) {
            Diagnostic &d = diagAt(Invariant::kShape, s, i, in.op,
                                   in.src0,
                                   "scale input must span the full "
                                   "base (lift it first)");
            d.expected = "full base";
            d.actual = "q base";
            return;
        }
        for (size_t k = 0; k < src->residues(); ++k) {
            if (!src->written[k]) {
                diagAt(Invariant::kDefBeforeUse, s, i, in.op, in.src0,
                       "scale reads extension residues nothing ever "
                       "wrote (missing lift)");
                return;
            }
            if (src->layout[k] != Layout::kNatural) {
                Diagnostic &d =
                    diagAt(Invariant::kLayout, s, i, in.op, in.src0,
                           "scale input must be in natural order");
                d.expected = "natural";
                d.actual = layoutName(src->layout[k]);
                return;
            }
        }
        const size_t kq = qPrimes(src->level);
        if (dst->level != src->level) {
            Diagnostic &d =
                diagAt(Invariant::kShape, s, i, in.op, in.dst,
                       "scale destination level disagrees with the "
                       "source");
            d.expected = "level " + std::to_string(src->level);
            d.actual = "level " + std::to_string(dst->level);
            return;
        }
        if (!in.extra.empty() && in.extra.size() != kq) {
            Diagnostic &d =
                diagAt(Invariant::kShape, s, i, in.op, in.dst,
                       "WordDecomp broadcast needs one digit lane per "
                       "live q prime");
            d.expected = std::to_string(kq) + " lanes";
            d.actual = std::to_string(in.extra.size()) + " lanes";
            return;
        }
        for (size_t k = 0; k < std::min(kq, dst->residues()); ++k) {
            dst->layout[k] = Layout::kNatural;
            dst->written[k] = true;
        }
        for (size_t k = kq; k < dst->residues(); ++k)
            dst->layout[k] = Layout::kNatural;
        for (PolyId id : in.extra) {
            RecState *dig = operand(s, i, in, id, "WordDecomp digit");
            if (dig == nullptr)
                return;
            if (guardPinnedWrite(s, i, in, *dig, id))
                return;
            if (dig->residues() < kq) {
                Diagnostic &d =
                    diagAt(Invariant::kShape, s, i, in.op, id,
                           "digit record spans fewer residues than "
                           "the broadcast writes");
                d.expected = ">= " + std::to_string(kq) + " residues";
                d.actual =
                    std::to_string(dig->residues()) + " residues";
                return;
            }
            for (size_t k = 0; k < dig->residues(); ++k) {
                dig->layout[k] = Layout::kNatural;
                dig->written[k] = k < kq;
            }
        }
    }

    void
    interpretModSwitch(size_t s, size_t i, const Instruction &in)
    {
        RecState *src = operand(s, i, in, in.src0, "mod-switch source");
        RecState *dst = operand(s, i, in, in.dst, "mod-switch dst");
        if (src == nullptr || dst == nullptr)
            return;
        if (guardPinnedWrite(s, i, in, *dst, in.dst))
            return;
        if (src->level >= params_.maxLevel()) {
            Diagnostic &d =
                diagAt(Invariant::kShape, s, i, in.op, in.src0,
                       "mod-switch from the last level");
            d.expected =
                "level < " + std::to_string(params_.maxLevel());
            d.actual = "level " + std::to_string(src->level);
            return;
        }
        if (dst->level != src->level + 1) {
            Diagnostic &d =
                diagAt(Invariant::kShape, s, i, in.op, in.dst,
                       "mod-switch destination must sit one level "
                       "deeper than its source");
            d.expected = "level " + std::to_string(src->level + 1);
            d.actual = "level " + std::to_string(dst->level);
            return;
        }
        const size_t live = qPrimes(src->level);
        for (size_t k = 0; k < std::min(live, src->residues()); ++k) {
            if (!src->written[k]) {
                diagAt(Invariant::kDefBeforeUse, s, i, in.op, in.src0,
                       "mod-switch reads residues nothing ever wrote");
                return;
            }
            if (src->layout[k] != Layout::kNatural) {
                Diagnostic &d =
                    diagAt(Invariant::kLayout, s, i, in.op, in.src0,
                           "mod-switch input must be in natural order");
                d.expected = "natural";
                d.actual = layoutName(src->layout[k]);
                return;
            }
        }
        for (size_t k = 0; k + 1 < live && k < dst->residues(); ++k) {
            dst->layout[k] = Layout::kNatural;
            dst->written[k] = true;
        }
    }

    void
    interpretAutomorph(size_t s, size_t i, const Instruction &in)
    {
        RecState *src = operand(s, i, in, in.src0, "automorph source");
        if (src == nullptr)
            return;
        if (in.dst == in.src0) {
            diagAt(Invariant::kShape, s, i, in.op, in.dst,
                   "automorphism cannot permute a slot onto itself");
            return;
        }
        if (in.dst == kNoPoly && in.extra.empty()) {
            diagAt(Invariant::kShape, s, i, in.op, in.src0,
                   "automorphism needs a destination or digit "
                   "broadcasts");
            return;
        }
        if (in.aux != 1 && !galoisDeclared(in.aux)) {
            Diagnostic &d = diagAt(
                Invariant::kKey, s, i, in.op, in.src0,
                "automorphism element is not declared in "
                "galois_elements (no executing coprocessor is "
                "guaranteed to hold its key)");
            d.expected = "declared Galois element";
            d.actual = "element " + std::to_string(in.aux);
            return;
        }
        const size_t kq =
            std::min(qPrimes(src->level), src->residues());
        Layout layout = Layout::kNatural;
        for (size_t k = 0; k < kq; ++k) {
            if (!src->written[k]) {
                diagAt(Invariant::kDefBeforeUse, s, i, in.op, in.src0,
                       "automorphism of residues nothing ever wrote");
                return;
            }
            if (k == 0) {
                layout = src->layout[k];
            } else if (src->layout[k] != layout) {
                Diagnostic &d =
                    diagAt(Invariant::kLayout, s, i, in.op, in.src0,
                           "automorphism input layout is mixed");
                d.expected = layoutName(layout);
                d.actual = layoutName(src->layout[k]);
                return;
            }
        }
        if (layout == Layout::kPaired) {
            Diagnostic &d = diagAt(
                Invariant::kLayout, s, i, in.op, in.src0,
                "cannot permute paired-layout data; rearrange first");
            d.expected = "natural or ntt-domain";
            d.actual = "paired";
            return;
        }
        if (layout == Layout::kNttDomain && !in.extra.empty()) {
            diagAt(Invariant::kLayout, s, i, in.op, in.src0,
                   "the WordDecomp broadcast streams coefficient "
                   "order; NTT-domain automorphisms cannot emit "
                   "digits");
            return;
        }
        if (!in.extra.empty() && in.extra.size() != kq) {
            Diagnostic &d =
                diagAt(Invariant::kShape, s, i, in.op, in.src0,
                       "digit broadcast needs one lane per live q "
                       "prime");
            d.expected = std::to_string(kq) + " lanes";
            d.actual = std::to_string(in.extra.size()) + " lanes";
            return;
        }
        if (in.dst != kNoPoly) {
            RecState *dst =
                operand(s, i, in, in.dst, "automorph destination");
            if (dst == nullptr)
                return;
            if (guardPinnedWrite(s, i, in, *dst, in.dst))
                return;
            if (dst->residues() < kq) {
                Diagnostic &d =
                    diagAt(Invariant::kShape, s, i, in.op, in.dst,
                           "automorphism destination record too small");
                d.expected = ">= " + std::to_string(kq) + " residues";
                d.actual =
                    std::to_string(dst->residues()) + " residues";
                return;
            }
            for (size_t k = 0; k < kq; ++k) {
                dst->layout[k] = layout;
                dst->written[k] = true;
            }
        }
        for (PolyId id : in.extra) {
            if (id == kNoPoly)
                continue; // disabled broadcast lane
            RecState *dig = operand(s, i, in, id, "WordDecomp digit");
            if (dig == nullptr)
                return;
            if (guardPinnedWrite(s, i, in, *dig, id))
                return;
            if (dig->residues() < kq) {
                Diagnostic &d =
                    diagAt(Invariant::kShape, s, i, in.op, id,
                           "digit record spans fewer residues than "
                           "the broadcast writes");
                d.expected = ">= " + std::to_string(kq) + " residues";
                d.actual =
                    std::to_string(dig->residues()) + " residues";
                return;
            }
            for (size_t k = 0; k < dig->residues(); ++k) {
                dig->layout[k] = Layout::kNatural;
                dig->written[k] = k < kq;
            }
        }
    }

    void
    interpretKeyLoad(size_t s, size_t i, const Instruction &in)
    {
        const uint32_t selector = hw::keyLoadSelector(in.aux);
        const uint32_t digit = hw::keyLoadDigit(in.aux);
        if (selector == 0) {
            if (!circuitRelinearizes()) {
                diagAt(Invariant::kKey, s, i, in.op, kNoPoly,
                       "program loads relinearization keys but the "
                       "circuit never relinearizes");
                return;
            }
        } else if (!galoisDeclared(selector)) {
            Diagnostic &d = diagAt(
                Invariant::kKey, s, i, in.op, kNoPoly,
                "key load selects a Galois element the compiled "
                "circuit does not declare");
            d.expected = "declared Galois element";
            d.actual = "element " + std::to_string(selector);
            return;
        }
        if (digit >= params_.rnsDigitCount(0)) {
            Diagnostic &d = diagAt(Invariant::kKey, s, i, in.op,
                                   kNoPoly, "key digit out of range");
            d.expected =
                "< " + std::to_string(params_.rnsDigitCount(0));
            d.actual = "digit " + std::to_string(digit);
            return;
        }
        if (in.extra.size() != 2) {
            Diagnostic &d =
                diagAt(Invariant::kShape, s, i, in.op, kNoPoly,
                       "key load needs two buffer targets");
            d.expected = "2 buffers";
            d.actual = std::to_string(in.extra.size()) + " buffers";
            return;
        }
        for (PolyId id : in.extra) {
            RecState *buf = operand(s, i, in, id, "key buffer");
            if (buf == nullptr)
                return;
            if (guardPinnedWrite(s, i, in, *buf, id))
                return;
            // Keys stream in pre-transformed; a level-l buffer takes
            // the live-residue prefix of the level-0 key.
            for (size_t k = 0; k < buf->residues(); ++k) {
                buf->layout[k] = Layout::kNttDomain;
                buf->written[k] = true;
            }
        }
    }

    // --- phase 6: interface coverage -------------------------------------

    void
    checkInputCoverage()
    {
        // Which values each node actually reads: an input no node
        // consumes is legitimately never uploaded.
        std::vector<bool> used(c_.circuit.nodes.size(), false);
        for (const compiler::CircuitNode &node : c_.circuit.nodes) {
            for (int a = 0; a < compiler::nodeArgCount(node.kind); ++a)
                if (node.args[a] < used.size())
                    used[node.args[a]] = true;
        }
        std::vector<bool> resident(c_.inputs.size(), false);
        for (uint32_t pos : c_.resident_inputs)
            if (pos < resident.size())
                resident[pos] = true;

        for (size_t pos = 0; pos < c_.inputs.size(); ++pos) {
            const compiler::ValueId v = c_.inputs[pos];
            if (resident[pos] || v >= used.size() || !used[v])
                continue;
            const uint32_t polys = c_.value_sizes[v];
            for (uint32_t p = 0; p < polys; ++p) {
                if (!uploadExists(v, p)) {
                    Diagnostic &d = diag(
                        Invariant::kDefBeforeUse,
                        "input value " + std::to_string(v) +
                            " polynomial " + std::to_string(p) +
                            " is consumed but never uploaded");
                    d.record = kNoPoly;
                    d.expected = "an upload transfer";
                    d.actual = "none";
                }
            }
        }
    }

    bool
    uploadExists(compiler::ValueId v, uint32_t poly) const
    {
        for (const compiler::Segment &seg : c_.segments) {
            for (const Transfer &t : seg.uploads) {
                if (t.source == Transfer::Source::kValue &&
                    t.index == v && t.poly == poly)
                    return true;
            }
        }
        return false;
    }

    void
    checkOutputs()
    {
        for (size_t o = 0; o < c_.outputs.size(); ++o) {
            const compiler::ValueId v = c_.outputs[o];
            if (v >= c_.value_sizes.size())
                continue; // structural diagnostics already emitted
            const uint32_t polys = c_.value_sizes[v];
            for (uint32_t p = 0; p < polys; ++p) {
                if (!downloadExists(v, p)) {
                    Diagnostic &d = diag(
                        Invariant::kOutput,
                        "declared output value " + std::to_string(v) +
                            " polynomial " + std::to_string(p) +
                            " is never downloaded (dead at program "
                            "end)");
                    d.expected = "a download transfer";
                    d.actual = "none";
                }
            }
        }
    }

    bool
    downloadExists(compiler::ValueId v, uint32_t poly) const
    {
        for (const compiler::Segment &seg : c_.segments) {
            for (const Transfer &t : seg.downloads) {
                if (t.source == Transfer::Source::kValue &&
                    t.index == v && t.poly == poly)
                    return true;
            }
        }
        return false;
    }

    const CompiledCircuit &c_;
    const fv::FvParams &params_;
    VerifyResult result_;

    std::vector<RecState> recs_;
    // Touch positions indexed by record id (kNoIndex = never touched;
    // ids are dense, so flat tables beat hashing on the verify path
    // every compile and admission pays for).
    std::vector<size_t> first_touch_;
    std::vector<size_t> last_touch_;
    std::vector<size_t> first_ext_touch_;
};

} // namespace

const char *
invariantName(Invariant inv)
{
    switch (inv) {
      case Invariant::kSlotLog:
        return "slot-log";
      case Invariant::kSlotCapacity:
        return "slot-capacity";
      case Invariant::kDefBeforeUse:
        return "def-before-use";
      case Invariant::kUseAfterConsume:
        return "use-after-consume";
      case Invariant::kLayout:
        return "layout";
      case Invariant::kShape:
        return "shape";
      case Invariant::kKey:
        return "key";
      case Invariant::kPinned:
        return "pinned";
      case Invariant::kOutput:
        return "output";
    }
    return "?";
}

std::string
Diagnostic::str() const
{
    std::ostringstream oss;
    oss << "[" << invariantName(invariant) << "]";
    if (segment != kNoIndex)
        oss << " seg " << segment;
    if (instr != kNoIndex) {
        oss << " instr " << instr;
        if (has_op)
            oss << " (" << hw::opcodeName(op) << ")";
    } else if (action != kNoIndex) {
        oss << " action " << action;
    }
    if (record != hw::kNoPoly)
        oss << " record " << record;
    oss << ": " << message;
    if (!expected.empty() || !actual.empty())
        oss << " (expected " << expected << ", got " << actual << ")";
    return oss.str();
}

std::string
VerifyResult::report() const
{
    std::ostringstream oss;
    if (ok()) {
        oss << "verified clean: " << instructions << " instructions, "
            << records << " records";
        return oss.str();
    }
    oss << diagnostics.size() << " invariant violation"
        << (diagnostics.size() == 1 ? "" : "s") << " over "
        << instructions << " instructions:\n";
    for (const Diagnostic &d : diagnostics)
        oss << "  " << d.str() << "\n";
    return oss.str();
}

VerifyResult
verifyCompiledCircuit(const compiler::CompiledCircuit &compiled)
{
    return Verifier(compiled).run();
}

} // namespace heat::verify
