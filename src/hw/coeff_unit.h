/**
 * @file
 * Coefficient-wise arithmetic unit of an RPAU.
 *
 * Executes the Coeff-wise Multiplication/Addition/Subtraction
 * instructions: one 60-bit word (two coefficients) per cycle streamed
 * through the two multiplier/adder lanes, reusing the butterfly cores'
 * arithmetic (Fig. 4 datapath without the butterfly cross-connection).
 */

#ifndef HEAT_HW_COEFF_UNIT_H
#define HEAT_HW_COEFF_UNIT_H

#include <cstdint>
#include <span>

#include "hw/config.h"
#include "rns/modulus.h"

namespace heat::hw {

/** Element-wise polynomial arithmetic: functional + timing. */
class CoeffUnit
{
  public:
    explicit CoeffUnit(const HwConfig &config) : config_(config) {}

    /** dst = a * b mod q, element-wise (through the HW reducer path). */
    void mul(std::span<uint64_t> dst, std::span<const uint64_t> a,
             std::span<const uint64_t> b, const rns::Modulus &q) const;

    /** dst = a + b mod q. */
    void add(std::span<uint64_t> dst, std::span<const uint64_t> a,
             std::span<const uint64_t> b, const rns::Modulus &q) const;

    /** dst = a - b mod q. */
    void sub(std::span<uint64_t> dst, std::span<const uint64_t> a,
             std::span<const uint64_t> b, const rns::Modulus &q) const;

    /** Cycles for one instruction over an n-coefficient polynomial. */
    Cycle
    cycles(size_t degree) const
    {
        return static_cast<Cycle>(degree / 2 +
                                  config_.coeff_pipeline_depth);
    }

  private:
    HwConfig config_;
};

} // namespace heat::hw

#endif // HEAT_HW_COEFF_UNIT_H
