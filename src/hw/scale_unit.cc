#include "hw/scale_unit.h"

#include "common/panic.h"

namespace heat::hw {

ScaleUnit::ScaleUnit(std::shared_ptr<const fv::FvParams> params,
                     const HwConfig &config)
    : params_(std::move(params)), config_(config)
{
}

void
ScaleUnit::run(MemoryFile &memory, PolyId src, PolyId dst,
               const std::vector<PolyId> &digits) const
{
    const PolyRecord &in = memory.record(src);
    panicIf(in.base != BaseTag::kFull, "scale input must be full base");
    for (Layout l : in.layout)
        panicIf(l != Layout::kNatural, "scale input must be natural order");

    // The destination is a q polynomial. Its record may already span
    // the full base when a later instruction of the same fused program
    // lifts it in place (the compiler's static slot schedule extends
    // records up front): physically the q residues are the same slots
    // either way, so Scale simply writes the first kq residues.
    PolyRecord &out = memory.record(dst);

    const size_t n = memory.degree();
    const size_t kq = params_->qBase()->size();
    const size_t kp = params_->pBase()->size();
    const auto &scaler = params_->scaler();
    const auto &back = params_->scaleBackConverter();
    const bool hps = config_.lift_scale_arch == LiftScaleArch::kHps;

    panicIf(!digits.empty() && digits.size() != kq,
            "digit broadcast needs one record per q prime");

    std::vector<uint64_t> full(kq + kp), mid(kp), res(kq);
    for (size_t j = 0; j < n; ++j) {
        for (size_t i = 0; i < kq + kp; ++i)
            full[i] = in.data[i * n + j];
        if (hps) {
            scaler.scale(full, mid);
            back.convert(mid, res);
        } else {
            scaler.scaleExact(full, mid);
            back.convertExact(mid, res);
        }
        for (size_t i = 0; i < kq; ++i)
            out.data[i * n + j] = res[i];

        // WordDecomp broadcast: digit i is residue i reduced modulo
        // every q channel (at most one conditional subtraction).
        for (size_t d = 0; d < digits.size(); ++d) {
            PolyRecord &dig = memory.record(digits[d]);
            for (size_t c = 0; c < kq; ++c) {
                dig.data[c * n + j] =
                    params_->qBase()->modulus(c).reduce(res[d]);
            }
        }
    }
    for (auto &l : out.layout)
        l = Layout::kNatural;
    for (PolyId d : digits) {
        for (auto &l : memory.record(d).layout)
            l = Layout::kNatural;
    }
}

Cycle
ScaleUnit::cycles() const
{
    const size_t n = params_->degree();
    const size_t cores = config_.lift_scale_cores;
    const int beat = config_.lift_scale_arch == LiftScaleArch::kHps
                         ? config_.lift_beat
                         : config_.trad_scale_beat;
    return static_cast<Cycle>(config_.scale_fill +
                              (n + cores - 1) / cores * beat);
}

} // namespace heat::hw
