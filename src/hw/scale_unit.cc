#include "hw/scale_unit.h"

#include "common/panic.h"

namespace heat::hw {

ScaleUnit::ScaleUnit(std::shared_ptr<const fv::FvParams> params,
                     const HwConfig &config)
    : params_(std::move(params)), config_(config)
{
}

void
ScaleUnit::run(MemoryFile &memory, PolyId src, PolyId dst,
               const std::vector<PolyId> &digits) const
{
    const PolyRecord &in = memory.record(src);
    panicIf(in.base != BaseTag::kFull, "scale input must be full base");
    for (Layout l : in.layout)
        panicIf(l != Layout::kNatural, "scale input must be natural order");

    // The destination is a q polynomial. Its record may already span
    // the full base when a later instruction of the same fused program
    // lifts it in place (the compiler's static slot schedule extends
    // records up front): physically the q residues are the same slots
    // either way, so Scale simply writes the first kq residues.
    PolyRecord &out = memory.record(dst);

    const size_t n = memory.degree();
    const size_t level = in.level;
    const size_t kq = params_->qPrimeCount(level);
    const size_t kp = params_->pBase()->size();
    const auto &scaler = params_->scaler(level);
    const auto &back = params_->scaleBackConverter(level);
    const bool hps = config_.lift_scale_arch == LiftScaleArch::kHps;

    panicIf(!digits.empty() && digits.size() != kq,
            "digit broadcast needs one record per q prime");

    std::vector<uint64_t> full(kq + kp), mid(kp), res(kq);
    for (size_t j = 0; j < n; ++j) {
        for (size_t i = 0; i < kq + kp; ++i)
            full[i] = in.data[i * n + j];
        if (hps) {
            scaler.scale(full, mid);
            back.convert(mid, res);
        } else {
            scaler.scaleExact(full, mid);
            back.convertExact(mid, res);
        }
        for (size_t i = 0; i < kq; ++i)
            out.data[i * n + j] = res[i];

        // WordDecomp broadcast: digit i is residue i reduced modulo
        // every q channel (at most one conditional subtraction).
        for (size_t d = 0; d < digits.size(); ++d) {
            PolyRecord &dig = memory.record(digits[d]);
            for (size_t c = 0; c < kq; ++c) {
                dig.data[c * n + j] =
                    params_->qBase(level)->modulus(c).reduce(res[d]);
            }
        }
    }
    for (auto &l : out.layout)
        l = Layout::kNatural;
    for (PolyId d : digits) {
        for (auto &l : memory.record(d).layout)
            l = Layout::kNatural;
    }
}

void
ScaleUnit::runModSwitch(MemoryFile &memory, PolyId src, PolyId dst) const
{
    const PolyRecord &in = memory.record(src);
    PolyRecord &out = memory.record(dst);
    const size_t from_level = in.level;
    panicIf(from_level >= params_->maxLevel(),
            "mod-switch from the last level");
    panicIf(out.level != from_level + 1,
            "mod-switch destination must sit one level deeper");

    const size_t n = memory.degree();
    const size_t live = params_->qPrimeCount(from_level);
    // The record may be slot-extended to the full base ahead of time (a
    // fused program replays its static slot shapes, including a later
    // in-place lift of this operand, before any instruction runs); the
    // mod-switch itself only consumes the live q residues.
    for (size_t i = 0; i < live; ++i)
        panicIf(in.layout[i] != Layout::kNatural,
                "mod-switch input must be natural order");
    const auto &rounder = params_->modSwitchRounder(from_level);
    const bool hps = config_.lift_scale_arch == LiftScaleArch::kHps;

    // Same residue ordering as Evaluator::modSwitchPoly: the dropped
    // prime's residue feeds the rounder's divisor lane first, followed
    // by the surviving residues in basis order — keeping the hardware
    // model and the software evaluator bit-exact.
    std::vector<uint64_t> full(live), next(live - 1);
    for (size_t j = 0; j < n; ++j) {
        full[0] = in.data[(live - 1) * n + j];
        for (size_t i = 0; i + 1 < live; ++i)
            full[i + 1] = in.data[i * n + j];
        if (hps)
            rounder.scale(full, next);
        else
            rounder.scaleExact(full, next);
        for (size_t i = 0; i + 1 < live; ++i)
            out.data[i * n + j] = next[i];
    }
    for (size_t i = 0; i + 1 < live; ++i)
        out.layout[i] = Layout::kNatural;
}

Cycle
ScaleUnit::cycles(size_t level) const
{
    const size_t n = params_->degree();
    const size_t cores = config_.lift_scale_cores;
    const int beat = config_.lift_scale_arch == LiftScaleArch::kHps
                         ? config_.lift_beat
                         : config_.trad_scale_beat;
    // The fractional MAC chain of Block 1 streams one input residue per
    // cycle, so the beat shrinks with the live input lanes (m + kp of
    // the full kq + kp at level 0).
    const size_t kq = params_->qBase()->size();
    const size_t kp = params_->pBase()->size();
    const size_t lanes = params_->qPrimeCount(level) + kp;
    const int level_beat = static_cast<int>(
        (static_cast<size_t>(beat) * lanes + kq + kp - 1) / (kq + kp));
    return static_cast<Cycle>(config_.scale_fill +
                              (n + cores - 1) / cores * level_beat);
}

Cycle
ScaleUnit::modSwitchCycles(size_t level) const
{
    const size_t n = params_->degree();
    const size_t cores = config_.lift_scale_cores;
    const int beat = config_.lift_scale_arch == LiftScaleArch::kHps
                         ? config_.lift_beat
                         : config_.trad_scale_beat;
    // A mod-switch streams only the live q residues (no p extension):
    // the same divide-and-round datapath with far fewer input lanes.
    const size_t kq = params_->qBase()->size();
    const size_t kp = params_->pBase()->size();
    const size_t lanes = params_->qPrimeCount(level);
    int level_beat = static_cast<int>(
        (static_cast<size_t>(beat) * lanes + kq + kp - 1) / (kq + kp));
    if (level_beat < 1)
        level_beat = 1;
    return static_cast<Cycle>(config_.scale_fill +
                              (n + cores - 1) / cores * level_beat);
}

} // namespace heat::hw
