#include "hw/lift_unit.h"

#include "common/panic.h"

namespace heat::hw {

LiftUnit::LiftUnit(std::shared_ptr<const fv::FvParams> params,
                   const HwConfig &config)
    : params_(std::move(params)), config_(config)
{
}

void
LiftUnit::run(MemoryFile &memory, PolyId id) const
{
    const size_t n = memory.degree();
    const size_t level = memory.record(id).level;
    const size_t kq = params_->qPrimeCount(level);
    const size_t kp = params_->pBase()->size();
    const auto &conv = params_->liftConverter(level);

    // The ProgramBuilder pre-extends the record at build time (static
    // slot accounting); a standalone caller may pass a plain q record.
    if (memory.record(id).base == BaseTag::kQ)
        memory.extendToFull(id);
    PolyRecord &full = memory.record(id);
    for (size_t i = 0; i < kq; ++i) {
        panicIf(full.layout[i] != Layout::kNatural,
                "lift input must be natural order");
    }

    std::vector<uint64_t> in(kq), out(kp);
    for (size_t j = 0; j < n; ++j) {
        for (size_t i = 0; i < kq; ++i)
            in[i] = full.data[i * n + j];
        if (config_.lift_scale_arch == LiftScaleArch::kHps)
            conv.convert(in, out);
        else
            conv.convertExact(in, out);
        for (size_t i = 0; i < kp; ++i)
            full.data[(kq + i) * n + j] = out[i];
    }
    for (size_t i = 0; i < kp; ++i)
        full.layout[kq + i] = Layout::kNatural;
}

Cycle
LiftUnit::cycles(size_t level) const
{
    const size_t n = params_->degree();
    const size_t cores = config_.lift_scale_cores;
    const int beat = config_.lift_scale_arch == LiftScaleArch::kHps
                         ? config_.lift_beat
                         : config_.trad_lift_beat;
    // The Block-1/Block-5 sequential chains iterate over the live input
    // residues, so the per-coefficient beat shrinks proportionally when
    // dropped levels leave fewer q lanes to stream.
    const size_t kq = params_->qBase()->size();
    const size_t live = params_->qPrimeCount(level);
    const int level_beat = static_cast<int>(
        (static_cast<size_t>(beat) * live + kq - 1) / kq);
    return static_cast<Cycle>(config_.lift_fill +
                              (n + cores - 1) / cores * level_beat);
}

} // namespace heat::hw
