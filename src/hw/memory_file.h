/**
 * @file
 * The coprocessor's on-chip memory file.
 *
 * Polynomials are stored as residue-polynomial slots of n/2 60-bit words
 * (two coefficients per word, four BRAM36K per slot). Residue k of the
 * paper's 13-prime base maps to RPAU (k < 6 ? k : k - 6) — the resource
 * sharing of Sec. V-A1 — and instructions operate on one of two batches:
 * batch 0 = the q primes, batch 1 = the extension primes.
 *
 * The pool holds 84 slots (Table IV's BRAM budget: 84*4 = 336 BRAM36K
 * for data + 49 for twiddle ROMs + interface = 388). Slot exhaustion is
 * a hard error: FV.Mult must be schedulable inside this budget, and the
 * ProgramBuilder's allocation discipline is part of the reproduction.
 *
 * Each residue carries a layout tag mirroring the physical data order:
 * kNatural (coefficient order, what Lift/Scale stream), kPaired (the
 * bit-reversed paired-word order the NTT engine consumes — REARRANGE
 * converts), and kNttDomain (evaluation order).
 */

#ifndef HEAT_HW_MEMORY_FILE_H
#define HEAT_HW_MEMORY_FILE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "fv/params.h"
#include "hw/config.h"
#include "ntt/rns_poly.h"

namespace heat::hw {

/** Identifier of a polynomial resident in the memory file. */
using PolyId = uint32_t;

/** Sentinel for "no polynomial". */
constexpr PolyId kNoPoly = ~PolyId(0);

/** Physical data order of one residue polynomial. */
enum class Layout : uint8_t
{
    kNatural,  ///< coefficient order (Lift/Scale streaming order)
    kPaired,   ///< paired/bit-reversed word order (NTT engine input)
    kNttDomain ///< evaluation (NTT) order
};

/** Which RNS base a resident polynomial spans. */
enum class BaseTag : uint8_t
{
    kQ,   ///< ciphertext base q
    kFull ///< extended base Q = q * p
};

/** A polynomial resident in the memory file. */
struct PolyRecord
{
    BaseTag base = BaseTag::kQ;
    /** Layout per residue (size = residue count). */
    std::vector<Layout> layout;
    /** Residue-major coefficient data. */
    std::vector<uint64_t> data;
    bool valid = false;
    /** Slots returned to the allocator (record still readable). */
    bool released = false;
};

/** Slot-accounted storage for resident polynomials. */
class MemoryFile
{
  public:
    MemoryFile(std::shared_ptr<const fv::FvParams> params,
               const HwConfig &config);

    /** @return residue count of base @p tag. */
    size_t residueCount(BaseTag tag) const;

    /** @return total slot capacity (n_rpaus * slots_per_rpau). */
    size_t capacity() const { return capacity_; }

    /** @return slots currently allocated. */
    size_t slotsInUse() const { return in_use_; }

    /** @return maximum slots ever allocated (memory high-water mark). */
    size_t peakSlots() const { return peak_; }

    /**
     * Drop every record and return all slots: the reprogramming step
     * between op schedules (a Mult program alone peaks at 78 of the 84
     * slots, so plans for different operations cannot stay resident
     * simultaneously). Also clears the peak-slot watermark.
     */
    void reset();

    /** Allocate a zeroed polynomial over base @p tag. */
    PolyId allocate(BaseTag tag, Layout layout = Layout::kNatural);

    /** Release a polynomial's slots and invalidate the record. */
    void free(PolyId id);

    /**
     * Return a polynomial's slots to the allocator while keeping the
     * record readable. Program building performs slot accounting
     * statically: the builder only releases a record after its last use
     * in program order, so a later allocation can safely reuse the
     * physical slots even though the simulator keeps the old data for
     * inspection.
     */
    void release(PolyId id);

    /** Extend a q-base polynomial to the full base (Lift allocation). */
    void extendToFull(PolyId id);

    /** @return mutable record (must be valid). */
    PolyRecord &record(PolyId id);

    /** @return const record (must be valid). */
    const PolyRecord &record(PolyId id) const;

    /** Copy an RnsPoly into a fresh record (operand upload). */
    PolyId import(const ntt::RnsPoly &poly, Layout layout);

    /** Read a record back out as an RnsPoly (coefficient form). */
    ntt::RnsPoly exportPoly(PolyId id) const;

    /** Degree n. */
    size_t degree() const { return params_->degree(); }

    /** Parameter set. */
    const fv::FvParams &params() const { return *params_; }

  private:
    size_t slotsFor(BaseTag tag) const { return residueCount(tag); }

    std::shared_ptr<const fv::FvParams> params_;
    size_t capacity_;
    size_t in_use_ = 0;
    size_t peak_ = 0;
    std::vector<PolyRecord> records_;
};

} // namespace heat::hw

#endif // HEAT_HW_MEMORY_FILE_H
