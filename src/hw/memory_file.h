/**
 * @file
 * The coprocessor's on-chip memory file.
 *
 * Polynomials are stored as residue-polynomial slots of n/2 60-bit words
 * (two coefficients per word, four BRAM36K per slot). Residue k of the
 * paper's 13-prime base maps to RPAU (k < 6 ? k : k - 6) — the resource
 * sharing of Sec. V-A1 — and instructions operate on one of two batches:
 * batch 0 = the q primes, batch 1 = the extension primes.
 *
 * The pool holds 84 slots (Table IV's BRAM budget: 84*4 = 336 BRAM36K
 * for data + 49 for twiddle ROMs + interface = 388). Slot exhaustion is
 * a hard error: FV.Mult must be schedulable inside this budget, and the
 * program emitters' allocation discipline is part of the reproduction.
 *
 * Slot allocation is performed through the SlotAllocator interface so a
 * program can be scheduled twice from the same emitters: once against a
 * CountingAllocator (pure accounting — the circuit compiler's build
 * step, which records the action log) and once against a real
 * MemoryFile (replaySlotActions(), which materializes the identical id
 * assignment on a worker's coprocessor).
 *
 * Each residue carries a layout tag mirroring the physical data order:
 * kNatural (coefficient order, what Lift/Scale stream), kPaired (the
 * bit-reversed paired-word order the NTT engine consumes — REARRANGE
 * converts), and kNttDomain (evaluation order).
 */

#ifndef HEAT_HW_MEMORY_FILE_H
#define HEAT_HW_MEMORY_FILE_H

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/panic.h"
#include "fv/params.h"
#include "hw/config.h"
#include "ntt/rns_poly.h"

namespace heat::hw {

/** Identifier of a polynomial resident in the memory file. */
using PolyId = uint32_t;

/** Sentinel for "no polynomial". */
constexpr PolyId kNoPoly = ~PolyId(0);

/** Physical data order of one residue polynomial. */
enum class Layout : uint8_t
{
    kNatural,  ///< coefficient order (Lift/Scale streaming order)
    kPaired,   ///< paired/bit-reversed word order (NTT engine input)
    kNttDomain ///< evaluation (NTT) order
};

/** Which RNS base a resident polynomial spans. */
enum class BaseTag : uint8_t
{
    kQ,   ///< ciphertext base q
    kFull ///< extended base Q = q * p
};

/**
 * Thrown by allocators operating in throw-on-pressure mode when an
 * allocation exceeds the slot capacity. The circuit compiler catches
 * this to trigger a spill instead of failing the build.
 */
class SlotPressureError : public std::runtime_error
{
  public:
    explicit SlotPressureError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/**
 * Thrown by MemoryFile record accessors handed an id that names no
 * valid record — an out-of-range id, a freed record, or a stale id
 * from before a reset. Derives from PanicError (a caller presenting
 * such an id is a library bug, not a user error) but additionally
 * carries the offending id so harnesses and the serving layer can
 * report *which* record a broken program addressed instead of
 * reaching into unallocated storage.
 */
class InvalidRecordError : public PanicError
{
  public:
    InvalidRecordError(const std::string &msg, PolyId id)
        : PanicError(msg), id_(id)
    {
    }

    /** @return the record id the failed access named. */
    PolyId id() const { return id_; }

  private:
    PolyId id_;
};

/**
 * One slot-allocation action. A CountingAllocator records the sequence
 * of actions a program build performed; replaySlotActions() re-executes
 * it against a real MemoryFile, panicking if the id assignment ever
 * diverges (deterministic allocation is what lets one compiled program
 * run on any worker's coprocessor).
 */
struct SlotAction
{
    enum class Kind : uint8_t
    {
        kAllocate,
        kRelease,
        kExtend
    };

    Kind kind = Kind::kAllocate;
    /** Allocated / released / extended polynomial id. */
    PolyId id = kNoPoly;
    /** Base of the allocation (kAllocate only). */
    BaseTag base = BaseTag::kQ;
    /** Initial layout (kAllocate only). */
    Layout layout = Layout::kNatural;
    /** Modulus-switching level of the allocation (kAllocate only). */
    size_t level = 0;

    bool operator==(const SlotAction &o) const = default;
};

/**
 * Slot-accounting interface shared by the real memory file and the
 * compiler's build-time allocator. Allocation is deterministic:
 * sequential ids, capacity counted in residue slots.
 */
class SlotAllocator
{
  public:
    virtual ~SlotAllocator() = default;

    /**
     * Allocate a polynomial over base @p tag. @p what names the
     * requesting operation for slot-pressure diagnostics (may be null).
     */
    virtual PolyId allocate(BaseTag tag, Layout layout,
                            const char *what) = 0;

    /** Convenience overload without a requester label. */
    PolyId
    allocate(BaseTag tag, Layout layout = Layout::kNatural)
    {
        return allocate(tag, layout, nullptr);
    }

    /** Return a polynomial's slots to the allocator. */
    virtual void release(PolyId id) = 0;

    /** Extend a q-base polynomial to the full base (Lift allocation). */
    virtual void extendToFull(PolyId id, const char *what) = 0;

    /** Convenience overload without a requester label. */
    void extendToFull(PolyId id) { extendToFull(id, nullptr); }

    /** @return total slot capacity (n_rpaus * slots_per_rpau). */
    virtual size_t capacity() const = 0;

    /** @return slots currently allocated. */
    virtual size_t slotsInUse() const = 0;

    /** @return maximum slots ever allocated (memory high-water mark). */
    virtual size_t peakSlots() const = 0;

    /** @return residue count of base @p tag at level 0. */
    virtual size_t residueCount(BaseTag tag) const = 0;

    /**
     * Set the modulus-switching level of subsequent allocations. A
     * level-l polynomial spans residueCount(tag) - l residue slots (the
     * dropped q primes free their RPAU slots — the capacity win
     * level-aware datapaths are built around). Emitters set this before
     * allocating the outputs of a mod-switched region.
     */
    void setLevel(size_t level) { level_ = level; }

    /** @return the level applied to new allocations. */
    size_t level() const { return level_; }

    /** @return live residues of a level-l polynomial over @p tag. */
    size_t liveResidues(BaseTag tag, size_t level) const
    {
        return residueCount(tag) - level;
    }

    /** @return slots still free. */
    size_t freeSlots() const { return capacity() - slotsInUse(); }

  protected:
    size_t level_ = 0;
};

/** A polynomial resident in the memory file. */
struct PolyRecord
{
    BaseTag base = BaseTag::kQ;
    /** Modulus-switching level: the record spans the live residues of
     *  its level's basis (layout.size() = live count). */
    size_t level = 0;
    /** Layout per residue (size = live residue count). */
    std::vector<Layout> layout;
    /** Residue-major coefficient data. */
    std::vector<uint64_t> data;
    bool valid = false;
    /** Slots returned to the allocator (record still readable). */
    bool released = false;
};

/** Slot-accounted storage for resident polynomials. */
class MemoryFile : public SlotAllocator
{
  public:
    MemoryFile(std::shared_ptr<const fv::FvParams> params,
               const HwConfig &config);

    using SlotAllocator::allocate;
    using SlotAllocator::extendToFull;

    /** @return residue count of base @p tag. */
    size_t residueCount(BaseTag tag) const override;

    /** @return total slot capacity (n_rpaus * slots_per_rpau). */
    size_t capacity() const override { return capacity_; }

    /** @return slots currently allocated. */
    size_t slotsInUse() const override { return in_use_; }

    /** @return maximum slots ever allocated (memory high-water mark). */
    size_t peakSlots() const override { return peak_; }

    /**
     * Drop every record and return all slots: the reprogramming step
     * between op schedules (a Mult program alone peaks at 78 of the 84
     * slots, so plans for different operations cannot stay resident
     * simultaneously). Also clears the peak-slot watermark and any
     * pinned prefix.
     */
    void reset();

    /**
     * Pin the first @p count records: their slots (and data) survive
     * resetToPinned(), the reprogramming step of the serving layer's
     * resident ciphertext cache. Pinned records must be the id prefix
     * 0..count-1, valid and unreleased — the cache uploads its operands
     * into a freshly reset memory file before anything else allocates,
     * which is also what keeps compiled-circuit slot replay ids in
     * agreement (the compiler reserves the same prefix). A count of 0
     * unpins everything.
     */
    void setPinnedRecords(size_t count);

    /** @return pinned-prefix record count. */
    size_t pinnedRecords() const { return pinned_records_; }

    /** @return slots held by the pinned prefix. */
    size_t pinnedSlots() const { return pinned_slots_; }

    /**
     * Reprogram around the resident cache: drop every record except
     * the pinned prefix, whose ids, slots and data survive. Subsequent
     * allocation continues at id pinnedRecords() — exactly the state a
     * resident-compiled circuit's slot replay expects. Equivalent to
     * reset() when nothing is pinned.
     */
    void resetToPinned();

    /** Allocate a zeroed polynomial over base @p tag. Exhaustion is a
     *  hard error reporting the live/capacity slot pressure and the
     *  requesting operation. */
    PolyId allocate(BaseTag tag, Layout layout, const char *what) override;

    /** Release a polynomial's slots and invalidate the record. */
    void free(PolyId id);

    /**
     * Return a polynomial's slots to the allocator while keeping the
     * record readable. Program building performs slot accounting
     * statically: the builder only releases a record after its last use
     * in program order, so a later allocation can safely reuse the
     * physical slots even though the simulator keeps the old data for
     * inspection.
     */
    void release(PolyId id) override;

    /** Extend a q-base polynomial to the full base (Lift allocation). */
    void extendToFull(PolyId id, const char *what) override;

    /** @return mutable record (must be valid). */
    PolyRecord &record(PolyId id);

    /** @return const record (must be valid). */
    const PolyRecord &record(PolyId id) const;

    /** @return the level of @p id's record, or 0 when @p id does not
     *  name a valid record (level-0 costs for bare cost queries). */
    size_t recordLevel(PolyId id) const
    {
        return id < records_.size() && records_[id].valid
                   ? records_[id].level
                   : 0;
    }

    /** Copy an RnsPoly into a fresh record (operand upload). */
    PolyId import(const ntt::RnsPoly &poly, Layout layout);

    /** Read a record back out as an RnsPoly (coefficient form). */
    ntt::RnsPoly exportPoly(PolyId id) const;

    /**
     * Read the q-base view of a record: its first kq residues. For a
     * q-base record this equals exportPoly(); for a record a later
     * instruction of a fused program lifts in place (the compiler
     * extends slots up front), the q residues are the same physical
     * slots, which is what a mid-program DMA download streams.
     */
    ntt::RnsPoly exportQBase(PolyId id) const;

    /** Degree n. */
    size_t degree() const { return params_->degree(); }

    /** Parameter set. */
    const fv::FvParams &params() const { return *params_; }

  private:
    PolyId allocateAt(BaseTag tag, Layout layout, size_t level,
                      const char *what);

    std::shared_ptr<const fv::FvParams> params_;
    size_t capacity_;
    size_t in_use_ = 0;
    size_t peak_ = 0;
    /** Pinned prefix (ids 0..pinned_records_-1) surviving
     *  resetToPinned(); see setPinnedRecords(). */
    size_t pinned_records_ = 0;
    size_t pinned_slots_ = 0;
    std::vector<PolyRecord> records_;
};

/**
 * Pure slot accounting with MemoryFile's exact allocation discipline
 * (sequential ids, identical capacity math) but no polynomial data.
 * Records every action so the identical allocation can later be
 * replayed on a real memory file. Copyable — the circuit compiler
 * snapshots it to roll back a partially-emitted node before spilling.
 */
class CountingAllocator : public SlotAllocator
{
  public:
    /**
     * @param params parameter set (residue counts).
     * @param config hardware configuration (slot capacity).
     * @param throw_on_pressure throw SlotPressureError instead of
     *        fatal() when an allocation exceeds the capacity.
     */
    CountingAllocator(const fv::FvParams &params, const HwConfig &config,
                      bool throw_on_pressure = false);

    using SlotAllocator::allocate;
    using SlotAllocator::extendToFull;

    PolyId allocate(BaseTag tag, Layout layout, const char *what) override;
    void release(PolyId id) override;
    void extendToFull(PolyId id, const char *what) override;

    size_t capacity() const override { return capacity_; }
    size_t slotsInUse() const override { return in_use_; }
    size_t peakSlots() const override { return peak_; }
    size_t residueCount(BaseTag tag) const override;

    /** @return the recorded action log. */
    const std::vector<SlotAction> &actions() const { return actions_; }

    /** @return number of ids handed out so far. */
    size_t recordCount() const { return records_.size(); }

  private:
    struct Rec
    {
        BaseTag base = BaseTag::kQ;
        size_t level = 0;
        bool released = false;
    };

    [[noreturn]] void overflow(size_t need, const char *what) const;

    size_t q_residues_;
    size_t full_residues_;
    size_t capacity_;
    bool throw_on_pressure_;
    size_t in_use_ = 0;
    size_t peak_ = 0;
    std::vector<Rec> records_;
    std::vector<SlotAction> actions_;
};

/**
 * Re-execute a recorded allocation sequence against @p memory,
 * materializing the same polynomial ids (panics on divergence — the
 * memory file was not in the expected state, usually because it was
 * not freshly reset).
 */
void replaySlotActions(MemoryFile &memory,
                       std::span<const SlotAction> actions);

} // namespace heat::hw

#endif // HEAT_HW_MEMORY_FILE_H
