/**
 * @file
 * Structural cycle model of the traditional (multi-precision CRT)
 * Lift q->Q and Scale Q->q architectures (Sec. V-B1, Fig. 5 and Fig. 8).
 *
 * These datapaths follow the design of Roy et al. [20]: CRT
 * reconstruction with long-integer sum-of-products, division by q as a
 * multiplication with a stored reciprocal, and per-prime reductions —
 * all on a 30-bit word-serial datapath. In the block-level pipeline the
 * slowest block sets the beat per coefficient:
 *
 *   Lift:  max(B1 sum-of-products, B2 division, B3 residue reductions)
 *   Scale: the division operates on a ~2x wider dividend with a ~2x
 *          wider reciprocal, i.e. ~4x the cycles (Sec. V-C), and
 *          dominates.
 *
 * The functional content of the traditional units is exact CRT
 * arithmetic — in the simulator that is FastBaseConverter::convertExact
 * and ScaleRounder::scaleExact (LiftUnit/ScaleUnit select them when the
 * coprocessor is configured with LiftScaleArch::kTraditional); this
 * class supplies the Sec. VI-C timing analysis.
 */

#ifndef HEAT_HW_TRAD_LIFT_SCALE_H
#define HEAT_HW_TRAD_LIFT_SCALE_H

#include <cstddef>
#include <memory>

#include "fv/params.h"
#include "hw/config.h"

namespace heat::hw {

/** Cycle model of the multi-precision Lift/Scale pipelines. */
class TradLiftScaleModel
{
  public:
    /**
     * @param params parameter set (fixes word counts).
     * @param config hardware configuration (clock, core count).
     */
    TradLiftScaleModel(std::shared_ptr<const fv::FvParams> params,
                       const HwConfig &config);

    /** Words of a q-sized long integer (ceil(log q / 30) + 1 guard). */
    size_t qWords() const { return q_words_; }

    /** Words of a Q-sized long integer. */
    size_t fullWords() const { return full_words_; }

    /** Block 1 of Fig. 5: k MACs accumulating 30x(q-width) products. */
    size_t liftSopCycles() const;

    /** Block 2/3 of Fig. 5: division via reciprocal multiplication. */
    size_t liftDivisionCycles() const;

    /** Blocks 4/5 of Fig. 5: extension residues of the reconstruction. */
    size_t liftResidueCycles() const;

    /** Pipeline beat of the traditional Lift (slowest block). */
    size_t liftBeat() const;

    /** Division cycles during Scale: double-width dividend times a
     *  double-precision reciprocal (~4x the Lift division). */
    size_t scaleDivisionCycles() const;

    /** Pipeline beat of the traditional Scale. */
    size_t scaleBeat() const;

    /** Single-core Lift time for a whole polynomial (microseconds). */
    double singleCoreLiftUs() const;

    /** Single-core Scale time for a whole polynomial (microseconds). */
    double singleCoreScaleUs() const;

  private:
    std::shared_ptr<const fv::FvParams> params_;
    HwConfig config_;
    size_t q_words_;
    size_t full_words_;
};

} // namespace heat::hw

#endif // HEAT_HW_TRAD_LIFT_SCALE_H
