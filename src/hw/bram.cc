#include "hw/bram.h"

#include "common/panic.h"

namespace heat::hw {

BramBank::BramBank(uint32_t first_word, uint32_t words)
    : first_word_(first_word), words_(words)
{
}

void
BramBank::recordRead(Cycle cycle, uint32_t addr)
{
    panicIf(!contains(addr), "read address ", addr, " outside bank");
    if (cycle == last_read_cycle_)
        ++conflicts_;
    last_read_cycle_ = cycle;
    ++reads_;
}

void
BramBank::recordWrite(Cycle cycle, uint32_t addr)
{
    panicIf(!contains(addr), "write address ", addr, " outside bank");
    if (cycle == last_write_cycle_)
        ++conflicts_;
    last_write_cycle_ = cycle;
    ++writes_;
}

void
BramBank::reset()
{
    last_read_cycle_ = ~Cycle(0);
    last_write_cycle_ = ~Cycle(0);
    reads_ = 0;
    writes_ = 0;
    conflicts_ = 0;
}

} // namespace heat::hw
