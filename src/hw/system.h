/**
 * @file
 * Full-system model (Fig. 11): two coprocessor instances in the
 * programmable logic, one application Arm core per coprocessor, a
 * networking core distributing work, and a single DMA engine guarded by
 * the mutual-exclusion IP core.
 *
 * A small discrete-event simulation executes a batch of homomorphic
 * multiplications across the coprocessors: each job serializes
 * [acquire DMA -> send operands] -> [compute, acquiring the DMA again
 * for each relinearization-key segment] -> [acquire DMA -> receive].
 * The headline reproduction: ~400 Mult/s with two coprocessors at
 * 200 MHz (Sec. VI-A).
 */

#ifndef HEAT_HW_SYSTEM_H
#define HEAT_HW_SYSTEM_H

#include <memory>
#include <vector>

#include "fv/params.h"
#include "hw/arm_host.h"
#include "hw/config.h"
#include "hw/isa.h"

namespace heat::hw {

/** Result of a throughput simulation. */
struct ThroughputResult
{
    size_t mults = 0;
    double makespan_us = 0.0;
    double mults_per_second = 0.0;
    /** Fraction of the makespan the DMA engine was busy. */
    double dma_utilization = 0.0;
    /** Fraction of the makespan each coprocessor spent computing. */
    std::vector<double> coproc_utilization;
};

/** Timing profile of one Mult job on a coprocessor. */
struct MultJobProfile
{
    double send_us = 0.0;        ///< operand upload (DMA-held)
    double compute_us = 0.0;     ///< FPGA compute (no DMA)
    double key_dma_us = 0.0;     ///< per key segment (DMA-held)
    size_t key_segments = 0;     ///< number of key loads
    double receive_us = 0.0;     ///< result download (DMA-held)
};

/**
 * Price one FV.Mult job: build (without executing) the Mult program
 * against a scratch coprocessor and sum the per-instruction block-model
 * costs plus the host-side transfer times. Pure function of its inputs;
 * callers that construct many systems or service workers can compute
 * the profile once and share it.
 *
 * @param dispatch kPerInstruction reproduces the paper's measured cost
 *        (every instruction pays the Arm dispatch overhead);
 *        kFusedProgram prices the Mult as a pre-queued fused program
 *        with a single dispatch (the circuit-compiler execution model).
 */
MultJobProfile profileMultJob(
    const std::shared_ptr<const fv::FvParams> &params,
    const HwConfig &config,
    DispatchMode dispatch = DispatchMode::kPerInstruction);

/** The Arm + two-coprocessor system. */
class HeatSystem
{
  public:
    /**
     * @param params FV parameter set.
     * @param config hardware configuration.
     * @param n_coprocessors parallel coprocessor instances (paper: 2).
     */
    HeatSystem(std::shared_ptr<const fv::FvParams> params,
               const HwConfig &config, size_t n_coprocessors = 2);

    /** Same, with a precomputed per-Mult profile (skips the scratch
     *  coprocessor build — cheap construction for serving layers). */
    HeatSystem(std::shared_ptr<const fv::FvParams> params,
               const HwConfig &config, size_t n_coprocessors,
               const MultJobProfile &profile);

    /** @return the per-Mult timing profile used by the simulation. */
    const MultJobProfile &profile() const { return profile_; }

    /** Simulate @p mults homomorphic multiplications. */
    ThroughputResult simulate(size_t mults) const;

    /** @return number of coprocessors. */
    size_t coprocessorCount() const { return n_coproc_; }

  private:
    std::shared_ptr<const fv::FvParams> params_;
    HwConfig config_;
    size_t n_coproc_;
    MultJobProfile profile_;
};

} // namespace heat::hw

#endif // HEAT_HW_SYSTEM_H
