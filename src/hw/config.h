/**
 * @file
 * Configuration of the simulated coprocessor (Sec. V of the paper).
 *
 * Clock domains match the implementation: 200 MHz FPGA fabric, 1.2 GHz
 * Arm cores, 250 MHz DMA. Microarchitectural constants (pipeline depths,
 * block-pipeline beats, dispatch overheads) are calibrated against the
 * paper's measured Tables I-III; EXPERIMENTS.md documents each fit.
 */

#ifndef HEAT_HW_CONFIG_H
#define HEAT_HW_CONFIG_H

#include <cstddef>
#include <cstdint>

namespace heat::hw {

/** Cycle count in the FPGA clock domain. */
using Cycle = uint64_t;

/** Which Lift/Scale architecture a coprocessor instantiates. */
enum class LiftScaleArch
{
    kHps,        ///< small-integer HPS datapath (Sec. V-B2/V-C, faster)
    kTraditional ///< multi-precision CRT datapath (Sec. V-B1, slower)
};

/** Tunable parameters of the coprocessor model. */
struct HwConfig
{
    // --- clocks -----------------------------------------------------------
    double fpga_clock_hz = 200e6;
    double arm_clock_hz = 1.2e9;
    double dma_clock_hz = 250e6;

    // --- structure --------------------------------------------------------
    /** Residue polynomial arithmetic units (ceil(13/2) = 7). */
    size_t n_rpaus = 7;
    /** Butterfly cores per RPAU (bounded by BRAM ports, Sec. V-A2). */
    size_t butterfly_cores = 2;
    /** Parallel Lift/Scale cores. */
    size_t lift_scale_cores = 2;
    /** Residue-polynomial slots per RPAU in the on-chip memory file. */
    size_t slots_per_rpau = 12;
    /** Lift/Scale architecture. */
    LiftScaleArch lift_scale_arch = LiftScaleArch::kHps;

    // --- microarchitecture (calibrated) -----------------------------------
    /** Butterfly pipeline depth: multiplier + reducer + add/sub stages. */
    int butterfly_pipeline_depth = 16;
    /** Per-NTT-stage overhead: address-generator setup, twiddle bank
     *  switch, pipeline fill/drain. */
    int ntt_stage_overhead = 140;
    /** Coefficient-unit pipeline depth. */
    int coeff_pipeline_depth = 12;
    /** HPS Lift/Scale block-pipeline beat (cycles per coefficient per
     *  core; the slowest block takes 7 cycles plus one streaming
     *  handoff). */
    int lift_beat = 8;
    /** Pipeline fill of the five-block Lift chain. */
    int lift_fill = 60;
    /** Pipeline fill of the chained Scale+Lift datapath. */
    int scale_fill = 120;
    /** Traditional-CRT Lift beat (long-integer division bound). */
    int trad_lift_beat = 92;
    /** Traditional-CRT Scale beat (~4x wider division). */
    int trad_scale_beat = 236;
    /** ARM-side dispatch + completion overhead per instruction,
     *  expressed in FPGA cycles. */
    int dispatch_overhead = 500;

    // --- DMA (fitted to Table III; see DmaModel) ---------------------------
    double dma_setup_us = 20.2;
    double dma_desc_first_us = 6.6;
    double dma_desc_steady_us = 1.033;
    int dma_warm_descriptors = 6;
    double dma_bytes_per_cycle = 8.0;

    // --- host software ------------------------------------------------------
    /** ARM cycles per modular addition in baremetal software
     *  (cache-missing DDR loop; calibrated to Table I's Add in SW). */
    double arm_sw_modadd_cycles = 1112.0;
    /** Host staging overhead per polynomial transfer (us). */
    double host_transfer_setup_us = 14.0;

    bool operator==(const HwConfig &o) const = default;

    // --- factories ---------------------------------------------------------

    /** The faster coprocessor of the paper (HPS, 200 MHz). */
    static HwConfig
    paper()
    {
        return HwConfig{};
    }

    /** The slower coprocessor (traditional CRT, 225 MHz, 4 cores). */
    static HwConfig
    paperTraditional()
    {
        HwConfig config;
        config.fpga_clock_hz = 225e6;
        config.lift_scale_arch = LiftScaleArch::kTraditional;
        config.lift_scale_cores = 4;
        return config;
    }

    /** Convert FPGA cycles to microseconds. */
    double
    cyclesToUs(Cycle cycles) const
    {
        return static_cast<double>(cycles) / fpga_clock_hz * 1e6;
    }

    /** Convert microseconds to ARM cycle counts (the paper's Tables I-II
     *  report timings measured in 1.2 GHz Arm cycles). */
    uint64_t
    usToArmCycles(double us) const
    {
        return static_cast<uint64_t>(us * arm_clock_hz / 1e6);
    }
};

} // namespace heat::hw

#endif // HEAT_HW_CONFIG_H
