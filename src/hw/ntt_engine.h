/**
 * @file
 * Cycle-level model of the dual-butterfly-core NTT engine (Sec. V-A3/4).
 *
 * The engine implements the memory-efficient paired-coefficient scheme of
 * Roy et al. [30] extended to two cores: every 60-bit word holds the two
 * coefficients one butterfly consumes, so each core reads one word and
 * writes one word per cycle. The access schedule (paper Fig. 3) has three
 * regimes for an n-coefficient polynomial stored in n/2 words across a
 * lower and an upper bank:
 *
 *  - m <= n/4   : core 0 walks the lower bank, core 1 the upper bank;
 *  - m == n/2   : both cores interleave banks, core 1 in inverted order
 *                 so the cores always touch opposite banks;
 *  - m == n     : "one word at a time": core 0 lower, core 1 upper.
 *
 * The model replays the schedule cycle by cycle against BramBank port
 * accounting (zero conflicts expected — this is Fig. 3's claim) and
 * derives the per-instruction cycle cost used by the coprocessor. The
 * arithmetic itself is delegated to the verified software NTT: the
 * hardware and software paths share twiddle tables, so results are
 * bit-identical by construction.
 */

#ifndef HEAT_HW_NTT_ENGINE_H
#define HEAT_HW_NTT_ENGINE_H

#include <cstdint>
#include <vector>

#include "hw/bram.h"
#include "hw/config.h"

namespace heat::hw {

/** One read or write event of the NTT access schedule. */
struct MemAccess
{
    Cycle cycle;   ///< issue cycle within the stage
    int core;      ///< butterfly core 0 or 1
    uint32_t word; ///< word address in [0, n/2)
};

/** Dual-core NTT engine: schedule generation and timing. */
class NttEngine
{
  public:
    /**
     * @param config hardware configuration.
     * @param degree polynomial degree n (power of two, >= 8).
     */
    NttEngine(const HwConfig &config, size_t degree);

    /** @return number of butterfly stages (log2 n). */
    int stageCount() const { return log_n_; }

    /**
     * Generate the read schedule of stage @p stage (0-based; stage s
     * corresponds to Alg. 1's m = 2^(s+1)). Writes follow the same
     * pattern shifted by the pipeline depth.
     */
    std::vector<MemAccess> stageReadSchedule(int stage) const;

    /**
     * Replay the full transform against bank port accounting.
     *
     * @param conflicts receives the number of port conflicts (0 expected).
     * @return cycle count of the transform (excluding dispatch).
     */
    Cycle simulate(uint64_t &conflicts) const;

    /** Analytic cycle count of a forward NTT (no dispatch overhead). */
    Cycle forwardCycles() const;

    /** Analytic cycle count of an inverse NTT (adds the n^{-1} scaling
     *  pass, the reason Table II's Inverse-NTT is slower). */
    Cycle inverseCycles() const;

    /** Cycles of one coefficient-wise add/sub/mul instruction. */
    Cycle coeffOpCycles() const;

    /** Cycles of a memory-rearrange instruction (layout permutation:
     *  read plus scattered write over all n/2 words). */
    Cycle rearrangeCycles() const;

    /** Cycles of a Galois-automorphism instruction (index-mapped BRAM
     *  copy: sequential read, scattered write, sign fix-up inline). */
    Cycle automorphCycles() const;

  private:
    HwConfig config_;
    size_t n_;
    int log_n_;
    size_t words_; // n / 2
};

} // namespace heat::hw

#endif // HEAT_HW_NTT_ENGINE_H
