#include "hw/resource_model.h"

#include <cmath>

namespace heat::hw {

ResourceModel::ResourceModel(const fv::FvParams &params,
                             const HwConfig &config)
    : params_(params), config_(config)
{
}

Resources
ResourceModel::mult30x30() const
{
    // 30x30 on DSP48E2 (27x18 native): 2x2 tile of DSPs plus stitching.
    return {450, 220, 0, 4};
}

Resources
ResourceModel::mac30x60() const
{
    // 30x60 with accumulator: 8 DSPs (paper stores reciprocals with 60
    // significant fractional bits).
    return {300, 420, 0, 8};
}

Resources
ResourceModel::slidingWindowReducer() const
{
    // Six unrolled fold stages, each a 64-entry LUTRAM table lookup plus
    // a wide add, then two conditional subtractions.
    return {1100, 380, 0, 0};
}

Resources
ResourceModel::butterflyCore() const
{
    Resources r = mult30x30() + slidingWindowReducer();
    r += {650, 150, 0, 0}; // modular adder + subtractor + pipeline regs
    return r;
}

Resources
ResourceModel::rpau() const
{
    const double cores = static_cast<double>(config_.butterfly_cores);
    Resources r = cores * butterflyCore();
    // Address generator for the Fig. 3 schedule plus batch control.
    r += {900, 400, 0, 0};
    // Twiddle ROM: n twiddles x 30 bits for each of the two primes the
    // RPAU serves (inverse twiddles are derived by index arithmetic).
    const double bits = 2.0 * static_cast<double>(params_.degree()) * 30.0;
    r += {0, 0, std::ceil(bits / 36864.0), 0};
    return r;
}

Resources
ResourceModel::liftScaleCore() const
{
    const size_t kp = params_.pBase()->size();
    Resources r;
    r += mult30x30();                              // Block 1 (a_i * q~_i)
    r += static_cast<double>(kp) * mac30x60();     // Block 2 MAC lanes
    r += mac30x60();                               // Block 3 reciprocal
    r += mult30x30();                              // Block 4 (v' * q)
    r += {5200, 1500, 1, 0}; // sequencers, constants ROM, buffers
    return r;
}

Resources
ResourceModel::memoryFile() const
{
    const double slots =
        static_cast<double>(config_.n_rpaus * config_.slots_per_rpau);
    // One residue slot = n/2 x 60-bit words = four BRAM36K; ~30 LUTs of
    // banking/muxing per slot.
    return {slots * 30.0, slots * 8.0, slots * 4.0, 0};
}

Resources
ResourceModel::controlOverhead() const
{
    // Instruction decode, sequencer, completion/status logic.
    return {6902, 1050, 1, 8};
}

Resources
ResourceModel::coprocessor() const
{
    Resources r;
    r += static_cast<double>(config_.n_rpaus) * rpau();
    r += static_cast<double>(config_.lift_scale_cores) * liftScaleCore();
    r += memoryFile();
    r += controlOverhead();
    return r;
}

Resources
ResourceModel::system(size_t count) const
{
    Resources r = static_cast<double>(count) * coprocessor();
    // DMA, interfacing units and the mutex IP (Fig. 11).
    r += {6648, 9068, 39, 0};
    return r;
}

double
ResourceModel::utilizationPct(double used, double capacity)
{
    return used / capacity * 100.0;
}

} // namespace heat::hw
