/**
 * @file
 * Pipeline model of the sliding-window modular reduction circuit
 * (Sec. V-A4, Fig. 4).
 *
 * The circuit folds the top 6 bits of a 60-bit product step by step using
 * a 64-entry table of w * 2^30 mod q, fully unrolled into
 * kSlidingWindowStages stages with pipeline registers, then applies up to
 * two conditional subtractions. Functionally it is exactly
 * Modulus::slidingWindowReduce; this class adds the latency/occupancy
 * model the butterfly pipeline and the resource model consume.
 */

#ifndef HEAT_HW_MOD_REDUCE_UNIT_H
#define HEAT_HW_MOD_REDUCE_UNIT_H

#include <cstdint>

#include "rns/modulus.h"

namespace heat::hw {

/** Unrolled sliding-window reducer: functional + latency model. */
class ModReduceUnit
{
  public:
    explicit ModReduceUnit(const rns::Modulus &modulus);

    /** @return x mod q through the modeled datapath. */
    uint64_t reduce(uint64_t x) const;

    /** Pipeline latency in cycles: one per fold stage plus the two
     *  correction stages. Throughput is one reduction per cycle. */
    static constexpr int kLatency = rns::Modulus::kSlidingWindowStages + 2;

    /** The modulus served. */
    const rns::Modulus &modulus() const { return modulus_; }

  private:
    rns::Modulus modulus_;
};

/**
 * Latency of the full butterfly datapath: 30x30 DSP multiplier stages,
 * the reducer, and the modular add/sub stage. Used to sanity-check
 * HwConfig::butterfly_pipeline_depth.
 */
constexpr int kMultiplierLatency = 4;
constexpr int kAddSubLatency = 2;
constexpr int kButterflyLatency =
    kMultiplierLatency + ModReduceUnit::kLatency + kAddSubLatency;

} // namespace heat::hw

#endif // HEAT_HW_MOD_REDUCE_UNIT_H
