#include "hw/system.h"

#include <algorithm>

#include "common/panic.h"
#include "hw/coprocessor.h"
#include "hw/program_builder.h"

namespace heat::hw {

MultJobProfile
profileMultJob(const std::shared_ptr<const fv::FvParams> &params,
               const HwConfig &config, DispatchMode dispatch)
{
    const bool fused = dispatch == DispatchMode::kFusedProgram;
    MultJobProfile profile;
    Coprocessor scratch(params, config);
    OpPlan plan = makeMultPlan(scratch);

    Cycle compute_cycles = 0;
    for (const Instruction &instr : plan.program.instrs) {
        compute_cycles += fused
                              ? scratch.instructionComputeCycles(instr)
                              : scratch.instructionCycles(instr);
        if (instr.op == Opcode::kKeyLoad) {
            ++profile.key_segments;
            profile.key_dma_us = scratch.instructionDmaUs(instr);
        }
    }
    if (fused && !plan.program.instrs.empty())
        compute_cycles += static_cast<Cycle>(config.dispatch_overhead);
    profile.compute_us = config.cyclesToUs(compute_cycles);

    ArmHostModel host(params, config);
    profile.send_us = host.sendCiphertextsUs(2);
    profile.receive_us = host.receiveCiphertextUs();
    return profile;
}

HeatSystem::HeatSystem(std::shared_ptr<const fv::FvParams> params,
                       const HwConfig &config, size_t n_coprocessors)
    : HeatSystem(params, config, n_coprocessors,
                 profileMultJob(params, config))
{
}

HeatSystem::HeatSystem(std::shared_ptr<const fv::FvParams> params,
                       const HwConfig &config, size_t n_coprocessors,
                       const MultJobProfile &profile)
    : params_(std::move(params)), config_(config),
      n_coproc_(n_coprocessors), profile_(profile)
{
    fatalIf(n_coprocessors == 0, "need at least one coprocessor");
}

ThroughputResult
HeatSystem::simulate(size_t mults) const
{
    // Discrete-event timeline. Each coprocessor walks an alternating
    // sequence of compute segments (no arbitration) and DMA segments
    // (serialized through the mutex IP, granted first-come-first-served
    // by advancing the globally earliest-ready worker).
    const double chunk =
        profile_.compute_us /
        static_cast<double>(profile_.key_segments + 1);

    // Per-job segment list: {is_dma, duration}.
    std::vector<std::pair<bool, double>> job_segments;
    job_segments.emplace_back(true, profile_.send_us);
    for (size_t s = 0; s < profile_.key_segments; ++s) {
        job_segments.emplace_back(false, chunk);
        job_segments.emplace_back(true, profile_.key_dma_us);
    }
    job_segments.emplace_back(false, chunk);
    job_segments.emplace_back(true, profile_.receive_us);

    struct Worker
    {
        double t = 0.0;     // local time
        size_t jobs = 0;    // jobs remaining
        size_t seg = 0;     // index into job_segments
        double busy = 0.0;  // compute time accumulated
        bool
        done() const
        {
            return jobs == 0;
        }
    };
    std::vector<Worker> workers(n_coproc_);
    for (size_t c = 0; c < n_coproc_; ++c)
        workers[c].jobs = mults / n_coproc_ + (c < mults % n_coproc_);

    double dma_free = 0.0;
    double dma_busy = 0.0;
    while (true) {
        // Advance the earliest-ready unfinished worker by one segment.
        size_t best = n_coproc_;
        for (size_t c = 0; c < n_coproc_; ++c) {
            if (!workers[c].done() &&
                (best == n_coproc_ || workers[c].t < workers[best].t)) {
                best = c;
            }
        }
        if (best == n_coproc_)
            break;
        Worker &w = workers[best];
        const auto &[is_dma, dur] = job_segments[w.seg];
        if (is_dma) {
            const double start = std::max(w.t, dma_free);
            dma_free = start + dur;
            dma_busy += dur;
            w.t = dma_free;
        } else {
            w.t += dur;
            w.busy += dur;
        }
        if (++w.seg == job_segments.size()) {
            w.seg = 0;
            --w.jobs;
        }
    }

    std::vector<double> coproc_free(n_coproc_);
    std::vector<double> coproc_busy(n_coproc_);
    for (size_t c = 0; c < n_coproc_; ++c) {
        coproc_free[c] = workers[c].t;
        coproc_busy[c] = workers[c].busy;
    }

    ThroughputResult result;
    result.mults = mults;
    result.makespan_us =
        *std::max_element(coproc_free.begin(), coproc_free.end());
    result.mults_per_second =
        static_cast<double>(mults) / result.makespan_us * 1e6;
    result.dma_utilization = dma_busy / result.makespan_us;
    result.coproc_utilization.resize(n_coproc_);
    for (size_t c = 0; c < n_coproc_; ++c)
        result.coproc_utilization[c] = coproc_busy[c] / result.makespan_us;
    return result;
}

} // namespace heat::hw
