#include "hw/isa.h"

#include <sstream>

namespace heat::hw {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::kNtt:
        return "NTT";
      case Opcode::kIntt:
        return "Inverse-NTT";
      case Opcode::kCoeffMul:
        return "Coeff-wise Multiplication";
      case Opcode::kCoeffAdd:
        return "Coeff-wise Addition";
      case Opcode::kCoeffSub:
        return "Coeff-wise Subtraction";
      case Opcode::kRearrange:
        return "Memory Rearrange";
      case Opcode::kLift:
        return "Lift q->Q";
      case Opcode::kScale:
        return "Scale Q->q";
      case Opcode::kAutomorph:
        return "Galois Automorphism";
      case Opcode::kKeyLoad:
        return "Key-switch-key DMA";
      case Opcode::kModSwitch:
        return "Modulus Switch";
    }
    return "?";
}

const char *
unitName(Unit unit)
{
    switch (unit) {
      case Unit::kNttUnit:
        return "NTT";
      case Unit::kLiftUnit:
        return "Lift";
      case Unit::kScaleUnit:
        return "Scale";
      case Unit::kCoeffUnit:
        return "CoeffUnit";
      case Unit::kModReduceUnit:
        return "ModReduce";
      case Unit::kDmaUnit:
        return "DMA";
      case Unit::kKeyLoadUnit:
        return "KeyLoad";
      case Unit::kArmUnit:
        return "Arm";
    }
    return "?";
}

Unit
unitOf(Opcode op)
{
    switch (op) {
      case Opcode::kNtt:
      case Opcode::kIntt:
      case Opcode::kRearrange:
      case Opcode::kAutomorph:
        // Rearrange and the automorphism permutation run on the NTT
        // engine's memory datapath.
        return Unit::kNttUnit;
      case Opcode::kCoeffMul:
      case Opcode::kCoeffAdd:
      case Opcode::kCoeffSub:
        return Unit::kCoeffUnit;
      case Opcode::kLift:
        return Unit::kLiftUnit;
      case Opcode::kScale:
        return Unit::kScaleUnit;
      case Opcode::kModSwitch:
        // Physically the Scale unit's divide-and-round datapath, but
        // bucketed separately so leveled circuits show their drop cost.
        return Unit::kModReduceUnit;
      case Opcode::kKeyLoad:
        return Unit::kKeyLoadUnit;
    }
    return Unit::kArmUnit;
}

namespace {

const char *
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::kNtt:
        return "ntt";
      case Opcode::kIntt:
        return "intt";
      case Opcode::kCoeffMul:
        return "cmul";
      case Opcode::kCoeffAdd:
        return "cadd";
      case Opcode::kCoeffSub:
        return "csub";
      case Opcode::kRearrange:
        return "rearr";
      case Opcode::kLift:
        return "lift";
      case Opcode::kScale:
        return "scale";
      case Opcode::kAutomorph:
        return "autmp";
      case Opcode::kKeyLoad:
        return "kload";
      case Opcode::kModSwitch:
        return "mswitch";
    }
    return "?";
}

void
appendPoly(std::ostringstream &oss, PolyId id)
{
    if (id == kNoPoly)
        oss << " -";
    else
        oss << " p" << id;
}

} // namespace

std::string
disassemble(const Instruction &instr)
{
    std::ostringstream oss;
    oss << mnemonic(instr.op);
    if (instr.op == Opcode::kKeyLoad) {
        oss << " digit=" << keyLoadDigit(instr.aux);
        if (keyLoadSelector(instr.aux) != 0)
            oss << " g=" << keyLoadSelector(instr.aux);
    } else {
        appendPoly(oss, instr.dst);
        if (instr.src0 != kNoPoly)
            appendPoly(oss, instr.src0);
        if (instr.src1 != kNoPoly)
            appendPoly(oss, instr.src1);
        oss << " b" << static_cast<int>(instr.batch);
        if (instr.op == Opcode::kAutomorph)
            oss << " g=" << instr.aux;
    }
    if (!instr.extra.empty()) {
        oss << " ->";
        for (PolyId id : instr.extra)
            appendPoly(oss, id);
    }
    return oss.str();
}

std::string
Program::listing() const
{
    std::ostringstream oss;
    for (size_t i = 0; i < instrs.size(); ++i) {
        oss << (i < 10 ? "  " : i < 100 ? " " : "") << i << ": "
            << disassemble(instrs[i]) << "\n";
    }
    oss << "outputs:";
    for (PolyId id : outputs)
        oss << " p" << id;
    oss << "\n";
    return oss.str();
}

} // namespace heat::hw
