#include "hw/isa.h"

#include <sstream>

namespace heat::hw {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::kNtt:
        return "NTT";
      case Opcode::kIntt:
        return "Inverse-NTT";
      case Opcode::kCoeffMul:
        return "Coeff-wise Multiplication";
      case Opcode::kCoeffAdd:
        return "Coeff-wise Addition";
      case Opcode::kCoeffSub:
        return "Coeff-wise Subtraction";
      case Opcode::kRearrange:
        return "Memory Rearrange";
      case Opcode::kLift:
        return "Lift q->Q";
      case Opcode::kScale:
        return "Scale Q->q";
      case Opcode::kAutomorph:
        return "Galois Automorphism";
      case Opcode::kKeyLoad:
        return "Key-switch-key DMA";
      case Opcode::kModSwitch:
        return "Modulus Switch";
    }
    return "?";
}

namespace {

const char *
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::kNtt:
        return "ntt";
      case Opcode::kIntt:
        return "intt";
      case Opcode::kCoeffMul:
        return "cmul";
      case Opcode::kCoeffAdd:
        return "cadd";
      case Opcode::kCoeffSub:
        return "csub";
      case Opcode::kRearrange:
        return "rearr";
      case Opcode::kLift:
        return "lift";
      case Opcode::kScale:
        return "scale";
      case Opcode::kAutomorph:
        return "autmp";
      case Opcode::kKeyLoad:
        return "kload";
      case Opcode::kModSwitch:
        return "mswitch";
    }
    return "?";
}

void
appendPoly(std::ostringstream &oss, PolyId id)
{
    if (id == kNoPoly)
        oss << " -";
    else
        oss << " p" << id;
}

} // namespace

std::string
disassemble(const Instruction &instr)
{
    std::ostringstream oss;
    oss << mnemonic(instr.op);
    if (instr.op == Opcode::kKeyLoad) {
        oss << " digit=" << keyLoadDigit(instr.aux);
        if (keyLoadSelector(instr.aux) != 0)
            oss << " g=" << keyLoadSelector(instr.aux);
    } else {
        appendPoly(oss, instr.dst);
        if (instr.src0 != kNoPoly)
            appendPoly(oss, instr.src0);
        if (instr.src1 != kNoPoly)
            appendPoly(oss, instr.src1);
        oss << " b" << static_cast<int>(instr.batch);
        if (instr.op == Opcode::kAutomorph)
            oss << " g=" << instr.aux;
    }
    if (!instr.extra.empty()) {
        oss << " ->";
        for (PolyId id : instr.extra)
            appendPoly(oss, id);
    }
    return oss.str();
}

std::string
Program::listing() const
{
    std::ostringstream oss;
    for (size_t i = 0; i < instrs.size(); ++i) {
        oss << (i < 10 ? "  " : i < 100 ? " " : "") << i << ": "
            << disassemble(instrs[i]) << "\n";
    }
    oss << "outputs:";
    for (PolyId id : outputs)
        oss << " p" << id;
    oss << "\n";
    return oss.str();
}

} // namespace heat::hw
