#include "hw/rpau.h"

#include "common/panic.h"

namespace heat::hw {

size_t
rpauForResidue(size_t residue, size_t q_prime_count)
{
    return residue < q_prime_count ? residue : residue - q_prime_count;
}

int
batchOfResidue(size_t residue, size_t q_prime_count)
{
    return residue < q_prime_count ? 0 : 1;
}

std::vector<size_t>
residuesOfBatch(int batch, size_t q_prime_count, size_t total)
{
    panicIf(batch != 0 && batch != 1, "batch must be 0 or 1");
    std::vector<size_t> out;
    if (batch == 0) {
        for (size_t k = 0; k < q_prime_count && k < total; ++k)
            out.push_back(k);
    } else {
        for (size_t k = q_prime_count; k < total; ++k)
            out.push_back(k);
    }
    return out;
}

Rpau::Rpau(size_t id, const HwConfig &config, size_t degree)
    : id_(id), engine_(config, degree), coeff_unit_(config)
{
}

} // namespace heat::hw
