/**
 * @file
 * Model of the Arm-side software (Fig. 11): two application cores each
 * driving one coprocessor, one networking core, baremetal software with
 * contiguous-buffer DMA staging.
 *
 * The host model supplies the software-side timings of Table I: the
 * ciphertext send/receive costs (DMA single transfers plus staging) and
 * the software fallback for Add, whose per-coefficient cost on the
 * cache-missing baremetal loop the paper measured at ~80x the hardware
 * path.
 */

#ifndef HEAT_HW_ARM_HOST_H
#define HEAT_HW_ARM_HOST_H

#include <cstddef>
#include <memory>

#include "fv/params.h"
#include "hw/config.h"
#include "hw/dma.h"

namespace heat::hw {

/** Arm processing-system model. */
class ArmHostModel
{
  public:
    ArmHostModel(std::shared_ptr<const fv::FvParams> params,
                 const HwConfig &config);

    /** Bytes of one ciphertext (two q polynomials). */
    size_t ciphertextBytes() const;

    /** Bytes of one q polynomial. */
    size_t polyBytes() const;

    /** Time to send @p count q polynomials to the coprocessor (us) —
     *  one single-descriptor DMA burst plus staging each. */
    double sendPolysUs(size_t count) const;

    /** Time to receive @p count q polynomials back (us). */
    double receivePolysUs(size_t count) const;

    /** Time to send @p count ciphertexts to the coprocessor (us). */
    double sendCiphertextsUs(size_t count) const;

    /** Time to receive one result ciphertext (us). */
    double receiveCiphertextUs() const;

    /** Time to receive @p count result ciphertexts back-to-back (us). */
    double receiveCiphertextsUs(size_t count) const;

    /** Software FV.Add on one Arm core (us) — the Table I baseline. */
    double softwareAddUs() const;

    /** Per-instruction dispatch overhead (us). */
    double dispatchUs() const;

  private:
    std::shared_ptr<const fv::FvParams> params_;
    HwConfig config_;
    DmaModel dma_;
};

} // namespace heat::hw

#endif // HEAT_HW_ARM_HOST_H
