#include "hw/ntt_engine.h"

#include "common/bit_util.h"
#include "common/panic.h"

namespace heat::hw {

NttEngine::NttEngine(const HwConfig &config, size_t degree)
    : config_(config), n_(degree)
{
    fatalIf(!isPowerOfTwo(degree) || degree < 8,
            "NTT engine needs a power-of-two degree >= 8");
    log_n_ = log2Floor(degree);
    words_ = degree / 2;
}

std::vector<MemAccess>
NttEngine::stageReadSchedule(int stage) const
{
    panicIf(stage < 0 || stage >= log_n_, "stage out of range");
    const uint32_t half = static_cast<uint32_t>(words_ / 2);
    const size_t m = size_t(2) << stage; // Alg. 1's m

    std::vector<MemAccess> accesses;
    accesses.reserve(words_);

    if (m <= n_ / 4) {
        // Regime A: cores own disjoint banks.
        for (uint32_t i = 0; i < half; ++i) {
            accesses.push_back({i, 0, i});
            accesses.push_back({i, 1, half + i});
        }
    } else if (m == n_ / 2) {
        // Regime B: interleaved, core 1 inverted so the two cores always
        // target opposite banks (paper Sec. V-A3).
        for (uint32_t i = 0; i < half / 2; ++i) {
            accesses.push_back({2 * i, 0, i});
            accesses.push_back({2 * i + 1, 0, half + i});
            accesses.push_back({2 * i, 1, half + half / 2 + i});
            accesses.push_back({2 * i + 1, 1, half / 2 + i});
        }
    } else {
        // Regime C (m == n): one word at a time, disjoint banks.
        for (uint32_t i = 0; i < half; ++i) {
            accesses.push_back({i, 0, i});
            accesses.push_back({i, 1, half + i});
        }
    }
    return accesses;
}

Cycle
NttEngine::simulate(uint64_t &conflicts) const
{
    const uint32_t half = static_cast<uint32_t>(words_ / 2);
    BramBank lower(0, half);
    BramBank upper(half, half);
    const Cycle write_latency =
        static_cast<Cycle>(config_.butterfly_pipeline_depth);

    Cycle total = 0;
    for (int stage = 0; stage < log_n_; ++stage) {
        lower.reset();
        upper.reset();
        Cycle stage_end = 0;
        for (const MemAccess &a : stageReadSchedule(stage)) {
            BramBank &bank = lower.contains(a.word) ? lower : upper;
            bank.recordRead(total + a.cycle, a.word);
            stage_end = std::max(stage_end, a.cycle + 1);
        }
        // Writes replay the read pattern shifted by the pipeline depth;
        // the shift cannot create conflicts (uniform delay), but replay
        // them anyway so the accounting is complete.
        uint64_t read_conflicts = lower.conflicts() + upper.conflicts();
        lower.reset();
        upper.reset();
        for (const MemAccess &a : stageReadSchedule(stage)) {
            BramBank &bank = lower.contains(a.word) ? lower : upper;
            bank.recordWrite(total + a.cycle + write_latency, a.word);
        }
        conflicts += read_conflicts + lower.conflicts() + upper.conflicts();
        total += stage_end + static_cast<Cycle>(config_.ntt_stage_overhead);
    }
    return total;
}

Cycle
NttEngine::forwardCycles() const
{
    // Each stage streams n/4 cycles per core pair (n/2 words over 2
    // cores) plus the per-stage overhead.
    const Cycle per_stage =
        static_cast<Cycle>(words_ / 2 + config_.ntt_stage_overhead);
    return static_cast<Cycle>(log_n_) * per_stage;
}

Cycle
NttEngine::inverseCycles() const
{
    // The extra n^{-1} scaling pass streams one word per cycle through
    // the two multipliers (2 coefficients/cycle).
    return forwardCycles() +
           static_cast<Cycle>(words_ + config_.ntt_stage_overhead);
}

Cycle
NttEngine::coeffOpCycles() const
{
    // Two operand words are read (from different slots/banks) and one
    // result word written per cycle: n/2 beats plus pipeline depth.
    return static_cast<Cycle>(words_ + config_.coeff_pipeline_depth);
}

Cycle
NttEngine::rearrangeCycles() const
{
    // The layout permutation scatters words across banks, serializing
    // reads against writes: two passes over n/2 words.
    return static_cast<Cycle>(2 * words_);
}

Cycle
NttEngine::automorphCycles() const
{
    // tau_g is an index-mapped copy between two memory-file slots: the
    // target address walks i*g mod 2n, maintained incrementally (one
    // adder), and the x^n = -1 sign flip rides the write lane's
    // subtractor. Like Rearrange, the scattered writes serialize
    // against the sequential reads: two passes over n/2 words. The
    // optional WordDecomp digit broadcast reuses the Scale writeback's
    // reduce lanes and is free, exactly as in the Scale instruction.
    return static_cast<Cycle>(2 * words_);
}

} // namespace heat::hw
