/**
 * @file
 * Model of a banked BRAM block with port-usage accounting.
 *
 * A residue polynomial (n coefficients, two per 60-bit word) lives in two
 * "brown blocks" (Fig. 3): the lower block serves word addresses
 * [0, n/4), the upper block [n/4, n/2). Each block exposes one read port
 * and one write port per cycle (the two physical BRAM36K ports are split
 * one-for-read, one-for-write during NTT). The model records every access
 * and counts conflicts — the paper's central claim for the dual-core NTT
 * is that its schedule produces zero.
 */

#ifndef HEAT_HW_BRAM_H
#define HEAT_HW_BRAM_H

#include <cstdint>

#include "hw/config.h"

namespace heat::hw {

/** One dual-port memory block (an aligned pair of BRAM36Ks). */
class BramBank
{
  public:
    BramBank() = default;

    /**
     * @param first_word lowest word address this bank serves.
     * @param words number of 60-bit words.
     */
    BramBank(uint32_t first_word, uint32_t words);

    /** @return true iff @p addr falls in this bank. */
    bool
    contains(uint32_t addr) const
    {
        return addr >= first_word_ && addr < first_word_ + words_;
    }

    /**
     * Record a read at @p cycle. A second read in the same cycle is a
     * port conflict.
     */
    void recordRead(Cycle cycle, uint32_t addr);

    /** Record a write at @p cycle (see recordRead). */
    void recordWrite(Cycle cycle, uint32_t addr);

    /** @return number of port conflicts observed. */
    uint64_t conflicts() const { return conflicts_; }

    /** @return total reads served. */
    uint64_t reads() const { return reads_; }

    /** @return total writes served. */
    uint64_t writes() const { return writes_; }

    /** Forget all recorded activity. */
    void reset();

  private:
    uint32_t first_word_ = 0;
    uint32_t words_ = 0;
    Cycle last_read_cycle_ = ~Cycle(0);
    Cycle last_write_cycle_ = ~Cycle(0);
    uint64_t reads_ = 0;
    uint64_t writes_ = 0;
    uint64_t conflicts_ = 0;
};

} // namespace heat::hw

#endif // HEAT_HW_BRAM_H
