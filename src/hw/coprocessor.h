/**
 * @file
 * The instruction-set coprocessor (Fig. 10): seven RPAUs, two Lift/Scale
 * cores and the on-chip memory file behind a small instruction set.
 *
 * Execution is functional *and* timed: every instruction updates the
 * memory-file contents through the same arithmetic kernels the software
 * evaluator uses (results are bit-exact against fv::Evaluator's HPS
 * path) and charges a cycle cost derived from the block models
 * (NttEngine, LiftUnit, ScaleUnit, CoeffUnit) plus the Arm dispatch
 * overhead. DMA time (relinearization keys) is tracked separately in
 * microseconds of the 250 MHz domain.
 */

#ifndef HEAT_HW_COPROCESSOR_H
#define HEAT_HW_COPROCESSOR_H

#include <memory>
#include <vector>

#include "fv/galois.h"
#include "fv/keys.h"
#include "fv/params.h"
#include "hw/config.h"
#include "hw/dma.h"
#include "hw/isa.h"
#include "hw/lift_unit.h"
#include "hw/memory_file.h"
#include "hw/rpau.h"
#include "hw/scale_unit.h"

namespace heat::hw {

/** One coprocessor instance. */
class Coprocessor
{
  public:
    /**
     * @param params FV parameter set.
     * @param config hardware configuration.
     * @param rlk relinearization keys resident in DDR (may be null if
     *        the workload never issues kKeyLoad).
     * @param gkeys Galois key-switching keys resident in DDR (may be
     *        null if the workload never issues a Galois-selector
     *        kKeyLoad; see keyLoadAux).
     */
    Coprocessor(std::shared_ptr<const fv::FvParams> params,
                const HwConfig &config,
                const fv::RelinKeys *rlk = nullptr,
                const fv::GaloisKeys *gkeys = nullptr);

    /** @return the parameter set. */
    const fv::FvParams &params() const { return *params_; }

    /** @return the configuration. */
    const HwConfig &config() const { return config_; }

    /** @return the memory file. */
    MemoryFile &memory() { return memory_; }
    const MemoryFile &memory() const { return memory_; }

    /** @return RPAU @p i. */
    const Rpau &rpau(size_t i) const { return rpaus_[i]; }

    /** Reprogram: drop all memory-file contents so a different op
     *  schedule can allocate from a clean slate. */
    void reset() { memory_.reset(); }

    /**
     * Swap the DDR-resident key sets the kKeyLoad instruction streams
     * from (selector 0 = relin, else the Galois element) — the
     * multi-tenant serving layer re-points a worker's coprocessor at
     * the submitting session's keys before running its jobs. Either
     * pointer may be null when the upcoming programs never load from
     * that set; both must outlive every subsequent execute().
     */
    void
    attachKeys(const fv::RelinKeys *rlk, const fv::GaloisKeys *gkeys)
    {
        rlk_ = rlk;
        gkeys_ = gkeys;
    }

    /** Upload an operand polynomial (coefficient form, natural order).
     *  Transfer timing is the host model's responsibility. */
    PolyId uploadPoly(const ntt::RnsPoly &poly);

    /** Overwrite an existing record with fresh operand data. */
    void uploadInto(PolyId id, const ntt::RnsPoly &poly);

    /** Download a result polynomial. */
    ntt::RnsPoly downloadPoly(PolyId id) const;

    /**
     * Execute a program; returns its statistics. In kPerInstruction
     * mode every instruction carries the Arm dispatch overhead (the
     * paper's measured Table II costs); in kFusedProgram mode the whole
     * instruction stream is queued with a single dispatch — the circuit
     * compiler's fused execution model.
     */
    ExecStats execute(const Program &program,
                      DispatchMode mode = DispatchMode::kPerInstruction);

    /** Cycle cost of one instruction (dispatch overhead included). */
    Cycle instructionCycles(const Instruction &instr) const;

    /** Pure block-model cycle cost (no dispatch overhead). */
    Cycle instructionComputeCycles(const Instruction &instr) const;

    /** DMA microseconds charged by an instruction (kKeyLoad only). */
    double instructionDmaUs(const Instruction &instr) const;

    /** Serialized size of one polynomial over base @p tag in bytes
     *  (30-bit residues in 32-bit words). */
    size_t polyBytes(BaseTag tag) const;

  private:
    void exec(const Instruction &instr);
    void execTransform(const Instruction &instr, bool inverse);
    void execCoeffOp(const Instruction &instr);
    void execRearrange(const Instruction &instr);
    void execAutomorph(const Instruction &instr);
    void execKeyLoad(const Instruction &instr);

    std::shared_ptr<const fv::FvParams> params_;
    HwConfig config_;
    MemoryFile memory_;
    std::vector<Rpau> rpaus_;
    LiftUnit lift_unit_;
    ScaleUnit scale_unit_;
    DmaModel dma_;
    const fv::RelinKeys *rlk_;
    const fv::GaloisKeys *gkeys_;
};

} // namespace heat::hw

#endif // HEAT_HW_COPROCESSOR_H
