#include "hw/coeff_unit.h"

#include "common/panic.h"

namespace heat::hw {

void
CoeffUnit::mul(std::span<uint64_t> dst, std::span<const uint64_t> a,
               std::span<const uint64_t> b, const rns::Modulus &q) const
{
    panicIf(dst.size() != a.size() || a.size() != b.size(),
            "coeff unit operand size mismatch");
    const bool hw_path = q.bits() <= rns::kRnsPrimeBits;
    for (size_t i = 0; i < dst.size(); ++i) {
        // The hardware multiplies in the DSP array and reduces through
        // the sliding-window circuit.
        const uint64_t prod = a[i] * b[i];
        dst[i] = hw_path ? q.slidingWindowReduce(prod) : q.mul(a[i], b[i]);
    }
}

void
CoeffUnit::add(std::span<uint64_t> dst, std::span<const uint64_t> a,
               std::span<const uint64_t> b, const rns::Modulus &q) const
{
    panicIf(dst.size() != a.size() || a.size() != b.size(),
            "coeff unit operand size mismatch");
    for (size_t i = 0; i < dst.size(); ++i)
        dst[i] = q.add(a[i], b[i]);
}

void
CoeffUnit::sub(std::span<uint64_t> dst, std::span<const uint64_t> a,
               std::span<const uint64_t> b, const rns::Modulus &q) const
{
    panicIf(dst.size() != a.size() || a.size() != b.size(),
            "coeff unit operand size mismatch");
    for (size_t i = 0; i < dst.size(); ++i)
        dst[i] = q.sub(a[i], b[i]);
}

} // namespace heat::hw
