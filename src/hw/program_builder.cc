#include "hw/program_builder.h"

#include "common/panic.h"

namespace heat::hw {

namespace {

Instruction
make(Opcode op, PolyId dst, PolyId src0 = kNoPoly, PolyId src1 = kNoPoly,
     uint8_t batch = 0)
{
    Instruction i;
    i.op = op;
    i.dst = dst;
    i.src0 = src0;
    i.src1 = src1;
    i.batch = batch;
    return i;
}

} // namespace

namespace {

OpPlan
makePlan(Coprocessor &cp, OpPlan::Kind kind)
{
    OpPlan plan;
    plan.kind = kind;
    ntt::RnsPoly zero(cp.params().qBase(), cp.params().degree());
    plan.in_a = {cp.uploadPoly(zero), cp.uploadPoly(zero)};
    plan.in_b = {cp.uploadPoly(zero), cp.uploadPoly(zero)};
    ProgramBuilder builder(cp);
    plan.program = kind == OpPlan::Kind::kAdd
                       ? builder.buildAdd(plan.in_a, plan.in_b)
                       : builder.buildMult(plan.in_a, plan.in_b);
    return plan;
}

} // namespace

OpPlan
makeAddPlan(Coprocessor &cp)
{
    return makePlan(cp, OpPlan::Kind::kAdd);
}

OpPlan
makeMultPlan(Coprocessor &cp)
{
    return makePlan(cp, OpPlan::Kind::kMult);
}

void
preparePlanSlots(Coprocessor &cp, const OpPlan &plan)
{
    const OpPlan replay = plan.kind == OpPlan::Kind::kAdd
                              ? makeAddPlan(cp)
                              : makeMultPlan(cp);
    panicIf(!(replay == plan),
            "preparePlanSlots: replayed allocation diverges from the "
            "plan; the coprocessor was not freshly constructed with the "
            "plan's parameters");
}

void
uploadPlanInputs(Coprocessor &cp, const OpPlan &plan,
                 const std::array<const ntt::RnsPoly *, 2> &a,
                 const std::array<const ntt::RnsPoly *, 2> &b)
{
    for (int i = 0; i < 2; ++i) {
        cp.uploadInto(plan.in_a[i], *a[i]);
        cp.uploadInto(plan.in_b[i], *b[i]);
    }
}

Program
ProgramBuilder::buildAdd(std::array<PolyId, 2> a, std::array<PolyId, 2> b)
{
    MemoryFile &mem = cp_.memory();
    Program p;
    for (int i = 0; i < 2; ++i) {
        PolyId c = mem.allocate(BaseTag::kQ, Layout::kNatural);
        p.instrs.push_back(make(Opcode::kCoeffAdd, c, a[i], b[i], 0));
        p.outputs.push_back(c);
    }
    return p;
}

void
ProgramBuilder::emitForward(Program &p, PolyId id, bool full)
{
    const int batches = full ? 2 : 1;
    for (int b = 0; b < batches; ++b) {
        p.instrs.push_back(make(Opcode::kRearrange, id, kNoPoly, kNoPoly,
                                static_cast<uint8_t>(b)));
        p.instrs.push_back(make(Opcode::kNtt, id, kNoPoly, kNoPoly,
                                static_cast<uint8_t>(b)));
    }
}

void
ProgramBuilder::emitInverse(Program &p, PolyId id, bool full)
{
    const int batches = full ? 2 : 1;
    for (int b = 0; b < batches; ++b) {
        p.instrs.push_back(make(Opcode::kIntt, id, kNoPoly, kNoPoly,
                                static_cast<uint8_t>(b)));
        p.instrs.push_back(make(Opcode::kRearrange, id, kNoPoly, kNoPoly,
                                static_cast<uint8_t>(b)));
    }
}

Program
ProgramBuilder::buildMult(std::array<PolyId, 2> a, std::array<PolyId, 2> b)
{
    MemoryFile &mem = cp_.memory();
    const size_t digits = cp_.params().rnsDigitCount();
    Program p;

    const PolyId a0 = a[0], a1 = a[1], b0 = b[0], b1 = b[1];

    // --- Step 1: Lift q->Q of the four input polynomials --------------
    for (PolyId x : {a0, a1, b0, b1}) {
        p.instrs.push_back(make(Opcode::kLift, x));
        mem.extendToFull(x); // build-time slot accounting
    }

    // --- Step 2: forward transforms ------------------------------------
    for (PolyId x : {a0, a1, b0, b1})
        emitForward(p, x, true);

    // --- Step 3: tensor products in the NTT domain ----------------------
    PolyId t1 = mem.allocate(BaseTag::kFull, Layout::kNttDomain);
    for (uint8_t batch = 0; batch < 2; ++batch)
        p.instrs.push_back(make(Opcode::kCoeffMul, t1, a0, b1, batch));
    for (uint8_t batch = 0; batch < 2; ++batch)
        p.instrs.push_back(make(Opcode::kCoeffMul, a0, a0, b0, batch));
    for (uint8_t batch = 0; batch < 2; ++batch)
        p.instrs.push_back(make(Opcode::kCoeffMul, b0, a1, b0, batch));
    for (uint8_t batch = 0; batch < 2; ++batch)
        p.instrs.push_back(make(Opcode::kCoeffAdd, b0, b0, t1, batch));
    for (uint8_t batch = 0; batch < 2; ++batch)
        p.instrs.push_back(make(Opcode::kCoeffMul, a1, a1, b1, batch));
    mem.release(t1);
    mem.release(b1);

    // --- Step 4: inverse transforms -------------------------------------
    for (PolyId x : {a0, b0, a1})
        emitInverse(p, x, true);

    // --- Step 5: Scale Q->q ----------------------------------------------
    PolyId c0 = mem.allocate(BaseTag::kQ, Layout::kNatural);
    p.instrs.push_back(make(Opcode::kScale, c0, a0));
    mem.release(a0);
    PolyId c1 = mem.allocate(BaseTag::kQ, Layout::kNatural);
    p.instrs.push_back(make(Opcode::kScale, c1, b0));
    mem.release(b0);

    // Scale of c~2 broadcasts the WordDecomp digits during writeback.
    PolyId c2 = mem.allocate(BaseTag::kQ, Layout::kNatural);
    std::vector<PolyId> digit_ids;
    for (size_t i = 0; i < digits; ++i)
        digit_ids.push_back(mem.allocate(BaseTag::kQ, Layout::kNatural));
    {
        Instruction scale = make(Opcode::kScale, c2, a1);
        scale.extra = digit_ids;
        p.instrs.push_back(scale);
    }
    mem.release(a1);
    mem.release(c2); // only the digits are consumed downstream

    // --- Step 6: relinearization ------------------------------------------
    PolyId acc0 = mem.allocate(BaseTag::kQ, Layout::kNttDomain);
    PolyId acc1 = mem.allocate(BaseTag::kQ, Layout::kNttDomain);
    PolyId key0 = mem.allocate(BaseTag::kQ, Layout::kNttDomain);
    PolyId key1 = mem.allocate(BaseTag::kQ, Layout::kNttDomain);
    PolyId tmp = mem.allocate(BaseTag::kQ, Layout::kNttDomain);
    for (size_t i = 0; i < digits; ++i) {
        Instruction load = make(Opcode::kKeyLoad, kNoPoly);
        load.aux = static_cast<uint32_t>(i);
        load.extra = {key0, key1};
        p.instrs.push_back(load);

        emitForward(p, digit_ids[i], false);
        if (i == 0) {
            // The first digit's products initialize the accumulators
            // (also resetting them when the program is re-executed).
            p.instrs.push_back(
                make(Opcode::kCoeffMul, acc0, digit_ids[i], key0, 0));
            p.instrs.push_back(
                make(Opcode::kCoeffMul, acc1, digit_ids[i], key1, 0));
        } else {
            p.instrs.push_back(
                make(Opcode::kCoeffMul, tmp, digit_ids[i], key0, 0));
            p.instrs.push_back(
                make(Opcode::kCoeffAdd, acc0, acc0, tmp, 0));
            p.instrs.push_back(
                make(Opcode::kCoeffMul, tmp, digit_ids[i], key1, 0));
            p.instrs.push_back(
                make(Opcode::kCoeffAdd, acc1, acc1, tmp, 0));
        }
        mem.release(digit_ids[i]);
    }
    mem.release(key0);
    mem.release(key1);
    mem.release(tmp);

    emitInverse(p, acc0, false);
    emitInverse(p, acc1, false);
    p.instrs.push_back(make(Opcode::kCoeffAdd, c0, c0, acc0, 0));
    p.instrs.push_back(make(Opcode::kCoeffAdd, c1, c1, acc1, 0));
    mem.release(acc0);
    mem.release(acc1);

    p.outputs = {c0, c1};
    return p;
}

} // namespace heat::hw
