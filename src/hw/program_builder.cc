#include "hw/program_builder.h"

#include "common/panic.h"
#include "fv/galois.h"

namespace heat::hw {

namespace {

Instruction
make(Opcode op, PolyId dst, PolyId src0 = kNoPoly, PolyId src1 = kNoPoly,
     uint8_t batch = 0)
{
    Instruction i;
    i.op = op;
    i.dst = dst;
    i.src0 = src0;
    i.src1 = src1;
    i.batch = batch;
    return i;
}

OpPlan
makePlan(Coprocessor &cp, OpPlan::Kind kind)
{
    OpPlan plan;
    plan.kind = kind;
    ntt::RnsPoly zero(cp.params().qBase(), cp.params().degree());
    plan.in_a = {cp.uploadPoly(zero), cp.uploadPoly(zero)};
    plan.in_b = {cp.uploadPoly(zero), cp.uploadPoly(zero)};
    ProgramBuilder builder(cp);
    plan.program = kind == OpPlan::Kind::kAdd
                       ? builder.buildAdd(plan.in_a, plan.in_b)
                       : builder.buildMult(plan.in_a, plan.in_b);
    return plan;
}

} // namespace

OpPlan
makeAddPlan(Coprocessor &cp)
{
    return makePlan(cp, OpPlan::Kind::kAdd);
}

OpPlan
makeMultPlan(Coprocessor &cp)
{
    return makePlan(cp, OpPlan::Kind::kMult);
}

void
preparePlanSlots(Coprocessor &cp, const OpPlan &plan)
{
    const OpPlan replay = plan.kind == OpPlan::Kind::kAdd
                              ? makeAddPlan(cp)
                              : makeMultPlan(cp);
    panicIf(!(replay == plan),
            "preparePlanSlots: replayed allocation diverges from the "
            "plan; the coprocessor was not freshly constructed with the "
            "plan's parameters");
}

void
uploadPlanInputs(Coprocessor &cp, const OpPlan &plan,
                 const std::array<const ntt::RnsPoly *, 2> &a,
                 const std::array<const ntt::RnsPoly *, 2> &b)
{
    for (int i = 0; i < 2; ++i) {
        cp.uploadInto(plan.in_a[i], *a[i]);
        cp.uploadInto(plan.in_b[i], *b[i]);
    }
}

OpEmitter::OpEmitter(const fv::FvParams &params, SlotAllocator &alloc,
                     Program &program)
    : params_(params), alloc_(alloc), p_(program)
{
}

PolyId
OpEmitter::zeroSlot()
{
    if (zero_ == kNoPoly) {
        // Always allocated at level 0: a full-size zero record is a
        // valid zero at every level (coeff ops read the live prefix),
        // so one shared constant serves the whole program regardless of
        // how deep the mod-switched regions go.
        const size_t level = alloc_.level();
        alloc_.setLevel(0);
        zero_ = alloc_.allocate(BaseTag::kQ, Layout::kNatural,
                                "zero constant");
        alloc_.setLevel(level);
    }
    return zero_;
}

PolyId
OpEmitter::copyPoly(PolyId src)
{
    const PolyId z = zeroSlot();
    const PolyId c =
        alloc_.allocate(BaseTag::kQ, Layout::kNatural, "operand copy");
    p_.instrs.push_back(make(Opcode::kCoeffAdd, c, src, z, 0));
    return c;
}

void
OpEmitter::emitForward(PolyId id, bool full)
{
    const int batches = full ? 2 : 1;
    for (int b = 0; b < batches; ++b) {
        p_.instrs.push_back(make(Opcode::kRearrange, id, kNoPoly, kNoPoly,
                                 static_cast<uint8_t>(b)));
        p_.instrs.push_back(make(Opcode::kNtt, id, kNoPoly, kNoPoly,
                                 static_cast<uint8_t>(b)));
    }
}

void
OpEmitter::emitInverse(PolyId id, bool full)
{
    const int batches = full ? 2 : 1;
    for (int b = 0; b < batches; ++b) {
        p_.instrs.push_back(make(Opcode::kIntt, id, kNoPoly, kNoPoly,
                                 static_cast<uint8_t>(b)));
        p_.instrs.push_back(make(Opcode::kRearrange, id, kNoPoly, kNoPoly,
                                 static_cast<uint8_t>(b)));
    }
}

std::array<PolyId, 2>
OpEmitter::emitAdd(std::array<PolyId, 2> a, std::array<PolyId, 2> b,
                   bool consume_a)
{
    std::array<PolyId, 2> out = a;
    for (int i = 0; i < 2; ++i) {
        if (!consume_a)
            out[i] = alloc_.allocate(BaseTag::kQ, Layout::kNatural,
                                     "FV.Add result");
        p_.instrs.push_back(
            make(Opcode::kCoeffAdd, out[i], a[i], b[i], 0));
    }
    return out;
}

std::array<PolyId, 2>
OpEmitter::emitSub(std::array<PolyId, 2> a, std::array<PolyId, 2> b,
                   bool consume_a)
{
    std::array<PolyId, 2> out = a;
    for (int i = 0; i < 2; ++i) {
        if (!consume_a)
            out[i] = alloc_.allocate(BaseTag::kQ, Layout::kNatural,
                                     "FV.Sub result");
        p_.instrs.push_back(
            make(Opcode::kCoeffSub, out[i], a[i], b[i], 0));
    }
    return out;
}

std::array<PolyId, 2>
OpEmitter::emitNegate(std::array<PolyId, 2> a, bool consume)
{
    // The coefficient unit has no dedicated negation: subtract from the
    // zero register instead (bit-exact with fv::Evaluator's negate,
    // since (0 - x) mod q and -x mod q share the representative).
    const PolyId z = zeroSlot();
    std::array<PolyId, 2> out = a;
    for (int i = 0; i < 2; ++i) {
        if (!consume)
            out[i] = alloc_.allocate(BaseTag::kQ, Layout::kNatural,
                                     "Negate result");
        p_.instrs.push_back(make(Opcode::kCoeffSub, out[i], z, a[i], 0));
    }
    return out;
}

std::array<PolyId, 2>
OpEmitter::emitAddPlain(std::array<PolyId, 2> a, PolyId plain,
                        bool consume)
{
    // Only c0 changes: ct + Delta*m touches the first polynomial.
    if (consume) {
        p_.instrs.push_back(make(Opcode::kCoeffAdd, a[0], a[0], plain, 0));
        return a;
    }
    const PolyId c0 = alloc_.allocate(BaseTag::kQ, Layout::kNatural,
                                      "AddPlain result");
    p_.instrs.push_back(make(Opcode::kCoeffAdd, c0, a[0], plain, 0));
    const PolyId c1 = copyPoly(a[1]);
    return {c0, c1};
}

std::array<PolyId, 2>
OpEmitter::emitMultPlain(std::array<PolyId, 2> a, PolyId plain,
                         bool consume)
{
    // NTT-domain pointwise products over the q base, mirroring
    // fv::Evaluator::multiplyPlain. The plain slot is transformed in
    // place; the ciphertext polynomials round-trip through the NTT.
    emitForward(plain, /*full=*/false);
    std::array<PolyId, 2> out = a;
    for (int i = 0; i < 2; ++i) {
        if (!consume)
            out[i] = copyPoly(a[i]);
        emitForward(out[i], /*full=*/false);
        p_.instrs.push_back(
            make(Opcode::kCoeffMul, out[i], out[i], plain, 0));
        emitInverse(out[i], /*full=*/false);
    }
    return out;
}

OpEmitter::MultResult
OpEmitter::emitMult(std::array<PolyId, 2> a, std::array<PolyId, 2> b,
                    bool consume_a, bool consume_b, bool want_digits,
                    bool want_c2)
{
    panicIf(!want_digits && !want_c2,
            "emitMult must produce the digits, c2, or both");
    if (!consume_a)
        a = {copyPoly(a[0]), copyPoly(a[1])};
    if (!consume_b)
        b = {copyPoly(b[0]), copyPoly(b[1])};

    const PolyId a0 = a[0], a1 = a[1], b0 = b[0], b1 = b[1];

    // --- Step 1: Lift q->Q of the four input polynomials --------------
    for (PolyId x : {a0, a1, b0, b1}) {
        p_.instrs.push_back(make(Opcode::kLift, x));
        alloc_.extendToFull(x, "Mult lift"); // build-time slot accounting
    }

    // --- Step 2: forward transforms ------------------------------------
    for (PolyId x : {a0, a1, b0, b1})
        emitForward(x, true);

    // --- Step 3: tensor products in the NTT domain ----------------------
    PolyId t1 = alloc_.allocate(BaseTag::kFull, Layout::kNttDomain,
                                "Mult tensor temporary");
    for (uint8_t batch = 0; batch < 2; ++batch)
        p_.instrs.push_back(make(Opcode::kCoeffMul, t1, a0, b1, batch));
    for (uint8_t batch = 0; batch < 2; ++batch)
        p_.instrs.push_back(make(Opcode::kCoeffMul, a0, a0, b0, batch));
    for (uint8_t batch = 0; batch < 2; ++batch)
        p_.instrs.push_back(make(Opcode::kCoeffMul, b0, a1, b0, batch));
    for (uint8_t batch = 0; batch < 2; ++batch)
        p_.instrs.push_back(make(Opcode::kCoeffAdd, b0, b0, t1, batch));
    for (uint8_t batch = 0; batch < 2; ++batch)
        p_.instrs.push_back(make(Opcode::kCoeffMul, a1, a1, b1, batch));
    alloc_.release(t1);
    alloc_.release(b1);

    // --- Step 4: inverse transforms -------------------------------------
    for (PolyId x : {a0, b0, a1})
        emitInverse(x, true);

    // --- Step 5: Scale Q->q ----------------------------------------------
    return finishTensor(a0, b0, a1, want_digits, want_c2);
}

OpEmitter::MultResult
OpEmitter::emitSquare(std::array<PolyId, 2> a, bool consume,
                      bool want_digits, bool want_c2)
{
    panicIf(!want_digits && !want_c2,
            "emitSquare must produce the digits, c2, or both");
    if (!consume)
        a = {copyPoly(a[0]), copyPoly(a[1])};
    const PolyId a0 = a[0], a1 = a[1];

    // --- Step 1: Lift q->Q of the two input polynomials ----------------
    for (PolyId x : {a0, a1}) {
        p_.instrs.push_back(make(Opcode::kLift, x));
        alloc_.extendToFull(x, "Square lift");
    }

    // --- Step 2: forward transforms ------------------------------------
    for (PolyId x : {a0, a1})
        emitForward(x, true);

    // --- Step 3: tensor: (a0 + a1 y)^2 ----------------------------------
    // The cross term a0*a1 + a1*a0 is the same product twice, so one
    // multiplication plus a doubling addition reproduces the general
    // tensor bit-for-bit (modular products are commutative).
    PolyId t1 = alloc_.allocate(BaseTag::kFull, Layout::kNttDomain,
                                "Square tensor temporary");
    for (uint8_t batch = 0; batch < 2; ++batch)
        p_.instrs.push_back(make(Opcode::kCoeffMul, t1, a0, a1, batch));
    for (uint8_t batch = 0; batch < 2; ++batch)
        p_.instrs.push_back(make(Opcode::kCoeffAdd, t1, t1, t1, batch));
    for (uint8_t batch = 0; batch < 2; ++batch)
        p_.instrs.push_back(make(Opcode::kCoeffMul, a0, a0, a0, batch));
    for (uint8_t batch = 0; batch < 2; ++batch)
        p_.instrs.push_back(make(Opcode::kCoeffMul, a1, a1, a1, batch));

    // --- Step 4: inverse transforms -------------------------------------
    for (PolyId x : {a0, t1, a1})
        emitInverse(x, true);

    // --- Step 5: Scale Q->q ----------------------------------------------
    return finishTensor(a0, t1, a1, want_digits, want_c2);
}

OpEmitter::MultResult
OpEmitter::finishTensor(PolyId s0, PolyId s1, PolyId s2, bool want_digits,
                        bool want_c2)
{
    const size_t digits = params_.rnsDigitCount(alloc_.level());
    MultResult result;

    PolyId c0 =
        alloc_.allocate(BaseTag::kQ, Layout::kNatural, "Mult c0");
    p_.instrs.push_back(make(Opcode::kScale, c0, s0));
    alloc_.release(s0);
    PolyId c1 =
        alloc_.allocate(BaseTag::kQ, Layout::kNatural, "Mult c1");
    p_.instrs.push_back(make(Opcode::kScale, c1, s1));
    alloc_.release(s1);

    // Scale of c~2 broadcasts the WordDecomp digits during writeback.
    PolyId c2 =
        alloc_.allocate(BaseTag::kQ, Layout::kNatural, "Mult c2");
    if (want_digits) {
        for (size_t i = 0; i < digits; ++i)
            result.digits.push_back(alloc_.allocate(
                BaseTag::kQ, Layout::kNatural, "WordDecomp digit"));
    }
    {
        Instruction scale = make(Opcode::kScale, c2, s2);
        scale.extra = result.digits;
        p_.instrs.push_back(scale);
    }
    alloc_.release(s2);
    if (!want_c2) {
        alloc_.release(c2); // only the digits are consumed downstream
        c2 = kNoPoly;
    }

    result.ct = {c0, c1, c2};
    return result;
}

std::array<PolyId, 2>
OpEmitter::accumulateKeySwitch(const std::vector<PolyId> &digits,
                               uint32_t selector)
{
    PolyId acc0 = alloc_.allocate(BaseTag::kQ, Layout::kNttDomain,
                                  "Key-switch accumulator");
    PolyId acc1 = alloc_.allocate(BaseTag::kQ, Layout::kNttDomain,
                                  "Key-switch accumulator");
    PolyId key0 = alloc_.allocate(BaseTag::kQ, Layout::kNttDomain,
                                  "Key-switch key buffer");
    PolyId key1 = alloc_.allocate(BaseTag::kQ, Layout::kNttDomain,
                                  "Key-switch key buffer");
    PolyId tmp = alloc_.allocate(BaseTag::kQ, Layout::kNttDomain,
                                 "Key-switch temporary");
    for (size_t i = 0; i < digits.size(); ++i) {
        Instruction load = make(Opcode::kKeyLoad, kNoPoly);
        load.aux = keyLoadAux(selector, static_cast<uint32_t>(i));
        load.extra = {key0, key1};
        p_.instrs.push_back(load);

        emitForward(digits[i], false);
        if (i == 0) {
            // The first digit's products initialize the accumulators
            // (also resetting them when the program is re-executed).
            p_.instrs.push_back(
                make(Opcode::kCoeffMul, acc0, digits[i], key0, 0));
            p_.instrs.push_back(
                make(Opcode::kCoeffMul, acc1, digits[i], key1, 0));
        } else {
            p_.instrs.push_back(
                make(Opcode::kCoeffMul, tmp, digits[i], key0, 0));
            p_.instrs.push_back(
                make(Opcode::kCoeffAdd, acc0, acc0, tmp, 0));
            p_.instrs.push_back(
                make(Opcode::kCoeffMul, tmp, digits[i], key1, 0));
            p_.instrs.push_back(
                make(Opcode::kCoeffAdd, acc1, acc1, tmp, 0));
        }
        alloc_.release(digits[i]);
    }
    alloc_.release(key0);
    alloc_.release(key1);
    alloc_.release(tmp);

    emitInverse(acc0, false);
    emitInverse(acc1, false);
    return {acc0, acc1};
}

std::array<PolyId, 2>
OpEmitter::emitRelin(PolyId c0, PolyId c1,
                     const std::vector<PolyId> &digits, bool consume_c01)
{
    if (!consume_c01) {
        c0 = copyPoly(c0);
        c1 = copyPoly(c1);
    }
    const auto [acc0, acc1] = accumulateKeySwitch(digits, 0);
    p_.instrs.push_back(make(Opcode::kCoeffAdd, c0, c0, acc0, 0));
    p_.instrs.push_back(make(Opcode::kCoeffAdd, c1, c1, acc1, 0));
    alloc_.release(acc0);
    alloc_.release(acc1);
    return {c0, c1};
}

std::array<PolyId, 2>
OpEmitter::emitModSwitch(std::array<PolyId, 2> a, bool consume)
{
    const size_t from = alloc_.level();
    panicIf(from >= params_.maxLevel(),
            "cannot mod-switch past the last level");
    // Results live one level deeper; the allocator stays there so the
    // rest of the region emits against the shrunken basis.
    alloc_.setLevel(from + 1);
    std::array<PolyId, 2> out;
    for (int i = 0; i < 2; ++i) {
        out[i] = alloc_.allocate(BaseTag::kQ, Layout::kNatural,
                                 "ModSwitch result");
        p_.instrs.push_back(make(Opcode::kModSwitch, out[i], a[i]));
    }
    if (consume) {
        alloc_.release(a[0]);
        alloc_.release(a[1]);
    }
    return out;
}

std::array<PolyId, 2>
OpEmitter::emitApplyGalois(std::array<PolyId, 2> a,
                           uint32_t galois_element)
{
    // tau_1 is the identity: no key-switch, no key required — just a
    // fresh copy, matching fv::Evaluator::applyGalois bit for bit.
    if (galois_element == 1)
        return {copyPoly(a[0]), copyPoly(a[1])};

    const size_t digit_count = params_.rnsDigitCount(alloc_.level());

    // tau_g(c1) is never materialized: each permutation pass streams
    // straight into one lane of the WordDecomp broadcast (the Scale
    // writeback's reduce lanes), and the digit dies after its MAC —
    // one resident digit record instead of kq keeps the key-switch
    // inside the memory-file budget even at the paper parameter set.
    PolyId acc0 = alloc_.allocate(BaseTag::kQ, Layout::kNttDomain,
                                  "Key-switch accumulator");
    PolyId acc1 = alloc_.allocate(BaseTag::kQ, Layout::kNttDomain,
                                  "Key-switch accumulator");
    PolyId key0 = alloc_.allocate(BaseTag::kQ, Layout::kNttDomain,
                                  "Key-switch key buffer");
    PolyId key1 = alloc_.allocate(BaseTag::kQ, Layout::kNttDomain,
                                  "Key-switch key buffer");
    PolyId tmp = alloc_.allocate(BaseTag::kQ, Layout::kNttDomain,
                                 "Key-switch temporary");
    for (size_t i = 0; i < digit_count; ++i) {
        const PolyId digit = alloc_.allocate(
            BaseTag::kQ, Layout::kNatural, "Galois WordDecomp digit");
        Instruction decompose =
            make(Opcode::kAutomorph, kNoPoly, a[1]);
        decompose.aux = galois_element;
        decompose.extra.assign(digit_count, kNoPoly);
        decompose.extra[i] = digit;
        p_.instrs.push_back(decompose);

        Instruction load = make(Opcode::kKeyLoad, kNoPoly);
        load.aux =
            keyLoadAux(galois_element, static_cast<uint32_t>(i));
        load.extra = {key0, key1};
        p_.instrs.push_back(load);

        emitForward(digit, false);
        if (i == 0) {
            p_.instrs.push_back(
                make(Opcode::kCoeffMul, acc0, digit, key0, 0));
            p_.instrs.push_back(
                make(Opcode::kCoeffMul, acc1, digit, key1, 0));
        } else {
            p_.instrs.push_back(
                make(Opcode::kCoeffMul, tmp, digit, key0, 0));
            p_.instrs.push_back(
                make(Opcode::kCoeffAdd, acc0, acc0, tmp, 0));
            p_.instrs.push_back(
                make(Opcode::kCoeffMul, tmp, digit, key1, 0));
            p_.instrs.push_back(
                make(Opcode::kCoeffAdd, acc1, acc1, tmp, 0));
        }
        alloc_.release(digit);
    }
    alloc_.release(key0);
    alloc_.release(key1);
    alloc_.release(tmp);

    emitInverse(acc0, false);
    emitInverse(acc1, false);

    // c0' = tau_g(c0) + sum_i D_i(tau_g(c1)) key0_i, c1' = the key1 sum.
    PolyId p0 =
        alloc_.allocate(BaseTag::kQ, Layout::kNatural, "Galois c0");
    Instruction perm0 = make(Opcode::kAutomorph, p0, a[0]);
    perm0.aux = galois_element;
    p_.instrs.push_back(perm0);
    p_.instrs.push_back(make(Opcode::kCoeffAdd, p0, p0, acc0, 0));
    alloc_.release(acc0);
    return {p0, acc1};
}

std::vector<PolyId>
OpEmitter::emitDecomposeNtt(PolyId c1)
{
    const size_t digit_count = params_.rnsDigitCount(alloc_.level());
    std::vector<PolyId> digits;
    digits.reserve(digit_count);
    for (size_t i = 0; i < digit_count; ++i)
        digits.push_back(alloc_.allocate(BaseTag::kQ, Layout::kNatural,
                                         "Hoisted WordDecomp digit"));
    // Identity automorphism: a pure decompose pass through the
    // writeback broadcast.
    Instruction decompose = make(Opcode::kAutomorph, kNoPoly, c1);
    decompose.aux = 1;
    decompose.extra = digits;
    p_.instrs.push_back(decompose);
    for (PolyId d : digits)
        emitForward(d, false);
    return digits;
}

std::array<PolyId, 2>
OpEmitter::emitHoistedGalois(std::array<PolyId, 2> a,
                             const std::vector<PolyId> &digits_ntt,
                             uint32_t galois_element)
{
    // Identity rotations never join the key-switch (fv::Evaluator's
    // hoisted path returns its input unchanged for element 1, so the
    // bit-exact lowering is a plain copy that ignores the digits).
    if (galois_element == 1)
        return {copyPoly(a[0]), copyPoly(a[1])};

    // The kq shared digit records dominate the slot budget, so the
    // tail runs lean: no separate MAC temporary (the permutation
    // buffer is overwritten by the product and re-permuted for the
    // second key half — an extra cheap automorph instead of six more
    // resident slots), and tau_g(c0) only allocates after the key
    // buffers die.
    PolyId acc0 = alloc_.allocate(BaseTag::kQ, Layout::kNttDomain,
                                  "Key-switch accumulator");
    PolyId acc1 = alloc_.allocate(BaseTag::kQ, Layout::kNttDomain,
                                  "Key-switch accumulator");
    PolyId key0 = alloc_.allocate(BaseTag::kQ, Layout::kNttDomain,
                                  "Key-switch key buffer");
    PolyId key1 = alloc_.allocate(BaseTag::kQ, Layout::kNttDomain,
                                  "Key-switch key buffer");
    PolyId perm = alloc_.allocate(BaseTag::kQ, Layout::kNttDomain,
                                  "Hoisted digit permutation");
    const auto permute = [&](PolyId digit) {
        // tau_g of a shared digit in the NTT domain: a data
        // permutation of the evaluation points, no transform needed —
        // the whole point of hoisting.
        Instruction dperm = make(Opcode::kAutomorph, perm, digit);
        dperm.aux = galois_element;
        p_.instrs.push_back(dperm);
    };
    for (size_t i = 0; i < digits_ntt.size(); ++i) {
        Instruction load = make(Opcode::kKeyLoad, kNoPoly);
        load.aux =
            keyLoadAux(galois_element, static_cast<uint32_t>(i));
        load.extra = {key0, key1};
        p_.instrs.push_back(load);

        permute(digits_ntt[i]);
        if (i == 0) {
            p_.instrs.push_back(
                make(Opcode::kCoeffMul, acc0, perm, key0, 0));
            p_.instrs.push_back(
                make(Opcode::kCoeffMul, acc1, perm, key1, 0));
        } else {
            p_.instrs.push_back(
                make(Opcode::kCoeffMul, perm, perm, key0, 0));
            p_.instrs.push_back(
                make(Opcode::kCoeffAdd, acc0, acc0, perm, 0));
            permute(digits_ntt[i]);
            p_.instrs.push_back(
                make(Opcode::kCoeffMul, perm, perm, key1, 0));
            p_.instrs.push_back(
                make(Opcode::kCoeffAdd, acc1, acc1, perm, 0));
        }
    }
    alloc_.release(key0);
    alloc_.release(key1);
    alloc_.release(perm);

    emitInverse(acc0, false);
    emitInverse(acc1, false);
    PolyId p0 =
        alloc_.allocate(BaseTag::kQ, Layout::kNatural, "Galois c0");
    Instruction perm0 = make(Opcode::kAutomorph, p0, a[0]);
    perm0.aux = galois_element;
    p_.instrs.push_back(perm0);
    p_.instrs.push_back(make(Opcode::kCoeffAdd, p0, p0, acc0, 0));
    alloc_.release(acc0);
    return {p0, acc1};
}

std::array<PolyId, 2>
OpEmitter::emitApplyGaloisHoistedSingle(std::array<PolyId, 2> a,
                                        uint32_t galois_element)
{
    if (galois_element == 1)
        return {copyPoly(a[0]), copyPoly(a[1])}; // identity, no digits
    std::vector<PolyId> digits = emitDecomposeNtt(a[1]);
    const std::array<PolyId, 2> out =
        emitHoistedGalois(a, digits, galois_element);
    for (PolyId d : digits)
        alloc_.release(d);
    return out;
}

std::array<PolyId, 2>
OpEmitter::emitRotateSum(std::array<PolyId, 2> a)
{
    const size_t n = params_.degree();
    // Mirrors fv::Evaluator::sumAllSlots: accumulate over the row
    // orbit with power-of-two rotations, then fold in the conjugate
    // column. Every rotation uses the unhoisted schedule — each one
    // rotates the freshly-updated accumulator, so there is nothing to
    // hoist.
    std::array<PolyId, 2> acc = {copyPoly(a[0]), copyPoly(a[1])};
    const auto fold = [&](uint32_t g) {
        const std::array<PolyId, 2> rotated = emitApplyGalois(acc, g);
        emitAdd(acc, rotated, /*consume_a=*/true);
        alloc_.release(rotated[0]);
        alloc_.release(rotated[1]);
    };
    for (size_t step = 1; step <= n / 4; step *= 2)
        fold(fv::galoisElementForStep(static_cast<int>(step), n));
    fold(static_cast<uint32_t>(2 * n - 1));
    return acc;
}

Program
ProgramBuilder::buildAdd(std::array<PolyId, 2> a, std::array<PolyId, 2> b)
{
    Program p;
    OpEmitter emitter(cp_.params(), cp_.memory(), p);
    const std::array<PolyId, 2> out =
        emitter.emitAdd(a, b, /*consume_a=*/false);
    p.outputs = {out[0], out[1]};
    return p;
}

Program
ProgramBuilder::buildMult(std::array<PolyId, 2> a, std::array<PolyId, 2> b)
{
    Program p;
    OpEmitter emitter(cp_.params(), cp_.memory(), p);
    OpEmitter::MultResult tensor =
        emitter.emitMult(a, b, /*consume_a=*/true, /*consume_b=*/true,
                         /*want_digits=*/true, /*want_c2=*/false);
    const std::array<PolyId, 2> out = emitter.emitRelin(
        tensor.ct[0], tensor.ct[1], tensor.digits, /*consume_c01=*/true);
    p.outputs = {out[0], out[1]};
    return p;
}

} // namespace heat::hw
