/**
 * @file
 * The Sec. VI-D estimation model behind Table V.
 *
 * Starting from the measured base configuration (n = 2^12,
 * log q = 180), every doubling of both the polynomial degree and the
 * coefficient size multiplies the work by ~4.34x; doubling the number
 * of RPAUs and Lift/Scale cores (2x logic) leaves a net ~2.17x
 * computation-time growth, while off-chip transfer volume grows ~4x.
 * Resources scale 2x in logic (LUT/FF/DSP) and 4x in memory (BRAM).
 */

#ifndef HEAT_HW_SCALING_ESTIMATOR_H
#define HEAT_HW_SCALING_ESTIMATOR_H

#include <cstddef>
#include <vector>

namespace heat::hw {

/** One row of Table V. */
struct ScalingRow
{
    size_t log2_degree;  ///< log2(n)
    size_t log_q;        ///< ciphertext modulus bits
    double lut;          ///< estimated LUTs
    double ff;           ///< estimated registers
    double bram36;       ///< estimated BRAM36 blocks
    double dsp;          ///< estimated DSP slices
    double compute_ms;   ///< Mult computation time
    double comm_ms;      ///< off-chip communication time
    double total_ms;     ///< compute + communication
};

/** Iterative scaling model of Sec. VI-D. */
class ScalingEstimator
{
  public:
    /**
     * @param base_lut .. base_dsp resources of the measured single
     *        coprocessor.
     * @param base_compute_ms measured Mult computation time.
     * @param base_comm_ms measured Mult communication time.
     */
    ScalingEstimator(double base_lut, double base_ff, double base_bram,
                     double base_dsp, double base_compute_ms,
                     double base_comm_ms);

    /** Rows for n = 2^12 ... 2^(12+rows-1) (Table V has 4 rows). */
    std::vector<ScalingRow> estimate(size_t rows) const;

    /** Growth factor of net computation per doubling (~2.17). */
    static constexpr double kComputeGrowth = 4.34 / 2.0;

    /** Growth factor of communication per doubling. */
    static constexpr double kCommGrowth = 4.0;

  private:
    double lut_, ff_, bram_, dsp_;
    double compute_ms_, comm_ms_;
};

} // namespace heat::hw

#endif // HEAT_HW_SCALING_ESTIMATOR_H
