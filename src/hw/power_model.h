/**
 * @file
 * Power model calibrated to the Power Advantage Tool measurements of
 * Sec. VI-C: 5.3 W static; continuous homomorphic multiplication adds
 * 1.0 W of processing-system activity (Arm cores, DDR, DMA) plus 1.2 W
 * per active coprocessor (2.2 W dynamic single-core, 3.4 W dual-core,
 * 8.7 W peak total).
 */

#ifndef HEAT_HW_POWER_MODEL_H
#define HEAT_HW_POWER_MODEL_H

#include <cstddef>

namespace heat::hw {

/** Board-level power estimates (watts). */
class PowerModel
{
  public:
    /** Static (idle) power of the MPSoC + board. */
    double staticW() const { return static_w_; }

    /** Dynamic power with @p active_coprocessors running Mult. */
    double
    dynamicW(size_t active_coprocessors) const
    {
        if (active_coprocessors == 0)
            return 0.0;
        return ps_active_w_ +
               per_coproc_w_ * static_cast<double>(active_coprocessors);
    }

    /** Total power. */
    double
    totalW(size_t active_coprocessors) const
    {
        return staticW() + dynamicW(active_coprocessors);
    }

    /**
     * Energy per homomorphic multiplication in millijoules at a given
     * throughput (mults/s) and active-core count.
     */
    double
    energyPerMultMj(double mults_per_second,
                    size_t active_coprocessors) const
    {
        return totalW(active_coprocessors) / mults_per_second * 1e3;
    }

  private:
    double static_w_ = 5.3;
    double ps_active_w_ = 1.0;
    double per_coproc_w_ = 1.2;
};

} // namespace heat::hw

#endif // HEAT_HW_POWER_MODEL_H
