/**
 * @file
 * The HPS Scale Q->q unit (Sec. V-C, Fig. 9).
 *
 * Block-level pipelined datapath computing round(t*x/q) in the p base
 * (Blocks 1-4: fractional MAC, seven modular MAC lanes, own-residue
 * contribution, final add) chained into the Lift datapath for the p->q
 * base switch (Block 5). Because the two stages are block-pipelined, one
 * Scale costs about the same as one Lift (Table II: 82.7 vs 82.6 us).
 *
 * During result writeback the unit can broadcast each output residue to
 * all q channels — materializing the WordDecomp digit polynomials for
 * relinearization at zero extra cost ("cheap bit-level manipulation").
 */

#ifndef HEAT_HW_SCALE_UNIT_H
#define HEAT_HW_SCALE_UNIT_H

#include <memory>
#include <vector>

#include "fv/params.h"
#include "hw/config.h"
#include "hw/memory_file.h"

namespace heat::hw {

/** Scale Q->q: functional execution + timing. */
class ScaleUnit
{
  public:
    ScaleUnit(std::shared_ptr<const fv::FvParams> params,
              const HwConfig &config);

    /**
     * Scale the full-base record @p src into the q-base record @p dst.
     * The source record's modulus-switching level selects the live
     * basis (dst must carry the same level).
     *
     * @param digits optional pre-allocated q-base records (one per live
     *        q prime) receiving the WordDecomp digit broadcasts.
     */
    void run(MemoryFile &memory, PolyId src, PolyId dst,
             const std::vector<PolyId> &digits) const;

    /**
     * Modulus switch: dst = round(src / q_last) where q_last is the
     * last live prime of the source level. @p src is a q-base record at
     * level l in natural order; @p dst must be a q-base record at level
     * l + 1. Reuses the divide-and-round datapath with t = 1 — the
     * hardware twin of fv::Evaluator::modSwitchPoly (bit-exact).
     */
    void runModSwitch(MemoryFile &memory, PolyId src, PolyId dst) const;

    /** Cycle cost of one scale instruction at level @p level (Block 1's
     *  serial input chain shortens with the live residues). */
    Cycle cycles(size_t level = 0) const;

    /** Cycle cost of one mod-switch instruction at source level
     *  @p level — scale-like, but streaming only the live q lanes. */
    Cycle modSwitchCycles(size_t level) const;

  private:
    std::shared_ptr<const fv::FvParams> params_;
    HwConfig config_;
};

} // namespace heat::hw

#endif // HEAT_HW_SCALE_UNIT_H
