/**
 * @file
 * The HPS Scale Q->q unit (Sec. V-C, Fig. 9).
 *
 * Block-level pipelined datapath computing round(t*x/q) in the p base
 * (Blocks 1-4: fractional MAC, seven modular MAC lanes, own-residue
 * contribution, final add) chained into the Lift datapath for the p->q
 * base switch (Block 5). Because the two stages are block-pipelined, one
 * Scale costs about the same as one Lift (Table II: 82.7 vs 82.6 us).
 *
 * During result writeback the unit can broadcast each output residue to
 * all q channels — materializing the WordDecomp digit polynomials for
 * relinearization at zero extra cost ("cheap bit-level manipulation").
 */

#ifndef HEAT_HW_SCALE_UNIT_H
#define HEAT_HW_SCALE_UNIT_H

#include <memory>
#include <vector>

#include "fv/params.h"
#include "hw/config.h"
#include "hw/memory_file.h"

namespace heat::hw {

/** Scale Q->q: functional execution + timing. */
class ScaleUnit
{
  public:
    ScaleUnit(std::shared_ptr<const fv::FvParams> params,
              const HwConfig &config);

    /**
     * Scale the full-base record @p src into the q-base record @p dst.
     *
     * @param digits optional pre-allocated q-base records (one per q
     *        prime) receiving the WordDecomp digit broadcasts.
     */
    void run(MemoryFile &memory, PolyId src, PolyId dst,
             const std::vector<PolyId> &digits) const;

    /** Cycle cost of one scale instruction. */
    Cycle cycles() const;

  private:
    std::shared_ptr<const fv::FvParams> params_;
    HwConfig config_;
};

} // namespace heat::hw

#endif // HEAT_HW_SCALE_UNIT_H
