// PowerModel is header-only; this translation unit anchors the target.
#include "hw/power_model.h"
