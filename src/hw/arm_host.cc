#include "hw/arm_host.h"

namespace heat::hw {

ArmHostModel::ArmHostModel(std::shared_ptr<const fv::FvParams> params,
                           const HwConfig &config)
    : params_(std::move(params)), config_(config), dma_(config)
{
}

size_t
ArmHostModel::polyBytes() const
{
    return params_->qBase()->size() * params_->degree() * sizeof(uint32_t);
}

size_t
ArmHostModel::ciphertextBytes() const
{
    return 2 * polyBytes();
}

double
ArmHostModel::sendPolysUs(size_t count) const
{
    // Coefficients live in contiguous memory (Sec. V-D), so each
    // polynomial moves as one single-descriptor burst; the host adds a
    // fixed staging cost per polynomial.
    const double per_poly =
        dma_.transferUs(polyBytes()) + config_.host_transfer_setup_us;
    return static_cast<double>(count) * per_poly;
}

double
ArmHostModel::receivePolysUs(size_t count) const
{
    return sendPolysUs(count); // symmetric single-burst transfers
}

double
ArmHostModel::sendCiphertextsUs(size_t count) const
{
    return sendPolysUs(2 * count);
}

double
ArmHostModel::receiveCiphertextUs() const
{
    return receivePolysUs(2);
}

double
ArmHostModel::receiveCiphertextsUs(size_t count) const
{
    return receivePolysUs(2 * count);
}

double
ArmHostModel::softwareAddUs() const
{
    // One modular add per coefficient per residue per polynomial, at
    // the calibrated baremetal cost (DDR-bound loop on the A53).
    const double ops = 2.0 *
                       static_cast<double>(params_->qBase()->size()) *
                       static_cast<double>(params_->degree());
    return ops * config_.arm_sw_modadd_cycles / config_.arm_clock_hz * 1e6;
}

double
ArmHostModel::dispatchUs() const
{
    return config_.cyclesToUs(
        static_cast<Cycle>(config_.dispatch_overhead));
}

} // namespace heat::hw
