#include "hw/scaling_estimator.h"

namespace heat::hw {

ScalingEstimator::ScalingEstimator(double base_lut, double base_ff,
                                   double base_bram, double base_dsp,
                                   double base_compute_ms,
                                   double base_comm_ms)
    : lut_(base_lut),
      ff_(base_ff),
      bram_(base_bram),
      dsp_(base_dsp),
      compute_ms_(base_compute_ms),
      comm_ms_(base_comm_ms)
{
}

std::vector<ScalingRow>
ScalingEstimator::estimate(size_t rows) const
{
    std::vector<ScalingRow> table;
    double lut = lut_, ff = ff_, bram = bram_, dsp = dsp_;
    double compute = compute_ms_, comm = comm_ms_;
    for (size_t i = 0; i < rows; ++i) {
        ScalingRow row;
        row.log2_degree = 12 + i;
        row.log_q = 180u << i;
        row.lut = lut;
        row.ff = ff;
        row.bram36 = bram;
        row.dsp = dsp;
        row.compute_ms = compute;
        row.comm_ms = comm;
        row.total_ms = compute + comm;
        table.push_back(row);

        // Sec. VI-D doubling rule: 2x logic, 4x memory and transfers,
        // net 2.17x computation.
        lut *= 2.0;
        ff *= 2.0;
        bram *= 4.0;
        dsp *= 2.0;
        compute *= kComputeGrowth;
        comm *= kCommGrowth;
    }
    return table;
}

} // namespace heat::hw
