/**
 * @file
 * Hierarchical FPGA resource model reproducing Table IV.
 *
 * Primitive costs (a 30x30 DSP multiplier, a 30x60 MAC lane, the
 * sliding-window reducer, BRAM banks) are composed bottom-up into
 * butterfly cores, RPAUs, Lift/Scale cores, the memory file and finally
 * coprocessors and the two-coprocessor system. Primitive LUT/FF
 * constants are calibrated against the paper's Vivado utilization
 * numbers for the Zynq UltraScale+ ZU9EG; the *structure* (what
 * composes into what, and the DSP/BRAM counts, which follow directly
 * from operand widths) is the model's content.
 */

#ifndef HEAT_HW_RESOURCE_MODEL_H
#define HEAT_HW_RESOURCE_MODEL_H

#include <cstddef>

#include "fv/params.h"
#include "hw/config.h"

namespace heat::hw {

/** FPGA resource vector. */
struct Resources
{
    double lut = 0;
    double ff = 0;
    double bram36 = 0;
    double dsp = 0;

    Resources &
    operator+=(const Resources &o)
    {
        lut += o.lut;
        ff += o.ff;
        bram36 += o.bram36;
        dsp += o.dsp;
        return *this;
    }

    friend Resources
    operator+(Resources a, const Resources &b)
    {
        a += b;
        return a;
    }

    friend Resources
    operator*(double k, Resources r)
    {
        r.lut *= k;
        r.ff *= k;
        r.bram36 *= k;
        r.dsp *= k;
        return r;
    }
};

/** ZU9EG device capacity (ZCU102 board). */
struct DeviceCapacity
{
    double lut = 274080;
    double ff = 548160;
    double bram36 = 912;
    double dsp = 2520;
};

/** Bottom-up resource estimation. */
class ResourceModel
{
  public:
    ResourceModel(const fv::FvParams &params, const HwConfig &config);

    // --- primitives ------------------------------------------------------

    /** 30x30 multiplier: 4 DSP48E2 (27x18 native). */
    Resources mult30x30() const;

    /** 30x60 MAC lane (reciprocal/constant multiplies): 8 DSPs. */
    Resources mac30x60() const;

    /** Unrolled sliding-window reducer (6 fold stages + correction). */
    Resources slidingWindowReducer() const;

    /** One butterfly core: multiplier + reducer + modular add/sub. */
    Resources butterflyCore() const;

    // --- blocks ------------------------------------------------------------

    /** One RPAU: butterfly cores, coeff unit control, twiddle ROM. */
    Resources rpau() const;

    /** One HPS Lift/Scale core (Blocks 1-5 of Figs. 6/9). */
    Resources liftScaleCore() const;

    /** The memory file: 4 BRAM36 per residue slot plus addressing. */
    Resources memoryFile() const;

    /** Instruction decoder, sequencer, and top-level control. */
    Resources controlOverhead() const;

    // --- aggregates ----------------------------------------------------------

    /** One coprocessor (Table IV row 2). */
    Resources coprocessor() const;

    /** @p count coprocessors plus DMA and interfacing (Table IV row 1). */
    Resources system(size_t count) const;

    /** Utilization percentage against the ZU9EG. */
    static double utilizationPct(double used, double capacity);

  private:
    const fv::FvParams &params_;
    HwConfig config_;
};

} // namespace heat::hw

#endif // HEAT_HW_RESOURCE_MODEL_H
