/**
 * @file
 * The coprocessor's instruction set (Table II of the paper).
 *
 * One instruction operates on one *batch* of residues: batch 0 covers
 * the q primes (RPAUs 0..5), batch 1 the seven extension primes
 * (RPAUs 0..6). All RPAUs of a batch execute in parallel, which is why
 * the per-instruction cost is independent of the batch width.
 *
 * Opcodes:
 *   kNtt / kIntt           forward / inverse NTT of one batch
 *   kCoeffMul/Add/Sub      coefficient-wise arithmetic, one batch
 *   kRearrange             layout permutation natural <-> paired
 *   kLift                  Lift q->Q (extends a q poly to the full base)
 *   kScale                 Scale Q->q (optionally emitting WordDecomp
 *                          digit broadcasts during writeback)
 *   kAutomorph             Galois automorphism tau_g: an index-mapped
 *                          permutation of one residue polynomial in the
 *                          memory file (optionally emitting WordDecomp
 *                          digit broadcasts during writeback, reusing
 *                          the Scale unit's reduce lanes)
 *   kKeyLoad               DMA one key-switching key pair from DDR
 *                          (relinearization or Galois, selected by aux)
 *   kModSwitch             modulus switch: dst = round(src0 / q_last)
 *                          over the basis with the last live prime
 *                          dropped (dst is allocated one level deeper;
 *                          runs on the Scale unit's divide-and-round
 *                          datapath with t = 1)
 */

#ifndef HEAT_HW_ISA_H
#define HEAT_HW_ISA_H

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hw/config.h"
#include "hw/memory_file.h"

namespace heat::hw {

/** Coprocessor opcodes. */
enum class Opcode : uint8_t
{
    kNtt,
    kIntt,
    kCoeffMul,
    kCoeffAdd,
    kCoeffSub,
    kRearrange,
    kLift,
    kScale,
    kAutomorph,
    kKeyLoad,
    kModSwitch,
};

/** @return a printable mnemonic. */
const char *opcodeName(Opcode op);

/**
 * Functional units of the coprocessor, the buckets of the
 * cycle-attribution profiler (the paper's Fig. 10-style breakdown).
 * Every instruction's compute cycles land in exactly one unit, so the
 * per-unit totals sum to the program's fpga_cycles without loss.
 */
enum class Unit : uint8_t
{
    kNttUnit,       ///< NTT butterflies + rearrange + automorph permute
    kLiftUnit,      ///< HPS Lift q->Q
    kScaleUnit,     ///< HPS Scale Q->q (incl. WordDecomp broadcast)
    kCoeffUnit,     ///< coefficient-wise mul/add/sub lanes
    kModReduceUnit, ///< modulus-switch divide-and-round drop
    kDmaUnit,       ///< DDR transfers (tracked in µs, not cycles)
    kKeyLoadUnit,   ///< key-switch key streaming (DMA-bound, 0 cycles)
    kArmUnit,       ///< Arm-side dispatch + completion overhead
};

inline constexpr size_t kUnitCount = 8;

/** @return a printable unit name ("NTT", "Lift", ...). */
const char *unitName(Unit unit);

/** @return the functional unit an opcode's compute cycles charge to. */
Unit unitOf(Opcode op);

/**
 * kKeyLoad aux encoding: the low byte is the digit index, the upper 24
 * bits select the key set — 0 for the relinearization keys, otherwise
 * the Galois element whose key-switching keys to stream. Legacy
 * programs that store a bare digit index therefore keep their meaning
 * (selector 0).
 */
constexpr uint32_t
keyLoadAux(uint32_t selector, uint32_t digit)
{
    return (selector << 8) | (digit & 0xffu);
}

/** @return the digit index of a kKeyLoad aux word. */
constexpr uint32_t
keyLoadDigit(uint32_t aux)
{
    return aux & 0xffu;
}

/** @return the key-set selector (0 = relin, else Galois element). */
constexpr uint32_t
keyLoadSelector(uint32_t aux)
{
    return aux >> 8;
}

/** One coprocessor instruction. */
struct Instruction
{
    Opcode op;
    /** Destination (also in-place operand for transforms). */
    PolyId dst = kNoPoly;
    /** First source operand. */
    PolyId src0 = kNoPoly;
    /** Second source operand. */
    PolyId src1 = kNoPoly;
    /** Residue batch: 0 = q primes, 1 = extension primes. */
    uint8_t batch = 0;
    /** Auxiliary immediate: key selector + digit for kKeyLoad (see
     *  keyLoadAux), the Galois element for kAutomorph. */
    uint32_t aux = 0;
    /** Extra destinations: WordDecomp digit broadcasts for kScale and
     *  kAutomorph, key-buffer targets for kKeyLoad. */
    std::vector<PolyId> extra;

    bool operator==(const Instruction &o) const = default;
};

/**
 * How the Arm dispatches a program to the coprocessor.
 *
 * The paper's measured per-instruction times (Table II) include the
 * Arm-side dispatch + completion overhead on every instruction — the
 * kPerInstruction mode, and the cost model of the single-op serving
 * path. A fused program compiled from a whole circuit is queued once:
 * the coprocessor streams the instruction sequence back-to-back and the
 * dispatch overhead is charged once per program (kFusedProgram), which
 * is where instruction-level fusion gets its throughput win.
 */
enum class DispatchMode : uint8_t
{
    kPerInstruction, ///< one Arm dispatch per instruction (Table II)
    kFusedProgram,   ///< one Arm dispatch for the whole program
};

/** A straight-line instruction sequence plus its external interface. */
struct Program
{
    std::vector<Instruction> instrs;
    /** Result polynomial handles (c0, c1 for Mult/Add). */
    std::vector<PolyId> outputs;

    /** @return a full assembly-style listing of the program. */
    std::string listing() const;

    bool operator==(const Program &o) const = default;
};

/** @return a one-line assembly-style rendering of an instruction. */
std::string disassemble(const Instruction &instr);

/** Per-opcode execution statistics. */
struct OpStats
{
    uint64_t calls = 0;
    Cycle fpga_cycles = 0;
    double dma_us = 0.0;
};

/** Aggregated statistics of one program run. */
struct ExecStats
{
    std::map<Opcode, OpStats> per_op;
    Cycle fpga_cycles = 0;
    double dma_us = 0.0;
    /** Instructions executed. */
    uint64_t instructions = 0;
    /** Arm dispatch overhead included in fpga_cycles (one per
     *  instruction, or one per program when fused). */
    Cycle dispatch_cycles = 0;
    /** fpga_cycles bucketed by functional unit (index by Unit).
     *  Invariant: the entries sum exactly to fpga_cycles — compute
     *  cycles charge unitOf(op), dispatch cycles charge kArmUnit. */
    std::array<Cycle, kUnitCount> unit_cycles{};
    /** Modeled microseconds this run advanced the tracing clock by
     *  (obs::advanceModeledUs), accumulated as an exact sum of the
     *  per-instruction durations so enclosing spans can report a
     *  duration independent of the clock's base value (floating-point
     *  addition is not associative; end-minus-start would differ in
     *  ulps across worker clocks). 0 when no tracer is installed. */
    double traced_us = 0.0;

    Cycle
    unitCycles(Unit unit) const
    {
        return unit_cycles[static_cast<size_t>(unit)];
    }

    /** Total time in microseconds at the given configuration. */
    double
    totalUs(const HwConfig &config) const
    {
        return config.cyclesToUs(fpga_cycles) + dma_us;
    }
};

} // namespace heat::hw

#endif // HEAT_HW_ISA_H
