/**
 * @file
 * The HPS Lift q->Q unit (Sec. V-B2, Fig. 6).
 *
 * Block-level pipelined datapath:
 *   Block 1: a'_i = a_i * q~_i mod q_i            (sequential, 6 cycles)
 *   Block 2: seven parallel MACs sum a'_i * (q*_i mod q_j)
 *   Block 3: v' accumulation via 30x60-bit reciprocal multiplications
 *   Block 4: v'_j = v' * q mod q_j
 *   Block 5: a_j = a'_j - v'_j mod q_j            (sequential, 7 cycles)
 *
 * The slowest block sets the pipeline beat: 7 cycles per coefficient
 * plus one streaming handoff (lift_beat = 8). Two cores split the
 * coefficients. Functionally the unit *is* rns::FastBaseConverter — the
 * software evaluator and the hardware model share the arithmetic, so
 * golden comparisons are bit-exact.
 */

#ifndef HEAT_HW_LIFT_UNIT_H
#define HEAT_HW_LIFT_UNIT_H

#include <memory>

#include "fv/params.h"
#include "hw/config.h"
#include "hw/memory_file.h"

namespace heat::hw {

/** Lift q->Q: functional execution over a memory-file record + timing. */
class LiftUnit
{
  public:
    LiftUnit(std::shared_ptr<const fv::FvParams> params,
             const HwConfig &config);

    /**
     * Execute the lift on record @p id in @p memory (must be a q-base
     * polynomial in natural layout); extends it to the full base. The
     * record's modulus-switching level selects the live input lanes.
     */
    void run(MemoryFile &memory, PolyId id) const;

    /** Cycle cost of one lift instruction (all cores, whole poly) at
     *  modulus-switching level @p level: the sequential input chain
     *  shortens with the live residues. */
    Cycle cycles(size_t level = 0) const;

  private:
    std::shared_ptr<const fv::FvParams> params_;
    HwConfig config_;
};

} // namespace heat::hw

#endif // HEAT_HW_LIFT_UNIT_H
