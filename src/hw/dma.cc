#include "hw/dma.h"

#include "common/panic.h"

namespace heat::hw {

double
DmaModel::streamUs(size_t bytes) const
{
    return static_cast<double>(bytes) / config_.dma_bytes_per_cycle /
           config_.dma_clock_hz * 1e6;
}

double
DmaModel::transferUs(size_t bytes, size_t chunk_bytes) const
{
    panicIf(chunk_bytes == 0, "chunk size must be positive");
    const size_t chunks = (bytes + chunk_bytes - 1) / chunk_bytes;
    const size_t warm = std::min<size_t>(
        chunks, static_cast<size_t>(config_.dma_warm_descriptors));
    const double desc_us =
        static_cast<double>(warm) * config_.dma_desc_first_us +
        static_cast<double>(chunks - warm) * config_.dma_desc_steady_us;
    return config_.dma_setup_us + desc_us + streamUs(bytes);
}

} // namespace heat::hw
