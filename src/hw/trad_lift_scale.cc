#include "hw/trad_lift_scale.h"

#include <algorithm>

namespace heat::hw {

namespace {

constexpr size_t kWordBits = 30;

} // namespace

TradLiftScaleModel::TradLiftScaleModel(
    std::shared_ptr<const fv::FvParams> params, const HwConfig &config)
    : params_(std::move(params)), config_(config)
{
    // One guard word absorbs the sum-of-products carry growth.
    q_words_ = (static_cast<size_t>(params_->qBits()) + kWordBits - 1) /
                   kWordBits +
               1;
    full_words_ =
        (static_cast<size_t>(
             params_->fullBase()->product().bitLength()) +
         kWordBits - 1) /
        kWordBits;
}

size_t
TradLiftScaleModel::liftSopCycles() const
{
    // k MACs, each producing a q-width partial sum word-serially.
    return params_->qBase()->size() * q_words_;
}

size_t
TradLiftScaleModel::liftDivisionCycles() const
{
    // Reciprocal multiplication: q_words x q_words word products on the
    // single 30x30 DSP lane of the division block.
    return q_words_ * q_words_;
}

size_t
TradLiftScaleModel::liftResidueCycles() const
{
    // Each of the kp extension residues folds the full-width
    // reconstruction word-serially: kp * (full_words) word operations.
    return params_->pBase()->size() * full_words_;
}

size_t
TradLiftScaleModel::liftBeat() const
{
    const size_t beat = std::max(
        {liftSopCycles(), liftDivisionCycles(), liftResidueCycles()});
    return beat + 1; // streaming handoff
}

size_t
TradLiftScaleModel::scaleDivisionCycles() const
{
    // Dividend is Q-width (~2x) and the reciprocal needs ~2x precision
    // (> 571 bits for the paper set): ~4x the Lift division (Sec. V-C).
    const size_t recip_words = 2 * q_words_ + 4;
    return full_words_ * recip_words + 2;
}

size_t
TradLiftScaleModel::scaleBeat() const
{
    // Division dominates every other block by design (the other blocks
    // were sized to match its throughput, Sec. V-C).
    return scaleDivisionCycles();
}

double
TradLiftScaleModel::singleCoreLiftUs() const
{
    return static_cast<double>(params_->degree()) *
           static_cast<double>(liftBeat()) / config_.fpga_clock_hz * 1e6;
}

double
TradLiftScaleModel::singleCoreScaleUs() const
{
    return static_cast<double>(params_->degree()) *
           static_cast<double>(scaleBeat()) / config_.fpga_clock_hz * 1e6;
}

} // namespace heat::hw
