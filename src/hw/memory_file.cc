#include "hw/memory_file.h"

#include <sstream>

#include "common/panic.h"

namespace heat::hw {

namespace {

std::string
pressureMessage(const char *structure, size_t need, size_t in_use,
                size_t capacity, size_t peak, size_t live_records,
                const char *what)
{
    std::ostringstream oss;
    oss << structure << " exhausted";
    if (what != nullptr)
        oss << " allocating " << what;
    oss << ": need " << need << " slots, " << capacity - in_use
        << " free of " << capacity << " (live " << in_use << " slots in "
        << live_records << " records, peak " << peak << ")";
    return oss.str();
}

} // namespace

MemoryFile::MemoryFile(std::shared_ptr<const fv::FvParams> params,
                       const HwConfig &config)
    : params_(std::move(params)),
      capacity_(config.n_rpaus * config.slots_per_rpau)
{
}

size_t
MemoryFile::residueCount(BaseTag tag) const
{
    return tag == BaseTag::kQ ? params_->qBase()->size()
                              : params_->fullBase()->size();
}

void
MemoryFile::reset()
{
    records_.clear();
    in_use_ = 0;
    peak_ = 0;
    level_ = 0;
    pinned_records_ = 0;
    pinned_slots_ = 0;
}

void
MemoryFile::setPinnedRecords(size_t count)
{
    panicIf(count > records_.size(),
            "cannot pin ", count, " records, only ", records_.size(),
            " exist");
    size_t slots = 0;
    for (size_t id = 0; id < count; ++id) {
        const PolyRecord &rec = records_[id];
        panicIf(!rec.valid || rec.released,
                "pinned record ", id, " is not live");
        slots += liveResidues(rec.base, rec.level);
    }
    pinned_records_ = count;
    pinned_slots_ = slots;
}

void
MemoryFile::resetToPinned()
{
    if (pinned_records_ == 0) {
        reset();
        return;
    }
    records_.resize(pinned_records_);
    in_use_ = pinned_slots_;
    peak_ = in_use_;
    level_ = 0;
}

PolyId
MemoryFile::allocate(BaseTag tag, Layout layout, const char *what)
{
    return allocateAt(tag, layout, level_, what);
}

PolyId
MemoryFile::allocateAt(BaseTag tag, Layout layout, size_t level,
                       const char *what)
{
    panicIf(level > params_->maxLevel(), "allocation level out of range");
    const size_t live = liveResidues(tag, level);
    if (in_use_ + live > capacity_) {
        size_t live_records = 0;
        for (const PolyRecord &rec : records_) {
            if (rec.valid && !rec.released)
                ++live_records;
        }
        fatal(pressureMessage("memory file", live, in_use_, capacity_,
                              peak_, live_records, what));
    }
    in_use_ += live;
    peak_ = std::max(peak_, in_use_);

    PolyRecord rec;
    rec.base = tag;
    rec.level = level;
    rec.layout.assign(live, layout);
    rec.data.assign(live * params_->degree(), 0);
    rec.valid = true;
    records_.push_back(std::move(rec));
    return static_cast<PolyId>(records_.size() - 1);
}

void
MemoryFile::free(PolyId id)
{
    release(id);
    PolyRecord &rec = records_[id];
    rec.valid = false;
    rec.data.clear();
    rec.data.shrink_to_fit();
}

void
MemoryFile::release(PolyId id)
{
    PolyRecord &rec = record(id);
    panicIf(id < pinned_records_,
            "cannot release pinned polynomial ", id);
    panicIf(rec.released, "double release of polynomial ", id);
    in_use_ -= liveResidues(rec.base, rec.level);
    rec.released = true;
}

void
MemoryFile::extendToFull(PolyId id, const char *what)
{
    PolyRecord &rec = record(id);
    panicIf(rec.base != BaseTag::kQ, "polynomial already extended");
    const size_t extra = residueCount(BaseTag::kFull) -
                         residueCount(BaseTag::kQ);
    if (in_use_ + extra > capacity_) {
        size_t live = 0;
        for (const PolyRecord &r : records_) {
            if (r.valid && !r.released)
                ++live;
        }
        fatal(pressureMessage("memory file", extra, in_use_, capacity_,
                              peak_, live,
                              what != nullptr ? what : "lift extension"));
    }
    in_use_ += extra;
    peak_ = std::max(peak_, in_use_);
    rec.base = BaseTag::kFull;
    const size_t live = liveResidues(BaseTag::kFull, rec.level);
    rec.layout.resize(live, Layout::kNatural);
    rec.data.resize(live * params_->degree(), 0);
}

namespace {

/** Shared failure path of both record() overloads. */
[[noreturn]] void
throwInvalidRecord(PolyId id, size_t records, bool exists)
{
    std::ostringstream oss;
    oss << "panic: invalid polynomial id " << id;
    if (!exists)
        oss << " (only " << records << " records exist)";
    else
        oss << " (record freed or predates a reset)";
    throw InvalidRecordError(oss.str(), id);
}

} // namespace

PolyRecord &
MemoryFile::record(PolyId id)
{
    if (id >= records_.size() || !records_[id].valid)
        throwInvalidRecord(id, records_.size(), id < records_.size());
    return records_[id];
}

const PolyRecord &
MemoryFile::record(PolyId id) const
{
    if (id >= records_.size() || !records_[id].valid)
        throwInvalidRecord(id, records_.size(), id < records_.size());
    return records_[id];
}

PolyId
MemoryFile::import(const ntt::RnsPoly &poly, Layout layout)
{
    // Infer base tag AND level from the residue count (q counts and
    // full counts never collide for the supported parameter sets).
    const size_t level =
        params_->levelForResidueCount(poly.residueCount());
    const BaseTag tag =
        poly.residueCount() == params_->qBase(level)->size()
            ? BaseTag::kQ
            : BaseTag::kFull;
    PolyId id = allocateAt(tag, layout, level, "operand import");
    record(id).data = poly.data();
    return id;
}

ntt::RnsPoly
MemoryFile::exportPoly(PolyId id) const
{
    const PolyRecord &rec = record(id);
    const auto base = rec.base == BaseTag::kQ
                          ? params_->qBase(rec.level)
                          : params_->fullBase(rec.level);
    ntt::RnsPoly poly(base, params_->degree(), ntt::PolyForm::kCoeff);
    poly.data() = rec.data;
    return poly;
}

ntt::RnsPoly
MemoryFile::exportQBase(PolyId id) const
{
    const PolyRecord &rec = record(id);
    const size_t words =
        liveResidues(BaseTag::kQ, rec.level) * params_->degree();
    panicIf(rec.data.size() < words, "record smaller than the q base");
    ntt::RnsPoly poly(params_->qBase(rec.level), params_->degree(),
                      ntt::PolyForm::kCoeff);
    std::copy(rec.data.begin(),
              rec.data.begin() + static_cast<ptrdiff_t>(words),
              poly.data().begin());
    return poly;
}

CountingAllocator::CountingAllocator(const fv::FvParams &params,
                                     const HwConfig &config,
                                     bool throw_on_pressure)
    : q_residues_(params.qBase()->size()),
      full_residues_(params.fullBase()->size()),
      capacity_(config.n_rpaus * config.slots_per_rpau),
      throw_on_pressure_(throw_on_pressure)
{
}

size_t
CountingAllocator::residueCount(BaseTag tag) const
{
    return tag == BaseTag::kQ ? q_residues_ : full_residues_;
}

void
CountingAllocator::overflow(size_t need, const char *what) const
{
    size_t live = 0;
    for (const Rec &rec : records_) {
        if (!rec.released)
            ++live;
    }
    const std::string msg = pressureMessage(
        "slot budget", need, in_use_, capacity_, peak_, live, what);
    if (throw_on_pressure_)
        throw SlotPressureError(msg);
    fatal(msg);
}

PolyId
CountingAllocator::allocate(BaseTag tag, Layout layout, const char *what)
{
    const size_t need = liveResidues(tag, level_);
    if (in_use_ + need > capacity_)
        overflow(need, what);
    in_use_ += need;
    peak_ = std::max(peak_, in_use_);
    records_.push_back(Rec{tag, level_, false});
    const PolyId id = static_cast<PolyId>(records_.size() - 1);
    actions_.push_back(
        SlotAction{SlotAction::Kind::kAllocate, id, tag, layout, level_});
    return id;
}

void
CountingAllocator::release(PolyId id)
{
    panicIf(id >= records_.size(), "invalid polynomial id ", id);
    Rec &rec = records_[id];
    panicIf(rec.released, "double release of polynomial ", id);
    in_use_ -= liveResidues(rec.base, rec.level);
    rec.released = true;
    actions_.push_back(SlotAction{SlotAction::Kind::kRelease, id,
                                  rec.base, Layout::kNatural, rec.level});
}

void
CountingAllocator::extendToFull(PolyId id, const char *what)
{
    panicIf(id >= records_.size(), "invalid polynomial id ", id);
    Rec &rec = records_[id];
    panicIf(rec.base != BaseTag::kQ, "polynomial already extended");
    const size_t extra = full_residues_ - q_residues_;
    if (in_use_ + extra > capacity_)
        overflow(extra, what != nullptr ? what : "lift extension");
    in_use_ += extra;
    peak_ = std::max(peak_, in_use_);
    rec.base = BaseTag::kFull;
    actions_.push_back(SlotAction{SlotAction::Kind::kExtend, id,
                                  BaseTag::kFull, Layout::kNatural,
                                  rec.level});
}

void
replaySlotActions(MemoryFile &memory, std::span<const SlotAction> actions)
{
    for (const SlotAction &action : actions) {
        switch (action.kind) {
          case SlotAction::Kind::kAllocate: {
            memory.setLevel(action.level);
            const PolyId id = memory.allocate(action.base, action.layout);
            panicIf(id != action.id,
                    "slot replay diverged: allocated id ", id,
                    " where the compiled program expects ", action.id,
                    " (memory file was not freshly reset)");
            break;
          }
          case SlotAction::Kind::kRelease:
            memory.release(action.id);
            break;
          case SlotAction::Kind::kExtend:
            memory.extendToFull(action.id);
            break;
        }
    }
}

} // namespace heat::hw
