#include "hw/memory_file.h"

#include "common/panic.h"

namespace heat::hw {

MemoryFile::MemoryFile(std::shared_ptr<const fv::FvParams> params,
                       const HwConfig &config)
    : params_(std::move(params)),
      capacity_(config.n_rpaus * config.slots_per_rpau)
{
}

size_t
MemoryFile::residueCount(BaseTag tag) const
{
    return tag == BaseTag::kQ ? params_->qBase()->size()
                              : params_->fullBase()->size();
}

void
MemoryFile::reset()
{
    records_.clear();
    in_use_ = 0;
    peak_ = 0;
}

PolyId
MemoryFile::allocate(BaseTag tag, Layout layout)
{
    const size_t need = slotsFor(tag);
    fatalIf(in_use_ + need > capacity_,
            "memory file exhausted: need ", need, " slots, ",
            capacity_ - in_use_, " free (capacity ", capacity_, ")");
    in_use_ += need;
    peak_ = std::max(peak_, in_use_);

    PolyRecord rec;
    rec.base = tag;
    rec.layout.assign(residueCount(tag), layout);
    rec.data.assign(residueCount(tag) * params_->degree(), 0);
    rec.valid = true;
    records_.push_back(std::move(rec));
    return static_cast<PolyId>(records_.size() - 1);
}

void
MemoryFile::free(PolyId id)
{
    release(id);
    PolyRecord &rec = records_[id];
    rec.valid = false;
    rec.data.clear();
    rec.data.shrink_to_fit();
}

void
MemoryFile::release(PolyId id)
{
    PolyRecord &rec = record(id);
    panicIf(rec.released, "double release of polynomial ", id);
    in_use_ -= slotsFor(rec.base);
    rec.released = true;
}

void
MemoryFile::extendToFull(PolyId id)
{
    PolyRecord &rec = record(id);
    panicIf(rec.base != BaseTag::kQ, "polynomial already extended");
    const size_t extra = residueCount(BaseTag::kFull) -
                         residueCount(BaseTag::kQ);
    fatalIf(in_use_ + extra > capacity_,
            "memory file exhausted during lift");
    in_use_ += extra;
    peak_ = std::max(peak_, in_use_);
    rec.base = BaseTag::kFull;
    rec.layout.resize(residueCount(BaseTag::kFull), Layout::kNatural);
    rec.data.resize(residueCount(BaseTag::kFull) * params_->degree(), 0);
}

PolyRecord &
MemoryFile::record(PolyId id)
{
    panicIf(id >= records_.size() || !records_[id].valid,
            "invalid polynomial id ", id);
    return records_[id];
}

const PolyRecord &
MemoryFile::record(PolyId id) const
{
    panicIf(id >= records_.size() || !records_[id].valid,
            "invalid polynomial id ", id);
    return records_[id];
}

PolyId
MemoryFile::import(const ntt::RnsPoly &poly, Layout layout)
{
    const BaseTag tag = poly.residueCount() == residueCount(BaseTag::kQ)
                            ? BaseTag::kQ
                            : BaseTag::kFull;
    panicIf(poly.residueCount() != residueCount(tag),
            "imported polynomial has unexpected residue count");
    PolyId id = allocate(tag, layout);
    record(id).data = poly.data();
    return id;
}

ntt::RnsPoly
MemoryFile::exportPoly(PolyId id) const
{
    const PolyRecord &rec = record(id);
    const auto base = rec.base == BaseTag::kQ ? params_->qBase()
                                              : params_->fullBase();
    ntt::RnsPoly poly(base, params_->degree(), ntt::PolyForm::kCoeff);
    poly.data() = rec.data;
    return poly;
}

} // namespace heat::hw
