#include "hw/mod_reduce_unit.h"

namespace heat::hw {

ModReduceUnit::ModReduceUnit(const rns::Modulus &modulus)
    : modulus_(modulus)
{
}

uint64_t
ModReduceUnit::reduce(uint64_t x) const
{
    return modulus_.slidingWindowReduce(x);
}

} // namespace heat::hw
