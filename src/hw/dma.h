/**
 * @file
 * Model of the AXI DMA between DDR and the coprocessors (Sec. V-D).
 *
 * The model reproduces Table III: a transfer of B bytes split into C
 * chunks costs
 *
 *   setup + sum of per-descriptor overheads + B / (bus bytes/cycle * f)
 *
 * where the first few descriptors pay the full driver/interrupt cost and
 * later ones are pipelined by the scatter-gather engine. The constants
 * are fitted to the paper's three measurements (76 / 109 / 202 us for a
 * 98304-byte polynomial as one, 16 KiB, and 1 KiB chunks).
 */

#ifndef HEAT_HW_DMA_H
#define HEAT_HW_DMA_H

#include <cstddef>

#include "hw/config.h"

namespace heat::hw {

/** DMA timing model. */
class DmaModel
{
  public:
    explicit DmaModel(const HwConfig &config) : config_(config) {}

    /**
     * Time to move @p bytes split into chunks of @p chunk_bytes.
     *
     * @return microseconds, including driver setup.
     */
    double transferUs(size_t bytes, size_t chunk_bytes) const;

    /** Single-descriptor transfer (the paper's fastest mode). */
    double
    transferUs(size_t bytes) const
    {
        return transferUs(bytes, bytes);
    }

    /** Raw streaming time without driver overheads. */
    double streamUs(size_t bytes) const;

  private:
    HwConfig config_;
};

} // namespace heat::hw

#endif // HEAT_HW_DMA_H
