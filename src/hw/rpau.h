/**
 * @file
 * Residue Polynomial Arithmetic Unit (Sec. V-A).
 *
 * Each RPAU owns the BRAM slots, the dual-core NTT engine and the
 * coefficient-wise unit for (up to) two RNS primes: RPAU r serves prime
 * r of the q base and prime r + 6 of the extension base (the paper's
 * resource sharing: ceil(13/2) = 7 RPAUs, the last one serving only
 * q12). A batch-0 instruction activates RPAUs 0..5, a batch-1
 * instruction RPAUs 0..6; all active RPAUs run in lock-step, so
 * instruction latency is independent of batch width.
 */

#ifndef HEAT_HW_RPAU_H
#define HEAT_HW_RPAU_H

#include <cstddef>
#include <vector>

#include "hw/coeff_unit.h"
#include "hw/config.h"
#include "hw/ntt_engine.h"

namespace heat::hw {

/** Map a global residue index to its RPAU (paper Sec. V-A1). */
size_t rpauForResidue(size_t residue, size_t q_prime_count);

/** Batch of a residue: 0 for the q primes, 1 for the extension primes. */
int batchOfResidue(size_t residue, size_t q_prime_count);

/** Residue indices belonging to a batch for a base of @p total primes. */
std::vector<size_t> residuesOfBatch(int batch, size_t q_prime_count,
                                    size_t total);

/** One residue polynomial arithmetic unit. */
class Rpau
{
  public:
    Rpau(size_t id, const HwConfig &config, size_t degree);

    /** @return unit index in [0, n_rpaus). */
    size_t id() const { return id_; }

    /** @return the NTT engine (timing + schedule model). */
    const NttEngine &nttEngine() const { return engine_; }

    /** @return the coefficient-wise unit. */
    const CoeffUnit &coeffUnit() const { return coeff_unit_; }

  private:
    size_t id_;
    NttEngine engine_;
    CoeffUnit coeff_unit_;
};

} // namespace heat::hw

#endif // HEAT_HW_RPAU_H
