/**
 * @file
 * Builds the instruction sequences for the high-level homomorphic
 * operations (FV.Add and FV.Mult, Fig. 2) against a coprocessor's
 * memory file.
 *
 * The Mult schedule reproduces the paper's instruction mix (Table II):
 * 4 Lift, 14 NTT, 8 Inverse-NTT, 20 coefficient-wise multiplications,
 * 22 memory rearranges, 3 Scale and 6 relinearization-key DMA loads
 * (we issue 14 coefficient-wise additions where the paper reports 26;
 * EXPERIMENTS.md discusses the delta). Slot allocation is performed at
 * build time and must fit the 84-slot memory file — the peak is 78
 * slots, which is the on-chip-memory pressure Table IV reflects.
 */

#ifndef HEAT_HW_PROGRAM_BUILDER_H
#define HEAT_HW_PROGRAM_BUILDER_H

#include <array>

#include "hw/coprocessor.h"
#include "hw/isa.h"

namespace heat::hw {

/** Emits coprocessor programs for the high-level FV operations. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(Coprocessor &cp) : cp_(cp) {}

    /**
     * FV.Add: two coefficient-wise additions (one per ciphertext
     * polynomial). Inputs are left resident.
     *
     * @return program with outputs {c0, c1}.
     */
    Program buildAdd(std::array<PolyId, 2> a, std::array<PolyId, 2> b);

    /**
     * FV.Mult with relinearization (Fig. 2). Consumes the input
     * records' slots (they are released at their last use).
     *
     * @return program with outputs {c0, c1}.
     */
    Program buildMult(std::array<PolyId, 2> a, std::array<PolyId, 2> b);

  private:
    /** Emit REARRANGE+NTT (or INTT+REARRANGE) for both batches. */
    void emitForward(Program &p, PolyId id, bool full);
    void emitInverse(Program &p, PolyId id, bool full);

    Coprocessor &cp_;
};

} // namespace heat::hw

#endif // HEAT_HW_PROGRAM_BUILDER_H
