/**
 * @file
 * Builds the instruction sequences for the high-level homomorphic
 * operations (Fig. 2) against a coprocessor's memory file.
 *
 * The core is a set of composable per-op emitters (OpEmitter): each
 * appends one FV operation's instruction sequence to a program,
 * allocating operand/temporary/result slots through the SlotAllocator
 * interface — a real MemoryFile when a plan executes in place, or a
 * CountingAllocator when the circuit compiler schedules a whole fused
 * program at build time. The legacy ProgramBuilder facade and the
 * OpPlan helpers for the single-op serving path are thin wrappers over
 * the emitters.
 *
 * The Mult schedule reproduces the paper's instruction mix (Table II):
 * 4 Lift, 14 NTT, 8 Inverse-NTT, 20 coefficient-wise multiplications,
 * 22 memory rearranges, 3 Scale and 6 relinearization-key DMA loads
 * (we issue 14 coefficient-wise additions where the paper reports 26;
 * EXPERIMENTS.md discusses the delta). Slot allocation is performed at
 * build time and must fit the 84-slot memory file — the peak is 78
 * slots, which is the on-chip-memory pressure Table IV reflects.
 */

#ifndef HEAT_HW_PROGRAM_BUILDER_H
#define HEAT_HW_PROGRAM_BUILDER_H

#include <array>
#include <vector>

#include "hw/coprocessor.h"
#include "hw/isa.h"

namespace heat::hw {

/**
 * A built program together with its operand bindings — a plain value.
 *
 * Slot allocation inside the memory file is deterministic: building the
 * same plan against any freshly-constructed coprocessor with the same
 * parameter set and configuration yields identical PolyIds and an
 * identical instruction stream. A plan can therefore be built once and
 * dispatched to any worker's coprocessor, provided that worker prepared
 * its memory file with preparePlanSlots() (or built the same plan
 * itself). Re-execution only requires re-uploading the inputs.
 */
struct OpPlan
{
    /** Which high-level operation the program implements. */
    enum class Kind : uint8_t { kAdd, kMult };

    Kind kind = Kind::kAdd;
    Program program;
    /** Operand slots for the first ciphertext (c0, c1). */
    std::array<PolyId, 2> in_a{kNoPoly, kNoPoly};
    /** Operand slots for the second ciphertext (c0, c1). */
    std::array<PolyId, 2> in_b{kNoPoly, kNoPoly};

    bool operator==(const OpPlan &o) const = default;
};

/**
 * Build the FV.Add plan against @p cp, allocating its operand and
 * result slots. @p cp must be freshly constructed (or in the same
 * allocation state as every other coprocessor the plan will run on).
 */
OpPlan makeAddPlan(Coprocessor &cp);

/** Build the FV.Mult-with-relinearization plan against @p cp. */
OpPlan makeMultPlan(Coprocessor &cp);

/**
 * Replay @p plan's slot allocations on another coprocessor so the plan
 * becomes executable there. Panics if the replayed allocation diverges
 * from the plan (the coprocessor was not in the expected state).
 */
void preparePlanSlots(Coprocessor &cp, const OpPlan &plan);

/** Upload both operand ciphertext polynomial pairs of @p plan. */
void uploadPlanInputs(Coprocessor &cp, const OpPlan &plan,
                      const std::array<const ntt::RnsPoly *, 2> &a,
                      const std::array<const ntt::RnsPoly *, 2> &b);

/**
 * Composable per-op program emitters.
 *
 * Every emitter appends one high-level FV operation to @p program and
 * returns the result slots. Operand liveness belongs to the caller:
 * with consume=false an operation leaves its operand slots untouched
 * (copying them into scratch when the schedule would destroy them);
 * with consume=true the operation may overwrite operand slots, alias
 * them into its result, or release them mid-schedule (Mult/Square
 * release all consumed operand slots; the element-wise ops alias them).
 *
 * Data conventions match the serving path: ciphertext polynomials
 * enter and leave every operation over the q base in natural
 * (coefficient) layout, so any emitter output can feed any emitter
 * input — the property the circuit compiler's fusion relies on.
 */
class OpEmitter
{
  public:
    OpEmitter(const fv::FvParams &params, SlotAllocator &alloc,
              Program &program);

    /** FV.Add: c_i = a_i + b_i. consume_a reuses a's slots in place. */
    std::array<PolyId, 2> emitAdd(std::array<PolyId, 2> a,
                                  std::array<PolyId, 2> b,
                                  bool consume_a = false);

    /** FV.Sub: c_i = a_i - b_i. */
    std::array<PolyId, 2> emitSub(std::array<PolyId, 2> a,
                                  std::array<PolyId, 2> b,
                                  bool consume_a = false);

    /** Negation: c_i = -a_i (subtraction from the zero register). */
    std::array<PolyId, 2> emitNegate(std::array<PolyId, 2> a,
                                     bool consume = false);

    /**
     * Plaintext addition: c_0 = a_0 + plain, c_1 = a_1, where @p plain
     * holds the host-encoded Delta*m polynomial
     * (fv::Evaluator::scaledPlain). The plain slot is left resident.
     */
    std::array<PolyId, 2> emitAddPlain(std::array<PolyId, 2> a,
                                       PolyId plain, bool consume = false);

    /**
     * Plaintext multiplication: both ciphertext polynomials are
     * NTT-multiplied by @p plain, the host-encoded unscaled embedding
     * (fv::Evaluator::embeddedPlain), uploaded in natural layout. The
     * plain slot is transformed in place (single-use) and left
     * resident; the caller releases it.
     */
    std::array<PolyId, 2> emitMultPlain(std::array<PolyId, 2> a,
                                        PolyId plain,
                                        bool consume = false);

    /** Result of a tensor-and-scale (Mult/Square without relin). */
    struct MultResult
    {
        /** c0, c1 always; c2 only when want_c2 (else kNoPoly). */
        std::array<PolyId, 3> ct{kNoPoly, kNoPoly, kNoPoly};
        /** WordDecomp digit slots (want_digits; broadcast for free
         *  during the c~2 Scale writeback). */
        std::vector<PolyId> digits;
    };

    /**
     * FV.Mult tensor + Scale (Fig. 2 without the relinearization tail).
     *
     * @param want_digits materialize the WordDecomp digit polynomials
     *        of c~2 (feeds emitRelin).
     * @param want_c2 keep the scaled c~2 polynomial resident (a
     *        3-element ciphertext result); otherwise its slots are
     *        released after the digit broadcast.
     */
    MultResult emitMult(std::array<PolyId, 2> a, std::array<PolyId, 2> b,
                        bool consume_a, bool consume_b, bool want_digits,
                        bool want_c2);

    /** FV.Square: one ciphertext tensored with itself (2 Lifts). */
    MultResult emitSquare(std::array<PolyId, 2> a, bool consume,
                          bool want_digits, bool want_c2);

    /**
     * Relinearization tail: accumulate digit x key products and fold
     * them into c0/c1. Consumes (releases) the digit slots. With
     * consume_c01 the accumulation happens in place; otherwise c0/c1
     * are copied first and left untouched.
     */
    std::array<PolyId, 2> emitRelin(PolyId c0, PolyId c1,
                                    const std::vector<PolyId> &digits,
                                    bool consume_c01 = true);

    /**
     * Modulus switch: both ciphertext polynomials divide-and-round
     * from the allocator's current level to the next one on the Scale
     * unit's datapath. Results (and the allocator, which stays at the
     * deeper level for the rest of the region) sit at level + 1; with
     * consume the input slots are released. Bit-exact with
     * fv::Evaluator::modSwitch.
     */
    std::array<PolyId, 2> emitModSwitch(std::array<PolyId, 2> a,
                                        bool consume = true);

    // --- Galois automorphisms (rotations) -------------------------------

    /**
     * Apply tau_g to a 2-element ciphertext and key-switch back to the
     * original secret with the Galois keys for @p galois_element
     * (which the executing coprocessor must hold). The input slots are
     * left untouched; the result is fresh. Bit-exact with
     * fv::Evaluator::applyGalois: kAutomorph passes over c1 broadcast
     * the WordDecomp digits of tau_g(c1) during writeback (the Scale
     * unit's reduce lanes, one digit lane per pass so only one digit
     * record is ever resident), and the key-switch tail reuses the
     * relinearization machinery with per-element key loads. Element 1
     * (the identity automorphism) lowers to a fresh copy — no
     * key-switch instructions and no key requirement; the hoisted
     * variants below behave the same way.
     */
    std::array<PolyId, 2> emitApplyGalois(std::array<PolyId, 2> a,
                                          uint32_t galois_element);

    /**
     * Hoisting front half: WordDecomp digits of @p c1 (identity
     * automorphism with digit broadcast), each forward-transformed to
     * the NTT domain. The digits stay resident so any number of
     * emitHoistedGalois calls can share them; the caller releases
     * them after the last rotation.
     */
    std::vector<PolyId> emitDecomposeNtt(PolyId c1);

    /**
     * Hoisting back half: one rotation over shared NTT-domain digits —
     * per digit an NTT-domain permutation (kAutomorph) plus the key
     * MAC, so the decompose and the digits' forward NTTs are paid once
     * per ciphertext instead of once per rotation (HEAX/Halevi-Shoup
     * hoisting). Digits are left resident. Bit-exact with
     * fv::Evaluator::applyGaloisHoisted.
     */
    std::array<PolyId, 2> emitHoistedGalois(
        std::array<PolyId, 2> a, const std::vector<PolyId> &digits_ntt,
        uint32_t galois_element);

    /**
     * Hoisted-numerics rotation without sharing: decompose, rotate
     * once, release the digits. The unfused/per-op lowering of a
     * rotation that belongs to a hoist group — same bits as the shared
     * schedule, none of the savings.
     */
    std::array<PolyId, 2> emitApplyGaloisHoistedSingle(
        std::array<PolyId, 2> a, uint32_t galois_element);

    /**
     * Rotate-and-add sum across all batching slots, mirroring
     * fv::Evaluator::sumAllSlots instruction for instruction: log-many
     * power-of-two row rotations, then the column swap. The executing
     * coprocessor needs the Galois keys for elements 3^(2^k) and 2n-1
     * (fv::KeyGenerator::generateRotationKeys provides them). Input
     * slots are left untouched.
     */
    std::array<PolyId, 2> emitRotateSum(std::array<PolyId, 2> a);

    /** Fresh natural-layout q copy of @p src (CoeffAdd with zero). */
    PolyId copyPoly(PolyId src);

    /**
     * The shared all-zero q polynomial (allocated on first use; freshly
     * allocated records are zeroed, and the slot is only ever read).
     */
    PolyId zeroSlot();

    /** @return the cached zero slot id, or kNoPoly if none was made. */
    PolyId zeroSlotId() const { return zero_; }

    /** Pre-seed the zero slot cache (compiler snapshot/rollback). */
    void setZeroSlotId(PolyId id) { zero_ = id; }

  private:
    /** Emit REARRANGE+NTT (or INTT+REARRANGE) for both batches. */
    void emitForward(PolyId id, bool full);
    void emitInverse(PolyId id, bool full);

    /**
     * Key-switch inner product: forward-transform each natural-layout
     * digit, accumulate digit x key products for key set @p selector
     * (0 = relin; see keyLoadAux), inverse-transform the accumulators
     * back to natural layout. Releases the digit slots.
     */
    std::array<PolyId, 2> accumulateKeySwitch(
        const std::vector<PolyId> &digits, uint32_t selector);

    /** Scale the three tensor polynomials Q->q (Fig. 2 step 5). */
    MultResult finishTensor(PolyId s0, PolyId s1, PolyId s2,
                            bool want_digits, bool want_c2);

    const fv::FvParams &params_;
    SlotAllocator &alloc_;
    Program &p_;
    PolyId zero_ = kNoPoly;
};

/** Emits coprocessor programs for the high-level FV operations
 *  directly against a coprocessor (the single-op plan path). */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(Coprocessor &cp) : cp_(cp) {}

    /**
     * FV.Add: two coefficient-wise additions (one per ciphertext
     * polynomial). Inputs are left resident.
     *
     * @return program with outputs {c0, c1}.
     */
    Program buildAdd(std::array<PolyId, 2> a, std::array<PolyId, 2> b);

    /**
     * FV.Mult with relinearization (Fig. 2). Consumes the input
     * records' slots (they are released at their last use).
     *
     * @return program with outputs {c0, c1}.
     */
    Program buildMult(std::array<PolyId, 2> a, std::array<PolyId, 2> b);

  private:
    Coprocessor &cp_;
};

} // namespace heat::hw

#endif // HEAT_HW_PROGRAM_BUILDER_H
