/**
 * @file
 * Builds the instruction sequences for the high-level homomorphic
 * operations (FV.Add and FV.Mult, Fig. 2) against a coprocessor's
 * memory file.
 *
 * The Mult schedule reproduces the paper's instruction mix (Table II):
 * 4 Lift, 14 NTT, 8 Inverse-NTT, 20 coefficient-wise multiplications,
 * 22 memory rearranges, 3 Scale and 6 relinearization-key DMA loads
 * (we issue 14 coefficient-wise additions where the paper reports 26;
 * EXPERIMENTS.md discusses the delta). Slot allocation is performed at
 * build time and must fit the 84-slot memory file — the peak is 78
 * slots, which is the on-chip-memory pressure Table IV reflects.
 */

#ifndef HEAT_HW_PROGRAM_BUILDER_H
#define HEAT_HW_PROGRAM_BUILDER_H

#include <array>

#include "hw/coprocessor.h"
#include "hw/isa.h"

namespace heat::hw {

/**
 * A built program together with its operand bindings — a plain value.
 *
 * Slot allocation inside the memory file is deterministic: building the
 * same plan against any freshly-constructed coprocessor with the same
 * parameter set and configuration yields identical PolyIds and an
 * identical instruction stream. A plan can therefore be built once and
 * dispatched to any worker's coprocessor, provided that worker prepared
 * its memory file with preparePlanSlots() (or built the same plan
 * itself). Re-execution only requires re-uploading the inputs.
 */
struct OpPlan
{
    /** Which high-level operation the program implements. */
    enum class Kind : uint8_t { kAdd, kMult };

    Kind kind = Kind::kAdd;
    Program program;
    /** Operand slots for the first ciphertext (c0, c1). */
    std::array<PolyId, 2> in_a{kNoPoly, kNoPoly};
    /** Operand slots for the second ciphertext (c0, c1). */
    std::array<PolyId, 2> in_b{kNoPoly, kNoPoly};

    bool operator==(const OpPlan &o) const = default;
};

/**
 * Build the FV.Add plan against @p cp, allocating its operand and
 * result slots. @p cp must be freshly constructed (or in the same
 * allocation state as every other coprocessor the plan will run on).
 */
OpPlan makeAddPlan(Coprocessor &cp);

/** Build the FV.Mult-with-relinearization plan against @p cp. */
OpPlan makeMultPlan(Coprocessor &cp);

/**
 * Replay @p plan's slot allocations on another coprocessor so the plan
 * becomes executable there. Panics if the replayed allocation diverges
 * from the plan (the coprocessor was not in the expected state).
 */
void preparePlanSlots(Coprocessor &cp, const OpPlan &plan);

/** Upload both operand ciphertext polynomial pairs of @p plan. */
void uploadPlanInputs(Coprocessor &cp, const OpPlan &plan,
                      const std::array<const ntt::RnsPoly *, 2> &a,
                      const std::array<const ntt::RnsPoly *, 2> &b);

/** Emits coprocessor programs for the high-level FV operations. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(Coprocessor &cp) : cp_(cp) {}

    /**
     * FV.Add: two coefficient-wise additions (one per ciphertext
     * polynomial). Inputs are left resident.
     *
     * @return program with outputs {c0, c1}.
     */
    Program buildAdd(std::array<PolyId, 2> a, std::array<PolyId, 2> b);

    /**
     * FV.Mult with relinearization (Fig. 2). Consumes the input
     * records' slots (they are released at their last use).
     *
     * @return program with outputs {c0, c1}.
     */
    Program buildMult(std::array<PolyId, 2> a, std::array<PolyId, 2> b);

  private:
    /** Emit REARRANGE+NTT (or INTT+REARRANGE) for both batches. */
    void emitForward(Program &p, PolyId id, bool full);
    void emitInverse(Program &p, PolyId id, bool full);

    Coprocessor &cp_;
};

} // namespace heat::hw

#endif // HEAT_HW_PROGRAM_BUILDER_H
