#include "ntt/ntt.h"

#include "common/panic.h"
#include "obs/trace.h"
#include "simd/simd.h"

namespace heat::ntt {

void
forwardNtt(std::span<uint64_t> a, const NttTables &tables)
{
    OBS_SPAN("ntt.forward", "kernel");
    panicIf(a.size() != tables.degree(), "NTT operand size mismatch");
    panicIf(tables.modulus().bits() > 60, "lazy NTT requires q < 2^60");
    simd::active().ntt_forward(a.data(), tables);
}

void
inverseNtt(std::span<uint64_t> a, const NttTables &tables)
{
    OBS_SPAN("ntt.inverse", "kernel");
    panicIf(a.size() != tables.degree(), "NTT operand size mismatch");
    panicIf(tables.modulus().bits() > 60, "lazy NTT requires q < 2^60");
    simd::active().ntt_inverse(a.data(), tables);
}

void
forwardNttScalar(std::span<uint64_t> a, const NttTables &tables)
{
    const size_t n = tables.degree();
    panicIf(a.size() != n, "NTT operand size mismatch");
    const rns::Modulus &q = tables.modulus();
    panicIf(q.bits() > 60, "lazy NTT requires q < 2^60");
    const uint64_t two_q = 2 * q.value();

    // Cooley-Tukey, decimation in time; stage m doubles from 1 to n/2.
    // Harvey-style lazy reduction: values live in [0, 4q) between
    // stages, with one normalization pass at the end — the canonical
    // output is identical to the strict implementation.
    size_t t = n;
    for (size_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        for (size_t i = 0; i < m; ++i) {
            const size_t j1 = 2 * i * t;
            const uint64_t w = tables.rootPower(m + i);
            const uint64_t w_shoup = tables.rootPowerShoup(m + i);
            for (size_t j = j1; j < j1 + t; ++j) {
                uint64_t u = a[j];
                if (u >= two_q)
                    u -= two_q; // [0, 2q)
                const uint64_t v =
                    q.mulShoupLazy(a[j + t], w, w_shoup); // [0, 2q)
                a[j] = u + v;                             // [0, 4q)
                a[j + t] = u - v + two_q;                 // [0, 4q)
            }
        }
    }
    for (auto &x : a) {
        if (x >= two_q)
            x -= two_q;
        if (x >= q.value())
            x -= q.value();
    }
}

void
inverseNttScalar(std::span<uint64_t> a, const NttTables &tables)
{
    const size_t n = tables.degree();
    panicIf(a.size() != n, "NTT operand size mismatch");
    const rns::Modulus &q = tables.modulus();

    panicIf(q.bits() > 60, "lazy NTT requires q < 2^60");
    const uint64_t two_q = 2 * q.value();

    // Gentleman-Sande, undoing the forward stages in reverse order;
    // lazy reduction keeps values in [0, 2q) between stages.
    size_t t = 1;
    for (size_t h = n >> 1; h >= 1; h >>= 1) {
        for (size_t i = 0; i < h; ++i) {
            const size_t j1 = 2 * i * t;
            const uint64_t w = tables.invRootPower(h + i);
            const uint64_t w_shoup = tables.invRootPowerShoup(h + i);
            for (size_t j = j1; j < j1 + t; ++j) {
                const uint64_t u = a[j];
                const uint64_t v = a[j + t];
                uint64_t s = u + v; // [0, 4q)
                if (s >= two_q)
                    s -= two_q;
                a[j] = s;
                a[j + t] = q.mulShoupLazy(u - v + two_q, w, w_shoup);
            }
        }
        t <<= 1;
    }

    // Final scaling by n^{-1} with strict normalization — the extra
    // pass the hardware INTT also performs (Table II: Inverse-NTT is
    // slower than NTT).
    const uint64_t n_inv = tables.invDegree();
    const uint64_t n_inv_shoup = tables.invDegreeShoup();
    for (auto &x : a) {
        uint64_t r = q.mulShoupLazy(x, n_inv, n_inv_shoup);
        x = r >= q.value() ? r - q.value() : r;
    }
}

void
negacyclicMulReference(std::span<const uint64_t> a,
                       std::span<const uint64_t> b, std::span<uint64_t> c,
                       const rns::Modulus &modulus)
{
    const size_t n = a.size();
    panicIf(b.size() != n || c.size() != n, "operand size mismatch");
    for (size_t k = 0; k < n; ++k)
        c[k] = 0;
    for (size_t i = 0; i < n; ++i) {
        if (a[i] == 0)
            continue;
        for (size_t j = 0; j < n; ++j) {
            const size_t k = i + j;
            const uint64_t prod = modulus.mul(a[i], b[j]);
            if (k < n) {
                c[k] = modulus.add(c[k], prod);
            } else {
                // x^n = -1: wrapped terms are subtracted.
                c[k - n] = modulus.sub(c[k - n], prod);
            }
        }
    }
}

} // namespace heat::ntt
