/**
 * @file
 * Negacyclic number-theoretic transform over Z_q[x]/(x^n + 1).
 *
 * Forward transform: iterative Cooley-Tukey with the 2n-th root psi merged
 * into the twiddles (no separate pre-scaling pass); natural-order input,
 * bit-reversed output. Inverse: Gentleman-Sande, bit-reversed input,
 * natural output, final scaling by n^{-1}. Coefficient-wise operations are
 * valid on bit-reversed-domain data, so transforms pair up without explicit
 * permutations — in the hardware model the REARRANGE instruction carries
 * the same role explicitly.
 */

#ifndef HEAT_NTT_NTT_H
#define HEAT_NTT_NTT_H

#include <cstdint>
#include <span>

#include "ntt/ntt_tables.h"

namespace heat::ntt {

/**
 * In-place forward negacyclic NTT.
 *
 * Dispatches to the widest SIMD kernel the host supports (see
 * simd/simd.h); outputs are bit-identical to forwardNttScalar on every
 * path.
 *
 * @param a coefficients in natural order, values in [0, q); on return,
 *          evaluations in bit-reversed order.
 * @param tables twiddle tables matching a's modulus and size.
 */
void forwardNtt(std::span<uint64_t> a, const NttTables &tables);

/**
 * In-place inverse negacyclic NTT (including the n^{-1} scaling).
 *
 * Dispatches like forwardNtt; bit-identical to inverseNttScalar.
 *
 * @param a evaluations in bit-reversed order; on return, coefficients in
 *          natural order.
 * @param tables twiddle tables matching a's modulus and size.
 */
void inverseNtt(std::span<uint64_t> a, const NttTables &tables);

/**
 * The portable 64-bit forward transform — the differential oracle the
 * vector kernels are tested against, and the fallback they use for
 * wide moduli and tiny sizes. Same contract as forwardNtt.
 */
void forwardNttScalar(std::span<uint64_t> a, const NttTables &tables);

/** Scalar oracle for inverseNtt; same contract. */
void inverseNttScalar(std::span<uint64_t> a, const NttTables &tables);

/**
 * Reference negacyclic product c = a * b mod (x^n + 1, q), schoolbook
 * O(n^2). Oracle for tests and the honest "no-NTT" baseline.
 */
void negacyclicMulReference(std::span<const uint64_t> a,
                            std::span<const uint64_t> b,
                            std::span<uint64_t> c,
                            const rns::Modulus &modulus);

} // namespace heat::ntt

#endif // HEAT_NTT_NTT_H
