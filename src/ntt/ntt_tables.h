/**
 * @file
 * Precomputed twiddle-factor tables for the negacyclic NTT.
 *
 * The paper stores all twiddle factors in on-chip ROM instead of computing
 * them on the fly, removing the pipeline bubbles reported by earlier work
 * (Sec. V-A4). The software library makes the same trade: tables of
 * psi^bitrev(i) with Shoup precomputations so the NTT inner loop is one
 * mulhi, one mullo and a conditional subtraction per butterfly.
 */

#ifndef HEAT_NTT_NTT_TABLES_H
#define HEAT_NTT_NTT_TABLES_H

#include <cstdint>
#include <memory>
#include <vector>

#include "rns/modulus.h"
#include "rns/rns_base.h"

namespace heat::ntt {

/** Twiddle tables for one (modulus, degree) pair. */
class NttTables
{
  public:
    /**
     * Build tables for degree @p n (power of two) modulo @p modulus
     * (prime, = 1 mod 2n).
     */
    NttTables(const rns::Modulus &modulus, size_t n);

    /** @return the modulus. */
    const rns::Modulus &modulus() const { return modulus_; }

    /** @return polynomial degree n. */
    size_t degree() const { return n_; }

    /** @return log2(n). */
    int logDegree() const { return log_n_; }

    /** @return the primitive 2n-th root of unity psi. */
    uint64_t psi() const { return psi_; }

    /** @return psi^bitrev(i) (forward twiddle i). */
    uint64_t rootPower(size_t i) const { return root_powers_[i]; }

    /** @return Shoup precomputation for rootPower(i). */
    uint64_t rootPowerShoup(size_t i) const { return root_shoup_[i]; }

    /** @return (psi^bitrev(i))^{-1} (inverse twiddle i). */
    uint64_t invRootPower(size_t i) const { return inv_root_powers_[i]; }

    /** @return Shoup precomputation for invRootPower(i). */
    uint64_t invRootPowerShoup(size_t i) const { return inv_root_shoup_[i]; }

    /** @return n^{-1} mod q. */
    uint64_t invDegree() const { return inv_degree_; }

    /** @return Shoup precomputation for invDegree(). */
    uint64_t invDegreeShoup() const { return inv_degree_shoup_; }

  private:
    rns::Modulus modulus_;
    size_t n_ = 0;
    int log_n_ = 0;
    uint64_t psi_ = 0;
    std::vector<uint64_t> root_powers_;
    std::vector<uint64_t> root_shoup_;
    std::vector<uint64_t> inv_root_powers_;
    std::vector<uint64_t> inv_root_shoup_;
    uint64_t inv_degree_ = 0;
    uint64_t inv_degree_shoup_ = 0;
};

/**
 * Twiddle tables for every modulus of an RNS base at a fixed degree.
 * This is the software analogue of the per-RPAU twiddle ROMs.
 */
class NttContext
{
  public:
    NttContext() = default;

    /** Build tables for all moduli of @p base at degree @p n. */
    NttContext(const rns::RnsBase &base, size_t n);

    /**
     * Build a context that reuses (shares) a subset of @p parent's
     * tables — table i of the result is parent table indices[i]. No
     * twiddle ROM is duplicated; this is how the per-level contexts of
     * a modulus-switching chain stay cheap (the level-l basis is a
     * prefix of the level-0 basis).
     */
    static NttContext select(const NttContext &parent,
                             const std::vector<size_t> &indices);

    /** @return tables for base modulus @p i. */
    const NttTables &tables(size_t i) const { return *tables_[i]; }

    /** @return the degree. */
    size_t degree() const { return n_; }

    /** @return number of moduli covered. */
    size_t size() const { return tables_.size(); }

  private:
    size_t n_ = 0;
    std::vector<std::shared_ptr<const NttTables>> tables_;
};

} // namespace heat::ntt

#endif // HEAT_NTT_NTT_TABLES_H
