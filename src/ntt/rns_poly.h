/**
 * @file
 * Polynomials in RNS (residue) representation.
 *
 * An RnsPoly stores one residue polynomial per base modulus, flat in
 * memory: residue i occupies coefficients [i*n, (i+1)*n). A form flag
 * tracks whether the data is in coefficient or NTT (evaluation) domain;
 * operations check form compatibility, mirroring the layout tags the
 * hardware model attaches to its memory-file slots.
 */

#ifndef HEAT_NTT_RNS_POLY_H
#define HEAT_NTT_RNS_POLY_H

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "mp/bigint.h"
#include "ntt/ntt_tables.h"
#include "rns/rns_base.h"

namespace heat::ntt {

/** Domain of an RnsPoly's data. */
enum class PolyForm
{
    kCoeff, ///< coefficient representation, natural order
    kNtt,   ///< NTT representation, bit-reversed order
};

/** A polynomial over an RNS base. */
class RnsPoly
{
  public:
    RnsPoly() = default;

    /** Construct the zero polynomial over @p base with degree @p n. */
    RnsPoly(std::shared_ptr<const rns::RnsBase> base, size_t n,
            PolyForm form = PolyForm::kCoeff);

    /** @return the RNS base. */
    const rns::RnsBase &base() const { return *base_; }

    /** @return shared handle to the RNS base. */
    const std::shared_ptr<const rns::RnsBase> &baseHandle() const
    {
        return base_;
    }

    /** @return polynomial degree n. */
    size_t degree() const { return n_; }

    /** @return number of residue polynomials. */
    size_t residueCount() const { return base_ ? base_->size() : 0; }

    /** @return current representation domain. */
    PolyForm form() const { return form_; }

    /** Override the form tag (used when data was written externally). */
    void setForm(PolyForm form) { form_ = form; }

    /** @return mutable view of residue polynomial @p i. */
    std::span<uint64_t> residue(size_t i);

    /** @return const view of residue polynomial @p i. */
    std::span<const uint64_t> residue(size_t i) const;

    /** @return flat data (residue-major). */
    std::vector<uint64_t> &data() { return data_; }
    const std::vector<uint64_t> &data() const { return data_; }

    /**
     * Gather the RNS residues of coefficient @p coeff across all bases
     * into @p out (size residueCount()). This is the access pattern of
     * the Lift/Scale units, which stream coefficient-serial.
     */
    void gatherCoefficient(size_t coeff, std::span<uint64_t> out) const;

    /** Scatter per-coefficient residues back (inverse of gather). */
    void scatterCoefficient(size_t coeff, std::span<const uint64_t> in);

    // --- arithmetic (element-wise across residues) -----------------------

    /** this += other (forms must match, bases must match). */
    void addInPlace(const RnsPoly &other);

    /** this -= other. */
    void subInPlace(const RnsPoly &other);

    /** this = -this. */
    void negateInPlace();

    /** this *= other, coefficient-wise (both operands in NTT form). */
    void mulPointwiseInPlace(const RnsPoly &other);

    /** this += a * b, coefficient-wise (all in NTT form). */
    void addMulPointwise(const RnsPoly &a, const RnsPoly &b);

    /** Multiply every residue by a scalar given mod each base prime. */
    void mulScalarInPlace(std::span<const uint64_t> scalar_residues);

    // --- transforms ------------------------------------------------------

    /** Forward-NTT every residue (kCoeff -> kNtt). */
    void toNtt(const NttContext &context);

    /** Inverse-NTT every residue (kNtt -> kCoeff). */
    void toCoeff(const NttContext &context);

    // --- conversions -----------------------------------------------------

    /**
     * Build an RnsPoly from BigInt coefficients (values taken mod each
     * prime; negative values allowed).
     */
    static RnsPoly fromBigCoefficients(
        std::shared_ptr<const rns::RnsBase> base, size_t n,
        const std::vector<mp::BigInt> &coeffs);

    /** CRT-compose coefficient @p i to a centered BigInt. */
    mp::BigInt coefficientCentered(size_t i) const;

    bool operator==(const RnsPoly &other) const;

  private:
    void checkCompatible(const RnsPoly &other) const;

    std::shared_ptr<const rns::RnsBase> base_;
    size_t n_ = 0;
    PolyForm form_ = PolyForm::kCoeff;
    std::vector<uint64_t> data_;
};

} // namespace heat::ntt

#endif // HEAT_NTT_RNS_POLY_H
