#include "ntt/rns_poly.h"

#include "common/panic.h"
#include "common/parallel.h"
#include "ntt/ntt.h"
#include "simd/simd.h"

namespace heat::ntt {

RnsPoly::RnsPoly(std::shared_ptr<const rns::RnsBase> base, size_t n,
                 PolyForm form)
    : base_(std::move(base)), n_(n), form_(form)
{
    panicIf(!base_, "RnsPoly needs a base");
    data_.assign(base_->size() * n_, 0);
}

std::span<uint64_t>
RnsPoly::residue(size_t i)
{
    panicIf(i >= residueCount(), "residue index out of range");
    return {data_.data() + i * n_, n_};
}

std::span<const uint64_t>
RnsPoly::residue(size_t i) const
{
    panicIf(i >= residueCount(), "residue index out of range");
    return {data_.data() + i * n_, n_};
}

void
RnsPoly::gatherCoefficient(size_t coeff, std::span<uint64_t> out) const
{
    panicIf(coeff >= n_, "coefficient index out of range");
    panicIf(out.size() != residueCount(), "gather size mismatch");
    for (size_t i = 0; i < residueCount(); ++i)
        out[i] = data_[i * n_ + coeff];
}

void
RnsPoly::scatterCoefficient(size_t coeff, std::span<const uint64_t> in)
{
    panicIf(coeff >= n_, "coefficient index out of range");
    panicIf(in.size() != residueCount(), "scatter size mismatch");
    for (size_t i = 0; i < residueCount(); ++i)
        data_[i * n_ + coeff] = in[i];
}

void
RnsPoly::checkCompatible(const RnsPoly &other) const
{
    panicIf(n_ != other.n_, "degree mismatch");
    panicIf(!(*base_ == *other.base_), "RNS base mismatch");
    panicIf(form_ != other.form_, "representation form mismatch");
}

void
RnsPoly::addInPlace(const RnsPoly &other)
{
    checkCompatible(other);
    const simd::Kernels &k = simd::active();
    parallelFor(residueCount(), [this, &other, &k](size_t i) {
        k.add_mod(residue(i).data(), other.residue(i).data(), n_,
                  base_->modulus(i).value());
    });
}

void
RnsPoly::subInPlace(const RnsPoly &other)
{
    checkCompatible(other);
    const simd::Kernels &k = simd::active();
    parallelFor(residueCount(), [this, &other, &k](size_t i) {
        k.sub_mod(residue(i).data(), other.residue(i).data(), n_,
                  base_->modulus(i).value());
    });
}

void
RnsPoly::negateInPlace()
{
    const simd::Kernels &k = simd::active();
    parallelFor(residueCount(), [this, &k](size_t i) {
        k.negate_mod(residue(i).data(), n_, base_->modulus(i).value());
    });
}

void
RnsPoly::mulPointwiseInPlace(const RnsPoly &other)
{
    checkCompatible(other);
    panicIf(form_ != PolyForm::kNtt, "pointwise mul requires NTT form");
    const simd::Kernels &k = simd::active();
    parallelFor(residueCount(), [this, &other, &k](size_t i) {
        k.mul_mod(residue(i).data(), other.residue(i).data(), n_,
                  base_->modulus(i));
    });
}

void
RnsPoly::addMulPointwise(const RnsPoly &a, const RnsPoly &b)
{
    checkCompatible(a);
    checkCompatible(b);
    panicIf(form_ != PolyForm::kNtt, "pointwise MAC requires NTT form");
    const simd::Kernels &k = simd::active();
    parallelFor(residueCount(), [this, &a, &b, &k](size_t i) {
        k.mac_mod(residue(i).data(), a.residue(i).data(),
                  b.residue(i).data(), n_, base_->modulus(i));
    });
}

void
RnsPoly::mulScalarInPlace(std::span<const uint64_t> scalar_residues)
{
    panicIf(scalar_residues.size() != residueCount(),
            "scalar residue count mismatch");
    const simd::Kernels &k = simd::active();
    parallelFor(residueCount(), [this, scalar_residues, &k](size_t i) {
        const rns::Modulus &q = base_->modulus(i);
        const uint64_t s = scalar_residues[i] % q.value();
        k.mul_shoup(residue(i).data(), n_, q, s, q.shoupPrecompute(s));
    });
}

void
RnsPoly::toNtt(const NttContext &context)
{
    panicIf(form_ != PolyForm::kCoeff, "toNtt requires coefficient form");
    panicIf(context.degree() != n_ || context.size() != residueCount(),
            "NTT context mismatch");
    parallelFor(residueCount(), [this, &context](size_t i) {
        forwardNtt(residue(i), context.tables(i));
    });
    form_ = PolyForm::kNtt;
}

void
RnsPoly::toCoeff(const NttContext &context)
{
    panicIf(form_ != PolyForm::kNtt, "toCoeff requires NTT form");
    panicIf(context.degree() != n_ || context.size() != residueCount(),
            "NTT context mismatch");
    parallelFor(residueCount(), [this, &context](size_t i) {
        inverseNtt(residue(i), context.tables(i));
    });
    form_ = PolyForm::kCoeff;
}

RnsPoly
RnsPoly::fromBigCoefficients(std::shared_ptr<const rns::RnsBase> base,
                             size_t n,
                             const std::vector<mp::BigInt> &coeffs)
{
    panicIf(coeffs.size() > n, "too many coefficients");
    RnsPoly poly(std::move(base), n, PolyForm::kCoeff);
    for (size_t i = 0; i < poly.residueCount(); ++i) {
        const mp::BigInt q_i(
            static_cast<int64_t>(poly.base().modulus(i).value()));
        auto r = poly.residue(i);
        for (size_t j = 0; j < coeffs.size(); ++j)
            r[j] = coeffs[j].mod(q_i).toUint64();
    }
    return poly;
}

mp::BigInt
RnsPoly::coefficientCentered(size_t i) const
{
    std::vector<uint64_t> residues(residueCount());
    gatherCoefficient(i, residues);
    return base_->composeCentered(residues);
}

bool
RnsPoly::operator==(const RnsPoly &other) const
{
    return n_ == other.n_ && form_ == other.form_ &&
           *base_ == *other.base_ && data_ == other.data_;
}

} // namespace heat::ntt
