#include "ntt/ntt_tables.h"

#include "common/bit_util.h"
#include "common/panic.h"
#include "rns/prime_gen.h"

namespace heat::ntt {

NttTables::NttTables(const rns::Modulus &modulus, size_t n)
    : modulus_(modulus), n_(n)
{
    fatalIf(!isPowerOfTwo(n), "NTT degree must be a power of two");
    log_n_ = log2Floor(n);
    fatalIf((modulus.value() - 1) % (2 * n) != 0,
            "modulus is not NTT-friendly for this degree");

    psi_ = rns::findPrimitiveRoot(modulus.value(), n);

    root_powers_.resize(n);
    root_shoup_.resize(n);
    inv_root_powers_.resize(n);
    inv_root_shoup_.resize(n);

    const uint64_t psi_inv = modulus.inverse(psi_);
    for (size_t i = 0; i < n; ++i) {
        const uint64_t e = reverseBits(i, log_n_);
        root_powers_[i] = modulus.pow(psi_, e);
        root_shoup_[i] = modulus.shoupPrecompute(root_powers_[i]);
        inv_root_powers_[i] = modulus.pow(psi_inv, e);
        inv_root_shoup_[i] = modulus.shoupPrecompute(inv_root_powers_[i]);
    }

    inv_degree_ = modulus.inverse(n % modulus.value());
    inv_degree_shoup_ = modulus.shoupPrecompute(inv_degree_);
}

NttContext::NttContext(const rns::RnsBase &base, size_t n) : n_(n)
{
    tables_.reserve(base.size());
    for (size_t i = 0; i < base.size(); ++i)
        tables_.push_back(std::make_shared<NttTables>(base.modulus(i), n));
}

NttContext
NttContext::select(const NttContext &parent,
                   const std::vector<size_t> &indices)
{
    NttContext context;
    context.n_ = parent.n_;
    context.tables_.reserve(indices.size());
    for (size_t index : indices) {
        fatalIf(index >= parent.size(),
                "NttContext::select index out of range");
        context.tables_.push_back(parent.tables_[index]);
    }
    return context;
}

} // namespace heat::ntt
