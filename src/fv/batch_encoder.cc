#include "fv/batch_encoder.h"

#include "common/bit_util.h"
#include "common/panic.h"
#include "mp/primality.h"
#include "ntt/ntt.h"

namespace heat::fv {

BatchEncoder::BatchEncoder(std::shared_ptr<const FvParams> params)
    : params_(std::move(params))
{
    const uint64_t t = params_->plainModulus();
    const size_t n = params_->degree();
    fatalIf(!mp::isPrime(t), "batching requires a prime plain modulus");
    fatalIf((t - 1) % (2 * n) != 0,
            "batching requires t = 1 (mod 2n); try t = 65537 for n<=4096");
    tables_ = std::make_shared<ntt::NttTables>(rns::Modulus(t), n);
}

Plaintext
BatchEncoder::encode(const std::vector<uint64_t> &slots) const
{
    const size_t n = params_->degree();
    fatalIf(slots.size() > n, "more slots than the ring degree");
    const uint64_t t = params_->plainModulus();

    std::vector<uint64_t> values(n, 0);
    for (size_t i = 0; i < slots.size(); ++i)
        values[i] = slots[i] % t;
    // Slots live in the evaluation domain; the plaintext polynomial is
    // their inverse NTT.
    ntt::inverseNtt(values, *tables_);
    return Plaintext(std::move(values));
}

std::vector<size_t>
BatchEncoder::slotPermutation(uint32_t galois_element) const
{
    // Slot j is the evaluation at psi^(2*bitrev(j)+1). Under tau_g the
    // value at exponent e comes from exponent e*g mod 2n.
    const size_t n = params_->degree();
    const int log_n = tables_->logDegree();
    std::vector<size_t> slot_of_exponent(2 * n, SIZE_MAX);
    for (size_t j = 0; j < n; ++j) {
        const uint64_t e = 2 * reverseBits(j, log_n) + 1;
        slot_of_exponent[e] = j;
    }
    std::vector<size_t> perm(n);
    for (size_t j = 0; j < n; ++j) {
        const uint64_t e = 2 * reverseBits(j, log_n) + 1;
        const uint64_t src = (e * galois_element) & (2 * n - 1);
        perm[j] = slot_of_exponent[src];
    }
    return perm;
}

std::vector<uint64_t>
BatchEncoder::decode(const Plaintext &plain) const
{
    const size_t n = params_->degree();
    fatalIf(plain.coeffs.size() > n, "plaintext longer than ring degree");
    const uint64_t t = params_->plainModulus();

    std::vector<uint64_t> values(n, 0);
    for (size_t i = 0; i < plain.coeffs.size(); ++i)
        values[i] = plain.coeffs[i] % t;
    ntt::forwardNtt(values, *tables_);
    return values;
}

} // namespace heat::fv
