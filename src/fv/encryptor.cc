#include "fv/encryptor.h"

#include "common/panic.h"

namespace heat::fv {

Encryptor::Encryptor(std::shared_ptr<const FvParams> params, PublicKey pk,
                     uint64_t seed)
    : params_(params), pk_(std::move(pk)), sampler_(params, seed)
{
}

ntt::RnsPoly
Encryptor::scalePlainToQ(const Plaintext &plain) const
{
    fatalIf(plain.coeffs.size() > params_->degree(),
            "plaintext has more coefficients than the ring degree");
    const auto &base = params_->qBase();
    const auto &delta = params_->deltaResidues();
    ntt::RnsPoly poly(base, params_->degree(), ntt::PolyForm::kCoeff);
    const uint64_t t = params_->plainModulus();
    for (size_t i = 0; i < base->size(); ++i) {
        const rns::Modulus &q_i = base->modulus(i);
        auto r = poly.residue(i);
        for (size_t j = 0; j < plain.coeffs.size(); ++j)
            r[j] = q_i.mul(delta[i], plain.coeffs[j] % t);
    }
    return poly;
}

Ciphertext
Encryptor::encrypt(const Plaintext &plain)
{
    Ciphertext ct = encryptZero();
    ct[0].addInPlace(scalePlainToQ(plain));
    return ct;
}

Ciphertext
Encryptor::encryptZero()
{
    ntt::RnsPoly u = sampler_.ternaryQ();
    u.toNtt(params_->qContext());

    // c0 = INTT(p0 * u) + e1 ; c1 = INTT(p1 * u) + e2.
    ntt::RnsPoly c0 = pk_.p0_ntt;
    c0.mulPointwiseInPlace(u);
    c0.toCoeff(params_->qContext());
    c0.addInPlace(sampler_.gaussianQ());

    ntt::RnsPoly c1 = pk_.p1_ntt;
    c1.mulPointwiseInPlace(u);
    c1.toCoeff(params_->qContext());
    c1.addInPlace(sampler_.gaussianQ());

    Ciphertext ct;
    ct.polys.push_back(std::move(c0));
    ct.polys.push_back(std::move(c1));
    return ct;
}

} // namespace heat::fv
