#include "fv/keygen.h"

#include "common/panic.h"

namespace heat::fv {

KeyGenerator::KeyGenerator(std::shared_ptr<const FvParams> params,
                           uint64_t seed)
    : params_(params), sampler_(params, seed)
{
}

SecretKey
KeyGenerator::generateSecretKey()
{
    ntt::RnsPoly s = sampler_.ternaryQ();
    s.toNtt(params_->qContext());
    return SecretKey{std::move(s)};
}

PublicKey
KeyGenerator::generatePublicKey(const SecretKey &sk)
{
    ntt::RnsPoly a = sampler_.uniformQ();
    ntt::RnsPoly e = sampler_.gaussianQ();
    a.toNtt(params_->qContext());
    e.toNtt(params_->qContext());

    // p0 = -(a*s + e), p1 = a, all in the NTT domain.
    ntt::RnsPoly p0 = a;
    p0.mulPointwiseInPlace(sk.s_ntt);
    p0.addInPlace(e);
    p0.negateInPlace();
    return PublicKey{std::move(p0), std::move(a)};
}

ntt::RnsPoly
KeyGenerator::squareSecret(const SecretKey &sk) const
{
    ntt::RnsPoly s2 = sk.s_ntt;
    s2.mulPointwiseInPlace(sk.s_ntt);
    return s2;
}

RelinKeys
KeyGenerator::makeKeySwitchKeys(const SecretKey &sk,
                                const ntt::RnsPoly &target_ntt)
{
    const size_t digits = params_->rnsDigitCount();
    RelinKeys keys;
    keys.kind = DecompKind::kRnsDigits;
    keys.keys.reserve(digits);
    for (size_t i = 0; i < digits; ++i) {
        ntt::RnsPoly a = sampler_.uniformQ();
        ntt::RnsPoly e = sampler_.gaussianQ();
        a.toNtt(params_->qContext());
        e.toNtt(params_->qContext());

        // key0_i = -(a s + e) + f_i * target with f_i the CRT unit
        // vector: f_i = q~_i q*_i mod q is 1 mod q_i and 0 mod every
        // other prime, so only residue i of the target survives.
        ntt::RnsPoly key0 = a;
        key0.mulPointwiseInPlace(sk.s_ntt);
        key0.addInPlace(e);
        key0.negateInPlace();
        std::vector<uint64_t> unit(digits, 0);
        unit[i] = 1;
        ntt::RnsPoly f_target = target_ntt;
        f_target.mulScalarInPlace(unit);
        key0.addInPlace(f_target);

        keys.keys.push_back({std::move(key0), std::move(a)});
    }
    return keys;
}

RelinKeys
KeyGenerator::generateRelinKeys(const SecretKey &sk)
{
    return makeKeySwitchKeys(sk, squareSecret(sk));
}

GaloisKeys
KeyGenerator::generateGaloisKeys(const SecretKey &sk,
                                 const std::vector<uint32_t> &elements)
{
    const size_t n = params_->degree();
    GaloisKeys gkeys;
    for (uint32_t g : elements) {
        if (gkeys.has(g))
            continue;
        // Build s(x^g) in NTT form: permute the coefficient-form secret.
        ntt::RnsPoly s_coeff = sk.s_ntt;
        s_coeff.toCoeff(params_->qContext());
        ntt::RnsPoly s_g(params_->qBase(), n, ntt::PolyForm::kCoeff);
        for (size_t k = 0; k < s_coeff.residueCount(); ++k) {
            applyGaloisToResidue(s_coeff.residue(k), s_g.residue(k), g,
                                 params_->qBase()->modulus(k));
        }
        s_g.toNtt(params_->qContext());
        gkeys.keys.emplace(g, makeKeySwitchKeys(sk, s_g));
    }
    return gkeys;
}

GaloisKeys
KeyGenerator::generateRotationKeys(const SecretKey &sk)
{
    const size_t n = params_->degree();
    std::vector<uint32_t> elements;
    for (size_t step = 1; step <= n / 4; step *= 2) {
        elements.push_back(
            galoisElementForStep(static_cast<int>(step), n));
        elements.push_back(
            galoisElementForStep(-static_cast<int>(step), n));
    }
    elements.push_back(static_cast<uint32_t>(2 * n - 1)); // column swap
    return generateGaloisKeys(sk, elements);
}

RelinKeys
KeyGenerator::generatePositionalRelinKeys(const SecretKey &sk,
                                          int digit_bits)
{
    fatalIf(digit_bits < 1 || digit_bits > 180, "bad digit width");
    const int q_bits = params_->qBits();
    const size_t digits =
        (static_cast<size_t>(q_bits) + digit_bits - 1) / digit_bits;
    const ntt::RnsPoly s2 = squareSecret(sk);
    const auto &q_base = *params_->qBase();

    RelinKeys rlk;
    rlk.kind = DecompKind::kPositional;
    rlk.digit_bits = digit_bits;
    rlk.keys.reserve(digits);
    mp::BigInt w_pow(1);
    for (size_t i = 0; i < digits; ++i) {
        ntt::RnsPoly a = sampler_.uniformQ();
        ntt::RnsPoly e = sampler_.gaussianQ();
        a.toNtt(params_->qContext());
        e.toNtt(params_->qContext());

        ntt::RnsPoly key0 = a;
        key0.mulPointwiseInPlace(sk.s_ntt);
        key0.addInPlace(e);
        key0.negateInPlace();

        // f_i = w^i mod q as a scalar in RNS.
        std::vector<uint64_t> f(q_base.size());
        for (size_t k = 0; k < q_base.size(); ++k)
            f[k] = w_pow.modUint64(q_base.modulus(k).value());
        ntt::RnsPoly f_s2 = s2;
        f_s2.mulScalarInPlace(f);
        key0.addInPlace(f_s2);

        rlk.keys.push_back({std::move(key0), std::move(a)});
        w_pow = (w_pow << digit_bits).mod(q_base.product());
    }
    return rlk;
}

} // namespace heat::fv
