/**
 * @file
 * Analytical noise-growth model for FV.
 *
 * The paper sizes its parameter set for multiplicative depth 4
 * (Sec. III-A). This model reproduces that sizing decision: it tracks the
 * invariant-noise budget through fresh encryption, additions and
 * relinearized multiplications using the standard FV bounds, and reports
 * the supported depth for a parameter set. It is a design heuristic, not
 * a proof; tests compare it against measured budgets with slack.
 */

#ifndef HEAT_FV_NOISE_H
#define HEAT_FV_NOISE_H

#include <memory>

#include "fv/params.h"

namespace heat::fv {

/** Closed-form noise-budget estimates. */
class NoiseModel
{
  public:
    explicit NoiseModel(std::shared_ptr<const FvParams> params);

    /** Expected invariant-noise budget of a fresh encryption, in bits. */
    double freshBudgetBits() const;

    /** Budget (bits) remaining after @p depth relinearized squarings. */
    double budgetAfterDepth(int depth) const;

    /** Largest depth with positive predicted budget. */
    int supportedDepth() const;

  private:
    /** log2 of the invariant noise after one mult given input log2. */
    double multStep(double log_v) const;

    std::shared_ptr<const FvParams> params_;
    double log_q_;
    double log_t_;
    double log_n_;
    double b_err_; // high-probability error bound, 6 sigma
};

} // namespace heat::fv

#endif // HEAT_FV_NOISE_H
