/**
 * @file
 * Analytical noise-growth model for FV.
 *
 * The paper sizes its parameter set for multiplicative depth 4
 * (Sec. III-A). This model reproduces that sizing decision: it tracks the
 * invariant-noise budget through fresh encryption, additions and
 * relinearized multiplications using the standard FV bounds, and reports
 * the supported depth for a parameter set. It is a design heuristic, not
 * a proof; tests compare it against measured budgets with slack.
 *
 * Beyond the original depth-only chain, the model exposes per-operation
 * noise steps (add, plaintext add/multiply, tensor multiplication, the
 * relinearization/rotation key-switch, modulus switching) so the circuit
 * compiler can propagate a predicted budget through an arbitrary DAG and
 * reject — or warn about — programs whose budget is exhausted before
 * their outputs (compiler/noise_pass.h). All steps work on log2 of the
 * invariant noise |v|; budgetBits() converts back to the SEAL-style
 * budget convention (budget = -log2(2 |v|), clamped at zero).
 *
 * Every step takes the ciphertext LEVEL it executes at (see
 * FvParams::qBase(level)): the invariant noise is relative to the live
 * modulus q_l, so the same operation costs different budget at
 * different levels, which is exactly what the compiler's automatic
 * level-assignment pass optimizes over.
 *
 * Two bound flavours coexist:
 *  - NoiseBound::kWorstCase (default): the classical l_1-norm bounds
 *    (every |v| <= ... inequality tight simultaneously). Sound but so
 *    pessimistic that modulus switching can never *gain* depth under
 *    it — the per-multiplication cost ~ log2(2 n t) is
 *    level-independent while the ceiling shrinks with q_l.
 *  - NoiseBound::kAverageCase: canonical-embedding-style CLT
 *    heuristics (HElib's estimator tradition): independent coefficient
 *    sums grow like sqrt(n) rather than n. This is the bound the
 *    level-assignment pass plans with; tests pin it conservative
 *    (predicted budget <= measured budget) across the level sweep.
 */

#ifndef HEAT_FV_NOISE_H
#define HEAT_FV_NOISE_H

#include <cstddef>
#include <memory>
#include <vector>

#include "fv/params.h"

namespace heat::fv {

/** Which inequality family the model evaluates. */
enum class NoiseBound
{
    kWorstCase,   ///< l_1-norm worst case (classical FV bounds)
    kAverageCase, ///< CLT / canonical-embedding heuristic (sqrt(n))
};

/** Closed-form noise-budget estimates. */
class NoiseModel
{
  public:
    explicit NoiseModel(std::shared_ptr<const FvParams> params,
                        NoiseBound bound = NoiseBound::kWorstCase);

    /** @return the bound flavour this model evaluates. */
    NoiseBound bound() const { return bound_; }

    /** Expected invariant-noise budget of a fresh encryption, in bits. */
    double freshBudgetBits() const;

    /** Budget (bits) remaining after @p depth relinearized squarings. */
    double budgetAfterDepth(int depth) const;

    /** Largest depth with positive predicted budget. */
    int supportedDepth() const;

    // --- per-operation steps (log2 |v| in, log2 |v| out) ----------------

    /** log2 of the invariant noise of a fresh encryption (level 0). */
    double freshLogNoise() const;

    /** Budget (bits, clamped >= 0) for a given log2 invariant noise. */
    double budgetBits(double log_v) const;

    /** Ciphertext addition/subtraction: |v| <= |v1| + |v2|. */
    double addStep(double log_a, double log_b) const;

    /** Plaintext addition: adds the Delta-rounding term t n / q_l. */
    double addPlainStep(double log_v, size_t level = 0) const;

    /** Plaintext multiplication: |v| grows by a factor of n t. */
    double multiplyPlainStep(double log_v) const;

    /**
     * Tensor + scale (multiplication WITHOUT relinearization):
     * |v| ~ 2 n t (|v1| + |v2|) plus the t n / q_l rounding term. Apply
     * keySwitchStep afterwards for the relinearized product.
     */
    double multiplyStep(double log_a, double log_b,
                        size_t level = 0) const;

    /**
     * Key-switch additive term: relinearization of a 3-element value,
     * or the switch-back of a Galois rotation (the keys are
     * structurally identical, so the bound is shared): adds
     * t n k_l 2^30 B / q_l over the level's k_l live RNS digits.
     */
    double keySwitchStep(double log_v, size_t level = 0) const;

    /**
     * Modulus switch from @p from_level to from_level + 1: the
     * invariant noise is preserved up to the divide-and-round term
     * ~ t n / (2 q_{l+1}). Returns log2 |v| relative to the NEW level's
     * modulus.
     */
    double modSwitchStep(double log_v, size_t from_level) const;

    /** log2 of the live modulus q_l. */
    double logQ(size_t level = 0) const;

  private:
    /** log2 of the invariant noise after one mult given input log2. */
    double multStep(double log_v) const;

    /** 0.5 log2(n) for the average-case bound, log2(n) otherwise. */
    double expansionLogN() const;

    std::shared_ptr<const FvParams> params_;
    NoiseBound bound_;
    /** log_q_per_level_[l] = log2(q_l), precomputed for every level. */
    std::vector<double> log_q_per_level_;
    double log_q_;
    double log_t_;
    double log_n_;
    double b_err_; // high-probability error bound, 6 sigma
};

} // namespace heat::fv

#endif // HEAT_FV_NOISE_H
