/**
 * @file
 * Analytical noise-growth model for FV.
 *
 * The paper sizes its parameter set for multiplicative depth 4
 * (Sec. III-A). This model reproduces that sizing decision: it tracks the
 * invariant-noise budget through fresh encryption, additions and
 * relinearized multiplications using the standard FV bounds, and reports
 * the supported depth for a parameter set. It is a design heuristic, not
 * a proof; tests compare it against measured budgets with slack.
 *
 * Beyond the original depth-only chain, the model exposes per-operation
 * noise steps (add, plaintext add/multiply, tensor multiplication, the
 * relinearization/rotation key-switch) so the circuit compiler can
 * propagate a predicted budget through an arbitrary DAG and reject —
 * or warn about — programs whose budget is exhausted before their
 * outputs (compiler/noise_pass.h). All steps work on log2 of the
 * invariant noise |v|; budgetBits() converts back to the SEAL-style
 * budget convention (budget = -log2(2 |v|), clamped at zero).
 */

#ifndef HEAT_FV_NOISE_H
#define HEAT_FV_NOISE_H

#include <memory>

#include "fv/params.h"

namespace heat::fv {

/** Closed-form noise-budget estimates. */
class NoiseModel
{
  public:
    explicit NoiseModel(std::shared_ptr<const FvParams> params);

    /** Expected invariant-noise budget of a fresh encryption, in bits. */
    double freshBudgetBits() const;

    /** Budget (bits) remaining after @p depth relinearized squarings. */
    double budgetAfterDepth(int depth) const;

    /** Largest depth with positive predicted budget. */
    int supportedDepth() const;

    // --- per-operation steps (log2 |v| in, log2 |v| out) ----------------

    /** log2 of the invariant noise of a fresh encryption. */
    double freshLogNoise() const;

    /** Budget (bits, clamped >= 0) for a given log2 invariant noise. */
    double budgetBits(double log_v) const;

    /** Ciphertext addition/subtraction: |v| <= |v1| + |v2|. */
    double addStep(double log_a, double log_b) const;

    /** Plaintext addition: adds the Delta-rounding term t n / q. */
    double addPlainStep(double log_v) const;

    /** Plaintext multiplication: |v| grows by a factor of n t. */
    double multiplyPlainStep(double log_v) const;

    /**
     * Tensor + scale (multiplication WITHOUT relinearization):
     * |v| ~ 2 n t (|v1| + |v2|) plus the t n / q rounding term. Apply
     * keySwitchStep afterwards for the relinearized product.
     */
    double multiplyStep(double log_a, double log_b) const;

    /**
     * Key-switch additive term: relinearization of a 3-element value,
     * or the switch-back of a Galois rotation (the keys are
     * structurally identical, so the bound is shared):
     * adds t n k 2^30 B / q over the k RNS digits.
     */
    double keySwitchStep(double log_v) const;

  private:
    /** log2 of the invariant noise after one mult given input log2. */
    double multStep(double log_v) const;

    std::shared_ptr<const FvParams> params_;
    double log_q_;
    double log_t_;
    double log_n_;
    double b_err_; // high-probability error bound, 6 sigma
};

} // namespace heat::fv

#endif // HEAT_FV_NOISE_H
