/**
 * @file
 * FV decryption and exact noise measurement.
 *
 * Decryption computes m = round(t * [c0 + c1 s (+ c2 s^2)]_q / q) mod t
 * per coefficient with exact BigInt arithmetic — decryption runs on the
 * client, not the accelerator, so the reproduction keeps it exact and
 * uses it as the ground truth for every homomorphic-correctness test.
 */

#ifndef HEAT_FV_DECRYPTOR_H
#define HEAT_FV_DECRYPTOR_H

#include <memory>

#include "fv/keys.h"
#include "fv/params.h"

namespace heat::fv {

/** Decrypts ciphertexts and measures their invariant noise budget. */
class Decryptor
{
  public:
    Decryptor(std::shared_ptr<const FvParams> params, SecretKey sk);

    /** Decrypt a size-2 or size-3 ciphertext. */
    Plaintext decrypt(const Ciphertext &ct) const;

    /**
     * Invariant noise budget in bits (SEAL convention): the budget is
     * -log2(2 |v|) where t/q * [c(s)]_q = m + v (mod t). Decryption
     * fails once the budget reaches zero.
     *
     * @return minimum budget over all coefficients, >= 0.
     */
    double invariantNoiseBudget(const Ciphertext &ct) const;

  private:
    /** [c0 + c1 s + c2 s^2]_q in coefficient form. */
    ntt::RnsPoly dotProductWithSecret(const Ciphertext &ct) const;

    std::shared_ptr<const FvParams> params_;
    SecretKey sk_;
};

} // namespace heat::fv

#endif // HEAT_FV_DECRYPTOR_H
