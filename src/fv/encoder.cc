#include "fv/encoder.h"

#include "common/panic.h"

namespace heat::fv {

IntegerEncoder::IntegerEncoder(std::shared_ptr<const FvParams> params,
                               uint64_t base)
    : params_(std::move(params)),
      base_(base == 0 ? params_->plainModulus() : base)
{
    fatalIf(base_ < 2, "encoder base must be at least 2");
    fatalIf(base_ > params_->plainModulus(),
            "encoder base cannot exceed the plain modulus");
}

Plaintext
IntegerEncoder::encode(int64_t value) const
{
    const uint64_t t = params_->plainModulus();
    const int64_t b = static_cast<int64_t>(base_);
    Plaintext plain;
    if (value == 0) {
        plain.coeffs.push_back(0);
        return plain;
    }
    int64_t v = value;
    while (v != 0) {
        // Balanced digit in (-b/2, b/2].
        int64_t d = v % b;
        if (d > b / 2)
            d -= b;
        else if (d <= -(b + 1) / 2)
            d += b;
        v = (v - d) / b;
        plain.coeffs.push_back(
            d < 0 ? t - static_cast<uint64_t>(-d) : static_cast<uint64_t>(d));
    }
    fatalIf(plain.coeffs.size() > params_->degree(),
            "integer too large for the ring degree");
    return plain;
}

mp::BigInt
IntegerEncoder::decode(const Plaintext &plain) const
{
    const uint64_t t = params_->plainModulus();
    const mp::BigInt b_big(static_cast<int64_t>(base_));
    // Horner evaluation at x = b over digits centered mod t.
    mp::BigInt acc;
    for (size_t j = plain.coeffs.size(); j-- > 0;) {
        uint64_t d = plain.coeffs[j] % t;
        int64_t centered = d > t / 2
                               ? static_cast<int64_t>(d) -
                                     static_cast<int64_t>(t)
                               : static_cast<int64_t>(d);
        acc = acc * b_big + mp::BigInt(centered);
    }
    return acc;
}

int64_t
IntegerEncoder::decodeInt64(const Plaintext &plain) const
{
    return decode(plain).toInt64();
}

} // namespace heat::fv
