/**
 * @file
 * SIMD batching: with a prime plaintext modulus t = 1 (mod 2n), the
 * plaintext ring R_t splits into n slots and one ciphertext carries n
 * independent values with slot-wise Add/Mult. The paper's applications
 * (encrypted search over 2^16 entries, smart-meter aggregation) are
 * natural consumers; this is the repo's extension beyond the paper's
 * binary-message configuration.
 *
 * Slot order is the NTT's native bit-reversed order — consistent between
 * encode and decode, which is all the slot-wise semantics requires.
 */

#ifndef HEAT_FV_BATCH_ENCODER_H
#define HEAT_FV_BATCH_ENCODER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "fv/keys.h"
#include "fv/params.h"
#include "ntt/ntt_tables.h"

namespace heat::fv {

/** Packs n plaintext slots into one polynomial (t prime, t = 1 mod 2n). */
class BatchEncoder
{
  public:
    /**
     * @param params parameter set whose plain modulus supports batching.
     */
    explicit BatchEncoder(std::shared_ptr<const FvParams> params);

    /** @return number of slots (= ring degree n). */
    size_t slotCount() const { return params_->degree(); }

    /** Encode up to n slot values (mod t) into a plaintext. */
    Plaintext encode(const std::vector<uint64_t> &slots) const;

    /** Decode a plaintext back to its n slot values. */
    std::vector<uint64_t> decode(const Plaintext &plain) const;

    /**
     * Slot permutation induced by the Galois automorphism tau_g:
     * decode(tau_g(m))[j] == decode(m)[perm[j]].
     */
    std::vector<size_t> slotPermutation(uint32_t galois_element) const;

  private:
    std::shared_ptr<const FvParams> params_;
    std::shared_ptr<const ntt::NttTables> tables_;
};

} // namespace heat::fv

#endif // HEAT_FV_BATCH_ENCODER_H
