/**
 * @file
 * Homomorphic evaluation: FV.Add and FV.Mult (Fig. 2 of the paper).
 *
 * FV.Mult pipeline:
 *   1. Lift q->Q of the four input polynomials (centered base extension),
 *   2. NTT + coefficient-wise tensor products + inverse NTT over R_Q,
 *   3. Scale Q->q of the three tensor polynomials (round(t x / q)),
 *   4. WordDecomp of c~2 + ReLin with the relinearization key.
 *
 * The evaluator runs either arithmetic path of Sec. IV-C/D:
 *   - ArithPath::kHps: the Halevi-Polyakov-Shoup small-integer datapath
 *     (what the faster coprocessor implements), or
 *   - ArithPath::kExactCrt: exact BigInt CRT reconstruction (the
 *     traditional multi-precision datapath and the test oracle).
 *
 * Both paths produce valid ciphertexts of the same plaintext; kHps may
 * differ from kExactCrt by +-1 in isolated coefficients (absorbed as
 * noise), exactly as the HPS paper argues.
 *
 * Thread safety: every entry point is const and the evaluator holds no
 * mutable state — one Evaluator may be shared by any number of threads
 * (the serving layer's workers and the differential tests rely on
 * this). All derived constants live in the immutable FvParams.
 */

#ifndef HEAT_FV_EVALUATOR_H
#define HEAT_FV_EVALUATOR_H

#include <memory>
#include <vector>

#include "fv/galois.h"
#include "fv/keys.h"
#include "fv/params.h"

namespace heat::fv {

/** Which Lift/Scale arithmetic the evaluator uses. */
enum class ArithPath
{
    kHps,      ///< approximate-CRT small-integer arithmetic (fast)
    kExactCrt, ///< exact BigInt CRT arithmetic (traditional baseline)
};

/** Computes on ciphertexts. */
class Evaluator
{
  public:
    explicit Evaluator(std::shared_ptr<const FvParams> params,
                       ArithPath path = ArithPath::kHps);

    /** @return the arithmetic path in use. */
    ArithPath path() const { return path_; }

    // --- linear operations ----------------------------------------------

    /** c = a + b (component-wise polynomial addition). */
    Ciphertext add(const Ciphertext &a, const Ciphertext &b) const;

    /** a += b. */
    void addInPlace(Ciphertext &a, const Ciphertext &b) const;

    /** c = a - b. */
    Ciphertext sub(const Ciphertext &a, const Ciphertext &b) const;

    /** a = -a. */
    void negateInPlace(Ciphertext &a) const;

    /** ct += Delta * plain (no noise added). */
    void addPlainInPlace(Ciphertext &ct, const Plaintext &plain) const;

    /** ct -= Delta * plain. */
    void subPlainInPlace(Ciphertext &ct, const Plaintext &plain) const;

    /** c = ct * plain, plaintext multiplication (cheap, no relin). */
    Ciphertext multiplyPlain(const Ciphertext &ct,
                             const Plaintext &plain) const;

    // --- multiplication ---------------------------------------------------

    /** Full tensor product: returns a 3-element ciphertext. */
    Ciphertext multiplyNoRelin(const Ciphertext &a,
                               const Ciphertext &b) const;

    /** Reduce a 3-element ciphertext back to 2 with @p rlk. */
    void relinearizeInPlace(Ciphertext &ct, const RelinKeys &rlk) const;

    /** multiplyNoRelin followed by relinearization. */
    Ciphertext multiply(const Ciphertext &a, const Ciphertext &b,
                        const RelinKeys &rlk) const;

    /** ct^2 with relinearization. */
    Ciphertext square(const Ciphertext &ct, const RelinKeys &rlk) const;

    // --- modulus switching ----------------------------------------------

    /**
     * Switch @p ct one level down the modulus chain: every polynomial
     * becomes round(c / q_last) over the basis with the last live prime
     * dropped (exact divide-and-round via rns::ScaleRounder with t = 1).
     * The plaintext is preserved; the invariant noise picks up only the
     * small rounding term t*n/(2 q') — see NoiseModel::modSwitchStep.
     * Works on 2- and 3-element ciphertexts. Requires
     * ct.level < params->maxLevel().
     */
    Ciphertext modSwitch(const Ciphertext &ct) const;

    /** In-place variant of modSwitch (one level down). */
    void modSwitchInPlace(Ciphertext &ct) const;

    /** Repeated modSwitch until @p level (>= ct.level) is reached. */
    Ciphertext modSwitchTo(const Ciphertext &ct, size_t level) const;

    /**
     * Divide-and-round one coefficient-form polynomial from the
     * @p from_level basis to the next level's (golden model of the
     * hardware kModSwitch instruction).
     */
    ntt::RnsPoly modSwitchPoly(const ntt::RnsPoly &poly,
                               size_t from_level) const;

    // --- Galois automorphisms and rotations -----------------------------

    /**
     * Apply tau_g (m(x) -> m(x^g)) to a 2-element ciphertext and
     * key-switch back to the original secret with @p gkeys. Element 1
     * (tau_1 = identity) returns the input unchanged — no key lookup
     * and no key-switch noise.
     */
    Ciphertext applyGalois(const Ciphertext &ct, uint32_t galois_element,
                           const GaloisKeys &gkeys) const;

    /**
     * Hoisted variant of applyGalois (Halevi-Shoup; HEAX uses the same
     * trick): decompose c1 into WordDecomp digits *before* permuting,
     * then apply tau_g to each digit and multiply-accumulate with the
     * Galois keys. Valid because sum_i tau_g(D_i(c1)) f_i =
     * tau_g(c1) — the digit reconstruction scalars f_i are fixed by
     * tau_g — so the key-switch identity holds with the same keys.
     * The result decrypts identically to applyGalois but is not
     * bit-identical to it (the digit vectors differ); it IS the golden
     * model of the hardware's hoisted rotation datapath, where the
     * decompose + forward NTT of the digits is shared by every
     * rotation of one ciphertext and each rotation only pays an
     * NTT-domain permutation per digit.
     */
    Ciphertext applyGaloisHoisted(const Ciphertext &ct,
                                  uint32_t galois_element,
                                  const GaloisKeys &gkeys) const;

    /** Rotate batched slots by @p steps (see BatchEncoder). Steps are
     *  normalized modulo the slot-row length (galois.h), so step 0 —
     *  and any multiple of the row length — is an identity copy that
     *  needs no Galois key. */
    Ciphertext rotateSlots(const Ciphertext &ct, int steps,
                           const GaloisKeys &gkeys) const;

    /** Swap the two slot "columns" (Galois element 2n - 1). */
    Ciphertext rotateColumns(const Ciphertext &ct,
                             const GaloisKeys &gkeys) const;

    /**
     * Sum across all n slots with log-many rotations: afterwards every
     * slot holds the sum. Needs keys from generateRotationKeys().
     */
    Ciphertext sumAllSlots(const Ciphertext &ct,
                           const GaloisKeys &gkeys) const;

    // --- plaintext encodings (public: the circuit compiler mirrors
    //     these when it lowers plain-operand nodes to the hardware) ----

    /** Delta_l * plain embedded in R_{q_l}, coefficient form — the
     *  polynomial added to c0 by addPlainInPlace (and by the hardware
     *  AddPlain schedule, which uploads it as a constant operand). */
    ntt::RnsPoly scaledPlain(const Plaintext &plain,
                             size_t level = 0) const;

    /** plain embedded unscaled in R_{q_l}, coefficient form — the
     *  NTT-domain multiplicand of multiplyPlain (and the hardware
     *  MultPlain schedule's constant operand). */
    ntt::RnsPoly embeddedPlain(const Plaintext &plain,
                               size_t level = 0) const;

    // --- FV.Mult building blocks (public: golden models for the HW) -----

    /** Lift q->Q: extend a coefficient-form q polynomial to the full
     *  base (centered representative). */
    ntt::RnsPoly liftToFull(const ntt::RnsPoly &q_poly) const;

    /** Scale Q->q: round(t x / q) of a coefficient-form full-base
     *  polynomial, result over the q base (includes the p->q switch). */
    ntt::RnsPoly scaleToQ(const ntt::RnsPoly &full_poly) const;

    /** WordDecomp (RNS flavour): one digit polynomial per q prime. */
    std::vector<ntt::RnsPoly> rnsDigits(const ntt::RnsPoly &poly) const;

    /** WordDecomp (positional flavour): base-2^bits digits. */
    std::vector<ntt::RnsPoly> positionalDigits(const ntt::RnsPoly &poly,
                                               int digit_bits) const;

  private:
    /** @return the level a q-base polynomial's residue count implies. */
    size_t levelOf(const ntt::RnsPoly &q_poly) const;

    /**
     * Level-l view of a level-0 key-switch key polynomial: the first
     * live residues, as a poly over the level's q base. Valid because
     * makeKeySwitchKeys builds the digit-reconstruction scalars f_i
     * residue-wise (CRT unit vectors / positional powers), so the
     * prefix of a level-0 key IS the level-l key — no per-level keygen.
     */
    ntt::RnsPoly keyPolyAtLevel(const ntt::RnsPoly &key_poly,
                                size_t level) const;

    /**
     * Key-switch MAC shared by relinearization and Galois switching:
     * acc(0|1) += sum_i NTT(digits[i]) * key_i, with the keys truncated
     * to @p level. Digits enter in coefficient form and are consumed.
     */
    void keySwitchAccumulate(std::vector<ntt::RnsPoly> &digits,
                             const RelinKeys &key, size_t level,
                             ntt::RnsPoly &acc0, ntt::RnsPoly &acc1) const;

    std::shared_ptr<const FvParams> params_;
    ArithPath path_;
};

} // namespace heat::fv

#endif // HEAT_FV_EVALUATOR_H
