/**
 * @file
 * Key generation for the FV scheme (Fig. 1 of the paper plus the
 * relinearization keys consumed by FV.Mult in Fig. 2).
 */

#ifndef HEAT_FV_KEYGEN_H
#define HEAT_FV_KEYGEN_H

#include <memory>

#include "fv/galois.h"
#include "fv/keys.h"
#include "fv/params.h"
#include "fv/sampler.h"

namespace heat::fv {

/** Generates FV key material deterministically from a seed. */
class KeyGenerator
{
  public:
    /**
     * @param params the parameter set.
     * @param seed PRNG seed for reproducible keys.
     */
    KeyGenerator(std::shared_ptr<const FvParams> params, uint64_t seed);

    /** Sample a fresh ternary secret key. */
    SecretKey generateSecretKey();

    /** Derive a public key (p0, p1) = (-(a s + e), a). */
    PublicKey generatePublicKey(const SecretKey &sk);

    /**
     * RNS-digit relinearization keys (the faster architecture):
     * rlk0_i = -(a_i s + e_i) + f_i s^2 where f_i has RNS residues
     * (0, ..., 1, ..., 0) — the CRT unit vector q~_i q*_i mod q.
     */
    RelinKeys generateRelinKeys(const SecretKey &sk);

    /**
     * Positional relinearization keys with digits of @p digit_bits bits
     * (the traditional architecture's 2-element key uses 90).
     */
    RelinKeys generatePositionalRelinKeys(const SecretKey &sk,
                                          int digit_bits = 90);

    /**
     * Galois keys for the given Galois elements (odd, < 2n). Each key
     * switches a ciphertext encrypted under s(x^g) back to s.
     */
    GaloisKeys generateGaloisKeys(const SecretKey &sk,
                                  const std::vector<uint32_t> &elements);

    /**
     * Galois keys for slot rotations by each power-of-two step up to
     * n/4 in both directions, plus the column-swap element 2n-1 —
     * enough to compose any rotation and to sum across all slots.
     */
    GaloisKeys generateRotationKeys(const SecretKey &sk);

  private:
    /** s^2 in NTT form over q. */
    ntt::RnsPoly squareSecret(const SecretKey &sk) const;

    /** Key-switching keys embedding @p target (NTT form) per digit. */
    RelinKeys makeKeySwitchKeys(const SecretKey &sk,
                                const ntt::RnsPoly &target_ntt);

    std::shared_ptr<const FvParams> params_;
    Sampler sampler_;
};

} // namespace heat::fv

#endif // HEAT_FV_KEYGEN_H
