/**
 * @file
 * FV encryption (Fig. 1): c0 = p0 u + e1 + Delta m, c1 = p1 u + e2
 * with u ternary and e1, e2 discrete Gaussian.
 */

#ifndef HEAT_FV_ENCRYPTOR_H
#define HEAT_FV_ENCRYPTOR_H

#include <memory>

#include "fv/keys.h"
#include "fv/params.h"
#include "fv/sampler.h"

namespace heat::fv {

/** Encrypts plaintexts under a public key. */
class Encryptor
{
  public:
    /**
     * @param params parameter set.
     * @param pk public key.
     * @param seed randomness seed.
     */
    Encryptor(std::shared_ptr<const FvParams> params, PublicKey pk,
              uint64_t seed);

    /** Encrypt @p plain (coefficients reduced mod t). */
    Ciphertext encrypt(const Plaintext &plain);

    /** Encrypt the zero polynomial. */
    Ciphertext encryptZero();

    /**
     * Embed a plaintext into R_q scaled by Delta, as a noiseless
     * "ciphertext half" (used for plaintext addition and tests).
     */
    ntt::RnsPoly scalePlainToQ(const Plaintext &plain) const;

  private:
    std::shared_ptr<const FvParams> params_;
    PublicKey pk_;
    Sampler sampler_;
};

} // namespace heat::fv

#endif // HEAT_FV_ENCRYPTOR_H
