/**
 * @file
 * Binary serialization for key material, plaintexts and ciphertexts.
 *
 * The paper's system moves ciphertexts between networked clients, the
 * Arm server and DDR (Sec. V-D, contiguous 32-bit residue words so DMA
 * bursts stay unbroken); this module provides the matching wire format:
 *
 *   [magic "HEAT"] [version u32] [params fingerprint u64] [payload]
 *
 * Residues are written as little-endian uint32 words (the 30-bit
 * residues of the paper's parameter sets fit one word; wider moduli are
 * rejected). Deserialization verifies magic, version and fingerprint so
 * mismatched parameter sets fail loudly rather than corrupting data.
 */

#ifndef HEAT_FV_SERIALIZE_H
#define HEAT_FV_SERIALIZE_H

#include <cstdint>
#include <iosfwd>

#include "fv/galois.h"
#include "fv/keys.h"
#include "fv/params.h"

namespace heat::fv {

/** @return a stable 64-bit fingerprint of a parameter set. */
uint64_t paramsFingerprint(const FvParams &params);

// --- ciphertexts and plaintexts -----------------------------------------

void savePlaintext(const Plaintext &plain, std::ostream &out);
Plaintext loadPlaintext(std::istream &in);

void saveCiphertext(const FvParams &params, const Ciphertext &ct,
                    std::ostream &out);
Ciphertext loadCiphertext(const std::shared_ptr<const FvParams> &params,
                          std::istream &in);

/** Serialized byte size of a ciphertext (header + residue words). */
size_t ciphertextByteSize(const FvParams &params, const Ciphertext &ct);

// --- keys -------------------------------------------------------------------

void saveSecretKey(const FvParams &params, const SecretKey &sk,
                   std::ostream &out);
SecretKey loadSecretKey(const std::shared_ptr<const FvParams> &params,
                        std::istream &in);

void savePublicKey(const FvParams &params, const PublicKey &pk,
                   std::ostream &out);
PublicKey loadPublicKey(const std::shared_ptr<const FvParams> &params,
                        std::istream &in);

void saveRelinKeys(const FvParams &params, const RelinKeys &rlk,
                   std::ostream &out);
RelinKeys loadRelinKeys(const std::shared_ptr<const FvParams> &params,
                        std::istream &in);

void saveGaloisKeys(const FvParams &params, const GaloisKeys &gkeys,
                    std::ostream &out);
GaloisKeys loadGaloisKeys(const std::shared_ptr<const FvParams> &params,
                          std::istream &in);

} // namespace heat::fv

#endif // HEAT_FV_SERIALIZE_H
