/**
 * @file
 * FV key material: secret key, public key, relinearization keys, and the
 * plaintext/ciphertext containers.
 *
 * Two relinearization key flavours exist, matching the paper's two
 * coprocessor architectures (Sec. VI-C):
 *
 *  - kRnsDigits: one key pair per q-base prime (6 for the paper set).
 *    The WordDecomp digit for prime i is simply the i-th residue
 *    polynomial broadcast to every channel — the "cheap bit-level
 *    manipulation" enabled by the HPS datapath.
 *  - kPositional: base-2^90 positional digits (2 keys — the "three times
 *    smaller relinearization key" of the slower traditional-CRT
 *    architecture, which materializes positional coefficients anyway).
 */

#ifndef HEAT_FV_KEYS_H
#define HEAT_FV_KEYS_H

#include <array>
#include <cstdint>
#include <vector>

#include "ntt/rns_poly.h"

namespace heat::fv {

/** A plaintext polynomial: coefficients modulo t, degree < n. */
struct Plaintext
{
    std::vector<uint64_t> coeffs;

    Plaintext() = default;
    explicit Plaintext(std::vector<uint64_t> c) : coeffs(std::move(c)) {}

    bool operator==(const Plaintext &o) const = default;
};

/** A ciphertext: 2 polynomials over R_q (3 before relinearization). */
struct Ciphertext
{
    std::vector<ntt::RnsPoly> polys;
    /**
     * Modulus-switching level: the polys live over the first
     * qPrimeCount(level) primes of the parameter set's q base. Fresh
     * encryptions are level 0; every fv::Evaluator::modSwitch moves one
     * level down. Operands of binary evaluator ops must agree.
     */
    size_t level = 0;

    size_t size() const { return polys.size(); }
    ntt::RnsPoly &operator[](size_t i) { return polys[i]; }
    const ntt::RnsPoly &operator[](size_t i) const { return polys[i]; }

    bool operator==(const Ciphertext &o) const = default;
};

/** Secret key: ternary s, stored in NTT form over the q base. */
struct SecretKey
{
    ntt::RnsPoly s_ntt;
};

/** Public key (p0, p1) = (-(a s + e), a), stored in NTT form. */
struct PublicKey
{
    ntt::RnsPoly p0_ntt;
    ntt::RnsPoly p1_ntt;
};

/** How ciphertext digits are decomposed for relinearization. */
enum class DecompKind
{
    kRnsDigits,  ///< one digit per RNS prime (HPS architecture)
    kPositional, ///< base-2^w positional digits (traditional architecture)
};

/** Relinearization keys: rlk_i = (-(a_i s + e_i) + f_i s^2, a_i). */
struct RelinKeys
{
    DecompKind kind = DecompKind::kRnsDigits;
    /** Digit width in bits for kPositional (ignored for kRnsDigits). */
    int digit_bits = 0;
    /** keys[i] = {rlk0_i, rlk1_i}, both in NTT form over q. */
    std::vector<std::array<ntt::RnsPoly, 2>> keys;

    size_t digitCount() const { return keys.size(); }

    /** Serialized size in bytes (30-bit residues in 32-bit words). */
    size_t byteSize() const;

    /**
     * Content hash (FNV-1a over kind, digit layout and every residue
     * word) identifying this key set. The serving layer uses it as a
     * session key-set identity: a worker whose coprocessor holds keys
     * with a different fingerprint must re-attach before executing, and
     * cached ciphertexts keyed by fingerprint never survive a key swap.
     */
    uint64_t fingerprint() const;
};

} // namespace heat::fv

#endif // HEAT_FV_KEYS_H
