#include "fv/decryptor.h"

#include <algorithm>
#include <cmath>

#include "common/panic.h"

namespace heat::fv {

Decryptor::Decryptor(std::shared_ptr<const FvParams> params, SecretKey sk)
    : params_(std::move(params)), sk_(std::move(sk))
{
}

ntt::RnsPoly
Decryptor::dotProductWithSecret(const Ciphertext &ct) const
{
    fatalIf(ct.size() < 2 || ct.size() > 3,
            "decryptor supports 2- and 3-element ciphertexts");
    fatalIf(ct.level > params_->maxLevel(), "ciphertext level out of range");
    fatalIf(ct[0].residueCount() != params_->qPrimeCount(ct.level),
            "ciphertext residue count does not match its level");
    const auto &ctx = params_->qContext(ct.level);

    // The secret key is stored NTT-form over the level-0 base; its
    // level-l view is the residue prefix (the NTT acts residue-wise).
    ntt::RnsPoly s_ntt = sk_.s_ntt;
    if (ct.level > 0) {
        const auto &base = params_->qBase(ct.level);
        ntt::RnsPoly trunc(base, params_->degree(), ntt::PolyForm::kNtt);
        for (size_t i = 0; i < base->size(); ++i) {
            auto src = sk_.s_ntt.residue(i);
            auto dst = trunc.residue(i);
            std::copy(src.begin(), src.end(), dst.begin());
        }
        s_ntt = std::move(trunc);
    }

    // acc = c1 * s (+ c2 * s^2), evaluated in the NTT domain.
    ntt::RnsPoly c1 = ct[1];
    c1.toNtt(ctx);
    c1.mulPointwiseInPlace(s_ntt);
    if (ct.size() == 3) {
        ntt::RnsPoly c2 = ct[2];
        c2.toNtt(ctx);
        c2.mulPointwiseInPlace(s_ntt);
        c2.mulPointwiseInPlace(s_ntt);
        c1.addInPlace(c2);
    }
    c1.toCoeff(ctx);
    c1.addInPlace(ct[0]);
    return c1;
}

Plaintext
Decryptor::decrypt(const Ciphertext &ct) const
{
    const ntt::RnsPoly x = dotProductWithSecret(ct);
    const mp::BigInt &q = params_->qBase(ct.level)->product();
    const mp::BigInt t(static_cast<int64_t>(params_->plainModulus()));
    const mp::BigInt t_q = t * q;

    Plaintext plain;
    plain.coeffs.resize(params_->degree());
    for (size_t j = 0; j < params_->degree(); ++j) {
        // m_j = round(t * x_c / q) mod t with round-half-up on the
        // centered representative.
        mp::BigInt x_c = x.coefficientCentered(j);
        mp::BigInt numer = t * x_c * mp::BigInt(2) + q;
        mp::BigInt rem;
        mp::BigInt m = numer.divMod(q * mp::BigInt(2), rem);
        if (rem.isNegative())
            m -= mp::BigInt(1);
        plain.coeffs[j] = m.mod(t).toUint64();
    }
    // Trim trailing zero coefficients for convenience.
    while (plain.coeffs.size() > 1 && plain.coeffs.back() == 0)
        plain.coeffs.pop_back();
    return plain;
}

double
Decryptor::invariantNoiseBudget(const Ciphertext &ct) const
{
    const ntt::RnsPoly x = dotProductWithSecret(ct);
    const mp::BigInt &q = params_->qBase(ct.level)->product();
    const mp::BigInt t(static_cast<int64_t>(params_->plainModulus()));

    // Invariant noise: v_j = (t x_j - q round(t x_j / q)) / q in
    // [-1/2, 1/2]; budget = -log2(2 max |v_j|).
    mp::BigInt max_err;
    for (size_t j = 0; j < params_->degree(); ++j) {
        mp::BigInt tx = t * x.coefficientCentered(j);
        mp::BigInt numer = tx * mp::BigInt(2) + q;
        mp::BigInt rem;
        mp::BigInt m = numer.divMod(q * mp::BigInt(2), rem);
        if (rem.isNegative())
            m -= mp::BigInt(1);
        mp::BigInt err = (tx - m * q).abs();
        if (err > max_err)
            max_err = err;
    }
    if (max_err.isZero())
        return static_cast<double>(q.bitLength() - 1);
    // budget = log2(q) - log2(|e|) - 1, computed via bit lengths with a
    // fractional correction from the top limbs.
    auto log2_big = [](const mp::BigInt &v) {
        const int bits = v.bitLength();
        if (bits <= 52)
            return std::log2(v.toDouble());
        return static_cast<double>(bits) +
               std::log2((v >> (bits - 52)).toDouble()) - 52.0;
    };
    return std::max(0.0, log2_big(q) - log2_big(max_err) - 1.0);
}

} // namespace heat::fv
