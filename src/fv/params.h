/**
 * @file
 * FV parameter sets and derived constants.
 *
 * The paper's parameter set (Sec. III-A/B): n = 4096, q = product of six
 * 30-bit NTT-friendly primes (180 bits), extended base Q = q * p with p a
 * product of seven more 30-bit primes (390 bits), discrete Gaussian with
 * sigma = 102, plaintext modulus t (2 for binary messages), multiplicative
 * depth 4, at least 80-bit security.
 *
 * FvParams owns every derived object the scheme and the hardware model
 * need: RNS bases, NTT contexts, base converters, the HPS scaler and the
 * Delta = floor(q/t) encryption constant.
 */

#ifndef HEAT_FV_PARAMS_H
#define HEAT_FV_PARAMS_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "mp/bigint.h"
#include "ntt/ntt_tables.h"
#include "rns/base_convert.h"
#include "rns/rns_base.h"
#include "rns/scale_round.h"

namespace heat::fv {

/** User-facing knobs of an FV parameter set. */
struct FvConfig
{
    /** Polynomial degree n (power of two). */
    size_t degree = 4096;
    /** Plaintext modulus t. */
    uint64_t plain_modulus = 2;
    /** Discrete Gaussian standard deviation. */
    double sigma = 102.0;
    /** Number of primes in the ciphertext base q. */
    size_t q_prime_count = 6;
    /**
     * Number of primes in the auxiliary base p; 0 selects the smallest
     * count with p > 2^15 * n * q * t (safe for the tensor scaling).
     */
    size_t p_prime_count = 0;
    /** Width of each RNS prime in bits. */
    int prime_bits = 30;
};

/** Immutable FV parameter set with all derived constants. */
class FvParams
{
  public:
    /** Build a parameter set from @p config. */
    static std::shared_ptr<const FvParams> create(const FvConfig &config);

    /**
     * The paper's parameter set: (n, log q) = (4096, 180), sigma = 102.
     *
     * @param t plaintext modulus (paper uses 2 for binary messages).
     */
    static std::shared_ptr<const FvParams> paper(uint64_t t = 2);

    /**
     * Parameter set for row @p row of Table V: row 0 is the paper set,
     * each following row doubles n and the bit size of q.
     */
    static std::shared_ptr<const FvParams> tableV(int row, uint64_t t = 2);

    // --- basic accessors -------------------------------------------------

    size_t degree() const { return config_.degree; }
    uint64_t plainModulus() const { return config_.plain_modulus; }
    double sigma() const { return config_.sigma; }
    const FvConfig &config() const { return config_; }

    // --- modulus-switching levels ----------------------------------------
    //
    // Level l of the chain keeps the FIRST q_prime_count - l primes of
    // the level-0 ciphertext base (a prefix, so residue index i always
    // refers to the same prime at every level). Level 0 is the full base
    // the parameter set was built with; each mod-switch drops the last
    // live prime. All level accessors take a defaulted level argument so
    // level-unaware call sites keep compiling unchanged. Per-level data
    // is built lazily (thread-safe) and NTT twiddle tables are shared
    // with level 0, so deep chains cost no extra ROM.

    /** @return the deepest usable level (one q prime left). */
    size_t maxLevel() const { return config_.q_prime_count - 1; }

    /** @return number of live q primes at @p level. */
    size_t qPrimeCount(size_t level = 0) const
    {
        return config_.q_prime_count - level;
    }

    /** @return ciphertext base q at @p level (prefix of level 0's). */
    const std::shared_ptr<const rns::RnsBase> &qBase(size_t level = 0) const;

    /** @return auxiliary base p (level-independent). */
    const std::shared_ptr<const rns::RnsBase> &pBase() const { return p_; }

    /** @return full base Q_l = q_l * p (live q primes first). */
    const std::shared_ptr<const rns::RnsBase> &fullBase(
        size_t level = 0) const;

    /** @return NTT context over the level's q base. */
    const ntt::NttContext &qContext(size_t level = 0) const;

    /** @return NTT context over the level's full base. */
    const ntt::NttContext &fullContext(size_t level = 0) const;

    /** @return the q_l -> p base converter (Lift q->Q, HPS). */
    const rns::FastBaseConverter &liftConverter(size_t level = 0) const;

    /** @return the p -> q_l base converter (Scale's final base switch). */
    const rns::FastBaseConverter &scaleBackConverter(size_t level = 0) const;

    /** @return the HPS scale-and-round engine for the level. */
    const rns::ScaleRounder &scaler(size_t level = 0) const;

    /**
     * @return the divide-and-round engine for mod-switching OUT of
     * @p from_level: round(x / q_last) from the level's basis into the
     * level+1 basis (a ScaleRounder with q = {dropped prime},
     * p = remaining primes, t = 1). Requires from_level < maxLevel().
     */
    const rns::ScaleRounder &modSwitchRounder(size_t from_level) const;

    /** @return Delta_l = floor(q_l / t). */
    const mp::BigInt &delta(size_t level = 0) const;

    /** @return Delta_l mod q_i for each live q prime. */
    const std::vector<uint64_t> &deltaResidues(size_t level = 0) const;

    /** @return number of RNS relinearization digits (= live q primes). */
    size_t rnsDigitCount(size_t level = 0) const
    {
        return q_->size() - level;
    }

    /** @return log2 of q_l, rounded up to whole bits. */
    int qBits(size_t level = 0) const
    {
        return qBase(level)->product().bitLength();
    }

    /**
     * Map a residue count to the ciphertext level it implies, for
     * records whose base is either q_l (count = live q primes) or the
     * full base Q_l (count = live q primes + p primes). Counts are
     * unambiguous: q counts are 1..q_prime_count, full counts start at
     * q_prime_count + 1 because p has more primes than q drops.
     */
    size_t levelForResidueCount(size_t residues) const;

    /**
     * Rough security estimate in bits for (n, log q) using the
     * conservative rule of thumb lambda ~ 7.2 * n / log2(q) - 110 fitted
     * to the LWE-estimator values the paper cites (>= 80 bits for the
     * paper set). Indicative only.
     */
    double estimatedSecurityBits() const;

  private:
    explicit FvParams(const FvConfig &config);

    /** Everything level-dependent, built lazily per level >= 1. */
    struct LevelData
    {
        std::shared_ptr<const rns::RnsBase> q;
        std::shared_ptr<const rns::RnsBase> full;
        ntt::NttContext q_context;
        ntt::NttContext full_context;
        rns::FastBaseConverter lift;
        rns::FastBaseConverter scale_back;
        rns::ScaleRounder scaler;
        /** round(x / dropped prime) engine for the switch INTO here. */
        rns::ScaleRounder mod_switch_in;
        mp::BigInt delta;
        std::vector<uint64_t> delta_residues;
    };

    /** @return level data for @p level >= 1, building it if needed. */
    const LevelData &levelData(size_t level) const;

    FvConfig config_;
    std::shared_ptr<const rns::RnsBase> q_;
    std::shared_ptr<const rns::RnsBase> p_;
    std::shared_ptr<const rns::RnsBase> full_;
    ntt::NttContext q_context_;
    ntt::NttContext full_context_;
    rns::FastBaseConverter lift_;
    rns::FastBaseConverter scale_back_;
    rns::ScaleRounder scaler_;
    mp::BigInt delta_;
    std::vector<uint64_t> delta_residues_;
    mutable std::mutex level_mu_;
    /** levels_[l] for l >= 1; index 0 unused (level 0 is the above). */
    mutable std::vector<std::unique_ptr<const LevelData>> levels_;
};

} // namespace heat::fv

#endif // HEAT_FV_PARAMS_H
