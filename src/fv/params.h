/**
 * @file
 * FV parameter sets and derived constants.
 *
 * The paper's parameter set (Sec. III-A/B): n = 4096, q = product of six
 * 30-bit NTT-friendly primes (180 bits), extended base Q = q * p with p a
 * product of seven more 30-bit primes (390 bits), discrete Gaussian with
 * sigma = 102, plaintext modulus t (2 for binary messages), multiplicative
 * depth 4, at least 80-bit security.
 *
 * FvParams owns every derived object the scheme and the hardware model
 * need: RNS bases, NTT contexts, base converters, the HPS scaler and the
 * Delta = floor(q/t) encryption constant.
 */

#ifndef HEAT_FV_PARAMS_H
#define HEAT_FV_PARAMS_H

#include <cstdint>
#include <memory>
#include <vector>

#include "mp/bigint.h"
#include "ntt/ntt_tables.h"
#include "rns/base_convert.h"
#include "rns/rns_base.h"
#include "rns/scale_round.h"

namespace heat::fv {

/** User-facing knobs of an FV parameter set. */
struct FvConfig
{
    /** Polynomial degree n (power of two). */
    size_t degree = 4096;
    /** Plaintext modulus t. */
    uint64_t plain_modulus = 2;
    /** Discrete Gaussian standard deviation. */
    double sigma = 102.0;
    /** Number of primes in the ciphertext base q. */
    size_t q_prime_count = 6;
    /**
     * Number of primes in the auxiliary base p; 0 selects the smallest
     * count with p > 2^15 * n * q * t (safe for the tensor scaling).
     */
    size_t p_prime_count = 0;
    /** Width of each RNS prime in bits. */
    int prime_bits = 30;
};

/** Immutable FV parameter set with all derived constants. */
class FvParams
{
  public:
    /** Build a parameter set from @p config. */
    static std::shared_ptr<const FvParams> create(const FvConfig &config);

    /**
     * The paper's parameter set: (n, log q) = (4096, 180), sigma = 102.
     *
     * @param t plaintext modulus (paper uses 2 for binary messages).
     */
    static std::shared_ptr<const FvParams> paper(uint64_t t = 2);

    /**
     * Parameter set for row @p row of Table V: row 0 is the paper set,
     * each following row doubles n and the bit size of q.
     */
    static std::shared_ptr<const FvParams> tableV(int row, uint64_t t = 2);

    // --- basic accessors -------------------------------------------------

    size_t degree() const { return config_.degree; }
    uint64_t plainModulus() const { return config_.plain_modulus; }
    double sigma() const { return config_.sigma; }
    const FvConfig &config() const { return config_; }

    /** @return ciphertext base q (the first q_prime_count primes). */
    const std::shared_ptr<const rns::RnsBase> &qBase() const { return q_; }

    /** @return auxiliary base p. */
    const std::shared_ptr<const rns::RnsBase> &pBase() const { return p_; }

    /** @return full base Q = q * p (q primes first). */
    const std::shared_ptr<const rns::RnsBase> &fullBase() const
    {
        return full_;
    }

    /** @return NTT context over the q base. */
    const ntt::NttContext &qContext() const { return q_context_; }

    /** @return NTT context over the full base. */
    const ntt::NttContext &fullContext() const { return full_context_; }

    /** @return the q -> p base converter (Lift q->Q, HPS). */
    const rns::FastBaseConverter &liftConverter() const { return lift_; }

    /** @return the p -> q base converter (Scale's final base switch). */
    const rns::FastBaseConverter &scaleBackConverter() const
    {
        return scale_back_;
    }

    /** @return the HPS scale-and-round engine. */
    const rns::ScaleRounder &scaler() const { return scaler_; }

    /** @return Delta = floor(q / t). */
    const mp::BigInt &delta() const { return delta_; }

    /** @return Delta mod q_i for each q-base prime. */
    const std::vector<uint64_t> &deltaResidues() const
    {
        return delta_residues_;
    }

    /** @return number of RNS relinearization digits (= q primes). */
    size_t rnsDigitCount() const { return q_->size(); }

    /** @return log2 of q, rounded up to whole bits. */
    int qBits() const { return q_->product().bitLength(); }

    /**
     * Rough security estimate in bits for (n, log q) using the
     * conservative rule of thumb lambda ~ 7.2 * n / log2(q) - 110 fitted
     * to the LWE-estimator values the paper cites (>= 80 bits for the
     * paper set). Indicative only.
     */
    double estimatedSecurityBits() const;

  private:
    explicit FvParams(const FvConfig &config);

    FvConfig config_;
    std::shared_ptr<const rns::RnsBase> q_;
    std::shared_ptr<const rns::RnsBase> p_;
    std::shared_ptr<const rns::RnsBase> full_;
    ntt::NttContext q_context_;
    ntt::NttContext full_context_;
    rns::FastBaseConverter lift_;
    rns::FastBaseConverter scale_back_;
    rns::ScaleRounder scaler_;
    mp::BigInt delta_;
    std::vector<uint64_t> delta_residues_;
};

} // namespace heat::fv

#endif // HEAT_FV_PARAMS_H
