#include "fv/params.h"

#include <cmath>

#include "common/bit_util.h"
#include "common/panic.h"
#include "rns/prime_gen.h"

namespace heat::fv {

namespace {

size_t
defaultPPrimeCount(const FvConfig &config)
{
    // Need p > 2^15 * n * q * t so the scaled tensor coefficient
    // round(t * x / q), |x| <= n * (q/2)^2, fits centered in p with
    // margin. In bits: log2(p) >= log2(n) + log2(q) + log2(t) + 15.
    const int needed_bits = log2Floor(config.degree) +
                            static_cast<int>(config.q_prime_count) *
                                config.prime_bits +
                            bitLength(config.plain_modulus) + 15;
    return (static_cast<size_t>(needed_bits) + config.prime_bits - 1) /
           config.prime_bits;
}

} // namespace

FvParams::FvParams(const FvConfig &config) : config_(config)
{
    fatalIf(!isPowerOfTwo(config.degree), "degree must be a power of two");
    fatalIf(config.q_prime_count == 0, "need at least one q prime");
    fatalIf(config.plain_modulus < 2, "plaintext modulus must be >= 2");

    if (config_.p_prime_count == 0)
        config_.p_prime_count = defaultPPrimeCount(config_);

    const size_t total = config_.q_prime_count + config_.p_prime_count;
    std::vector<uint64_t> primes = rns::generateNttPrimes(
        config_.prime_bits, config_.degree, total);

    std::vector<uint64_t> q_primes(primes.begin(),
                                   primes.begin() + config_.q_prime_count);
    std::vector<uint64_t> p_primes(primes.begin() + config_.q_prime_count,
                                   primes.end());

    q_ = std::make_shared<const rns::RnsBase>(q_primes);
    p_ = std::make_shared<const rns::RnsBase>(p_primes);
    full_ = std::make_shared<const rns::RnsBase>(
        rns::RnsBase::concat(*q_, *p_));

    q_context_ = ntt::NttContext(*q_, config_.degree);
    full_context_ = ntt::NttContext(*full_, config_.degree);

    lift_ = rns::FastBaseConverter(*q_, *p_);
    scale_back_ = rns::FastBaseConverter(*p_, *q_);
    scaler_ = rns::ScaleRounder(*q_, *p_, config_.plain_modulus);

    delta_ = q_->product() /
             mp::BigInt::fromUint64(config_.plain_modulus);
    delta_residues_.resize(q_->size());
    for (size_t i = 0; i < q_->size(); ++i)
        delta_residues_[i] = delta_.modUint64(q_->modulus(i).value());

    levels_.resize(config_.q_prime_count);
}

const FvParams::LevelData &
FvParams::levelData(size_t level) const
{
    fatalIf(level == 0 || level > maxLevel(),
            "FV level out of range for this parameter set");
    std::lock_guard<std::mutex> lock(level_mu_);
    if (!levels_[level]) {
        const size_t live = config_.q_prime_count - level;
        auto data = std::make_unique<LevelData>();

        std::vector<uint64_t> live_primes(live);
        for (size_t i = 0; i < live; ++i)
            live_primes[i] = q_->modulus(i).value();
        data->q = std::make_shared<const rns::RnsBase>(live_primes);
        data->full = std::make_shared<const rns::RnsBase>(
            rns::RnsBase::concat(*data->q, *p_));

        // Reuse level 0's twiddle ROMs: the live q primes are a prefix
        // of the level-0 q base and the p primes sit after ALL level-0
        // q primes in the full context.
        std::vector<size_t> q_indices(live);
        for (size_t i = 0; i < live; ++i)
            q_indices[i] = i;
        data->q_context = ntt::NttContext::select(q_context_, q_indices);
        std::vector<size_t> full_indices(q_indices);
        for (size_t i = 0; i < p_->size(); ++i)
            full_indices.push_back(config_.q_prime_count + i);
        data->full_context =
            ntt::NttContext::select(full_context_, full_indices);

        data->lift = rns::FastBaseConverter(*data->q, *p_);
        data->scale_back = rns::FastBaseConverter(*p_, *data->q);
        data->scaler =
            rns::ScaleRounder(*data->q, *p_, config_.plain_modulus);

        // The switch INTO this level divides by the prime the source
        // level drops (the last prime live one level up): t = 1 turns
        // ScaleRounder into plain divide-and-round by that prime.
        const rns::RnsBase dropped({q_->modulus(live).value()});
        data->mod_switch_in = rns::ScaleRounder(dropped, *data->q, 1);

        data->delta = data->q->product() /
                      mp::BigInt::fromUint64(config_.plain_modulus);
        data->delta_residues.resize(live);
        for (size_t i = 0; i < live; ++i)
            data->delta_residues[i] =
                data->delta.modUint64(data->q->modulus(i).value());

        levels_[level] = std::move(data);
    }
    return *levels_[level];
}

const std::shared_ptr<const rns::RnsBase> &
FvParams::qBase(size_t level) const
{
    return level == 0 ? q_ : levelData(level).q;
}

const std::shared_ptr<const rns::RnsBase> &
FvParams::fullBase(size_t level) const
{
    return level == 0 ? full_ : levelData(level).full;
}

const ntt::NttContext &
FvParams::qContext(size_t level) const
{
    return level == 0 ? q_context_ : levelData(level).q_context;
}

const ntt::NttContext &
FvParams::fullContext(size_t level) const
{
    return level == 0 ? full_context_ : levelData(level).full_context;
}

const rns::FastBaseConverter &
FvParams::liftConverter(size_t level) const
{
    return level == 0 ? lift_ : levelData(level).lift;
}

const rns::FastBaseConverter &
FvParams::scaleBackConverter(size_t level) const
{
    return level == 0 ? scale_back_ : levelData(level).scale_back;
}

const rns::ScaleRounder &
FvParams::scaler(size_t level) const
{
    return level == 0 ? scaler_ : levelData(level).scaler;
}

const rns::ScaleRounder &
FvParams::modSwitchRounder(size_t from_level) const
{
    fatalIf(from_level >= maxLevel(),
            "cannot mod-switch past the last level");
    return levelData(from_level + 1).mod_switch_in;
}

const mp::BigInt &
FvParams::delta(size_t level) const
{
    return level == 0 ? delta_ : levelData(level).delta;
}

const std::vector<uint64_t> &
FvParams::deltaResidues(size_t level) const
{
    return level == 0 ? delta_residues_ : levelData(level).delta_residues;
}

size_t
FvParams::levelForResidueCount(size_t residues) const
{
    const size_t kq = config_.q_prime_count;
    const size_t kp = config_.p_prime_count;
    if (residues >= 1 && residues <= kq)
        return kq - residues;
    fatalIf(residues <= kp || residues > kq + kp,
            "residue count matches no level's q or full base");
    return kq + kp - residues;
}

std::shared_ptr<const FvParams>
FvParams::create(const FvConfig &config)
{
    return std::shared_ptr<const FvParams>(new FvParams(config));
}

std::shared_ptr<const FvParams>
FvParams::paper(uint64_t t)
{
    FvConfig config;
    config.degree = 4096;
    config.plain_modulus = t;
    config.sigma = 102.0;
    config.q_prime_count = 6;
    config.p_prime_count = 7;
    return create(config);
}

std::shared_ptr<const FvParams>
FvParams::tableV(int row, uint64_t t)
{
    fatalIf(row < 0 || row > 3, "Table V has rows 0..3");
    FvConfig config;
    config.degree = size_t(4096) << row;
    config.plain_modulus = t;
    config.sigma = 102.0;
    config.q_prime_count = size_t(6) << row;
    config.p_prime_count = 0; // derive
    return create(config);
}

double
FvParams::estimatedSecurityBits() const
{
    // Fitted to the lwe-estimator operating points the paper cites:
    // (n=4096, log q=180) ~ 80+ bits. Indicative, not a security claim.
    const double n = static_cast<double>(config_.degree);
    const double logq = static_cast<double>(qBits());
    return 7.2 * n / logq - 110.0;
}

} // namespace heat::fv
