#include "fv/params.h"

#include <cmath>

#include "common/bit_util.h"
#include "common/panic.h"
#include "rns/prime_gen.h"

namespace heat::fv {

namespace {

size_t
defaultPPrimeCount(const FvConfig &config)
{
    // Need p > 2^15 * n * q * t so the scaled tensor coefficient
    // round(t * x / q), |x| <= n * (q/2)^2, fits centered in p with
    // margin. In bits: log2(p) >= log2(n) + log2(q) + log2(t) + 15.
    const int needed_bits = log2Floor(config.degree) +
                            static_cast<int>(config.q_prime_count) *
                                config.prime_bits +
                            bitLength(config.plain_modulus) + 15;
    return (static_cast<size_t>(needed_bits) + config.prime_bits - 1) /
           config.prime_bits;
}

} // namespace

FvParams::FvParams(const FvConfig &config) : config_(config)
{
    fatalIf(!isPowerOfTwo(config.degree), "degree must be a power of two");
    fatalIf(config.q_prime_count == 0, "need at least one q prime");
    fatalIf(config.plain_modulus < 2, "plaintext modulus must be >= 2");

    if (config_.p_prime_count == 0)
        config_.p_prime_count = defaultPPrimeCount(config_);

    const size_t total = config_.q_prime_count + config_.p_prime_count;
    std::vector<uint64_t> primes = rns::generateNttPrimes(
        config_.prime_bits, config_.degree, total);

    std::vector<uint64_t> q_primes(primes.begin(),
                                   primes.begin() + config_.q_prime_count);
    std::vector<uint64_t> p_primes(primes.begin() + config_.q_prime_count,
                                   primes.end());

    q_ = std::make_shared<const rns::RnsBase>(q_primes);
    p_ = std::make_shared<const rns::RnsBase>(p_primes);
    full_ = std::make_shared<const rns::RnsBase>(
        rns::RnsBase::concat(*q_, *p_));

    q_context_ = ntt::NttContext(*q_, config_.degree);
    full_context_ = ntt::NttContext(*full_, config_.degree);

    lift_ = rns::FastBaseConverter(*q_, *p_);
    scale_back_ = rns::FastBaseConverter(*p_, *q_);
    scaler_ = rns::ScaleRounder(*q_, *p_, config_.plain_modulus);

    delta_ = q_->product() /
             mp::BigInt::fromUint64(config_.plain_modulus);
    delta_residues_.resize(q_->size());
    for (size_t i = 0; i < q_->size(); ++i)
        delta_residues_[i] = delta_.modUint64(q_->modulus(i).value());
}

std::shared_ptr<const FvParams>
FvParams::create(const FvConfig &config)
{
    return std::shared_ptr<const FvParams>(new FvParams(config));
}

std::shared_ptr<const FvParams>
FvParams::paper(uint64_t t)
{
    FvConfig config;
    config.degree = 4096;
    config.plain_modulus = t;
    config.sigma = 102.0;
    config.q_prime_count = 6;
    config.p_prime_count = 7;
    return create(config);
}

std::shared_ptr<const FvParams>
FvParams::tableV(int row, uint64_t t)
{
    fatalIf(row < 0 || row > 3, "Table V has rows 0..3");
    FvConfig config;
    config.degree = size_t(4096) << row;
    config.plain_modulus = t;
    config.sigma = 102.0;
    config.q_prime_count = size_t(6) << row;
    config.p_prime_count = 0; // derive
    return create(config);
}

double
FvParams::estimatedSecurityBits() const
{
    // Fitted to the lwe-estimator operating points the paper cites:
    // (n=4096, log q=180) ~ 80+ bits. Indicative, not a security claim.
    const double n = static_cast<double>(config_.degree);
    const double logq = static_cast<double>(qBits());
    return 7.2 * n / logq - 110.0;
}

} // namespace heat::fv
