#include "fv/serialize.h"

#include <istream>
#include <ostream>

#include "common/panic.h"

namespace heat::fv {

namespace {

constexpr uint32_t kMagic = 0x54414548; // "HEAT" little-endian
// Version 2 adds the ciphertext level field (one u32 before the part
// count). Version-1 streams are still accepted and load at level 0.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMinVersion = 1;

enum class PayloadKind : uint32_t
{
    kPlaintext = 1,
    kCiphertext = 2,
    kSecretKey = 3,
    kPublicKey = 4,
    kRelinKeys = 5,
    kGaloisKeys = 6,
};

void
writeU32(std::ostream &out, uint32_t v)
{
    unsigned char bytes[4];
    for (int i = 0; i < 4; ++i)
        bytes[i] = static_cast<unsigned char>(v >> (8 * i));
    out.write(reinterpret_cast<const char *>(bytes), 4);
}

void
writeU64(std::ostream &out, uint64_t v)
{
    writeU32(out, static_cast<uint32_t>(v));
    writeU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t
readU32(std::istream &in)
{
    unsigned char bytes[4];
    in.read(reinterpret_cast<char *>(bytes), 4);
    fatalIf(!in, "unexpected end of stream");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(bytes[i]) << (8 * i);
    return v;
}

uint64_t
readU64(std::istream &in)
{
    uint64_t lo = readU32(in);
    uint64_t hi = readU32(in);
    return lo | (hi << 32);
}

void
writeHeader(std::ostream &out, PayloadKind kind, uint64_t fingerprint)
{
    writeU32(out, kMagic);
    writeU32(out, kVersion);
    writeU32(out, static_cast<uint32_t>(kind));
    writeU64(out, fingerprint);
}

uint32_t
readHeader(std::istream &in, PayloadKind kind, uint64_t fingerprint)
{
    fatalIf(readU32(in) != kMagic, "bad magic: not a HEAT stream");
    const uint32_t version = readU32(in);
    fatalIf(version < kMinVersion || version > kVersion,
            "unsupported stream version ", version);
    const uint32_t got_kind = readU32(in);
    fatalIf(got_kind != static_cast<uint32_t>(kind),
            "unexpected payload kind ", got_kind);
    const uint64_t got_fp = readU64(in);
    fatalIf(got_fp != fingerprint,
            "parameter fingerprint mismatch: stream was produced with a "
            "different parameter set");
    return version;
}

void
writePoly(std::ostream &out, const ntt::RnsPoly &poly)
{
    writeU32(out, static_cast<uint32_t>(poly.residueCount()));
    writeU32(out, static_cast<uint32_t>(poly.degree()));
    writeU32(out, poly.form() == ntt::PolyForm::kNtt ? 1 : 0);
    for (uint64_t v : poly.data()) {
        fatalIf(v >> 32, "residue too wide for the 32-bit wire format");
        writeU32(out, static_cast<uint32_t>(v));
    }
}

ntt::RnsPoly
readPoly(const std::shared_ptr<const FvParams> &params, std::istream &in,
         size_t level = 0)
{
    const uint32_t residues = readU32(in);
    const uint32_t degree = readU32(in);
    const uint32_t ntt_form = readU32(in);
    fatalIf(degree != params->degree(), "degree mismatch in stream");

    std::shared_ptr<const rns::RnsBase> base;
    if (residues == params->qBase(level)->size())
        base = params->qBase(level);
    else if (residues == params->fullBase(level)->size())
        base = params->fullBase(level);
    else
        fatal("stream polynomial has unexpected residue count ", residues,
              " for level ", level);

    ntt::RnsPoly poly(base, degree,
                      ntt_form ? ntt::PolyForm::kNtt
                               : ntt::PolyForm::kCoeff);
    for (auto &v : poly.data())
        v = readU32(in);
    return poly;
}

void
writeRelinPayload(std::ostream &out, const RelinKeys &rlk)
{
    writeU32(out, rlk.kind == DecompKind::kRnsDigits ? 0 : 1);
    writeU32(out, static_cast<uint32_t>(rlk.digit_bits));
    writeU32(out, static_cast<uint32_t>(rlk.digitCount()));
    for (const auto &pair : rlk.keys) {
        writePoly(out, pair[0]);
        writePoly(out, pair[1]);
    }
}

RelinKeys
readRelinPayload(const std::shared_ptr<const FvParams> &params,
                 std::istream &in)
{
    RelinKeys rlk;
    rlk.kind = readU32(in) == 0 ? DecompKind::kRnsDigits
                                : DecompKind::kPositional;
    rlk.digit_bits = static_cast<int>(readU32(in));
    const uint32_t digits = readU32(in);
    for (uint32_t i = 0; i < digits; ++i) {
        ntt::RnsPoly k0 = readPoly(params, in);
        ntt::RnsPoly k1 = readPoly(params, in);
        rlk.keys.push_back({std::move(k0), std::move(k1)});
    }
    return rlk;
}

} // namespace

uint64_t
paramsFingerprint(const FvParams &params)
{
    // FNV-1a over the defining integers.
    uint64_t h = 14695981039346656037ull;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 1099511628211ull;
        }
    };
    mix(params.degree());
    mix(params.plainModulus());
    for (const auto &m : params.qBase()->moduli())
        mix(m.value());
    for (const auto &m : params.pBase()->moduli())
        mix(m.value());
    return h;
}

void
savePlaintext(const Plaintext &plain, std::ostream &out)
{
    writeHeader(out, PayloadKind::kPlaintext, 0);
    writeU32(out, static_cast<uint32_t>(plain.coeffs.size()));
    for (uint64_t c : plain.coeffs)
        writeU64(out, c);
}

Plaintext
loadPlaintext(std::istream &in)
{
    readHeader(in, PayloadKind::kPlaintext, 0);
    Plaintext plain;
    plain.coeffs.resize(readU32(in));
    for (auto &c : plain.coeffs)
        c = readU64(in);
    return plain;
}

void
saveCiphertext(const FvParams &params, const Ciphertext &ct,
               std::ostream &out)
{
    writeHeader(out, PayloadKind::kCiphertext, paramsFingerprint(params));
    fatalIf(ct.level > params.maxLevel(),
            "ciphertext level out of range for this parameter set");
    writeU32(out, static_cast<uint32_t>(ct.level));
    writeU32(out, static_cast<uint32_t>(ct.size()));
    for (const auto &poly : ct.polys)
        writePoly(out, poly);
}

Ciphertext
loadCiphertext(const std::shared_ptr<const FvParams> &params,
               std::istream &in)
{
    const uint32_t version =
        readHeader(in, PayloadKind::kCiphertext, paramsFingerprint(*params));
    Ciphertext ct;
    // Version-1 streams predate levels: everything was level 0.
    ct.level = version >= 2 ? readU32(in) : 0;
    fatalIf(ct.level > params->maxLevel(),
            "stream ciphertext level out of range");
    const uint32_t count = readU32(in);
    fatalIf(count < 2 || count > 3, "ciphertext with ", count, " parts");
    for (uint32_t i = 0; i < count; ++i)
        ct.polys.push_back(readPoly(params, in, ct.level));
    return ct;
}

size_t
ciphertextByteSize(const FvParams & /*params*/, const Ciphertext &ct)
{
    size_t size = 4 + 4 + 4 + 8 + 4 + 4; // header + level + count
    for (const auto &poly : ct.polys)
        size += 12 + poly.data().size() * 4;
    return size;
}

void
saveSecretKey(const FvParams &params, const SecretKey &sk,
              std::ostream &out)
{
    writeHeader(out, PayloadKind::kSecretKey, paramsFingerprint(params));
    writePoly(out, sk.s_ntt);
}

SecretKey
loadSecretKey(const std::shared_ptr<const FvParams> &params,
              std::istream &in)
{
    readHeader(in, PayloadKind::kSecretKey, paramsFingerprint(*params));
    return SecretKey{readPoly(params, in)};
}

void
savePublicKey(const FvParams &params, const PublicKey &pk,
              std::ostream &out)
{
    writeHeader(out, PayloadKind::kPublicKey, paramsFingerprint(params));
    writePoly(out, pk.p0_ntt);
    writePoly(out, pk.p1_ntt);
}

PublicKey
loadPublicKey(const std::shared_ptr<const FvParams> &params,
              std::istream &in)
{
    readHeader(in, PayloadKind::kPublicKey, paramsFingerprint(*params));
    ntt::RnsPoly p0 = readPoly(params, in);
    ntt::RnsPoly p1 = readPoly(params, in);
    return PublicKey{std::move(p0), std::move(p1)};
}

void
saveRelinKeys(const FvParams &params, const RelinKeys &rlk,
              std::ostream &out)
{
    writeHeader(out, PayloadKind::kRelinKeys, paramsFingerprint(params));
    writeRelinPayload(out, rlk);
}

RelinKeys
loadRelinKeys(const std::shared_ptr<const FvParams> &params,
              std::istream &in)
{
    readHeader(in, PayloadKind::kRelinKeys, paramsFingerprint(*params));
    return readRelinPayload(params, in);
}

void
saveGaloisKeys(const FvParams &params, const GaloisKeys &gkeys,
               std::ostream &out)
{
    writeHeader(out, PayloadKind::kGaloisKeys, paramsFingerprint(params));
    writeU32(out, static_cast<uint32_t>(gkeys.keys.size()));
    for (const auto &[element, key] : gkeys.keys) {
        writeU32(out, element);
        writeRelinPayload(out, key);
    }
}

GaloisKeys
loadGaloisKeys(const std::shared_ptr<const FvParams> &params,
               std::istream &in)
{
    readHeader(in, PayloadKind::kGaloisKeys, paramsFingerprint(*params));
    GaloisKeys gkeys;
    const uint32_t count = readU32(in);
    for (uint32_t i = 0; i < count; ++i) {
        const uint32_t element = readU32(in);
        gkeys.keys.emplace(element, readRelinPayload(params, in));
    }
    return gkeys;
}

} // namespace heat::fv
