#include "fv/noise.h"

#include <algorithm>
#include <cmath>

namespace heat::fv {

namespace {

/** log2(2^a + 2^b) without leaving log space for long. */
double
logSum2(double a, double b)
{
    const double m = std::max(a, b);
    return m + std::log2(std::exp2(a - m) + std::exp2(b - m));
}

} // namespace

NoiseModel::NoiseModel(std::shared_ptr<const FvParams> params)
    : params_(std::move(params))
{
    log_q_ = static_cast<double>(params_->qBits());
    log_t_ = std::log2(static_cast<double>(params_->plainModulus()));
    log_n_ = std::log2(static_cast<double>(params_->degree()));
    b_err_ = 6.0 * params_->sigma();
}

double
NoiseModel::freshLogNoise() const
{
    // Fresh invariant noise: |v| <= t * B * (2n + 1) / q
    // (public-key encryption with ternary u: e1 + u*e0-ish terms).
    return log_t_ + std::log2(b_err_) + log_n_ + 1.0 - log_q_;
}

double
NoiseModel::budgetBits(double log_v) const
{
    // Budget B corresponds to log |v| = -(B + 1).
    return std::max(0.0, -log_v - 1.0);
}

double
NoiseModel::freshBudgetBits() const
{
    return budgetBits(freshLogNoise());
}

double
NoiseModel::addStep(double log_a, double log_b) const
{
    return logSum2(log_a, log_b);
}

double
NoiseModel::addPlainStep(double log_v) const
{
    // ct + Delta*m adds only the Delta-rounding term:
    // |v'| <= |v| + r_t(q) * |m| / q <= |v| + t * n / q.
    return logSum2(log_v, log_t_ + log_n_ - log_q_);
}

double
NoiseModel::multiplyPlainStep(double log_v) const
{
    // NTT pointwise product by an embedded plaintext: |v'| <= n t |v|.
    return log_v + log_n_ + log_t_;
}

double
NoiseModel::multiplyStep(double log_a, double log_b) const
{
    // FV multiplication tensor + scale: v_mult ~ 2 n t (v1 + v2) plus
    // the rounding term t * n / q. The key-switch term of the
    // relinearization is accounted separately (keySwitchStep), so a
    // 3-element tensor value carries exactly this much noise.
    const double log_mult =
        1.0 + log_n_ + log_t_ + logSum2(log_a, log_b);
    const double log_round = log_t_ + log_n_ - log_q_ + 1.0;
    return logSum2(log_mult, log_round);
}

double
NoiseModel::keySwitchStep(double log_v) const
{
    // For RNS digits the key-switch noise is t * n * k * 2^30 * B / q —
    // the same bound for relinearization keys and Galois keys (they
    // embed different secrets but share digit structure).
    const double k = static_cast<double>(params_->rnsDigitCount());
    const double log_relin = log_t_ + log_n_ + std::log2(k) + 30.0 +
                             std::log2(b_err_) - log_q_;
    return logSum2(log_v, log_relin);
}

double
NoiseModel::multStep(double log_v) const
{
    return keySwitchStep(multiplyStep(log_v, log_v));
}

double
NoiseModel::budgetAfterDepth(int depth) const
{
    double log_v = -(freshBudgetBits() + 1.0);
    for (int i = 0; i < depth; ++i)
        log_v = multStep(log_v);
    return budgetBits(log_v);
}

int
NoiseModel::supportedDepth() const
{
    int depth = 0;
    while (depth < 64 && budgetAfterDepth(depth + 1) > 0.0)
        ++depth;
    return depth;
}

} // namespace heat::fv
