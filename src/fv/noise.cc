#include "fv/noise.h"

#include <algorithm>
#include <cmath>

#include "common/panic.h"

namespace heat::fv {

namespace {

/** log2(2^a + 2^b) without leaving log space for long. */
double
logSum2(double a, double b)
{
    const double m = std::max(a, b);
    return m + std::log2(std::exp2(a - m) + std::exp2(b - m));
}

} // namespace

NoiseModel::NoiseModel(std::shared_ptr<const FvParams> params,
                       NoiseBound bound)
    : params_(std::move(params)), bound_(bound)
{
    // Per-level log2(q_l) straight from the prime values (does not
    // force the lazy per-level FvParams data into existence).
    const auto &q = *params_->qBase();
    log_q_per_level_.resize(q.size());
    double acc = 0.0;
    for (size_t i = 0; i < q.size(); ++i) {
        acc += std::log2(static_cast<double>(q.modulus(i).value()));
        log_q_per_level_[q.size() - 1 - i] = acc;
    }
    log_q_ = log_q_per_level_[0];
    log_t_ = std::log2(static_cast<double>(params_->plainModulus()));
    log_n_ = std::log2(static_cast<double>(params_->degree()));
    b_err_ = 6.0 * params_->sigma();
}

double
NoiseModel::logQ(size_t level) const
{
    panicIf(level >= log_q_per_level_.size(), "noise model level range");
    return log_q_per_level_[level];
}

double
NoiseModel::expansionLogN() const
{
    // Ring-expansion factor: n in the worst case, ~sqrt(n) for
    // independent centered coefficients (CLT).
    return bound_ == NoiseBound::kAverageCase ? 0.5 * log_n_ : log_n_;
}

double
NoiseModel::freshLogNoise() const
{
    // Fresh invariant noise: |v| <= t * B * (2n + 1) / q
    // (public-key encryption with ternary u: e1 + u*e0-ish terms).
    // Average case: the n-fold coefficient sums concentrate at sqrt(n).
    if (bound_ == NoiseBound::kAverageCase)
        return log_t_ + std::log2(b_err_) + 0.5 * (log_n_ + 1.0) + 1.0 -
               log_q_;
    return log_t_ + std::log2(b_err_) + log_n_ + 1.0 - log_q_;
}

double
NoiseModel::budgetBits(double log_v) const
{
    // Budget B corresponds to log |v| = -(B + 1).
    return std::max(0.0, -log_v - 1.0);
}

double
NoiseModel::freshBudgetBits() const
{
    return budgetBits(freshLogNoise());
}

double
NoiseModel::addStep(double log_a, double log_b) const
{
    return logSum2(log_a, log_b);
}

double
NoiseModel::addPlainStep(double log_v, size_t level) const
{
    // ct + Delta*m adds only the Delta-rounding term:
    // |v'| <= |v| + r_t(q) * |m| / q <= |v| + t * n / q_l.
    return logSum2(log_v, log_t_ + expansionLogN() - logQ(level));
}

double
NoiseModel::multiplyPlainStep(double log_v) const
{
    // NTT pointwise product by an embedded plaintext: |v'| <= n t |v|.
    return log_v + expansionLogN() + log_t_;
}

double
NoiseModel::multiplyStep(double log_a, double log_b, size_t level) const
{
    // FV multiplication tensor + scale: v_mult ~ 2 n t (v1 + v2) plus
    // the rounding term t * n / q_l. The key-switch term of the
    // relinearization is accounted separately (keySwitchStep), so a
    // 3-element tensor value carries exactly this much noise. The
    // average-case expansion is sqrt(n) (CLT) plus an empirical
    // headroom: measured squaring chains on the paper ring lose
    // ~log2(t) + 12.2 bits per level where the bare CLT term predicts
    // ~log2(t) + 9, so the model charges 3.8 extra bits per multiply —
    // tests pin the result conservative (model <= measured) at every
    // depth and level.
    constexpr double kAvgMultHeadroom = 3.8;
    const double expansion =
        bound_ == NoiseBound::kAverageCase
            ? 1.0 + 0.5 * log_n_ + kAvgMultHeadroom + log_t_
            : 1.0 + log_n_ + log_t_;
    const double log_mult = expansion + logSum2(log_a, log_b);
    const double log_round =
        log_t_ + expansionLogN() - logQ(level) + 1.0;
    return logSum2(log_mult, log_round);
}

double
NoiseModel::keySwitchStep(double log_v, size_t level) const
{
    // For RNS digits the key-switch noise is t * n * k * 2^30 * B / q_l
    // over the level's k_l live digits — the same bound for
    // relinearization keys and Galois keys (they embed different
    // secrets but share digit structure). Average case: both the ring
    // expansion and the k-digit sum concentrate at their square roots.
    const double k = static_cast<double>(params_->rnsDigitCount(level));
    const double log_k = bound_ == NoiseBound::kAverageCase
                             ? 0.5 * std::log2(k)
                             : std::log2(k);
    const double log_relin = log_t_ + expansionLogN() + log_k + 30.0 +
                             std::log2(b_err_) - logQ(level);
    return logSum2(log_v, log_relin);
}

double
NoiseModel::modSwitchStep(double log_v, size_t from_level) const
{
    // c' = round(c / q_drop): the invariant noise v = (t/q_l) * (c(s)
    // mod q_l) is unchanged by the exact division, and the rounding of
    // each polynomial adds |eps(s)| * t / q_{l+1} with |eps| <= 1/2
    // per coefficient — the t n / (2 q') term below. This is why
    // FV mod-switching is (almost) free noise-wise: the budget LOST is
    // the log2(q_drop) ceiling reduction, already reflected in
    // budget-vs-ceiling comparisons at the new level.
    const double log_round = bound_ == NoiseBound::kAverageCase
                                 ? log_t_ + 0.5 * log_n_ + 1.0 -
                                       logQ(from_level + 1)
                                 : log_t_ + log_n_ - logQ(from_level + 1);
    return logSum2(log_v, log_round);
}

double
NoiseModel::multStep(double log_v) const
{
    return keySwitchStep(multiplyStep(log_v, log_v));
}

double
NoiseModel::budgetAfterDepth(int depth) const
{
    double log_v = -(freshBudgetBits() + 1.0);
    for (int i = 0; i < depth; ++i)
        log_v = multStep(log_v);
    return budgetBits(log_v);
}

int
NoiseModel::supportedDepth() const
{
    int depth = 0;
    while (depth < 64 && budgetAfterDepth(depth + 1) > 0.0)
        ++depth;
    return depth;
}

} // namespace heat::fv
