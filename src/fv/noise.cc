#include "fv/noise.h"

#include <algorithm>
#include <cmath>

namespace heat::fv {

NoiseModel::NoiseModel(std::shared_ptr<const FvParams> params)
    : params_(std::move(params))
{
    log_q_ = static_cast<double>(params_->qBits());
    log_t_ = std::log2(static_cast<double>(params_->plainModulus()));
    log_n_ = std::log2(static_cast<double>(params_->degree()));
    b_err_ = 6.0 * params_->sigma();
}

double
NoiseModel::freshBudgetBits() const
{
    // Fresh invariant noise: |v| <= t * B * (2n + 1) / q
    // (public-key encryption with ternary u: e1 + u*e0-ish terms).
    const double log_v = log_t_ + std::log2(b_err_) + log_n_ + 1.0 - log_q_;
    return std::max(0.0, -log_v - 1.0);
}

double
NoiseModel::multStep(double log_v) const
{
    // FV multiplication: v_mult ~ 2 n t (v1 + v2) plus the rounding term
    // t * n / q and the relinearization term. For RNS digits the relin
    // noise is t * n * k * 2^30 * B / q.
    const double k = static_cast<double>(params_->rnsDigitCount());
    const double log_mult = 1.0 + log_n_ + log_t_ + log_v + 1.0;
    const double log_round = log_t_ + log_n_ - log_q_ + 1.0;
    const double log_relin = log_t_ + log_n_ + std::log2(k) + 30.0 +
                             std::log2(b_err_) - log_q_;
    // Sum the three contributions in linear space (softmax-style).
    const double m = std::max({log_mult, log_round, log_relin});
    return m + std::log2(std::exp2(log_mult - m) +
                         std::exp2(log_round - m) +
                         std::exp2(log_relin - m));
}

double
NoiseModel::budgetAfterDepth(int depth) const
{
    // Budget B corresponds to log |v| = -(B + 1).
    double log_v = -(freshBudgetBits() + 1.0);
    for (int i = 0; i < depth; ++i)
        log_v = multStep(log_v);
    return std::max(0.0, -log_v - 1.0);
}

int
NoiseModel::supportedDepth() const
{
    int depth = 0;
    while (depth < 64 && budgetAfterDepth(depth + 1) > 0.0)
        ++depth;
    return depth;
}

} // namespace heat::fv
