#include "fv/galois.h"

#include "common/panic.h"
#include "mp/primality.h"

namespace heat::fv {

void
applyGaloisToResidue(std::span<const uint64_t> in, std::span<uint64_t> out,
                     uint32_t g, const rns::Modulus &modulus)
{
    const size_t n = in.size();
    panicIf(out.size() != n, "galois output size mismatch");
    panicIf((g & 1) == 0 || g >= 2 * n, "galois element must be odd, < 2n");
    const uint64_t mask = 2 * n - 1; // 2n is a power of two
    for (size_t i = 0; i < n; ++i) {
        const uint64_t j = (static_cast<uint64_t>(i) * g) & mask;
        if (j < n)
            out[j] = in[i];
        else
            out[j - n] = modulus.negate(in[i]);
    }
}

uint32_t
galoisElementForStep(int steps, size_t degree)
{
    const uint64_t two_n = 2 * degree;
    // Positive steps use powers of 3, negative steps powers of 3^{-1};
    // 3 generates the order-n/2 subgroup permuting the slot "rows".
    uint64_t g;
    if (steps >= 0) {
        g = mp::powMod64(3, static_cast<uint64_t>(steps), two_n);
    } else {
        // 3^{-1} mod 2n exists since gcd(3, 2n) = 1.
        uint64_t inv = mp::powMod64(
            3, static_cast<uint64_t>(degree) - 1, two_n); // ord(3) | n
        // Fall back to explicit search if the order assumption fails.
        if (mp::mulMod64(3, inv, two_n) != 1) {
            inv = 1;
            while (mp::mulMod64(3, inv, two_n) != 1)
                inv += 2;
        }
        g = mp::powMod64(inv, static_cast<uint64_t>(-steps), two_n);
    }
    return static_cast<uint32_t>(g);
}

} // namespace heat::fv
