#include "fv/galois.h"

#include "common/panic.h"
#include "mp/primality.h"

namespace heat::fv {

uint64_t
GaloisKeys::fingerprint() const
{
    // Seed differs from RelinKeys::fingerprint's FNV offset so an empty
    // Galois set and an empty relin set don't collide.
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const auto &[g, rlk] : keys) {
        h = (h ^ g) * 0x100000001b3ull;
        h = (h ^ rlk.fingerprint()) * 0x100000001b3ull;
    }
    return h;
}

void
applyGaloisToResidue(std::span<const uint64_t> in, std::span<uint64_t> out,
                     uint32_t g, const rns::Modulus &modulus)
{
    const size_t n = in.size();
    panicIf(out.size() != n, "galois output size mismatch");
    panicIf((g & 1) == 0 || g >= 2 * n, "galois element must be odd, < 2n");
    const uint64_t mask = 2 * n - 1; // 2n is a power of two
    for (size_t i = 0; i < n; ++i) {
        const uint64_t j = (static_cast<uint64_t>(i) * g) & mask;
        if (j < n)
            out[j] = in[i];
        else
            out[j - n] = modulus.negate(in[i]);
    }
}

size_t
rotationStepPeriod(size_t degree)
{
    // ord(3) mod 2^k is 2^(k-2) for k >= 3, i.e. n/2 — verified here
    // rather than assumed so a non-power-of-two ring cannot slip
    // through with a silently wrong period.
    const uint64_t two_n = 2 * degree;
    panicIf(degree < 4, "rotation period needs degree >= 4");
    const size_t period = degree / 2;
    panicIf(mp::powMod64(3, period, two_n) != 1,
            "3 does not have order n/2 modulo 2n");
    return period;
}

int
normalizeRotationSteps(int64_t steps, size_t degree)
{
    const int64_t period =
        static_cast<int64_t>(rotationStepPeriod(degree));
    const int64_t normalized = ((steps % period) + period) % period;
    return static_cast<int>(normalized);
}

uint32_t
galoisElementForStep(int steps, size_t degree)
{
    // Normalizing first maps negative steps onto the equivalent
    // positive power (3^-s = 3^(period-s)) and congruent step counts
    // onto one canonical element: 3 generates the order-n/2 subgroup
    // permuting the slot "rows", so rotations only exist modulo the
    // row length. Step 0 lands on element 1, the identity.
    const uint64_t two_n = 2 * degree;
    const uint64_t s = static_cast<uint64_t>(
        normalizeRotationSteps(steps, degree));
    return static_cast<uint32_t>(mp::powMod64(3, s, two_n));
}

} // namespace heat::fv
